package xgrammar_test

// The whole-suite smoke bench lives in the external test package:
// internal/experiments imports the root package (for the store benchmark),
// so an in-package test importing experiments would be an import cycle.

import (
	"testing"

	"xgrammar/internal/experiments"
)

func BenchmarkExperimentSuiteQuick(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(true)
		if tb, ok := s.ByID("stats"); !ok || len(tb.Rows) == 0 {
			b.Fatal("stats experiment failed")
		}
	}
}
