package xgrammar

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"

	"xgrammar/internal/maskcache"
)

func TestSerializeRoundTrip(t *testing.T) {
	info := testTokenizer(t)
	orig, err := NewCompiler(info).CompileBuiltinJSON()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := NewCompiler(info).LoadCompiledGrammar(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Masks must be bit-identical at every step of a replay.
	mo, ml := NewMatcher(orig), NewMatcher(loaded)
	maskO := make([]uint64, orig.MaskWords())
	maskL := make([]uint64, loaded.MaskWords())
	doc := `{"a": [1, "two", null]}`
	for i := 0; i <= len(doc); i++ {
		mo.FillNextTokenBitmask(maskO)
		ml.FillNextTokenBitmask(maskL)
		for w := range maskO {
			if maskO[w] != maskL[w] {
				t.Fatalf("mask mismatch at pos %d", i)
			}
		}
		if i < len(doc) {
			if err := mo.AcceptString(doc[i : i+1]); err != nil {
				t.Fatal(err)
			}
			if err := ml.AcceptString(doc[i : i+1]); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Stats survive the round trip.
	if loaded.Stats().ContextIndependent != orig.Stats().ContextIndependent {
		t.Fatal("stats lost in serialization")
	}
	if loaded.GrammarText() == "" {
		t.Fatal("grammar text lost")
	}
}

func TestSerializeVocabMismatch(t *testing.T) {
	info := testTokenizer(t)
	cg, err := NewCompiler(info).CompileBuiltinJSON()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cg.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	other := DefaultTokenizer(400)
	if _, err := NewCompiler(other).LoadCompiledGrammar(&buf); err == nil {
		t.Fatal("vocab mismatch not detected")
	}
}

func TestSerializeNoCacheVariant(t *testing.T) {
	info := testTokenizer(t)
	cg, err := NewCompiler(info, WithoutMaskCache()).CompileBuiltinJSON()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cg.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := NewCompiler(info).LoadCompiledGrammar(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Stats().HasMaskCache {
		t.Fatal("cacheless grammar gained a cache in transit")
	}
	m := NewMatcher(loaded)
	if err := m.AcceptString(`[true]`); err != nil {
		t.Fatal(err)
	}
}

func TestLoadGarbage(t *testing.T) {
	info := testTokenizer(t)
	if _, err := NewCompiler(info).LoadCompiledGrammar(bytes.NewReader([]byte("not gob"))); err == nil {
		t.Fatal("garbage loaded")
	}
}

func TestLoadTruncated(t *testing.T) {
	info := testTokenizer(t)
	cg, err := NewCompiler(info).CompileBuiltinJSON()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cg.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every truncation point must fail with an error — never a panic, never
	// a silently half-loaded grammar.
	for _, n := range []int{0, 1, len(full) / 4, len(full) / 2, len(full) - 1} {
		if _, err := NewCompiler(info).LoadCompiledGrammar(bytes.NewReader(full[:n])); err == nil {
			t.Fatalf("truncated blob (%d of %d bytes) loaded", n, len(full))
		}
	}
}

// TestLoadRejectsCorruptStructure bit-flips structural fields that gob
// itself cannot catch: indices out of range must be rejected by validation,
// not crash a later matcher step.
func TestLoadRejectsCorruptStructure(t *testing.T) {
	info := testTokenizer(t)
	cg, err := NewCompiler(info).CompileBuiltinJSON()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(*wireGrammar){
		"root out of range":       func(w *wireGrammar) { w.Root = int32(len(w.RuleStart)) + 7 },
		"negative root":           func(w *wireGrammar) { w.Root = -1 },
		"rule start out of range": func(w *wireGrammar) { w.RuleStart[0] = int32(len(w.Nodes)) },
		"edge target out of range": func(w *wireGrammar) {
			for i := range w.Nodes {
				if len(w.Nodes[i].Edges) > 0 {
					w.Nodes[i].Edges[0].To = int32(len(w.Nodes)) + 3
					return
				}
			}
			t.Fatal("no edges to corrupt")
		},
		"node rule out of range": func(w *wireGrammar) { w.Nodes[0].Rule = 9999 },
		"masks/nodes mismatch":   func(w *wireGrammar) { w.Masks = w.Masks[:len(w.Masks)-1] },
		"mask token beyond vocabulary": func(w *wireGrammar) {
			for i := range w.Masks {
				w.Masks[i].Tokens = append(w.Masks[i].Tokens, int32(w.VocabSize)+5)
				return
			}
		},
		"mask ctx token beyond vocabulary": func(w *wireGrammar) {
			for i := range w.Masks {
				w.Masks[i].Ctx = append(w.Masks[i].Ctx, int32(w.VocabSize))
				return
			}
		},
		"unknown mask kind": func(w *wireGrammar) { w.Masks[0].Kind = 42 },
		"no nodes":          func(w *wireGrammar) { w.Nodes = nil; w.Masks = nil },
		"bitset padding bits set": func(w *wireGrammar) {
			for i := range w.Masks {
				if w.Masks[i].Kind == maskcache.WordMask {
					w.Masks[i].Bits[len(w.Masks[i].Bits)-1] |= 1 << 63
					return
				}
			}
			// No word-mask node in this grammar: fabricate one with the right
			// word count but a padding bit set beyond the vocabulary.
			words := (w.VocabSize + 63) / 64
			bits := make([]uint64, words)
			bits[words-1] = 1 << 63
			w.Masks[0] = maskcache.WireMask{Kind: maskcache.WordMask, Bits: bits}
		},
		"accept count mismatch": func(w *wireGrammar) { w.Masks[0].AcceptCount += 7 },
		"kind flipped against count": func(w *wireGrammar) {
			// A flipped Kind byte passes every bounds check but inverts the
			// mask's meaning; only the redundant AcceptCount can catch it.
			for i := range w.Masks {
				m := &w.Masks[i]
				if m.Kind == maskcache.AcceptList && len(m.Tokens) > 0 {
					m.Kind = maskcache.RejectList
					return
				}
				if m.Kind == maskcache.RejectList {
					m.Kind = maskcache.AcceptList
					return
				}
			}
			t.Fatal("no list-kind mask to flip")
		},
		"words stored on a list kind": func(w *wireGrammar) {
			for i := range w.Masks {
				if w.Masks[i].Kind != maskcache.WordMask {
					w.Masks[i].Bits = make([]uint64, (w.VocabSize+63)/64)
					return
				}
			}
			t.Fatal("no list-kind mask")
		},
		"special token in token list": func(w *wireGrammar) {
			for i := range w.Masks {
				m := &w.Masks[i]
				if m.Kind == maskcache.AcceptList {
					// Special ids sit below the regular range, so prepending
					// keeps the list ascending — only the special check fires.
					m.Tokens = append([]int32{0}, m.Tokens...)
					m.AcceptCount++
					return
				}
			}
			t.Fatal("no accept-list mask")
		},
		"special bit set in word mask": func(w *wireGrammar) {
			words := (w.VocabSize + 63) / 64
			bits := make([]uint64, words)
			bits[0] = 1 << 2 // EosID
			w.Masks[0] = maskcache.WireMask{Kind: maskcache.WordMask, Bits: bits, AcceptCount: 1}
		},
		"unsorted token list": func(w *wireGrammar) {
			for i := range w.Masks {
				if len(w.Masks[i].Tokens) >= 2 {
					t0 := w.Masks[i].Tokens
					t0[0], t0[1] = t0[1], t0[0]
					return
				}
			}
			t.Fatal("no token list to shuffle")
		},
		"duplicate ctx token": func(w *wireGrammar) {
			for i := range w.Masks {
				if len(w.Masks[i].Ctx) >= 1 {
					w.Masks[i].Ctx = append(w.Masks[i].Ctx, w.Masks[i].Ctx[len(w.Masks[i].Ctx)-1])
					return
				}
			}
			t.Fatal("no ctx list to duplicate")
		},
	}
	for name, mutate := range cases {
		blob := rewire(t, cg, mutate)
		if _, err := NewCompiler(info).LoadCompiledGrammar(blob); err == nil {
			t.Errorf("%s: corrupt blob loaded", name)
		}
	}
}

// rewire serializes cg, decodes the wire struct, applies mutate, and
// re-encodes — simulating blobs from other builds or tokenizers.
func rewire(t *testing.T, cg *CompiledGrammar, mutate func(*wireGrammar)) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := cg.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	var wire wireGrammar
	if err := gob.NewDecoder(&buf).Decode(&wire); err != nil {
		t.Fatal(err)
	}
	mutate(&wire)
	var out bytes.Buffer
	if err := gob.NewEncoder(&out).Encode(&wire); err != nil {
		t.Fatal(err)
	}
	return &out
}

// TestLoadVersion2Blob simulates a blob written by the previous build:
// version 2, masks under the old storage-kind numbering (0 stored rejected
// ids, 1 stored accepted ids), no AcceptCount field, stats counting kinds in
// the old order. The load must remap everything and replay bit-identically.
func TestLoadVersion2Blob(t *testing.T) {
	info := testTokenizer(t)
	cg, err := NewCompiler(info).CompileBuiltinJSON()
	if err != nil {
		t.Fatal(err)
	}
	v2 := rewire(t, cg, func(w *wireGrammar) {
		w.Version = 2
		for i := range w.Masks {
			m := &w.Masks[i]
			m.AcceptCount = 0 // the field postdates version 2
			switch m.Kind {
			case maskcache.AcceptList:
				m.Kind = 1 // v2 "reject-heavy" stored the accepted ids
			case maskcache.RejectList:
				m.Kind = 0 // v2 "accept-heavy" stored the rejected ids
			}
		}
		kc := &w.CacheStats.KindCounts
		kc[0], kc[1] = kc[1], kc[0]
		w.CacheStats.CanonicalBytes = 0
	})
	loaded, err := NewCompiler(info).LoadCompiledGrammar(v2)
	if err != nil {
		t.Fatalf("version-2 blob rejected: %v", err)
	}
	os, ls := cg.Stats(), loaded.Stats()
	if ls.AcceptListNodes != os.AcceptListNodes || ls.RejectListNodes != os.RejectListNodes || ls.WordMaskNodes != os.WordMaskNodes {
		t.Fatalf("kind counts not remapped: loaded %+v, want %+v", ls, os)
	}
	mo, ml := NewMatcher(cg), NewMatcher(loaded)
	maskO := make([]uint64, cg.MaskWords())
	maskL := make([]uint64, loaded.MaskWords())
	doc := `{"k": [false, -2.5e3, "s"]}`
	for i := 0; i <= len(doc); i++ {
		mo.FillNextTokenBitmask(maskO)
		ml.FillNextTokenBitmask(maskL)
		for w := range maskO {
			if maskO[w] != maskL[w] {
				t.Fatalf("v2-loaded mask differs at pos %d", i)
			}
		}
		if i < len(doc) {
			if err := mo.AcceptString(doc[i : i+1]); err != nil {
				t.Fatal(err)
			}
			if err := ml.AcceptString(doc[i : i+1]); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestLoadRejectsOldVersion(t *testing.T) {
	info := testTokenizer(t)
	cg, err := NewCompiler(info).CompileBuiltinJSON()
	if err != nil {
		t.Fatal(err)
	}
	old := rewire(t, cg, func(w *wireGrammar) { w.Version = 1 })
	_, err = NewCompiler(info).LoadCompiledGrammar(old)
	if err == nil {
		t.Fatal("version-1 blob loaded")
	}
	if !strings.Contains(err.Error(), "version 1") {
		t.Fatalf("error does not identify the old version: %v", err)
	}
}

func TestLoadRejectsFingerprintMismatch(t *testing.T) {
	info := testTokenizer(t)
	cg, err := NewCompiler(info).CompileBuiltinJSON()
	if err != nil {
		t.Fatal(err)
	}
	// Same vocabulary size, different token bytes: exactly the corruption a
	// size-only check misses.
	tampered := rewire(t, cg, func(w *wireGrammar) { w.TokFingerprint ^= 0xdeadbeef })
	_, err = NewCompiler(info).LoadCompiledGrammar(tampered)
	if err == nil {
		t.Fatal("fingerprint mismatch not detected")
	}
	if !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("error does not mention the fingerprint: %v", err)
	}
}
