package xgrammar

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"
)

func TestSerializeRoundTrip(t *testing.T) {
	info := testTokenizer(t)
	orig, err := NewCompiler(info).CompileBuiltinJSON()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := NewCompiler(info).LoadCompiledGrammar(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Masks must be bit-identical at every step of a replay.
	mo, ml := NewMatcher(orig), NewMatcher(loaded)
	maskO := make([]uint64, orig.MaskWords())
	maskL := make([]uint64, loaded.MaskWords())
	doc := `{"a": [1, "two", null]}`
	for i := 0; i <= len(doc); i++ {
		mo.FillNextTokenBitmask(maskO)
		ml.FillNextTokenBitmask(maskL)
		for w := range maskO {
			if maskO[w] != maskL[w] {
				t.Fatalf("mask mismatch at pos %d", i)
			}
		}
		if i < len(doc) {
			if err := mo.AcceptString(doc[i : i+1]); err != nil {
				t.Fatal(err)
			}
			if err := ml.AcceptString(doc[i : i+1]); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Stats survive the round trip.
	if loaded.Stats().ContextIndependent != orig.Stats().ContextIndependent {
		t.Fatal("stats lost in serialization")
	}
	if loaded.GrammarText() == "" {
		t.Fatal("grammar text lost")
	}
}

func TestSerializeVocabMismatch(t *testing.T) {
	info := testTokenizer(t)
	cg, err := NewCompiler(info).CompileBuiltinJSON()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cg.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	other := DefaultTokenizer(400)
	if _, err := NewCompiler(other).LoadCompiledGrammar(&buf); err == nil {
		t.Fatal("vocab mismatch not detected")
	}
}

func TestSerializeNoCacheVariant(t *testing.T) {
	info := testTokenizer(t)
	cg, err := NewCompiler(info, WithoutMaskCache()).CompileBuiltinJSON()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cg.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := NewCompiler(info).LoadCompiledGrammar(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Stats().HasMaskCache {
		t.Fatal("cacheless grammar gained a cache in transit")
	}
	m := NewMatcher(loaded)
	if err := m.AcceptString(`[true]`); err != nil {
		t.Fatal(err)
	}
}

func TestLoadGarbage(t *testing.T) {
	info := testTokenizer(t)
	if _, err := NewCompiler(info).LoadCompiledGrammar(bytes.NewReader([]byte("not gob"))); err == nil {
		t.Fatal("garbage loaded")
	}
}

// rewire serializes cg, decodes the wire struct, applies mutate, and
// re-encodes — simulating blobs from other builds or tokenizers.
func rewire(t *testing.T, cg *CompiledGrammar, mutate func(*wireGrammar)) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := cg.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	var wire wireGrammar
	if err := gob.NewDecoder(&buf).Decode(&wire); err != nil {
		t.Fatal(err)
	}
	mutate(&wire)
	var out bytes.Buffer
	if err := gob.NewEncoder(&out).Encode(&wire); err != nil {
		t.Fatal(err)
	}
	return &out
}

func TestLoadRejectsOldVersion(t *testing.T) {
	info := testTokenizer(t)
	cg, err := NewCompiler(info).CompileBuiltinJSON()
	if err != nil {
		t.Fatal(err)
	}
	old := rewire(t, cg, func(w *wireGrammar) { w.Version = 1 })
	_, err = NewCompiler(info).LoadCompiledGrammar(old)
	if err == nil {
		t.Fatal("version-1 blob loaded")
	}
	if !strings.Contains(err.Error(), "version 1") {
		t.Fatalf("error does not identify the old version: %v", err)
	}
}

func TestLoadRejectsFingerprintMismatch(t *testing.T) {
	info := testTokenizer(t)
	cg, err := NewCompiler(info).CompileBuiltinJSON()
	if err != nil {
		t.Fatal(err)
	}
	// Same vocabulary size, different token bytes: exactly the corruption a
	// size-only check misses.
	tampered := rewire(t, cg, func(w *wireGrammar) { w.TokFingerprint ^= 0xdeadbeef })
	_, err = NewCompiler(info).LoadCompiledGrammar(tampered)
	if err == nil {
		t.Fatal("fingerprint mismatch not detected")
	}
	if !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("error does not mention the fingerprint: %v", err)
	}
}
