package xgrammar

import (
	"bytes"
	"testing"
)

func TestSerializeRoundTrip(t *testing.T) {
	info := testTokenizer(t)
	orig, err := NewCompiler(info).CompileBuiltinJSON()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := NewCompiler(info).LoadCompiledGrammar(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Masks must be bit-identical at every step of a replay.
	mo, ml := NewMatcher(orig), NewMatcher(loaded)
	maskO := make([]uint64, orig.MaskWords())
	maskL := make([]uint64, loaded.MaskWords())
	doc := `{"a": [1, "two", null]}`
	for i := 0; i <= len(doc); i++ {
		mo.FillNextTokenBitmask(maskO)
		ml.FillNextTokenBitmask(maskL)
		for w := range maskO {
			if maskO[w] != maskL[w] {
				t.Fatalf("mask mismatch at pos %d", i)
			}
		}
		if i < len(doc) {
			if err := mo.AcceptString(doc[i : i+1]); err != nil {
				t.Fatal(err)
			}
			if err := ml.AcceptString(doc[i : i+1]); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Stats survive the round trip.
	if loaded.Stats().ContextIndependent != orig.Stats().ContextIndependent {
		t.Fatal("stats lost in serialization")
	}
	if loaded.GrammarText() == "" {
		t.Fatal("grammar text lost")
	}
}

func TestSerializeVocabMismatch(t *testing.T) {
	info := testTokenizer(t)
	cg, err := NewCompiler(info).CompileBuiltinJSON()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cg.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	other := DefaultTokenizer(400)
	if _, err := NewCompiler(other).LoadCompiledGrammar(&buf); err == nil {
		t.Fatal("vocab mismatch not detected")
	}
}

func TestSerializeNoCacheVariant(t *testing.T) {
	info := testTokenizer(t)
	cg, err := NewCompiler(info, WithoutMaskCache()).CompileBuiltinJSON()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cg.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := NewCompiler(info).LoadCompiledGrammar(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Stats().HasMaskCache {
		t.Fatal("cacheless grammar gained a cache in transit")
	}
	m := NewMatcher(loaded)
	if err := m.AcceptString(`[true]`); err != nil {
		t.Fatal(err)
	}
}

func TestLoadGarbage(t *testing.T) {
	info := testTokenizer(t)
	if _, err := NewCompiler(info).LoadCompiledGrammar(bytes.NewReader([]byte("not gob"))); err == nil {
		t.Fatal("garbage loaded")
	}
}
