package xgrammar

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// storeCompiler returns a compiler with a store attached at dir.
func storeCompiler(t *testing.T, dir string, opts ...CompilerOption) *Compiler {
	t.Helper()
	c := NewCompiler(testTokenizer(t), opts...)
	if err := c.AttachStore(dir); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestStorePersistsAcrossCompilers(t *testing.T) {
	dir := t.TempDir()

	// First process: compile → miss, build, write blob.
	c1 := storeCompiler(t, dir)
	if _, err := c1.CompileBuiltinJSON(); err != nil {
		t.Fatal(err)
	}
	st := c1.StoreStats()
	if !st.Attached || st.Writes != 1 || st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("first-process store stats = %+v", st)
	}
	if st.Blobs != 1 {
		t.Fatalf("Blobs = %d", st.Blobs)
	}

	// Second process (fresh compiler, same dir): compile is a store hit,
	// no build.
	c2 := storeCompiler(t, dir)
	loaded, err := c2.CompileBuiltinJSON()
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.StoreStats(); got.Hits != 1 || got.Writes != 0 {
		t.Fatalf("second-process store stats = %+v", got)
	}
	if got := c2.CompileCacheStats(); got.Compiles != 0 {
		t.Fatalf("second process compiled from scratch: %+v", got)
	}
	// The loaded grammar works.
	m := NewMatcher(loaded)
	if err := m.AcceptString(`{"k": [1, 2]}`); err != nil {
		t.Fatal(err)
	}
	if !m.CanTerminate() {
		t.Fatal("loaded grammar cannot terminate complete document")
	}
}

func TestStoreWarmStart(t *testing.T) {
	dir := t.TempDir()
	c1 := storeCompiler(t, dir)
	if _, err := c1.CompileBuiltinJSON(); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.CompileRegex(`^[ab]+$`); err != nil {
		t.Fatal(err)
	}

	c2 := storeCompiler(t, dir)
	n, err := c2.WarmStart()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("WarmStart loaded %d grammars, want 2", n)
	}
	if st := c2.StoreStats(); st.Preloaded != 2 {
		t.Fatalf("store stats = %+v", st)
	}
	// The first compile after warm start is an in-memory LRU hit: no build,
	// no store read.
	if _, err := c2.CompileBuiltinJSON(); err != nil {
		t.Fatal(err)
	}
	cs := c2.CompileCacheStats()
	if cs.Hits != 1 || cs.Compiles != 0 || cs.Misses != 0 {
		t.Fatalf("compile cache stats after warm start = %+v", cs)
	}
	if st := c2.StoreStats(); st.Hits != 0 {
		t.Fatalf("warm-started compile read the disk: %+v", st)
	}
}

func TestStoreQuarantinesCorruptBlob(t *testing.T) {
	dir := t.TempDir()
	c1 := storeCompiler(t, dir)
	if _, err := c1.CompileBuiltinJSON(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the single blob on disk.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := 0
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".xgc") {
			if err := os.WriteFile(filepath.Join(dir, e.Name()), []byte("garbage"), 0o644); err != nil {
				t.Fatal(err)
			}
			corrupted++
		}
	}
	if corrupted != 1 {
		t.Fatalf("expected 1 blob on disk, corrupted %d", corrupted)
	}

	// A fresh compiler hits the corrupt blob, quarantines it, recompiles,
	// and persists a clean replacement.
	c2 := storeCompiler(t, dir)
	if _, err := c2.CompileBuiltinJSON(); err != nil {
		t.Fatal(err)
	}
	st := c2.StoreStats()
	if st.Quarantined != 1 || st.Writes != 1 {
		t.Fatalf("store stats = %+v, want 1 quarantine and 1 rewrite", st)
	}
	if cs := c2.CompileCacheStats(); cs.Compiles != 1 {
		t.Fatalf("corrupt blob did not trigger recompile: %+v", cs)
	}
	// Warm start on a third compiler now succeeds from the clean blob.
	c3 := storeCompiler(t, dir)
	if n, err := c3.WarmStart(); err != nil || n != 1 {
		t.Fatalf("WarmStart after quarantine = (%d, %v)", n, err)
	}
}

func TestStoreRejectsForeignTokenizerBlob(t *testing.T) {
	dir := t.TempDir()
	c1 := storeCompiler(t, dir)
	if _, err := c1.CompileBuiltinJSON(); err != nil {
		t.Fatal(err)
	}
	// A compiler over a different vocabulary must not load the blob: it is
	// quarantined (fingerprint mismatch) and compiled fresh. Its own blob
	// lands under a different ID, because the ID covers the fingerprint.
	other := NewCompiler(DefaultTokenizer(400))
	if err := other.AttachStore(dir); err != nil {
		t.Fatal(err)
	}
	if n, err := other.WarmStart(); err != nil || n != 0 {
		t.Fatalf("foreign blob warm-started: (%d, %v)", n, err)
	}
	if st := other.StoreStats(); st.Quarantined != 1 {
		t.Fatalf("store stats = %+v", st)
	}
}

func TestSpecIDStableAndGrammarByID(t *testing.T) {
	dir := t.TempDir()
	c := storeCompiler(t, dir)
	spec := GrammarSpec{Kind: KindBuiltin, Source: "json"}
	id, err := c.SpecID(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(id) != 64 {
		t.Fatalf("grammar id %q is not a sha256 hex digest", id)
	}
	// The ID matches the direct Compile* path and is stable across
	// compilers with the same tokenizer and config.
	id2, _ := NewCompiler(testTokenizer(t)).SpecID(spec)
	if id != id2 {
		t.Fatalf("SpecID unstable: %s vs %s", id, id2)
	}
	if _, ok := c.GrammarByID(id); ok {
		t.Fatal("GrammarByID found a grammar before compilation")
	}
	cg, err := c.CompileSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c.GrammarByID(id)
	if !ok || got != cg {
		t.Fatalf("GrammarByID = (%p, %v), want the compiled grammar %p", got, ok, cg)
	}
	// A fresh compiler resolves the ID from the store without compiling.
	c2 := storeCompiler(t, dir)
	if _, ok := c2.GrammarByID(id); !ok {
		t.Fatal("GrammarByID missed the store")
	}
	if cs := c2.CompileCacheStats(); cs.Compiles != 0 {
		t.Fatalf("GrammarByID compiled: %+v", cs)
	}
	if _, ok := c2.GrammarByID("zz-not-hex"); ok {
		t.Fatal("bogus id resolved")
	}
	if _, ok := c2.GrammarByID(strings.Repeat("ab", 32)); ok {
		t.Fatal("unknown id resolved")
	}
}

func TestCompileRegex(t *testing.T) {
	c := NewCompiler(testTokenizer(t))
	cg, err := c.CompileRegex(`^[ab]{2,3}c$`)
	if err != nil {
		t.Fatal(err)
	}
	for _, ok := range []string{"abc", "babc", "aac"} {
		m := NewMatcher(cg)
		if err := m.AcceptString(ok); err != nil {
			t.Fatalf("%q rejected: %v", ok, err)
		}
		if !m.CanTerminate() {
			t.Fatalf("%q not complete", ok)
		}
	}
	m := NewMatcher(cg)
	if err := m.AcceptString("ax"); err == nil {
		t.Fatal("invalid string accepted")
	}
	if _, err := c.CompileRegex(`[unclosed`); err == nil {
		t.Fatal("bad pattern compiled")
	}
}

func TestCompileSpecRoundTrip(t *testing.T) {
	c := NewCompiler(testTokenizer(t))
	schema := `{"type": "object", "properties": {"n": {"type": "integer"}}, "required": ["n"]}`
	for _, spec := range []GrammarSpec{
		{Kind: KindEBNF, Source: "root ::= \"hi\"\n"},
		{Kind: KindJSONSchema, Source: schema},
		{Kind: KindRegex, Source: `^a+$`},
		{Kind: KindBuiltin, Source: "xml"},
	} {
		if _, err := c.CompileSpec(spec); err != nil {
			t.Fatalf("CompileSpec(%v): %v", spec.Kind, err)
		}
	}
	if _, err := c.CompileSpec(GrammarSpec{Kind: "nope"}); err == nil {
		t.Fatal("unknown kind compiled")
	}
	if _, err := c.CompileSpec(GrammarSpec{Kind: KindBuiltin, Source: "perl"}); err == nil {
		t.Fatal("unknown builtin compiled")
	}
	if _, err := c.SpecID(GrammarSpec{Kind: "nope"}); err == nil {
		t.Fatal("unknown kind got an id")
	}
}
