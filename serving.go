package xgrammar

import (
	"fmt"
	"sync"
	"sync/atomic"

	"xgrammar/internal/maskcache"
	"xgrammar/internal/matcher"
	"xgrammar/internal/prefixcache"
	"xgrammar/internal/serve"
	"xgrammar/internal/spec"
	"xgrammar/internal/structtag"
)

// Engine is the continuous-batching serving runtime (§3.5): it resolves
// grammars through the compiler's compiled-grammar cache, hands out pooled
// Sessions whose steady-state decode step allocates nothing, and fills whole
// batches of masks through a persistent work-stealing worker pool.
//
// Typical serving loop (one Session per live sequence; sequences join and
// leave the batch between steps). Masks are computed once per token: in the
// batch loop, Accept advances a sequence without filling, and the next
// round's FillBatch computes every stale mask in parallel while the GPU
// forward pass runs:
//
//	eng := xgrammar.NewEngine(compiler)
//	s, err := eng.OpenGrammarSession(src) // compiled-grammar cache hit after the first request
//	...
//	gpuDone := launchForwardPass(live)
//	eng.FillBatch(live)                   // one decode step's masks, under the GPU step
//	<-gpuDone
//	for _, s := range live {
//	    id := sample(logits[s], s.Mask())
//	    err := s.Accept(id)               // no fill: next FillBatch does it overlapped
//	    if s.IsTerminated() { s.Close() } // session recycled for the next arrival
//	}
type Engine struct {
	compiler *Compiler
	pool     *serve.WorkerPool
	ownPool  bool
	// fills counts mask fills that did grammar work; fastFills the subset
	// served by the canonical-mask memcpy fast path. Idempotent no-op Fill
	// calls (mask already current) are not counted.
	fills     atomic.Int64
	fastFills atomic.Int64
	// prefixCache holds cross-request constraint-state checkpoints keyed by
	// (grammar ID, forced byte prefix); nil when warm-start is disabled.
	// acquirers lazily maps each grammar to its acquisition layer.
	prefixCache    *prefixcache.Cache
	prefixMinDepth int
	prefixStride   int
	acqMu          sync.Mutex
	acquirers      map[*CompiledGrammar]*serve.Acquirer
	anonGrammars   atomic.Int64
}

// EngineOption configures an Engine.
type EngineOption func(*engineConfig)

type engineConfig struct {
	workers        int
	prefixBudget   int64
	prefixMinDepth int
	prefixStride   int
}

// WithFillWorkers gives the engine a dedicated batch-fill worker pool with n
// persistent workers (n <= 0 means one per CPU) instead of the process-wide
// shared pool. Close releases a dedicated pool's workers.
func WithFillWorkers(n int) EngineOption {
	return func(c *engineConfig) {
		c.workers = n
		if n <= 0 {
			c.workers = -1
		}
	}
}

// WithPrefixCache enables the cross-request constraint-state prefix cache:
// AcquireSession warm-starts sessions from cached matcher checkpoints keyed
// by (grammar ID, forced byte prefix) instead of replaying the prefix cold.
// budgetBytes bounds the cache (<= 0 disables it); minDepth is the shortest
// prefix worth publishing (<= 0 uses the serve-layer default); stride > 0
// additionally publishes intermediate checkpoints every stride bytes, so
// requests sharing only part of a template's scaffold still warm-start.
// Entries are invalidated when the compiled-grammar LRU evicts the grammar.
func WithPrefixCache(budgetBytes int64, minDepth, stride int) EngineOption {
	return func(c *engineConfig) {
		c.prefixBudget = budgetBytes
		c.prefixMinDepth = minDepth
		c.prefixStride = stride
	}
}

// NewEngine returns a serving engine over the compiler's tokenizer and
// compiled-grammar cache.
func NewEngine(compiler *Compiler, opts ...EngineOption) *Engine {
	cfg := engineConfig{}
	for _, o := range opts {
		o(&cfg)
	}
	e := &Engine{compiler: compiler}
	if cfg.workers != 0 {
		n := cfg.workers
		if n < 0 {
			n = 0
		}
		e.pool = serve.NewWorkerPool(n)
		e.ownPool = true
	} else {
		e.pool = serve.DefaultPool()
	}
	if cfg.prefixBudget > 0 {
		e.prefixCache = prefixcache.New(cfg.prefixBudget)
		e.prefixMinDepth = cfg.prefixMinDepth
		e.prefixStride = cfg.prefixStride
		e.acquirers = make(map[*CompiledGrammar]*serve.Acquirer)
		compiler.onGrammarEvict(func(id string) { e.prefixCache.InvalidateGrammar(id) })
	}
	return e
}

// Compiler returns the engine's grammar compiler.
func (e *Engine) Compiler() *Compiler { return e.compiler }

// Close stops the engine's dedicated worker pool, if it has one. Sessions
// already open remain usable (fills fall back to the closing goroutine).
func (e *Engine) Close() {
	if e.ownPool {
		e.pool.Close()
	}
}

// OpenSession starts a generation against an already compiled grammar,
// recycling the grammar state (matcher, fill scratch, mask buffer) of a
// finished session when one is available. The session's mask is filled for
// the first decoding step. Pools live on the grammar itself, so their
// memory is reclaimed when the compiled-grammar LRU evicts it.
func (e *Engine) OpenSession(cg *CompiledGrammar) *Session {
	s := cg.sessionPool().Acquire()
	s.Fill()
	return &Session{e: e, cg: cg, s: s}
}

// AcquireResult reports how warm one AcquireSession call was: how many of
// the forced prefix's bytes were skipped by restoring a cached checkpoint,
// how many were replayed, and whether the memoized first-step mask applied.
type AcquireResult = serve.AcquireResult

// PrefixCacheStats is a snapshot of the engine's prefix-cache counters.
type PrefixCacheStats = prefixcache.Stats

// PrefixAcquireStats is a snapshot of the engine's acquisition-layer
// counters, aggregated across grammars.
type PrefixAcquireStats = serve.AcquirerStats

// acquirerFor returns (creating on first use) the grammar's warm-start
// acquisition layer. With the prefix cache disabled the acquirer still
// routes acquisition — every call just replays cold.
func (e *Engine) acquirerFor(cg *CompiledGrammar) *serve.Acquirer {
	e.acqMu.Lock()
	defer e.acqMu.Unlock()
	if e.acquirers == nil {
		e.acquirers = make(map[*CompiledGrammar]*serve.Acquirer)
	}
	if a, ok := e.acquirers[cg]; ok {
		return a
	}
	id := cg.ID()
	if id == "" {
		// Directly built grammar (no compile-cache identity): key it by an
		// engine-local synthetic ID so distinct builds never share entries.
		id = fmt.Sprintf("anon-%d", e.anonGrammars.Add(1))
	}
	a := serve.NewAcquirer(cg.sessionPool(), e.prefixCache, id, e.prefixMinDepth, e.prefixStride)
	e.acquirers[cg] = a
	return a
}

// AcquireSession is OpenSession through the warm-start acquisition layer:
// the session comes back already positioned after forcedPrefix with its
// first-step mask filled. With the prefix cache enabled (WithPrefixCache),
// the deepest cached checkpoint covering the prefix is restored and only
// the residual bytes are replayed; on an exact hit the memoized mask makes
// the first fill free. Closing the session publishes checkpoints captured
// during its replay, so the first request through a template warms every
// request after it. Output is byte-identical to a cold session that
// accepted the same prefix. An invalid prefix returns an error and no
// session.
func (e *Engine) AcquireSession(cg *CompiledGrammar, forcedPrefix string) (*Session, AcquireResult, error) {
	a := e.acquirerFor(cg)
	s, res, err := a.Acquire([]byte(forcedPrefix))
	if err != nil {
		return nil, res, err
	}
	return &Session{e: e, cg: cg, s: s}, res, nil
}

// PrefixCacheStats returns a snapshot of the prefix-cache counters; zero
// when the cache is disabled.
func (e *Engine) PrefixCacheStats() PrefixCacheStats { return e.prefixCache.Stats() }

// PrefixAcquireStats aggregates the per-grammar acquisition counters.
func (e *Engine) PrefixAcquireStats() PrefixAcquireStats {
	e.acqMu.Lock()
	defer e.acqMu.Unlock()
	var out PrefixAcquireStats
	for _, a := range e.acquirers {
		st := a.Stats()
		out.Acquires += st.Acquires
		out.WarmStarts += st.WarmStarts
		out.ExactHits += st.ExactHits
		out.BytesReused += st.BytesReused
		out.BytesReplayed += st.BytesReplayed
	}
	return out
}

// Checkpoint is a portable, immutable snapshot of a session's grammar
// position — the cross-goroutine complement of a matcher fork. It can be
// held indefinitely and restored into any session of the same compiled
// grammar with OpenSessionAt.
type Checkpoint = matcher.Checkpoint

// OpenSessionAt is OpenSession starting from a checkpoint previously
// captured with Session.Checkpoint instead of the grammar start state. The
// session's mask is filled for the first decoding step. The checkpoint must
// come from a session of the same compiled grammar.
func (e *Engine) OpenSessionAt(cg *CompiledGrammar, cp *Checkpoint) *Session {
	s := cg.sessionPool().Acquire()
	s.RestoreCheckpoint(cp)
	s.Fill()
	return &Session{e: e, cg: cg, s: s}
}

// OpenGrammarSession compiles (or cache-resolves) EBNF source and opens a
// session against it — the per-request entry point of a grammar-serving
// endpoint: after the first request for a grammar, compilation is a cache
// hit and session state is pooled.
func (e *Engine) OpenGrammarSession(src string) (*Session, error) {
	cg, err := e.compiler.CompileGrammar(src)
	if err != nil {
		return nil, err
	}
	return e.OpenSession(cg), nil
}

// OpenJSONSchemaSession is OpenGrammarSession for a JSON Schema request.
func (e *Engine) OpenJSONSchemaSession(schema []byte, o SchemaOptions) (*Session, error) {
	cg, err := e.compiler.CompileJSONSchema(schema, o)
	if err != nil {
		return nil, err
	}
	return e.OpenSession(cg), nil
}

// OpenTagSession starts a structural-tag generation: the session begins in
// free-text mode (every regular token allowed) and dispatches into the tag
// set's compiled segment grammars as begin tags appear in the decoded
// stream. Dispatcher state and segment grammar state are both pooled, so
// the steady-state decode step allocates nothing. The session's mask is
// filled for the first decoding step.
func (e *Engine) OpenTagSession(ts *CompiledTagSet) *Session {
	s := ts.set.Acquire()
	s.Fill()
	return &Session{e: e, tags: ts, s: s}
}

// OpenStructuralTagSession compiles (or cache-resolves) a structural-tag
// spec and opens a session against it — the per-request entry point of a
// tool-calling endpoint.
func (e *Engine) OpenStructuralTagSession(tags StructuralTags) (*Session, error) {
	ts, err := e.compiler.CompileStructuralTags(tags)
	if err != nil {
		return nil, err
	}
	return e.OpenTagSession(ts), nil
}

// FillBatch brings every session's mask up to date for one decode step
// through the engine's persistent worker pool, intended to run while the
// GPU forward pass executes (§3.5). Sessions may be attached to different
// grammars. Sessions whose mask is already current (the fused Step computed
// it) are skipped, so the grammar work runs exactly once per token however
// Step, Accept, and FillBatch are combined.
func (e *Engine) FillBatch(sessions []*Session) []maskcache.FillStats {
	return e.FillBatchInto(nil, sessions)
}

// FillBatchInto is FillBatch reusing the caller's stats buffer (grown as
// needed; nil allocates) — for decode loops that run every round and want
// the steady state allocation-free.
func (e *Engine) FillBatchInto(stats []maskcache.FillStats, sessions []*Session) []maskcache.FillStats {
	if cap(stats) < len(sessions) {
		stats = make([]maskcache.FillStats, len(sessions))
	}
	stats = stats[:len(sessions)]
	e.pool.Run(len(sessions), func(i int) {
		st, computed := sessions[i].s.FillTracked()
		stats[i] = st
		if computed {
			e.fills.Add(1)
			if st.FastPath {
				e.fastFills.Add(1)
			}
		}
	})
	return stats
}

// FillCounters reports how many batch-fill mask computations the engine has
// run and how many of those the canonical-mask memcpy fast path served —
// the /metrics fast-path hit rate.
func (e *Engine) FillCounters() (fills, fastPath int64) {
	return e.fills.Load(), e.fastFills.Load()
}

// StepResult is the outcome of one fused Session.Step: termination, the
// jump-forward continuation (valid until the next call on the session), and
// fill instrumentation.
type StepResult = serve.StepResult

// sessionState is the pooled per-sequence surface a Session drives: plain
// grammar sessions (serve.Session) and structural-tag dispatcher sessions
// (structtag.Session) both satisfy it, so the engine's batch loops, the
// gateway, and speculative decoding treat the two modes uniformly.
type sessionState interface {
	Step(id int32) (serve.StepResult, error)
	Accept(id int32) error
	Fill() maskcache.FillStats
	FillTracked() (maskcache.FillStats, bool)
	Mask() []uint64
	AcceptString(text string) error
	JumpForward() string
	Rollback(n int) error
	HistoryCap() int
	CanTerminate() bool
	IsTerminated() bool
	Close()
}

// Session tracks one generation inside a serving Engine. Unlike the
// lower-level Matcher, a Session owns its mask buffer, fuses the per-token
// work into Step, and returns its grammar state to the engine's pool on
// Close. Sessions are not safe for concurrent use; drive each from one
// goroutine (FillBatch coordinates batch fills internally).
type Session struct {
	e *Engine
	// cg is the grammar of a plain session; tags the tag set of a
	// structural-tag session. Exactly one is non-nil.
	cg    *CompiledGrammar
	tags  *CompiledTagSet
	s     sessionState
	specW spec.Window
}

// Step is the fused per-token call for driving one sequence directly:
// accept the sampled token, probe the jump-forward continuation, and fill
// Mask for the next step. Batch loops that overlap fills with the GPU use
// Accept instead and let FillBatch compute the mask.
func (s *Session) Step(id int32) (StepResult, error) { return s.s.Step(id) }

// Accept advances the session by the sampled token without recomputing the
// mask — the batch-serving path where the next round's FillBatch fills every
// stale mask in parallel under the GPU step. Accepting the stop token
// terminates the session.
func (s *Session) Accept(id int32) error { return s.s.Accept(id) }

// Fill recomputes the mask for the next decoding step (Step does this
// automatically; Fill is for after AcceptString/Rollback).
func (s *Session) Fill() maskcache.FillStats { return s.s.Fill() }

// Mask is the allowed-token bitmask for the next decoding step: bit i set
// means token i keeps the output inside the grammar. The slice is owned by
// the session and rewritten by Step/Fill.
func (s *Session) Mask() []uint64 { return s.s.Mask() }

// AcceptString advances the session by raw bytes as one checkpoint (prompt
// priming or jump-forward insertion); call Fill (or the next Step) before
// reading Mask again.
func (s *Session) AcceptString(text string) error { return s.s.AcceptString(text) }

// JumpForward returns the deterministic continuation of the current state
// (Appendix B), or "" when the next byte is ambiguous.
func (s *Session) JumpForward() string { return s.s.JumpForward() }

// Rollback undoes the last n Step/AcceptString calls; call Fill before
// reading Mask again.
func (s *Session) Rollback(n int) error { return s.s.Rollback(n) }

// HistoryCap returns the session's rollback window: the largest number of
// Step/AcceptString calls that can ever be undone (configured with
// WithMaxRollback). Speculative draft windows are bounded by it.
func (s *Session) HistoryCap() int { return s.s.HistoryCap() }

// SpecResult is the outcome of one speculative draft-verify step: how many
// draft tokens were proposed, speculatively accepted by the grammar,
// confirmed by the target model, rolled back, and the bonus token.
type SpecResult = spec.Result

// SpecSampler delivers the target model's verdict at one draft-window
// position, given the grammar's allowed-token mask there. It is consulted
// once per confirmed position plus once for the bonus position, in order —
// a sampler drawing from a seeded RNG consumes exactly the same stream as a
// non-speculative decode, which keeps speculative output byte-identical.
type SpecSampler = spec.Sampler

// ErrSpecWindowExceeded reports a draft window the session's rollback
// history could not retract; the session state is untouched and the step
// should be decoded non-speculatively.
var ErrSpecWindowExceeded = spec.ErrWindowExceeded

// SpeculativeStep runs one draft-verify decode step (speculative decoding
// on the rollback window, §3.3): the draft tokens are speculatively
// accepted under the grammar in one fused pass that records each position's
// allowed-token mask, sample delivers the target model's verdicts against
// those masks, and the rejected suffix is retracted with a single atomic
// Rollback. On return the session has advanced by draft[:res.Accepted] plus
// the bonus token (res.Bonus, EOS terminating the session) — accepted+1
// tokens for one GPU verify pass. Drafts longer than HistoryCap fail with
// ErrSpecWindowExceeded before touching state.
func (s *Session) SpeculativeStep(draft []int32, sample SpecSampler) (SpecResult, error) {
	return spec.Step(s.s, func() { s.s.Fill() }, spec.SliceProposer(draft), sample, &s.specW,
		spec.Options{MaxDraft: len(draft), EOS: s.e.compiler.info.EOSTokenID()})
}

// Checkpoint returns a portable snapshot of the session's current grammar
// position, restorable into any session of the same compiled grammar via
// Engine.OpenSessionAt — fork-style tree exploration across goroutines,
// and the unit the engine's prefix cache stores. Structural-tag sessions
// do not support checkpoints (the dispatcher's segment state is not
// portable) and return an error.
func (s *Session) Checkpoint() (*Checkpoint, error) {
	ps, ok := s.s.(*serve.Session)
	if !ok {
		return nil, fmt.Errorf("xgrammar: structural-tag sessions do not support checkpoints")
	}
	return ps.Checkpoint(), nil
}

// CanTerminate reports whether the grammar permits stopping here.
func (s *Session) CanTerminate() bool { return s.s.CanTerminate() }

// IsTerminated reports whether the stop token has been accepted.
func (s *Session) IsTerminated() bool { return s.s.IsTerminated() }

// Grammar returns the compiled grammar the session decodes against, or nil
// for a structural-tag session (see Tags).
func (s *Session) Grammar() *CompiledGrammar { return s.cg }

// Tags returns the structural-tag set of a tag session, or nil for a plain
// grammar session.
func (s *Session) Tags() *CompiledTagSet { return s.tags }

// TagSegments returns the completed structural-tag segment spans recorded
// so far for a tag session (a bounded window; see structtag.Session), or
// nil for plain grammar sessions. The slice is owned by the session and
// valid until Close.
func (s *Session) TagSegments() []structtag.SegmentSpan {
	if st, isTag := s.s.(*structtag.Session); isTag {
		return st.SegmentSpans()
	}
	return nil
}

// InTag reports the active structural-tag index for a tag session currently
// inside a constrained segment; ok is false in free text and for plain
// grammar sessions.
func (s *Session) InTag() (tag int, ok bool) {
	if st, isTag := s.s.(*structtag.Session); isTag && st.InTag() {
		return st.TagIndex(), true
	}
	return 0, false
}

// Close releases the session's grammar state back to the engine pool. The
// session must not be used afterwards.
func (s *Session) Close() { s.s.Close() }
