module xgrammar

go 1.22
