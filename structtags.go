package xgrammar

import (
	"fmt"

	"xgrammar/internal/builtin"
	"xgrammar/internal/ebnf"
	"xgrammar/internal/grammar"
	"xgrammar/internal/jsonschema"
	"xgrammar/internal/regexconv"
	"xgrammar/internal/structtag"
)

// StructuralTag is one trigger in a structural-tag request: free text runs
// unconstrained until Begin appears in the decoded stream, then the tag's
// content grammar (typically a per-tool JSON Schema) is enforced until End,
// after which free text resumes. This is the LLM function-calling shape —
// `<tool_call>{...}</tool_call>` islands inside prose.
type StructuralTag struct {
	// Begin is the literal trigger (e.g. "<tool_call>"). Begin tags in one
	// request must be non-empty and prefix-free.
	Begin string
	// Grammar constrains the segment content between Begin and End.
	Grammar GrammarSpec
	// End is the literal that closes the segment. It is composed into the
	// compiled segment grammar, so the segment ends exactly after it. An
	// empty End closes the segment as soon as the content grammar has no
	// continuation.
	End string
}

// StructuralTags is a structural-tag request spec: the full set of triggers
// one generation dispatches over.
type StructuralTags []StructuralTag

// CompiledTagSet is a compiled structural-tag dispatcher: per-tag segment
// grammars (each resolved through the compiled-grammar LRU and disk store,
// so shared tools compile once) plus the trigger trie and pooled dispatcher
// sessions. It is immutable and safe for concurrent use.
type CompiledTagSet struct {
	info *TokenizerInfo
	tags StructuralTags
	segs []*CompiledGrammar
	set  *structtag.Set
}

// Tags returns the spec the set was compiled from.
func (ts *CompiledTagSet) Tags() StructuralTags { return ts.tags }

// SegmentGrammar returns the compiled segment grammar (content plus end
// tag) of tag i.
func (ts *CompiledTagSet) SegmentGrammar(i int) *CompiledGrammar { return ts.segs[i] }

// TokenizerInfo returns the tokenizer the set dispatches over.
func (ts *CompiledTagSet) TokenizerInfo() *TokenizerInfo { return ts.info }

// Dispatch exposes the internal dispatcher (for sibling packages in this
// module: the serving engine and benchmarks).
func (ts *CompiledTagSet) Dispatch() *structtag.Set { return ts.set }

// CompileStructuralTags compiles a structural-tag spec. Each tag's segment
// grammar — the tag's content grammar with the end tag composed into the
// root rule — routes through the compiled-grammar cache (and the disk
// store, when attached) exactly like a direct Compile* call, so per-tool
// schemas shared across requests and tag sets are compiled once.
func (c *Compiler) CompileStructuralTags(tags StructuralTags) (*CompiledTagSet, error) {
	if len(tags) == 0 {
		return nil, fmt.Errorf("xgrammar: structural tags: empty tag list")
	}
	segs := make([]*CompiledGrammar, len(tags))
	st := make([]structtag.Tag, len(tags))
	for i, t := range tags {
		if t.Begin == "" {
			return nil, fmt.Errorf("xgrammar: structural tag %d: empty begin tag", i)
		}
		cg, err := c.CompileTagSegment(t.Grammar, t.End)
		if err != nil {
			return nil, fmt.Errorf("xgrammar: structural tag %d (begin %q): %w", i, t.Begin, err)
		}
		segs[i] = cg
		st[i] = structtag.Tag{Begin: t.Begin, End: t.End, Pool: cg.sessionPool()}
	}
	set, err := structtag.NewSet(st, c.info.tok, c.cfg.maxHistory)
	if err != nil {
		return nil, fmt.Errorf("xgrammar: %w", err)
	}
	return &CompiledTagSet{info: c.info, tags: tags, segs: segs, set: set}, nil
}

// CompileTagSegment compiles a structural-tag segment grammar: the content
// grammar of spec with the end-tag literal appended to the root rule, so
// the segment's language is exactly content followed by end. Results are
// cached like any other compile, keyed by (content spec, end tag).
func (c *Compiler) CompileTagSegment(spec GrammarSpec, end string) (*CompiledGrammar, error) {
	kind, src, err := spec.keyParts()
	if err != nil {
		return nil, err
	}
	// The end tag is hex-escaped into the cache-key kind so no end tag can
	// collide with the kind/source delimiter.
	segKind := fmt.Sprintf("tagseg|%s|end=%x", kind, end)
	return c.cached(segKind, src, func() (*CompiledGrammar, error) {
		g, diags, err := specGrammar(spec)
		if err != nil {
			return nil, err
		}
		cg, err := c.compile(appendEndTag(g, end))
		if err != nil {
			return nil, err
		}
		cg.schemaDiags = diags
		return cg, nil
	})
}

// specGrammar builds the grammar IR for a spec — the pre-PDA stage of the
// Compile* methods, shared with segment composition.
func specGrammar(spec GrammarSpec) (*grammar.Grammar, []string, error) {
	switch spec.Kind {
	case KindEBNF:
		g, err := ebnf.Parse(spec.Source)
		return g, nil, err
	case KindJSONSchema:
		g, diags, err := jsonschema.CompileFull([]byte(spec.Source), jsonschema.Options{
			AllowAdditionalProperties: spec.Schema.AllowAdditionalProperties,
		})
		return g, diagStrings(diags), err
	case KindRegex:
		e, err := regexconv.Convert(spec.Source)
		if err != nil {
			return nil, nil, err
		}
		return &grammar.Grammar{Rules: []grammar.Rule{{Name: "root", Body: e}}, Root: 0}, nil, nil
	case KindBuiltin:
		switch spec.Source {
		case "json":
			return builtin.JSON(), nil, nil
		case "xml":
			return builtin.XML(), nil, nil
		case "python":
			return builtin.PythonDSL(), nil, nil
		}
	}
	_, _, err := spec.keyParts()
	return nil, nil, err
}

// appendEndTag wraps a grammar so its language becomes L(g) followed by the
// end literal. The input grammar is not modified (rule bodies are shared;
// pda.Compile clones before transforming).
func appendEndTag(g *grammar.Grammar, end string) *grammar.Grammar {
	if end == "" {
		return g
	}
	rules := make([]grammar.Rule, len(g.Rules), len(g.Rules)+1)
	copy(rules, g.Rules)
	name := "tagseg_root"
	for taken := true; taken; {
		taken = false
		for _, r := range rules {
			if r.Name == name {
				name += "_"
				taken = true
				break
			}
		}
	}
	rules = append(rules, grammar.Rule{
		Name: name,
		Body: &grammar.Seq{Items: []grammar.Expr{
			&grammar.RuleRef{Index: g.Root, Name: rules[g.Root].Name},
			&grammar.Literal{Bytes: []byte(end)},
		}},
	})
	return &grammar.Grammar{Rules: rules, Root: len(rules) - 1}
}

func diagStrings(diags []jsonschema.Diagnostic) []string {
	if len(diags) == 0 {
		return nil
	}
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.String()
	}
	return out
}
