package xgrammar

import (
	"xgrammar/internal/backend"

	// Register the shipped model backends ("sim", "http") so OpenBackend
	// resolves them for any importer of the public package.
	_ "xgrammar/internal/backend/httpllm"
	_ "xgrammar/internal/backend/simllm"
)

// ModelBackend is the pluggable model side of the decode stack: the grammar
// layers constrain WHAT may be emitted, a ModelBackend decides WHICH allowed
// token is emitted. See internal/backend for the contract.
type ModelBackend = backend.Backend

// ModelSequence is one live generation against a ModelBackend.
type ModelSequence = backend.Sequence

// ModelRequest describes one generation a ModelBackend serves.
type ModelRequest = backend.Request

// ModelTiming is a backend's accelerator-latency model (ZeroModelTiming for
// real, measured backends).
type ModelTiming = backend.Timing

// ZeroModelTiming is the Timing of real backends: all modelled charges zero.
type ZeroModelTiming = backend.ZeroTiming

// ModelProposer is a draft model's per-position guess during speculative
// decoding.
type ModelProposer = backend.Proposer

// ModelSpeculator is the optional draft hook of a ModelSequence.
type ModelSpeculator = backend.Speculator

// ModelTriggerProposer is the optional tool-call election hook of a
// ModelSequence (simulation backends only).
type ModelTriggerProposer = backend.TriggerProposer

// ErrNoToken reports that a backend cannot emit any token under the mask —
// a clean end-of-sequence, not a failure.
var ErrNoToken = backend.ErrNoToken

// OpenBackend builds a model backend from a registry spec such as "sim" or
// "http:http://127.0.0.1:8080".
func OpenBackend(spec string) (ModelBackend, error) { return backend.Open(spec) }

// RegisterBackend installs a backend factory under a name; the cfg argument
// is everything after the first ':' of the spec.
func RegisterBackend(name string, factory func(cfg string) (ModelBackend, error)) {
	backend.Register(name, factory)
}

// BackendNames lists the registered backend names, sorted.
func BackendNames() []string { return backend.Names() }
