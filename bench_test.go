package xgrammar

// Benchmarks regenerating each table and figure of the paper (§4). Per-step
// benches measure one mask-generation step; end-to-end benches run one
// engine batch. `go test -bench=. -benchmem` prints them all; the cmd/xgbench
// tool prints the same experiments as paper-style tables.

import (
	"sync"
	"testing"

	"xgrammar/internal/backend/simllm"
	"xgrammar/internal/baselines"
	"xgrammar/internal/bitset"
	"xgrammar/internal/builtin"
	"xgrammar/internal/engine"
	"xgrammar/internal/jsonschema"
	"xgrammar/internal/llmsim"
	"xgrammar/internal/maskcache"
	"xgrammar/internal/matcher"
	"xgrammar/internal/pda"
	"xgrammar/internal/tokenizer"
	"xgrammar/internal/workload"
)

const benchVocab = 8000

var (
	benchOnce sync.Once
	benchTok  *tokenizer.Tokenizer
	benchEnv  struct {
		jsonOpt    *pda.PDA
		jsonPlain  *pda.PDA
		jsonMerged *pda.PDA
		cacheFull  *maskcache.Cache
		cacheNoCtx *maskcache.Cache
		cacheMerge *maskcache.Cache
		schema     *experimentsSchema
		jsonDocs   []string
	}
)

type experimentsSchema struct {
	task workload.SchemaTask
	pda  *pda.PDA
	xg   *baselines.XGBackend
	fsm  *baselines.RegexFSM
	cw   *baselines.CharWalk
	lcp  *baselines.LlamaCpp
}

func benchSetup(b *testing.B) {
	b.Helper()
	benchOnce.Do(func() {
		benchTok = tokenizer.BuildDefault(benchVocab)
		var err error
		benchEnv.jsonOpt, err = pda.Compile(builtin.JSON(), pda.AllOptimizations)
		if err != nil {
			panic(err)
		}
		benchEnv.jsonPlain, _ = pda.Compile(builtin.JSON(), pda.Options{})
		benchEnv.jsonMerged, _ = pda.Compile(builtin.JSON(), pda.Options{NodeMerging: true})
		benchEnv.cacheFull = maskcache.Build(benchEnv.jsonOpt, benchTok, maskcache.Options{ContextExpansion: true})
		benchEnv.cacheNoCtx = maskcache.Build(benchEnv.jsonOpt, benchTok, maskcache.Options{})
		benchEnv.cacheMerge = maskcache.Build(benchEnv.jsonMerged, benchTok, maskcache.Options{})
		benchEnv.jsonDocs = workload.JSONDocs(8, 31)

		task := workload.SchemaTasks(1, 2025)[0]
		g, err := jsonschema.Compile(task.Schema, jsonschema.Options{})
		if err != nil {
			panic(err)
		}
		p, err := pda.Compile(g, pda.AllOptimizations)
		if err != nil {
			panic(err)
		}
		cache := maskcache.Build(p, benchTok, maskcache.Options{ContextExpansion: true})
		es := &experimentsSchema{task: task, pda: p}
		es.xg = baselines.NewXGBackend(p, cache, benchTok, "xgrammar")
		es.lcp = baselines.NewLlamaCpp(p, benchTok)
		if fsm, err := baselines.NewRegexFSM(g, benchTok); err == nil {
			fsm.PrecomputeAll()
			es.fsm = fsm
		}
		if cw, err := baselines.NewCharWalk(g, benchTok); err == nil {
			es.cw = cw
		}
		benchEnv.schema = es
	})
}

// stepBench measures per-step mask generation while replaying docs.
func stepBench(b *testing.B, backend baselines.Backend, docs []string) {
	b.Helper()
	mask := bitset.New(benchTok.VocabSize())
	var sess baselines.Session
	var ids []int32
	doc, pos := 0, 0
	reset := func() {
		sess = backend.NewSession()
		ids = benchTok.Encode(docs[doc%len(docs)])
		doc++
		pos = 0
	}
	reset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess.FillMask(mask)
		b.StopTimer()
		if pos >= len(ids) {
			reset()
		} else {
			if err := sess.Accept(ids[pos]); err != nil {
				b.Fatal(err)
			}
			pos++
		}
		b.StartTimer()
	}
}

// --- Figure 9: per-token mask generation latency -------------------------

func BenchmarkFig9SchemaXGrammar(b *testing.B) {
	benchSetup(b)
	stepBench(b, benchEnv.schema.xg, []string{benchEnv.schema.task.Instance})
}

func BenchmarkFig9SchemaOutlinesFSM(b *testing.B) {
	benchSetup(b)
	if benchEnv.schema.fsm == nil {
		b.Skip("schema not regex-representable")
	}
	stepBench(b, benchEnv.schema.fsm, []string{benchEnv.schema.task.Instance})
}

func BenchmarkFig9SchemaLMFormatEnforcer(b *testing.B) {
	benchSetup(b)
	if benchEnv.schema.cw == nil {
		b.Skip("schema not regex-representable")
	}
	stepBench(b, benchEnv.schema.cw, []string{benchEnv.schema.task.Instance})
}

func BenchmarkFig9SchemaLlamaCpp(b *testing.B) {
	benchSetup(b)
	stepBench(b, benchEnv.schema.lcp, []string{benchEnv.schema.task.Instance})
}

func BenchmarkFig9CFGJSONXGrammar(b *testing.B) {
	benchSetup(b)
	stepBench(b, baselines.NewXGBackend(benchEnv.jsonOpt, benchEnv.cacheFull, benchTok, "xgrammar"), benchEnv.jsonDocs)
}

func BenchmarkFig9CFGJSONOutlines(b *testing.B) {
	benchSetup(b)
	stepBench(b, baselines.NewOutlinesCFG(benchEnv.jsonOpt, benchTok), benchEnv.jsonDocs)
}

func BenchmarkFig9CFGJSONLlamaCpp(b *testing.B) {
	benchSetup(b)
	stepBench(b, baselines.NewLlamaCpp(benchEnv.jsonPlain, benchTok), benchEnv.jsonDocs)
}

func BenchmarkFig9CFGXMLXGrammar(b *testing.B) {
	benchSetup(b)
	p, _ := pda.Compile(builtin.XML(), pda.AllOptimizations)
	c := maskcache.Build(p, benchTok, maskcache.Options{ContextExpansion: true})
	stepBench(b, baselines.NewXGBackend(p, c, benchTok, "xgrammar"), workload.XMLDocs(6, 8))
}

func BenchmarkFig9CFGPythonXGrammar(b *testing.B) {
	benchSetup(b)
	p, _ := pda.Compile(builtin.PythonDSL(), pda.AllOptimizations)
	c := maskcache.Build(p, benchTok, maskcache.Options{ContextExpansion: true})
	stepBench(b, baselines.NewXGBackend(p, c, benchTok, "xgrammar"), workload.PythonPrograms(6, 9))
}

// --- Table 3: ablation ----------------------------------------------------

func BenchmarkTab3PDABaseline(b *testing.B) {
	benchSetup(b)
	stepBench(b, baselines.NewLlamaCpp(benchEnv.jsonPlain, benchTok), benchEnv.jsonDocs)
}

func BenchmarkTab3NodeMerging(b *testing.B) {
	benchSetup(b)
	stepBench(b, baselines.NewLlamaCpp(benchEnv.jsonMerged, benchTok), benchEnv.jsonDocs)
}

func BenchmarkTab3AdaptiveCache(b *testing.B) {
	benchSetup(b)
	stepBench(b, baselines.NewXGBackend(benchEnv.jsonMerged, benchEnv.cacheMerge, benchTok, "xgrammar"), benchEnv.jsonDocs)
}

func BenchmarkTab3RuleInlining(b *testing.B) {
	benchSetup(b)
	stepBench(b, baselines.NewXGBackend(benchEnv.jsonOpt, benchEnv.cacheNoCtx, benchTok, "xgrammar"), benchEnv.jsonDocs)
}

func BenchmarkTab3ContextExpansion(b *testing.B) {
	benchSetup(b)
	stepBench(b, baselines.NewXGBackend(benchEnv.jsonOpt, benchEnv.cacheFull, benchTok, "xgrammar"), benchEnv.jsonDocs)
}

// --- Figure 10 / Tables 1-2: end-to-end engine ---------------------------

func e2eBench(b *testing.B, mode engine.Mode, backend baselines.Backend, batch int, jf bool) {
	b.Helper()
	targets := make([]string, batch)
	for i := range targets {
		targets[i] = benchEnv.jsonDocs[i%len(benchEnv.jsonDocs)]
	}
	cfg := engine.Config{
		Model:       simllm.NewTeacher(benchTok, llmsim.Profile{}, simllm.TeacherOptions{}), // zero GPU time: measure grammar side
		Mode:        mode,
		Grammar:     backend,
		Tok:         benchTok,
		JumpForward: jf,
		MaxSteps:    4000,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		met, _, err := engine.Run(cfg, llmsim.NewRequests(targets, 139))
		if err != nil {
			b.Fatal(err)
		}
		if met.OutputTokens == 0 {
			b.Fatal("no output tokens")
		}
	}
}

func BenchmarkFig10XGrammarBatch1(b *testing.B) {
	benchSetup(b)
	e2eBench(b, engine.Overlap, baselines.NewXGBackend(benchEnv.jsonOpt, benchEnv.cacheFull, benchTok, "xgrammar"), 1, false)
}

func BenchmarkFig10XGrammarBatch16(b *testing.B) {
	benchSetup(b)
	e2eBench(b, engine.Overlap, baselines.NewXGBackend(benchEnv.jsonOpt, benchEnv.cacheFull, benchTok, "xgrammar"), 16, false)
}

func BenchmarkFig10OutlinesCFGBatch1(b *testing.B) {
	benchSetup(b)
	e2eBench(b, engine.Serial, baselines.NewOutlinesCFG(benchEnv.jsonOpt, benchTok), 1, false)
}

func BenchmarkTab1OutlinesFSMSchema(b *testing.B) {
	benchSetup(b)
	if benchEnv.schema.fsm == nil {
		b.Skip("schema not regex-representable")
	}
	sTargets := []string{benchEnv.schema.task.Instance}
	cfg := engine.Config{Model: simllm.NewTeacher(benchTok, llmsim.Profile{}, simllm.TeacherOptions{}), Mode: engine.Serial, Grammar: benchEnv.schema.fsm, Tok: benchTok, MaxSteps: 4000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := engine.Run(cfg, llmsim.NewRequests(sTargets, 139)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTab2ConstrainedOverheadCPU(b *testing.B) {
	benchSetup(b)
	e2eBench(b, engine.Overlap, baselines.NewXGBackend(benchEnv.jsonOpt, benchEnv.cacheFull, benchTok, "xgrammar"), 1, false)
}

// --- Figure 11: jump-forward ----------------------------------------------

func BenchmarkFig11JumpForward(b *testing.B) {
	benchSetup(b)
	cfg := engine.Config{
		Model:       simllm.NewTeacher(benchTok, llmsim.Profile{}, simllm.TeacherOptions{}),
		Mode:        engine.Overlap,
		Grammar:     benchEnv.schema.xg,
		Tok:         benchTok,
		JumpForward: true,
		MaxSteps:    4000,
	}
	reqs := llmsim.NewRequests([]string{benchEnv.schema.task.Instance}, 139)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		met, _, err := engine.Run(cfg, reqs)
		if err != nil {
			b.Fatal(err)
		}
		if met.JumpForwardTokens == 0 {
			b.Fatal("no jump-forward tokens")
		}
	}
}

// --- Figure 12 analogue: full guided generation on the public API --------

func BenchmarkFig12GuidedDecodeLoop(b *testing.B) {
	benchSetup(b)
	info := DefaultTokenizer(benchVocab)
	cg, err := NewCompiler(info).CompileBuiltinJSON()
	if err != nil {
		b.Fatal(err)
	}
	doc := benchEnv.jsonDocs[0]
	mask := make([]uint64, cg.MaskWords())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewMatcher(cg)
		emitted := 0
		for !m.IsTerminated() {
			m.FillNextTokenBitmask(mask)
			var next int32
			if emitted >= len(doc) {
				next = info.EOSTokenID()
			} else {
				next = info.Encode(doc[emitted:])[0]
			}
			if err := m.AcceptToken(next); err != nil {
				b.Fatal(err)
			}
			if next != info.EOSTokenID() {
				emitted += len(info.TokenBytes(next))
			}
		}
	}
}

// --- §3 statistics: preprocessing -----------------------------------------

func BenchmarkStatsCacheBuildJSON(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		maskcache.Build(benchEnv.jsonOpt, benchTok, maskcache.Options{ContextExpansion: true})
	}
}

func BenchmarkStatsCacheBuildNoPrefixSharingComparator(b *testing.B) {
	// Comparator for the §3.3 claim: scanning the vocabulary from the root
	// node without the persistent-stack prefix sharing.
	benchSetup(b)
	exec := matcher.NewExec(benchEnv.jsonOpt)
	m := matcher.New(exec, 0)
	mask := bitset.New(benchTok.VocabSize())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		maskcache.FullScanMask(exec, benchTok, m.States(), mask, m.CanTerminate(), false)
	}
}

func BenchmarkStatsCacheBuildPrefixSharedComparator(b *testing.B) {
	benchSetup(b)
	exec := matcher.NewExec(benchEnv.jsonOpt)
	m := matcher.New(exec, 0)
	mask := bitset.New(benchTok.VocabSize())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		maskcache.FullScanMask(exec, benchTok, m.States(), mask, m.CanTerminate(), true)
	}
}

// --- Concurrent compilation subsystem -------------------------------------

// BenchmarkMaskCacheBuild compares the serial §3.1–§3.3 preprocessing scan
// against the worker-pool build (output is byte-identical; see
// TestParallelBuildMatchesSerial).
func BenchmarkMaskCacheBuild(b *testing.B) {
	benchSetup(b)
	for _, cfg := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				maskcache.Build(benchEnv.jsonOpt, benchTok, maskcache.Options{ContextExpansion: true, Workers: cfg.workers})
			}
		})
	}
}

// BenchmarkCompileGrammarCacheHit measures a CompileGrammar call served from
// the compiled-grammar LRU (the steady state of a server that sees the same
// few grammars), against the cold compile underneath it.
func BenchmarkCompileGrammarCacheHit(b *testing.B) {
	benchSetup(b)
	info := DefaultTokenizer(benchVocab)
	c := NewCompiler(info)
	if _, err := c.CompileBuiltinJSON(); err != nil {
		b.Fatal(err)
	}
	before := c.CompileCacheStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.CompileBuiltinJSON(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	after := c.CompileCacheStats()
	if after.Builds != before.Builds {
		b.Fatalf("cache-hit bench rebuilt the grammar: %+v", after)
	}
	if after.Hits-before.Hits != int64(b.N) {
		b.Fatalf("expected %d hits, got %d", b.N, after.Hits-before.Hits)
	}
}

func BenchmarkCompileGrammarCold(b *testing.B) {
	benchSetup(b)
	info := DefaultTokenizer(benchVocab)
	c := NewCompiler(info, WithoutCompileCache())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.CompileBuiltinJSON(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFillBatch measures masking a 16-sequence decode batch: the
// goroutine fan-out against the sequential per-matcher loop.
func BenchmarkFillBatch(b *testing.B) {
	benchSetup(b)
	info := DefaultTokenizer(benchVocab)
	cg, err := NewCompiler(info).CompileBuiltinJSON()
	if err != nil {
		b.Fatal(err)
	}
	const batch = 16
	matchers := make([]*Matcher, batch)
	masks := make([][]uint64, batch)
	for i := range matchers {
		matchers[i] = NewMatcher(cg)
		doc := benchEnv.jsonDocs[i%len(benchEnv.jsonDocs)]
		n := i % 8
		if n > len(doc) {
			n = len(doc)
		}
		if err := matchers[i].AcceptString(doc[:n]); err != nil {
			b.Fatal(err)
		}
		masks[i] = make([]uint64, cg.MaskWords())
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := range matchers {
				matchers[j].FillNextTokenBitmask(masks[j])
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			FillNextTokenBitmaskBatch(matchers, masks)
		}
	})
}

// --- Serving runtime: pooled sessions, fused step --------------------------

// BenchmarkEngineSessionStep measures the public serving API's fused
// per-token step (accept + jump-forward probe + mask fill) on a pooled
// session in steady state; the runtime's guarantee is 0 allocs/op.
func BenchmarkEngineSessionStep(b *testing.B) {
	benchSetup(b)
	info := DefaultTokenizer(benchVocab)
	compiler := NewCompiler(info)
	cg, err := compiler.CompileBuiltinJSON()
	if err != nil {
		b.Fatal(err)
	}
	eng := NewEngine(compiler)
	var ids []int32
	for _, doc := range benchEnv.jsonDocs {
		ids = append(ids, info.Encode(doc)...)
		ids = append(ids, info.Encode(", ")...)
	}
	// Wrap the docs in one long array so the stream never terminates.
	ids = append(info.Encode("["), ids...)

	s := eng.OpenSession(cg)
	for _, id := range ids { // settle capacities
		if _, err := s.Step(id); err != nil {
			b.Fatal(err)
		}
	}
	s.Close()
	s = eng.OpenSession(cg)
	i := 0
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if i == len(ids) {
			b.StopTimer()
			s.Close()
			s = eng.OpenSession(cg)
			i = 0
			b.StartTimer()
		}
		if _, err := s.Step(ids[i]); err != nil {
			b.Fatal(err)
		}
		i++
	}
}
