package xgrammar

import "testing"

// TestBranchIndependence: branches evolve independently from a shared
// prefix, the §3.3 tree-generation use case.
func TestBranchIndependence(t *testing.T) {
	cg := mustCompileJSON(t)
	root := NewMatcher(cg)
	if err := root.AcceptString(`{"answer": `); err != nil {
		t.Fatal(err)
	}
	b1 := root.Branch()
	b2 := root.Branch()
	if err := b1.AcceptString(`true`); err != nil {
		t.Fatal(err)
	}
	if err := b2.AcceptString(`[1, 2`); err != nil {
		t.Fatal(err)
	}
	// The root must be untouched: it still needs a value.
	if root.CanTerminate() {
		t.Fatal("root corrupted by branches")
	}
	if err := b1.AcceptString(`}`); err != nil {
		t.Fatal(err)
	}
	if !b1.CanTerminate() {
		t.Fatal("b1 should be complete")
	}
	if b2.CanTerminate() {
		t.Fatal("b2 should be mid-array")
	}
	if err := b2.AcceptString(`]}`); err != nil {
		t.Fatal(err)
	}
	if !b2.CanTerminate() {
		t.Fatal("b2 should be complete")
	}
	// Root can still take its own path.
	if err := root.AcceptString(`"third branch"}`); err != nil {
		t.Fatal(err)
	}
	if !root.CanTerminate() {
		t.Fatal("root path broken")
	}
}

func TestBranchMaskEqualsOriginal(t *testing.T) {
	cg := mustCompileJSON(t)
	m := NewMatcher(cg)
	if err := m.AcceptString(`[1, `); err != nil {
		t.Fatal(err)
	}
	b := m.Branch()
	m1 := make([]uint64, cg.MaskWords())
	m2 := make([]uint64, cg.MaskWords())
	m.FillNextTokenBitmask(m1)
	b.FillNextTokenBitmask(m2)
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatal("branch mask differs from original")
		}
	}
}

func TestBranchOfTerminated(t *testing.T) {
	cg := mustCompileJSON(t)
	m := NewMatcher(cg)
	if err := m.AcceptString(`7`); err != nil {
		t.Fatal(err)
	}
	if err := m.AcceptToken(cg.TokenizerInfo().EOSTokenID()); err != nil {
		t.Fatal(err)
	}
	b := m.Branch()
	if !b.IsTerminated() {
		t.Fatal("branch lost termination state")
	}
}

func TestDiscardManyBranches(t *testing.T) {
	cg := mustCompileJSON(t)
	m := NewMatcher(cg)
	if err := m.AcceptString(`{"k": [`); err != nil {
		t.Fatal(err)
	}
	// Spawn and discard many speculative branches; the shared tree must not
	// leak (exercised via internal accounting in matcher tests; here we just
	// require no panic and root integrity).
	for i := 0; i < 100; i++ {
		b := m.Branch()
		if err := b.AcceptString(`1, 2, 3`); err != nil {
			t.Fatal(err)
		}
		b.Discard()
	}
	if err := m.AcceptString(`"still fine"]}`); err != nil {
		t.Fatal(err)
	}
	if !m.CanTerminate() {
		t.Fatal("root broken after branch churn")
	}
}
