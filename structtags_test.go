package xgrammar

import (
	"strings"
	"testing"
)

const tagTestSchema = `{
	"type": "object",
	"properties": {"n": {"type": "integer", "minimum": 0, "maximum": 9}},
	"required": ["n"]
}`

func testTagSpec() StructuralTags {
	return StructuralTags{
		{Begin: "<a>", Grammar: GrammarSpec{Kind: KindJSONSchema, Source: tagTestSchema}, End: "</a>"},
		{Begin: "<b>", Grammar: GrammarSpec{Kind: KindJSONSchema, Source: tagTestSchema}, End: "</b>"},
	}
}

// TestCompileStructuralTagsCached pins the sharing contract: per-tag
// segment grammars ride the compiled-grammar LRU, so recompiling the same
// tag set (or another set sharing a tool) runs zero new compilations.
func TestCompileStructuralTagsCached(t *testing.T) {
	comp := NewCompiler(DefaultTokenizer(600))
	if _, err := comp.CompileStructuralTags(testTagSpec()); err != nil {
		t.Fatal(err)
	}
	after := comp.CompileCacheStats().Compiles
	if after != 2 {
		t.Fatalf("expected 2 segment compiles (two distinct (schema, end) pairs), got %d", after)
	}
	if _, err := comp.CompileStructuralTags(testTagSpec()); err != nil {
		t.Fatal(err)
	}
	st := comp.CompileCacheStats()
	if st.Compiles != after {
		t.Fatalf("recompiling the same tag set ran %d new compiles", st.Compiles-after)
	}
	if st.Hits < 2 {
		t.Fatalf("expected cache hits for shared segments, stats %+v", st)
	}
	// A different end tag is a different segment artifact.
	other := StructuralTags{{Begin: "<c>", Grammar: GrammarSpec{Kind: KindJSONSchema, Source: tagTestSchema}, End: "<!c>"}}
	if _, err := comp.CompileStructuralTags(other); err != nil {
		t.Fatal(err)
	}
	if got := comp.CompileCacheStats().Compiles; got != after+1 {
		t.Fatalf("distinct end tag: expected one more compile, got %d (was %d)", got, after)
	}
}

// TestEngineTagSessionFused drives a tag session through the fused Step
// API and a mixed FillBatch (tag session + plain grammar session).
func TestEngineTagSessionFused(t *testing.T) {
	info := DefaultTokenizer(600)
	comp := NewCompiler(info)
	eng := NewEngine(comp)
	defer eng.Close()

	ts, err := comp.CompileStructuralTags(testTagSpec())
	if err != nil {
		t.Fatal(err)
	}
	tagSess := eng.OpenTagSession(ts)
	defer tagSess.Close()
	plainSess, err := eng.OpenGrammarSession(`root ::= "x" [0-9]+`)
	if err != nil {
		t.Fatal(err)
	}
	defer plainSess.Close()

	if g := tagSess.Grammar(); g != nil {
		t.Fatal("tag session reports a whole-completion grammar")
	}
	if tagSess.Tags() != ts {
		t.Fatal("tag session lost its tag set")
	}
	if _, ok := tagSess.InTag(); ok {
		t.Fatal("fresh tag session inside a segment")
	}

	script := `hi <a>`
	for _, id := range info.Encode(script) {
		if _, err := tagSess.Step(id); err != nil {
			t.Fatal(err)
		}
	}
	tag, ok := tagSess.InTag()
	if !ok || tag != 0 {
		t.Fatalf("InTag = (%d, %v) after begin tag", tag, ok)
	}
	if jf := tagSess.JumpForward(); !strings.HasPrefix(jf, `{"n": `) {
		t.Fatalf("jump-forward in segment = %q", jf)
	}
	// Mixed batch fill: both session kinds through one worker-pool call.
	stats := eng.FillBatch([]*Session{tagSess, plainSess})
	if len(stats) != 2 {
		t.Fatalf("batch fill returned %d stats", len(stats))
	}
	if err := tagSess.AcceptString(`{"n": 4}</a>`); err != nil {
		t.Fatal(err)
	}
	if _, ok := tagSess.InTag(); ok {
		t.Fatal("segment did not close")
	}
	if !tagSess.CanTerminate() {
		t.Fatal("free text cannot terminate")
	}
	if err := tagSess.Accept(info.EOSTokenID()); err != nil {
		t.Fatal(err)
	}
	if !tagSess.IsTerminated() {
		t.Fatal("EOS did not terminate the tag session")
	}
}

// TestSchemaDiagnosticsSurface pins the top-level diagnostics plumbing.
func TestSchemaDiagnosticsSurface(t *testing.T) {
	comp := NewCompiler(DefaultTokenizer(600))
	cg, err := comp.CompileJSONSchema([]byte(`{"type": "integer", "minimum": 5}`), SchemaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	diags := cg.SchemaDiagnostics()
	if len(diags) != 1 || !strings.Contains(diags[0], "minimum 5") {
		t.Fatalf("diagnostics = %v, want the partially-enforced minimum", diags)
	}
	exact, err := comp.CompileJSONSchema([]byte(`{"type": "integer", "minimum": 0}`), SchemaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(exact.SchemaDiagnostics()) != 0 {
		t.Fatalf("exact schema produced diagnostics %v", exact.SchemaDiagnostics())
	}
}
