package xgrammar

import (
	"sync"
	"testing"
)

// TestCompileSingleflight has 16 goroutines compile the same source through
// one compiler; the cache must coalesce them into exactly one build, and
// every caller must receive the same compiled grammar.
func TestCompileSingleflight(t *testing.T) {
	c := NewCompiler(testTokenizer(t))
	const callers = 16
	src := `root ::= "{" ( "\"k\":" ( "true" | "false" ) )? "}"`
	var wg sync.WaitGroup
	grammars := make([]*CompiledGrammar, callers)
	errs := make([]error, callers)
	gate := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-gate
			grammars[i], errs[i] = c.CompileGrammar(src)
		}(i)
	}
	close(gate)
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if grammars[i] != grammars[0] {
			t.Fatalf("caller %d received a different compiled grammar", i)
		}
	}
	st := c.CompileCacheStats()
	if st.Builds != 1 {
		t.Fatalf("Builds = %d, want exactly 1 (stats %+v)", st.Builds, st)
	}
	if st.Misses != 1 || st.Hits+st.Coalesced != callers-1 {
		t.Fatalf("cache counters inconsistent: %+v", st)
	}
}

// TestCompileCacheHit verifies that recompiling the same source returns the
// cached grammar without rebuilding, and that distinct sources, options, or
// tokenizers get distinct cache entries.
func TestCompileCacheHit(t *testing.T) {
	info := testTokenizer(t)
	c := NewCompiler(info)
	a1, err := c.CompileBuiltinJSON()
	if err != nil {
		t.Fatal(err)
	}
	a2, err := c.CompileBuiltinJSON()
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatal("second compile did not hit the cache")
	}
	st := c.CompileCacheStats()
	if st.Builds != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// A different grammar misses.
	if _, err := c.CompileGrammar(`root ::= "x"`); err != nil {
		t.Fatal(err)
	}
	if st = c.CompileCacheStats(); st.Builds != 2 {
		t.Fatalf("distinct source shared an entry: %+v", st)
	}
	// Schema options are part of the key.
	schema := []byte(`{"type": "object", "properties": {"a": {"type": "integer"}}}`)
	s1, err := c.CompileJSONSchema(schema, SchemaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.CompileJSONSchema(schema, SchemaOptions{AllowAdditionalProperties: true})
	if err != nil {
		t.Fatal(err)
	}
	if s1 == s2 {
		t.Fatal("different schema options shared a cache entry")
	}
	// A disabled cache rebuilds every time.
	nc := NewCompiler(info, WithoutCompileCache())
	b1, _ := nc.CompileBuiltinJSON()
	b2, _ := nc.CompileBuiltinJSON()
	if b1 == b2 {
		t.Fatal("cacheless compiler returned a shared grammar")
	}
	if st := nc.CompileCacheStats(); st != (CompileCacheStats{Compiles: 2}) {
		t.Fatalf("cacheless compiler reported cache stats: %+v", st)
	}
}

func TestCompileGrammarAsync(t *testing.T) {
	c := NewCompiler(testTokenizer(t))
	f := c.CompileGrammarAsync(`root ::= "a" | "b"`)
	cg, err := f.Result()
	if err != nil || cg == nil {
		t.Fatalf("async result: %v, %v", cg, err)
	}
	if _, _, ok := f.Poll(); !ok {
		t.Fatal("Poll not ready after Result returned")
	}
	// The future resolves through the same cache as the blocking path.
	direct, err := c.CompileGrammar(`root ::= "a" | "b"`)
	if err != nil || direct != cg {
		t.Fatalf("async result not shared with cache: %v, %v", direct, err)
	}
	// Errors propagate.
	if _, err := c.CompileGrammarAsync(`root ::= undefined_rule`).Result(); err == nil {
		t.Fatal("async compile of invalid grammar succeeded")
	}
	// The schema variant works too.
	if cg, err := c.CompileJSONSchemaAsync([]byte(`{"type": "boolean"}`), SchemaOptions{}).Result(); err != nil || cg == nil {
		t.Fatalf("schema async: %v, %v", cg, err)
	}
}

// TestFillNextTokenBitmaskBatch drives 16 sequences to different positions
// and checks the batched fill produces exactly the masks of per-matcher
// sequential fills.
func TestFillNextTokenBitmaskBatch(t *testing.T) {
	cg := mustCompileJSON(t)
	docs := []string{
		`{"a": 1`, `[1, 2, `, `"str`, `tru`, `{"k": [`, `-12.`, `[[[`, `{"x": {"y": `,
		``, `[`, `{`, `"`, `null`, `{"a": "b", `, `[true, `, `3e`,
	}
	matchers := make([]*Matcher, len(docs))
	masks := make([][]uint64, len(docs))
	want := make([][]uint64, len(docs))
	for i, doc := range docs {
		matchers[i] = NewMatcher(cg)
		if doc != "" {
			if err := matchers[i].AcceptString(doc); err != nil {
				t.Fatalf("doc %d %q: %v", i, doc, err)
			}
		}
		masks[i] = make([]uint64, cg.MaskWords())
		want[i] = make([]uint64, cg.MaskWords())
		if _, err := matchers[i].FillNextTokenBitmask(want[i]); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := FillNextTokenBitmaskBatch(matchers, masks)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != len(docs) {
		t.Fatalf("stats length %d", len(stats))
	}
	for i := range docs {
		for w := range want[i] {
			if masks[i][w] != want[i][w] {
				t.Fatalf("sequence %d (%q): batch mask differs at word %d", i, docs[i], w)
			}
		}
	}
	// Batched fill on a terminated matcher clears the mask, like the
	// sequential path.
	term := NewMatcher(cg)
	if err := term.AcceptString(`[1]`); err != nil {
		t.Fatal(err)
	}
	if err := term.AcceptToken(cg.TokenizerInfo().EOSTokenID()); err != nil {
		t.Fatal(err)
	}
	tm := [][]uint64{make([]uint64, cg.MaskWords())}
	tm[0][0] = ^uint64(0)
	if _, err := FillNextTokenBitmaskBatch([]*Matcher{term}, tm); err != nil {
		t.Fatal(err)
	}
	if tm[0][0] != 0 {
		t.Fatal("terminated matcher mask not cleared by batch fill")
	}
}

// TestFillBatchLengthMismatchErrors: malformed batch inputs surface as
// errors, not panics.
func TestFillBatchLengthMismatchErrors(t *testing.T) {
	cg := mustCompileJSON(t)
	if _, err := FillNextTokenBitmaskBatch([]*Matcher{NewMatcher(cg)}, nil); err == nil {
		t.Fatal("no error on matcher/mask length mismatch")
	}
	short := [][]uint64{make([]uint64, cg.MaskWords()-1)}
	if _, err := FillNextTokenBitmaskBatch([]*Matcher{NewMatcher(cg)}, short); err == nil {
		t.Fatal("no error on undersized mask in batch")
	}
}

// TestFillMaskLengthValidation: an undersized mask returns a clear error
// instead of an out-of-range panic; an oversized mask's extra words are
// ignored.
func TestFillMaskLengthValidation(t *testing.T) {
	cg := mustCompileJSON(t)
	m := NewMatcher(cg)
	if _, err := m.FillNextTokenBitmask(make([]uint64, cg.MaskWords()-1)); err == nil {
		t.Fatal("no error for a mask shorter than MaskWords()")
	}
	big := make([]uint64, cg.MaskWords()+3)
	sentinel := ^uint64(0)
	big[len(big)-1] = sentinel
	if _, err := m.FillNextTokenBitmask(big); err != nil {
		t.Fatal(err)
	}
	if big[len(big)-1] != sentinel {
		t.Fatal("fill wrote past MaskWords()")
	}
}
