package xgrammar

import (
	"strings"
	"testing"
)

// matcherMask fills a fresh slice from a Matcher.
func matcherMask(t *testing.T, m *Matcher, words int) []uint64 {
	t.Helper()
	mask := make([]uint64, words)
	if _, err := m.FillNextTokenBitmask(mask); err != nil {
		t.Fatal(err)
	}
	return mask
}

func masksEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestEngineSessionReuseMatchesFreshMatcher is the session-reuse correctness
// satellite: a pooled session that was released and re-acquired must behave
// identically to a fresh NewMatcher — same masks at every step, same
// termination behavior, and identical state after a jump-forward insertion
// is rolled back.
func TestEngineSessionReuseMatchesFreshMatcher(t *testing.T) {
	info := testTokenizer(t)
	compiler := NewCompiler(info)
	eng := NewEngine(compiler)
	cg, err := compiler.CompileBuiltinJSON()
	if err != nil {
		t.Fatal(err)
	}

	// Dirty a session with a partial generation, then release it so the next
	// OpenSession recycles it.
	dirty := eng.OpenSession(cg)
	if err := dirty.AcceptString(`{"leftover": [1, 2, {"deep": `); err != nil {
		t.Fatal(err)
	}
	dirty.Close()

	s := eng.OpenSession(cg)
	m := NewMatcher(cg)
	words := cg.MaskWords()

	if !masksEqual(s.Mask(), matcherMask(t, m, words)) {
		t.Fatal("recycled session initial mask differs from fresh matcher")
	}
	doc := `{"a": [1, tru`
	for _, id := range info.Encode(doc) {
		res, err := s.Step(id)
		if err != nil {
			t.Fatalf("session step(%d): %v", id, err)
		}
		if err := m.AcceptToken(id); err != nil {
			t.Fatalf("matcher accept(%d): %v", id, err)
		}
		if !masksEqual(s.Mask(), matcherMask(t, m, words)) {
			t.Fatalf("mask diverged after token %d (%q)", id, info.TokenBytes(id))
		}
		if string(res.JumpForward) != m.FindJumpForwardString() {
			t.Fatalf("jump-forward diverged after token %d: %q vs %q",
				id, res.JumpForward, m.FindJumpForwardString())
		}
	}

	// Jump-forward insertion on both, then roll it back on both: the pooled
	// session's rollback history must behave exactly like the fresh matcher's.
	jf := s.JumpForward()
	if !strings.HasPrefix(jf, "e") {
		t.Fatalf("expected deterministic continuation after 'tru', got %q", jf)
	}
	if err := s.AcceptString(jf); err != nil {
		t.Fatal(err)
	}
	if err := m.AcceptString(jf); err != nil {
		t.Fatal(err)
	}
	s.Fill()
	if !masksEqual(s.Mask(), matcherMask(t, m, words)) {
		t.Fatal("mask diverged after jump-forward insertion")
	}
	if err := s.Rollback(1); err != nil {
		t.Fatal(err)
	}
	if err := m.Rollback(1); err != nil {
		t.Fatal(err)
	}
	s.Fill()
	if !masksEqual(s.Mask(), matcherMask(t, m, words)) {
		t.Fatal("mask diverged after rolling back the jump-forward insertion")
	}

	// Finish both generations identically.
	rest := `e]}`
	for _, id := range info.Encode(rest) {
		if _, err := s.Step(id); err != nil {
			t.Fatal(err)
		}
		if err := m.AcceptToken(id); err != nil {
			t.Fatal(err)
		}
	}
	if !s.CanTerminate() || !m.CanTerminate() {
		t.Fatal("cannot terminate after complete document")
	}
	res, err := s.Step(info.EOSTokenID())
	if err != nil || !res.Terminated {
		t.Fatalf("EOS step: %v, %+v", err, res)
	}
	if err := m.AcceptToken(info.EOSTokenID()); err != nil {
		t.Fatal(err)
	}
	if !s.IsTerminated() || !m.IsTerminated() {
		t.Fatal("termination state diverged")
	}
	s.Close()
}

// TestEngineMixedGrammarBatch opens sessions against two different grammars
// (both resolved through the compiled-grammar cache) and batch-fills them
// together through the engine's worker pool.
func TestEngineMixedGrammarBatch(t *testing.T) {
	info := testTokenizer(t)
	compiler := NewCompiler(info)
	eng := NewEngine(compiler, WithFillWorkers(2))
	defer eng.Close()

	jsonSess, err := eng.OpenGrammarSession(`root ::= "[" [0-9]+ "]"`)
	if err != nil {
		t.Fatal(err)
	}
	schemaSess, err := eng.OpenJSONSchemaSession(
		[]byte(`{"type": "object", "properties": {"n": {"type": "integer"}}, "required": ["n"]}`),
		SchemaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	builtinCG, err := compiler.CompileBuiltinJSON()
	if err != nil {
		t.Fatal(err)
	}
	builtinSess := eng.OpenSession(builtinCG)
	sessions := []*Session{jsonSess, schemaSess, builtinSess}

	targets := []string{`[42]`, `{"n": 7}`, `{"ok": true}`}
	emitted := []int{0, 0, 0}
	live := len(sessions)
	for live > 0 {
		stats := eng.FillBatch(sessions)
		if len(stats) != len(sessions) {
			t.Fatalf("stats length %d", len(stats))
		}
		for i, s := range sessions {
			if s.IsTerminated() {
				continue
			}
			var next int32
			if emitted[i] >= len(targets[i]) {
				next = info.EOSTokenID()
			} else {
				next = info.Encode(targets[i][emitted[i]:])[0]
			}
			if s.Mask()[next>>6]&(1<<uint(next&63)) == 0 {
				t.Fatalf("session %d: target token %d masked out", i, next)
			}
			res, err := s.Step(next)
			if err != nil {
				t.Fatalf("session %d: %v", i, err)
			}
			if res.Terminated {
				live--
				continue
			}
			emitted[i] += len(info.TokenBytes(next))
		}
	}
	for _, s := range sessions {
		s.Close()
	}
	if st := compiler.CompileCacheStats(); st.Builds != 3 {
		t.Fatalf("expected 3 grammar builds, got %+v", st)
	}
	// A repeat request for any of the grammars is a cache hit and its
	// session comes from the pool.
	again, err := eng.OpenGrammarSession(`root ::= "[" [0-9]+ "]"`)
	if err != nil {
		t.Fatal(err)
	}
	again.Close()
	if st := compiler.CompileCacheStats(); st.Builds != 3 || st.Hits == 0 {
		t.Fatalf("repeat open was not a cache hit: %+v", st)
	}
}
