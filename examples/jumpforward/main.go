// Jump-forward decoding (Appendix B): when the grammar admits exactly one
// continuation, the engine appends it directly instead of running the LLM —
// on schema-constrained output the fixed key skeleton is free.
package main

import (
	"fmt"

	"xgrammar"
)

const invoiceSchema = `{
	"type": "object",
	"properties": {
		"invoice_id": {"type": "integer", "minimum": 1000, "maximum": 9999},
		"currency": {"enum": ["USD", "EUR"]},
		"total": {"type": "number"},
		"paid": {"type": "boolean"}
	},
	"required": ["invoice_id", "currency", "total", "paid"]
}`

func main() {
	info := xgrammar.DefaultTokenizer(4000)
	cg, err := xgrammar.NewCompiler(info).CompileJSONSchema([]byte(invoiceSchema), xgrammar.SchemaOptions{})
	if err != nil {
		panic(err)
	}
	target := `{"invoice_id": 4521, "currency": "EUR", "total": 129.99, "paid": true}`

	m := xgrammar.NewMatcher(cg)
	emitted := 0
	llmTokens, freeTokens := 0, 0
	for emitted < len(target) {
		// Jump forward over every forced span.
		if jf := m.FindJumpForwardString(); jf != "" {
			if target[emitted:emitted+len(jf)] != jf {
				panic("forced continuation disagrees with a valid target")
			}
			if err := m.AcceptString(jf); err != nil {
				panic(err)
			}
			fmt.Printf("jump-forward: %q\n", jf)
			emitted += len(jf)
			freeTokens += len(info.Encode(jf))
			continue
		}
		// Otherwise one (emulated) LLM step.
		next := info.Encode(target[emitted:])[0]
		if err := m.AcceptToken(next); err != nil {
			panic(err)
		}
		fmt.Printf("llm token:    %q\n", info.TokenBytes(next))
		emitted += len(info.TokenBytes(next))
		llmTokens++
	}
	fmt.Printf("\noutput: %s\n", target)
	fmt.Printf("LLM decode steps: %d, jump-forward tokens: %d (%.0f%% of output for free)\n",
		llmTokens, freeTokens, 100*float64(freeTokens)/float64(freeTokens+llmTokens))
}
