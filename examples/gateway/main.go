// Gateway: the structured-generation service end to end. The example boots
// the HTTP gateway in-process on a loopback port, registers grammars over
// the wire, then plays examples/serving-style traffic against it — a burst
// of concurrent clients mixing a JSON-Schema grammar, a regex constraint,
// and the builtin JSON grammar, half of them streaming over SSE. Requests
// that arrive together share decode rounds in the continuous batch (watch
// peak_batch in the final /metrics dump), and the compiled-grammar store
// under a temp directory shows the restart story: a second engine over the
// same directory warm-starts with zero compiles.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"time"

	"xgrammar"
	"xgrammar/internal/server"
)

const schema = `{"type": "object", "properties": {
	"name": {"type": "string"}, "id": {"type": "integer"}}, "required": ["name", "id"]}`

func main() {
	storeDir, err := os.MkdirTemp("", "xgrammar-gateway-*")
	check(err)
	defer os.RemoveAll(storeDir)

	boot := func() (*httptest.Server, *server.Server, *xgrammar.Compiler) {
		compiler := xgrammar.NewCompiler(xgrammar.DefaultTokenizer(2000))
		check(compiler.AttachStore(storeDir))
		n, err := compiler.WarmStart()
		check(err)
		fmt.Printf("boot: warm start preloaded %d grammars from %s\n", n, storeDir)
		gw := server.New(server.Config{
			Engine:      xgrammar.NewEngine(compiler),
			MaxInflight: 16,
			MaxTokens:   200,
			GPUStep:     2 * time.Millisecond,
		})
		return httptest.NewServer(gw), gw, compiler
	}

	// ---- First process: compile on demand, persist to the store. ----
	ts, gw, _ := boot()

	var reg server.GrammarResponse
	post(ts.URL+"/v1/grammars", server.GrammarRequest{Kind: "json_schema", Source: schema}, &reg)
	fmt.Printf("registered schema grammar: id=%s... (%d PDA nodes)\n", reg.ID[:12], reg.PDANodes)

	// A burst of concurrent clients (the serving-example traffic, but over
	// HTTP): schema by ID, regex inline, builtin JSON inline.
	requests := []server.GenerateRequest{
		{GrammarID: reg.ID, Seed: 11},
		{GrammarRequest: server.GrammarRequest{Kind: "regex", Source: `^(GET|PUT) /[a-z]{1,8}$`}, Seed: 12},
		{GrammarRequest: server.GrammarRequest{Kind: "builtin", Source: "json"}, Seed: 13, MaxTokens: 40},
		{GrammarID: reg.ID, Seed: 14},
		{GrammarRequest: server.GrammarRequest{Kind: "regex", Source: `^(GET|PUT) /[a-z]{1,8}$`}, Seed: 15},
		{GrammarID: reg.ID, Seed: 16},
	}
	var wg sync.WaitGroup
	outputs := make([]string, len(requests))
	for i, req := range requests {
		wg.Add(1)
		go func(i int, req server.GenerateRequest) {
			defer wg.Done()
			if i%2 == 0 {
				var resp server.GenerateResponse
				post(ts.URL+"/v1/generate", req, &resp)
				outputs[i] = fmt.Sprintf("[%s] %s", resp.FinishReason, resp.Text)
			} else {
				req.Stream = true
				outputs[i] = "[sse] " + stream(ts.URL+"/v1/generate", req)
			}
		}(i, req)
	}
	wg.Wait()
	for i, out := range outputs {
		fmt.Printf("  client %d: %s\n", i, out)
	}

	var met server.Metrics
	get(ts.URL+"/metrics", &met)
	fmt.Printf("\nfirst process: %d rounds, peak batch %d, %d tokens (+%d jump-forward bytes), fill p50 %.0fus\n",
		met.DecodeRounds, met.PeakBatch, met.TokensGenerated, met.JumpForwardBytes, met.FillP50US)
	fmt.Printf("  compiles=%d store writes=%d\n", met.CompileCache.Compiles, met.Store.Writes)
	ts.Close()
	gw.Close()

	// ---- Second process, same store: the restart story. ----
	fmt.Println("\nrestarting over the same store directory...")
	ts2, gw2, comp2 := boot()
	defer ts2.Close()
	defer gw2.Close()
	var resp server.GenerateResponse
	post(ts2.URL+"/v1/generate", server.GenerateRequest{GrammarID: reg.ID, Seed: 21}, &resp)
	fmt.Printf("first request after restart: %s\n", resp.Text)
	st := comp2.CompileCacheStats()
	fmt.Printf("compiles this process: %d (grammar came from the warm store — the\n", st.Compiles)
	fmt.Println("vocabulary scan ran once, in the first process, ever)")
}

func post(url string, body, out any) {
	data, err := json.Marshal(body)
	check(err)
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	check(err)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		check(fmt.Errorf("%s: %s", resp.Status, e.Error))
	}
	check(json.NewDecoder(resp.Body).Decode(out))
}

func get(url string, out any) {
	resp, err := http.Get(url)
	check(err)
	defer resp.Body.Close()
	check(json.NewDecoder(resp.Body).Decode(out))
}

// stream consumes an SSE generation and returns the concatenated text.
func stream(url string, req server.GenerateRequest) string {
	data, err := json.Marshal(req)
	check(err)
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	check(err)
	defer resp.Body.Close()
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		payload, ok := strings.CutPrefix(sc.Text(), "data: ")
		if !ok || payload == "[DONE]" {
			continue
		}
		var ev struct {
			Text string `json:"text"`
			Done bool   `json:"done"`
		}
		if json.Unmarshal([]byte(payload), &ev) == nil && !ev.Done {
			sb.WriteString(ev.Text)
		}
	}
	check(sc.Err())
	return sb.String()
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
