// Function calling: constrain an (emulated) LLM to a JSON Schema so its
// output can be parsed directly as a tool call — the paper's Table 4 task.
//
// The emulated model is sloppy: it wants to wrap the JSON in helpful prose.
// Unconstrained, that breaks downstream parsing; with the grammar mask, the
// prose tokens are blocked and the model's probability mass falls back to
// schema-conforming tokens.
package main

import (
	"encoding/json"
	"fmt"

	"xgrammar"
)

const weatherSchema = `{
	"type": "object",
	"properties": {
		"name": {"const": "get_weather"},
		"arguments": {
			"type": "object",
			"properties": {
				"city": {"type": "string"},
				"unit": {"enum": ["celsius", "fahrenheit"]},
				"days": {"type": "integer", "minimum": 1, "maximum": 14}
			},
			"required": ["city", "unit", "days"]
		}
	},
	"required": ["name", "arguments"]
}`

// sloppyModel proposes tokens for a desired payload but prefers to start
// with prose, the way instruction-tuned models pad tool calls.
type sloppyModel struct {
	info     *xgrammar.TokenizerInfo
	payload  string
	emitted  int
	prose    []int32
	prosePos int
}

func newSloppyModel(info *xgrammar.TokenizerInfo, payload string) *sloppyModel {
	return &sloppyModel{
		info:    info,
		payload: payload,
		prose:   info.Encode("Sure! Here is the function call you asked for: "),
	}
}

// propose returns the model's preferred next token: prose first, then the
// payload.
func (m *sloppyModel) propose() int32 {
	if m.prosePos < len(m.prose) {
		return m.prose[m.prosePos]
	}
	if m.emitted >= len(m.payload) {
		return m.info.EOSTokenID()
	}
	return m.info.Encode(m.payload[m.emitted:])[0]
}

// fallback returns the best schema-conforming token (the payload token).
func (m *sloppyModel) fallback() int32 {
	if m.emitted >= len(m.payload) {
		return m.info.EOSTokenID()
	}
	return m.info.Encode(m.payload[m.emitted:])[0]
}

func (m *sloppyModel) accept(id int32) {
	if m.prosePos < len(m.prose) && id == m.prose[m.prosePos] {
		m.prosePos++
		return
	}
	m.prosePos = len(m.prose) // constraint rejected the prose; abandon it
	if id != m.info.EOSTokenID() {
		m.emitted += len(m.info.TokenBytes(id))
	}
}

func main() {
	info := xgrammar.DefaultTokenizer(4000)
	cg, err := xgrammar.NewCompiler(info).CompileJSONSchema([]byte(weatherSchema), xgrammar.SchemaOptions{})
	if err != nil {
		panic(err)
	}
	payload := `{"name": "get_weather", "arguments": {"city": "tokyo", "unit": "celsius", "days": 3}}`

	// Unconstrained: the model happily emits prose + payload.
	un := newSloppyModel(info, payload)
	var unOut []byte
	for {
		t := un.propose()
		if t == info.EOSTokenID() {
			break
		}
		unOut = append(unOut, info.TokenBytes(t)...)
		un.accept(t)
	}
	fmt.Printf("unconstrained output:\n  %s\n", unOut)
	var v interface{}
	if err := json.Unmarshal(unOut, &v); err != nil {
		fmt.Printf("  -> downstream json.Unmarshal FAILS: %v\n\n", err)
	}

	// Constrained: same model, masked decoding.
	con := newSloppyModel(info, payload)
	m := xgrammar.NewMatcher(cg)
	mask := make([]uint64, cg.MaskWords())
	var conOut []byte
	blocked := 0
	for !m.IsTerminated() {
		if _, err := m.FillNextTokenBitmask(mask); err != nil {
			panic(err)
		}
		t := con.propose()
		if mask[t>>6]&(1<<uint(t&63)) == 0 {
			blocked++
			t = con.fallback()
		}
		if err := m.AcceptToken(t); err != nil {
			panic(err)
		}
		con.accept(t)
		if t != info.EOSTokenID() {
			conOut = append(conOut, info.TokenBytes(t)...)
		}
	}
	fmt.Printf("constrained output (%d proposals blocked by the mask):\n  %s\n", blocked, conOut)
	if err := json.Unmarshal(conOut, &v); err != nil {
		panic(err)
	}
	fmt.Println("  -> downstream json.Unmarshal succeeds")
}
