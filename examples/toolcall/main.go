// Structural-tag tool calling: the LLM function-calling shape where free
// prose and grammar-locked tool calls interleave in one completion.
//
// The session starts in free-text mode — every token is allowed, so the
// model chats normally. A byte trie watches the decoded stream; the moment
// a begin tag like <tool_call name="get_weather"> completes, the session
// switches into that tool's compiled JSON-Schema grammar and every token
// until </tool_call> is mask-constrained, so the arguments always parse.
// Then free text resumes. Per-tool segment grammars resolve through the
// compiled-grammar cache, so a fleet of requests sharing a tool compiles
// it once.
package main

import (
	"encoding/json"
	"fmt"
	"strings"

	"xgrammar"
)

const weatherParams = `{
	"type": "object",
	"properties": {
		"city": {"type": "string", "maxLength": 12},
		"days": {"type": "integer", "minimum": 1, "maximum": 14}
	},
	"required": ["city", "days"]
}`

const searchParams = `{
	"type": "object",
	"properties": {"query": {"type": "string", "maxLength": 16}},
	"required": ["query"]
}`

func main() {
	info := xgrammar.DefaultTokenizer(2000)
	compiler := xgrammar.NewCompiler(info)
	engine := xgrammar.NewEngine(compiler)
	defer engine.Close()

	tags := xgrammar.StructuralTags{
		{
			Begin:   `<tool_call name="get_weather">`,
			Grammar: xgrammar.GrammarSpec{Kind: xgrammar.KindJSONSchema, Source: weatherParams},
			End:     `</tool_call>`,
		},
		{
			Begin:   `<tool_call name="search">`,
			Grammar: xgrammar.GrammarSpec{Kind: xgrammar.KindJSONSchema, Source: searchParams},
			End:     `</tool_call>`,
		},
	}
	tagSet, err := compiler.CompileStructuralTags(tags)
	if err != nil {
		panic(err)
	}

	// The assistant turn we teacher-force: prose, two tool calls, prose.
	reply := `Let me check that. <tool_call name="get_weather">{"city": "Oslo", "days": 3}</tool_call>` +
		` and also <tool_call name="search">{"query": "oslo events"}</tool_call> — done!`

	sess := engine.OpenTagSession(tagSet)
	defer sess.Close()

	var jumpForwarded int
	var out strings.Builder
	for _, id := range info.Encode(reply) {
		if _, ok := sess.InTag(); ok {
			// Inside a segment the grammar often forces a unique
			// continuation (keys, punctuation, the end tag); jump-forward
			// inserts it without decode steps.
			if jf := sess.JumpForward(); jf != "" && strings.HasPrefix(reply[out.Len():], jf) {
				if err := sess.AcceptString(jf); err != nil {
					panic(err)
				}
				out.WriteString(jf)
				jumpForwarded += len(jf)
			}
		}
		rest := reply[out.Len():]
		if rest == "" {
			break
		}
		id = info.Encode(rest)[0]
		tokBytes := string(info.TokenBytes(id))
		if err := sess.Accept(id); err != nil {
			panic(err)
		}
		out.WriteString(tokBytes)
	}
	fmt.Println("completion:")
	fmt.Println(" ", out.String())
	fmt.Printf("jump-forward inserted %d of %d bytes (forced structure is free)\n", jumpForwarded, len(reply))

	// Every tool call parses — the grammar guaranteed it during decoding.
	text := out.String()
	for _, tag := range tags {
		for rest := text; ; {
			i := strings.Index(rest, tag.Begin)
			if i < 0 {
				break
			}
			rest = rest[i+len(tag.Begin):]
			j := strings.Index(rest, tag.End)
			var args map[string]any
			if err := json.Unmarshal([]byte(rest[:j]), &args); err != nil {
				panic(err)
			}
			fmt.Printf("tool call %s arguments: %v\n", tag.Begin, args)
			rest = rest[j:]
		}
	}
}
