// Backend-http: plugging a remote model into the decode stack over HTTP.
// The grammar layers decide WHAT may be emitted next; a model backend
// decides WHICH allowed token is emitted. This example stands up a "model
// server" (the httpllm loopback handler wrapping the seeded simulated
// sampler — in production this is llama.cpp or any server speaking the
// one-POST-per-step protocol), then drives it two ways:
//
//  1. directly, with a grammar-masked decode loop over OpenBackend("http:URL"),
//     the same loop xgrun -generate runs; and
//  2. through the serving gateway, registered as model "remote" next to the
//     in-process default — byte-identical outputs, per-backend /metrics.
//
// The wire protocol ships the grammar bitmask to the model every step
// (allowed_tokens list when the mask is narrow, base64 bitmask when wide),
// because each step's mask depends on the tokens already accepted — that
// is the whole point of constrained decoding.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"xgrammar"
	"xgrammar/internal/backend/httpllm"
	"xgrammar/internal/backend/simllm"
	"xgrammar/internal/server"
)

const schema = `{"type": "object", "properties": {
	"name": {"type": "string"}, "id": {"type": "integer"}}, "required": ["name", "id"]}`

func main() {
	info := xgrammar.DefaultTokenizer(2000)
	eos := info.EOSTokenID()

	// ---- The "model server": any HTTP endpoint speaking the step protocol.
	// Here it loops back onto the simulated sampler so the example is
	// self-contained and deterministic.
	model := httptest.NewServer(httpllm.NewLoopbackHandler(
		simllm.NewSampler(eos), httpllm.LoopbackOptions{}))
	defer model.Close()
	fmt.Printf("model server on %s (httpllm loopback over the seeded sampler)\n\n", model.URL)

	// ---- Part 1: the backend interface directly. OpenBackend resolves the
	// registry spec; the loop is grammar-mask -> backend step -> accept.
	bk, err := xgrammar.OpenBackend("http:" + model.URL)
	check(err)
	defer bk.Close()

	compiler := xgrammar.NewCompiler(info)
	cg, err := compiler.CompileJSONSchema([]byte(schema), xgrammar.SchemaOptions{})
	check(err)

	seq, err := bk.Open(xgrammar.ModelRequest{Seed: 7, MaxTokens: 80})
	check(err)
	m := xgrammar.NewMatcher(cg)
	mask := make([]uint64, cg.MaskWords())
	var out strings.Builder
	for steps := 0; steps < 80; steps++ {
		_, err := m.FillNextTokenBitmask(mask)
		check(err)
		id, err := seq.Next(context.Background(), mask)
		if errors.Is(err, xgrammar.ErrNoToken) || (err == nil && id == eos) {
			break
		}
		check(err)
		check(m.AcceptToken(id))
		out.Write(info.TokenBytes(id))
		// Deterministic continuations are free: tell the backend, skip the
		// round trips.
		if jf := m.FindJumpForwardString(); jf != "" && seq.ObserveForced(jf) {
			check(m.AcceptString(jf))
			out.WriteString(jf)
		}
	}
	seq.Close()
	fmt.Printf("direct decode over the wire (seed 7):\n  %s\n\n", out.String())

	// ---- Part 2: the same backend behind the gateway, as model "remote".
	// The batching, speculation, and tag-dispatch layers never know the
	// tokens come from across the wire.
	remote := httpllm.New(httpllm.Options{BaseURL: model.URL})
	gw := server.New(server.Config{
		Engine:    xgrammar.NewEngine(xgrammar.NewCompiler(info)),
		MaxTokens: 80,
		GPUStep:   time.Millisecond,
		Backends:  map[string]xgrammar.ModelBackend{"remote": remote},
	})
	ts := httptest.NewServer(gw)
	defer ts.Close()
	defer gw.Close()

	gen := func(modelName string) string {
		var resp server.GenerateResponse
		post(ts.URL+"/v1/generate", server.GenerateRequest{
			GrammarRequest: server.GrammarRequest{Kind: "json_schema", Source: schema},
			Model:          modelName,
			Seed:           7,
		}, &resp)
		return resp.Text
	}
	local, overWire := gen(""), gen("remote")
	fmt.Printf("gateway, default in-process backend: %s\n", local)
	fmt.Printf("gateway, model=remote over HTTP:     %s\n", overWire)
	fmt.Printf("byte-identical: %v (the adapter adds transport, not semantics)\n\n", local == overWire)

	var met server.Metrics
	getJSON(ts.URL+"/metrics", &met)
	for name, bm := range met.Backends {
		fmt.Printf("backend %-5s: %d requests, %d tokens, %d errors, req p50 %.2fms\n",
			name, bm.Requests, bm.Tokens, bm.Errors, bm.LatencyP50MS)
	}
}

func post(url string, body, out any) {
	data, err := json.Marshal(body)
	check(err)
	resp, err := http.Post(url, "application/json", strings.NewReader(string(data)))
	check(err)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		check(fmt.Errorf("%s: %s", resp.Status, e.Error))
	}
	check(json.NewDecoder(resp.Body).Decode(out))
}

func getJSON(url string, out any) {
	resp, err := http.Get(url)
	check(err)
	defer resp.Body.Close()
	check(json.NewDecoder(resp.Body).Decode(out))
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
