// Speculative: draft-verify decoding on the rollback window (§3.3). A cheap
// draft model proposes a window of k candidate tokens per decode round; the
// grammar speculatively accepts them in one fused pass — capturing the
// allowed-token mask at every position, the masks the target model's
// batched verify pass needs — and the target model's verdicts confirm the
// longest agreeing prefix. The rejected suffix is retracted with a single
// atomic Rollback through the matcher's persistent stack tree, and the
// target's token at the first disagreement commits as a free "bonus": every
// round advances by accepted+1 tokens instead of one.
//
// The demo decodes the same document twice — token-by-token, then
// speculatively with an imperfect draft model — and shows the outputs are
// byte-identical while the speculative run spends a fraction of the decode
// rounds.
package main

import (
	"fmt"

	"xgrammar"
)

const target = `{"model": "llama-3.1-8b", "scores": [98, 87, 91], "ok": true}`

// draftWindow is the demo's draft model: the next k target tokens, except
// that every fourth proposal is deliberately wrong — a stand-in for a small
// model that guesses right ~75% of the time.
func draftWindow(info *xgrammar.TokenizerInfo, emitted, step, k int) []int32 {
	var draft []int32
	pos := emitted
	for i := 0; i < k && pos < len(target); i++ {
		id := info.Encode(target[pos:])[0]
		pos += len(info.TokenBytes(id))
		if (step+i)%4 == 3 {
			id++ // wrong guess: the verify pass must reject it
		}
		draft = append(draft, id)
	}
	return draft
}

func main() {
	info := xgrammar.DefaultTokenizer(4000)
	compiler := xgrammar.NewCompiler(info)
	eng := xgrammar.NewEngine(compiler)
	cg, err := compiler.CompileBuiltinJSON()
	if err != nil {
		panic(err)
	}

	// sample plays the target model: its verdict at each verified position
	// is the next token of the remaining target.
	teacherPos := 0
	sample := xgrammar.SpecSampler(func(_ int, _ []uint64) (int32, bool) {
		if teacherPos >= len(target) {
			return info.EOSTokenID(), true
		}
		id := info.Encode(target[teacherPos:])[0]
		teacherPos += len(info.TokenBytes(id))
		return id, true
	})

	// Baseline: one token per decode round.
	base := eng.OpenSession(cg)
	var baseline []byte
	baseRounds := 0
	for emitted := 0; emitted < len(target); baseRounds++ {
		id := info.Encode(target[emitted:])[0]
		if err := base.Accept(id); err != nil {
			panic(err)
		}
		b := info.TokenBytes(id)
		baseline = append(baseline, b...)
		emitted += len(b)
	}
	base.Close()

	// Speculative: k drafts + 1 bonus per round, rejected suffixes rolled
	// back through the checkpointed stack.
	sess := eng.OpenSession(cg)
	defer sess.Close()
	var output []byte
	rounds, proposed, accepted := 0, 0, 0
	const k = 4
	for {
		rounds++
		draft := draftWindow(info, len(output), rounds, k)
		res, err := sess.SpeculativeStep(draft, sample)
		if err != nil {
			panic(err)
		}
		proposed += res.Proposed
		accepted += res.Accepted
		for i := 0; i < res.Accepted; i++ {
			output = append(output, info.TokenBytes(draft[i])...)
		}
		if res.Terminated {
			break
		}
		if res.HasBonus {
			output = append(output, info.TokenBytes(res.Bonus)...)
		}
		fmt.Printf("  round %2d: drafted %d, accepted %d, rolled back %d, +bonus -> %q\n",
			rounds, res.Drafted, res.Accepted, res.RolledBack, string(output))
	}

	fmt.Printf("\ntarget:      %s\n", target)
	fmt.Printf("speculative: %s\n", output)
	fmt.Printf("\nbaseline:    %d decode rounds (one token each)\n", baseRounds)
	fmt.Printf("speculative: %d decode rounds, %d/%d drafts accepted (%.0f%%)\n",
		rounds, accepted, proposed, 100*float64(accepted)/float64(proposed))
	if string(output) != string(baseline) {
		panic("speculative output diverged from baseline — speculation must be lossless")
	}
	fmt.Println("\noutputs are byte-identical: speculation is lossless. accepted tokens")
	fmt.Println("commit as ordinary checkpointed Advances; a rejected suffix is undone")
	fmt.Println("with one atomic Matcher.Rollback on the persistent stack tree (§3.3),")
	fmt.Println("so each verify pass advances the sequence by accepted+1 tokens.")
}
