// Prefix cache: warm-starting sessions on a templated workload through
// the public root API. Templated deployments repeat one long forced
// prefix (a system/tool preamble) on every request; with
// WithPrefixCache the engine retains the constraint state that prefix
// produces — portable matcher checkpoints in a per-grammar radix tree —
// and later acquisitions restore the deepest cached checkpoint and
// replay only the residual bytes, reusing the memoized first mask on an
// exact hit. The walkthrough decodes the same templated request stream
// cold and warm, proves the outputs byte-identical, and prints the
// cache/acquisition counters an operator would read from /metrics.
package main

import (
	"fmt"
	"time"

	"xgrammar"
)

// templatePrefix is the shared preamble every request repeats; tails vary.
const templatePrefix = `{"system": "You are a tool-calling assistant. Always answer with one call.", "call": {"name": "`

func tails(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf(`tool_%02d", "args": [%d, %d]}}`, i%4, i, (i*7)%13)
	}
	return out
}

// decode teacher-forces one request: acquire a session primed with the
// prefix, then accept the tail token by token with a mask fill per step
// (the constrained-decoding loop with the sampler factored out). It
// returns the bytes produced and the time to the first decode-ready mask.
func decode(eng *xgrammar.Engine, cg *xgrammar.CompiledGrammar, info *xgrammar.TokenizerInfo, tail string) (string, time.Duration, xgrammar.AcquireResult) {
	t0 := time.Now()
	sess, res, err := eng.AcquireSession(cg, templatePrefix)
	if err != nil {
		panic(err)
	}
	firstMask := time.Since(t0)
	defer sess.Close()

	out := []byte(templatePrefix)
	for _, id := range info.Encode(tail) {
		if len(sess.Mask()) == 0 {
			panic("no mask filled")
		}
		if err := sess.Accept(id); err != nil {
			panic(err)
		}
		out = append(out, info.TokenBytes(id)...)
		sess.Fill()
	}
	return string(out), firstMask, res
}

func main() {
	info := xgrammar.DefaultTokenizer(4000)
	compiler := xgrammar.NewCompiler(info)
	cg, err := compiler.CompileBuiltinJSON()
	if err != nil {
		panic(err)
	}

	// Two engines over the same compiled grammar: one cold (no cache),
	// one with a 4 MiB prefix cache.
	cold := xgrammar.NewEngine(compiler)
	warm := xgrammar.NewEngine(compiler, xgrammar.WithPrefixCache(4<<20, 0, 0))

	reqs := tails(8)
	fmt.Printf("templated workload: %d requests, shared prefix %d bytes\n\n", len(reqs), len(templatePrefix))
	fmt.Printf("%-6s %-28s %-14s %-14s %s\n", "req", "tail", "cold 1st-mask", "warm 1st-mask", "warm path")
	identical := true
	for i, tail := range reqs {
		coldOut, coldLat, _ := decode(cold, cg, info, tail)
		warmOut, warmLat, res := decode(warm, cg, info, tail)
		if coldOut != warmOut {
			identical = false
		}
		path := "miss: replayed cold"
		if res.Hit {
			path = fmt.Sprintf("hit: reused %dB, replayed %dB", res.ReusedBytes, res.ReplayedBytes)
			if res.MaskReused {
				path += ", mask memoized"
			}
		}
		fmt.Printf("r%-5d %-28s %-14v %-14v %s\n", i, tail, coldLat.Round(time.Microsecond), warmLat.Round(time.Microsecond), path)
	}

	fmt.Printf("\nbyte-identical cold vs warm: %t\n", identical)
	st := warm.PrefixCacheStats()
	as := warm.PrefixAcquireStats()
	fmt.Printf("cache: hits=%d misses=%d hit_rate=%.2f entries=%d bytes=%d/%d evicted=%d\n",
		st.Hits, st.Misses, st.HitRate(), st.Entries, st.Bytes, st.MaxBytes, st.EvictedBytes)
	fmt.Printf("acquire: acquires=%d warm_starts=%d exact_hits=%d bytes_reused=%d bytes_replayed=%d\n",
		as.Acquires, as.WarmStarts, as.ExactHits, as.BytesReused, as.BytesReplayed)

	// Checkpoints are first-class too: capture mid-generation state and
	// resume an independent session from it later (the primitive the
	// cache stores).
	s := warm.OpenSession(cg)
	if err := s.AcceptString(`{"resume": [1, 2, `); err != nil {
		panic(err)
	}
	s.Fill()
	cp, err := s.Checkpoint()
	if err != nil {
		panic(err)
	}
	s.Close()
	r := warm.OpenSessionAt(cg, cp)
	if err := r.AcceptString(`3]}`); err != nil {
		panic(err)
	}
	fmt.Printf("checkpoint resume: session restored mid-document, completed, can terminate: %t\n", r.CanTerminate())
	r.Close()
}
