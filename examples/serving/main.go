// Serving: overlap mask generation with (simulated) GPU execution using
// goroutines — the co-design of §3.5 of the paper, demonstrated with real
// concurrency rather than the analytic model used by the benchmark harness.
//
// Each decode step launches the "GPU" (a sleep standing in for the forward
// pass) and the grammar mask computation concurrently, synchronizing before
// sampling, exactly as in Figure 8. The serial engine runs them back to
// back. With a fast grammar engine the overlapped TPOT approaches the pure
// GPU time.
package main

import (
	"fmt"
	"time"

	"xgrammar"
)

const gpuStepTime = 5 * time.Millisecond

// gpuStep stands in for the forward pass. The GPU is an external device, so
// it is modelled with a runtime timer: the CPU stays free for grammar work,
// which is exactly what the §3.5 co-design exploits. The timer is armed
// before the grammar work starts, like a real asynchronous kernel launch.
func gpuStep() <-chan time.Time {
	return time.After(gpuStepTime)
}

// decodeOnce runs one constrained generation over target and returns the
// wall time and token count.
func decode(cg *xgrammar.CompiledGrammar, info *xgrammar.TokenizerInfo, target string, overlap bool) (time.Duration, int) {
	m := xgrammar.NewMatcher(cg)
	mask := make([]uint64, cg.MaskWords())
	emitted := 0
	tokens := 0
	start := time.Now()
	for {
		var next int32
		if emitted >= len(target) {
			next = info.EOSTokenID()
		} else {
			next = info.Encode(target[emitted:])[0]
		}
		if overlap {
			// Launch the GPU step, compute the mask while it runs, then
			// synchronize before sampling (Figure 8).
			gpuDone := gpuStep()
			m.FillNextTokenBitmask(mask)
			<-gpuDone
		} else {
			<-gpuStep()
			m.FillNextTokenBitmask(mask)
		}
		if mask[next>>6]&(1<<uint(next&63)) == 0 {
			panic("target token masked out")
		}
		if err := m.AcceptToken(next); err != nil {
			panic(err)
		}
		if next == info.EOSTokenID() {
			break
		}
		emitted += len(info.TokenBytes(next))
		tokens++
	}
	return time.Since(start), tokens
}

func main() {
	info := xgrammar.DefaultTokenizer(4000)
	fast, err := xgrammar.NewCompiler(info).CompileBuiltinJSON()
	if err != nil {
		panic(err)
	}
	// The same grammar with the mask cache disabled: every step scans the
	// vocabulary, like pre-XGrammar engines.
	slow, err := xgrammar.NewCompiler(info, xgrammar.WithoutMaskCache()).CompileBuiltinJSON()
	if err != nil {
		panic(err)
	}
	target := `{"user": {"name": "ada", "scores": [98, 87, 91]}, "active": true, "tags": ["alpha", "beta"]}`

	var n int
	report := func(name string, cg *xgrammar.CompiledGrammar) {
		var serial, overlapped time.Duration
		serial, n = decode(cg, info, target, false)
		overlapped, _ = decode(cg, info, target, true)
		fmt.Printf("%-28s serial %7v/token   overlapped %7v/token\n",
			name, serial/time.Duration(n), overlapped/time.Duration(n))
	}
	fmt.Printf("decoding %d bytes of structured output; GPU step %v\n\n", len(target), gpuStepTime)
	report("full-scan grammar engine:", slow)
	report("XGrammar (mask cache):", fast)
	fmt.Printf("\npure GPU floor: %v/token\n", gpuStepTime)
	fmt.Println("overlap hides grammar CPU behind the GPU step (§3.5); with the mask")
	fmt.Println("cache the grammar fits entirely under the GPU time, reaching the floor")
}
