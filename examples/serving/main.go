// Serving: overlap mask generation with (simulated) GPU execution using
// goroutines — the co-design of §3.5 of the paper, demonstrated with real
// concurrency rather than the analytic model used by the benchmark harness.
//
// Each decode step launches the "GPU" (a sleep standing in for the forward
// pass) and the grammar mask computation concurrently, synchronizing before
// sampling, exactly as in Figure 8. The serial engine runs them back to
// back. With a fast grammar engine the overlapped TPOT approaches the pure
// GPU time.
//
// The second half of the demo is the batch-serving path: one decode step
// masks a whole batch of sequences via FillNextTokenBitmaskBatch while a
// single (batched) GPU step runs, and the compiled-grammar cache turns the
// per-request grammar compilation into a lookup (every request in a real
// server tends to reuse one of a few schemas).
package main

import (
	"fmt"
	"time"

	"xgrammar"
)

const gpuStepTime = 5 * time.Millisecond

// gpuStep stands in for the forward pass. The GPU is an external device, so
// it is modelled with a runtime timer: the CPU stays free for grammar work,
// which is exactly what the §3.5 co-design exploits. The timer is armed
// before the grammar work starts, like a real asynchronous kernel launch.
func gpuStep() <-chan time.Time {
	return time.After(gpuStepTime)
}

// decodeOnce runs one constrained generation over target and returns the
// wall time and token count.
func decode(cg *xgrammar.CompiledGrammar, info *xgrammar.TokenizerInfo, target string, overlap bool) (time.Duration, int) {
	m := xgrammar.NewMatcher(cg)
	mask := make([]uint64, cg.MaskWords())
	emitted := 0
	tokens := 0
	start := time.Now()
	for {
		var next int32
		if emitted >= len(target) {
			next = info.EOSTokenID()
		} else {
			next = info.Encode(target[emitted:])[0]
		}
		if overlap {
			// Launch the GPU step, compute the mask while it runs, then
			// synchronize before sampling (Figure 8).
			gpuDone := gpuStep()
			m.FillNextTokenBitmask(mask)
			<-gpuDone
		} else {
			<-gpuStep()
			m.FillNextTokenBitmask(mask)
		}
		if mask[next>>6]&(1<<uint(next&63)) == 0 {
			panic("target token masked out")
		}
		if err := m.AcceptToken(next); err != nil {
			panic(err)
		}
		if next == info.EOSTokenID() {
			break
		}
		emitted += len(info.TokenBytes(next))
		tokens++
	}
	return time.Since(start), tokens
}

// batchDecode runs one constrained generation over every target in lockstep
// (one batched "GPU" step per decode round, as a serving engine would) and
// returns the wall time and total token count. When batched is true all
// masks of a round are produced by one FillNextTokenBitmaskBatch call while
// the GPU step runs; otherwise each sequence is masked sequentially.
func batchDecode(cg *xgrammar.CompiledGrammar, info *xgrammar.TokenizerInfo, targets []string, batched bool) (time.Duration, int) {
	matchers := make([]*xgrammar.Matcher, len(targets))
	masks := make([][]uint64, len(targets))
	emitted := make([]int, len(targets))
	next := make([]int32, len(targets))
	for i := range targets {
		matchers[i] = xgrammar.NewMatcher(cg)
		masks[i] = make([]uint64, cg.MaskWords())
	}
	tokens := 0
	start := time.Now()
	for live := len(targets); live > 0; {
		gpuDone := gpuStep() // one forward pass for the whole batch
		if batched {
			xgrammar.FillNextTokenBitmaskBatch(matchers, masks)
		} else {
			for i := range matchers {
				matchers[i].FillNextTokenBitmask(masks[i])
			}
		}
		<-gpuDone
		for i, m := range matchers {
			if m.IsTerminated() {
				continue
			}
			if emitted[i] >= len(targets[i]) {
				next[i] = info.EOSTokenID()
			} else {
				next[i] = info.Encode(targets[i][emitted[i]:])[0]
			}
			if masks[i][next[i]>>6]&(1<<uint(next[i]&63)) == 0 {
				panic("target token masked out")
			}
			if err := m.AcceptToken(next[i]); err != nil {
				panic(err)
			}
			if next[i] == info.EOSTokenID() {
				live--
				continue
			}
			emitted[i] += len(info.TokenBytes(next[i]))
			tokens++
		}
	}
	return time.Since(start), tokens
}

func main() {
	info := xgrammar.DefaultTokenizer(4000)
	compiler := xgrammar.NewCompiler(info)
	fast, err := compiler.CompileBuiltinJSON()
	if err != nil {
		panic(err)
	}
	// The same grammar with the mask cache disabled: every step scans the
	// vocabulary, like pre-XGrammar engines.
	slow, err := xgrammar.NewCompiler(info, xgrammar.WithoutMaskCache()).CompileBuiltinJSON()
	if err != nil {
		panic(err)
	}
	target := `{"user": {"name": "ada", "scores": [98, 87, 91]}, "active": true, "tags": ["alpha", "beta"]}`

	var n int
	report := func(name string, cg *xgrammar.CompiledGrammar) {
		var serial, overlapped time.Duration
		serial, n = decode(cg, info, target, false)
		overlapped, _ = decode(cg, info, target, true)
		fmt.Printf("%-28s serial %7v/token   overlapped %7v/token\n",
			name, serial/time.Duration(n), overlapped/time.Duration(n))
	}
	fmt.Printf("decoding %d bytes of structured output; GPU step %v\n\n", len(target), gpuStepTime)
	report("full-scan grammar engine:", slow)
	report("XGrammar (mask cache):", fast)
	fmt.Printf("\npure GPU floor: %v/token\n", gpuStepTime)
	fmt.Println("overlap hides grammar CPU behind the GPU step (§3.5); with the mask")
	fmt.Println("cache the grammar fits entirely under the GPU time, reaching the floor")

	// --- batch serving: one mask per sequence per decode step ------------
	const batch = 8
	targets := make([]string, batch)
	for i := range targets {
		targets[i] = target
	}
	fmt.Printf("\nbatch of %d sequences, slow grammar engine (mask work visible):\n", batch)
	seqT, seqN := batchDecode(slow, info, targets, false)
	batT, batN := batchDecode(slow, info, targets, true)
	fmt.Printf("  sequential per-sequence fill: %7v/step\n", seqT/time.Duration(seqN/batch))
	fmt.Printf("  FillNextTokenBitmaskBatch:    %7v/step\n", batT/time.Duration(batN/batch))
	fmt.Println("  the batch fill fans sequences across cores, so a whole batch's")
	fmt.Println("  grammar work fits under one batched GPU step")

	// --- compiled-grammar cache: compile once, serve every request -------
	// Each "request" asks for the same grammar; only the first pays the
	// preprocessing scan (singleflight dedups concurrent compiles too).
	t0 := time.Now()
	for i := 0; i < 100; i++ {
		if _, err := compiler.CompileBuiltinJSON(); err != nil {
			panic(err)
		}
	}
	st := compiler.CompileCacheStats()
	fmt.Printf("\n100 repeat compile requests in %v total: %d build(s), %d cache hits (%d bytes cached)\n",
		time.Since(t0).Round(time.Microsecond), st.Builds, st.Hits, st.Bytes)
}
