// Serving: the continuous-batching runtime of §3.5 driven with real
// concurrency. "Requests" arrive over time and join the live batch as
// pooled Sessions (grammar resolution is a compiled-grammar cache hit after
// the first request for each grammar); every decode round launches one
// batched "GPU" step (a timer standing in for the forward pass) and fills
// the whole batch's masks through the engine's persistent worker pool while
// it runs, synchronizing before sampling exactly as in Figure 8; finished
// sequences leave mid-run and their grammar state is recycled for the next
// arrival. Jump-forward continuations (Appendix B) are inserted for free.
package main

import (
	"fmt"
	"strings"
	"time"

	"xgrammar"
)

const gpuStepTime = 3 * time.Millisecond

// request is one incoming generation: which grammar it wants, the
// teacher-forced target, and the decode round it arrives at.
type request struct {
	name     string
	schema   []byte // nil: builtin JSON grammar
	target   string
	arriveAt int
}

// sequence is a live batch entry.
type sequence struct {
	req     request
	s       *xgrammar.Session
	emitted int
	jumped  int
}

func main() {
	info := xgrammar.DefaultTokenizer(4000)
	compiler := xgrammar.NewCompiler(info)
	eng := xgrammar.NewEngine(compiler)

	schema := []byte(`{"type": "object", "properties": {
		"name": {"type": "string"}, "id": {"type": "integer"}}, "required": ["name", "id"]}`)
	jsonDoc := `{"user": {"name": "ada", "scores": [98, 87, 91]}, "active": true}`
	schemaDoc := `{"name": "ada", "id": 7}`

	var reqs []request
	for i := 0; i < 8; i++ {
		if i%2 == 0 {
			reqs = append(reqs, request{fmt.Sprintf("r%d/json", i), nil, jsonDoc, i * 2})
		} else {
			reqs = append(reqs, request{fmt.Sprintf("r%d/schema", i), schema, schemaDoc, i * 2})
		}
	}

	run := func(overlapped bool) (time.Duration, int, int) {
		var batch []*sequence
		pending := append([]request(nil), reqs...)
		tokens, rounds := 0, 0
		start := time.Now()
		for len(batch) > 0 || len(pending) > 0 {
			// Admission: arrived requests join the running batch. Grammar
			// resolution goes through the compiled-grammar LRU; session state
			// comes from the per-grammar pool.
			for len(pending) > 0 && pending[0].arriveAt <= rounds {
				req := pending[0]
				pending = pending[1:]
				var s *xgrammar.Session
				var err error
				if req.schema == nil {
					cg, cerr := compiler.CompileBuiltinJSON()
					if cerr != nil {
						panic(cerr)
					}
					s = eng.OpenSession(cg)
				} else if s, err = eng.OpenJSONSchemaSession(req.schema, xgrammar.SchemaOptions{}); err != nil {
					panic(err)
				}
				batch = append(batch, &sequence{req: req, s: s})
			}
			rounds++
			// One batched forward pass; the grammar engine fills every live
			// mask while the GPU runs (overlapped) or after it (serial).
			sessions := make([]*xgrammar.Session, len(batch))
			for i, q := range batch {
				sessions[i] = q.s
			}
			gpuDone := time.After(gpuStepTime)
			if overlapped {
				eng.FillBatch(sessions)
				<-gpuDone
			} else {
				<-gpuDone
				eng.FillBatch(sessions)
			}
			// Sample (teacher-forced), accept, insert jump-forwards, retire.
			// Accept does not refill: the next round's FillBatch recomputes
			// every stale mask in parallel while the GPU step runs, so the
			// grammar work happens exactly once per token — off the critical
			// path.
			for i := 0; i < len(batch); {
				q := batch[i]
				var next int32
				if q.emitted >= len(q.req.target) {
					next = info.EOSTokenID()
				} else {
					next = info.Encode(q.req.target[q.emitted:])[0]
				}
				if q.s.Mask()[next>>6]&(1<<uint(next&63)) == 0 {
					panic("target token masked out")
				}
				if err := q.s.Accept(next); err != nil {
					panic(err)
				}
				if q.s.IsTerminated() {
					q.s.Close() // state recycled for the next arrival
					batch[i] = batch[len(batch)-1]
					batch = batch[:len(batch)-1]
					continue
				}
				q.emitted += len(info.TokenBytes(next))
				tokens++
				// Jump-forward: insert the deterministic continuation when it
				// matches the target (Appendix B).
				if jf := q.s.JumpForward(); jf != "" &&
					strings.HasPrefix(q.req.target[q.emitted:], jf) {
					if err := q.s.AcceptString(jf); err != nil {
						panic(err)
					}
					q.emitted += len(jf)
					q.jumped += len(jf)
				}
				i++
			}
		}
		return time.Since(start), tokens, rounds
	}

	fmt.Printf("continuous batching: %d requests (2 grammars), GPU step %v\n\n", len(reqs), gpuStepTime)
	serialT, n, serialRounds := run(false)
	overlapT, _, overlapRounds := run(true)
	fmt.Printf("  serial     (fill after GPU step):  %7v/round, %d tokens in %d rounds\n",
		(serialT / time.Duration(serialRounds)).Round(time.Microsecond), n, serialRounds)
	fmt.Printf("  overlapped (fill during GPU step): %7v/round\n",
		(overlapT / time.Duration(overlapRounds)).Round(time.Microsecond))
	fmt.Printf("  pure GPU floor:                    %7v/round\n\n", gpuStepTime)
	fmt.Println("the batch mask fill runs through a persistent work-stealing worker")
	fmt.Println("pool while the GPU step executes, so with the mask cache the grammar")
	fmt.Println("work disappears from the critical path (§3.5)")

	st := compiler.CompileCacheStats()
	fmt.Printf("\ncompiled-grammar cache: %d builds for %d requests ×2 runs (%d hits)\n",
		st.Builds, len(reqs), st.Hits)
	fmt.Println("sessions joining mid-run reuse the matcher/mask state of finished")
	fmt.Println("sequences (sync.Pool), so steady-state admission allocates no grammar state")
}
