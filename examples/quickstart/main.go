// Quickstart: compile the built-in JSON grammar and run a guided random
// generation. The mask guarantees every sampled token keeps the output
// inside the grammar, so the final text is always valid JSON.
package main

import (
	"fmt"
	"math/rand"

	"xgrammar"
)

func main() {
	// 1. A tokenizer. DefaultTokenizer trains (once, cached) a byte-level
	//    BPE vocabulary on the built-in corpus.
	info := xgrammar.DefaultTokenizer(4000)

	// 2. Compile a grammar against that tokenizer. Compilation builds the
	//    pushdown automaton and the adaptive token mask cache.
	compiler := xgrammar.NewCompiler(info)
	cg, err := compiler.CompileBuiltinJSON()
	if err != nil {
		panic(err)
	}
	st := cg.Stats()
	fmt.Printf("compiled JSON grammar: %d PDA nodes, %d context-dependent tokens\n",
		st.PDANodes, st.ContextDependent)

	// 3. Decode with a mask. Here the "model" samples uniformly from the
	//    allowed tokens — a worst-case model — yet the output stays valid.
	rng := rand.New(rand.NewSource(7))
	m := xgrammar.NewMatcher(cg)
	mask := make([]uint64, cg.MaskWords())
	var out []int32
	for steps := 0; steps < 120 && !m.IsTerminated(); steps++ {
		if _, err := m.FillNextTokenBitmask(mask); err != nil {
			panic(err)
		}
		var allowed []int32
		for id := 0; id < info.VocabSize(); id++ {
			if mask[id>>6]&(1<<uint(id&63)) != 0 {
				allowed = append(allowed, int32(id))
			}
		}
		pick := allowed[rng.Intn(len(allowed))]
		// Nudge the walk toward termination so the demo stays short.
		if m.CanTerminate() && rng.Intn(2) == 0 {
			pick = info.EOSTokenID()
		}
		if err := m.AcceptToken(pick); err != nil {
			panic(err)
		}
		if pick != info.EOSTokenID() {
			out = append(out, pick)
		}
	}
	text := info.Decode(out)
	fmt.Printf("generated (%d tokens): %s\n", len(out), text)

	// 4. Verify with a fresh matcher.
	v := xgrammar.NewMatcher(cg)
	if err := v.AcceptString(text); err != nil || !(v.CanTerminate() || !v.IsTerminated()) {
		panic("generated text is not valid under the grammar")
	}
	fmt.Println("verified: output is inside the grammar")
}
