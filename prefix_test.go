package xgrammar

import (
	"strings"
	"testing"
)

// TestAcquireSessionWarmStart exercises the public warm-start surface: a
// second acquisition of the same forced prefix must restore a cached
// checkpoint, reuse the memoized mask, and behave byte-identically to the
// cold acquisition.
func TestAcquireSessionWarmStart(t *testing.T) {
	info := testTokenizer(t)
	compiler := NewCompiler(info)
	eng := NewEngine(compiler, WithPrefixCache(1<<20, 0, 0))
	cg, err := compiler.CompileBuiltinJSON()
	if err != nil {
		t.Fatal(err)
	}
	if cg.ID() == "" {
		t.Fatal("cache-compiled grammar has no content-addressed ID")
	}

	prefix := `{"user": {"name": "`
	cold, res, err := eng.AcquireSession(cg, prefix)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hit {
		t.Fatal("first acquisition reported a cache hit")
	}
	coldMask := append([]uint64(nil), cold.Mask()...)
	cold.Close() // publishes the captured checkpoints

	warm, res, err := eng.AcquireSession(cg, prefix)
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	if !res.Hit || res.ReusedBytes != len(prefix) || res.ReplayedBytes != 0 {
		t.Fatalf("second acquisition not an exact hit: %+v", res)
	}
	if !res.MaskReused {
		t.Fatal("exact hit did not adopt the memoized mask")
	}
	if !masksEqual(warm.Mask(), coldMask) {
		t.Fatal("warm mask differs from cold mask")
	}

	// The warm session must accept exactly the continuations a fresh
	// matcher at the same point accepts.
	m := NewMatcher(cg)
	if err := m.AcceptString(prefix); err != nil {
		t.Fatal(err)
	}
	suffix := `bob", "age": 3}`
	if err := warm.AcceptString(suffix); err != nil {
		t.Fatalf("warm session rejected valid suffix: %v", err)
	}
	if err := m.AcceptString(suffix); err != nil {
		t.Fatal(err)
	}
	if warm.CanTerminate() != m.CanTerminate() {
		t.Fatal("termination disagreement between warm session and fresh matcher")
	}

	st := eng.PrefixCacheStats()
	if st.Hits < 1 || st.Entries == 0 {
		t.Fatalf("cache stats: %+v", st)
	}
	as := eng.PrefixAcquireStats()
	if as.Acquires != 2 || as.ExactHits != 1 || as.BytesReused != int64(len(prefix)) {
		t.Fatalf("acquire stats: %+v", as)
	}
}

// TestAcquireSessionInvalidPrefix: a prefix the grammar rejects returns an
// error and no session.
func TestAcquireSessionInvalidPrefix(t *testing.T) {
	compiler := NewCompiler(testTokenizer(t))
	eng := NewEngine(compiler, WithPrefixCache(1<<20, 0, 0))
	cg, err := compiler.CompileBuiltinJSON()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.AcquireSession(cg, `{"a": nope`); err == nil {
		t.Fatal("invalid prefix accepted")
	}
}

// TestSessionCheckpointRoundTrip: Checkpoint on a root Session captures the
// constraint state, and OpenSessionAt resumes an independent session from it
// with identical masks.
func TestSessionCheckpointRoundTrip(t *testing.T) {
	compiler := NewCompiler(testTokenizer(t))
	eng := NewEngine(compiler)
	cg, err := compiler.CompileBuiltinJSON()
	if err != nil {
		t.Fatal(err)
	}

	s := eng.OpenSession(cg)
	defer s.Close()
	if err := s.AcceptString(`{"items": [1, 2, `); err != nil {
		t.Fatal(err)
	}
	s.Fill()
	cp, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	want := append([]uint64(nil), s.Mask()...)

	r := eng.OpenSessionAt(cg, cp)
	defer r.Close()
	if !masksEqual(r.Mask(), want) {
		t.Fatal("resumed session mask differs from origin")
	}
	if err := r.AcceptString(`3]}`); err != nil {
		t.Fatalf("resumed session rejected valid continuation: %v", err)
	}
	if !r.CanTerminate() {
		t.Fatal("resumed session cannot terminate after complete document")
	}
}

// TestTagSessionCheckpointUnsupported: structural-tag sessions refuse to
// checkpoint (their dispatcher state is not portable).
func TestTagSessionCheckpointUnsupported(t *testing.T) {
	compiler := NewCompiler(testTokenizer(t))
	eng := NewEngine(compiler)
	tags, err := compiler.CompileStructuralTags(StructuralTags{
		{Begin: "<t>", End: "</t>", Grammar: GrammarSpec{Kind: KindBuiltin, Source: "json"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := eng.OpenTagSession(tags)
	defer ts.Close()
	if _, err := ts.Checkpoint(); err == nil || !strings.Contains(err.Error(), "structural-tag") {
		t.Fatalf("tag session checkpoint error = %v, want structural-tag refusal", err)
	}
}
