// Command xgtok trains and inspects the byte-level BPE tokenizer substrate.
//
// Usage:
//
//	xgtok -vocab 32000 -stats            # train and print statistics
//	xgtok -vocab 8000 -encode "hello"    # tokenize a string
//	xgtok -vocab 8000 -boundary          # list grammar-boundary-crossing tokens
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"xgrammar"
)

func main() {
	vocab := flag.Int("vocab", 8000, "vocabulary size")
	stats := flag.Bool("stats", false, "print vocabulary statistics")
	encode := flag.String("encode", "", "string to tokenize")
	boundary := flag.Bool("boundary", false, "list tokens containing JSON structural bytes")
	flag.Parse()

	info := xgrammar.DefaultTokenizer(*vocab)
	if *stats || (!*boundary && *encode == "") {
		fmt.Printf("vocab size: %d\n", info.VocabSize())
		lens := map[int]int{}
		maxLen := 0
		for id := int32(0); id < int32(info.VocabSize()); id++ {
			if info.IsSpecial(id) {
				continue
			}
			l := len(info.TokenBytes(id))
			lens[l]++
			if l > maxLen {
				maxLen = l
			}
		}
		for l := 1; l <= maxLen; l++ {
			if lens[l] > 0 {
				fmt.Printf("  len %2d: %6d tokens\n", l, lens[l])
			}
		}
	}
	if *encode != "" {
		ids := info.Encode(*encode)
		fmt.Printf("%d tokens:", len(ids))
		for _, id := range ids {
			fmt.Printf(" %d:%q", id, info.TokenBytes(id))
		}
		fmt.Println()
		if info.Decode(ids) != *encode {
			fmt.Fprintln(os.Stderr, "xgtok: round-trip mismatch")
			os.Exit(1)
		}
	}
	if *boundary {
		n := 0
		for id := int32(0); id < int32(info.VocabSize()); id++ {
			if info.IsSpecial(id) {
				continue
			}
			b := info.TokenBytes(id)
			if len(b) >= 2 && bytes.ContainsAny(b, `{}[],:"`) {
				fmt.Printf("%q ", b)
				n++
			}
		}
		fmt.Printf("\n%d boundary-crossing tokens\n", n)
	}
}
