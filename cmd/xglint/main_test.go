package main

import (
	"os"
	"testing"
)

// TestListAnalyzers pins the suite roster: the five analyzers the CI gate
// and the README document.
func TestListAnalyzers(t *testing.T) {
	want := []string{"atomicmix", "hotpathalloc", "lockhold", "nilrecv", "noclock"}
	if len(All) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(All), len(want))
	}
	for i, a := range All {
		if a.Name != want[i] {
			t.Errorf("All[%d] = %s, want %s", i, a.Name, want[i])
		}
	}
}

// TestCleanOverModule is the smoke check behind the CI gate: the full suite
// reports nothing on the module's own tree. The xgrammar/... pattern works
// from this package's directory regardless of cwd inside the module.
func TestCleanOverModule(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module load in -short mode")
	}
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	if code := run([]string{"xgrammar/..."}, os.Stdout, devnull); code != 0 {
		t.Fatalf("xglint exit %d over xgrammar/..., want 0 (findings above)", code)
	}
}
