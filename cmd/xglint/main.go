// Command xglint runs the project's static-analysis suite (internal/analysis)
// over the module: the hot-path and concurrency invariants the serving
// runtime claims — 0-alloc //xg:hotpath functions, nil-safe //xg:nilsafe
// tracer methods, atomic-only counter access, no wall-clock reads on the
// decode path, no blocking work under a mutex — enforced at lint time.
//
// Usage:
//
//	xglint [-run name[,name...]] [-list] [packages]
//
// Packages default to ./... relative to the working directory, which must
// be inside the module. The exit code is 1 when findings are reported, 2 on
// load or usage errors. Suppress an individual finding with a justified
// annotation comment on or above its line:
//
//	//xg:allow <analyzer>: <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"xgrammar/internal/analysis"
	"xgrammar/internal/analysis/atomicmix"
	"xgrammar/internal/analysis/hotpathalloc"
	"xgrammar/internal/analysis/lockhold"
	"xgrammar/internal/analysis/nilrecv"
	"xgrammar/internal/analysis/noclock"
)

// All is the full analyzer suite, in stable order.
var All = []*analysis.Analyzer{
	atomicmix.Analyzer,
	hotpathalloc.Analyzer,
	lockhold.Analyzer,
	nilrecv.Analyzer,
	noclock.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("xglint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("run", "", "comma-separated analyzer names to run (default all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range All {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := All
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range All {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "xglint: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	mod, err := analysis.LoadModule(".", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "xglint: %v\n", err)
		return 2
	}
	diags, err := analysis.Run(mod, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "xglint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "xglint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
