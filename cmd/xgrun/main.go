// Command xgrun compiles a grammar and validates or interactively inspects
// inputs against it.
//
// Usage:
//
//	xgrun -grammar json -input '{"a": 1}'        # validate against builtin
//	xgrun -ebnf grammar.ebnf -input 'text'       # custom EBNF grammar
//	xgrun -schema schema.json -input '{"x": 2}'  # JSON Schema
//	xgrun -grammar json -input '[1,' -explain    # show PDA state and next bytes
//	xgrun -grammar json -mask -input '{"a"'      # mask statistics at each step
package main

import (
	"flag"
	"fmt"
	"os"

	"xgrammar"
)

func main() {
	grammarName := flag.String("grammar", "", "builtin grammar: json, xml, python")
	ebnfPath := flag.String("ebnf", "", "path to an EBNF grammar file")
	schemaPath := flag.String("schema", "", "path to a JSON Schema file")
	input := flag.String("input", "", "input text to validate")
	vocab := flag.Int("vocab", 4000, "tokenizer vocabulary size")
	explain := flag.Bool("explain", false, "print matcher state after input")
	maskInfo := flag.Bool("mask", false, "print mask statistics at each token step")
	flag.Parse()

	info := xgrammar.DefaultTokenizer(*vocab)
	compiler := xgrammar.NewCompiler(info)

	var cg *xgrammar.CompiledGrammar
	var err error
	switch {
	case *ebnfPath != "":
		src, rerr := os.ReadFile(*ebnfPath)
		if rerr != nil {
			fatal(rerr)
		}
		cg, err = compiler.CompileGrammar(string(src))
	case *schemaPath != "":
		src, rerr := os.ReadFile(*schemaPath)
		if rerr != nil {
			fatal(rerr)
		}
		cg, err = compiler.CompileJSONSchema(src, xgrammar.SchemaOptions{})
	case *grammarName == "json":
		cg, err = compiler.CompileBuiltinJSON()
	case *grammarName == "xml":
		cg, err = compiler.CompileBuiltinXML()
	case *grammarName == "python":
		cg, err = compiler.CompileBuiltinPythonDSL()
	default:
		fmt.Fprintln(os.Stderr, "xgrun: specify -grammar {json,xml,python}, -ebnf FILE, or -schema FILE")
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}

	st := cg.Stats()
	fmt.Printf("compiled: %d PDA nodes, %d edges; mask cache: %d ctx-dependent tokens, %.1f KB adaptive storage\n",
		st.PDANodes, st.PDAEdges, st.ContextDependent, float64(st.AdaptiveBytes)/1024)

	if *input == "" {
		return
	}
	m := xgrammar.NewMatcher(cg)
	if *maskInfo {
		ids := info.Encode(*input)
		mask := make([]uint64, cg.MaskWords())
		for i, id := range ids {
			fs, err := m.FillNextTokenBitmask(mask)
			if err != nil {
				fatal(err)
			}
			allowed := 0
			for _, w := range mask {
				for ; w != 0; w &= w - 1 {
					allowed++
				}
			}
			fmt.Printf("step %2d: %5d allowed tokens, %d ctx checks; next token %q\n",
				i, allowed, fs.CtxChecked, info.TokenBytes(id))
			if err := m.AcceptToken(id); err != nil {
				fatal(err)
			}
		}
	} else if err := m.AcceptString(*input); err != nil {
		fmt.Printf("REJECTED: %v\n", err)
		os.Exit(1)
	}
	switch {
	case m.CanTerminate():
		fmt.Println("ACCEPTED (complete)")
	default:
		fmt.Println("ACCEPTED (prefix; grammar expects more input)")
	}
	if *explain {
		fmt.Printf("parallel stacks: %d\n", m.NumParallelStacks())
		if jf := m.FindJumpForwardString(); jf != "" {
			fmt.Printf("forced continuation: %q\n", jf)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xgrun:", err)
	os.Exit(1)
}
