// Command xgrun compiles a grammar and validates or interactively inspects
// inputs against it.
//
// Usage:
//
//	xgrun -grammar json -input '{"a": 1}'        # validate against builtin
//	xgrun -ebnf grammar.ebnf -input 'text'       # custom EBNF grammar
//	xgrun -schema schema.json -input '{"x": 2}'  # JSON Schema
//	xgrun -grammar json -input '[1,' -explain    # show PDA state and next bytes
//	xgrun -grammar json -mask -input '{"a"'      # mask statistics at each step
//	xgrun -grammar json -precompile json.xgc     # serialize the compiled grammar
//	xgrun -load json.xgc -input '{"a": 1}'       # validate from the blob (no rescan)
//	xgrun -schema s.json -store ./grammars       # precompile into an xgserve store
//	xgrun -grammar json -generate -seed 7        # decode one constrained output
//	xgrun -generate -backend http:http://gpu:8080 -schema s.json
//
// -generate decodes one grammar-constrained completion from a model backend
// (-backend takes a registry spec like "sim" or "http:URL"; default is the
// seeded simulated sampler), streaming jump-forward insertions for free like
// the serving engine does.
//
// -precompile writes the compiled grammar — PDA plus the preprocessed token
// mask cache — to a blob that -load reads back without re-running the
// vocabulary scan. -store persists the same blob into an xgserve store
// directory under its content-addressed name, so the server warm-starts
// from it. Blobs embed the serialization version and the tokenizer
// fingerprint, so loading under a different -vocab fails loudly instead of
// producing wrong masks.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"xgrammar"
)

func main() {
	grammarName := flag.String("grammar", "", "builtin grammar: json, xml, python")
	ebnfPath := flag.String("ebnf", "", "path to an EBNF grammar file")
	schemaPath := flag.String("schema", "", "path to a JSON Schema file")
	input := flag.String("input", "", "input text to validate")
	vocab := flag.Int("vocab", 4000, "tokenizer vocabulary size")
	explain := flag.Bool("explain", false, "print matcher state after input")
	maskInfo := flag.Bool("mask", false, "print mask statistics at each token step")
	precompile := flag.String("precompile", "", "write the compiled grammar blob to this path")
	storeDir := flag.String("store", "", "persist the compiled grammar into this xgserve store directory (content-addressed name)")
	load := flag.String("load", "", "load a compiled grammar blob instead of compiling")
	generate := flag.Bool("generate", false, "decode one constrained completion from the model backend")
	backendSpec := flag.String("backend", "sim", "model backend registry spec for -generate (e.g. sim, http:http://host:port)")
	seed := flag.Int64("seed", 42, "backend seed for -generate")
	maxNew := flag.Int("max-new", 128, "decode-step budget for -generate")
	flag.Parse()

	info := xgrammar.DefaultTokenizer(*vocab)
	compiler := xgrammar.NewCompiler(info)
	if *storeDir != "" {
		// Compiling with the store attached persists the blob under its
		// content-addressed ID — the name xgserve's warm start and
		// GrammarByID resolve, which a hand-named file would not match.
		if err := compiler.AttachStore(*storeDir); err != nil {
			fatal(err)
		}
	}

	var cg *xgrammar.CompiledGrammar
	var err error
	switch {
	case *load != "":
		if *storeDir != "" {
			// A bare blob cannot be imported: its content-addressed store
			// name derives from the grammar source, which the blob does not
			// carry. Refuse loudly rather than silently writing nothing.
			fmt.Fprintln(os.Stderr, "xgrun: -load cannot be combined with -store; recompile from source with -store instead")
			os.Exit(2)
		}
		f, oerr := os.Open(*load)
		if oerr != nil {
			fatal(oerr)
		}
		cg, err = compiler.LoadCompiledGrammar(f)
		f.Close()
		if err == nil {
			fmt.Printf("loaded %s (no vocabulary rescan)\n", *load)
		}
	case *ebnfPath != "":
		src, rerr := os.ReadFile(*ebnfPath)
		if rerr != nil {
			fatal(rerr)
		}
		cg, err = compiler.CompileGrammar(string(src))
	case *schemaPath != "":
		src, rerr := os.ReadFile(*schemaPath)
		if rerr != nil {
			fatal(rerr)
		}
		cg, err = compiler.CompileJSONSchema(src, xgrammar.SchemaOptions{})
	case *grammarName == "json":
		cg, err = compiler.CompileBuiltinJSON()
	case *grammarName == "xml":
		cg, err = compiler.CompileBuiltinXML()
	case *grammarName == "python":
		cg, err = compiler.CompileBuiltinPythonDSL()
	default:
		fmt.Fprintln(os.Stderr, "xgrun: specify -grammar {json,xml,python}, -ebnf FILE, -schema FILE, or -load BLOB")
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}

	st := cg.Stats()
	fmt.Printf("compiled: %d PDA nodes, %d edges; mask cache: %d ctx-dependent tokens, %.1f KB adaptive storage\n",
		st.PDANodes, st.PDAEdges, st.ContextDependent, float64(st.AdaptiveBytes)/1024)

	if *precompile != "" {
		f, cerr := os.Create(*precompile)
		if cerr != nil {
			fatal(cerr)
		}
		if err := cg.Serialize(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		size := 0.0
		if fi, serr := os.Stat(*precompile); serr == nil {
			size = float64(fi.Size()) / 1024
		}
		fmt.Printf("wrote %s (%.1f KB): load it back with -load\n", *precompile, size)
	}
	if *storeDir != "" {
		st := compiler.StoreStats()
		fmt.Printf("store %s: %d blobs (%d written this run) — xgserve -store %s warm-starts from it\n",
			*storeDir, st.Blobs, st.Writes, *storeDir)
	}

	if *generate {
		if err := runGenerate(cg, info, *backendSpec, *seed, *maxNew); err != nil {
			fatal(err)
		}
		return
	}

	if *input == "" {
		return
	}
	m := xgrammar.NewMatcher(cg)
	if *maskInfo {
		ids := info.Encode(*input)
		mask := make([]uint64, cg.MaskWords())
		for i, id := range ids {
			fs, err := m.FillNextTokenBitmask(mask)
			if err != nil {
				fatal(err)
			}
			allowed := 0
			for _, w := range mask {
				for ; w != 0; w &= w - 1 {
					allowed++
				}
			}
			fmt.Printf("step %2d: %5d allowed tokens, %d ctx checks; next token %q\n",
				i, allowed, fs.CtxChecked, info.TokenBytes(id))
			if err := m.AcceptToken(id); err != nil {
				fatal(err)
			}
		}
	} else if err := m.AcceptString(*input); err != nil {
		fmt.Printf("REJECTED: %v\n", err)
		os.Exit(1)
	}
	switch {
	case m.CanTerminate():
		fmt.Println("ACCEPTED (complete)")
	default:
		fmt.Println("ACCEPTED (prefix; grammar expects more input)")
	}
	if *explain {
		fmt.Printf("parallel stacks: %d\n", m.NumParallelStacks())
		if jf := m.FindJumpForwardString(); jf != "" {
			fmt.Printf("forced continuation: %q\n", jf)
		}
	}
}

// runGenerate decodes one grammar-constrained completion from the backend:
// each step masks the vocabulary through the matcher, the backend picks a
// token, and deterministic continuations are jump-forward-inserted for free.
func runGenerate(cg *xgrammar.CompiledGrammar, info *xgrammar.TokenizerInfo, spec string, seed int64, maxNew int) error {
	bk, err := xgrammar.OpenBackend(spec)
	if err != nil {
		return err
	}
	defer bk.Close()
	seq, err := bk.Open(xgrammar.ModelRequest{Seed: seed, MaxTokens: maxNew})
	if err != nil {
		return err
	}
	defer seq.Close()

	m := xgrammar.NewMatcher(cg)
	mask := make([]uint64, cg.MaskWords())
	eos := info.EOSTokenID()
	var out strings.Builder
	steps, jfBytes := 0, 0
	for steps < maxNew {
		if _, err := m.FillNextTokenBitmask(mask); err != nil {
			return err
		}
		id, err := seq.Next(context.Background(), mask)
		if errors.Is(err, xgrammar.ErrNoToken) {
			break
		}
		if err != nil {
			return err
		}
		if id == eos {
			break
		}
		if err := m.AcceptToken(id); err != nil {
			return fmt.Errorf("backend %s picked a token outside the mask: %w", bk.Name(), err)
		}
		out.Write(info.TokenBytes(id))
		steps++
		if jf := m.FindJumpForwardString(); jf != "" && seq.ObserveForced(jf) {
			if err := m.AcceptString(jf); err != nil {
				return err
			}
			out.WriteString(jf)
			jfBytes += len(jf)
		}
	}
	fmt.Println(out.String())
	complete := "complete"
	if !m.CanTerminate() {
		complete = "incomplete (budget exhausted)"
	}
	fmt.Fprintf(os.Stderr, "xgrun: backend %s, seed %d: %d sampled tokens, %d jump-forward bytes, %s\n",
		bk.Name(), seed, steps, jfBytes, complete)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xgrun:", err)
	os.Exit(1)
}
