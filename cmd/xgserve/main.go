// Command xgserve runs the structured-generation gateway: an OpenAI-style
// HTTP API over the continuous-batching engine, with a disk-backed
// compiled-grammar store for compile-once/serve-many across restarts.
//
// Usage:
//
//	xgserve -addr :8080 -store ./grammars
//	xgserve -backend sim -backend llama8b=http:http://gpu:8080
//
// -backend maps request "model" names to model backends (repeatable;
// MODEL=SPEC, a bare SPEC sets the default). Without it, generations decode
// against the built-in seeded simulated sampler.
//
// Endpoints:
//
//	POST /v1/grammars      register + compile a grammar -> content-addressed id
//	GET  /v1/grammars/{id} registered-grammar metadata
//	POST /v1/generate      constrained generation ("stream": true for SSE)
//	GET  /healthz          liveness
//	GET  /metrics          throughput, fill p50/p99, cache + store hit rates
//	                       (JSON by default; ?format=prometheus or an Accept
//	                       header naming text/plain switches to Prometheus
//	                       text exposition)
//	GET  /debug/requests   recently completed request traces with per-stage
//	                       spans (filter: model, grammar_id, min_ms, limit)
//
// -debug-addr starts a second listener serving net/http/pprof under
// /debug/pprof/ plus the same /metrics and /debug/requests — keep it
// private; the main address stays safe to expose. -log-format json emits
// one structured access-log line per request on stdout; -slow-ms logs
// requests slower than the threshold to stderr.
//
// With -store, compiled grammars are persisted (atomic write-then-rename)
// and preloaded at boot, so a restarted server serves its first request
// without re-running the vocabulary scan. Precompile blobs offline with
// xgrun -precompile and drop them in the store directory.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"xgrammar"
	"xgrammar/internal/backend"
	"xgrammar/internal/obs"
	"xgrammar/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	vocab := flag.Int("vocab", 4000, "tokenizer vocabulary size")
	storeDir := flag.String("store", "", "compiled-grammar store directory (empty: in-memory only)")
	warm := flag.Bool("warm", true, "preload the store into the compile cache at boot")
	maxInflight := flag.Int("max-inflight", 64, "max concurrently decoding generations (429 beyond)")
	maxTokens := flag.Int("max-tokens", 256, "per-request decode-step budget cap")
	gpuStep := flag.Duration("gpu-step", 2*time.Millisecond, "simulated GPU forward-pass time per decode round")
	workers := flag.Int("workers", 0, "batch-fill workers (0: one per CPU, shared pool)")
	debugAddr := flag.String("debug-addr", "", "private listen address for pprof + trace endpoints (empty: disabled)")
	logFormat := flag.String("log-format", "", "access-log format: json or text (empty: no access log)")
	prefixMB := flag.Int("prefix-cache-mb", 32, "constraint-state prefix cache byte budget in MiB (0: disabled)")
	prefixDepth := flag.Int("prefix-depth", 0, "min forced-prefix bytes before checkpoints are cached (0: default)")
	prefixStride := flag.Int("prefix-stride", 0, "bytes between intermediate checkpoint captures during replay (0: default)")
	trace := flag.Bool("trace", true, "record request-lifecycle traces (stage histograms, /debug/requests)")
	traceRing := flag.Int("trace-ring", obs.DefaultRingSize, "completed request traces retained for /debug/requests")
	slowMS := flag.Float64("slow-ms", 0, "log requests slower than this many ms to stderr (0: disabled)")
	backendSpecs := multiFlag{}
	flag.Var(&backendSpecs, "backend",
		"model backend mapping MODEL=SPEC (repeatable; a bare SPEC sets the default backend), e.g. -backend sim -backend llama8b=http:http://gpu:8080; registered: "+
			strings.Join(backend.Names(), ", "))
	flag.Parse()

	backends := map[string]backend.Backend{}
	for _, s := range backendSpecs {
		model, spec := "", s
		if i := strings.IndexByte(s, '='); i >= 0 {
			model, spec = s[:i], s[i+1:]
		}
		bk, err := backend.Open(spec)
		if err != nil {
			fatal(err)
		}
		backends[model] = bk
		label := model
		if label == "" {
			label = "(default)"
		}
		fmt.Fprintf(os.Stderr, "xgserve: model %s -> backend %s\n", label, bk.Name())
	}

	t0 := time.Now()
	fmt.Fprintf(os.Stderr, "xgserve: training tokenizer (vocab=%d, cached per process)...\n", *vocab)
	info := xgrammar.DefaultTokenizer(*vocab)
	compiler := xgrammar.NewCompiler(info)
	fmt.Fprintf(os.Stderr, "xgserve: tokenizer ready in %v\n", time.Since(t0).Round(time.Millisecond))

	if *storeDir != "" {
		if err := compiler.AttachStore(*storeDir); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "xgserve: grammar store at %s (%d blobs)\n", *storeDir, compiler.StoreStats().Blobs)
		if *warm {
			tw := time.Now()
			n, err := compiler.WarmStart()
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "xgserve: warm start loaded %d compiled grammars in %v (no vocabulary rescans)\n",
				n, time.Since(tw).Round(time.Millisecond))
		}
	}

	var engOpts []xgrammar.EngineOption
	if *workers > 0 {
		engOpts = append(engOpts, xgrammar.WithFillWorkers(*workers))
	}
	if *prefixMB > 0 {
		engOpts = append(engOpts, xgrammar.WithPrefixCache(int64(*prefixMB)<<20, *prefixDepth, *prefixStride))
		fmt.Fprintf(os.Stderr, "xgserve: prefix cache enabled (budget=%d MiB)\n", *prefixMB)
	}
	eng := xgrammar.NewEngine(compiler, engOpts...)
	tracer := obs.New(obs.Config{
		Disabled:      !*trace,
		RingSize:      *traceRing,
		SlowThreshold: time.Duration(*slowMS * float64(time.Millisecond)),
		SlowLogWriter: os.Stderr,
	})
	var accessLog func(server.AccessRecord)
	switch *logFormat {
	case "":
	case "json":
		accessLog = server.JSONAccessLogger(os.Stdout)
	case "text":
		accessLog = server.TextAccessLogger(os.Stdout)
	default:
		fatal(fmt.Errorf("unknown -log-format %q (want json or text)", *logFormat))
	}
	gw := server.New(server.Config{
		Engine:      eng,
		MaxInflight: *maxInflight,
		MaxTokens:   *maxTokens,
		GPUStep:     *gpuStep,
		Backends:    backends,
		Tracer:      tracer,
		AccessLog:   accessLog,
	})

	var debugSrv *http.Server
	if *debugAddr != "" {
		// pprof only on the side listener: the main address can face a
		// network; the profiling surface should not.
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dmux.Handle("GET /metrics", gw)
		dmux.Handle("GET /debug/requests", gw)
		debugSrv = &http.Server{Addr: *debugAddr, Handler: dmux}
		go func() {
			fmt.Fprintf(os.Stderr, "xgserve: debug endpoints (pprof, traces) on %s\n", *debugAddr)
			if err := debugSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fatal(err)
			}
		}()
	}

	httpSrv := &http.Server{Addr: *addr, Handler: gw}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Fprintln(os.Stderr, "xgserve: shutting down...")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
		if debugSrv != nil {
			debugSrv.Shutdown(ctx)
		}
		gw.Close()
		eng.Close()
	}()

	fmt.Fprintf(os.Stderr, "xgserve: serving on %s (max-inflight=%d, max-tokens=%d, gpu-step=%v)\n",
		*addr, *maxInflight, *maxTokens, *gpuStep)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
	<-done
}

// multiFlag collects repeated flag values.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xgserve:", err)
	os.Exit(1)
}
