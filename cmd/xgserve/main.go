// Command xgserve runs the structured-generation gateway: an OpenAI-style
// HTTP API over the continuous-batching engine, with a disk-backed
// compiled-grammar store for compile-once/serve-many across restarts.
//
// Usage:
//
//	xgserve -addr :8080 -store ./grammars
//	xgserve -backend sim -backend llama8b=http:http://gpu:8080
//
// -backend maps request "model" names to model backends (repeatable;
// MODEL=SPEC, a bare SPEC sets the default). Without it, generations decode
// against the built-in seeded simulated sampler.
//
// Endpoints:
//
//	POST /v1/grammars      register + compile a grammar -> content-addressed id
//	GET  /v1/grammars/{id} registered-grammar metadata
//	POST /v1/generate      constrained generation ("stream": true for SSE)
//	GET  /healthz          liveness
//	GET  /metrics          throughput, fill p50/p99, cache + store hit rates
//
// With -store, compiled grammars are persisted (atomic write-then-rename)
// and preloaded at boot, so a restarted server serves its first request
// without re-running the vocabulary scan. Precompile blobs offline with
// xgrun -precompile and drop them in the store directory.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"xgrammar"
	"xgrammar/internal/backend"
	"xgrammar/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	vocab := flag.Int("vocab", 4000, "tokenizer vocabulary size")
	storeDir := flag.String("store", "", "compiled-grammar store directory (empty: in-memory only)")
	warm := flag.Bool("warm", true, "preload the store into the compile cache at boot")
	maxInflight := flag.Int("max-inflight", 64, "max concurrently decoding generations (429 beyond)")
	maxTokens := flag.Int("max-tokens", 256, "per-request decode-step budget cap")
	gpuStep := flag.Duration("gpu-step", 2*time.Millisecond, "simulated GPU forward-pass time per decode round")
	workers := flag.Int("workers", 0, "batch-fill workers (0: one per CPU, shared pool)")
	backendSpecs := multiFlag{}
	flag.Var(&backendSpecs, "backend",
		"model backend mapping MODEL=SPEC (repeatable; a bare SPEC sets the default backend), e.g. -backend sim -backend llama8b=http:http://gpu:8080; registered: "+
			strings.Join(backend.Names(), ", "))
	flag.Parse()

	backends := map[string]backend.Backend{}
	for _, s := range backendSpecs {
		model, spec := "", s
		if i := strings.IndexByte(s, '='); i >= 0 {
			model, spec = s[:i], s[i+1:]
		}
		bk, err := backend.Open(spec)
		if err != nil {
			fatal(err)
		}
		backends[model] = bk
		label := model
		if label == "" {
			label = "(default)"
		}
		fmt.Fprintf(os.Stderr, "xgserve: model %s -> backend %s\n", label, bk.Name())
	}

	t0 := time.Now()
	fmt.Fprintf(os.Stderr, "xgserve: training tokenizer (vocab=%d, cached per process)...\n", *vocab)
	info := xgrammar.DefaultTokenizer(*vocab)
	compiler := xgrammar.NewCompiler(info)
	fmt.Fprintf(os.Stderr, "xgserve: tokenizer ready in %v\n", time.Since(t0).Round(time.Millisecond))

	if *storeDir != "" {
		if err := compiler.AttachStore(*storeDir); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "xgserve: grammar store at %s (%d blobs)\n", *storeDir, compiler.StoreStats().Blobs)
		if *warm {
			tw := time.Now()
			n, err := compiler.WarmStart()
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "xgserve: warm start loaded %d compiled grammars in %v (no vocabulary rescans)\n",
				n, time.Since(tw).Round(time.Millisecond))
		}
	}

	var engOpts []xgrammar.EngineOption
	if *workers > 0 {
		engOpts = append(engOpts, xgrammar.WithFillWorkers(*workers))
	}
	eng := xgrammar.NewEngine(compiler, engOpts...)
	gw := server.New(server.Config{
		Engine:      eng,
		MaxInflight: *maxInflight,
		MaxTokens:   *maxTokens,
		GPUStep:     *gpuStep,
		Backends:    backends,
	})

	httpSrv := &http.Server{Addr: *addr, Handler: gw}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Fprintln(os.Stderr, "xgserve: shutting down...")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
		gw.Close()
		eng.Close()
	}()

	fmt.Fprintf(os.Stderr, "xgserve: serving on %s (max-inflight=%d, max-tokens=%d, gpu-step=%v)\n",
		*addr, *maxInflight, *maxTokens, *gpuStep)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
	<-done
}

// multiFlag collects repeated flag values.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xgserve:", err)
	os.Exit(1)
}
