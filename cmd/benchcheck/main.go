// Command benchcheck sanity-checks the committed BENCH_*.json files that
// cmd/xgbench writes with -json 'BENCH_*.json'.
//
// Usage:
//
//	benchcheck BENCH_serve.json BENCH_spec.json ...
//	benchcheck BENCH_*.json
//
// Each file must be a benchFile record — {mode, vocab, experiment, results}
// — whose results array is non-empty and whose per-experiment required keys
// are present, finite, and sane (throughputs positive, latencies
// non-negative, identity flags true). The point is to keep the committed
// perf baselines honest: a refactor that breaks xgbench's -json shape, or
// a backend change that silently loses byte identity, fails CI here rather
// than bit-rotting in the repo.
package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
)

// benchFile mirrors cmd/xgbench's per-section output record.
type benchFile struct {
	Mode       string           `json:"mode"`
	Vocab      int              `json:"vocab"`
	Experiment string           `json:"experiment"`
	Results    []map[string]any `json:"results"`
}

// fieldKind says how a required key must validate.
type fieldKind int

const (
	numPositive fieldKind = iota // finite number > 0
	numNonNeg                    // finite number >= 0
	strNonEmpty                  // non-empty string
	boolTrue                     // boolean, must be true
)

// required maps each experiment id to the keys every result row must carry.
var required = map[string]map[string]fieldKind{
	"serve": {
		"experiment":     strNonEmpty,
		"requests":       numPositive,
		"output_tokens":  numPositive,
		"tokens_per_sec": numPositive,
		"fill_p50_us":    numNonNeg,
		"fill_p99_us":    numNonNeg,
		"peak_batch":     numPositive,
	},
	"spec": {
		"experiment":      strNonEmpty,
		"requests":        numPositive,
		"output_tokens":   numPositive,
		"decode_steps":    numPositive,
		"tokens_per_sec":  numPositive,
		"acceptance_rate": numNonNeg,
		"byte_identical":  boolTrue,
	},
	"store": {
		"grammar":         strNonEmpty,
		"cold_compile_ms": numPositive,
		"warm_load_ms":    numPositive,
		"speedup":         numPositive,
		"blob_kb":         numPositive,
	},
	"tags": {
		"phase":          strNonEmpty,
		"tokens":         numPositive,
		"tokens_per_sec": numPositive,
		"fill_p50_us":    numNonNeg,
		"fill_p99_us":    numNonNeg,
	},
	"backend": {
		"experiment":     strNonEmpty,
		"backend":        strNonEmpty,
		"requests":       numPositive,
		"output_tokens":  numPositive,
		"tokens_per_sec": numPositive,
		"latency_p50_ms": numNonNeg,
		"latency_p99_ms": numNonNeg,
		"errors":         numNonNeg,
		"byte_identical": boolTrue,
	},
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcheck BENCH_*.json")
		os.Exit(2)
	}
	failed := false
	for _, path := range os.Args[1:] {
		if errs := checkFile(path); len(errs) > 0 {
			failed = true
			for _, e := range errs {
				fmt.Fprintf(os.Stderr, "benchcheck: %s: %v\n", path, e)
			}
			continue
		}
		fmt.Printf("benchcheck: %s ok\n", path)
	}
	if failed {
		os.Exit(1)
	}
}

func checkFile(path string) []error {
	data, err := os.ReadFile(path)
	if err != nil {
		return []error{err}
	}
	var bf benchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return []error{fmt.Errorf("parse: %w", err)}
	}
	var errs []error
	fail := func(format string, args ...any) { errs = append(errs, fmt.Errorf(format, args...)) }

	if bf.Mode != "quick" && bf.Mode != "full" {
		fail("mode %q is neither quick nor full", bf.Mode)
	}
	if bf.Vocab <= 0 {
		fail("vocab %d is not positive", bf.Vocab)
	}
	fields, ok := required[bf.Experiment]
	if !ok {
		fail("unknown experiment %q", bf.Experiment)
		return errs
	}
	if len(bf.Results) == 0 {
		fail("experiment %s has no results", bf.Experiment)
		return errs
	}
	for i, row := range bf.Results {
		for key, kind := range fields {
			v, present := row[key]
			if !present {
				fail("results[%d]: missing key %q", i, key)
				continue
			}
			switch kind {
			case numPositive, numNonNeg:
				n, isNum := v.(float64)
				switch {
				case !isNum:
					fail("results[%d].%s: %v is not a number", i, key, v)
				case math.IsNaN(n) || math.IsInf(n, 0):
					fail("results[%d].%s: %v is not finite", i, key, n)
				case kind == numPositive && n <= 0:
					fail("results[%d].%s: %v is not positive", i, key, n)
				case kind == numNonNeg && n < 0:
					fail("results[%d].%s: %v is negative", i, key, n)
				}
			case strNonEmpty:
				s, isStr := v.(string)
				if !isStr || s == "" {
					fail("results[%d].%s: %v is not a non-empty string", i, key, v)
				}
			case boolTrue:
				b, isBool := v.(bool)
				if !isBool {
					fail("results[%d].%s: %v is not a boolean", i, key, v)
				} else if !b {
					fail("results[%d].%s: false (identity regression)", i, key)
				}
			}
		}
	}
	return errs
}
