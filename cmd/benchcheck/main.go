// Command benchcheck sanity-checks the committed BENCH_*.json files that
// cmd/xgbench writes with -json 'BENCH_*.json'.
//
// Usage:
//
//	benchcheck BENCH_serve.json BENCH_spec.json ...
//	benchcheck BENCH_*.json
//	benchcheck -baseline-dir . /tmp/REGEN_*.json
//
// Each file must be a benchFile record — {mode, vocab, experiment, results}
// — whose results array is non-empty and whose per-experiment required keys
// are present, finite, and sane (throughputs positive, latencies
// non-negative, identity flags true). The point is to keep the committed
// perf baselines honest: a refactor that breaks xgbench's -json shape, or
// a backend change that silently loses byte identity, fails CI here rather
// than bit-rotting in the repo.
//
// With -baseline-dir, benchcheck additionally runs in delta mode: every
// checked file is compared against BENCH_<experiment>.json in the baseline
// directory, and a >max-reg relative regression in tokens_per_sec or
// fill_p50_us fails the check. Throughput comes from the modelled decode
// clock and is stable even in quick mode; fill latencies are real wall time,
// so sub-resolution baselines (under latencyFloorUS) are exempt from the
// latency gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
)

// benchFile mirrors cmd/xgbench's per-section output record.
type benchFile struct {
	Mode       string           `json:"mode"`
	Vocab      int              `json:"vocab"`
	Experiment string           `json:"experiment"`
	Results    []map[string]any `json:"results"`
}

// fieldKind says how a required key must validate.
type fieldKind int

const (
	numPositive fieldKind = iota // finite number > 0
	numNonNeg                    // finite number >= 0
	strNonEmpty                  // non-empty string
	boolTrue                     // boolean, must be true
)

// required maps each experiment id to the keys every result row must carry.
var required = map[string]map[string]fieldKind{
	"serve": {
		"experiment":     strNonEmpty,
		"requests":       numPositive,
		"output_tokens":  numPositive,
		"tokens_per_sec": numPositive,
		"fill_p50_us":    numNonNeg,
		"fill_p99_us":    numNonNeg,
		"peak_batch":     numPositive,
	},
	"spec": {
		"experiment":      strNonEmpty,
		"requests":        numPositive,
		"output_tokens":   numPositive,
		"decode_steps":    numPositive,
		"tokens_per_sec":  numPositive,
		"acceptance_rate": numNonNeg,
		"byte_identical":  boolTrue,
	},
	"store": {
		"grammar":         strNonEmpty,
		"cold_compile_ms": numPositive,
		"warm_load_ms":    numPositive,
		"speedup":         numPositive,
		"blob_kb":         numPositive,
	},
	"tags": {
		"phase":          strNonEmpty,
		"tokens":         numPositive,
		"tokens_per_sec": numPositive,
		"fill_p50_us":    numNonNeg,
		"fill_p99_us":    numNonNeg,
	},
	"backend": {
		"experiment":     strNonEmpty,
		"backend":        strNonEmpty,
		"requests":       numPositive,
		"output_tokens":  numPositive,
		"tokens_per_sec": numPositive,
		"latency_p50_ms": numNonNeg,
		"latency_p99_ms": numNonNeg,
		"errors":         numNonNeg,
		"byte_identical": boolTrue,
	},
	"obs": {
		"experiment":     strNonEmpty,
		"requests":       numPositive,
		"output_tokens":  numPositive,
		"wall_ms":        numPositive,
		"tokens_per_sec": numPositive,
		"overhead_pct":   numNonNeg,
	},
	"prefix": {
		"experiment":        strNonEmpty,
		"mode":              strNonEmpty,
		"requests":          numPositive,
		"prefix_bytes":      numPositive,
		"first_mask_p50_us": numPositive,
		"first_mask_p99_us": numPositive,
		"tokens_per_sec":    numPositive,
		"byte_identical":    boolTrue,
	},
}

// maxObsOverheadPct caps the tracing overhead the obs experiment may report:
// the request-lifecycle tracer must cost under 2% of tok/s versus the same
// gateway with tracing disabled.
const maxObsOverheadPct = 2.0

// identityKeys name the row fields that identify a result across runs, per
// experiment; delta mode matches fresh rows to baseline rows by them.
var identityKeys = map[string][]string{
	"serve":   {"experiment"},
	"spec":    {"experiment"},
	"store":   {"grammar"},
	"tags":    {"phase"},
	"backend": {"experiment", "backend"},
	"obs":     {"experiment"},
	"prefix":  {"experiment"},
}

// latencyFloorUS exempts sub-resolution fill latencies from the delta gate:
// quick-mode p50 sits around 0.2µs, where a single timer tick is a multiple
// of the whole baseline. Throughput (modelled clock) has no such floor.
const latencyFloorUS = 5.0

func main() {
	baselineDir := flag.String("baseline-dir", "", "directory of committed BENCH_*.json baselines; enables delta mode")
	maxReg := flag.Float64("max-reg", 0.25, "maximum tolerated relative regression in delta mode")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: benchcheck [-baseline-dir DIR] [-max-reg 0.25] BENCH_*.json")
		os.Exit(2)
	}
	failed := false
	for _, path := range flag.Args() {
		bf, errs := checkFile(path)
		if len(errs) == 0 && *baselineDir != "" {
			errs = checkDelta(bf, *baselineDir, *maxReg)
		}
		if len(errs) > 0 {
			failed = true
			for _, e := range errs {
				fmt.Fprintf(os.Stderr, "benchcheck: %s: %v\n", path, e)
			}
			continue
		}
		fmt.Printf("benchcheck: %s ok\n", path)
	}
	if failed {
		os.Exit(1)
	}
}

func checkFile(path string) (benchFile, []error) {
	var bf benchFile
	data, err := os.ReadFile(path)
	if err != nil {
		return bf, []error{err}
	}
	if err := json.Unmarshal(data, &bf); err != nil {
		return bf, []error{fmt.Errorf("parse: %w", err)}
	}
	var errs []error
	fail := func(format string, args ...any) { errs = append(errs, fmt.Errorf(format, args...)) }

	if bf.Mode != "quick" && bf.Mode != "full" {
		fail("mode %q is neither quick nor full", bf.Mode)
	}
	if bf.Vocab <= 0 {
		fail("vocab %d is not positive", bf.Vocab)
	}
	fields, ok := required[bf.Experiment]
	if !ok {
		fail("unknown experiment %q", bf.Experiment)
		return bf, errs
	}
	if len(bf.Results) == 0 {
		fail("experiment %s has no results", bf.Experiment)
		return bf, errs
	}
	for i, row := range bf.Results {
		for key, kind := range fields {
			v, present := row[key]
			if !present {
				fail("results[%d]: missing key %q", i, key)
				continue
			}
			switch kind {
			case numPositive, numNonNeg:
				n, isNum := v.(float64)
				switch {
				case !isNum:
					fail("results[%d].%s: %v is not a number", i, key, v)
				case math.IsNaN(n) || math.IsInf(n, 0):
					fail("results[%d].%s: %v is not finite", i, key, n)
				case kind == numPositive && n <= 0:
					fail("results[%d].%s: %v is not positive", i, key, n)
				case kind == numNonNeg && n < 0:
					fail("results[%d].%s: %v is negative", i, key, n)
				}
			case strNonEmpty:
				s, isStr := v.(string)
				if !isStr || s == "" {
					fail("results[%d].%s: %v is not a non-empty string", i, key, v)
				}
			case boolTrue:
				b, isBool := v.(bool)
				if !isBool {
					fail("results[%d].%s: %v is not a boolean", i, key, v)
				} else if !b {
					fail("results[%d].%s: false (identity regression)", i, key)
				}
			}
		}
		// The prefix experiment's warm row must show the cache actually
		// working: a positive hit rate and prefix bytes restored from
		// checkpoints rather than replayed.
		if bf.Experiment == "prefix" {
			if mode, _ := row["mode"].(string); mode == "warm" {
				if hr, _ := row["hit_rate"].(float64); hr <= 0 {
					fail("results[%d]: warm row hit_rate %v is not positive", i, row["hit_rate"])
				}
				if reused, _ := row["bytes_reused"].(float64); reused <= 0 {
					fail("results[%d]: warm row reused no prefix bytes", i)
				}
			}
		}
		// The obs experiment carries an absolute gate on top of the shape
		// checks: the tracing-on row must price the tracer under the budget
		// and must actually have recorded traces.
		if bf.Experiment == "obs" {
			if on, _ := row["tracing"].(bool); on {
				if pct, _ := row["overhead_pct"].(float64); pct >= maxObsOverheadPct {
					fail("results[%d]: tracing overhead %.2f%% is not under %.1f%%", i, pct, maxObsOverheadPct)
				}
				if traces, _ := row["traces"].(float64); traces <= 0 {
					fail("results[%d]: tracing on but no traces recorded", i)
				}
			}
		}
	}
	return bf, errs
}

// rowKey joins a result row's identity fields into a match key.
func rowKey(row map[string]any, keys []string) string {
	parts := make([]string, len(keys))
	for i, k := range keys {
		s, _ := row[k].(string)
		parts[i] = s
	}
	return strings.Join(parts, " / ")
}

// checkDelta compares bf against the committed baseline for the same
// experiment and fails on relative regressions beyond maxReg. The baseline
// must cover every fresh row and vice versa: a silently dropped bench row
// would otherwise read as "no regression".
func checkDelta(bf benchFile, baselineDir string, maxReg float64) []error {
	var errs []error
	fail := func(format string, args ...any) { errs = append(errs, fmt.Errorf(format, args...)) }

	basePath := filepath.Join(baselineDir, "BENCH_"+bf.Experiment+".json")
	base, baseErrs := checkFile(basePath)
	if len(baseErrs) > 0 {
		for _, e := range baseErrs {
			fail("baseline %s: %v", basePath, e)
		}
		return errs
	}
	// The backend, obs, and prefix experiments' tokens_per_sec divides by
	// raw wall time — CI-runner noise, not a modelled clock like the
	// serve/spec/tags rows — so their absolute throughput is not delta-gated
	// (obs carries its own absolute overhead gate in checkFile instead;
	// prefix carries the byte_identical gate).
	gateTokS := bf.Experiment != "backend" && bf.Experiment != "obs" && bf.Experiment != "prefix"
	keys := identityKeys[bf.Experiment]
	baseRows := make(map[string]map[string]any, len(base.Results))
	for _, row := range base.Results {
		baseRows[rowKey(row, keys)] = row
	}
	seen := make(map[string]bool, len(bf.Results))
	for _, row := range bf.Results {
		k := rowKey(row, keys)
		seen[k] = true
		bRow, ok := baseRows[k]
		if !ok {
			fail("row %q has no baseline in %s", k, basePath)
			continue
		}
		if f, b, ok := numPair(row, bRow, "tokens_per_sec"); ok && gateTokS && f < b*(1-maxReg) {
			fail("row %q: tokens_per_sec %.1f regressed >%.0f%% from baseline %.1f", k, f, maxReg*100, b)
		}
		if f, b, ok := numPair(row, bRow, "fill_p50_us"); ok && b >= latencyFloorUS && f > b*(1+maxReg) {
			fail("row %q: fill_p50_us %.2f regressed >%.0f%% from baseline %.2f", k, f, maxReg*100, b)
		}
	}
	for k := range baseRows {
		if !seen[k] {
			fail("baseline row %q missing from fresh output", k)
		}
	}
	return errs
}

// numPair extracts the same numeric field from a fresh and a baseline row;
// ok is false unless both are present and numeric.
func numPair(fresh, base map[string]any, key string) (f, b float64, ok bool) {
	f, okF := fresh[key].(float64)
	b, okB := base[key].(float64)
	return f, b, okF && okB
}
