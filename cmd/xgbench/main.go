// Command xgbench regenerates the paper's tables and figures.
//
// Usage:
//
//	xgbench                  # run every experiment in quick mode
//	xgbench -full            # paper-scale (32k vocab, larger workloads)
//	xgbench -exp fig9,tab3   # run a subset
//	xgbench -markdown        # emit EXPERIMENTS.md-style markdown
//	xgbench -json BENCH.json # also write machine-readable serving results
//
// Experiment ids: fig9 fig10 fig11 fig12 tab1 tab2 tab3 tab4 stats par
// serve spec store tags. The par experiment reports the parallel mask-cache
// build speedup over the serial preprocessing scan; serve benchmarks the
// continuous-batching serving runtime (pooled sessions, overlapped batch
// mask fill); spec benchmarks speculative draft-verify decoding on the
// rollback window (decode-step reduction versus the non-speculative
// baseline, with a byte-identical output check); store measures a cold
// grammar compile against a warm load-from-disk (the xgserve restart
// path); tags benchmarks structural-tag dispatch (tool calling) with
// per-phase throughput and fill percentiles for free text versus
// in-segment decoding.
//
// With -json, the serving, store, and tags benchmarks' machine-readable
// records (experiment, tokens/s, p50/p99 fill latency, batch dynamics,
// cold/warm latency, per-phase tag profiles) are written to the given path
// so the perf trajectory is tracked across PRs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"xgrammar/internal/experiments"
)

// benchJSON is the schema of the -json output file.
type benchJSON struct {
	Mode    string                        `json:"mode"` // quick | full
	Vocab   int                           `json:"vocab"`
	Serving []experiments.ServeResult     `json:"serving"`
	Spec    []experiments.SpecBenchResult `json:"spec"`
	Store   []experiments.StoreResult     `json:"store"`
	Tags    []experiments.TagsResult      `json:"tags"`
}

func main() {
	full := flag.Bool("full", false, "paper-scale run (32k vocab; several minutes)")
	exps := flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
	markdown := flag.Bool("markdown", false, "emit markdown instead of aligned text")
	vocab := flag.Int("vocab", 0, "override vocabulary size")
	jsonPath := flag.String("json", "", "write machine-readable serving results to this path")
	flag.Parse()

	suite := experiments.NewSuite(!*full)
	if *vocab > 0 {
		suite.Vocab = *vocab
	}
	mode := "quick"
	if *full {
		mode = "full"
	}
	fmt.Fprintf(os.Stderr, "xgbench: %s mode, vocab=%d (tokenizer training is cached per process)\n", mode, suite.Vocab)

	var tables []*experiments.Table
	if *exps == "all" {
		start := time.Now()
		tables = suite.All()
		fmt.Fprintf(os.Stderr, "xgbench: all experiments in %v\n", time.Since(start))
	} else {
		for _, id := range strings.Split(*exps, ",") {
			id = strings.TrimSpace(id)
			tb, ok := suite.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "xgbench: unknown experiment %q\n", id)
				os.Exit(2)
			}
			tables = append(tables, tb)
		}
	}
	for _, tb := range tables {
		if *markdown {
			fmt.Println(tb.Markdown())
		} else {
			fmt.Println(tb.String())
		}
	}

	if *jsonPath != "" {
		out := benchJSON{
			Mode: mode, Vocab: suite.Vocab,
			Serving: suite.ServeBench(), Spec: suite.SpecBench(),
			Store: suite.StoreBench(), Tags: suite.TagsBench(),
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "xgbench: marshal json: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "xgbench: write %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "xgbench: wrote serving results to %s\n", *jsonPath)
	}
}
