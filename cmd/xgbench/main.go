// Command xgbench regenerates the paper's tables and figures.
//
// Usage:
//
//	xgbench                  # run every experiment in quick mode
//	xgbench -full            # paper-scale (32k vocab, larger workloads)
//	xgbench -exp fig9,tab3   # run a subset
//	xgbench -markdown        # emit EXPERIMENTS.md-style markdown
//
// Experiment ids: fig9 fig10 fig11 fig12 tab1 tab2 tab3 tab4 stats par.
// The par experiment reports the parallel mask-cache build speedup over the
// serial preprocessing scan.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"xgrammar/internal/experiments"
)

func main() {
	full := flag.Bool("full", false, "paper-scale run (32k vocab; several minutes)")
	exps := flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
	markdown := flag.Bool("markdown", false, "emit markdown instead of aligned text")
	vocab := flag.Int("vocab", 0, "override vocabulary size")
	flag.Parse()

	suite := experiments.NewSuite(!*full)
	if *vocab > 0 {
		suite.Vocab = *vocab
	}
	mode := "quick"
	if *full {
		mode = "full"
	}
	fmt.Fprintf(os.Stderr, "xgbench: %s mode, vocab=%d (tokenizer training is cached per process)\n", mode, suite.Vocab)

	var tables []*experiments.Table
	if *exps == "all" {
		start := time.Now()
		tables = suite.All()
		fmt.Fprintf(os.Stderr, "xgbench: all experiments in %v\n", time.Since(start))
	} else {
		for _, id := range strings.Split(*exps, ",") {
			id = strings.TrimSpace(id)
			tb, ok := suite.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "xgbench: unknown experiment %q\n", id)
				os.Exit(2)
			}
			tables = append(tables, tb)
		}
	}
	for _, tb := range tables {
		if *markdown {
			fmt.Println(tb.Markdown())
		} else {
			fmt.Println(tb.String())
		}
	}
}
