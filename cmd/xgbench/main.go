// Command xgbench regenerates the paper's tables and figures.
//
// Usage:
//
//	xgbench                  # run every experiment in quick mode
//	xgbench -full            # paper-scale (32k vocab, larger workloads)
//	xgbench -exp fig9,tab3   # run a subset
//	xgbench -markdown        # emit EXPERIMENTS.md-style markdown
//	xgbench -json BENCH.json # also write machine-readable serving results
//
// Experiment ids: fig9 fig10 fig11 fig12 tab1 tab2 tab3 tab4 stats par
// serve spec store tags backend obs prefix. The par experiment reports the parallel
// mask-cache build speedup over the serial preprocessing scan; serve
// benchmarks the continuous-batching serving runtime (pooled sessions,
// overlapped batch mask fill); spec benchmarks speculative draft-verify
// decoding on the rollback window (decode-step reduction versus the
// non-speculative baseline, with a byte-identical output check); store
// measures a cold grammar compile against a warm load-from-disk (the
// xgserve restart path); tags benchmarks structural-tag dispatch (tool
// calling) with per-phase throughput and fill percentiles for free text
// versus in-segment decoding; backend compares the in-process simulated
// sampler with the httpllm HTTP adapter looped back onto an identical
// sampler (byte-identity across the wire, transport latency priced); obs
// prices the request-lifecycle tracer (gateway with tracing off vs on,
// interleaved passes) so observability provably stays under 2% overhead;
// prefix benchmarks the cross-request constraint-state prefix cache on a
// templated workload (cold byte replay vs warm checkpoint restore, with a
// per-step mask byte-identity check).
//
// With -json, the serving, spec, store, tags, backend, obs, and prefix benchmarks'
// machine-readable records (experiment, tokens/s, p50/p99 fill latency,
// batch dynamics, cold/warm latency, per-phase tag profiles, tracing
// overhead) are written so the perf trajectory is tracked across PRs. A '*'
// in the path fans the sections out to one file each (xgbench -json
// 'BENCH_*.json' writes BENCH_serve.json, BENCH_spec.json,
// BENCH_store.json, BENCH_tags.json, BENCH_backend.json, BENCH_obs.json,
// BENCH_prefix.json); without it one combined file is written.
//
// -backend decodes the engine-level experiments against a registry backend
// spec (e.g. "sim", "http:http://host:port") instead of the in-process
// teacher-forced simulation. The simulation remains the default: it is the
// only backend whose timing models the paper's hardware profiles.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"xgrammar/internal/experiments"
)

// benchJSON is the schema of the combined -json output file.
type benchJSON struct {
	Mode    string                           `json:"mode"` // quick | full
	Vocab   int                              `json:"vocab"`
	Serving []experiments.ServeResult        `json:"serving"`
	Spec    []experiments.SpecBenchResult    `json:"spec"`
	Store   []experiments.StoreResult        `json:"store"`
	Tags    []experiments.TagsResult         `json:"tags"`
	Backend []experiments.BackendBenchResult `json:"backend"`
	Obs     []experiments.ObsResult          `json:"obs"`
	Prefix  []experiments.PrefixResult       `json:"prefix"`
}

// benchFile is the schema of one per-section BENCH_<id>.json file (the '*'
// form of -json; cmd/benchcheck validates this shape).
type benchFile struct {
	Mode       string `json:"mode"` // quick | full
	Vocab      int    `json:"vocab"`
	Experiment string `json:"experiment"`
	Results    any    `json:"results"`
}

func main() {
	full := flag.Bool("full", false, "paper-scale run (32k vocab; several minutes)")
	exps := flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
	markdown := flag.Bool("markdown", false, "emit markdown instead of aligned text")
	vocab := flag.Int("vocab", 0, "override vocabulary size")
	jsonPath := flag.String("json", "", "write machine-readable results here; a '*' fans sections out to one file each")
	backendSpec := flag.String("backend", "", "decode engine-level experiments against this registry backend spec (default: in-process simulation)")
	flag.Parse()

	suite := experiments.NewSuite(!*full)
	if *vocab > 0 {
		suite.Vocab = *vocab
	}
	suite.ModelSpec = *backendSpec
	mode := "quick"
	if *full {
		mode = "full"
	}
	fmt.Fprintf(os.Stderr, "xgbench: %s mode, vocab=%d (tokenizer training is cached per process)\n", mode, suite.Vocab)

	var tables []*experiments.Table
	if *exps == "all" {
		start := time.Now()
		tables = suite.All()
		fmt.Fprintf(os.Stderr, "xgbench: all experiments in %v\n", time.Since(start))
	} else {
		for _, id := range strings.Split(*exps, ",") {
			id = strings.TrimSpace(id)
			tb, ok := suite.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "xgbench: unknown experiment %q\n", id)
				os.Exit(2)
			}
			tables = append(tables, tb)
		}
	}
	for _, tb := range tables {
		if *markdown {
			fmt.Println(tb.Markdown())
		} else {
			fmt.Println(tb.String())
		}
	}

	if *jsonPath == "" {
		return
	}
	writeJSON := func(path string, v any) {
		data, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "xgbench: marshal json: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(path, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "xgbench: write %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "xgbench: wrote %s\n", path)
	}
	if strings.Contains(*jsonPath, "*") {
		sections := []struct {
			id      string
			results any
		}{
			{"serve", suite.ServeBench()},
			{"spec", suite.SpecBench()},
			{"store", suite.StoreBench()},
			{"tags", suite.TagsBench()},
			{"backend", suite.BackendBench()},
			{"obs", suite.ObsBench()},
			{"prefix", suite.PrefixBench()},
		}
		for _, sec := range sections {
			writeJSON(strings.Replace(*jsonPath, "*", sec.id, 1), benchFile{
				Mode: mode, Vocab: suite.Vocab, Experiment: sec.id, Results: sec.results,
			})
		}
		return
	}
	writeJSON(*jsonPath, benchJSON{
		Mode: mode, Vocab: suite.Vocab,
		Serving: suite.ServeBench(), Spec: suite.SpecBench(),
		Store: suite.StoreBench(), Tags: suite.TagsBench(),
		Backend: suite.BackendBench(), Obs: suite.ObsBench(),
		Prefix: suite.PrefixBench(),
	})
}
