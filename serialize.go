package xgrammar

import (
	"encoding/gob"
	"fmt"
	"io"

	"xgrammar/internal/ebnf"
	"xgrammar/internal/maskcache"
	"xgrammar/internal/pda"
)

// serializeVersion guards the wire format.
const serializeVersion = 1

// wireGrammar is the gob wire form of a CompiledGrammar. The grammar is
// carried as EBNF text (re-parsed on load, cheap); the PDA and the adaptive
// token mask cache — the expensive preprocessing artifacts — are carried
// verbatim so loading skips the vocabulary scan entirely.
type wireGrammar struct {
	Version    int
	VocabSize  int
	Grammar    string
	Nodes      []pda.Node
	RuleStart  []int32
	Root       int32
	HasCache   bool
	Masks      []maskcache.WireMask
	CacheStats maskcache.Stats
	CtxExp     bool
	MaxHistory int
}

// Serialize writes the compiled grammar — including the preprocessed mask
// cache — to w, so deployments can compile once and load instantly.
func (cg *CompiledGrammar) Serialize(w io.Writer) error {
	wire := wireGrammar{
		Version:    serializeVersion,
		VocabSize:  cg.info.VocabSize(),
		Grammar:    cg.pda.Grammar.String(),
		Nodes:      cg.pda.Nodes,
		RuleStart:  cg.pda.RuleStart,
		Root:       cg.pda.Root,
		HasCache:   cg.cache != nil,
		CtxExp:     cg.cfg.cacheOpts.ContextExpansion,
		MaxHistory: cg.cfg.maxHistory,
	}
	if cg.cache != nil {
		wire.Masks = cg.cache.ToWire()
		wire.CacheStats = cg.cache.Stats()
	}
	return gob.NewEncoder(w).Encode(&wire)
}

// LoadCompiledGrammar reads a grammar serialized by Serialize. The tokenizer
// must match the one the grammar was compiled against (vocabulary size is
// verified; token contents are the caller's responsibility, exactly as with
// upstream XGrammar's cached compilation).
func (c *Compiler) LoadCompiledGrammar(r io.Reader) (*CompiledGrammar, error) {
	var wire wireGrammar
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("xgrammar: load: %w", err)
	}
	if wire.Version != serializeVersion {
		return nil, fmt.Errorf("xgrammar: load: unsupported version %d", wire.Version)
	}
	if wire.VocabSize != c.info.VocabSize() {
		return nil, fmt.Errorf("xgrammar: load: grammar compiled for vocab %d, tokenizer has %d",
			wire.VocabSize, c.info.VocabSize())
	}
	g, err := ebnf.Parse(wire.Grammar)
	if err != nil {
		return nil, fmt.Errorf("xgrammar: load: embedded grammar: %w", err)
	}
	p := pda.FromParts(g, wire.Nodes, wire.RuleStart, wire.Root)
	cfg := c.cfg
	cfg.useCache = wire.HasCache
	cfg.cacheOpts.ContextExpansion = wire.CtxExp
	cfg.maxHistory = wire.MaxHistory
	cg := &CompiledGrammar{info: c.info, pda: p, cfg: cfg}
	if wire.HasCache {
		cg.cache = maskcache.FromParts(p, c.info.tok, maskcache.FromWire(wire.Masks), wire.CacheStats)
	}
	return cg, nil
}
