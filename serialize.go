package xgrammar

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/bits"

	"xgrammar/internal/bitset"
	"xgrammar/internal/ebnf"
	"xgrammar/internal/fsa"
	"xgrammar/internal/maskcache"
	"xgrammar/internal/pda"
)

// serializeVersion guards the wire format. Version 2 added TokFingerprint;
// version 3 renumbered the mask storage kinds to the popcount-selected
// adaptive representations (AcceptList/RejectList/WordMask) and added a
// per-mask AcceptCount integrity field. Version-2 blobs are still loaded
// (the kinds are remapped and AcceptCount reconstructed); version-1 blobs
// (which verified only the vocabulary size) are rejected with a recompile
// hint.
const serializeVersion = 3

// loadableVersions maps accepted wire versions to whether their masks need
// the v2->v3 storage-kind remap.
var loadableVersions = map[int]bool{2: true, 3: false}

// wireGrammar is the gob wire form of a CompiledGrammar. The grammar is
// carried as EBNF text (re-parsed on load, cheap); the PDA and the adaptive
// token mask cache — the expensive preprocessing artifacts — are carried
// verbatim so loading skips the vocabulary scan entirely.
type wireGrammar struct {
	Version   int
	VocabSize int
	// TokFingerprint is the tokenizer's vocabulary hash (over all token
	// bytes); a mask cache is only valid against the exact vocabulary it was
	// scanned with, so load verifies it.
	TokFingerprint uint64
	Grammar        string
	Nodes          []pda.Node
	RuleStart      []int32
	Root           int32
	HasCache       bool
	Masks          []maskcache.WireMask
	CacheStats     maskcache.Stats
	CtxExp         bool
	MaxHistory     int
}

// Serialize writes the compiled grammar — including the preprocessed mask
// cache — to w, so deployments can compile once and load instantly.
func (cg *CompiledGrammar) Serialize(w io.Writer) error {
	wire := wireGrammar{
		Version:        serializeVersion,
		VocabSize:      cg.info.VocabSize(),
		TokFingerprint: cg.info.tok.Fingerprint(),
		Grammar:        cg.pda.Grammar.String(),
		Nodes:          cg.pda.Nodes,
		RuleStart:      cg.pda.RuleStart,
		Root:           cg.pda.Root,
		HasCache:       cg.cache != nil,
		CtxExp:         cg.cfg.cacheOpts.ContextExpansion,
		MaxHistory:     cg.cfg.maxHistory,
	}
	if cg.cache != nil {
		wire.Masks = cg.cache.ToWire()
		wire.CacheStats = cg.cache.Stats()
	}
	return gob.NewEncoder(w).Encode(&wire)
}

// LoadCompiledGrammar reads a grammar serialized by Serialize. The tokenizer
// must be the one the grammar was compiled against: both the vocabulary size
// and a fingerprint over every token's bytes are verified, so a cache scanned
// under a different vocabulary can never be loaded silently.
func (c *Compiler) LoadCompiledGrammar(r io.Reader) (*CompiledGrammar, error) {
	var wire wireGrammar
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("xgrammar: load: %w", err)
	}
	needRemap, ok := loadableVersions[wire.Version]
	if !ok {
		return nil, fmt.Errorf("xgrammar: load: unsupported serialization version %d (this build reads versions 2-%d; blobs from older builds lack the tokenizer fingerprint — recompile the grammar and serialize again)",
			wire.Version, serializeVersion)
	}
	if wire.VocabSize != c.info.VocabSize() {
		return nil, fmt.Errorf("xgrammar: load: grammar compiled for vocab %d, tokenizer has %d",
			wire.VocabSize, c.info.VocabSize())
	}
	if fp := c.info.tok.Fingerprint(); wire.TokFingerprint != fp {
		return nil, fmt.Errorf("xgrammar: load: tokenizer fingerprint mismatch (grammar %016x, tokenizer %016x): the grammar was compiled against a different vocabulary",
			wire.TokFingerprint, fp)
	}
	g, err := ebnf.Parse(wire.Grammar)
	if err != nil {
		return nil, fmt.Errorf("xgrammar: load: embedded grammar: %w", err)
	}
	regular := int32(len(c.info.tok.SortedRegularIDs()))
	if needRemap {
		remapV2Masks(wire.Masks, regular)
		// V2 stats counted kinds under the old numbering (0 was the dense
		// "accept-heavy" form, 1 the sparse one) — swap to match the remap.
		kc := &wire.CacheStats.KindCounts
		kc[maskcache.AcceptList], kc[maskcache.RejectList] = kc[maskcache.RejectList], kc[maskcache.AcceptList]
	}
	if err := validateWire(&wire, len(g.Rules), regular, c.info.tok.SpecialIDs()); err != nil {
		return nil, fmt.Errorf("xgrammar: load: %w", err)
	}
	p := pda.FromParts(g, wire.Nodes, wire.RuleStart, wire.Root)
	cfg := c.cfg
	cfg.useCache = wire.HasCache
	cfg.cacheOpts.ContextExpansion = wire.CtxExp
	cfg.maxHistory = wire.MaxHistory
	cg := &CompiledGrammar{info: c.info, pda: p, cfg: cfg}
	if wire.HasCache {
		cg.cache = maskcache.FromParts(p, c.info.tok, maskcache.FromWire(wire.Masks), wire.CacheStats)
	}
	return cg, nil
}

// remapV2Masks converts version-2 masks in place to the version-3 storage
// kinds. V2 kind 0 ("accept-heavy") stored the rejected ids — that is now
// RejectList; v2 kind 1 ("reject-heavy") stored the accepted ids — now
// AcceptList; kind 2 stored accepted words in both versions. V2 blobs carry
// no AcceptCount, so it is reconstructed from the lists (validateWire then
// checks it trivially, which is fine: the kinds were just derived from it).
func remapV2Masks(masks []maskcache.WireMask, regular int32) {
	for i := range masks {
		m := &masks[i]
		switch m.Kind {
		case 0:
			m.Kind = maskcache.RejectList
			m.AcceptCount = regular - int32(len(m.Tokens)) - int32(len(m.Ctx))
		case 1:
			m.Kind = maskcache.AcceptList
			m.AcceptCount = int32(len(m.Tokens))
		case 2:
			m.Kind = maskcache.WordMask
			var c int32
			for _, w := range m.Bits {
				c += int32(bits.OnesCount64(w))
			}
			m.AcceptCount = c
		}
	}
}

// validateWire bounds-checks the decoded automaton and mask cache before
// they are wired into live structures: a truncated or bit-flipped blob must
// fail the load with an error, never corrupt a matcher or panic at decode
// time. numRules is the rule count of the re-parsed embedded grammar;
// regular is the tokenizer's regular-token count and specials its special
// ids (special tokens must never appear in a stored mask — the fused fill
// ORs stored words and lists into session masks verbatim, with no final
// special-clearing pass).
func validateWire(w *wireGrammar, numRules int, regular int32, specials []int32) error {
	nNodes := int32(len(w.Nodes))
	if len(w.Nodes) == 0 {
		return fmt.Errorf("corrupt blob: no PDA nodes")
	}
	if len(w.RuleStart) != numRules {
		return fmt.Errorf("corrupt blob: %d rule starts for %d grammar rules", len(w.RuleStart), numRules)
	}
	if w.Root < 0 || int(w.Root) >= len(w.RuleStart) {
		return fmt.Errorf("corrupt blob: root rule %d out of range [0, %d)", w.Root, len(w.RuleStart))
	}
	for r, start := range w.RuleStart {
		if start < 0 || start >= nNodes {
			return fmt.Errorf("corrupt blob: rule %d starts at node %d, automaton has %d nodes", r, start, nNodes)
		}
	}
	for i := range w.Nodes {
		n := &w.Nodes[i]
		if n.Rule < 0 || int(n.Rule) >= numRules {
			return fmt.Errorf("corrupt blob: node %d owned by rule %d of %d", i, n.Rule, numRules)
		}
		for _, e := range n.Edges {
			if e.To < 0 || e.To >= nNodes {
				return fmt.Errorf("corrupt blob: node %d edge targets node %d of %d", i, e.To, nNodes)
			}
			if e.Kind == fsa.EdgeRule && (e.Rule < 0 || int(e.Rule) >= numRules) {
				return fmt.Errorf("corrupt blob: node %d edge enters rule %d of %d", i, e.Rule, numRules)
			}
		}
	}
	if !w.HasCache {
		return nil
	}
	if len(w.Masks) != len(w.Nodes) {
		return fmt.Errorf("corrupt blob: %d node masks for %d nodes", len(w.Masks), len(w.Nodes))
	}
	vocab := int32(w.VocabSize)
	words := bitset.WordsFor(w.VocabSize)
	for i := range w.Masks {
		m := &w.Masks[i]
		if m.Kind > maskcache.WordMask { // StorageKind is unsigned; no lower bound to check
			return fmt.Errorf("corrupt blob: mask %d has unknown storage kind %d", i, m.Kind)
		}
		if m.Kind == maskcache.WordMask {
			if len(m.Bits) != words {
				return fmt.Errorf("corrupt blob: mask %d holds %d bitset words, vocabulary needs %d", i, len(m.Bits), words)
			}
			// Padding bits beyond the vocabulary must be zero: they would be
			// OR-ed into session masks verbatim and decode to token ids past
			// the vocabulary (an unchecked index at accept time).
			if rem := uint(w.VocabSize % 64); rem != 0 && m.Bits[words-1]>>rem != 0 {
				return fmt.Errorf("corrupt blob: mask %d sets bits beyond vocabulary %d", i, vocab)
			}
			for _, id := range specials {
				if m.Bits[id>>6]&(1<<uint(id&63)) != 0 {
					return fmt.Errorf("corrupt blob: mask %d sets special token %d", i, id)
				}
			}
			if len(m.Tokens) != 0 {
				return fmt.Errorf("corrupt blob: mask %d stores words and a %d-entry token list", i, len(m.Tokens))
			}
		} else if len(m.Bits) != 0 {
			return fmt.Errorf("corrupt blob: mask %d has storage kind %d but %d bitset words", i, m.Kind, len(m.Bits))
		}
		// Token lists must be strictly ascending (sorted, duplicate-free):
		// the fused word-level merge assumes it, and a reordered list would
		// silently produce wrong masks rather than fail the load.
		if err := checkTokenList(m.Tokens, vocab, specials, i, "token"); err != nil {
			return err
		}
		if err := checkTokenList(m.Ctx, vocab, specials, i, "context token"); err != nil {
			return err
		}
		// AcceptCount must agree with the stored representation: a flipped
		// Kind byte inverts the mask's meaning while passing every bounds
		// check, so the redundant popcount is the integrity anchor.
		var want int32
		switch m.Kind {
		case maskcache.AcceptList:
			want = int32(len(m.Tokens))
		case maskcache.RejectList:
			want = regular - int32(len(m.Tokens)) - int32(len(m.Ctx))
		case maskcache.WordMask:
			for _, wd := range m.Bits {
				want += int32(bits.OnesCount64(wd))
			}
		}
		if m.AcceptCount != want {
			return fmt.Errorf("corrupt blob: mask %d kind %s claims %d accepted tokens, stored lists imply %d", i, m.Kind, m.AcceptCount, want)
		}
	}
	return nil
}

// checkTokenList verifies a wire mask's id list is in-range, strictly
// ascending, and free of special token ids.
func checkTokenList(ids []int32, vocab int32, specials []int32, mask int, what string) error {
	for j, id := range ids {
		if id < 0 || id >= vocab {
			return fmt.Errorf("corrupt blob: mask %d lists %s %d of vocabulary %d", mask, what, id, vocab)
		}
		if j > 0 && id <= ids[j-1] {
			return fmt.Errorf("corrupt blob: mask %d %s list not strictly ascending at index %d", mask, what, j)
		}
		for _, sp := range specials {
			if id == sp {
				return fmt.Errorf("corrupt blob: mask %d lists special token %d as %s", mask, id, what)
			}
		}
	}
	return nil
}
