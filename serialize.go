package xgrammar

import (
	"encoding/gob"
	"fmt"
	"io"

	"xgrammar/internal/ebnf"
	"xgrammar/internal/maskcache"
	"xgrammar/internal/pda"
)

// serializeVersion guards the wire format. Version 2 added TokFingerprint;
// version-1 blobs (which verified only the vocabulary size) are rejected
// with a recompile hint.
const serializeVersion = 2

// wireGrammar is the gob wire form of a CompiledGrammar. The grammar is
// carried as EBNF text (re-parsed on load, cheap); the PDA and the adaptive
// token mask cache — the expensive preprocessing artifacts — are carried
// verbatim so loading skips the vocabulary scan entirely.
type wireGrammar struct {
	Version   int
	VocabSize int
	// TokFingerprint is the tokenizer's vocabulary hash (over all token
	// bytes); a mask cache is only valid against the exact vocabulary it was
	// scanned with, so load verifies it.
	TokFingerprint uint64
	Grammar        string
	Nodes          []pda.Node
	RuleStart      []int32
	Root           int32
	HasCache       bool
	Masks          []maskcache.WireMask
	CacheStats     maskcache.Stats
	CtxExp         bool
	MaxHistory     int
}

// Serialize writes the compiled grammar — including the preprocessed mask
// cache — to w, so deployments can compile once and load instantly.
func (cg *CompiledGrammar) Serialize(w io.Writer) error {
	wire := wireGrammar{
		Version:        serializeVersion,
		VocabSize:      cg.info.VocabSize(),
		TokFingerprint: cg.info.tok.Fingerprint(),
		Grammar:        cg.pda.Grammar.String(),
		Nodes:          cg.pda.Nodes,
		RuleStart:      cg.pda.RuleStart,
		Root:           cg.pda.Root,
		HasCache:       cg.cache != nil,
		CtxExp:         cg.cfg.cacheOpts.ContextExpansion,
		MaxHistory:     cg.cfg.maxHistory,
	}
	if cg.cache != nil {
		wire.Masks = cg.cache.ToWire()
		wire.CacheStats = cg.cache.Stats()
	}
	return gob.NewEncoder(w).Encode(&wire)
}

// LoadCompiledGrammar reads a grammar serialized by Serialize. The tokenizer
// must be the one the grammar was compiled against: both the vocabulary size
// and a fingerprint over every token's bytes are verified, so a cache scanned
// under a different vocabulary can never be loaded silently.
func (c *Compiler) LoadCompiledGrammar(r io.Reader) (*CompiledGrammar, error) {
	var wire wireGrammar
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("xgrammar: load: %w", err)
	}
	if wire.Version != serializeVersion {
		return nil, fmt.Errorf("xgrammar: load: unsupported serialization version %d (this build reads version %d; blobs from older builds lack the tokenizer fingerprint — recompile the grammar and serialize again)",
			wire.Version, serializeVersion)
	}
	if wire.VocabSize != c.info.VocabSize() {
		return nil, fmt.Errorf("xgrammar: load: grammar compiled for vocab %d, tokenizer has %d",
			wire.VocabSize, c.info.VocabSize())
	}
	if fp := c.info.tok.Fingerprint(); wire.TokFingerprint != fp {
		return nil, fmt.Errorf("xgrammar: load: tokenizer fingerprint mismatch (grammar %016x, tokenizer %016x): the grammar was compiled against a different vocabulary",
			wire.TokFingerprint, fp)
	}
	g, err := ebnf.Parse(wire.Grammar)
	if err != nil {
		return nil, fmt.Errorf("xgrammar: load: embedded grammar: %w", err)
	}
	p := pda.FromParts(g, wire.Nodes, wire.RuleStart, wire.Root)
	cfg := c.cfg
	cfg.useCache = wire.HasCache
	cfg.cacheOpts.ContextExpansion = wire.CtxExp
	cfg.maxHistory = wire.MaxHistory
	cg := &CompiledGrammar{info: c.info, pda: p, cfg: cfg}
	if wire.HasCache {
		cg.cache = maskcache.FromParts(p, c.info.tok, maskcache.FromWire(wire.Masks), wire.CacheStats)
	}
	return cg, nil
}
