package xgrammar

import (
	"encoding/gob"
	"fmt"
	"io"

	"xgrammar/internal/bitset"
	"xgrammar/internal/ebnf"
	"xgrammar/internal/fsa"
	"xgrammar/internal/maskcache"
	"xgrammar/internal/pda"
)

// serializeVersion guards the wire format. Version 2 added TokFingerprint;
// version-1 blobs (which verified only the vocabulary size) are rejected
// with a recompile hint.
const serializeVersion = 2

// wireGrammar is the gob wire form of a CompiledGrammar. The grammar is
// carried as EBNF text (re-parsed on load, cheap); the PDA and the adaptive
// token mask cache — the expensive preprocessing artifacts — are carried
// verbatim so loading skips the vocabulary scan entirely.
type wireGrammar struct {
	Version   int
	VocabSize int
	// TokFingerprint is the tokenizer's vocabulary hash (over all token
	// bytes); a mask cache is only valid against the exact vocabulary it was
	// scanned with, so load verifies it.
	TokFingerprint uint64
	Grammar        string
	Nodes          []pda.Node
	RuleStart      []int32
	Root           int32
	HasCache       bool
	Masks          []maskcache.WireMask
	CacheStats     maskcache.Stats
	CtxExp         bool
	MaxHistory     int
}

// Serialize writes the compiled grammar — including the preprocessed mask
// cache — to w, so deployments can compile once and load instantly.
func (cg *CompiledGrammar) Serialize(w io.Writer) error {
	wire := wireGrammar{
		Version:        serializeVersion,
		VocabSize:      cg.info.VocabSize(),
		TokFingerprint: cg.info.tok.Fingerprint(),
		Grammar:        cg.pda.Grammar.String(),
		Nodes:          cg.pda.Nodes,
		RuleStart:      cg.pda.RuleStart,
		Root:           cg.pda.Root,
		HasCache:       cg.cache != nil,
		CtxExp:         cg.cfg.cacheOpts.ContextExpansion,
		MaxHistory:     cg.cfg.maxHistory,
	}
	if cg.cache != nil {
		wire.Masks = cg.cache.ToWire()
		wire.CacheStats = cg.cache.Stats()
	}
	return gob.NewEncoder(w).Encode(&wire)
}

// LoadCompiledGrammar reads a grammar serialized by Serialize. The tokenizer
// must be the one the grammar was compiled against: both the vocabulary size
// and a fingerprint over every token's bytes are verified, so a cache scanned
// under a different vocabulary can never be loaded silently.
func (c *Compiler) LoadCompiledGrammar(r io.Reader) (*CompiledGrammar, error) {
	var wire wireGrammar
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("xgrammar: load: %w", err)
	}
	if wire.Version != serializeVersion {
		return nil, fmt.Errorf("xgrammar: load: unsupported serialization version %d (this build reads version %d; blobs from older builds lack the tokenizer fingerprint — recompile the grammar and serialize again)",
			wire.Version, serializeVersion)
	}
	if wire.VocabSize != c.info.VocabSize() {
		return nil, fmt.Errorf("xgrammar: load: grammar compiled for vocab %d, tokenizer has %d",
			wire.VocabSize, c.info.VocabSize())
	}
	if fp := c.info.tok.Fingerprint(); wire.TokFingerprint != fp {
		return nil, fmt.Errorf("xgrammar: load: tokenizer fingerprint mismatch (grammar %016x, tokenizer %016x): the grammar was compiled against a different vocabulary",
			wire.TokFingerprint, fp)
	}
	g, err := ebnf.Parse(wire.Grammar)
	if err != nil {
		return nil, fmt.Errorf("xgrammar: load: embedded grammar: %w", err)
	}
	if err := validateWire(&wire, len(g.Rules)); err != nil {
		return nil, fmt.Errorf("xgrammar: load: %w", err)
	}
	p := pda.FromParts(g, wire.Nodes, wire.RuleStart, wire.Root)
	cfg := c.cfg
	cfg.useCache = wire.HasCache
	cfg.cacheOpts.ContextExpansion = wire.CtxExp
	cfg.maxHistory = wire.MaxHistory
	cg := &CompiledGrammar{info: c.info, pda: p, cfg: cfg}
	if wire.HasCache {
		cg.cache = maskcache.FromParts(p, c.info.tok, maskcache.FromWire(wire.Masks), wire.CacheStats)
	}
	return cg, nil
}

// validateWire bounds-checks the decoded automaton and mask cache before
// they are wired into live structures: a truncated or bit-flipped blob must
// fail the load with an error, never corrupt a matcher or panic at decode
// time. numRules is the rule count of the re-parsed embedded grammar.
func validateWire(w *wireGrammar, numRules int) error {
	nNodes := int32(len(w.Nodes))
	if len(w.Nodes) == 0 {
		return fmt.Errorf("corrupt blob: no PDA nodes")
	}
	if len(w.RuleStart) != numRules {
		return fmt.Errorf("corrupt blob: %d rule starts for %d grammar rules", len(w.RuleStart), numRules)
	}
	if w.Root < 0 || int(w.Root) >= len(w.RuleStart) {
		return fmt.Errorf("corrupt blob: root rule %d out of range [0, %d)", w.Root, len(w.RuleStart))
	}
	for r, start := range w.RuleStart {
		if start < 0 || start >= nNodes {
			return fmt.Errorf("corrupt blob: rule %d starts at node %d, automaton has %d nodes", r, start, nNodes)
		}
	}
	for i := range w.Nodes {
		n := &w.Nodes[i]
		if n.Rule < 0 || int(n.Rule) >= numRules {
			return fmt.Errorf("corrupt blob: node %d owned by rule %d of %d", i, n.Rule, numRules)
		}
		for _, e := range n.Edges {
			if e.To < 0 || e.To >= nNodes {
				return fmt.Errorf("corrupt blob: node %d edge targets node %d of %d", i, e.To, nNodes)
			}
			if e.Kind == fsa.EdgeRule && (e.Rule < 0 || int(e.Rule) >= numRules) {
				return fmt.Errorf("corrupt blob: node %d edge enters rule %d of %d", i, e.Rule, numRules)
			}
		}
	}
	if !w.HasCache {
		return nil
	}
	if len(w.Masks) != len(w.Nodes) {
		return fmt.Errorf("corrupt blob: %d node masks for %d nodes", len(w.Masks), len(w.Nodes))
	}
	vocab := int32(w.VocabSize)
	words := bitset.WordsFor(w.VocabSize)
	for i := range w.Masks {
		m := &w.Masks[i]
		if m.Kind > maskcache.BitsetStore { // StorageKind is unsigned; no lower bound to check
			return fmt.Errorf("corrupt blob: mask %d has unknown storage kind %d", i, m.Kind)
		}
		if m.Kind == maskcache.BitsetStore {
			if len(m.Bits) != words {
				return fmt.Errorf("corrupt blob: mask %d holds %d bitset words, vocabulary needs %d", i, len(m.Bits), words)
			}
			// Padding bits beyond the vocabulary must be zero: they would be
			// OR-ed into session masks verbatim and decode to token ids past
			// the vocabulary (an unchecked index at accept time).
			if rem := uint(w.VocabSize % 64); rem != 0 && m.Bits[words-1]>>rem != 0 {
				return fmt.Errorf("corrupt blob: mask %d sets bits beyond vocabulary %d", i, vocab)
			}
		}
		// Token lists must be strictly ascending (sorted, duplicate-free):
		// the Algorithm-1 merge assumes it, and a reordered list would
		// silently produce wrong masks rather than fail the load.
		if err := checkTokenList(m.Tokens, vocab, i, "token"); err != nil {
			return err
		}
		if err := checkTokenList(m.Ctx, vocab, i, "context token"); err != nil {
			return err
		}
	}
	return nil
}

// checkTokenList verifies a wire mask's id list is in-range and strictly
// ascending.
func checkTokenList(ids []int32, vocab int32, mask int, what string) error {
	for j, id := range ids {
		if id < 0 || id >= vocab {
			return fmt.Errorf("corrupt blob: mask %d lists %s %d of vocabulary %d", mask, what, id, vocab)
		}
		if j > 0 && id <= ids[j-1] {
			return fmt.Errorf("corrupt blob: mask %d %s list not strictly ascending at index %d", mask, what, j)
		}
	}
	return nil
}
