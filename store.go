package xgrammar

import (
	"encoding/hex"
	"fmt"
	"io"

	"xgrammar/internal/gramstore"
)

// GrammarKind names a grammar source type accepted by CompileSpec — the
// wire-level counterpart of the Compile* methods, used by the HTTP gateway
// and the content-addressed grammar store.
type GrammarKind string

// Grammar source kinds.
const (
	// KindEBNF compiles EBNF source text (CompileGrammar).
	KindEBNF GrammarKind = "ebnf"
	// KindJSONSchema compiles a JSON Schema document (CompileJSONSchema).
	KindJSONSchema GrammarKind = "json_schema"
	// KindRegex compiles a regular expression (CompileRegex).
	KindRegex GrammarKind = "regex"
	// KindBuiltin selects a builtin grammar; Source is "json", "xml", or
	// "python".
	KindBuiltin GrammarKind = "builtin"
)

// GrammarSpec is a self-describing grammar source: kind, source text, and
// (for JSON Schema) the schema options. Two specs that would compile to the
// same artifact under the same compiler share one grammar ID.
type GrammarSpec struct {
	Kind   GrammarKind
	Source string
	Schema SchemaOptions
}

// keyParts maps the spec onto the (kind, src) pair used by the compiled-
// grammar cache key, so CompileSpec, the direct Compile* methods, and the
// disk store all agree on identity.
func (spec GrammarSpec) keyParts() (kind, src string, err error) {
	switch spec.Kind {
	case KindEBNF:
		return "ebnf", spec.Source, nil
	case KindJSONSchema:
		return fmt.Sprintf("schema/ap=%v", spec.Schema.AllowAdditionalProperties), spec.Source, nil
	case KindRegex:
		return "regex", spec.Source, nil
	case KindBuiltin:
		switch spec.Source {
		case "json", "xml", "python":
			return "builtin", spec.Source, nil
		}
		return "", "", fmt.Errorf("xgrammar: unknown builtin grammar %q (want json, xml, or python)", spec.Source)
	}
	return "", "", fmt.Errorf("xgrammar: unknown grammar kind %q", spec.Kind)
}

// CompileSpec compiles a self-describing grammar spec, routing through the
// same cache (and disk store, when attached) as the direct Compile* methods.
func (c *Compiler) CompileSpec(spec GrammarSpec) (*CompiledGrammar, error) {
	cg, _, err := c.CompileSpecOutcome(spec)
	return cg, err
}

// CompileSpecOutcome is CompileSpec additionally reporting how the grammar
// was obtained — an LRU hit (or coalescing onto an in-flight build), a disk-
// store load, or a full compile run by this call — so the gateway's request
// tracer can split grammar resolution into its cheap and expensive stages.
func (c *Compiler) CompileSpecOutcome(spec GrammarSpec) (*CompiledGrammar, ResolveOutcome, error) {
	kind, src, err := spec.keyParts()
	if err != nil {
		return nil, ResolveCached, err
	}
	return c.cachedOutcome(kind, src, func() (*CompiledGrammar, error) {
		switch spec.Kind {
		case KindEBNF:
			return c.buildEBNF(spec.Source)
		case KindJSONSchema:
			return c.buildJSONSchema([]byte(spec.Source), spec.Schema)
		case KindRegex:
			return c.buildRegex(spec.Source)
		default: // keyParts validated the builtin name already
			return c.buildBuiltin(spec.Source)
		}
	})
}

// SpecID returns the content-addressed grammar ID for a spec under this
// compiler: a hex digest covering the grammar source, the tokenizer
// fingerprint, and the compiler configuration. The ID is stable across
// processes, names the blob file in an attached store, and is what the
// gateway's POST /v1/grammars returns.
func (c *Compiler) SpecID(spec GrammarSpec) (string, error) {
	kind, src, err := spec.keyParts()
	if err != nil {
		return "", err
	}
	return hex.EncodeToString([]byte(c.cacheKey(kind, src))), nil
}

// GrammarByID resolves a previously compiled grammar by its content-
// addressed ID, checking the in-memory LRU first and then the attached
// store. It never compiles: an ID that is in neither place returns false.
func (c *Compiler) GrammarByID(id string) (*CompiledGrammar, bool) {
	raw, err := hex.DecodeString(id)
	if err != nil || len(raw) == 0 {
		return nil, false
	}
	key := string(raw)
	if c.cache != nil {
		if cg, ok := c.cache.Get(key); ok {
			return cg, true
		}
	}
	if cg, ok := c.storeLoad(key); ok {
		if c.cache != nil {
			c.cache.Put(key, cg, cg.memoryBytes())
		}
		return cg, true
	}
	return nil, false
}

// AttachStore opens (creating if needed) a disk-backed compiled-grammar
// store at dir and layers it under the compiled-grammar LRU: cache misses
// try the store before compiling, and fresh builds are persisted
// (best-effort) with an atomic write-then-rename. Blobs that fail to load —
// truncated, corrupt, stale version, or compiled against a different
// tokenizer — are quarantined and recompiled.
func (c *Compiler) AttachStore(dir string) error {
	s, err := gramstore.Open(dir)
	if err != nil {
		return err
	}
	c.store = s
	return nil
}

// WarmStart preloads blobs from the attached store into the compiled-
// grammar LRU, so a restarted server answers its first request without
// re-running the vocabulary scan. Bad blobs are quarantined and skipped.
// Preloading stops once the LRU byte budget is full — loading past it
// would only evict grammars warmed moments earlier. Returns the number of
// grammars resident after the warm start; zero (no error) when no store is
// attached or the LRU is disabled.
func (c *Compiler) WarmStart() (int, error) {
	if c.store == nil || c.cache == nil {
		return 0, nil
	}
	ids, err := c.store.IDs()
	if err != nil {
		return 0, err
	}
	loaded := 0
	for _, id := range ids {
		if c.cache.Bytes() >= c.cache.MaxBytes() {
			break
		}
		raw, err := hex.DecodeString(id)
		if err != nil {
			continue
		}
		var cg *CompiledGrammar
		found, err := c.store.Preload(id, func(r io.Reader) error {
			var lerr error
			cg, lerr = c.LoadCompiledGrammar(r)
			return lerr
		})
		if !found || err != nil {
			continue // miss, or quarantined by the store
		}
		cg.id = id
		c.cache.Put(string(raw), cg, cg.memoryBytes())
		loaded++
	}
	return loaded, nil
}

// StoreStats reports disk-store activity; zero-valued when no store is
// attached.
type StoreStats struct {
	// Attached reports whether a store is wired under the compile cache.
	Attached bool
	// Hits counts compiles served by loading a blob; Misses counts blob
	// lookups that fell through to a compile.
	Hits, Misses int64
	// Writes counts blobs persisted; WriteErrors counts failed persists
	// (persistence is best-effort).
	Writes, WriteErrors int64
	// Quarantined counts corrupt/stale blobs moved aside.
	Quarantined int64
	// Preloaded counts blobs loaded by WarmStart.
	Preloaded int64
	// Blobs is the current number of stored blobs.
	Blobs int
}

// StoreBlobSize returns the on-disk size of a stored grammar blob by its
// content-addressed ID, or 0 when no store is attached or no blob exists.
func (c *Compiler) StoreBlobSize(id string) int64 {
	if c.store == nil {
		return 0
	}
	return c.store.Size(id)
}

// StoreStats returns a snapshot of the attached store's counters.
func (c *Compiler) StoreStats() StoreStats {
	if c.store == nil {
		return StoreStats{}
	}
	s := c.store.Stats()
	return StoreStats{
		Attached:    true,
		Hits:        s.Hits,
		Misses:      s.Misses,
		Writes:      s.Writes,
		WriteErrors: s.WriteErrors,
		Quarantined: s.Quarantined,
		Preloaded:   s.Preloaded,
		Blobs:       c.store.Len(),
	}
}

// storeLoad tries to satisfy a compile from the attached store. ok is false
// when no store is attached, the blob is absent, or it failed to load (in
// which case it has been quarantined and the caller compiles).
func (c *Compiler) storeLoad(key string) (*CompiledGrammar, bool) {
	if c.store == nil {
		return nil, false
	}
	var cg *CompiledGrammar
	found, err := c.store.Load(hex.EncodeToString([]byte(key)), func(r io.Reader) error {
		var lerr error
		cg, lerr = c.LoadCompiledGrammar(r)
		return lerr
	})
	if !found || err != nil {
		return nil, false
	}
	return cg, true
}

// storeSave persists a freshly compiled grammar to the attached store
// (best-effort: serving never fails because the disk is full).
func (c *Compiler) storeSave(key string, cg *CompiledGrammar) {
	if c.store == nil {
		return
	}
	_ = c.store.Put(hex.EncodeToString([]byte(key)), cg.Serialize)
}
