package matcher

import (
	"strings"
	"testing"

	"xgrammar/internal/ebnf"
	"xgrammar/internal/pda"
)

// jsonGrammar is a compact but complete JSON grammar (ECMA-404 shaped).
const jsonGrammar = `
root    ::= ws value ws
value   ::= object | array | string | number | "true" | "false" | "null"
object  ::= "{" ws ( member ( "," ws member )* )? "}"
member  ::= string ws ":" ws value ws
array   ::= "[" ws ( value ws ( "," ws value ws )* )? "]"
string  ::= "\"" char* "\""
char    ::= [^"\\\x00-\x1f] | "\\" escape
escape  ::= ["\\/bfnrt] | "u" hex hex hex hex
hex     ::= [0-9a-fA-F]
number  ::= "-"? int frac? exp?
int     ::= "0" | [1-9] [0-9]*
frac    ::= "." [0-9]+
exp     ::= [eE] [-+]? [0-9]+
ws      ::= [ \t\n\r]*
`

func newMatcher(t testing.TB, src string, opts pda.Options) *Matcher {
	t.Helper()
	g, err := ebnf.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := pda.Compile(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	return New(NewExec(p), 0)
}

func jsonMatcher(t testing.TB, opts pda.Options) *Matcher {
	return newMatcher(t, jsonGrammar, opts)
}

// acceptAll feeds s byte by byte and reports whether every byte is accepted.
func acceptAll(m *Matcher, s string) bool {
	for i := 0; i < len(s); i++ {
		if !m.Advance([]byte{s[i]}) {
			return false
		}
	}
	return true
}

var goodJSON = []string{
	`{}`,
	`[]`,
	`null`,
	`true`,
	`-12.5e+3`,
	`"hello"`,
	`"he\"llo\\n"`,
	`"é"`,
	`{"a": 1}`,
	`{"a": [1, 2, {"b": null}], "c": "x"}`,
	`[[[[]]]]`,
	`[1, "two", false, {"three": 3.0}]`,
	` { "spaced" : [ 1 , 2 ] } `,
}

var badJSON = []string{
	`{`,
	`{]`,
	`{"a" 1}`,
	`[1,]`,
	`"unterminated`,
	`tru`,
	`01`,
	`1.`,
	`.5`,
	`{"a": }`,
	`["a",,]`,
	`{'a': 1}`,
}

func TestJSONAcceptance(t *testing.T) {
	for _, opts := range []pda.Options{{}, pda.AllOptimizations} {
		for _, s := range goodJSON {
			m := jsonMatcher(t, opts)
			if !acceptAll(m, s) {
				t.Errorf("opts %+v: valid JSON %q rejected", opts, s)
				continue
			}
			if !m.CanTerminate() {
				t.Errorf("opts %+v: %q accepted but cannot terminate", opts, s)
			}
		}
	}
}

func TestJSONRejection(t *testing.T) {
	for _, opts := range []pda.Options{{}, pda.AllOptimizations} {
		for _, s := range badJSON {
			m := jsonMatcher(t, opts)
			ok := acceptAll(m, s)
			if ok && m.CanTerminate() {
				t.Errorf("opts %+v: invalid JSON %q accepted as complete", opts, s)
			}
		}
	}
}

func TestAdvanceAtomicity(t *testing.T) {
	m := jsonMatcher(t, pda.AllOptimizations)
	if m.Advance([]byte(`{"a"!`)) {
		t.Fatal("invalid bytes accepted")
	}
	// The failed Advance must not have consumed the valid prefix.
	if !m.Advance([]byte(`{"a": 1}`)) {
		t.Fatal("valid bytes rejected after failed Advance")
	}
	if !m.CanTerminate() {
		t.Fatal("cannot terminate after full object")
	}
}

func TestMultiByteTokensCrossBoundaries(t *testing.T) {
	// Advance with strings that straddle grammar element boundaries, like
	// real LLM tokens do: `{"` then `a":` then ` [1,` then `2]}`.
	m := jsonMatcher(t, pda.AllOptimizations)
	for _, tok := range []string{`{"`, `a":`, ` [1,`, `2]}`} {
		if !m.Advance([]byte(tok)) {
			t.Fatalf("token %q rejected", tok)
		}
	}
	if !m.CanTerminate() {
		t.Fatal("cannot terminate")
	}
}

func TestUTF8SplitAcrossAdvances(t *testing.T) {
	// é is 0xC3 0xA9; split it across two Advance calls inside a string.
	m := jsonMatcher(t, pda.AllOptimizations)
	steps := [][]byte{[]byte(`"`), {0xC3}, {0xA9}, []byte(`"`)}
	for i, st := range steps {
		if !m.Advance(st) {
			t.Fatalf("step %d (% x) rejected", i, st)
		}
	}
	if !m.CanTerminate() {
		t.Fatal("cannot terminate after split UTF-8 string")
	}
}

func TestInvalidUTF8ContinuationRejected(t *testing.T) {
	m := jsonMatcher(t, pda.AllOptimizations)
	if !m.Advance([]byte(`"`)) {
		t.Fatal("quote rejected")
	}
	if !m.Advance([]byte{0xC3}) {
		t.Fatal("lead byte rejected")
	}
	if m.Advance([]byte{'x'}) {
		t.Fatal("invalid continuation byte accepted")
	}
}

func TestRollback(t *testing.T) {
	m := jsonMatcher(t, pda.AllOptimizations)
	for _, tok := range []string{`[1`, `, 2`, `, 3`} {
		if !m.Advance([]byte(tok)) {
			t.Fatalf("%q rejected", tok)
		}
	}
	if err := m.Rollback(2); err != nil {
		t.Fatal(err)
	}
	// State should be just after `[1`; `]` closes it.
	if !m.Advance([]byte(`]`)) {
		t.Fatal("`]` rejected after rollback")
	}
	if !m.CanTerminate() {
		t.Fatal("cannot terminate after rollback+close")
	}
}

func TestRollbackTooFar(t *testing.T) {
	m := jsonMatcher(t, pda.AllOptimizations)
	m.Advance([]byte(`[`))
	if err := m.Rollback(5); err == nil {
		t.Fatal("expected rollback error")
	}
}

func TestHistoryWindowTrims(t *testing.T) {
	g, err := ebnf.Parse(`root ::= [0-9]*`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := pda.Compile(g, pda.AllOptimizations)
	if err != nil {
		t.Fatal(err)
	}
	m := New(NewExec(p), 4)
	for i := 0; i < 10; i++ {
		if !m.Advance([]byte{'5'}) {
			t.Fatal("digit rejected")
		}
	}
	if m.HistoryLen() != 4 {
		t.Fatalf("history = %d, want 4", m.HistoryLen())
	}
	if err := m.Rollback(4); err != nil {
		t.Fatal(err)
	}
	if err := m.Rollback(1); err == nil {
		t.Fatal("rollback beyond window should fail")
	}
}

func TestCanAdvanceDoesNotMutate(t *testing.T) {
	m := jsonMatcher(t, pda.AllOptimizations)
	if !m.CanAdvance([]byte(`{"a": 1}`)) {
		t.Fatal("CanAdvance false for valid prefix")
	}
	if m.CanAdvance([]byte(`}`)) {
		t.Fatal("CanAdvance true for invalid prefix")
	}
	// Still at the start state.
	if !m.Advance([]byte(`[`)) {
		t.Fatal("state was mutated")
	}
}

func TestJumpForward(t *testing.T) {
	// After `{"name": tr` the only continuation is `ue`.
	m := jsonMatcher(t, pda.AllOptimizations)
	if !m.Advance([]byte(`{"name": tr`)) {
		t.Fatal("prefix rejected")
	}
	jf := m.JumpForward()
	if jf != "ue" {
		t.Fatalf("JumpForward = %q, want %q", jf, "ue")
	}
	// The matcher state must be unchanged.
	if !m.Advance([]byte("ue")) {
		t.Fatal("state mutated by JumpForward")
	}
}

func TestJumpForwardAmbiguous(t *testing.T) {
	m := jsonMatcher(t, pda.AllOptimizations)
	m.Advance([]byte(`[`))
	if jf := m.JumpForward(); jf != "" {
		t.Fatalf("JumpForward = %q, want empty (ambiguous)", jf)
	}
}

func TestJumpForwardSchemaStyle(t *testing.T) {
	// A schema-like grammar with a fixed key skeleton: jump-forward should
	// produce the whole literal run.
	src := `root ::= "{\"name\": \"" [a-z]+ "\", \"age\": " [0-9]+ "}"`
	m := newMatcher(t, src, pda.AllOptimizations)
	jf := m.JumpForward()
	if jf != `{"name": "` {
		t.Fatalf("JumpForward = %q", jf)
	}
	if !m.Advance([]byte(jf)) {
		t.Fatal("jump-forward string rejected")
	}
	if !m.Advance([]byte("bob")) {
		t.Fatal("name rejected")
	}
	// After the name, `"` is not deterministic ([a-z] may continue), so no jump.
	if jf := m.JumpForward(); jf != "" {
		t.Fatalf("JumpForward after name = %q, want empty", jf)
	}
	if !m.Advance([]byte(`", "age": 3`)) {
		t.Fatal("skeleton rejected")
	}
}

func TestJumpForwardInfiniteGrammarBounded(t *testing.T) {
	// r ::= "a" r has an unbounded deterministic continuation; the matcher
	// must bound it rather than loop forever.
	m := newMatcher(t, `root ::= "a" root | "a" "."`, pda.AllOptimizations)
	jf := m.JumpForward()
	if jf != "a" {
		// after "a", both `root` and "." are possible, so only one byte.
		t.Fatalf("JumpForward = %q, want \"a\"", jf)
	}
}

func TestRecursiveDepth(t *testing.T) {
	m := jsonMatcher(t, pda.AllOptimizations)
	depth := 200
	open := strings.Repeat("[", depth)
	close := strings.Repeat("]", depth)
	if !m.Advance([]byte(open)) {
		t.Fatal("deep open rejected")
	}
	if m.CanTerminate() {
		t.Fatal("terminated while unbalanced")
	}
	if !m.Advance([]byte(close)) {
		t.Fatal("deep close rejected")
	}
	if !m.CanTerminate() {
		t.Fatal("cannot terminate when balanced")
	}
}

func TestResetRestoresStart(t *testing.T) {
	m := jsonMatcher(t, pda.AllOptimizations)
	m.Advance([]byte(`{"a"`))
	m.Reset()
	if m.HistoryLen() != 0 {
		t.Fatal("history not cleared")
	}
	if !m.Advance([]byte(`[1]`)) {
		t.Fatal("fresh parse after Reset failed")
	}
}

func TestNoStackLeakAcrossParse(t *testing.T) {
	m := jsonMatcher(t, pda.AllOptimizations)
	e := m.Exec()
	// The initial closure legitimately holds pushed stacks (root enters
	// value, object, ... without consuming input); that is the baseline.
	baseline := e.Tree.Len()
	doc := `{"a": [1, 2, 3], "b": {"c": "d"}}`
	for i := 0; i < 50; i++ {
		if !acceptAll(m, doc) {
			t.Fatal("doc rejected")
		}
		m.Reset()
	}
	if e.Tree.Len() != baseline {
		t.Fatalf("stack tree leaked: %d nodes live, baseline %d", e.Tree.Len(), baseline)
	}
}

func TestPossibleBytesAtStringInterior(t *testing.T) {
	m := jsonMatcher(t, pda.AllOptimizations)
	m.Advance([]byte(`"ab`))
	var poss [256]bool
	n := m.Exec().PossibleBytes(m.States(), &poss)
	if !poss['c'] || !poss['"'] || !poss['\\'] {
		t.Fatal("expected continuation bytes missing")
	}
	if poss[0x00] || poss[0x1f] {
		t.Fatal("control bytes should be rejected inside string")
	}
	if n < 100 {
		t.Fatalf("PossibleBytes = %d, expected a wildcard-sized set", n)
	}
}

func TestParallelStacksFromAmbiguity(t *testing.T) {
	// Grammar where "aa" can parse two ways; both must be tracked.
	src := `
root ::= x "b" | "a" y
x    ::= "a" "a"
y    ::= "a" "b"
`
	m := newMatcher(t, src, pda.Options{})
	if !m.Advance([]byte("a")) {
		t.Fatal("a rejected")
	}
	if !m.Advance([]byte("a")) {
		t.Fatal("aa rejected")
	}
	if m.NumStacks() < 2 {
		t.Fatalf("NumStacks = %d, want >= 2 (ambiguous parse)", m.NumStacks())
	}
	if !m.Advance([]byte("b")) {
		t.Fatal("aab rejected")
	}
	if !m.CanTerminate() {
		t.Fatal("aab should complete")
	}
}
