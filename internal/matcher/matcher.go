package matcher

import "fmt"

// DefaultMaxHistory is the default rollback window, in accepted steps.
const DefaultMaxHistory = 64

// Matcher tracks the PDA state across a generation. Each Advance call
// (typically one LLM token) is atomic and checkpointed; Rollback restores an
// earlier checkpoint in O(1) thanks to the persistent stack tree (§3.3).
type Matcher struct {
	exec *Exec
	// cur is the current closed state set.
	cur []State
	// hist holds closed state-set snapshots after each accepted Advance;
	// hist[len-1] is the state before any Advance since the last trim.
	hist       [][]State
	maxHistory int
	scratch    []State
}

// New returns a matcher at the grammar's start state.
func New(e *Exec, maxHistory int) *Matcher {
	if maxHistory <= 0 {
		maxHistory = DefaultMaxHistory
	}
	m := &Matcher{exec: e, maxHistory: maxHistory}
	m.cur = e.Closure(e.InitialState(), nil)
	return m
}

// Exec returns the underlying executor.
func (m *Matcher) Exec() *Exec { return m.exec }

// States returns the current closed state set. Callers must not retain it
// across Advance/Rollback calls.
func (m *Matcher) States() []State { return m.cur }

// Advance consumes bytes atomically: either all bytes are accepted and a
// checkpoint is recorded, or the matcher is left unchanged and Advance
// reports false. Scratch sets come from the executor's freelist, so in
// steady state (history full, capacities settled) Advance allocates nothing.
func (m *Matcher) Advance(bytes []byte) bool {
	set := m.exec.CloneSetInto(m.exec.GetSet(), m.cur)
	for _, b := range bytes {
		set = m.exec.Closure(set, nil)
		m.scratch = m.exec.StepByte(set, b, m.scratch)
		m.exec.ReleaseSet(set)
		set, m.scratch = m.scratch, set[:0]
		if len(set) == 0 {
			m.exec.PutSet(set)
			return false
		}
	}
	set = m.exec.Closure(set, nil)
	// Commit: push the old state onto history, adopt the new one. The evicted
	// oldest checkpoint's buffer feeds the freelist, balancing the clone above.
	m.hist = append(m.hist, m.cur)
	if len(m.hist) > m.maxHistory {
		m.exec.RecycleSet(m.hist[0])
		copy(m.hist, m.hist[1:])
		m.hist = m.hist[:len(m.hist)-1]
	}
	m.cur = set
	return true
}

// CanAdvance reports whether bytes would be accepted, without mutating state.
func (m *Matcher) CanAdvance(bytes []byte) bool {
	return m.exec.MatchBytes(m.cur, bytes)
}

// Rollback undoes the last n Advance calls. It fails if n exceeds the
// retained history.
func (m *Matcher) Rollback(n int) error {
	if n < 0 || n > len(m.hist) {
		return fmt.Errorf("matcher: cannot roll back %d steps (history %d)", n, len(m.hist))
	}
	for i := 0; i < n; i++ {
		m.exec.RecycleSet(m.cur)
		m.cur = m.hist[len(m.hist)-1]
		m.hist = m.hist[:len(m.hist)-1]
	}
	return nil
}

// HistoryLen returns the number of steps available for rollback.
func (m *Matcher) HistoryLen() int { return len(m.hist) }

// MaxHistory returns the rollback window: the largest number of Advance
// calls that can ever be undone. Speculative decoding sizes its draft
// window against this so a fully rejected draft is always retractable.
func (m *Matcher) MaxHistory() int { return m.maxHistory }

// CanTerminate reports whether the generation may stop here (the root rule
// is complete in some branch).
func (m *Matcher) CanTerminate() bool { return m.exec.CanTerminate(m.cur) }

// IsDead reports whether no branch survives (only possible via external
// state corruption; Advance never commits a dead set).
func (m *Matcher) IsDead() bool { return len(m.cur) == 0 }

// maxJumpForward bounds the jump-forward string length; grammars of the form
// r ::= "a" r would otherwise produce an infinite deterministic continuation.
const maxJumpForward = 4096

// JumpForward returns the longest string that is the unique possible
// continuation of the current state (Appendix B). The matcher state is not
// modified. The string is empty when the next byte is ambiguous or the
// grammar may terminate here.
func (m *Matcher) JumpForward() string {
	return string(m.JumpForwardAppend(nil))
}

// JumpForwardAppend appends the jump-forward continuation to dst (reset to
// length zero) and returns it. With a reused dst the probe is allocation-free,
// which is what the serving runtime's fused step relies on.
func (m *Matcher) JumpForwardAppend(dst []byte) []byte {
	set := m.exec.CloneSetInto(m.exec.GetSet(), m.cur)
	scratch := m.exec.GetSet()
	out := dst[:0]
	for len(out) < maxJumpForward {
		if m.exec.CanTerminate(set) {
			break
		}
		var possible [256]bool
		n := m.exec.PossibleBytes(set, &possible)
		if n != 1 {
			break
		}
		var b byte
		for i := 0; i < 256; i++ {
			if possible[i] {
				b = byte(i)
				break
			}
		}
		scratch = m.exec.StepByte(set, b, scratch)
		m.exec.ReleaseSet(set)
		set, scratch = scratch, set[:0]
		if len(set) == 0 {
			break
		}
		set = m.exec.Closure(set, nil)
		out = append(out, b)
	}
	m.exec.RecycleSet(set)
	m.exec.PutSet(scratch)
	return out
}

// Fork returns a new matcher at the same position, sharing the compiled
// automaton and the persistent stack tree. Because stacks are persistent,
// forking copies only the state-set slice (§3.3): the paper's enabler for
// tree-structured generation (Tree-of-Thought, speculative decoding), where
// each output branch keeps its own matching state.
//
// The fork's contract, which speculative batching relies on:
//
//   - The fork starts with an EMPTY rollback history: it cannot undo steps
//     the parent took before the fork, only its own subsequent Advances.
//   - Parent and fork evolve independently after the split. Advancing or
//     rolling back one never changes the other's position, masks, or
//     history — the shared stack tree is immutable, so checkpoints the
//     parent discards stay valid in the fork.
//   - Forked matchers share the stack tree's internal freelists and must
//     therefore all be driven from a single goroutine (or externally
//     serialized). Discarded forks should call Release so the shared tree
//     can reclaim their nodes.
func (m *Matcher) Fork() *Matcher {
	return &Matcher{
		exec:       m.exec,
		cur:        m.exec.CloneSet(m.cur),
		maxHistory: m.maxHistory,
	}
}

// Release frees the matcher's stack references. Use when discarding a fork
// so the shared tree can reclaim nodes; the matcher must not be used after.
func (m *Matcher) Release() {
	m.exec.RecycleSet(m.cur)
	m.cur = nil
	for _, h := range m.hist {
		m.exec.RecycleSet(h)
	}
	m.hist = nil
}

// Reset returns the matcher to the start state and clears history. Buffers
// are recycled through the executor freelist, so resetting a pooled matcher
// between generations is allocation-free once capacities settle.
func (m *Matcher) Reset() {
	m.exec.RecycleSet(m.cur)
	for _, h := range m.hist {
		m.exec.RecycleSet(h)
	}
	m.hist = m.hist[:0]
	m.cur = m.exec.Closure(m.exec.InitialStateInto(m.exec.GetSet()), nil)
}

// NumStacks returns the number of parallel stacks (states) currently live.
func (m *Matcher) NumStacks() int { return len(m.cur) }
