package matcher

import (
	"fmt"
	"sort"
	"testing"

	"xgrammar/internal/pda"
)

// fingerprint renders a matcher's current state set in a tree-independent,
// order-independent form: each state's node plus its materialized stack
// values. Two matchers over different trees compare equal iff they are at
// the same grammar position.
func fingerprint(m *Matcher) []string {
	t := m.exec.Tree
	out := make([]string, 0, len(m.cur))
	for _, s := range m.cur {
		out = append(out, fmt.Sprintf("n%d/%v", s.Node, t.Values(s.Stack)))
	}
	sort.Strings(out)
	return out
}

func equalFingerprints(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCheckpointRestoreRoundTrip checkpoints a matcher mid-input, restores
// into a matcher over a completely fresh executor, and checks the restored
// matcher is at the same grammar position and accepts the same suffixes.
func TestCheckpointRestoreRoundTrip(t *testing.T) {
	inputs := []struct {
		prefix, suffix string
	}{
		{`{"a": [1, 2`, `, {"b": null}]}`},
		{`[true, "x`, `yz", -1.5e3]`},
		{`{"k": {"nested": ["deep`, `"]}}`},
		{``, `{"whole": 1}`},
	}
	for _, in := range inputs {
		src := jsonMatcher(t, pda.Options{})
		if !acceptAll(src, in.prefix) {
			t.Fatalf("prefix %q rejected", in.prefix)
		}
		cp := src.Checkpoint()

		dst := jsonMatcher(t, pda.Options{}) // fresh exec, fresh tree
		if !acceptAll(dst, `["decoy", {"other": 1`) {
			t.Fatal("decoy rejected") // pre-populate the target tree
		}
		dst.Restore(cp)

		if got, want := fingerprint(dst), fingerprint(src); !equalFingerprints(got, want) {
			t.Fatalf("prefix %q: restored fingerprint %v != source %v", in.prefix, got, want)
		}
		if dst.HistoryLen() != 0 {
			t.Fatalf("restored matcher has history %d, want 0", dst.HistoryLen())
		}
		if dst.JumpForward() != src.JumpForward() {
			t.Fatalf("prefix %q: jump-forward diverges", in.prefix)
		}
		if !acceptAll(dst, in.suffix) {
			t.Fatalf("prefix %q: restored matcher rejects suffix %q", in.prefix, in.suffix)
		}
		if !acceptAll(src, in.suffix) {
			t.Fatalf("prefix %q: source matcher rejects suffix %q", in.prefix, in.suffix)
		}
		if !dst.CanTerminate() || !src.CanTerminate() {
			t.Fatalf("prefix %q: termination diverges after suffix", in.prefix)
		}
	}
}

// TestCheckpointIsImmutable confirms the capturing matcher can advance, roll
// back, and be released without invalidating an outstanding checkpoint.
func TestCheckpointIsImmutable(t *testing.T) {
	src := jsonMatcher(t, pda.Options{})
	if !acceptAll(src, `{"a": [`) {
		t.Fatal("prefix rejected")
	}
	cp := src.Checkpoint()
	want := fingerprint(src)
	if !acceptAll(src, `1, 2]}`) {
		t.Fatal("suffix rejected")
	}
	src.Release() // discard the capturing matcher entirely

	dst := jsonMatcher(t, pda.Options{})
	dst.Restore(cp)
	if got := fingerprint(dst); !equalFingerprints(got, want) {
		t.Fatalf("restored fingerprint %v != captured %v", got, want)
	}
	if !acceptAll(dst, `"x"]}`) {
		t.Fatal("restored matcher rejects continuation")
	}
}

// TestRestoreReleasesPriorState checks restore recycles the target's prior
// stacks: after restoring and then releasing, the tree holds no live nodes.
func TestRestoreReleasesPriorState(t *testing.T) {
	src := jsonMatcher(t, pda.Options{})
	if !acceptAll(src, `{"key": [[["v`) {
		t.Fatal("prefix rejected")
	}
	cp := src.Checkpoint()

	dst := jsonMatcher(t, pda.Options{})
	if !acceptAll(dst, `{"other": {"deep": [`) {
		t.Fatal("decoy rejected")
	}
	dst.Restore(cp)
	dst.Restore(cp) // idempotent: restoring twice must not leak or over-release
	dst.Release()
	if n := dst.exec.Tree.Len(); n != 0 {
		t.Fatalf("tree has %d live nodes after release, want 0", n)
	}
}

// TestCheckpointSize sanity-checks the byte estimate scales with state count.
func TestCheckpointSize(t *testing.T) {
	m := jsonMatcher(t, pda.Options{})
	if !acceptAll(m, `{"a": {"b": {"c": [`) {
		t.Fatal("prefix rejected")
	}
	cp := m.Checkpoint()
	if cp.NumStates() != len(m.cur) {
		t.Fatalf("NumStates %d != %d", cp.NumStates(), len(m.cur))
	}
	if cp.SizeBytes() < int64(4*cp.NumStates()) {
		t.Fatalf("SizeBytes %d implausibly small", cp.SizeBytes())
	}
}
