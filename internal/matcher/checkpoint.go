package matcher

import "xgrammar/internal/pstack"

// Checkpoint is a portable, immutable snapshot of a matcher position: every
// nondeterministic state's automaton node plus its full stack contents,
// flattened out of the persistent stack tree into plain int32 arrays.
//
// Fork shares the parent's executor — the stack tree and set freelists are
// single-goroutine state — so a fork can only be used from the goroutine
// driving its parent. A Checkpoint is the cross-goroutine complement: it
// references no executor at all, so it can be published in a cross-request
// cache and restored into any session compiled from the same automaton, on
// any goroutine. Conceptually Restore(cp) is a Fork made portable: the
// restored matcher sits at the captured position with an empty rollback
// history, exactly like a fork, and evolves independently from then on.
//
// Restore cost is O(total stack depth) — each frame is re-interned with
// Tree.Push, so restored stacks share paths with whatever the target tree
// already holds — versus O(prefix bytes × closure) for replaying the bytes
// that led here.
type Checkpoint struct {
	// nodes[i] is state i's automaton node.
	nodes []int32
	// frames holds every state's stack contents bottom→top, concatenated.
	frames []int32
	// off[i]..off[i+1] bounds state i's frames; len(off) == len(nodes)+1.
	off []int32
}

// Checkpoint captures the matcher's current (closed) state set as a portable
// snapshot. The matcher is not modified.
func (m *Matcher) Checkpoint() *Checkpoint {
	t := m.exec.Tree
	total := 0
	for _, s := range m.cur {
		total += t.Depth(s.Stack)
	}
	cp := &Checkpoint{
		nodes:  make([]int32, len(m.cur)),
		frames: make([]int32, total),
		off:    make([]int32, len(m.cur)+1),
	}
	pos := 0
	for i, s := range m.cur {
		cp.nodes[i] = s.Node
		d := t.Depth(s.Stack)
		for j, st := pos+d-1, s.Stack; j >= pos; j-- {
			cp.frames[j] = t.Top(st)
			st = t.Parent(st)
		}
		pos += d
		cp.off[i+1] = int32(pos)
	}
	return cp
}

// Restore positions the matcher at cp, clearing the rollback history (the
// checkpoint records a position, not the steps that led to it — like a fork,
// a restored matcher cannot undo steps taken before the capture). The
// matcher must execute the same compiled automaton the checkpoint was
// captured from; stacks are rebuilt by re-interning each frame into the
// matcher's own tree, so restoring never touches the capturing session.
func (m *Matcher) Restore(cp *Checkpoint) {
	m.exec.RecycleSet(m.cur)
	for _, h := range m.hist {
		m.exec.RecycleSet(h)
	}
	m.hist = m.hist[:0]
	t := m.exec.Tree
	set := m.exec.GetSet()
	for i, node := range cp.nodes {
		st := pstack.Empty
		for _, val := range cp.frames[cp.off[i]:cp.off[i+1]] {
			ns := t.Push(st, val)
			// Push gave ns its own reference to st; drop ours so the final
			// node carries the set's single owned reference per state.
			t.Release(st)
			st = ns
		}
		set = append(set, State{Stack: st, Node: node})
	}
	// The captured set was closed; no Closure pass is needed.
	m.cur = set
}

// NumStates returns the number of parallel states in the snapshot.
func (c *Checkpoint) NumStates() int { return len(c.nodes) }

// SizeBytes estimates the snapshot's heap footprint, for byte-budget caches.
func (c *Checkpoint) SizeBytes() int64 {
	const header = 3*24 + 8 // three slice headers plus the pointer
	return int64(4*(len(c.nodes)+len(c.frames)+len(c.off))) + header
}
