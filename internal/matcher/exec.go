// Package matcher executes the pushdown automaton at runtime. It maintains
// the set of parallel matching stacks (§2.2) in a persistent stack tree
// (§3.3), advances them byte by byte with push/pop closure, supports
// checkpointed rollback for token-level undo and speculative decoding, and
// computes jump-forward strings (Appendix B).
package matcher

import (
	"xgrammar/internal/fsa"
	"xgrammar/internal/pda"
	"xgrammar/internal/pstack"
)

// State is one nondeterministic PDA configuration: Stack is the persistent
// stack of return positions (pstack id) and Node is the current automaton
// node (conceptually the stack top in the paper's presentation).
type State struct {
	Stack int32
	Node  int32
}

// Exec provides the core PDA execution steps over state sets. Every state
// held in a set owns one reference to its stack; ReleaseSet drops them.
//
// An Exec also keeps a freelist of state-set backing arrays so steady-state
// stepping (the serving hot path) allocates nothing: callers obtain scratch
// sets with GetSet, and return ones they are done with via RecycleSet (or
// PutSet for already-released sets). The freelist, like the stack tree, is
// single-goroutine state.
type Exec struct {
	P    *pda.PDA
	Tree *pstack.Tree
	free [][]State
}

// NewExec returns an executor over p with a fresh stack tree.
func NewExec(p *pda.PDA) *Exec {
	return &Exec{P: p, Tree: pstack.NewTree()}
}

// InitialState returns the start configuration (empty stack, root rule
// start). The returned set owns its references.
func (e *Exec) InitialState() []State {
	return e.InitialStateInto(nil)
}

// InitialStateInto writes the start configuration into dst (reset to length
// zero) and returns it.
func (e *Exec) InitialStateInto(dst []State) []State {
	return append(dst[:0], State{Stack: pstack.Empty, Node: e.P.RuleStart[e.P.Root]})
}

// ReleaseSet releases every stack reference held by set.
func (e *Exec) ReleaseSet(set []State) {
	for _, s := range set {
		e.Tree.Release(s.Stack)
	}
}

// GetSet returns an empty state-set buffer from the freelist (nil when the
// freelist is empty; append grows it as usual).
func (e *Exec) GetSet() []State {
	if n := len(e.free); n > 0 {
		b := e.free[n-1]
		e.free = e.free[:n-1]
		return b[:0]
	}
	return nil
}

// PutSet returns a buffer whose references were already dropped to the
// freelist. The caller must not use the slice afterwards.
func (e *Exec) PutSet(set []State) {
	if cap(set) > 0 {
		e.free = append(e.free, set[:0])
	}
}

// RecycleSet releases every reference held by set and returns its backing
// array to the freelist.
func (e *Exec) RecycleSet(set []State) {
	e.ReleaseSet(set)
	e.PutSet(set)
}

// CloneSet returns a copy of set owning fresh references.
func (e *Exec) CloneSet(set []State) []State {
	return e.CloneSetInto(make([]State, 0, len(set)), set)
}

// CloneSetInto copies set into dst (reset to length zero), retaining a fresh
// reference per state, and returns it. Use with GetSet to clone without
// allocating in steady state.
func (e *Exec) CloneSetInto(dst, set []State) []State {
	dst = append(dst[:0], set...)
	for _, s := range dst {
		e.Tree.Retain(s.Stack)
	}
	return dst
}

func containsState(set []State, s State) bool {
	for _, x := range set {
		if x == s {
			return true
		}
	}
	return false
}

// Closure expands set under rule-reference pushes and final-node pops until
// a fixpoint. The input set's references are consumed; the returned set owns
// references for every entry (input entries keep theirs).
//
// When a final node is reached with an empty stack, the local match is
// complete: onEmptyPop (if non-nil) is invoked once per such event. During
// normal runtime matching the empty stack is the true root, so the event
// simply marks a possible termination point; during mask preprocessing the
// executor runs from a synthetic single-frame context and the event marks a
// context-dependent overflow (§3.1).
//
//xg:hotpath
func (e *Exec) Closure(set []State, onEmptyPop func()) []State {
	emptyPopSignaled := false
	for i := 0; i < len(set); i++ {
		s := set[i]
		node := &e.P.Nodes[s.Node]
		if node.Final {
			if s.Stack == pstack.Empty {
				if !emptyPopSignaled && onEmptyPop != nil {
					onEmptyPop()
					emptyPopSignaled = true
				}
			} else {
				parent := e.Tree.Parent(s.Stack)
				ret := e.Tree.Top(s.Stack)
				ns := State{Stack: parent, Node: ret}
				if !containsState(set, ns) {
					e.Tree.Retain(parent)
					set = append(set, ns)
				}
			}
		}
		for _, ed := range node.Edges {
			if ed.Kind != fsa.EdgeRule {
				continue
			}
			ns := State{Node: e.P.RuleStart[ed.Rule]}
			// Push the return position. Push returns an owned reference;
			// release it if the state is a duplicate.
			pushed := e.Tree.Push(s.Stack, ed.To)
			ns.Stack = pushed
			if containsState(set, ns) {
				e.Tree.Release(pushed)
			} else {
				set = append(set, ns)
			}
		}
	}
	return set
}

// StepByte consumes one byte from a (closed) set, returning the successor
// set with owned references. The input set keeps its references.
//
//xg:hotpath
func (e *Exec) StepByte(set []State, b byte, dst []State) []State {
	dst = dst[:0]
	for _, s := range set {
		for _, ed := range e.P.Nodes[s.Node].Edges {
			if ed.Kind == fsa.EdgeByte && b >= ed.Lo && b <= ed.Hi {
				ns := State{Stack: s.Stack, Node: ed.To}
				if !containsState(dst, ns) {
					e.Tree.Retain(s.Stack)
					dst = append(dst, ns)
				}
			}
		}
	}
	return dst
}

// CanTerminate reports whether a closed set contains a configuration that
// completes the root rule (final node, empty stack).
func (e *Exec) CanTerminate(set []State) bool {
	for _, s := range set {
		if s.Stack == pstack.Empty && e.P.Nodes[s.Node].Final {
			return true
		}
	}
	return false
}

// PossibleBytes fills possible[b] = true for every byte accepted by some
// state in the closed set, returning the number of distinct accepted byte
// values. It only inspects byte edges; callers wanting pop/push context must
// pass a closed set.
func (e *Exec) PossibleBytes(set []State, possible *[256]bool) int {
	count := 0
	for _, s := range set {
		for _, ed := range e.P.Nodes[s.Node].Edges {
			if ed.Kind != fsa.EdgeByte {
				continue
			}
			for b := int(ed.Lo); b <= int(ed.Hi); b++ {
				if !possible[b] {
					possible[b] = true
					count++
				}
			}
		}
	}
	return count
}

// MatchBytes reports whether the closed set can consume all of input. The
// set is not modified; scratch sets are allocated internally.
func (e *Exec) MatchBytes(set []State, input []byte) bool {
	cur := e.CloneSet(set)
	var next []State
	for _, b := range input {
		cur = e.Closure(cur, nil)
		next = e.StepByte(cur, b, next)
		e.ReleaseSet(cur)
		cur, next = next, cur[:0]
		if len(cur) == 0 {
			return false
		}
	}
	e.ReleaseSet(cur)
	return true
}
