package matcher

import (
	"testing"

	"xgrammar/internal/pda"
)

// possibleSig summarizes a matcher position as (possible next bytes,
// can-terminate) — the observable state speculative batching depends on.
func possibleSig(m *Matcher) ([256]bool, bool) {
	var p [256]bool
	m.exec.PossibleBytes(m.cur, &p)
	return p, m.CanTerminate()
}

func sameSig(t *testing.T, a, b *Matcher, what string) {
	t.Helper()
	pa, ta := possibleSig(a)
	pb, tb := possibleSig(b)
	if pa != pb || ta != tb {
		t.Fatalf("%s: matcher positions diverged (canTerm %v vs %v)", what, ta, tb)
	}
}

// TestForkStartsWithEmptyHistory pins the Fork contract: a fork cannot undo
// steps the parent took before the split.
func TestForkStartsWithEmptyHistory(t *testing.T) {
	m := jsonMatcher(t, pda.AllOptimizations)
	if !m.Advance([]byte(`{"a": `)) {
		t.Fatal("advance failed")
	}
	f := m.Fork()
	defer f.Release()
	if got := f.HistoryLen(); got != 0 {
		t.Fatalf("fork history = %d, want 0", got)
	}
	if err := f.Rollback(1); err == nil {
		t.Fatal("fork rolled back a pre-fork step; want error")
	}
	if got, want := f.MaxHistory(), m.MaxHistory(); got != want {
		t.Fatalf("fork MaxHistory = %d, want parent's %d", got, want)
	}
	// The failed rollback must leave the fork at the fork point.
	sameSig(t, m, f, "after failed fork rollback")
}

// TestForkRollbackIndependence pins the semantics speculative batching
// relies on: rolling back the parent never corrupts the fork, and each
// branch's own Advance/Rollback pairs are invertible in isolation.
func TestForkRollbackIndependence(t *testing.T) {
	m := jsonMatcher(t, pda.AllOptimizations)
	if !m.Advance([]byte(`{"a"`)) {
		t.Fatal("advance failed")
	}
	f := m.Fork()
	defer f.Release()
	sameSig(t, m, f, "at fork point")

	// Diverge: parent continues the object, fork closes it.
	if !m.Advance([]byte(`: [1`)) {
		t.Fatal("parent advance failed")
	}
	if !f.Advance([]byte(`: 2}`)) {
		t.Fatal("fork advance failed")
	}
	fPossible, fTerm := possibleSig(f)

	// Rolling back the parent — including past the fork point — must not
	// move the fork: the persistent stack tree keeps discarded parent
	// checkpoints alive for the branch that still references them.
	if err := m.Rollback(2); err != nil {
		t.Fatal(err)
	}
	gotP, gotT := possibleSig(f)
	if gotP != fPossible || gotT != fTerm {
		t.Fatal("parent rollback corrupted the fork's position")
	}

	// The fork's own history works: undo its divergence and it is back at
	// the fork point, byte-for-byte equal to a fresh walk of the prefix.
	if err := f.Rollback(1); err != nil {
		t.Fatal(err)
	}
	ref := jsonMatcher(t, pda.AllOptimizations)
	if !ref.Advance([]byte(`{"a"`)) {
		t.Fatal("ref advance failed")
	}
	sameSig(t, ref, f, "fork rolled back to fork point")

	// Both branches remain usable to completion.
	if !f.Advance([]byte(`: 2}`)) || !f.CanTerminate() {
		t.Fatal("fork unusable after parent rollback + own rollback")
	}
	// The parent is back at the start state (both its Advances undone) and
	// must accept a whole fresh document.
	if !m.Advance([]byte(`{"b": null}`)) || !m.CanTerminate() {
		t.Fatal("parent unusable after rollback")
	}
}

// TestForkDiscardDoesNotCorruptParent releases a diverged fork and checks
// the parent still matches a fresh matcher on the same bytes — the
// tree-of-thought branch-abandon path.
func TestForkDiscardDoesNotCorruptParent(t *testing.T) {
	m := jsonMatcher(t, pda.AllOptimizations)
	if !m.Advance([]byte(`[1, `)) {
		t.Fatal("advance failed")
	}
	f := m.Fork()
	if !f.Advance([]byte(`"deep", {"x": [true`)) {
		t.Fatal("fork advance failed")
	}
	f.Release()

	ref := jsonMatcher(t, pda.AllOptimizations)
	if !ref.Advance([]byte(`[1, `)) {
		t.Fatal("ref advance failed")
	}
	sameSig(t, ref, m, "parent after fork release")
	if !m.Advance([]byte(`2]`)) || !m.CanTerminate() {
		t.Fatal("parent unusable after fork release")
	}
}
