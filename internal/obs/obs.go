// Package obs is the request-lifecycle observability layer for the serving
// gateway: a low-overhead tracer that mints a request ID at admission and
// follows the request through grammar resolution, the continuous-batching
// queue, every decode step (accept / jump-forward / fill / backend RTT), and
// the stream write, recording span-style stage timings into a per-request
// event buffer and stage-latency histograms.
//
// The design is lock-light rather than lock-free: each live trace carries
// its own small mutex (the HTTP handler and the batcher goroutine both
// observe into the same trace concurrently — the handler streams chunks
// while the batcher steps the sequence), histograms are arrays of atomic
// counters, and the global ring of completed traces takes its mutex once
// per request at finish time. Per-step clock reads stop once a trace's
// event buffer fills (Trace.Detail turns false), so a long generation pays
// the tracing tax only for its first MaxEvents steps; stage aggregates and
// histograms keep accumulating for stages observed at request scope.
//
// All *Trace methods are nil-receiver safe: a disabled tracer hands out nil
// traces and every instrumentation site stays branch-only.
package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"xgrammar/internal/quantile"
)

// Stage identifies one timed segment of a request's lifecycle.
type Stage uint8

const (
	// StageAdmission is the time from handler entry to passing the inflight
	// gate and having the request body decoded.
	StageAdmission Stage = iota
	// StageResolve is grammar resolution served without running a compile:
	// compiler LRU hit, singleflight coalescing, or a disk-store load.
	StageResolve
	// StageCompile is grammar resolution that ran a real compile.
	StageCompile
	// StagePrefixLookup is the warm-start acquisition span: prefix-cache
	// radix lookup, checkpoint restore, and residual-byte replay, up to the
	// session's first mask being current.
	StagePrefixLookup
	// StageQueue is the time from batcher submission to the request's first
	// inclusion in a decode round.
	StageQueue
	// StageAccept is the per-step grammar accept (matcher advance).
	StageAccept
	// StageJumpForward is the per-step jump-forward probe + insertion.
	StageJumpForward
	// StageFill is the batched mask fill, attributed once per decode round.
	StageFill
	// StageBackend is the per-step backend call (Sequence.Next).
	StageBackend
	// StageBackendAttempt is one HTTP attempt inside a backend step,
	// including retried attempts (httpllm wire timing).
	StageBackendAttempt
	// StageStream is the cumulative SSE chunk-write time in the handler.
	StageStream
	// StageTagSegment is one completed structural-tag segment (enterTag to
	// leaveTag) in a dispatcher session.
	StageTagSegment
	// StageTotal is the whole request, handler entry to finish.
	StageTotal

	numStages
)

var stageNames = [numStages]string{
	"admission", "resolve", "compile", "prefix_lookup", "queue", "accept",
	"jump_forward", "fill", "backend", "backend_attempt", "stream",
	"tag_segment", "total",
}

// String returns the stage's wire name (label value and JSON key).
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// Stages returns every stage in declaration order, for exposition loops.
func Stages() []Stage {
	out := make([]Stage, numStages)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// Config tunes a Tracer. The zero value is an enabled tracer with default
// ring and event-buffer sizes and no slow-request log.
type Config struct {
	// Disabled turns the tracer off: Start returns nil traces and the only
	// residual cost at instrumentation sites is a nil check.
	Disabled bool
	// RingSize bounds the ring of completed trace snapshots kept for
	// /debug/requests. <= 0 uses DefaultRingSize.
	RingSize int
	// MaxEvents bounds the per-trace event buffer; past it, per-step detail
	// (and its clock reads) stops while aggregates continue. <= 0 uses
	// DefaultMaxEvents.
	MaxEvents int
	// SlowThreshold emits a structured log line for any request whose total
	// duration reaches it. 0 disables the slow-request log.
	SlowThreshold time.Duration
	// SlowLog receives one line (no trailing newline) per slow request.
	// nil with a SlowThreshold falls back to SlowLogWriter.
	SlowLog func(line string)
	// SlowLogWriter is the destination for slow-request lines when SlowLog
	// is nil; each line is written with a trailing newline.
	SlowLogWriter io.Writer
}

// Defaults for Config's zero fields.
const (
	DefaultRingSize  = 256
	DefaultMaxEvents = 96
)

// LatencyBuckets are the stage-latency histogram bounds: 1µs to ~4s,
// factor-4 exponential. Grammar-side stages (accept, fill) sit in the
// microsecond decades; backend RTTs and totals in the millisecond ones.
var LatencyBuckets = quantile.ExpBuckets(1e-6, 4, 12)

// DepthBuckets are the queue/batch depth histogram bounds.
var DepthBuckets = quantile.ExpBuckets(1, 2, 8)

// Tracer mints traces, owns the stage-latency histograms, and keeps the
// bounded ring of completed traces.
type Tracer struct {
	cfg      Config
	seq      atomic.Uint64
	stages   [numStages]*Histogram
	depth    *Histogram
	ring     ring
	slow     atomic.Int64
	started  atomic.Int64
	finished atomic.Int64
}

// New returns a tracer for cfg. A disabled tracer still exposes (empty)
// histograms, so exposition code never branches on it.
func New(cfg Config) *Tracer {
	if cfg.RingSize <= 0 {
		cfg.RingSize = DefaultRingSize
	}
	if cfg.MaxEvents <= 0 {
		cfg.MaxEvents = DefaultMaxEvents
	}
	t := &Tracer{cfg: cfg}
	for i := range t.stages {
		t.stages[i] = NewHistogram(LatencyBuckets)
	}
	t.depth = NewHistogram(DepthBuckets)
	t.ring.init(cfg.RingSize)
	return t
}

// Enabled reports whether Start mints live traces.
func (tr *Tracer) Enabled() bool { return !tr.cfg.Disabled }

// Start mints a trace for one request. Returns nil when tracing is
// disabled; all Trace methods tolerate that.
func (tr *Tracer) Start(model, grammarID string) *Trace {
	if tr.cfg.Disabled {
		return nil
	}
	tr.started.Add(1)
	return &Trace{
		tr:        tr,
		id:        tr.seq.Add(1),
		start:     time.Now(),
		model:     model,
		grammarID: grammarID,
		events:    make([]event, 0, 16),
	}
}

// StageHistogram returns the tracer's histogram for a stage.
func (tr *Tracer) StageHistogram(s Stage) *Histogram { return tr.stages[s] }

// DepthHistogram returns the per-round live-batch depth histogram.
func (tr *Tracer) DepthHistogram() *Histogram { return tr.depth }

// ObserveStage records a request-independent sample into a stage histogram
// (round-level fill time, backend attempt RTTs, register-time compiles).
func (tr *Tracer) ObserveStage(s Stage, d time.Duration) {
	if tr == nil || tr.cfg.Disabled {
		return
	}
	tr.stages[s].Observe(d.Seconds())
}

// ObserveDepth records one decode round's live-batch depth.
func (tr *Tracer) ObserveDepth(n int) {
	if tr == nil || tr.cfg.Disabled {
		return
	}
	tr.depth.Observe(float64(n))
}

// SlowCount returns the number of requests that crossed SlowThreshold.
func (tr *Tracer) SlowCount() int64 { return tr.slow.Load() }

// Counts returns the number of traces started and finished.
func (tr *Tracer) Counts() (started, finished int64) {
	return tr.started.Load(), tr.finished.Load()
}

// Filter selects completed traces from the ring.
type Filter struct {
	// Model and GrammarID, when non-empty, must match exactly.
	Model, GrammarID string
	// MinTotal drops traces shorter than it.
	MinTotal time.Duration
	// Limit caps the number of returned traces; <= 0 means no cap.
	Limit int
}

// Completed returns snapshots of recently finished traces, newest first.
func (tr *Tracer) Completed(f Filter) []*Snapshot {
	return tr.ring.completed(f)
}

// event is one timed span inside a trace.
type event struct {
	stage Stage
	off   time.Duration // start offset from trace start
	dur   time.Duration
}

// stageAgg accumulates per-stage totals for one trace.
type stageAgg struct {
	count    int64
	total    time.Duration
	min, max time.Duration
}

// Trace is one request's lifecycle record. The handler and the batcher
// goroutine both observe into it; a small per-trace mutex serialises them.
// Every exported method is nil-safe: a nil *Trace (tracing disabled or not
// sampled) makes each a no-op, enforced by the nilrecv analyzer.
//
//xg:nilsafe
type Trace struct {
	tr *Tracer
	id uint64

	mu        sync.Mutex
	start     time.Time
	model     string
	grammarID string
	events    []event
	truncated bool
	aggs      [numStages]stageAgg
	finished  bool
}

// ID returns the trace's request ID (0 for a nil trace).
func (t *Trace) ID() uint64 {
	if t == nil {
		return 0
	}
	return t.id
}

// SetModel records the request's model once it is known.
func (t *Trace) SetModel(model string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.model = model
	t.mu.Unlock()
}

// SetGrammarID records the resolved grammar ID once it is known.
func (t *Trace) SetGrammarID(id string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.grammarID = id
	t.mu.Unlock()
}

// Detail reports whether the per-trace event buffer still has room. The
// batcher checks it before per-step clock reads, so steady-state long
// requests stop paying the timing cost once the detail window is full.
func (t *Trace) Detail() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	ok := !t.truncated && len(t.events) < t.tr.cfg.MaxEvents
	t.mu.Unlock()
	return ok
}

// Observe records one completed span ending now: event, stage aggregate,
// and the tracer's stage histogram.
func (t *Trace) Observe(s Stage, d time.Duration) {
	if t == nil {
		return
	}
	t.tr.stages[s].Observe(d.Seconds())
	t.record(s, time.Now().Add(-d), d, 1)
}

// ObserveSince is Observe(s, time.Since(t0)) returning the span's end time,
// so call sites chain stages with one clock read per boundary.
func (t *Trace) ObserveSince(s Stage, t0 time.Time) time.Time {
	if t == nil {
		return time.Now()
	}
	d := time.Since(t0)
	t.tr.stages[s].Observe(d.Seconds())
	t.record(s, t0, d, 1)
	return t0.Add(d)
}

// Event records a span into the trace only — no histogram. Used where the
// histogram sample is recorded elsewhere at a different grain (the batched
// fill is observed once per round by the batcher, then attributed to each
// traced participant as an event).
func (t *Trace) Event(s Stage, d time.Duration) {
	if t == nil {
		return
	}
	t.record(s, time.Now().Add(-d), d, 1)
}

// EventAt is Event with an explicit span start (structural-tag segment
// spans are captured inside the dispatcher and merged in at finish).
func (t *Trace) EventAt(s Stage, start time.Time, d time.Duration) {
	if t == nil {
		return
	}
	t.record(s, start, d, 1)
}

// ObserveN folds n occurrences with combined duration d into the stage
// aggregate (one event, one histogram sample of the total) — the stream
// writer accumulates chunk-write time locally and reports once.
func (t *Trace) ObserveN(s Stage, n int, d time.Duration) {
	if t == nil || n <= 0 {
		return
	}
	t.tr.stages[s].Observe(d.Seconds())
	t.record(s, time.Now().Add(-d), d, int64(n))
}

func (t *Trace) record(s Stage, start time.Time, d time.Duration, n int64) {
	t.mu.Lock()
	a := &t.aggs[s]
	if a.count == 0 || d < a.min {
		a.min = d
	}
	if d > a.max {
		a.max = d
	}
	a.count += n
	a.total += d
	if len(t.events) < t.tr.cfg.MaxEvents {
		// The admission span starts at handler entry, before the trace is
		// minted; clamp so its offset does not render as negative.
		off := start.Sub(t.start)
		if off < 0 {
			off = 0
		}
		t.events = append(t.events, event{stage: s, off: off, dur: d})
	} else {
		t.truncated = true
	}
	t.mu.Unlock()
}

// Finish seals the trace: records the total stage, pushes a snapshot into
// the tracer's ring, emits the slow-request log line when the total crosses
// the threshold, and returns the snapshot (nil for a nil trace). Finish is
// idempotent; only the first call does work.
func (t *Trace) Finish(finishReason string, tokens, jfBytes int) *Snapshot {
	if t == nil {
		return nil
	}
	total := time.Since(t.start)
	t.mu.Lock()
	if t.finished {
		t.mu.Unlock()
		return nil
	}
	t.finished = true
	a := &t.aggs[StageTotal]
	a.count, a.total, a.min, a.max = 1, total, total, total
	snap := t.snapshotLocked(finishReason, tokens, jfBytes, total)
	t.mu.Unlock()

	t.tr.stages[StageTotal].Observe(total.Seconds())
	t.tr.finished.Add(1)
	t.tr.ring.push(snap)
	if th := t.tr.cfg.SlowThreshold; th > 0 && total >= th {
		t.tr.slow.Add(1)
		t.tr.emitSlow(snap)
	}
	return snap
}

func (t *Trace) snapshotLocked(reason string, tokens, jfBytes int, total time.Duration) *Snapshot {
	snap := &Snapshot{
		ID:               t.id,
		Model:            t.model,
		GrammarID:        t.grammarID,
		Start:            t.start,
		TotalMS:          ms(total),
		FinishReason:     reason,
		Tokens:           tokens,
		JumpForwardBytes: jfBytes,
		EventsTruncated:  t.truncated,
	}
	for s, a := range t.aggs {
		if a.count == 0 {
			continue
		}
		snap.Stages = append(snap.Stages, StageSummary{
			Stage: Stage(s).String(), Count: a.count,
			TotalMS: ms(a.total), MinMS: ms(a.min), MaxMS: ms(a.max),
		})
	}
	snap.Events = make([]EventSnapshot, len(t.events))
	for i, e := range t.events {
		snap.Events[i] = EventSnapshot{
			Stage: e.stage.String(), OffsetMS: ms(e.off), DurMS: ms(e.dur),
		}
	}
	return snap
}

func (tr *Tracer) emitSlow(snap *Snapshot) {
	stages := make(map[string]float64, len(snap.Stages))
	for _, s := range snap.Stages {
		stages[s.Stage] = s.TotalMS
	}
	line, err := json.Marshal(struct {
		Slow         bool               `json:"slow_request"`
		ID           uint64             `json:"id"`
		Model        string             `json:"model,omitempty"`
		GrammarID    string             `json:"grammar_id,omitempty"`
		TotalMS      float64            `json:"total_ms"`
		FinishReason string             `json:"finish_reason"`
		Tokens       int                `json:"tokens"`
		StageMS      map[string]float64 `json:"stage_ms"`
	}{true, snap.ID, snap.Model, snap.GrammarID, snap.TotalMS, snap.FinishReason, snap.Tokens, stages})
	if err != nil {
		return
	}
	if tr.cfg.SlowLog != nil {
		tr.cfg.SlowLog(string(line))
	} else if tr.cfg.SlowLogWriter != nil {
		tr.cfg.SlowLogWriter.Write(append(line, '\n'))
	}
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
