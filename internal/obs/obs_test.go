package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTraceSafe(t *testing.T) {
	var tr *Trace
	if tr.ID() != 0 {
		t.Fatal("nil trace ID should be 0")
	}
	if tr.Detail() {
		t.Fatal("nil trace should report no detail window")
	}
	// None of these may panic.
	tr.SetModel("m")
	tr.SetGrammarID("g")
	tr.Observe(StageAccept, time.Millisecond)
	tr.ObserveSince(StageFill, time.Now())
	tr.Event(StageFill, time.Millisecond)
	tr.EventAt(StageTagSegment, time.Now(), time.Millisecond)
	tr.ObserveN(StageStream, 3, time.Millisecond)
	if snap := tr.Finish("stop", 1, 0); snap != nil {
		t.Fatal("nil trace Finish should return nil")
	}

	var tc *Tracer
	tc.ObserveStage(StageFill, time.Millisecond)
	tc.ObserveDepth(4)
}

func TestDisabledTracer(t *testing.T) {
	tr := New(Config{Disabled: true})
	if tr.Enabled() {
		t.Fatal("disabled tracer reports enabled")
	}
	if got := tr.Start("m", "g"); got != nil {
		t.Fatalf("disabled tracer minted a trace: %+v", got)
	}
	tr.ObserveStage(StageFill, time.Millisecond)
	if s := tr.StageHistogram(StageFill).Snapshot(); s.Count != 0 {
		t.Fatalf("disabled tracer recorded %d samples", s.Count)
	}
}

func TestTraceLifecycle(t *testing.T) {
	tr := New(Config{})
	tc := tr.Start("llama", "g1")
	if tc.ID() == 0 {
		t.Fatal("trace ID is 0")
	}
	tc.Observe(StageAdmission, 2*time.Millisecond)
	tc.Observe(StageAccept, time.Millisecond)
	tc.Observe(StageAccept, 3*time.Millisecond)
	tc.ObserveN(StageStream, 5, 10*time.Millisecond)
	snap := tc.Finish("stop", 42, 7)
	if snap == nil {
		t.Fatal("Finish returned nil")
	}
	if snap.FinishReason != "stop" || snap.Tokens != 42 || snap.JumpForwardBytes != 7 {
		t.Fatalf("snapshot carries wrong finish data: %+v", snap)
	}
	byStage := map[string]StageSummary{}
	for _, s := range snap.Stages {
		byStage[s.Stage] = s
	}
	acc := byStage["accept"]
	if acc.Count != 2 || acc.MinMS > acc.MaxMS || acc.TotalMS < 3.9 {
		t.Fatalf("accept aggregate wrong: %+v", acc)
	}
	if byStage["stream"].Count != 5 {
		t.Fatalf("ObserveN should fold 5 occurrences, got %+v", byStage["stream"])
	}
	if tot := byStage["total"]; tot.Count != 1 || tot.TotalMS <= 0 {
		t.Fatalf("total stage wrong: %+v", tot)
	}
	// Finish is idempotent.
	if again := tc.Finish("stop", 42, 7); again != nil {
		t.Fatal("second Finish should return nil")
	}
	if started, finished := tr.Counts(); started != 1 || finished != 1 {
		t.Fatalf("counts = %d/%d, want 1/1", started, finished)
	}
}

func TestDetailWindowCloses(t *testing.T) {
	tr := New(Config{MaxEvents: 4})
	tc := tr.Start("", "")
	for i := 0; i < 6; i++ {
		tc.Observe(StageAccept, time.Microsecond)
	}
	if tc.Detail() {
		t.Fatal("detail window should be closed after MaxEvents")
	}
	snap := tc.Finish("stop", 6, 0)
	if len(snap.Events) != 4 {
		t.Fatalf("got %d events, want 4", len(snap.Events))
	}
	if !snap.EventsTruncated {
		t.Fatal("EventsTruncated should be set")
	}
	// Aggregates keep counting past the window.
	for _, s := range snap.Stages {
		if s.Stage == "accept" && s.Count != 6 {
			t.Fatalf("accept aggregate count = %d, want 6", s.Count)
		}
	}
}

func TestRingEvictionAndFilter(t *testing.T) {
	tr := New(Config{RingSize: 3})
	finish := func(model string, d time.Duration) {
		tc := tr.Start(model, "g-"+model)
		tc.Observe(StageAccept, d)
		tc.Finish("stop", 1, 0)
	}
	for i := 0; i < 5; i++ {
		finish(fmt.Sprintf("m%d", i), time.Duration(i+1)*time.Millisecond)
	}
	all := tr.Completed(Filter{})
	if len(all) != 3 {
		t.Fatalf("ring kept %d, want 3", len(all))
	}
	// Newest first: m4, m3, m2 survive.
	if all[0].Model != "m4" || all[2].Model != "m2" {
		t.Fatalf("wrong order/eviction: %s ... %s", all[0].Model, all[2].Model)
	}
	if got := tr.Completed(Filter{Model: "m3"}); len(got) != 1 || got[0].Model != "m3" {
		t.Fatalf("model filter: %+v", got)
	}
	if got := tr.Completed(Filter{GrammarID: "g-m2"}); len(got) != 1 {
		t.Fatalf("grammar filter returned %d", len(got))
	}
	if got := tr.Completed(Filter{Limit: 2}); len(got) != 2 || got[0].Model != "m4" {
		t.Fatalf("limit filter: %d rows", len(got))
	}
	if got := tr.Completed(Filter{Model: "gone"}); len(got) != 0 {
		t.Fatalf("stale model matched %d rows", len(got))
	}
}

func TestSlowLog(t *testing.T) {
	var lines []string
	tr := New(Config{
		SlowThreshold: time.Nanosecond, // everything is slow
		SlowLog:       func(l string) { lines = append(lines, l) },
	})
	tc := tr.Start("m", "g")
	tc.Observe(StageAccept, time.Millisecond)
	time.Sleep(time.Microsecond)
	tc.Finish("stop", 3, 0)
	if tr.SlowCount() != 1 {
		t.Fatalf("slow count = %d, want 1", tr.SlowCount())
	}
	if len(lines) != 1 {
		t.Fatalf("got %d slow lines, want 1", len(lines))
	}
	for _, want := range []string{`"slow_request":true`, `"model":"m"`, `"finish_reason":"stop"`, `"stage_ms"`} {
		if !strings.Contains(lines[0], want) {
			t.Fatalf("slow line missing %s: %s", want, lines[0])
		}
	}
}

func TestConcurrentObserve(t *testing.T) {
	tr := New(Config{})
	tc := tr.Start("m", "g")
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tc.Observe(StageAccept, time.Microsecond)
				tr.ObserveStage(StageFill, time.Microsecond)
				tr.ObserveDepth(2)
			}
		}()
	}
	wg.Wait()
	tc.Finish("stop", 800, 0)
	if s := tr.StageHistogram(StageAccept).Snapshot(); s.Count != 800 {
		t.Fatalf("accept histogram count = %d, want 800", s.Count)
	}
	if s := tr.StageHistogram(StageFill).Snapshot(); s.Count != 800 {
		t.Fatalf("fill histogram count = %d, want 800", s.Count)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 10, 50, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	// Cumulative: <=1 -> 2 (0.5, 1), <=10 -> 4, <=100 -> 5, +Inf -> 6.
	want := []uint64{2, 4, 5}
	for i, w := range want {
		if s.Cumulative[i] != w {
			t.Fatalf("bucket %d = %d, want %d", i, s.Cumulative[i], w)
		}
	}
	if s.Sum < 1066 || s.Sum > 1067 {
		t.Fatalf("sum = %v, want 1066.5", s.Sum)
	}
}

func TestPromWriterRoundTrip(t *testing.T) {
	var sb strings.Builder
	p := NewPromWriter(&sb)
	p.Counter("x_requests_total", "Requests.", 42)
	p.Gauge("x_inflight", "In flight.", 3)
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(5)
	p.Family("x_latency_seconds", "histogram", "Latency.")
	p.Histogram("x_latency_seconds", []Label{{Name: "stage", Value: "fill"}}, h.Snapshot())
	if p.Err() != nil {
		t.Fatal(p.Err())
	}

	fams, err := ParseProm(sb.String())
	if err != nil {
		t.Fatalf("ParseProm: %v\n%s", err, sb.String())
	}
	if f := fams["x_requests_total"]; f == nil || f.Type != "counter" || f.Samples[0].Value != 42 {
		t.Fatalf("counter family wrong: %+v", f)
	}
	lat := fams["x_latency_seconds"]
	if lat == nil || lat.Type != "histogram" {
		t.Fatalf("histogram family missing: %+v", lat)
	}
	var infSeen bool
	for _, s := range lat.Samples {
		if s.Name == "x_latency_seconds_bucket" && s.Labels["le"] == "+Inf" {
			infSeen = true
			if s.Value != 3 {
				t.Fatalf("+Inf bucket = %v, want 3", s.Value)
			}
			if s.Labels["stage"] != "fill" {
				t.Fatalf("labels lost: %+v", s.Labels)
			}
		}
	}
	if !infSeen {
		t.Fatal("no +Inf bucket sample")
	}
}

func TestParsePromRejectsBroken(t *testing.T) {
	cases := map[string]string{
		"sample before TYPE": "x_total 1\n",
		"non-cumulative histogram": "# HELP h H\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"10\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"missing +Inf": "# HELP h H\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"inf != count": "# HELP h H\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
	}
	for name, text := range cases {
		if _, err := ParseProm(text); err == nil {
			t.Errorf("%s: ParseProm accepted invalid exposition", name)
		}
	}
}

func TestStageNamesComplete(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Stages() {
		n := s.String()
		if n == "" || n == "unknown" {
			t.Fatalf("stage %d has no name", s)
		}
		if seen[n] {
			t.Fatalf("duplicate stage name %q", n)
		}
		seen[n] = true
	}
}
