package obs

import (
	"math"
	"sync/atomic"
)

// Histogram is a fixed-boundary, atomic histogram in the Prometheus mould:
// explicit upper bounds plus an implicit +Inf bucket, a total count, and a
// sum of observed values. Observe is wait-free apart from the CAS loop on
// the float sum; bucket counts are per-bucket (non-cumulative) internally
// and cumulated at snapshot time, matching the text exposition format.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram returns a histogram over the given ascending upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// HistogramSnapshot is a consistent-enough view for exposition: cumulative
// bucket counts aligned with Bounds (plus the +Inf bucket last), total
// count, and value sum.
type HistogramSnapshot struct {
	Bounds     []float64 // upper bounds, ascending; +Inf implicit
	Cumulative []uint64  // len(Bounds)+1
	Count      uint64
	Sum        float64
}

// Snapshot returns the histogram's current state with cumulated buckets.
// Concurrent observers may land between the loads; exposition tolerates
// that by deriving Count from the cumulated buckets, keeping the invariant
// cumulative[+Inf] == Count that scrapers check.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds:     h.bounds,
		Cumulative: make([]uint64, len(h.counts)),
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		s.Cumulative[i] = cum
	}
	s.Count = cum
	s.Sum = math.Float64frombits(h.sum.Load())
	return s
}
