package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PromWriter emits the Prometheus text exposition format (version 0.0.4):
// one `# HELP` / `# TYPE` header per family followed by its samples. It is
// deliberately minimal — counters, gauges, and explicit-bucket histograms
// are all the gateway needs — and sticky-errors so call sites stay linear.
type PromWriter struct {
	w   io.Writer
	err error
}

// NewPromWriter returns a writer over w.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// Family writes a family header. typ is "counter", "gauge", "histogram",
// or "summary".
func (p *PromWriter) Family(name, typ, help string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

// Sample writes one sample line. labels are (name, value) pairs.
func (p *PromWriter) Sample(name string, labels []Label, v float64) {
	p.printf("%s%s %s\n", name, formatLabels(labels), formatValue(v))
}

// Counter and Gauge write a single-sample family in one call.
func (p *PromWriter) Counter(name, help string, v float64) {
	p.Family(name, "counter", help)
	p.Sample(name, nil, v)
}

// Gauge writes a gauge family with one unlabelled sample.
func (p *PromWriter) Gauge(name, help string, v float64) {
	p.Family(name, "gauge", help)
	p.Sample(name, nil, v)
}

// Histogram writes the _bucket/_sum/_count samples of one histogram under
// an already-declared family, with labels added to every sample.
func (p *PromWriter) Histogram(name string, labels []Label, s HistogramSnapshot) {
	for i, b := range s.Bounds {
		p.Sample(name+"_bucket", append(labels[:len(labels):len(labels)], Label{"le", formatValue(b)}), float64(s.Cumulative[i]))
	}
	p.Sample(name+"_bucket", append(labels[:len(labels):len(labels)], Label{"le", "+Inf"}), float64(s.Count))
	p.Sample(name+"_sum", labels, s.Sum)
	p.Sample(name+"_count", labels, float64(s.Count))
}

// Label is one Prometheus label pair.
type Label struct{ Name, Value string }

func formatLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// PromFamily is one parsed metric family.
type PromFamily struct {
	Name    string
	Type    string
	Samples []PromSample
}

// PromSample is one parsed sample line.
type PromSample struct {
	Name   string // full sample name, including _bucket/_sum/_count suffixes
	Labels map[string]string
	Value  float64
}

// ParseProm is a minimal text-format scanner used by the exposition tests
// (and usable by a future gateway-side aggregator): it parses families and
// samples, and enforces the invariants a scraper relies on — every sample
// belongs to a family declared by an earlier # TYPE line, values parse as
// floats, and histogram families have non-decreasing le-ordered buckets
// whose +Inf bucket equals _count.
func ParseProm(data string) (map[string]*PromFamily, error) {
	fams := make(map[string]*PromFamily)
	for ln, line := range strings.Split(data, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				name, typ := fields[2], fields[3]
				if _, dup := fams[name]; dup {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %s", ln+1, name)
				}
				fams[name] = &PromFamily{Name: name, Type: typ}
			}
			continue
		}
		sample, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", ln+1, err)
		}
		fam := fams[familyOf(sample.Name, fams)]
		if fam == nil {
			return nil, fmt.Errorf("line %d: sample %s precedes its # TYPE declaration", ln+1, sample.Name)
		}
		fam.Samples = append(fam.Samples, sample)
	}
	for _, fam := range fams {
		if fam.Type == "histogram" {
			if err := checkHistogram(fam); err != nil {
				return nil, fmt.Errorf("family %s: %v", fam.Name, err)
			}
		}
	}
	return fams, nil
}

// familyOf maps a sample name to its declared family, handling the
// histogram/summary suffixes.
func familyOf(name string, fams map[string]*PromFamily) string {
	if _, ok := fams[name]; ok {
		return name
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if _, ok := fams[base]; ok {
				return base
			}
		}
	}
	return ""
}

func parseSample(line string) (PromSample, error) {
	s := PromSample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		for _, pair := range splitLabels(rest[1:end]) {
			name, val, ok := strings.Cut(pair, "=")
			if !ok || len(val) < 2 || val[0] != '"' || val[len(val)-1] != '"' {
				return s, fmt.Errorf("malformed label %q", pair)
			}
			s.Labels[name] = unescapeLabel(val[1 : len(val)-1])
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 {
		return s, fmt.Errorf("missing value in %q", line)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	s.Value = v
	return s, nil
}

// splitLabels splits `a="x",b="y"` on commas outside quotes.
func splitLabels(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	depth, start := false, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

func unescapeLabel(s string) string {
	r := strings.NewReplacer(`\\`, `\`, `\"`, `"`, `\n`, "\n")
	return r.Replace(s)
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// checkHistogram validates one histogram family: per label-set, buckets are
// cumulative in ascending le order, end at +Inf, and match _count.
func checkHistogram(fam *PromFamily) error {
	type series struct {
		les    []float64
		counts []float64
		count  float64
		hasCnt bool
	}
	bySet := map[string]*series{}
	keyOf := func(labels map[string]string) string {
		parts := make([]string, 0, len(labels))
		for k, v := range labels {
			if k == "le" {
				continue
			}
			parts = append(parts, k+"="+v)
		}
		sort.Strings(parts)
		return strings.Join(parts, ",")
	}
	for _, s := range fam.Samples {
		key := keyOf(s.Labels)
		sr := bySet[key]
		if sr == nil {
			sr = &series{}
			bySet[key] = sr
		}
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			le, err := parseValue(s.Labels["le"])
			if err != nil {
				return fmt.Errorf("bad le %q", s.Labels["le"])
			}
			sr.les = append(sr.les, le)
			sr.counts = append(sr.counts, s.Value)
		case strings.HasSuffix(s.Name, "_count"):
			sr.count, sr.hasCnt = s.Value, true
		}
	}
	for key, sr := range bySet {
		if len(sr.les) == 0 {
			return fmt.Errorf("series {%s}: no buckets", key)
		}
		for i := 1; i < len(sr.les); i++ {
			if sr.les[i] <= sr.les[i-1] {
				return fmt.Errorf("series {%s}: le bounds not ascending", key)
			}
			if sr.counts[i] < sr.counts[i-1] {
				return fmt.Errorf("series {%s}: bucket counts not cumulative", key)
			}
		}
		if !math.IsInf(sr.les[len(sr.les)-1], 1) {
			return fmt.Errorf("series {%s}: missing +Inf bucket", key)
		}
		if !sr.hasCnt {
			return fmt.Errorf("series {%s}: missing _count", key)
		}
		if sr.counts[len(sr.counts)-1] != sr.count {
			return fmt.Errorf("series {%s}: +Inf bucket %v != count %v", key, sr.counts[len(sr.counts)-1], sr.count)
		}
	}
	return nil
}
