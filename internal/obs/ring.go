package obs

import (
	"sync"
	"time"
)

// Snapshot is the immutable record of one finished request, as served by
// GET /debug/requests.
type Snapshot struct {
	ID               uint64          `json:"id"`
	Model            string          `json:"model,omitempty"`
	GrammarID        string          `json:"grammar_id,omitempty"`
	Start            time.Time       `json:"start"`
	TotalMS          float64         `json:"total_ms"`
	FinishReason     string          `json:"finish_reason"`
	Tokens           int             `json:"tokens"`
	JumpForwardBytes int             `json:"jump_forward_bytes,omitempty"`
	Stages           []StageSummary  `json:"stages"`
	Events           []EventSnapshot `json:"events,omitempty"`
	// EventsTruncated is true when the request outlived its detail window:
	// per-step events past MaxEvents were dropped (aggregates kept counting
	// for stages observed at request scope).
	EventsTruncated bool `json:"events_truncated,omitempty"`
}

// StageSummary aggregates every span of one stage within a request.
type StageSummary struct {
	Stage   string  `json:"stage"`
	Count   int64   `json:"count"`
	TotalMS float64 `json:"total_ms"`
	MinMS   float64 `json:"min_ms"`
	MaxMS   float64 `json:"max_ms"`
}

// EventSnapshot is one span: stage, offset from request start, duration.
type EventSnapshot struct {
	Stage    string  `json:"stage"`
	OffsetMS float64 `json:"offset_ms"`
	DurMS    float64 `json:"dur_ms"`
}

// ring is the bounded buffer of completed-trace snapshots. push takes the
// mutex once per finished request; completed copies pointers out under it.
type ring struct {
	mu   sync.Mutex
	buf  []*Snapshot
	next int
}

func (r *ring) init(size int) {
	r.buf = make([]*Snapshot, 0, size)
}

func (r *ring) push(s *Snapshot) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, s)
	} else {
		r.buf[r.next] = s
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.mu.Unlock()
}

// completed returns matching snapshots newest-first. Snapshots are
// immutable after push, so sharing pointers with callers is safe.
func (r *ring) completed(f Filter) []*Snapshot {
	r.mu.Lock()
	snap := make([]*Snapshot, 0, len(r.buf))
	// Oldest-first order is buf[next:] then buf[:next] once wrapped;
	// before wrapping it is simply buf[0:len].
	if len(r.buf) == cap(r.buf) {
		snap = append(snap, r.buf[r.next:]...)
		snap = append(snap, r.buf[:r.next]...)
	} else {
		snap = append(snap, r.buf...)
	}
	r.mu.Unlock()

	out := make([]*Snapshot, 0, len(snap))
	for i := len(snap) - 1; i >= 0; i-- { // newest first
		s := snap[i]
		if f.Model != "" && s.Model != f.Model {
			continue
		}
		if f.GrammarID != "" && s.GrammarID != f.GrammarID {
			continue
		}
		if f.MinTotal > 0 && s.TotalMS < ms(f.MinTotal) {
			continue
		}
		out = append(out, s)
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
	}
	return out
}
