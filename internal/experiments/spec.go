package experiments

import (
	"fmt"

	"xgrammar/internal/engine"
	"xgrammar/internal/llmsim"
)

// SpecBenchResult is one machine-readable speculative-decoding benchmark
// record (the -json output of cmd/xgbench): decode-step reduction and
// throughput versus the non-speculative continuous-batching baseline, with
// the byte-identical check result recorded rather than assumed.
type SpecBenchResult struct {
	Experiment    string  `json:"experiment"`
	Mode          string  `json:"mode"`
	DraftTokens   int     `json:"draft_tokens"`
	DraftAccuracy float64 `json:"draft_accuracy"`
	Requests      int     `json:"requests"`
	OutputTokens  int     `json:"output_tokens"`
	DecodeSteps   int     `json:"decode_steps"`
	// StepsSaved sums per-sequence decode steps avoided (confirmed draft
	// tokens); batch rounds saved is DecodeSteps versus the baseline row.
	StepsSaved     int     `json:"seq_steps_saved"`
	AcceptanceRate float64 `json:"acceptance_rate"`
	Fallbacks      int     `json:"window_fallbacks"`
	TokensPerSec   float64 `json:"tokens_per_sec"`
	TPOTMS         float64 `json:"tpot_ms"`
	ByteIdentical  bool    `json:"byte_identical"`
}

// SpecBench benchmarks speculative draft-verify decoding on the rollback
// window: the mixed-grammar staggered-arrival stream decoded (a) by the
// continuous-overlap baseline and (b) speculatively at several simulated
// draft-model accuracies, same seed. Every speculative run's outputs are
// compared byte-for-byte against the baseline's — speculative decoding is
// lossless, so any divergence is a bug, and the check result ships in the
// record. Results are memoized so the table and -json output share one run.
func (s *Suite) SpecBench() []SpecBenchResult {
	if s.specResults != nil {
		return s.specResults
	}
	profile := llmsim.H100Llama8B()
	gap := profile.DecodeBase / 2
	maxBatch := s.NumDocs

	run := func(mode engine.Mode, spec engine.SpecOptions, acc float64) (engine.StreamMetrics, []string) {
		met, outs, err := engine.RunStream(engine.StreamConfig{
			Model:    s.SpecModel(profile, acc, 2025),
			Mode:     mode,
			Tok:      s.Tok(),
			MaxBatch: maxBatch,
			MaxSteps: s.FastStepCap,
			Spec:     spec,
		}, s.serveWorkload(gap))
		if err != nil {
			panic("experiments: spec: " + err.Error())
		}
		return met, outs
	}

	baseMet, baseOuts := run(engine.Overlap, engine.SpecOptions{}, 0)
	record := func(name string, mode engine.Mode, met engine.StreamMetrics, outs []string, spec engine.SpecOptions, acc float64) SpecBenchResult {
		identical := len(outs) == len(baseOuts)
		for i := range outs {
			if outs[i] != baseOuts[i] {
				identical = false
				break
			}
		}
		return SpecBenchResult{
			Experiment:     name,
			Mode:           mode.String(),
			DraftTokens:    spec.DraftTokens,
			DraftAccuracy:  acc,
			Requests:       met.Requests,
			OutputTokens:   met.OutputTokens,
			DecodeSteps:    met.DecodeSteps,
			StepsSaved:     met.StepsSaved(),
			AcceptanceRate: met.AcceptanceRate(),
			Fallbacks:      met.SpecFallbacks,
			TokensPerSec:   met.TokensPerSecond(),
			TPOTMS:         float64(met.TPOT.Nanoseconds()) / 1e6,
			ByteIdentical:  identical,
		}
	}

	out := []SpecBenchResult{record("baseline overlap", engine.Overlap, baseMet, baseOuts, engine.SpecOptions{}, 0)}
	for _, acc := range []float64{0.6, 0.8, 0.95} {
		spec := engine.SpecOptions{DraftTokens: 4}
		met, outs := run(engine.Speculative, spec, acc)
		out = append(out, record(fmt.Sprintf("speculative k=4 acc=%.2f", acc), engine.Speculative, met, outs, spec, acc))
	}
	s.specResults = out
	return out
}

// Spec renders the speculative-decoding benchmark as an experiment table.
func (s *Suite) Spec() *Table {
	t := &Table{
		ID:    "spec",
		Title: "Speculative draft-verify decoding on the rollback window",
		Paper: "§3.3: the checkpointed persistent stack enables token-level undo, the primitive behind speculative decoding",
		Header: []string{
			"engine", "accept %", "decode steps", "seq steps saved", "tok/s", "TPOT ms", "identical",
		},
	}
	for _, r := range s.SpecBench() {
		acc := "-"
		if r.DraftTokens > 0 {
			acc = fmt.Sprintf("%.1f%%", 100*r.AcceptanceRate)
		}
		t.Add(
			r.Experiment,
			acc,
			fmt.Sprintf("%d", r.DecodeSteps),
			fmt.Sprintf("%d", r.StepsSaved),
			fmt.Sprintf("%.0f", r.TokensPerSec),
			fmt.Sprintf("%.2f", r.TPOTMS),
			fmt.Sprintf("%v", r.ByteIdentical),
		)
	}
	t.Note("same workload and seed as the serve benchmark; draft window k=4, simulated draft model at three accuracies")
	t.Note("speculative decoding is lossless: 'identical' compares every output byte-for-byte against the baseline run")
	t.Note("'seq steps saved' sums per-sequence sampling steps avoided (accepted drafts); batch GPU rounds saved is the decode-steps column vs baseline")
	t.Note("each accepted draft token advances its sequence without a sampling step; the rejected suffix is retracted via Matcher.Rollback")
	return t
}
