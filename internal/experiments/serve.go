package experiments

import (
	"fmt"
	"time"

	"xgrammar/internal/baselines"
	"xgrammar/internal/engine"
	"xgrammar/internal/llmsim"
	"xgrammar/internal/maskcache"
	"xgrammar/internal/pda"
	"xgrammar/internal/serve"
	"xgrammar/internal/workload"
)

// ServeResult is one machine-readable serving-benchmark record (the -json
// output of cmd/xgbench), tracking the perf trajectory of the continuous-
// batching runtime: throughput plus the per-step mask fill latency tail.
type ServeResult struct {
	Experiment   string  `json:"experiment"`
	Mode         string  `json:"mode"`
	Requests     int     `json:"requests"`
	MaxBatch     int     `json:"max_batch"`
	OutputTokens int     `json:"output_tokens"`
	TokensPerSec float64 `json:"tokens_per_sec"`
	TTFTMS       float64 `json:"ttft_ms"`
	TPOTMS       float64 `json:"tpot_ms"`
	FillP50US    float64 `json:"fill_p50_us"`
	FillP99US    float64 `json:"fill_p99_us"`
	PeakBatch    int     `json:"peak_batch"`
	Joins        int     `json:"joins"`
	Leaves       int     `json:"leaves"`
}

// serveWorkload builds the mixed-grammar staggered-arrival request stream:
// JSON CFG documents interleaved with JSON Schema instances, arrivals spaced
// so sequences join a running batch (continuous batching) rather than start
// together.
func (s *Suite) serveWorkload(gap time.Duration) []*engine.StreamRequest {
	jsonPDA := s.PDA("json-opt", s.cfgTasks()[0].grammar, pda.AllOptimizations)
	jsonCache := s.Cache("json-opt", jsonPDA, maskcache.Options{ContextExpansion: true})
	jsonBackend := baselines.NewPooledXGBackend(
		serve.NewSessionPool(jsonPDA, jsonCache, s.Tok(), 0), "json")

	art := s.Schemas()[0]
	schemaCache := s.Cache("schema-"+art.Task.Name, art.PDA, maskcache.Options{ContextExpansion: true})
	schemaBackend := baselines.NewPooledXGBackend(
		serve.NewSessionPool(art.PDA, schemaCache, s.Tok(), 0), "schema")

	n := 2 * s.NumDocs
	docs := workload.JSONDocs(s.NumDocs, 7)
	reqs := make([]*engine.StreamRequest, n)
	for i := 0; i < n; i++ {
		target := docs[(i/2)%len(docs)]
		backend := baselines.Backend(jsonBackend)
		init := s.InitTime("json-opt")
		if i%2 == 1 {
			target = art.Task.Instance
			backend = schemaBackend
			init = s.InitTime("schema-" + art.Task.Name)
		}
		if i >= 2 {
			init = 0 // compiled-grammar cache hit for every later request
		}
		reqs[i] = &engine.StreamRequest{
			Req:         llmsim.NewRequests([]string{target}, s.PromptTokens)[0],
			Arrival:     time.Duration(i) * gap,
			Grammar:     backend,
			GrammarInit: init,
		}
	}
	return reqs
}

// ServeBench runs the continuous-batching serving benchmark: the same
// arrival stream decoded (a) as the old fixed batch (start when the whole
// batch has arrived), (b) continuously with grammar work on the critical
// path, and (c) continuously with the batch fill overlapped via the
// persistent worker pool (§3.5 co-design). Results are memoized, so the
// serve table and the -json output come from one run.
func (s *Suite) ServeBench() []ServeResult {
	if s.serveResults != nil {
		return s.serveResults
	}
	profile := llmsim.H100Llama8B()
	gap := profile.DecodeBase / 2
	maxBatch := s.NumDocs
	cases := []struct {
		name  string
		mode  engine.Mode
		fixed bool
	}{
		{"fixed-batch overlap", engine.Overlap, true},
		{"continuous serial", engine.Serial, false},
		{"continuous overlap", engine.Overlap, false},
	}
	out := make([]ServeResult, 0, len(cases))
	for _, c := range cases {
		reqs := s.serveWorkload(gap)
		if c.fixed {
			var last time.Duration
			for _, r := range reqs {
				if r.Arrival > last {
					last = r.Arrival
				}
			}
			for _, r := range reqs {
				r.Arrival = last
			}
		}
		met, _, err := engine.RunStream(engine.StreamConfig{
			Model:    s.Model(profile),
			Mode:     c.mode,
			Tok:      s.Tok(),
			MaxBatch: maxBatch,
			MaxSteps: s.FastStepCap,
		}, reqs)
		if err != nil {
			panic("experiments: serve: " + err.Error())
		}
		out = append(out, ServeResult{
			Experiment:   c.name,
			Mode:         c.mode.String(),
			Requests:     met.Requests,
			MaxBatch:     maxBatch,
			OutputTokens: met.OutputTokens,
			TokensPerSec: met.TokensPerSecond(),
			TTFTMS:       float64(met.TTFT.Nanoseconds()) / 1e6,
			TPOTMS:       float64(met.TPOT.Nanoseconds()) / 1e6,
			FillP50US:    float64(met.FillP50.Nanoseconds()) / 1e3,
			FillP99US:    float64(met.FillP99.Nanoseconds()) / 1e3,
			PeakBatch:    met.PeakBatch,
			Joins:        met.Joins,
			Leaves:       met.Leaves,
		})
	}
	s.serveResults = out
	return out
}

// Serve renders the continuous-batching benchmark as an experiment table.
func (s *Suite) Serve() *Table {
	t := &Table{
		ID:    "serve",
		Title: "Continuous-batching serving runtime (pooled sessions, overlapped batch fill)",
		Paper: "§3.5: grammar work disappears from the critical path when engine and grammar runtime are co-designed",
		Header: []string{
			"engine", "tok/s", "TTFT ms", "TPOT ms", "fill p50 us", "fill p99 us", "peak batch", "joins",
		},
	}
	for _, r := range s.ServeBench() {
		t.Add(
			r.Experiment,
			fmt.Sprintf("%.0f", r.TokensPerSec),
			fmt.Sprintf("%.2f", r.TTFTMS),
			fmt.Sprintf("%.2f", r.TPOTMS),
			fmt.Sprintf("%.1f", r.FillP50US),
			fmt.Sprintf("%.1f", r.FillP99US),
			fmt.Sprintf("%d", r.PeakBatch),
			fmt.Sprintf("%d", r.Joins),
		)
	}
	t.Note("mixed grammars per batch (JSON CFG + JSON Schema), %d requests arriving every %v, batch bound %d",
		2*s.NumDocs, llmsim.H100Llama8B().DecodeBase/2, s.NumDocs)
	t.Note("fixed-batch waits for the whole batch before decoding; continuous admits sequences mid-run (sessions pooled)")
	return t
}
