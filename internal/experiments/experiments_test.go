package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// quickSuite shares one suite across tests (artifacts are memoized).
var shared *Suite

func suite(t *testing.T) *Suite {
	t.Helper()
	if shared == nil {
		shared = NewSuite(true)
	}
	return shared
}

// cellMS parses a table cell produced by fmtMS.
func cellMS(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cell %q not a number: %v", cell, err)
	}
	return v
}

func findRow(t *testing.T, tb *Table, prefix ...string) []string {
	t.Helper()
outer:
	for _, row := range tb.Rows {
		for i, p := range prefix {
			if i >= len(row) || row[i] != p {
				continue outer
			}
		}
		return row
	}
	t.Fatalf("row %v not found in %s", prefix, tb.String())
	return nil
}

func TestFig9Shape(t *testing.T) {
	tb := suite(t).Fig9()
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// lm-format-enforcer must not support the CFG tasks.
	lmfe := findRow(t, tb, "lm-format-enforcer")
	for _, c := range lmfe[2:] {
		if c != "n/s" {
			t.Fatalf("lm-format-enforcer supported a CFG: %v", lmfe)
		}
	}
	// XGrammar must be the fastest engine on every CFG task. On the JSON
	// Schema task our reimplemented Outlines (a memoized table lookup
	// without the original's interpreter overhead) may be at parity; we
	// require XGrammar to stay within a small constant factor there.
	xg := findRow(t, tb, "xgrammar")
	for col := 2; col < 5; col++ {
		xgv := cellMS(t, xg[col])
		for _, row := range tb.Rows {
			if row[0] == "xgrammar" || row[col] == "n/s" {
				continue
			}
			if v := cellMS(t, row[col]); v < xgv {
				t.Errorf("col %d: %s (%v) faster than xgrammar (%v)", col, row[0], v, xgv)
			}
		}
	}
	xgSchema := cellMS(t, xg[1])
	for _, row := range tb.Rows {
		if row[0] == "xgrammar" || row[1] == "n/s" {
			continue
		}
		if v := cellMS(t, row[1]); v < xgSchema/10 {
			t.Errorf("schema: %s (%v) more than 10x faster than xgrammar (%v)", row[0], v, xgSchema)
		}
	}
	// CFG speedup over the full-scan engines should be large.
	lcp := findRow(t, tb, "llama.cpp-grammar")
	if cellMS(t, lcp[2])/cellMS(t, xg[2]) < 20 {
		t.Errorf("CFG speedup too small: llama.cpp %s vs xgrammar %s", lcp[2], xg[2])
	}
	t.Log("\n" + tb.String())
}

func TestTab3AblationMonotone(t *testing.T) {
	tb := suite(t).Tab3()
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	prev := -1.0
	for i, row := range tb.Rows {
		v := cellMS(t, row[1])
		if i > 0 && v > prev*1.5 {
			// Each optimization should not significantly regress; the cache
			// row must be a dramatic improvement.
			t.Errorf("row %q (%v ms) much slower than previous (%v ms)", row[0], v, prev)
		}
		prev = v
	}
	// The cumulative speedup of the cache-based rows over the scan-based
	// baseline must be dramatic even at quick-mode scale.
	base := cellMS(t, tb.Rows[0][1])
	cached := cellMS(t, tb.Rows[2][1])
	if base/cached < 3 {
		t.Errorf("adaptive cache speedup only %.1fx", base/cached)
	}
	final := cellMS(t, tb.Rows[4][1])
	if final > 0 && base/final < 50 {
		t.Errorf("full stack speedup only %.1fx", base/final)
	}
	t.Log("\n" + tb.String())
}

func TestFig10Shape(t *testing.T) {
	tb := suite(t).Fig10()
	// XGrammar-based rows must beat llama.cpp at every batch size for both
	// tasks, and the gap must grow with batch size.
	for _, task := range []string{"JSON Schema", "CFG (JSON)"} {
		lcp := findRow(t, tb, task, "llama.cpp")
		xg := findRow(t, tb, task, "SGLang + XGrammar")
		firstRatio := 0.0
		for col := 2; col < len(lcp); col++ {
			l, x := cellMS(t, lcp[col]), cellMS(t, xg[col])
			if l <= x {
				t.Errorf("%s batch col %d: llama.cpp (%v) not slower than xgrammar (%v)", task, col, l, x)
			}
			if col == 2 {
				firstRatio = l / x
			}
		}
		last := len(lcp) - 1
		if cellMS(t, lcp[last])/cellMS(t, xg[last]) < firstRatio {
			t.Logf("%s: gap did not grow with batch (ok in quick mode)", task)
		}
	}
	t.Log("\n" + tb.String())
}

func TestTab1Shape(t *testing.T) {
	tb := suite(t).Tab1()
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		outl, xg := cellMS(t, row[1]), cellMS(t, row[2])
		if xg > outl {
			t.Errorf("%s: XGrammar (%v) slower than Outlines (%v)", row[0], xg, outl)
		}
	}
	t.Log("\n" + tb.String())
}

func TestTab2NearZeroOverhead(t *testing.T) {
	tb := suite(t).Tab2()
	for _, row := range tb.Rows {
		off, on := cellMS(t, row[2]), cellMS(t, row[3])
		if on > off*1.20 {
			t.Errorf("%s batch %s: overhead too high: %v vs %v", row[0], row[1], on, off)
		}
	}
	t.Log("\n" + tb.String())
}

func TestTab4Accuracy(t *testing.T) {
	tb := suite(t).Tab4()
	for _, row := range tb.Rows {
		unc := strings.TrimSuffix(row[1], "%")
		con := strings.TrimSuffix(row[2], "%")
		u, _ := strconv.Atoi(unc)
		c, _ := strconv.Atoi(con)
		if c != 100 {
			t.Errorf("%s: constrained accuracy %d%%, want 100%%", row[0], c)
		}
		if u >= 100 {
			t.Errorf("%s: unconstrained accuracy %d%% should be below 100%%", row[0], u)
		}
		if u < 30 {
			t.Errorf("%s: unconstrained accuracy %d%% implausibly low", row[0], u)
		}
	}
	t.Log("\n" + tb.String())
}

func TestFig11JumpForwardHelps(t *testing.T) {
	tb := suite(t).Fig11()
	for _, row := range tb.Rows {
		plain, jf := cellMS(t, row[1]), cellMS(t, row[2])
		if jf > plain*1.02 {
			t.Errorf("%s: jump-forward regressed TPOT: %v -> %v", row[0], plain, jf)
		}
	}
	xg := findRow(t, tb, "XGrammar")
	if n, _ := strconv.Atoi(xg[3]); n == 0 {
		t.Error("XGrammar produced no jump-forward tokens")
	}
	t.Log("\n" + tb.String())
}

func TestFig12NearZeroDeviceOverhead(t *testing.T) {
	tb := suite(t).Fig12()
	for _, row := range tb.Rows {
		tuOff, tuOn := cellMS(t, row[3]), cellMS(t, row[4])
		if tuOn > tuOff*1.25 {
			t.Errorf("%s: structured TPOT overhead too high: %v vs %v", row[0], tuOn, tuOff)
		}
		ttOff, ttOn := cellMS(t, row[1]), cellMS(t, row[2])
		if ttOn < ttOff*0.9 {
			t.Errorf("%s: structured TTFT suspiciously lower: %v vs %v", row[0], ttOn, ttOff)
		}
	}
	t.Log("\n" + tb.String())
}

func TestStatsShape(t *testing.T) {
	tb := suite(t).Stats()
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	t.Log("\n" + tb.String())
}

func TestByIDAndRender(t *testing.T) {
	s := suite(t)
	for _, id := range []string{"fig9", "tab3", "stats", "store", "backend"} {
		tb, ok := s.ByID(id)
		if !ok || tb == nil {
			t.Fatalf("ByID(%s) failed", id)
		}
		if !strings.Contains(tb.String(), "==") || !strings.Contains(tb.Markdown(), "|") {
			t.Fatalf("%s: bad rendering", id)
		}
	}
	if _, ok := s.ByID("nope"); ok {
		t.Fatal("unknown id resolved")
	}
}

func TestSuiteTimersRecorded(t *testing.T) {
	s := suite(t)
	s.XGrammarJSON()
	if s.InitTime("json-opt") <= 0 {
		t.Fatal("no init time recorded")
	}
	_ = time.Now()
}

// TestServeBench checks the continuous-batching serving benchmark: all
// engines must emit the same token totals, batching dynamics must show
// sequences joining and leaving a bounded batch, and the fill-latency
// percentiles must be populated and ordered.
func TestServeBench(t *testing.T) {
	s := suite(t)
	results := s.ServeBench()
	if len(results) != 3 {
		t.Fatalf("results = %d, want 3", len(results))
	}
	for _, r := range results {
		if r.OutputTokens != results[0].OutputTokens {
			t.Fatalf("%s: output tokens %d != %d", r.Experiment, r.OutputTokens, results[0].OutputTokens)
		}
		if r.Joins != r.Requests || r.Leaves != r.Requests {
			t.Fatalf("%s: joins/leaves %d/%d, want %d", r.Experiment, r.Joins, r.Leaves, r.Requests)
		}
		if r.PeakBatch > r.MaxBatch || r.PeakBatch < 2 {
			t.Fatalf("%s: peak batch %d outside (2, %d]", r.Experiment, r.PeakBatch, r.MaxBatch)
		}
		if r.TokensPerSec <= 0 || r.FillP99US < r.FillP50US || r.FillP50US <= 0 {
			t.Fatalf("%s: degenerate metrics %+v", r.Experiment, r)
		}
	}
	// Overlapping the batch fill must not be slower than keeping grammar
	// work on the critical path for the same continuous stream.
	serial, overlap := results[1], results[2]
	if overlap.TokensPerSec < serial.TokensPerSec*0.95 {
		t.Fatalf("continuous overlap (%.0f tok/s) clearly slower than serial (%.0f tok/s)",
			overlap.TokensPerSec, serial.TokensPerSec)
	}
	tb := s.Serve()
	if len(tb.Rows) != 3 || !strings.Contains(tb.String(), "continuous overlap") {
		t.Fatalf("serve table malformed:\n%s", tb.String())
	}
}

func TestStoreBench(t *testing.T) {
	s := suite(t)
	results := s.StoreBench()
	if len(results) != 3 {
		t.Fatalf("store results = %d", len(results))
	}
	for _, r := range results {
		if r.ColdCompileMS <= 0 || r.WarmLoadMS <= 0 {
			t.Fatalf("%s: degenerate latencies %+v", r.Grammar, r)
		}
		if r.BlobKB <= 0 {
			t.Fatalf("%s: blob size not measured: %+v", r.Grammar, r)
		}
	}
	// Memoized: the table reuses the same run.
	if &results[0] != &s.StoreBench()[0] {
		t.Fatal("store results not memoized")
	}
	tb := s.Store()
	if len(tb.Rows) != 3 || !strings.Contains(tb.String(), "warm load") {
		t.Fatalf("store table malformed:\n%s", tb.String())
	}
}

// TestPrefixBench checks the prefix-cache warm-start benchmark: the warm
// run must be byte-identical to the cold run, actually reuse prefix bytes
// via cached checkpoints, and report a meaningful hit rate.
func TestPrefixBench(t *testing.T) {
	s := suite(t)
	results := s.PrefixBench()
	if len(results) != 2 {
		t.Fatalf("prefix results = %d, want 2 (cold, warm)", len(results))
	}
	cold, warm := results[0], results[1]
	if cold.Mode != "cold" || warm.Mode != "warm" {
		t.Fatalf("modes = %q, %q", cold.Mode, warm.Mode)
	}
	if !warm.ByteIdentical {
		t.Fatal("warm run not byte-identical to cold run")
	}
	if warm.BytesReused == 0 {
		t.Fatal("warm run reused no prefix bytes")
	}
	if warm.HitRate <= 0 {
		t.Fatalf("hit rate = %v, want > 0", warm.HitRate)
	}
	// All requests after the first share the full prefix, so replayed
	// bytes must stay far below the cold total.
	coldTotal := int64(cold.Requests * cold.PrefixBytes)
	if warm.BytesReplayed >= coldTotal {
		t.Fatalf("warm replayed %d bytes, cold total %d", warm.BytesReplayed, coldTotal)
	}
	if cold.FirstMaskP50US <= 0 || warm.FirstMaskP50US <= 0 {
		t.Fatalf("degenerate first-mask latencies: cold %v warm %v", cold.FirstMaskP50US, warm.FirstMaskP50US)
	}
	// Memoized: table and -json share one run.
	if &results[0] != &s.PrefixBench()[0] {
		t.Fatal("prefix results not memoized")
	}
	tb := s.Prefix()
	if len(tb.Rows) != 2 || !strings.Contains(tb.String(), "warm") {
		t.Fatalf("prefix table malformed:\n%s", tb.String())
	}
}
