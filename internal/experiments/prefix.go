package experiments

import (
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"xgrammar/internal/builtin"
	"xgrammar/internal/maskcache"
	"xgrammar/internal/pda"
	"xgrammar/internal/prefixcache"
	"xgrammar/internal/serve"
	"xgrammar/internal/tokenizer"
)

// PrefixResult is one machine-readable prefix-cache benchmark record: the
// same templated workload (a long shared forced prefix, varying tails)
// served cold (every request replays the prefix byte by byte) and warm
// (requests join through the acquisition layer and restore cached
// constraint-state checkpoints).
type PrefixResult struct {
	Experiment  string `json:"experiment"`
	Mode        string `json:"mode"`
	Requests    int    `json:"requests"`
	PrefixBytes int    `json:"prefix_bytes"`
	// FirstMask percentiles time session acquisition up to the first
	// decode-ready token mask (restore + residual replay + fill).
	FirstMaskP50US float64 `json:"first_mask_p50_us"`
	FirstMaskP99US float64 `json:"first_mask_p99_us"`
	// TokensPerSec is the steady-state constrained decode rate over the
	// varying tails (fill + accept per token), after the prefix.
	TokensPerSec float64 `json:"tokens_per_sec"`
	// HitRate/BytesReused/BytesReplayed come from the cache and acquirer
	// counters (zero in cold mode).
	HitRate       float64 `json:"hit_rate"`
	BytesReused   int64   `json:"bytes_reused"`
	BytesReplayed int64   `json:"bytes_replayed"`
	// ByteIdentical records the correctness check: every warm request's
	// mask sequence (first mask and every tail step) matched the cold run's
	// bit for bit, so any sampler decodes identical bytes.
	ByteIdentical bool `json:"byte_identical"`
}

// prefixWorkload builds the templated request stream: one long shared
// prefix (the templated system/tool preamble every request repeats) and a
// varying JSON tail per request, all valid under the builtin JSON grammar.
func (s *Suite) prefixWorkload() (prefix string, tails []string) {
	prefix = `{"system": "You are a tool-calling assistant. Always answer with one call.", "call": {"name": "`
	n := 2 * s.NumDocs
	tails = make([]string, n)
	for i := range tails {
		tails[i] = fmt.Sprintf(`tool_%03d", "args": [%d, %d, "q%d"]}}`, i%8, i, (i*7)%13, i)
	}
	return prefix, tails
}

// maskFingerprint hashes a filled mask so the warm run can compare its
// per-step masks against the cold run without retaining every word slice.
func maskFingerprint(h *uint64, words []uint64) {
	f := fnv.New64a()
	var buf [8]byte
	for _, w := range words {
		buf[0] = byte(w)
		buf[1] = byte(w >> 8)
		buf[2] = byte(w >> 16)
		buf[3] = byte(w >> 24)
		buf[4] = byte(w >> 32)
		buf[5] = byte(w >> 40)
		buf[6] = byte(w >> 48)
		buf[7] = byte(w >> 56)
		f.Write(buf[:])
	}
	*h = *h*1099511628211 ^ f.Sum64()
}

func durPercentile(d []time.Duration, q float64) float64 {
	if len(d) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), d...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return float64(sorted[idx].Nanoseconds()) / 1e3
}

// PrefixBench runs the templated workload twice over identical artifacts:
// cold (fresh session + full byte replay per request) and warm (acquisition
// layer over a populated prefix cache). Byte identity is asserted by
// fingerprinting every mask the cold run fills and replaying the comparison
// in the warm run. Results are memoized; the table and -json output share
// one run.
func (s *Suite) PrefixBench() []PrefixResult {
	if s.prefixResults != nil {
		return s.prefixResults
	}
	tok := s.Tok()
	p := s.PDA("json-opt", builtin.JSON(), pda.AllOptimizations)
	cache := s.Cache("json-opt", p, maskcache.Options{ContextExpansion: true})
	prefix, tails := s.prefixWorkload()
	prefixBytes := []byte(prefix)

	// Tokenize tails up front so both runs time the same decode stream.
	tailIDs := make([][]int32, len(tails))
	for i, tail := range tails {
		ids := tok.Encode(tail)
		tailIDs[i] = append(ids, tokenizer.EosID)
	}

	run := func(acq *serve.Acquirer, pool *serve.SessionPool, hashes []uint64, check bool) (PrefixResult, []uint64) {
		firstMask := make([]time.Duration, 0, len(tails))
		var steady time.Duration
		tokens := 0
		identical := true
		if hashes == nil {
			hashes = make([]uint64, len(tails))
		}
		for i := range tails {
			var sess *serve.Session
			t0 := time.Now()
			if acq != nil {
				ws, _, err := acq.Acquire(prefixBytes)
				if err != nil {
					panic("experiments: prefix: " + err.Error())
				}
				sess = ws
			} else {
				sess = pool.Acquire()
				if err := sess.AcceptBytes(prefixBytes); err != nil {
					panic("experiments: prefix: " + err.Error())
				}
				sess.Fill()
			}
			firstMask = append(firstMask, time.Since(t0))
			var h uint64
			maskFingerprint(&h, sess.Mask())
			t1 := time.Now()
			for _, id := range tailIDs[i] {
				if err := sess.Accept(id); err != nil {
					panic("experiments: prefix: " + err.Error())
				}
				if sess.IsTerminated() {
					break
				}
				sess.Fill()
				tokens++
				maskFingerprint(&h, sess.Mask())
			}
			steady += time.Since(t1)
			if check && h != hashes[i] {
				identical = false
			}
			hashes[i] = h
			sess.Close()
		}
		res := PrefixResult{
			Requests:       len(tails),
			PrefixBytes:    len(prefix),
			FirstMaskP50US: durPercentile(firstMask, 0.50),
			FirstMaskP99US: durPercentile(firstMask, 0.99),
			ByteIdentical:  identical,
		}
		if steady > 0 {
			res.TokensPerSec = float64(tokens) / steady.Seconds()
		}
		return res, hashes
	}

	coldPool := serve.NewSessionPool(p, cache, tok, 0)
	cold, hashes := run(nil, coldPool, nil, false)
	cold.Experiment = "cold replay"
	cold.Mode = "cold"

	warmPool := serve.NewSessionPool(p, cache, tok, 0)
	pc := prefixcache.New(4 << 20)
	acq := serve.NewAcquirer(warmPool, pc, "prefix-bench", 0, 0)
	warm, _ := run(acq, warmPool, hashes, true)
	warm.Experiment = "warm acquisition"
	warm.Mode = "warm"
	st := pc.Stats()
	warm.HitRate = st.HitRate()
	as := acq.Stats()
	warm.BytesReused = as.BytesReused
	warm.BytesReplayed = as.BytesReplayed

	s.prefixResults = []PrefixResult{cold, warm}
	return s.prefixResults
}

// Prefix renders the prefix-cache benchmark as an experiment table.
func (s *Suite) Prefix() *Table {
	t := &Table{
		ID:    "prefix",
		Title: "Cross-request constraint-state prefix cache (templated-workload warm start)",
		Paper: "templated deployments repeat a long forced prefix per request; warm start restores cached PDA checkpoints instead of replaying it",
		Header: []string{
			"mode", "reqs", "prefix B", "first-mask p50 us", "first-mask p99 us",
			"tok/s", "hit rate", "reused B", "replayed B", "identical",
		},
	}
	for _, r := range s.PrefixBench() {
		t.Add(
			r.Mode,
			fmt.Sprintf("%d", r.Requests),
			fmt.Sprintf("%d", r.PrefixBytes),
			fmt.Sprintf("%.1f", r.FirstMaskP50US),
			fmt.Sprintf("%.1f", r.FirstMaskP99US),
			fmt.Sprintf("%.0f", r.TokensPerSec),
			fmt.Sprintf("%.2f", r.HitRate),
			fmt.Sprintf("%d", r.BytesReused),
			fmt.Sprintf("%d", r.BytesReplayed),
			fmt.Sprintf("%t", r.ByteIdentical),
		)
	}
	t.Note("first-mask latency spans session acquisition to the first decode-ready mask (checkpoint restore + residual replay + fill)")
	t.Note("byte identity: every warm mask (first and per tail token) fingerprint-matched the cold run, so any sampler decodes the same bytes")
	return t
}
