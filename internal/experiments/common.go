package experiments

import (
	"time"

	"xgrammar/internal/backend"
	"xgrammar/internal/backend/simllm"
	"xgrammar/internal/baselines"
	"xgrammar/internal/bitset"
	"xgrammar/internal/builtin"
	"xgrammar/internal/grammar"
	"xgrammar/internal/jsonschema"
	"xgrammar/internal/llmsim"
	"xgrammar/internal/maskcache"
	"xgrammar/internal/pda"
	"xgrammar/internal/tokenizer"
	"xgrammar/internal/workload"
)

// Suite holds the shared configuration and memoized artifacts for all
// experiments. Quick mode shrinks the vocabulary and workloads so the whole
// suite runs in seconds (used by tests); full mode approximates the paper's
// scale.
type Suite struct {
	Vocab        int
	NumSchemas   int
	NumDocs      int
	SlowStepCap  int // max measured steps for full-vocabulary-scan engines
	FastStepCap  int
	BatchSizes   []int
	PromptTokens int
	Quick        bool
	// ModelSpec selects the model backend through the registry (the xgbench
	// and xgrun -backend flag); empty or "llmsim" uses the in-process
	// teacher-forced simulation, which is the only backend whose Timing
	// models the chosen hardware profile.
	ModelSpec string

	tok *tokenizer.Tokenizer
	// registryModel memoizes the -backend selected model across experiments.
	registryModel backend.Backend
	// memoized compiled artifacts
	pdas   map[string]*pda.PDA
	caches map[string]*maskcache.Cache
	inits  map[string]time.Duration
	// memoized serving-benchmark results (table and -json share one run)
	serveResults []ServeResult
	// memoized store-benchmark results (cold compile vs. warm load)
	storeResults []StoreResult
	// memoized speculative-decoding benchmark results
	specResults []SpecBenchResult
	// memoized structural-tag benchmark results
	tagsResults []TagsResult
	// memoized model-backend seam benchmark results
	backendResults []BackendBenchResult
	// memoized tracing-overhead benchmark results
	obsResults []ObsResult
	// memoized prefix-cache warm-start benchmark results
	prefixResults []PrefixResult
}

// NewSuite returns a suite configuration.
func NewSuite(quick bool) *Suite {
	s := &Suite{
		Vocab:        32000,
		NumSchemas:   8,
		NumDocs:      20,
		SlowStepCap:  60,
		FastStepCap:  4000,
		BatchSizes:   []int{1, 16, 32},
		PromptTokens: 139,
		Quick:        quick,
		pdas:         map[string]*pda.PDA{},
		caches:       map[string]*maskcache.Cache{},
		inits:        map[string]time.Duration{},
	}
	if quick {
		s.Vocab = 2000
		s.NumSchemas = 2
		s.NumDocs = 4
		s.SlowStepCap = 20
		s.FastStepCap = 300
		s.BatchSizes = []int{1, 4}
	}
	return s
}

// Tok returns the suite tokenizer (trained once).
func (s *Suite) Tok() *tokenizer.Tokenizer {
	if s.tok == nil {
		s.tok = tokenizer.BuildDefault(s.Vocab)
	}
	return s.tok
}

// Model returns the model backend experiments decode against: the
// teacher-forced llmsim simulation timed by the given hardware profile, or
// the registry backend named by ModelSpec (whose own Timing applies — the
// profile only parameterizes the simulation).
func (s *Suite) Model(profile llmsim.Profile) backend.Backend {
	return s.SpecModel(profile, 0, 0)
}

// SpecModel is Model with the simulated draft model configured (speculative
// decoding experiments); registry backends bring their own draft hook.
func (s *Suite) SpecModel(profile llmsim.Profile, acc float64, seed int64) backend.Backend {
	if s.ModelSpec != "" && s.ModelSpec != "llmsim" {
		if s.registryModel == nil {
			m, err := backend.Open(s.ModelSpec)
			if err != nil {
				panic("experiments: backend " + s.ModelSpec + ": " + err.Error())
			}
			s.registryModel = m
		}
		return s.registryModel
	}
	return simllm.NewTeacher(s.Tok(), profile, simllm.TeacherOptions{DraftAccuracy: acc, DraftSeed: seed})
}

// PDA compiles and memoizes a grammar under the given options.
func (s *Suite) PDA(key string, g *grammar.Grammar, opts pda.Options) *pda.PDA {
	if p, ok := s.pdas[key]; ok {
		return p
	}
	p, err := pda.Compile(g, opts)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	s.pdas[key] = p
	return p
}

// Cache builds and memoizes a mask cache, recording its build time.
func (s *Suite) Cache(key string, p *pda.PDA, opts maskcache.Options) *maskcache.Cache {
	if c, ok := s.caches[key]; ok {
		return c
	}
	t0 := time.Now()
	c := maskcache.Build(p, s.Tok(), opts)
	s.inits[key] = time.Since(t0)
	s.caches[key] = c
	return c
}

// InitTime returns the recorded preprocessing time for a cache key.
func (s *Suite) InitTime(key string) time.Duration { return s.inits[key] }

// XGrammarJSON returns the fully-optimized XGrammar backend for the
// unconstrained-JSON CFG, with its preprocessing time.
func (s *Suite) XGrammarJSON() (*baselines.XGBackend, time.Duration) {
	p := s.PDA("json-opt", builtin.JSON(), pda.AllOptimizations)
	c := s.Cache("json-opt", p, maskcache.Options{ContextExpansion: true})
	return baselines.NewXGBackend(p, c, s.Tok(), "xgrammar"), s.InitTime("json-opt")
}

// SchemaArtifacts holds one schema task's compiled engines.
type SchemaArtifacts struct {
	Task     workload.SchemaTask
	Grammar  *grammar.Grammar
	PDA      *pda.PDA
	XG       *baselines.XGBackend
	XGInit   time.Duration
	FSM      *baselines.RegexFSM
	FSMInit  time.Duration
	CharWalk *baselines.CharWalk
	LlamaCpp *baselines.LlamaCpp
}

// Schemas compiles the schema workload once for all backends.
func (s *Suite) Schemas() []*SchemaArtifacts {
	tasks := workload.SchemaTasks(s.NumSchemas, 2025)
	out := make([]*SchemaArtifacts, len(tasks))
	for i, task := range tasks {
		g, err := jsonschema.Compile(task.Schema, jsonschema.Options{})
		if err != nil {
			panic("experiments: " + err.Error())
		}
		key := "schema-" + task.Name
		p := s.PDA(key, g, pda.AllOptimizations)
		cache := s.Cache(key, p, maskcache.Options{ContextExpansion: true})
		art := &SchemaArtifacts{
			Task:     task,
			Grammar:  g,
			PDA:      p,
			XG:       baselines.NewXGBackend(p, cache, s.Tok(), "xgrammar"),
			XGInit:   s.InitTime(key),
			LlamaCpp: baselines.NewLlamaCpp(p, s.Tok()),
		}
		t0 := time.Now()
		if fsm, err := baselines.NewRegexFSM(g, s.Tok()); err == nil {
			fsm.PrecomputeAll()
			art.FSM = fsm
			art.FSMInit = time.Since(t0)
		}
		if cw, err := baselines.NewCharWalk(g, s.Tok()); err == nil {
			art.CharWalk = cw
		}
		out[i] = art
	}
	return out
}

// measureMaskLatency replays documents through a backend, timing FillMask at
// every step. Returns the mean per-token latency and the steps measured.
func (s *Suite) measureMaskLatency(b baselines.Backend, docs []string, stepCap int) (time.Duration, int) {
	tok := s.Tok()
	mask := bitset.New(tok.VocabSize())
	var total time.Duration
	steps := 0
	for _, doc := range docs {
		if steps >= stepCap {
			break
		}
		sess := b.NewSession()
		ids := tok.Encode(doc)
		ids = append(ids, tokenizer.EosID)
		for _, id := range ids {
			if steps >= stepCap {
				break
			}
			t0 := time.Now()
			sess.FillMask(mask)
			total += time.Since(t0)
			steps++
			if err := sess.Accept(id); err != nil {
				panic("experiments: replay: " + err.Error())
			}
		}
	}
	if steps == 0 {
		return 0, 0
	}
	return total / time.Duration(steps), steps
}

// cfgTask describes one CFG workload for Figure 9 / Table 3.
type cfgTask struct {
	name    string
	grammar *grammar.Grammar
	docs    []string
}

func (s *Suite) cfgTasks() []cfgTask {
	return []cfgTask{
		{"CFG (JSON)", builtin.JSON(), workload.JSONDocs(s.NumDocs, 7)},
		{"CFG (XML)", builtin.XML(), workload.XMLDocs(s.NumDocs, 8)},
		{"CFG (Python DSL)", builtin.PythonDSL(), workload.PythonPrograms(s.NumDocs, 9)},
	}
}
