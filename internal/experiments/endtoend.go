package experiments

import (
	"fmt"
	"time"

	"xgrammar/internal/baselines"
	"xgrammar/internal/engine"
	"xgrammar/internal/llmsim"
	"xgrammar/internal/pda"
)

// e2eTargets returns the end-to-end workload: schema instances for the
// JSON-Schema task, JSON documents for the CFG task, repeated/cycled to the
// batch size.
func cycle(targets []string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = targets[i%len(targets)]
	}
	return out
}

// run executes one engine configuration over targets and returns metrics.
func (s *Suite) run(cfg engine.Config, targets []string, maxSteps int) engine.Metrics {
	cfg.Tok = s.Tok()
	cfg.MaxSteps = maxSteps
	reqs := llmsim.NewRequests(targets, s.PromptTokens)
	met, _, err := engine.Run(cfg, reqs)
	if err != nil {
		panic("experiments: e2e run: " + err.Error())
	}
	return met
}

// Fig10 reproduces Figure 10: end-to-end time per output token (ms) versus
// batch size on Llama-3.1-8B/H100, for the JSON-Schema and CFG (JSON)
// tasks, across serving-engine configurations.
func (s *Suite) Fig10() *Table {
	t := &Table{
		ID:    "fig10",
		Title: "End-to-end TPOT (ms) vs batch size, Llama-3.1-8B on H100",
		Paper: "batch 1/16/32 -- llama.cpp 187/790/1432; vLLM+Outlines 11/93/164 (CFG 185/736/1252 and 137/2311/timeout); SGLang+XGrammar 7/10/12; XGrammar engine 6/9/12",
	}
	header := []string{"task", "engine"}
	for _, b := range s.BatchSizes {
		header = append(header, fmt.Sprintf("batch %d", b))
	}
	t.Header = header
	profile := llmsim.H100Llama8B()

	schemas := s.Schemas()
	schemaArt := schemas[0]
	schemaTargets := make([]string, 0, len(schemas))
	for _, a := range schemas {
		schemaTargets = append(schemaTargets, a.Task.Instance)
	}
	xgJSON, xgJSONInit := s.XGrammarJSON()
	jsonDocs := s.cfgTasks()[0].docs
	jsonPlain := s.PDA("json-plain", s.cfgTasks()[0].grammar, pda.Options{})

	type rowCfg struct {
		task    string
		name    string
		mode    engine.Mode
		backend baselines.Backend
		init    time.Duration
		jf      bool
		targets []string
		slow    bool
	}
	rows := []rowCfg{
		{"JSON Schema", "llama.cpp", engine.Serial, schemaArt.LlamaCpp, 0, false, []string{schemaArt.Task.Instance}, true},
		{"JSON Schema", "vLLM + Outlines", engine.Serial, schemaArt.FSM, schemaArt.FSMInit, false, []string{schemaArt.Task.Instance}, false},
		{"JSON Schema", "SGLang + XGrammar", engine.Overlap, schemaArt.XG, schemaArt.XGInit, false, []string{schemaArt.Task.Instance}, false},
		{"JSON Schema", "XGrammar engine", engine.Overlap, schemaArt.XG, schemaArt.XGInit, true, []string{schemaArt.Task.Instance}, false},
		{"CFG (JSON)", "llama.cpp", engine.Serial, baselines.NewLlamaCpp(jsonPlain, s.Tok()), 0, false, jsonDocs, true},
		{"CFG (JSON)", "vLLM + Outlines", engine.Serial, baselines.NewOutlinesCFG(jsonPlain, s.Tok()), 0, false, jsonDocs, true},
		{"CFG (JSON)", "SGLang + XGrammar", engine.Overlap, xgJSON, xgJSONInit, false, jsonDocs, false},
		{"CFG (JSON)", "XGrammar engine", engine.Overlap, xgJSON, xgJSONInit, true, jsonDocs, false},
	}
	_ = schemaTargets
	for _, rc := range rows {
		cells := []string{rc.task, rc.name}
		for _, batch := range s.BatchSizes {
			maxSteps := s.FastStepCap
			if rc.slow {
				maxSteps = s.SlowStepCap / batch
				if maxSteps < 3 {
					maxSteps = 3
				}
			}
			met := s.run(engine.Config{
				Model:           s.Model(profile),
				Mode:            rc.mode,
				Grammar:         rc.backend,
				JumpForward:     rc.jf,
				GrammarInitTime: rc.init,
			}, cycle(rc.targets, batch), maxSteps)
			cells = append(cells, fmtMS(met.TPOT))
		}
		t.Add(cells...)
	}
	t.Note("vocab=%d; GPU time modelled (profile %s), grammar CPU measured; slow engines step-capped", s.Vocab, profile.Name)
	return t
}

// Tab1 reproduces Table 1: TPOT (ms) across models on the JSON-Schema task
// at batch 1, Outlines backend versus XGrammar backend on the same engine.
func (s *Suite) Tab1() *Table {
	t := &Table{
		ID:     "tab1",
		Title:  "End-to-end TPOT (ms) across models (JSON-Schema, batch 1)",
		Paper:  "Llama-3.1-8B: SGLang+Outlines 44.2 vs SGLang+XGrammar 6.8; DeepSeek-V2-Lite: 15.8 vs 4.8",
		Header: []string{"model", "engine + Outlines", "engine + XGrammar"},
	}
	art := s.Schemas()[0]
	for _, profile := range []llmsim.Profile{llmsim.H100Llama8B(), llmsim.DeepSeekV2Lite()} {
		outl := s.run(engine.Config{
			Model: s.Model(profile), Mode: engine.Serial, Grammar: art.FSM, GrammarInitTime: art.FSMInit,
		}, []string{art.Task.Instance}, s.FastStepCap)
		xg := s.run(engine.Config{
			Model: s.Model(profile), Mode: engine.Overlap, Grammar: art.XG, GrammarInitTime: art.XGInit,
		}, []string{art.Task.Instance}, s.FastStepCap)
		t.Add(profile.Name, fmtMS(outl.TPOT), fmtMS(xg.TPOT))
	}
	t.Note("Outlines runs serially with its FSM-index build amortized; XGrammar overlaps preprocessing with prefill and mask generation with decoding (§3.5)")
	return t
}

// Tab2 reproduces Table 2: the overhead of enabling XGrammar on the same
// engine (MLC-LLM in the paper), JSON-Schema and CFG tasks, batches 1 and 16.
func (s *Suite) Tab2() *Table {
	t := &Table{
		ID:     "tab2",
		Title:  "TPOT (ms) with and without XGrammar (overlapped engine)",
		Paper:  "JSON Schema: 6.2 vs 6.3 (b1), 9.0 vs 9.2 (b16); CFG: 6.3 vs 6.3, 9.0 vs 9.1 -- near-zero overhead",
		Header: []string{"task", "batch", "TPOT w/o XGrammar", "TPOT w/ XGrammar", "overhead"},
	}
	profile := llmsim.H100Llama8B()
	art := s.Schemas()[0]
	xgJSON, xgJSONInit := s.XGrammarJSON()
	jsonDocs := s.cfgTasks()[0].docs
	batches := []int{1, 16}
	if s.Quick {
		batches = []int{1, 4}
	}
	for _, tc := range []struct {
		name    string
		backend baselines.Backend
		init    time.Duration
		targets []string
	}{
		{"JSON Schema", art.XG, art.XGInit, []string{art.Task.Instance}},
		{"CFG (JSON)", xgJSON, xgJSONInit, jsonDocs},
	} {
		for _, batch := range batches {
			targets := cycle(tc.targets, batch)
			off := s.run(engine.Config{Model: s.Model(profile), Mode: engine.Unconstrained}, targets, s.FastStepCap)
			on := s.run(engine.Config{
				Model: s.Model(profile), Mode: engine.Overlap, Grammar: tc.backend, GrammarInitTime: tc.init,
			}, targets, s.FastStepCap)
			over := "0%"
			if off.TPOT > 0 {
				over = fmt.Sprintf("%.1f%%", 100*float64(on.TPOT-off.TPOT)/float64(off.TPOT))
			}
			t.Add(tc.name, fmt.Sprintf("%d", batch), fmtMS(off.TPOT), fmtMS(on.TPOT), over)
		}
	}
	return t
}

// Fig11 reproduces Figure 11 (Appendix B): jump-forward decoding combined
// with constrained decoding, JSON-Schema task on RTX 4090, batch 1.
func (s *Suite) Fig11() *Table {
	t := &Table{
		ID:     "fig11",
		Title:  "TPOT (ms) with and without jump-forward decoding (JSON Schema, batch 1, RTX 4090)",
		Paper:  "Outlines 44.2 -> 31.5; XGrammar 6.8 -> 5.4",
		Header: []string{"engine", "w/o jump-forward", "w/ jump-forward", "jf tokens"},
	}
	profile := llmsim.RTX4090Llama8B()
	art := s.Schemas()[0]
	for _, rc := range []struct {
		name    string
		mode    engine.Mode
		backend baselines.Backend
		init    time.Duration
	}{
		{"Outlines", engine.Serial, art.FSM, art.FSMInit},
		{"XGrammar", engine.Overlap, art.XG, art.XGInit},
	} {
		plain := s.run(engine.Config{Model: s.Model(profile), Mode: rc.mode, Grammar: rc.backend, GrammarInitTime: rc.init},
			[]string{art.Task.Instance}, s.FastStepCap)
		jf := s.run(engine.Config{Model: s.Model(profile), Mode: rc.mode, Grammar: rc.backend, GrammarInitTime: rc.init, JumpForward: true},
			[]string{art.Task.Instance}, s.FastStepCap)
		t.Add(rc.name, fmtMS(plain.TPOT), fmtMS(jf.TPOT), fmt.Sprintf("%d", jf.JumpForwardTokens))
	}
	t.Note("jump-forward inserts deterministic continuations without decode steps; both engines support it here, as in the paper")
	return t
}

// Fig12 reproduces Figure 12 (Appendix C): on-device structured vs
// unstructured generation (TTFT and TPOT) on the WebLLM-style profiles.
func (s *Suite) Fig12() *Table {
	t := &Table{
		ID:     "fig12",
		Title:  "On-device structured vs unstructured generation",
		Paper:  "M3 Max Llama-8B: TTFT 1531.9 vs 1365.1ms, TPOT 31.9 vs 29.7ms; iPhone Qwen-0.5B: TTFT 1179.1 vs 955.5ms, TPOT 48.1 vs 47.3ms (near-zero overhead)",
		Header: []string{"device/model", "TTFT unstruct (ms)", "TTFT struct (ms)", "TPOT unstruct (ms)", "TPOT struct (ms)"},
	}
	art := s.Schemas()[0]
	for _, profile := range []llmsim.Profile{llmsim.M3MaxLlama8B(), llmsim.IPhoneQwen05B()} {
		un := s.run(engine.Config{Model: s.Model(profile), Mode: engine.Unconstrained},
			[]string{art.Task.Instance}, s.FastStepCap)
		st := s.run(engine.Config{Model: s.Model(profile), Mode: engine.Overlap, Grammar: art.XG, GrammarInitTime: art.XGInit},
			[]string{art.Task.Instance}, s.FastStepCap)
		t.Add(profile.Name, fmtMS(un.TTFT), fmtMS(st.TTFT), fmtMS(un.TPOT), fmtMS(st.TPOT))
	}
	t.Note("prompt %d tokens; structured runs include grammar preprocessing overlapped with prefill", s.PromptTokens)
	return t
}
