package experiments

import (
	"fmt"
	"os"
	"time"

	"xgrammar"
	"xgrammar/internal/workload"
)

// StoreResult is one cold-vs-warm record of the disk-backed compiled-
// grammar store benchmark (part of cmd/xgbench's -json output): how much of
// the preprocessing cost a warm load-from-disk recovers relative to a cold
// compile (PDA construction plus the full-vocabulary mask scan).
type StoreResult struct {
	Grammar       string  `json:"grammar"`
	ColdCompileMS float64 `json:"cold_compile_ms"`
	WarmLoadMS    float64 `json:"warm_load_ms"`
	Speedup       float64 `json:"speedup"`
	BlobKB        float64 `json:"blob_kb"`
}

// StoreBench measures, per grammar, a cold compile (fresh compiler, empty
// store: compile + persist) against a warm start (fresh compiler, same
// store: load the blob, no vocabulary rescan). Results are memoized.
func (s *Suite) StoreBench() []StoreResult {
	if s.storeResults != nil {
		return s.storeResults
	}
	info := xgrammar.DefaultTokenizer(s.Vocab)
	dir, err := os.MkdirTemp("", "xgbench-store-*")
	if err != nil {
		panic("experiments: store: " + err.Error())
	}
	defer os.RemoveAll(dir)

	cases := []struct {
		name string
		spec xgrammar.GrammarSpec
	}{
		{"builtin JSON", xgrammar.GrammarSpec{Kind: xgrammar.KindBuiltin, Source: "json"}},
		{"JSON Schema", xgrammar.GrammarSpec{
			Kind:   xgrammar.KindJSONSchema,
			Source: string(workload.SchemaTasks(1, 2025)[0].Schema),
		}},
		{"regex (ISO date)", xgrammar.GrammarSpec{
			Kind:   xgrammar.KindRegex,
			Source: `^[0-9]{4}-[0-9]{2}-[0-9]{2}$`,
		}},
	}
	out := make([]StoreResult, 0, len(cases))
	for _, c := range cases {
		// Cold: compile from source and persist the blob.
		cold := xgrammar.NewCompiler(info)
		if err := cold.AttachStore(dir); err != nil {
			panic("experiments: store: " + err.Error())
		}
		t0 := time.Now()
		if _, err := cold.CompileSpec(c.spec); err != nil {
			panic("experiments: store: " + err.Error())
		}
		coldDur := time.Since(t0)

		// Warm: a fresh compiler over the same directory loads the blob.
		warm := xgrammar.NewCompiler(info)
		if err := warm.AttachStore(dir); err != nil {
			panic("experiments: store: " + err.Error())
		}
		t1 := time.Now()
		if _, err := warm.CompileSpec(c.spec); err != nil {
			panic("experiments: store: " + err.Error())
		}
		warmDur := time.Since(t1)
		if cs := warm.CompileCacheStats(); cs.Compiles != 0 {
			panic("experiments: store: warm path recompiled")
		}

		var blobKB float64
		if id, err := warm.SpecID(c.spec); err == nil {
			blobKB = float64(warm.StoreBlobSize(id)) / 1024
		}
		speedup := 0.0
		if warmDur > 0 {
			speedup = float64(coldDur) / float64(warmDur)
		}
		out = append(out, StoreResult{
			Grammar:       c.name,
			ColdCompileMS: float64(coldDur.Nanoseconds()) / 1e6,
			WarmLoadMS:    float64(warmDur.Nanoseconds()) / 1e6,
			Speedup:       speedup,
			BlobKB:        blobKB,
		})
	}
	s.storeResults = out
	return out
}

// Store renders the store benchmark as an experiment table.
func (s *Suite) Store() *Table {
	t := &Table{
		ID:    "store",
		Title: "Disk-backed compiled-grammar store (cold compile vs. warm load)",
		Paper: "compile once, serve many: the preprocessing artifact survives restarts",
		Header: []string{
			"grammar", "cold compile ms", "warm load ms", "speedup", "blob KB",
		},
	}
	for _, r := range s.StoreBench() {
		t.Add(
			r.Grammar,
			fmt.Sprintf("%.2f", r.ColdCompileMS),
			fmt.Sprintf("%.2f", r.WarmLoadMS),
			fmt.Sprintf("%.1fx", r.Speedup),
			fmt.Sprintf("%.1f", r.BlobKB),
		)
	}
	t.Note("cold = fresh compiler, empty store (PDA build + vocabulary scan + blob write); warm = fresh compiler, same store (blob load, no rescan)")
	t.Note("vocab=%d; the warm path is what xgserve pays on its first request after a restart", s.Vocab)
	return t
}
