package experiments

import (
	"fmt"
	"time"

	"xgrammar/internal/baselines"
	"xgrammar/internal/maskcache"
	"xgrammar/internal/pda"
)

// Fig9 reproduces Figure 9: per-token mask generation latency (µs) for the
// four tasks (JSON Schema, CFG JSON, CFG XML, CFG Python DSL) across the
// four engines. lm-format-enforcer supports only the regex-representable
// JSON Schema task, as in the paper.
func (s *Suite) Fig9() *Table {
	t := &Table{
		ID:     "fig9",
		Title:  "Per-token mask generation latency (us/token)",
		Paper:  "XGrammar 36/36/52/191us; best baseline 125us (schema, Outlines) and 4.7-42.6ms (CFGs); up to 3x (schema) and >100x (CFG) speedups",
		Header: []string{"engine", "JSON Schema", "CFG (JSON)", "CFG (XML)", "CFG (Python DSL)"},
	}

	type cell struct {
		lat   time.Duration
		steps int
		ok    bool
	}
	engines := []string{"xgrammar", "outlines", "llama.cpp-grammar", "lm-format-enforcer"}
	results := map[string]map[string]cell{}
	for _, e := range engines {
		results[e] = map[string]cell{}
	}

	// JSON Schema task: per-schema grammars, regex engines applicable.
	schemas := s.Schemas()
	accum := func(engine, task string, b baselines.Backend, docs []string, cap int) {
		lat, steps := s.measureMaskLatency(b, docs, cap)
		c := results[engine][task]
		c.lat += lat * time.Duration(steps)
		c.steps += steps
		c.ok = true
		results[engine][task] = c
	}
	for _, art := range schemas {
		docs := []string{art.Task.Instance}
		accum("xgrammar", "JSON Schema", art.XG, docs, s.FastStepCap)
		if art.FSM != nil {
			accum("outlines", "JSON Schema", art.FSM, docs, s.FastStepCap)
		}
		if art.CharWalk != nil {
			accum("lm-format-enforcer", "JSON Schema", art.CharWalk, docs, s.SlowStepCap)
		}
		accum("llama.cpp-grammar", "JSON Schema", art.LlamaCpp, docs, s.SlowStepCap)
	}

	// CFG tasks.
	for _, task := range s.cfgTasks() {
		key := "fig9-" + task.name
		pOpt := s.PDA(key+"-opt", task.grammar, pda.AllOptimizations)
		cache := s.Cache(key+"-opt", pOpt, maskcache.Options{ContextExpansion: true})
		xg := baselines.NewXGBackend(pOpt, cache, s.Tok(), "xgrammar")
		outl := baselines.NewOutlinesCFG(pOpt, s.Tok())
		lcp := baselines.NewLlamaCpp(s.PDA(key+"-plain", task.grammar, pda.Options{}), s.Tok())
		accum("xgrammar", task.name, xg, task.docs, s.FastStepCap)
		accum("outlines", task.name, outl, task.docs, s.SlowStepCap)
		accum("llama.cpp-grammar", task.name, lcp, task.docs, s.SlowStepCap)
	}

	tasks := []string{"JSON Schema", "CFG (JSON)", "CFG (XML)", "CFG (Python DSL)"}
	for _, e := range engines {
		row := []string{e}
		for _, task := range tasks {
			c := results[e][task]
			if !c.ok || c.steps == 0 {
				row = append(row, "n/s")
				continue
			}
			row = append(row, fmtUS(c.lat/time.Duration(c.steps)))
		}
		t.Add(row...)
	}
	t.Note("vocab=%d; full-scan engines measured over %d steps/task; n/s = grammar class not supported", s.Vocab, s.SlowStepCap)
	t.Note("outlines uses FSM token indexing on the schema task and the interpreted CFG path otherwise, as in the paper")
	return t
}

// Tab3 reproduces Table 3: the cumulative ablation of the optimization
// techniques, measured as mean per-token mask generation latency on the
// CFG (unconstrained JSON) task.
func (s *Suite) Tab3() *Table {
	t := &Table{
		ID:     "tab3",
		Title:  "Ablation of optimization techniques (CFG JSON mask generation)",
		Paper:  "PDA baseline 65.776ms; +node merging 38.280 (1.7x); +adaptive cache 0.154 (248.6x); +rule inlining 0.035 (4.4x); +context expansion 0.018ms (1.9x)",
		Header: []string{"configuration", "per-token latency (ms)", "speedup vs prev"},
	}
	jsonDocs := s.cfgTasks()[0].docs
	g := s.cfgTasks()[0].grammar

	type config struct {
		name string
		mk   func() baselines.Backend
		cap  int
	}
	configs := []config{
		{"PDA baseline", func() baselines.Backend {
			return baselines.NewLlamaCpp(s.PDA("tab3-plain", g, pda.Options{}), s.Tok())
		}, s.SlowStepCap},
		{"+ node merging", func() baselines.Backend {
			return baselines.NewLlamaCpp(s.PDA("tab3-merge", g, pda.Options{NodeMerging: true}), s.Tok())
		}, s.SlowStepCap},
		{"+ adaptive token mask cache", func() baselines.Backend {
			p := s.PDA("tab3-merge", g, pda.Options{NodeMerging: true})
			c := s.Cache("tab3-cache", p, maskcache.Options{})
			return baselines.NewXGBackend(p, c, s.Tok(), "xgrammar")
		}, s.FastStepCap},
		{"+ rule inlining", func() baselines.Backend {
			p := s.PDA("tab3-inline", g, pda.AllOptimizations)
			c := s.Cache("tab3-inline", p, maskcache.Options{})
			return baselines.NewXGBackend(p, c, s.Tok(), "xgrammar")
		}, s.FastStepCap},
		{"+ context expansion", func() baselines.Backend {
			p := s.PDA("tab3-inline", g, pda.AllOptimizations)
			c := s.Cache("tab3-ctx", p, maskcache.Options{ContextExpansion: true})
			return baselines.NewXGBackend(p, c, s.Tok(), "xgrammar")
		}, s.FastStepCap},
	}
	var prev time.Duration
	for _, cfg := range configs {
		lat, _ := s.measureMaskLatency(cfg.mk(), jsonDocs, cfg.cap)
		speedup := "-"
		if prev > 0 && lat > 0 {
			speedup = fmt.Sprintf("%.1fx", float64(prev)/float64(lat))
		}
		t.Add(cfg.name, fmtMS(lat), speedup)
		prev = lat
	}
	t.Note("vocab=%d; each row adds one optimization on top of the previous row, as in the paper", s.Vocab)
	return t
}
