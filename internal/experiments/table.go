// Package experiments regenerates every table and figure of the paper's
// evaluation (§4, Appendices B and C) on the simulated substrate. Each
// experiment returns a Table that prints in the same shape as the paper's
// result, with a note recording what the paper reported.
package experiments

import (
	"fmt"
	"strings"
	"time"
)

// Table is a printable experiment result.
type Table struct {
	ID     string // e.g. "fig9"
	Title  string
	Paper  string // what the paper reports, for EXPERIMENTS.md
	Header []string
	Rows   [][]string
	Notes  []string
}

// Add appends a row.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Note appends a free-text note line.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	if t.Paper != "" {
		fmt.Fprintf(&sb, "paper: %s\n", t.Paper)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Markdown renders the table as GitHub-flavored markdown (for EXPERIMENTS.md).
func (t *Table) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s: %s\n\n", t.ID, t.Title)
	if t.Paper != "" {
		fmt.Fprintf(&sb, "*Paper:* %s\n\n", t.Paper)
	}
	sb.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat(" --- |", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "\n*Note:* %s\n", n)
	}
	sb.WriteByte('\n')
	return sb.String()
}

// fmtUS formats a duration as microseconds with sensible precision.
func fmtUS(d time.Duration) string {
	us := float64(d.Nanoseconds()) / 1e3
	switch {
	case us >= 100000:
		return fmt.Sprintf("%.0f", us)
	case us >= 100:
		return fmt.Sprintf("%.1f", us)
	default:
		return fmt.Sprintf("%.2f", us)
	}
}

// fmtMS formats a duration as milliseconds.
func fmtMS(d time.Duration) string {
	ms := float64(d.Nanoseconds()) / 1e6
	switch {
	case ms >= 100:
		return fmt.Sprintf("%.0f", ms)
	case ms >= 10:
		return fmt.Sprintf("%.1f", ms)
	default:
		return fmt.Sprintf("%.2f", ms)
	}
}
