package experiments

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"xgrammar"
	"xgrammar/internal/backend"
	"xgrammar/internal/backend/httpllm"
	"xgrammar/internal/backend/simllm"
	"xgrammar/internal/server"
)

// BackendBenchResult is one machine-readable model-backend comparison
// record: the same seeded generations served by the gateway through the
// in-process simulated sampler and through the HTTP adapter pointed at a
// loopback of that same sampler. The HTTP hop adds transport but no
// semantics, so byte_identical must hold; the latency columns price the
// transport.
type BackendBenchResult struct {
	Experiment   string  `json:"experiment"`
	Backend      string  `json:"backend"`
	Requests     int     `json:"requests"`
	OutputTokens int     `json:"output_tokens"`
	TokensPerSec float64 `json:"tokens_per_sec"`
	// Request-latency percentiles from the gateway's per-backend counters.
	LatencyP50MS float64 `json:"latency_p50_ms"`
	LatencyP99MS float64 `json:"latency_p99_ms"`
	Errors       int64   `json:"errors"`
	// ByteIdentical compares every output byte-for-byte against the
	// in-process run (trivially true for the in-process row itself).
	ByteIdentical bool `json:"byte_identical"`
}

// benchBackendSchema is the workload grammar of the backend smoke.
const benchBackendSchema = `{"type": "object", "properties": {
	"name": {"type": "string"}, "id": {"type": "integer"}},
	"required": ["name", "id"]}`

// BackendBench benchmarks the model-backend seam end-to-end: a gateway
// decodes the same seed set through its default in-process sampler and
// through the httpllm adapter looped back onto an identical sampler, through
// the unchanged batching and dispatch layers. Memoized like the other
// benchmark suites.
func (s *Suite) BackendBench() []BackendBenchResult {
	if s.backendResults != nil {
		return s.backendResults
	}
	vocab := s.Vocab
	if vocab > 2000 {
		// The smoke prices the transport seam, not the tokenizer; cap the
		// vocabulary so full mode does not spend minutes training one.
		vocab = 2000
	}
	comp := xgrammar.NewCompiler(xgrammar.DefaultTokenizer(vocab))
	eos := comp.TokenizerInfo().EOSTokenID()
	loop := httptest.NewServer(httpllm.NewLoopbackHandler(simllm.NewSampler(eos), httpllm.LoopbackOptions{}))
	defer loop.Close()

	srv := server.New(server.Config{
		Engine:      xgrammar.NewEngine(comp),
		MaxInflight: 16,
		MaxTokens:   200,
		Backends: map[string]backend.Backend{
			"loopback": httpllm.New(httpllm.Options{BaseURL: loop.URL}),
		},
	})
	gw := httptest.NewServer(srv)
	defer gw.Close()
	defer srv.Close()

	requests := s.NumDocs
	seeds := make([]int64, requests)
	for i := range seeds {
		seeds[i] = int64(1000 + i)
	}

	run := func(model string) (outs []string, tokens int, wall time.Duration) {
		t0 := time.Now()
		for _, seed := range seeds {
			body, _ := json.Marshal(server.GenerateRequest{
				GrammarRequest: server.GrammarRequest{Kind: "json_schema", Source: benchBackendSchema},
				Model:          model,
				Seed:           seed,
			})
			resp, err := http.Post(gw.URL+"/v1/generate", "application/json", strings.NewReader(string(body)))
			if err != nil {
				panic("experiments: backend bench: " + err.Error())
			}
			var r server.GenerateResponse
			if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
				panic("experiments: backend bench: " + err.Error())
			}
			resp.Body.Close()
			outs = append(outs, r.Text)
			tokens += r.Tokens
		}
		return outs, tokens, time.Since(t0)
	}

	localOuts, localTokens, localWall := run("")
	httpOuts, httpTokens, httpWall := run("loopback")
	identical := len(httpOuts) == len(localOuts)
	for i := range httpOuts {
		if httpOuts[i] != localOuts[i] {
			identical = false
			break
		}
	}

	var met server.Metrics
	resp, err := http.Get(gw.URL + "/metrics")
	if err != nil {
		panic("experiments: backend bench: " + err.Error())
	}
	if err := json.NewDecoder(resp.Body).Decode(&met); err != nil {
		panic("experiments: backend bench: " + err.Error())
	}
	resp.Body.Close()

	record := func(name string, tokens int, wall time.Duration, identical bool) BackendBenchResult {
		bm := met.Backends[name]
		return BackendBenchResult{
			Experiment:    "backend seam: " + name,
			Backend:       name,
			Requests:      requests,
			OutputTokens:  tokens,
			TokensPerSec:  float64(tokens) / wall.Seconds(),
			LatencyP50MS:  bm.LatencyP50MS,
			LatencyP99MS:  bm.LatencyP99MS,
			Errors:        bm.Errors,
			ByteIdentical: identical,
		}
	}
	s.backendResults = []BackendBenchResult{
		record("sim", localTokens, localWall, true),
		record("http", httpTokens, httpWall, identical),
	}
	return s.backendResults
}

// Backend renders the model-backend comparison as an experiment table.
func (s *Suite) Backend() *Table {
	t := &Table{
		ID:    "backend",
		Title: "Model-backend seam: in-process sampler vs HTTP loopback adapter",
		Paper: "the Backend interface carries the grammar bitmask to the model per decode step; the loopback prices the transport without changing semantics",
		Header: []string{
			"backend", "requests", "tokens", "tok/s", "req p50 ms", "req p99 ms", "errors", "identical",
		},
	}
	for _, r := range s.BackendBench() {
		t.Add(
			r.Backend,
			fmt.Sprintf("%d", r.Requests),
			fmt.Sprintf("%d", r.OutputTokens),
			fmt.Sprintf("%.0f", r.TokensPerSec),
			fmt.Sprintf("%.2f", r.LatencyP50MS),
			fmt.Sprintf("%.2f", r.LatencyP99MS),
			fmt.Sprintf("%d", r.Errors),
			fmt.Sprintf("%v", r.ByteIdentical),
		)
	}
	t.Note("both rows decode the same seeds through the same gateway; the http row crosses the httpllm wire protocol into a loopback of the identical sampler")
	t.Note("'identical' compares every output byte-for-byte against the in-process run — the adapter must add transport, not semantics")
	return t
}
