package experiments

import (
	"fmt"
	"strings"
	"time"

	"xgrammar"
	"xgrammar/internal/llmsim"
	"xgrammar/internal/quantile"
)

// TagsResult is one machine-readable structural-tag benchmark record: the
// per-phase cost profile of tool-calling generations, where free text runs
// through the trivial all-allowed mask and tag segments pay the compiled
// segment grammar.
type TagsResult struct {
	Phase        string  `json:"phase"` // free | in_tag | overall
	Tokens       int     `json:"tokens"`
	Segments     int     `json:"segments"`
	TokensPerSec float64 `json:"tokens_per_sec"`
	MeanFillUS   float64 `json:"mean_fill_us"`
	FillP50US    float64 `json:"fill_p50_us"`
	FillP99US    float64 `json:"fill_p99_us"`
}

const tagsWeatherSchema = `{
	"type": "object",
	"properties": {
		"city": {"type": "string", "maxLength": 12},
		"days": {"type": "integer", "minimum": 1, "maximum": 14}
	},
	"required": ["city", "days"]
}`

const tagsSearchSchema = `{
	"type": "object",
	"properties": {"query": {"type": "string", "maxLength": 16}},
	"required": ["query"]
}`

// tagsTargets builds tool-calling transcripts: prose interleaved with
// schema-valid tagged segments.
func tagsTargets(n int) []string {
	prose := []string{
		"let me look that up for you ",
		"checking the forecast now ",
		"that needs a search ",
		"combining both sources ",
	}
	out := make([]string, n)
	for i := range out {
		var sb strings.Builder
		sb.WriteString(prose[i%len(prose)])
		fmt.Fprintf(&sb, `<weather>{"city": "city%d", "days": %d}</weather> then `, i%7, 1+i%14)
		fmt.Fprintf(&sb, `<search>{"query": "topic %d"}</search> done.`, i%9)
		out[i] = sb.String()
	}
	return out
}

// TagsBench teacher-forces tool-calling transcripts through the
// structural-tag dispatcher, timing every mask fill and attributing it to
// the phase it was computed in. Throughput models a batch-1 H100 decode
// with the fill overlapped (§3.5): wall per token = max(GPU step, fill) +
// sample. Results are memoized so the table and -json output share one run.
func (s *Suite) TagsBench() []TagsResult {
	if s.tagsResults != nil {
		return s.tagsResults
	}
	info := xgrammar.DefaultTokenizer(s.Vocab)
	comp := xgrammar.NewCompiler(info)
	set, err := comp.CompileStructuralTags(xgrammar.StructuralTags{
		{Begin: "<weather>", Grammar: xgrammar.GrammarSpec{Kind: xgrammar.KindJSONSchema, Source: tagsWeatherSchema}, End: "</weather>"},
		{Begin: "<search>", Grammar: xgrammar.GrammarSpec{Kind: xgrammar.KindJSONSchema, Source: tagsSearchSchema}, End: "</search>"},
	})
	if err != nil {
		panic("experiments: tags: " + err.Error())
	}
	profile := llmsim.H100Llama8B()
	gpu := profile.DecodeStep(1)

	n := s.NumDocs
	type phaseAgg struct {
		tokens   int
		fill     time.Duration
		wall     time.Duration
		lats     []time.Duration
		segments int
	}
	var free, inTag phaseAgg
	disp := set.Dispatch()
	for _, target := range tagsTargets(n) {
		sess := disp.Acquire()
		for _, id := range info.Encode(target) {
			agg := &free
			if sess.InTag() {
				agg = &inTag
			}
			t0 := time.Now()
			sess.Fill()
			dt := time.Since(t0)
			wasTag := sess.InTag()
			if err := sess.Accept(id); err != nil {
				panic(fmt.Sprintf("experiments: tags: target %q token %d: %v", target, id, err))
			}
			agg.tokens++
			agg.fill += dt
			agg.wall += maxDuration(gpu, dt) + profile.SamplePerStep
			agg.lats = append(agg.lats, dt)
			if wasTag && !sess.InTag() {
				inTag.segments++
			}
		}
		sess.Close()
	}

	mk := func(phase string, a phaseAgg) TagsResult {
		q := quantile.Durations(a.lats, 0.50, 0.99)
		r := TagsResult{
			Phase:     phase,
			Tokens:    a.tokens,
			Segments:  a.segments,
			FillP50US: float64(q[0].Nanoseconds()) / 1e3,
			FillP99US: float64(q[1].Nanoseconds()) / 1e3,
		}
		if a.tokens > 0 {
			r.MeanFillUS = float64(a.fill.Nanoseconds()) / 1e3 / float64(a.tokens)
		}
		if a.wall > 0 {
			r.TokensPerSec = float64(a.tokens) / a.wall.Seconds()
		}
		return r
	}
	overall := phaseAgg{
		tokens:   free.tokens + inTag.tokens,
		fill:     free.fill + inTag.fill,
		wall:     free.wall + inTag.wall,
		lats:     append(append([]time.Duration(nil), free.lats...), inTag.lats...),
		segments: inTag.segments,
	}
	s.tagsResults = []TagsResult{mk("free", free), mk("in_tag", inTag), mk("overall", overall)}
	return s.tagsResults
}

// Tags renders the structural-tag benchmark as an experiment table.
func (s *Suite) Tags() *Table {
	t := &Table{
		ID:    "tags",
		Title: "Structural-tag dispatch (tool calling: free text + schema-constrained segments)",
		Paper: "function calling is the flagship workload; tags interleave unconstrained prose with grammar-locked tool calls",
		Header: []string{
			"phase", "tokens", "segments", "tok/s", "fill mean us", "fill p50 us", "fill p99 us",
		},
	}
	for _, r := range s.TagsBench() {
		t.Add(
			r.Phase,
			fmt.Sprintf("%d", r.Tokens),
			fmt.Sprintf("%d", r.Segments),
			fmt.Sprintf("%.0f", r.TokensPerSec),
			fmt.Sprintf("%.2f", r.MeanFillUS),
			fmt.Sprintf("%.2f", r.FillP50US),
			fmt.Sprintf("%.2f", r.FillP99US),
		)
	}
	t.Note("%d teacher-forced tool-calling transcripts, two tags (<weather>, <search>); free-text fills copy the all-allowed template, in-tag fills run the compiled segment grammar", s.NumDocs)
	t.Note("tok/s models a batch-1 H100 decode with the fill overlapped: wall = max(GPU step, fill) + sample")
	return t
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
