package experiments

import (
	"fmt"
	"runtime"
	"time"

	"xgrammar/internal/maskcache"
	"xgrammar/internal/pda"
)

// Par measures grammar-preprocessing time — the adaptive token mask cache
// build of §3.1–§3.3 — serially and with the worker-pool build, for each
// builtin grammar. Upstream XGrammar hides this cost behind a multi-threaded
// compiler; this table reports how much of it the Go worker pool recovers on
// the current machine.
func (s *Suite) Par() *Table {
	workers := runtime.GOMAXPROCS(0)
	t := &Table{
		ID:    "par",
		Title: "Parallel mask-cache build (preprocessing speedup)",
		Paper: "upstream XGrammar parallelizes grammar compilation across CPU threads; output is byte-identical to the serial build",
		Header: []string{
			"grammar", "PDA nodes", "serial build", fmt.Sprintf("parallel build (%d workers)", workers), "speedup",
		},
	}
	for _, task := range s.cfgTasks() {
		p := s.PDA("par-"+task.name, task.grammar, pda.AllOptimizations)
		// Warm up heap and caches so the serial timing isn't inflated by
		// first-build allocation effects.
		maskcache.Build(p, s.Tok(), maskcache.Options{ContextExpansion: true, Workers: 1})
		t0 := time.Now()
		maskcache.Build(p, s.Tok(), maskcache.Options{ContextExpansion: true, Workers: 1})
		serial := time.Since(t0)
		t1 := time.Now()
		maskcache.Build(p, s.Tok(), maskcache.Options{ContextExpansion: true})
		par := time.Since(t1)
		speedup := "-"
		if par > 0 {
			speedup = fmt.Sprintf("%.2fx", float64(serial)/float64(par))
		}
		t.Add(
			task.name,
			fmt.Sprintf("%d", p.NumNodes()),
			serial.Round(time.Microsecond).String(),
			par.Round(time.Microsecond).String(),
			speedup,
		)
	}
	t.Note("vocab=%d; each PDA node's vocabulary scan is independent, so the build fans out across a bounded worker pool", s.Vocab)
	t.Note("speedup tracks available cores (GOMAXPROCS=%d here); masks and statistics are identical for any worker count", workers)
	return t
}
