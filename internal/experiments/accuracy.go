package experiments

import (
	"fmt"
	"math/rand"

	"xgrammar/internal/baselines"
	"xgrammar/internal/builtin"
	"xgrammar/internal/engine"
	"xgrammar/internal/jsonschema"
	"xgrammar/internal/llmsim"
	"xgrammar/internal/maskcache"
	"xgrammar/internal/matcher"
	"xgrammar/internal/pda"
	"xgrammar/internal/workload"
)

// validateAgainst reports whether text is a complete match of the grammar.
func validateAgainst(p *pda.PDA, text string) bool {
	m := matcher.New(matcher.NewExec(p), 0)
	return m.Advance([]byte(text)) && m.CanTerminate()
}

// Tab4 reproduces Table 4: syntactic accuracy of structured-generation
// tasks with and without XGrammar. The unconstrained teacher-forced model
// exhibits the paper's failure modes (explanatory prose around the payload,
// wrong value types); the constrained run masks those tokens out.
func (s *Suite) Tab4() *Table {
	t := &Table{
		ID:     "tab4",
		Title:  "Syntactic accuracy with and without XGrammar",
		Paper:  "function calling 62% -> 100%; XML code generation 80% -> 100%",
		Header: []string{"task", "accuracy w/o XGrammar", "accuracy w/ XGrammar"},
	}
	n := 50
	if s.Quick {
		n = 12
	}
	rng := rand.New(rand.NewSource(404))

	// Function calling: schema-guided JSON generation; one grammar per task.
	tasks := workload.SchemaTasks(n, 777)
	fcOK, fcOKConstrained := 0, 0
	for _, task := range tasks {
		g, err := jsonschema.Compile(task.Schema, jsonschema.Options{})
		if err != nil {
			panic("experiments: " + err.Error())
		}
		p, err := pda.Compile(g, pda.AllOptimizations)
		if err != nil {
			panic("experiments: " + err.Error())
		}
		noisy, _ := llmsim.MakeNoisy(task.Instance, llmsim.FunctionCallingNoise(), rng)
		if validateAgainst(p, noisy) {
			fcOK++
		}
		backend := xgBackend(p, maskcache.Build(p, s.Tok(), maskcacheOptions()), s)
		if s.constrainedOutputValid(p, backend, task.Instance) {
			fcOKConstrained++
		}
	}
	t.Add("Function calling",
		fmt.Sprintf("%d%%", 100*fcOK/len(tasks)),
		fmt.Sprintf("%d%%", 100*fcOKConstrained/len(tasks)))

	// XML code generation: one shared grammar.
	xmlDocs := workload.XMLDocs(n, 778)
	xmlPDA := s.PDA("tab4-xml", builtin.XML(), pda.AllOptimizations)
	xmlBackend := xgBackend(xmlPDA, s.Cache("tab4-xml", xmlPDA, maskcacheOptions()), s)
	xmlOK, xmlOKConstrained := 0, 0
	for _, doc := range xmlDocs {
		noisy, _ := llmsim.MakeNoisy(doc, llmsim.XMLGenerationNoise(), rng)
		if validateAgainst(xmlPDA, noisy) {
			xmlOK++
		}
		if s.constrainedOutputValid(xmlPDA, xmlBackend, doc) {
			xmlOKConstrained++
		}
	}
	t.Add("XML code generation",
		fmt.Sprintf("%d%%", 100*xmlOK/len(xmlDocs)),
		fmt.Sprintf("%d%%", 100*xmlOKConstrained/len(xmlDocs)))
	t.Note("unconstrained outputs wrap payloads in prose or corrupt value types (llmsim noise); constrained decoding masks those continuations out")
	return t
}

// constrainedOutputValid runs the constrained engine on the clean target
// and validates the produced text — end to end, not by assumption.
func (s *Suite) constrainedOutputValid(p *pda.PDA, backend *baselines.XGBackend, target string) bool {
	met, outs, err := engine.Run(engine.Config{
		Model:    s.Model(llmsim.H100Llama8B()),
		Mode:     engine.Overlap,
		Grammar:  backend,
		Tok:      s.Tok(),
		MaxSteps: s.FastStepCap,
	}, llmsim.NewRequests([]string{target}, s.PromptTokens))
	if err != nil || met.OutputTokens == 0 {
		return false
	}
	return validateAgainst(p, outs[0])
}
