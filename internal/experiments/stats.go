package experiments

import (
	"fmt"

	"xgrammar/internal/baselines"
	"xgrammar/internal/maskcache"
	"xgrammar/internal/pda"
)

// maskcacheOptions returns the default (full) cache options; a tiny helper
// so accuracy.go reads cleanly.
func maskcacheOptions() maskcache.Options {
	return maskcache.Options{ContextExpansion: true}
}

func xgBackend(p *pda.PDA, c *maskcache.Cache, s *Suite) *baselines.XGBackend {
	return baselines.NewXGBackend(p, c, s.Tok(), "xgrammar")
}

// Stats reproduces the in-text statistics of §3.1–§3.3: the fraction of
// context-dependent tokens, the effect of context expansion, the adaptive
// storage saving, and the prefix-sharing saving during preprocessing.
func (s *Suite) Stats() *Table {
	t := &Table{
		ID:    "stats",
		Title: "Preprocessing statistics (paper §3.1–§3.3 claims)",
		Paper: "JSON grammar, Llama-3.1 128k vocab: ctx-dependent 1134 of 128k (<1%); context expansion 1134 -> 120 (-90%); storage 160MB -> 0.46MB (0.2%); prefix sharing cuts chars to 30%",
		Header: []string{
			"grammar", "PDA nodes", "ctx-dep/node (no exp)", "ctx-dep/node (exp)",
			"reduction", "adaptive KB", "bitset KB", "ratio", "chars stepped",
		},
	}
	for _, task := range s.cfgTasks() {
		key := "stats-" + task.name
		p := s.PDA(key, task.grammar, pda.AllOptimizations)
		plain := s.Cache(key+"-plain", p, maskcache.Options{})
		exp := s.Cache(key+"-exp", p, maskcache.Options{ContextExpansion: true})
		ps, es := plain.Stats(), exp.Stats()
		red := "-"
		if ps.CtxDependent > 0 {
			red = fmt.Sprintf("%.1f%%", 100*(1-float64(es.CtxDependent)/float64(ps.CtxDependent)))
		}
		t.Add(
			task.name,
			fmt.Sprintf("%d", p.NumNodes()),
			fmt.Sprintf("%.1f", float64(ps.CtxDependent)/float64(ps.Nodes)),
			fmt.Sprintf("%.1f", float64(es.CtxDependent)/float64(es.Nodes)),
			red,
			fmt.Sprintf("%.1f", float64(es.StorageBytes)/1024),
			fmt.Sprintf("%.1f", float64(es.FullBitsetBytes)/1024),
			fmt.Sprintf("%.1f%%", 100*float64(es.StorageBytes)/float64(es.FullBitsetBytes)),
			fmt.Sprintf("%.1f%%", 100*float64(es.CharsStepped)/float64(es.CharsTotal)),
		)
	}
	t.Note("vocab=%d (paper: 128k); ctx-dep/node is the mean number of context-dependent tokens per automaton node", s.Vocab)
	t.Note("'chars stepped' is the fraction of token bytes actually executed thanks to persistent-stack prefix sharing (§3.3)")
	return t
}

// All runs every experiment in paper order.
func (s *Suite) All() []*Table {
	return []*Table{
		s.Fig9(),
		s.Fig10(),
		s.Tab1(),
		s.Tab2(),
		s.Tab3(),
		s.Tab4(),
		s.Fig11(),
		s.Fig12(),
		s.Stats(),
		s.Par(),
		s.Serve(),
		s.Spec(),
		s.Store(),
		s.Tags(),
		s.Backend(),
		s.Obs(),
		s.Prefix(),
	}
}

// ByID returns one experiment by its identifier.
func (s *Suite) ByID(id string) (*Table, bool) {
	switch id {
	case "fig9":
		return s.Fig9(), true
	case "fig10":
		return s.Fig10(), true
	case "fig11":
		return s.Fig11(), true
	case "fig12":
		return s.Fig12(), true
	case "tab1":
		return s.Tab1(), true
	case "tab2":
		return s.Tab2(), true
	case "tab3":
		return s.Tab3(), true
	case "tab4":
		return s.Tab4(), true
	case "stats":
		return s.Stats(), true
	case "par":
		return s.Par(), true
	case "serve":
		return s.Serve(), true
	case "spec":
		return s.Spec(), true
	case "store":
		return s.Store(), true
	case "tags":
		return s.Tags(), true
	case "backend":
		return s.Backend(), true
	case "obs":
		return s.Obs(), true
	case "prefix":
		return s.Prefix(), true
	}
	return nil, false
}
