package experiments

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	"xgrammar"
	"xgrammar/internal/obs"
	"xgrammar/internal/server"
)

// ObsResult is one machine-readable tracing-overhead record: the same
// seeded generations pushed through two identically configured gateways,
// one with the request-lifecycle tracer disabled and one with it enabled.
// The enabled row's overhead_pct prices the tracer against the disabled
// baseline; cmd/benchcheck gates it below 2%.
type ObsResult struct {
	Experiment   string  `json:"experiment"`
	Tracing      bool    `json:"tracing"`
	Requests     int     `json:"requests"`
	OutputTokens int     `json:"output_tokens"`
	WallMS       float64 `json:"wall_ms"`
	TokensPerSec float64 `json:"tokens_per_sec"`
	// OverheadPct is the tok/s cost of tracing versus the disabled baseline
	// (clamped at zero; zero on the baseline row).
	OverheadPct float64 `json:"overhead_pct"`
	// Traces counts completed traces retained by the enabled gateway — a
	// sanity check that the measured run actually recorded spans.
	Traces int64 `json:"traces"`
}

// obsBenchSchema keeps every request on the grammar-constrained path
// without dominating the run with compile time (compiled once, then LRU).
const obsBenchSchema = `{"type": "object", "properties": {
	"name": {"type": "string"}, "id": {"type": "integer"}},
	"required": ["name", "id"]}`

// ObsBench measures tracing overhead end-to-end: identical seeded request
// sets served in-process (no network) by a tracing-off and a tracing-on
// gateway, interleaved pass by pass so machine drift hits both sides, best
// pass kept. Memoized like the other benchmark suites.
func (s *Suite) ObsBench() []ObsResult {
	if s.obsResults != nil {
		return s.obsResults
	}
	vocab := s.Vocab
	if vocab > 2000 {
		// The bench prices per-step clock reads, not the tokenizer; cap the
		// vocabulary so full mode does not spend minutes training one.
		vocab = 2000
	}
	comp := xgrammar.NewCompiler(xgrammar.DefaultTokenizer(vocab))
	newGW := func(disabled bool) *server.Server {
		return server.New(server.Config{
			Engine:      xgrammar.NewEngine(comp),
			MaxInflight: 16,
			MaxTokens:   60,
			// A non-zero GPU step is the deployment shape the tracer is
			// priced against: per-round spans compete with a forward pass,
			// not with an infinitely fast model. 500µs is far below xgserve's
			// 2ms default, so the gate is still conservative.
			GPUStep: 500 * time.Microsecond,
			Tracer:  obs.New(obs.Config{Disabled: disabled}),
		})
	}
	off, on := newGW(true), newGW(false)
	defer off.Close()
	defer on.Close()

	requests := 2 * s.NumDocs
	if requests < 32 {
		requests = 32
	}
	// 8-way concurrency matches the deployment shape (a live continuous
	// batch, per-round costs amortized across sequences) and lengthens the
	// timed region well past scheduler-noise scale. Requests within one
	// 8-wide wave share a seed so the whole wave finishes on the same round
	// — the total round count (which the pacing timer turns into wall time)
	// stays stable across runs instead of drifting with join timing.
	const workers = 8
	bodies := make([]string, requests)
	for i := range bodies {
		b, _ := json.Marshal(server.GenerateRequest{
			GrammarRequest: server.GrammarRequest{Kind: "json_schema", Source: obsBenchSchema},
			Seed:           int64(2000 + i/workers),
		})
		bodies[i] = string(b)
	}
	run := func(gw *server.Server) (tokens int, wall time.Duration) {
		counts := make([]int, workers)
		var wg sync.WaitGroup
		t0 := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(bodies); i += workers {
					req := httptest.NewRequest("POST", "/v1/generate", strings.NewReader(bodies[i]))
					rec := httptest.NewRecorder()
					gw.ServeHTTP(rec, req)
					var r server.GenerateResponse
					if err := json.NewDecoder(rec.Body).Decode(&r); err != nil || r.FinishReason == server.FinishError {
						panic("experiments: obs bench: bad response: " + rec.Body.String())
					}
					counts[w] += r.Tokens
				}
			}(w)
		}
		wg.Wait()
		wall = time.Since(t0)
		for _, c := range counts {
			tokens += c
		}
		return tokens, wall
	}

	// One untimed pass each warms the compile cache and session pools, then
	// paired timed passes. Each pass times off and on back to back and the
	// best (lowest) on/off ratio wins: machine-wide drift slows both halves
	// of a pass, so it cancels in the ratio instead of polluting one side.
	run(off)
	run(on)
	passes := 8
	var offTokens, onTokens int
	var offWall, onWall time.Duration
	bestRatio := 0.0
	for p := 0; p < passes; p++ {
		offT, offW := run(off)
		onT, onW := run(on)
		ratio := onW.Seconds() / offW.Seconds()
		if p == 0 || ratio < bestRatio {
			bestRatio = ratio
			offTokens, offWall = offT, offW
			onTokens, onWall = onT, onW
		}
	}

	_, finished := on.Tracer().Counts()
	offTPS := float64(offTokens) / offWall.Seconds()
	onTPS := float64(onTokens) / onWall.Seconds()
	overhead := 100 * (bestRatio - 1)
	if overhead < 0 {
		overhead = 0
	}
	s.obsResults = []ObsResult{
		{
			Experiment:   "obs: tracing off",
			Requests:     requests,
			OutputTokens: offTokens,
			WallMS:       float64(offWall.Microseconds()) / 1e3,
			TokensPerSec: offTPS,
		},
		{
			Experiment:   "obs: tracing on",
			Tracing:      true,
			Requests:     requests,
			OutputTokens: onTokens,
			WallMS:       float64(onWall.Microseconds()) / 1e3,
			TokensPerSec: onTPS,
			OverheadPct:  overhead,
			Traces:       finished,
		},
	}
	return s.obsResults
}

// Obs renders the tracing-overhead comparison as an experiment table.
func (s *Suite) Obs() *Table {
	t := &Table{
		ID:    "obs",
		Title: "Request-lifecycle tracing overhead: gateway with tracer off vs on",
		Paper: "per-request spans and stage histograms must stay in the measurement-noise band; the serving numbers the paper reports assume instrumentation is effectively free",
		Header: []string{
			"tracing", "requests", "tokens", "wall ms", "tok/s", "overhead %", "traces",
		},
	}
	for _, r := range s.ObsBench() {
		t.Add(
			fmt.Sprintf("%v", r.Tracing),
			fmt.Sprintf("%d", r.Requests),
			fmt.Sprintf("%d", r.OutputTokens),
			fmt.Sprintf("%.1f", r.WallMS),
			fmt.Sprintf("%.0f", r.TokensPerSec),
			fmt.Sprintf("%.2f", r.OverheadPct),
			fmt.Sprintf("%d", r.Traces),
		)
	}
	t.Note("both gateways serve identical seeded requests in-process; passes are interleaved and the best pass kept, so machine drift hits both sides")
	t.Note("'overhead %%' is the tok/s cost of tracing versus the disabled baseline (clamped at zero); cmd/benchcheck gates it under 2%%")
	return t
}
