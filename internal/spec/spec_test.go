package spec

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"xgrammar/internal/builtin"
	"xgrammar/internal/maskcache"
	"xgrammar/internal/pda"
	"xgrammar/internal/serve"
	"xgrammar/internal/tokenizer"
)

type env struct {
	tok   *tokenizer.Tokenizer
	p     *pda.PDA
	cache *maskcache.Cache
}

var (
	envOnce sync.Once
	shared  env
)

func testEnv(t testing.TB) env {
	t.Helper()
	envOnce.Do(func() {
		tok := tokenizer.BuildDefault(600)
		p, err := pda.Compile(builtin.JSON(), pda.AllOptimizations)
		if err != nil {
			panic(err)
		}
		shared = env{tok: tok, p: p, cache: maskcache.Build(p, tok, maskcache.Options{ContextExpansion: true})}
	})
	return shared
}

func newSession(t testing.TB, e env, maxHistory int) *serve.Session {
	t.Helper()
	return serve.NewSessionPool(e.p, e.cache, e.tok, maxHistory).Acquire()
}

// teacher returns a Sampler that plays the teacher-forced target model: at
// each verified position it emits the next token of the remaining target
// (EOS once exhausted), advancing its own byte cursor only when its verdict
// is adopted — which is exactly when the position is confirmed or becomes
// the bonus.
type teacher struct {
	tok    *tokenizer.Tokenizer
	target string
	pos    int
}

func (tc *teacher) next() int32 {
	if tc.pos >= len(tc.target) {
		return tokenizer.EosID
	}
	return tc.tok.Encode(tc.target[tc.pos:])[0]
}

// sample is the Sampler: the verdict at a window position. The cursor
// advances optimistically; Step's in-order calling contract means verdict i
// is consulted only when positions 0..i-1 were confirmed.
func (tc *teacher) sample(_ int, _ []uint64) (int32, bool) {
	id := tc.next()
	if id != tokenizer.EosID {
		tc.pos += len(tc.tok.TokenBytes(id))
	}
	return id, true
}

// tokens returns the teacher-forced token stream for target.
func tokens(tok *tokenizer.Tokenizer, target string) []int32 {
	var out []int32
	pos := 0
	for pos < len(target) {
		id := tok.Encode(target[pos:])[0]
		out = append(out, id)
		pos += len(tok.TokenBytes(id))
	}
	return out
}

func maskEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// refState advances a fresh session over the token prefix and returns its
// mask — the observable state a correct speculative step must land on.
func refState(t *testing.T, e env, ids []int32) ([]uint64, *serve.Session) {
	t.Helper()
	s := newSession(t, e, 0)
	for _, id := range ids {
		if err := s.Accept(id); err != nil {
			t.Fatalf("reference accept %d: %v", id, err)
		}
	}
	s.Fill()
	return s.Mask(), s
}

const doc = `{"name": "speculative", "k": [1, 2, 3]}`

func TestFullAcceptanceAdvancesByWindowPlusBonus(t *testing.T) {
	e := testEnv(t)
	target := tokens(e.tok, doc)
	s := newSession(t, e, 0)
	defer s.Close()
	tc := &teacher{tok: e.tok, target: doc}
	var w Window

	k := 4
	res, err := Step(s, func() { s.Fill() }, SliceProposer(target[:k]), tc.sample, &w, Options{MaxDraft: k, EOS: tokenizer.EosID})
	if err != nil {
		t.Fatal(err)
	}
	if res.Proposed != k || res.Drafted != k || res.Accepted != k {
		t.Fatalf("proposed/drafted/accepted = %d/%d/%d, want %d/%d/%d", res.Proposed, res.Drafted, res.Accepted, k, k, k)
	}
	if res.RolledBack != 0 {
		t.Fatalf("rolled back %d steps on a fully accepted draft", res.RolledBack)
	}
	if !res.HasBonus || res.Bonus != target[k] {
		t.Fatalf("bonus = %d (has %v), want %d", res.Bonus, res.HasBonus, target[k])
	}
	// The session advanced by accepted+1 tokens: its state equals a fresh
	// walk of target[:k+1].
	want, ref := refState(t, e, target[:k+1])
	defer ref.Close()
	s.Fill()
	if !maskEqual(s.Mask(), want) {
		t.Fatal("session state after full acceptance differs from sequential walk")
	}
}

func TestRejectedSuffixRolledBackAtomically(t *testing.T) {
	e := testEnv(t)
	target := tokens(e.tok, doc)
	k := 5
	for mismatchAt := 0; mismatchAt < k; mismatchAt++ {
		s := newSession(t, e, 0)
		tc := &teacher{tok: e.tok, target: doc}
		draft := append([]int32(nil), target[:k]...)
		// Corrupt one draft position with a different token (a regular token
		// that differs from the target's — grammar-legal or not, the verify
		// pass must reject it and everything after it).
		draft[mismatchAt] = target[mismatchAt] + 1
		if draft[mismatchAt] == tokenizer.EosID || e.tok.IsSpecial(draft[mismatchAt]) {
			draft[mismatchAt] = tokenizer.NumSpecial // smallest regular token
		}
		var w Window
		res, err := Step(s, func() { s.Fill() }, SliceProposer(draft), tc.sample, &w, Options{MaxDraft: k, EOS: tokenizer.EosID})
		if err != nil {
			t.Fatal(err)
		}
		if res.Accepted != mismatchAt {
			t.Fatalf("mismatch@%d: accepted %d", mismatchAt, res.Accepted)
		}
		if !res.HasBonus || res.Bonus != target[mismatchAt] {
			t.Fatalf("mismatch@%d: bonus %d, want target %d", mismatchAt, res.Bonus, target[mismatchAt])
		}
		if res.RolledBack != res.Drafted-res.Accepted {
			t.Fatalf("mismatch@%d: rolled back %d, drafted-accepted = %d", mismatchAt, res.RolledBack, res.Drafted-res.Accepted)
		}
		// State must equal the sequential walk of the accepted prefix plus
		// the corrective bonus token.
		want, ref := refState(t, e, target[:mismatchAt+1])
		s.Fill()
		if !maskEqual(s.Mask(), want) {
			t.Fatalf("mismatch@%d: post-step state differs from sequential walk", mismatchAt)
		}
		ref.Close()
		s.Close()
	}
}

func TestGrammarIllegalDraftTruncatesWindow(t *testing.T) {
	e := testEnv(t)
	target := tokens(e.tok, doc)
	s := newSession(t, e, 0)
	defer s.Close()
	tc := &teacher{tok: e.tok, target: doc}

	// Find a token that the grammar forbids at position 2 (not in the mask
	// there): walk two tokens on a scratch session and scan.
	scratch := newSession(t, e, 0)
	scratch.Accept(target[0])
	scratch.Accept(target[1])
	scratch.Fill()
	illegal := int32(-1)
	for id := int32(tokenizer.NumSpecial); id < int32(e.tok.VocabSize()); id++ {
		if !maskHas(scratch.Mask(), id) {
			illegal = id
			break
		}
	}
	scratch.Close()
	if illegal < 0 {
		t.Skip("grammar allows every token at probe position")
	}

	draft := []int32{target[0], target[1], illegal, target[3]}
	var w Window
	res, err := Step(s, func() { s.Fill() }, SliceProposer(draft), tc.sample, &w, Options{MaxDraft: len(draft), EOS: tokenizer.EosID})
	if err != nil {
		t.Fatal(err)
	}
	if res.Drafted != 2 {
		t.Fatalf("drafted %d, want truncation at the illegal token (2)", res.Drafted)
	}
	if res.Proposed != 3 {
		t.Fatalf("proposed %d, want 3 (illegal token offered, rejected by mask check)", res.Proposed)
	}
	// Verification confirms the legal prefix and appends the bonus.
	if res.Accepted != 2 || !res.HasBonus || res.Bonus != target[2] {
		t.Fatalf("accepted %d bonus %d (has %v), want 2/%d", res.Accepted, res.Bonus, res.HasBonus, target[2])
	}
}

// TestWindowOverflowFailsCleanly pins the rollback-window satellite: a draft
// window whose worst-case retraction exceeds the session's history cap must
// fail before touching matcher state, so the caller can decode that step
// non-speculatively.
func TestWindowOverflowFailsCleanly(t *testing.T) {
	e := testEnv(t)
	target := tokens(e.tok, doc)
	const hist = 4
	s := newSession(t, e, hist)
	defer s.Close()
	if got := s.HistoryCap(); got != hist {
		t.Fatalf("HistoryCap = %d, want %d", got, hist)
	}
	tc := &teacher{tok: e.tok, target: doc}

	s.Fill()
	before := append([]uint64(nil), s.Mask()...)

	var w Window
	_, err := Step(s, func() { s.Fill() }, SliceProposer(target[:8]), tc.sample, &w, Options{MaxDraft: 8, EOS: tokenizer.EosID})
	if !errors.Is(err, ErrWindowExceeded) {
		t.Fatalf("err = %v, want ErrWindowExceeded", err)
	}
	// Matcher state untouched: same mask, and the sequence decodes on
	// non-speculatively.
	s.Fill()
	if !maskEqual(s.Mask(), before) {
		t.Fatal("failed speculative step mutated the session state")
	}
	for _, id := range target {
		if err := s.Accept(id); err != nil {
			t.Fatalf("non-speculative fallback accept: %v", err)
		}
	}
	if !s.CanTerminate() {
		t.Fatal("fallback walk cannot terminate")
	}

	// With jump-forward enabled every position can cost two checkpoints, so
	// even a window of hist/2+1 is refused.
	var w2 Window
	_, err = Step(s, func() { s.Fill() }, SliceProposer(target[:3]), tc.sample, &w2,
		Options{MaxDraft: 3, EOS: tokenizer.EosID, JumpForward: true})
	if !errors.Is(err, ErrWindowExceeded) {
		t.Fatalf("jump-forward window err = %v, want ErrWindowExceeded", err)
	}
}

// TestWindowWithinCapUsesRollback drives a fully rejected draft through a
// session whose history is exactly the window size: the retraction must
// succeed and the state must stay sound.
func TestWindowWithinCapUsesRollback(t *testing.T) {
	e := testEnv(t)
	target := tokens(e.tok, doc)
	const k = 4
	s := newSession(t, e, k)
	defer s.Close()
	tc := &teacher{tok: e.tok, target: doc}

	// Draft k tokens that are all wrong from position 0 but grammar-legal:
	// use the target tokens shifted by one position ({" starts a legal but
	// different path). Simpler: draft a legal alternative first token.
	s.Fill()
	alt := int32(-1)
	for id := int32(tokenizer.NumSpecial); id < int32(e.tok.VocabSize()); id++ {
		if id != target[0] && maskHas(s.Mask(), id) {
			alt = id
			break
		}
	}
	if alt < 0 {
		t.Skip("no alternative first token")
	}
	// Propose alt then whatever the grammar allows next (greedy walk).
	greedy := func(pos int, mask []uint64) (int32, bool) {
		if pos == 0 {
			return alt, true
		}
		for id := int32(tokenizer.NumSpecial); id < int32(e.tok.VocabSize()); id++ {
			if maskHas(mask, id) {
				return id, true
			}
		}
		return 0, false
	}
	var w Window
	res, err := Step(s, func() { s.Fill() }, greedy, tc.sample, &w, Options{MaxDraft: k, EOS: tokenizer.EosID})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 0 {
		t.Fatalf("accepted %d, want 0 (draft diverges at position 0)", res.Accepted)
	}
	if res.RolledBack != res.Drafted {
		t.Fatalf("rolled back %d, want all %d drafted", res.RolledBack, res.Drafted)
	}
	if !res.HasBonus || res.Bonus != target[0] {
		t.Fatalf("bonus %d, want %d", res.Bonus, target[0])
	}
	want, ref := refState(t, e, target[:1])
	defer ref.Close()
	s.Fill()
	if !maskEqual(s.Mask(), want) {
		t.Fatal("state after full rejection differs from sequential walk")
	}
}

func TestBonusEOSTerminates(t *testing.T) {
	e := testEnv(t)
	target := tokens(e.tok, doc)
	s := newSession(t, e, 0)
	defer s.Close()
	tc := &teacher{tok: e.tok, target: doc}
	var w Window
	opts := Options{MaxDraft: 4, EOS: tokenizer.EosID}
	fill := func() { s.Fill() }
	for !s.IsTerminated() {
		res, err := Step(s, fill, SliceProposer(tc.remaining(4)), tc.sample, &w, opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Terminated {
			break
		}
		if res.Accepted == 0 && !res.HasBonus {
			t.Fatal("no progress")
		}
	}
	if !s.IsTerminated() {
		t.Fatal("session did not terminate")
	}
	_ = target
}

// remaining returns the teacher's next k tokens without advancing it — a
// perfect draft model for the happy path.
func (tc *teacher) remaining(k int) []int32 {
	var out []int32
	pos := tc.pos
	for len(out) < k && pos < len(tc.target) {
		id := tc.tok.Encode(tc.target[pos:])[0]
		out = append(out, id)
		pos += len(tc.tok.TokenBytes(id))
	}
	return out
}

func TestSamplerDeclineCommitsNothingBeyondVerified(t *testing.T) {
	e := testEnv(t)
	target := tokens(e.tok, doc)
	s := newSession(t, e, 0)
	defer s.Close()
	budget := 2 // verdicts available before the budget runs out
	sampler := func(pos int, mask []uint64) (int32, bool) {
		if budget == 0 {
			return 0, false
		}
		budget--
		return target[pos], true
	}
	var w Window
	res, err := Step(s, func() { s.Fill() }, SliceProposer(target[:5]), sampler, &w, Options{MaxDraft: 5, EOS: tokenizer.EosID})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 2 || res.HasBonus {
		t.Fatalf("accepted %d hasBonus %v, want 2/false", res.Accepted, res.HasBonus)
	}
	want, ref := refState(t, e, target[:2])
	defer ref.Close()
	s.Fill()
	if !maskEqual(s.Mask(), want) {
		t.Fatal("state after sampler decline differs from sequential walk of verified prefix")
	}
}

// TestJumpForwardInsideWindow verifies forced continuations ride along with
// draft tokens and are retracted with them on rejection.
func TestJumpForwardInsideWindow(t *testing.T) {
	e := testEnv(t)
	target := tokens(e.tok, doc)
	s := newSession(t, e, 0)
	defer s.Close()

	// Teacher that follows the session's actual path (draft plus its
	// jump-forward insertions) so every draft position is confirmed.
	confirm := func(pos int, mask []uint64) (int32, bool) {
		// Accept whatever was drafted (echo the draft) — for the bonus
		// position pick any allowed token.
		for id := int32(tokenizer.NumSpecial); id < int32(e.tok.VocabSize()); id++ {
			if maskHas(mask, id) {
				return id, true
			}
		}
		return tokenizer.EosID, maskHas(mask, tokenizer.EosID)
	}
	greedy := func(pos int, mask []uint64) (int32, bool) {
		for id := int32(tokenizer.NumSpecial); id < int32(e.tok.VocabSize()); id++ {
			if maskHas(mask, id) {
				return id, true
			}
		}
		return 0, false
	}
	var w Window
	res, err := Step(s, func() { s.Fill() }, greedy, confirm, &w, Options{MaxDraft: 3, EOS: tokenizer.EosID, JumpForward: true})
	if err != nil {
		t.Fatal(err)
	}
	// Greedy draft and greedy confirm agree at every position, so the whole
	// window plus bonus committed. Collect the emitted text.
	text := ""
	for i := 0; i < res.Accepted; i++ {
		text += string(e.tok.TokenBytes(w.DraftAt(i))) + w.JumpForwardAt(i)
	}
	if res.HasBonus && res.Bonus != tokenizer.EosID {
		text += string(e.tok.TokenBytes(res.Bonus))
	}
	if res.Accepted != res.Drafted {
		t.Fatalf("greedy draft not fully confirmed: %d/%d", res.Accepted, res.Drafted)
	}
	// The committed text must be a valid grammar prefix: a fresh session
	// accepts it wholesale.
	ref := newSession(t, e, 0)
	defer ref.Close()
	if err := ref.AcceptString(text); err != nil {
		t.Fatalf("committed text %q is not a grammar prefix: %v", text, err)
	}
	_ = target
}

// TestConcurrentSessions exercises pooled sessions doing speculative steps
// from many goroutines (the -race CI target): sessions are independent, the
// pool is shared.
func TestConcurrentSessions(t *testing.T) {
	e := testEnv(t)
	pool := serve.NewSessionPool(e.p, e.cache, e.tok, 0)
	target := tokens(e.tok, doc)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := pool.Acquire()
			defer s.Close()
			tc := &teacher{tok: e.tok, target: doc}
			var w Window
			for !s.IsTerminated() {
				draft := tc.remaining(3)
				res, err := Step(s, func() { s.Fill() }, SliceProposer(draft), tc.sample, &w, Options{MaxDraft: 3, EOS: tokenizer.EosID})
				if err != nil {
					errs <- err
					return
				}
				if res.Terminated {
					return
				}
				if res.Accepted == 0 && !res.HasBonus {
					errs <- fmt.Errorf("no progress")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	_ = target
}
