// Package spec implements grammar-side speculative draft-verify decoding on
// top of the matcher's checkpointed rollback window (§3.3): a cheap draft
// proposer emits up to k candidate tokens, the grammar speculatively accepts
// them in one fused pass — recording the allowed-token mask at every draft
// position, exactly the masks the target model's batched verify pass needs
// to constrain its logits — and after the target model's verdicts arrive,
// the rejected suffix is retracted with a single atomic Rollback. Each Step
// therefore advances a sequence by accepted+1 tokens per GPU step (the +1
// is the target model's "bonus" token at the first disagreeing position),
// instead of the usual one.
//
// The persistent stack tree is what makes this cheap: speculative accepts
// are ordinary checkpointed Advances, and retracting a rejected suffix is
// O(suffix), never a re-parse. The draft window is bounded by the session's
// rollback history cap; a window that could not be fully retracted fails
// loudly with ErrWindowExceeded before touching matcher state, so callers
// fall back to non-speculative decoding for that step.
package spec

import (
	"errors"
	"fmt"
)

// Sequencer is the minimal session surface Step drives. serve.Session (and
// therefore the public xgrammar.Session) satisfies it.
type Sequencer interface {
	// Mask returns the session's allowed-token mask buffer (bit i set means
	// token i is allowed next). Step refreshes it via the fill callback.
	Mask() []uint64
	// Accept advances by one token atomically; on error the state is
	// unchanged.
	Accept(id int32) error
	// AcceptString advances by raw bytes as one checkpoint (jump-forward).
	AcceptString(text string) error
	// JumpForward returns the deterministic continuation, or "".
	JumpForward() string
	// Rollback undoes the last n Accept/AcceptString calls atomically.
	Rollback(n int) error
	// HistoryCap is the rollback window in steps.
	HistoryCap() int
	// IsTerminated reports whether the stop token has been accepted.
	IsTerminated() bool
}

// Proposer is the draft model: called once per window position with the
// position index and the grammar's allowed-token mask at that position, it
// returns the draft token, or ok=false to stop drafting early.
type Proposer func(pos int, mask []uint64) (id int32, ok bool)

// Sampler is the target model's verdict: the token it samples at a window
// position given the grammar mask there. It is called once per confirmed
// position plus once for the bonus position, in order — a sampler that
// consumes a seeded RNG therefore draws exactly the same stream of samples
// as a non-speculative decode of the same tokens, which is what makes
// speculative output byte-identical to the baseline. ok=false means the
// sequence must stop here (e.g. token budget exhausted); the step commits
// the prefix verified so far and appends no bonus token.
type Sampler func(pos int, mask []uint64) (id int32, ok bool)

// SliceProposer drafts from a precomputed token slice (the engine-side
// draft model, which proposes a whole window before the verify pass).
func SliceProposer(draft []int32) Proposer {
	return func(pos int, _ []uint64) (int32, bool) {
		if pos >= len(draft) {
			return 0, false
		}
		return draft[pos], true
	}
}

// Options configures one draft-verify step.
type Options struct {
	// MaxDraft bounds the window (draft tokens per step). Windows whose
	// worst-case retraction exceeds the session's rollback capacity fail
	// with ErrWindowExceeded.
	MaxDraft int
	// EOS is the stop-token id. A draft proposing EOS truncates the window
	// (termination is only ever committed via the verified bonus token); a
	// bonus verdict of EOS terminates the session.
	EOS int32
	// JumpForward inserts the deterministic continuation after each
	// speculatively accepted draft token, mirroring a non-speculative loop
	// that jump-forwards after every token. Rejected positions roll back
	// their insertion together with their draft token.
	JumpForward bool
}

// ErrWindowExceeded reports a draft window larger than the session's
// rollback history can retract. The session state is untouched; the caller
// should decode this step non-speculatively.
var ErrWindowExceeded = errors.New("spec: draft window exceeds the rollback history cap")

// Result is the outcome of one draft-verify step.
type Result struct {
	// Proposed counts draft tokens the proposer offered.
	Proposed int
	// Drafted counts the grammar-legal draft prefix speculatively accepted
	// into the matcher (≤ Proposed; the grammar truncates illegal drafts).
	Drafted int
	// Accepted counts draft tokens confirmed by the target sampler
	// (≤ Drafted). The step advanced the sequence by Accepted tokens plus
	// the bonus token.
	Accepted int
	// RolledBack counts the checkpointed steps retracted by the atomic
	// rollback: the Drafted-Accepted rejected draft tokens plus any
	// jump-forward insertions riding on them.
	RolledBack int
	// Bonus is the target model's token at the first unconfirmed position;
	// HasBonus is false only when the sampler declined (budget exhausted).
	Bonus    int32
	HasBonus bool
	// Terminated reports whether the bonus token was EOS and ended the
	// generation.
	Terminated bool
}

// Window is the reusable per-sequence scratch for Step: copied masks for
// every draft position (the session's own mask buffer is rewritten as the
// window advances, but the verify pass needs each position's mask), the
// speculatively accepted draft tokens, per-position checkpoint counts, and
// jump-forward insertions. The zero Window is ready to use; reusing one
// across steps makes the steady state allocation-free once capacities
// settle. After Step returns, the accepted prefix's tokens and insertions
// are readable via DraftAt/JumpForwardAt until the next Step on the window.
type Window struct {
	masks [][]uint64
	draft []int32
	steps []int // checkpoints consumed at position i (1, or 2 with a jump-forward)
	jf    []string
}

// reset prepares the window for a step of at most k draft positions.
func (w *Window) reset(k int) {
	if cap(w.masks) < k+1 {
		masks := make([][]uint64, k+1)
		copy(masks, w.masks)
		w.masks = masks
	}
	w.masks = w.masks[:k+1]
	w.draft = w.draft[:0]
	w.steps = w.steps[:0]
	w.jf = w.jf[:0]
}

// capture copies mask into the window's position-i slot.
func (w *Window) capture(i int, mask []uint64) {
	if cap(w.masks[i]) < len(mask) {
		w.masks[i] = make([]uint64, len(mask))
	}
	w.masks[i] = w.masks[i][:len(mask)]
	copy(w.masks[i], mask)
}

// DraftAt returns the i-th speculatively accepted draft token (i < Drafted).
func (w *Window) DraftAt(i int) int32 { return w.draft[i] }

// JumpForwardAt returns the jump-forward string inserted after the i-th
// draft token ("" when none).
func (w *Window) JumpForwardAt(i int) string {
	if i >= len(w.jf) {
		return ""
	}
	return w.jf[i]
}

// MaskAt returns the captured allowed-token mask at window position i
// (0 ≤ i ≤ Drafted; position Drafted is the bonus position). The slice is
// valid until the next Step using this window.
func (w *Window) MaskAt(i int) []uint64 { return w.masks[i] }

// maskHas reports whether token id is set in mask.
func maskHas(mask []uint64, id int32) bool {
	w := int(id >> 6)
	return id >= 0 && w < len(mask) && mask[w]&(1<<uint(id&63)) != 0
}

// Step runs one speculative draft-verify decode step over the session.
//
// Phase A (draft, overlappable with the GPU forward pass): up to
// opts.MaxDraft tokens from the proposer are speculatively accepted into
// the matcher, capturing the allowed-token mask at every position. A
// grammar-illegal draft token truncates the window — the grammar rejects it
// before the target model ever sees it, the mask check fused into the same
// pass that produces the verify masks.
//
// Phase B (verify, after the target model's batched forward pass): the
// sampler yields the target's token per position; the longest prefix where
// draft and target agree is kept.
//
// Phase C (commit): the rejected suffix — draft tokens and any jump-forward
// insertions riding on them — is retracted with one atomic Rollback, and
// the target's token at the first disagreeing position is accepted as the
// bonus token.
//
// fill must bring the session's mask up to date when called (Session.Fill
// on the serving session); it runs once per window position plus once for
// the bonus-position mask.
func Step(s Sequencer, fill func(), propose Proposer, sample Sampler, w *Window, opts Options) (Result, error) {
	var res Result
	if s.IsTerminated() {
		return res, errors.New("spec: session already terminated")
	}
	k := opts.MaxDraft
	if k < 0 {
		k = 0
	}
	// Worst-case retraction: every position costs one checkpoint, two with
	// a jump-forward insertion. Refuse windows the history could not undo —
	// before any state is touched, so the caller can decode this step
	// non-speculatively.
	perPos := 1
	if opts.JumpForward {
		perPos = 2
	}
	if k*perPos > s.HistoryCap() {
		return res, fmt.Errorf("%w (draft %d, cost %d/step, cap %d)",
			ErrWindowExceeded, k, perPos, s.HistoryCap())
	}
	w.reset(k)

	// Phase A: fused draft + mask pass.
	for i := 0; i < k; i++ {
		fill()
		w.capture(i, s.Mask())
		id, ok := propose(i, w.masks[i])
		if !ok {
			break
		}
		res.Proposed++
		if id == opts.EOS || !maskHas(w.masks[i], id) {
			break
		}
		if err := s.Accept(id); err != nil {
			break // defensive: Accept is atomic, so truncating is safe
		}
		w.draft = append(w.draft, id)
		w.steps = append(w.steps, 1)
		w.jf = append(w.jf, "")
		res.Drafted++
		if opts.JumpForward {
			if jf := s.JumpForward(); jf != "" {
				if err := s.AcceptString(jf); err == nil {
					w.jf[i] = jf
					w.steps[i] = 2
				}
			}
		}
	}
	fill()
	w.capture(res.Drafted, s.Mask())

	// Phase B: verify the draft against the target model's verdicts.
	accepted := 0
	var bonus int32
	hasBonus := false
	for accepted < res.Drafted {
		t, ok := sample(accepted, w.masks[accepted])
		if !ok {
			break
		}
		if t != w.draft[accepted] {
			bonus, hasBonus = t, true
			break
		}
		accepted++
	}
	if accepted == res.Drafted {
		if t, ok := sample(res.Drafted, w.masks[res.Drafted]); ok {
			bonus, hasBonus = t, true
		}
	}

	// Phase C: atomically retract the rejected suffix, then commit the
	// bonus token.
	res.Accepted = accepted
	for i := accepted; i < res.Drafted; i++ {
		res.RolledBack += w.steps[i]
	}
	if res.RolledBack > 0 {
		if err := s.Rollback(res.RolledBack); err != nil {
			// Unreachable given the window pre-check; surface loudly if the
			// invariant is ever broken rather than decoding on from a
			// corrupt position.
			return res, fmt.Errorf("spec: retract %d steps: %w", res.RolledBack, err)
		}
	}
	if hasBonus {
		if err := s.Accept(bonus); err != nil {
			return res, fmt.Errorf("spec: bonus token %d: %w", bonus, err)
		}
		res.Bonus, res.HasBonus = bonus, true
		res.Terminated = s.IsTerminated()
	}
	return res, nil
}
