// Package regexconv converts a practical subset of regular-expression
// syntax into grammar expressions, enabling JSON Schema "pattern" keywords
// and regex-specified string fields. Supported: literals, '.', character
// classes with ranges and negation, the escapes \d \D \w \W \s \S, the
// code-point escapes \xNN and \uXXXX (common in real-world JSON Schema
// patterns, usable in atom position, inside character classes, and as
// range endpoints) and escaped metacharacters, groups (capturing and
// (?:...)), alternation, and the quantifiers * + ? {m} {m,} {m,n} (greedy;
// laziness is irrelevant for recognition). Anchors are honored at the
// pattern edges: JSON Schema patterns are search-semantics, so an
// unanchored edge admits any prefix or suffix.
package regexconv

import (
	"fmt"
	"unicode/utf8"

	"xgrammar/internal/grammar"
)

// Pattern is a parsed regex: the body expression plus which edges the
// pattern anchored. Callers that need exact-length reasoning (the JSON
// Schema compiler intersecting "pattern" with minLength/maxLength) consume
// the parts; Convert assembles the search-semantics expression.
type Pattern struct {
	// Expr matches the pattern body (without the implicit .* a missing
	// anchor admits).
	Expr grammar.Expr
	// AnchoredStart and AnchoredEnd report a leading ^ and trailing $.
	AnchoredStart, AnchoredEnd bool
}

// Parse translates pattern into its body expression and anchoring.
func Parse(pattern string) (Pattern, error) {
	p := &parser{src: pattern}
	var out Pattern
	if len(p.src) > 0 && p.src[0] == '^' {
		out.AnchoredStart = true
		p.pos++
	}
	e, err := p.parseAlternation()
	if err != nil {
		return out, err
	}
	out.AnchoredEnd = p.trailingDollar
	if p.pos < len(p.src) {
		return out, fmt.Errorf("regexconv: unexpected %q at offset %d", p.src[p.pos], p.pos)
	}
	out.Expr = e
	return out, nil
}

// Search assembles the search-semantics expression: the body with an
// implicit any-string prefix/suffix for each unanchored edge.
func (p Pattern) Search() grammar.Expr {
	items := []grammar.Expr{}
	if !p.AnchoredStart {
		items = append(items, anyStar())
	}
	items = append(items, p.Expr)
	if !p.AnchoredEnd {
		items = append(items, anyStar())
	}
	if len(items) == 1 {
		return items[0]
	}
	return &grammar.Seq{Items: items}
}

// Convert translates pattern into a grammar expression matching exactly the
// strings the pattern accepts under JSON-Schema (search) semantics.
func Convert(pattern string) (grammar.Expr, error) {
	parsed, err := Parse(pattern)
	if err != nil {
		return nil, err
	}
	return parsed.Search(), nil
}

// anyStar matches any sequence of characters (.*, with . including newlines
// — generation-side patterns almost always want that).
func anyStar() grammar.Expr {
	return &grammar.Repeat{Sub: dotClass(), Min: 0, Max: -1}
}

func dotClass() *grammar.CharClass {
	return &grammar.CharClass{Ranges: []grammar.RuneRange{{Lo: 0, Hi: 0x10FFFF}}}
}

type parser struct {
	src            string
	pos            int
	trailingDollar bool
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("regexconv: %s (offset %d in %q)", fmt.Sprintf(format, args...), p.pos, p.src)
}

func (p *parser) peek() (byte, bool) {
	if p.pos >= len(p.src) {
		return 0, false
	}
	return p.src[p.pos], true
}

func (p *parser) parseAlternation() (grammar.Expr, error) {
	first, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	alts := []grammar.Expr{first}
	for {
		b, ok := p.peek()
		if !ok || b != '|' {
			break
		}
		p.pos++
		// A '$' consumed as trailing on a previous branch was premature.
		if p.trailingDollar {
			return nil, p.errf("'$' only supported at the end of the pattern")
		}
		next, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		alts = append(alts, next)
	}
	if len(alts) == 1 {
		return alts[0], nil
	}
	return &grammar.Choice{Alts: alts}, nil
}

func (p *parser) parseConcat() (grammar.Expr, error) {
	var items []grammar.Expr
	for {
		b, ok := p.peek()
		if !ok || b == '|' || b == ')' {
			break
		}
		if b == '$' {
			// Only valid as the final element of the whole pattern.
			if p.pos == len(p.src)-1 {
				p.pos++
				p.trailingDollar = true
				break
			}
			return nil, p.errf("'$' only supported at the end of the pattern")
		}
		it, err := p.parseRepeat()
		if err != nil {
			return nil, err
		}
		items = append(items, it)
	}
	switch len(items) {
	case 0:
		return &grammar.Empty{}, nil
	case 1:
		return items[0], nil
	}
	return &grammar.Seq{Items: items}, nil
}

func (p *parser) parseRepeat() (grammar.Expr, error) {
	atom, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		b, ok := p.peek()
		if !ok {
			return atom, nil
		}
		switch b {
		case '*':
			p.pos++
			atom = &grammar.Repeat{Sub: atom, Min: 0, Max: -1}
		case '+':
			p.pos++
			atom = &grammar.Repeat{Sub: atom, Min: 1, Max: -1}
		case '?':
			p.pos++
			atom = &grammar.Repeat{Sub: atom, Min: 0, Max: 1}
		case '{':
			min, max, ok, err := p.tryBrace()
			if err != nil {
				return nil, err
			}
			if !ok {
				return atom, nil
			}
			atom = &grammar.Repeat{Sub: atom, Min: min, Max: max}
		default:
			return atom, nil
		}
		// Swallow lazy/possessive modifiers; recognition is unaffected.
		if b2, ok := p.peek(); ok && (b2 == '?') {
			if _, isRep := atom.(*grammar.Repeat); isRep {
				p.pos++
			}
		}
	}
}

// tryBrace parses {m}, {m,}, {m,n}; a '{' that is not a quantifier is a
// literal (like RE2).
func (p *parser) tryBrace() (int, int, bool, error) {
	start := p.pos
	p.pos++ // '{'
	readInt := func() (int, bool) {
		n, any := 0, false
		for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
			n = n*10 + int(p.src[p.pos]-'0')
			p.pos++
			any = true
			if n > 1<<16 {
				return n, any
			}
		}
		return n, any
	}
	min, ok := readInt()
	if !ok {
		p.pos = start
		return 0, 0, false, nil
	}
	max := min
	if b, _ := p.peek(); b == ',' {
		p.pos++
		if b2, _ := p.peek(); b2 >= '0' && b2 <= '9' {
			max, _ = readInt()
		} else {
			max = -1
		}
	}
	if b, _ := p.peek(); b != '}' {
		p.pos = start
		return 0, 0, false, nil
	}
	p.pos++
	if max >= 0 && max < min {
		return 0, 0, false, p.errf("quantifier {%d,%d} out of order", min, max)
	}
	return min, max, true, nil
}

func (p *parser) parseAtom() (grammar.Expr, error) {
	b, ok := p.peek()
	if !ok {
		return nil, p.errf("unexpected end of pattern")
	}
	switch b {
	case '(':
		p.pos++
		// Non-capturing group prefix.
		if p.pos+1 < len(p.src) && p.src[p.pos] == '?' {
			if p.src[p.pos+1] == ':' {
				p.pos += 2
			} else {
				return nil, p.errf("unsupported group modifier (?%c", p.src[p.pos+1])
			}
		}
		inner, err := p.parseAlternation()
		if err != nil {
			return nil, err
		}
		if c, _ := p.peek(); c != ')' {
			return nil, p.errf("missing ')'")
		}
		p.pos++
		return inner, nil
	case '[':
		return p.parseClass()
	case '.':
		p.pos++
		return dotClass(), nil
	case '\\':
		return p.parseEscapeAtom()
	case '*', '+', '?', ')':
		return nil, p.errf("misplaced %q", b)
	case '^':
		return nil, p.errf("'^' only supported at the start of the pattern")
	default:
		r, size := utf8.DecodeRuneInString(p.src[p.pos:])
		p.pos += size
		var buf [4]byte
		n := utf8.EncodeRune(buf[:], r)
		return &grammar.Literal{Bytes: append([]byte(nil), buf[:n]...)}, nil
	}
}

var (
	classDigit = []grammar.RuneRange{{Lo: '0', Hi: '9'}}
	classWord  = []grammar.RuneRange{{Lo: '0', Hi: '9'}, {Lo: 'A', Hi: 'Z'}, {Lo: '_', Hi: '_'}, {Lo: 'a', Hi: 'z'}}
	classSpace = []grammar.RuneRange{{Lo: '\t', Hi: '\n'}, {Lo: '\v', Hi: '\r'}, {Lo: ' ', Hi: ' '}}
)

func copyRanges(rs []grammar.RuneRange) []grammar.RuneRange {
	return append([]grammar.RuneRange(nil), rs...)
}

// parseEscapeAtom handles escapes in atom position.
func (p *parser) parseEscapeAtom() (grammar.Expr, error) {
	p.pos++ // backslash
	b, ok := p.peek()
	if !ok {
		return nil, p.errf("trailing backslash")
	}
	p.pos++
	switch b {
	case 'd':
		return &grammar.CharClass{Ranges: copyRanges(classDigit)}, nil
	case 'D':
		return &grammar.CharClass{Ranges: copyRanges(classDigit), Negated: true}, nil
	case 'w':
		return &grammar.CharClass{Ranges: copyRanges(classWord)}, nil
	case 'W':
		return &grammar.CharClass{Ranges: copyRanges(classWord), Negated: true}, nil
	case 's':
		return &grammar.CharClass{Ranges: copyRanges(classSpace)}, nil
	case 'S':
		return &grammar.CharClass{Ranges: copyRanges(classSpace), Negated: true}, nil
	case 'n':
		return &grammar.Literal{Bytes: []byte{'\n'}}, nil
	case 't':
		return &grammar.Literal{Bytes: []byte{'\t'}}, nil
	case 'r':
		return &grammar.Literal{Bytes: []byte{'\r'}}, nil
	case 'x', 'u':
		r, err := p.hexRune(b)
		if err != nil {
			return nil, err
		}
		var buf [4]byte
		n := utf8.EncodeRune(buf[:], r)
		return &grammar.Literal{Bytes: append([]byte(nil), buf[:n]...)}, nil
	case '.', '\\', '+', '*', '?', '(', ')', '[', ']', '{', '}', '|', '^', '$', '-', '/':
		return &grammar.Literal{Bytes: []byte{b}}, nil
	}
	return nil, p.errf("unsupported escape \\%c", b)
}

// hexRune parses the digits of a code-point escape after its introducer:
// exactly two hex digits for \xNN, four for \uXXXX. The introducer has
// already been consumed. Lone surrogates are rejected — they have no UTF-8
// encoding, so a byte-level automaton cannot match them.
func (p *parser) hexRune(kind byte) (rune, error) {
	n := 2
	if kind == 'u' {
		n = 4
	}
	if p.pos+n > len(p.src) {
		return 0, p.errf("truncated \\%c escape (need %d hex digits)", kind, n)
	}
	var v rune
	for i := 0; i < n; i++ {
		d := hexVal(p.src[p.pos+i])
		if d < 0 {
			return 0, p.errf("invalid hex digit %q in \\%c escape", p.src[p.pos+i], kind)
		}
		v = v<<4 | rune(d)
	}
	p.pos += n
	if v >= 0xD800 && v <= 0xDFFF {
		return 0, p.errf("\\%c escape %04X is a lone surrogate with no UTF-8 encoding", kind, v)
	}
	return v, nil
}

func hexVal(b byte) int {
	switch {
	case b >= '0' && b <= '9':
		return int(b - '0')
	case b >= 'a' && b <= 'f':
		return int(b-'a') + 10
	case b >= 'A' && b <= 'F':
		return int(b-'A') + 10
	}
	return -1
}

// parseClass parses a bracket character class.
func (p *parser) parseClass() (grammar.Expr, error) {
	p.pos++ // '['
	cc := &grammar.CharClass{}
	if b, _ := p.peek(); b == '^' {
		cc.Negated = true
		p.pos++
	}
	first := true
	for {
		b, ok := p.peek()
		if !ok {
			return nil, p.errf("unterminated character class")
		}
		if b == ']' && !first {
			p.pos++
			normalizeRanges(cc)
			if !cc.Negated && len(cc.Ranges) == 0 {
				return nil, p.errf("empty character class")
			}
			return cc, nil
		}
		first = false
		lo, isClassEsc, ranges, err := p.classRune()
		if err != nil {
			return nil, err
		}
		if isClassEsc {
			cc.Ranges = append(cc.Ranges, ranges...)
			continue
		}
		hi := lo
		if b2, _ := p.peek(); b2 == '-' {
			if p.pos+1 < len(p.src) && p.src[p.pos+1] != ']' {
				p.pos++
				var isEsc bool
				hi, isEsc, _, err = p.classRune()
				if err != nil {
					return nil, err
				}
				if isEsc {
					return nil, p.errf("class escape cannot end a range")
				}
				if hi < lo {
					return nil, p.errf("class range out of order")
				}
			}
		}
		cc.Ranges = append(cc.Ranges, grammar.RuneRange{Lo: lo, Hi: hi})
	}
}

// classRune reads one class element: a literal rune, an escaped rune, or a
// class escape like \d (returned as ranges with isClassEsc=true).
func (p *parser) classRune() (rune, bool, []grammar.RuneRange, error) {
	b, _ := p.peek()
	if b == '\\' {
		p.pos++
		e, ok := p.peek()
		if !ok {
			return 0, false, nil, p.errf("trailing backslash in class")
		}
		p.pos++
		switch e {
		case 'd':
			return 0, true, copyRanges(classDigit), nil
		case 'w':
			return 0, true, copyRanges(classWord), nil
		case 's':
			return 0, true, copyRanges(classSpace), nil
		case 'n':
			return '\n', false, nil, nil
		case 't':
			return '\t', false, nil, nil
		case 'r':
			return '\r', false, nil, nil
		case 'x', 'u':
			r, err := p.hexRune(e)
			if err != nil {
				return 0, false, nil, err
			}
			return r, false, nil, nil
		case '\\', ']', '[', '^', '-', '.', '+', '*', '?', '(', ')', '{', '}', '|', '$', '/':
			return rune(e), false, nil, nil
		}
		return 0, false, nil, p.errf("unsupported class escape \\%c", e)
	}
	r, size := utf8.DecodeRuneInString(p.src[p.pos:])
	p.pos += size
	return r, false, nil, nil
}

// normalizeRanges sorts and merges class ranges.
func normalizeRanges(cc *grammar.CharClass) {
	rs := cc.Ranges
	if len(rs) <= 1 {
		return
	}
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].Lo < rs[j-1].Lo; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
	out := rs[:1]
	for _, r := range rs[1:] {
		last := &out[len(out)-1]
		if r.Lo <= last.Hi+1 {
			if r.Hi > last.Hi {
				last.Hi = r.Hi
			}
		} else {
			out = append(out, r)
		}
	}
	cc.Ranges = out
}
