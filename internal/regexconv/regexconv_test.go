package regexconv

import (
	"math/rand"
	"regexp"
	"testing"

	"xgrammar/internal/grammar"
	"xgrammar/internal/matcher"
	"xgrammar/internal/pda"
)

// build compiles a pattern to a matcher-ready PDA.
func build(t *testing.T, pattern string) *pda.PDA {
	t.Helper()
	e, err := Convert(pattern)
	if err != nil {
		t.Fatalf("Convert(%q): %v", pattern, err)
	}
	g := &grammar.Grammar{Rules: []grammar.Rule{{Name: "root", Body: e}}}
	p, err := pda.Compile(g, pda.AllOptimizations)
	if err != nil {
		t.Fatalf("compile %q: %v", pattern, err)
	}
	return p
}

func accepts(p *pda.PDA, s string) bool {
	m := matcher.New(matcher.NewExec(p), 0)
	return m.Advance([]byte(s)) && m.CanTerminate()
}

// TestAgainstStdlibOracle compares acceptance with Go's regexp package on a
// corpus of probe strings for each pattern.
func TestAgainstStdlibOracle(t *testing.T) {
	patterns := []string{
		`^abc$`,
		`^a+b*c?$`,
		`^[a-z]+$`,
		`^[^0-9]+$`,
		`^(foo|bar|baz)$`,
		`^\d{3}-\d{4}$`,
		`^\w+@\w+\.(com|org)$`,
		`^a{2,4}$`,
		`^x(yz)+$`,
		`^[A-Za-z_][A-Za-z0-9_]*$`,
		`^-?\d+(\.\d+)?$`,
		`^\s*[a-c]\s*$`,
		`abc`,       // unanchored: substring search
		`^start`,    // prefix search
		`end$`,      // suffix search
		`^(?:ab)+$`, // non-capturing group
		`^a.c$`,
		`^[\d]+[.][\d]+$`,
	}
	probes := []string{
		"", "a", "ab", "abc", "abcc", "aabbcc", "abcd", "xabcx", "foo", "bar",
		"baz", "foobar", "123-4567", "12-4567", "user@site.com", "user@site.net",
		"aa", "aaa", "aaaa", "aaaaa", "xyz", "xyzyz", "x", "hello_world", "9bad",
		"-12.5", "12", "12.", " b ", "b", "start here", "not start", "the end",
		"end not", "ababab", "aXc", "a\nc", "1.5", "1x5", "0", "zzz",
	}
	rng := rand.New(rand.NewSource(9))
	letters := "abcxyz019._@- \t"
	for i := 0; i < 60; i++ {
		n := rng.Intn(10)
		b := make([]byte, n)
		for j := range b {
			b[j] = letters[rng.Intn(len(letters))]
		}
		probes = append(probes, string(b))
	}
	for _, pat := range patterns {
		// (?s): our '.' intentionally matches newline (see TestDotMatchesNewline).
		ref := regexp.MustCompile(`(?s)` + pat)
		p := build(t, pat)
		for _, probe := range probes {
			want := ref.MatchString(probe)
			got := accepts(p, probe)
			if got != want {
				t.Errorf("pattern %q probe %q: got %v, regexp says %v", pat, probe, got, want)
			}
		}
	}
}

func TestUnicodeClasses(t *testing.T) {
	p := build(t, `^[α-ω]+$`)
	if !accepts(p, "αβγ") || accepts(p, "abc") || accepts(p, "") {
		t.Fatal("unicode class wrong")
	}
}

func TestDotMatchesNewline(t *testing.T) {
	// Deliberate deviation from the default regexp behavior: '.' includes
	// newline (the useful behavior for generation-side patterns).
	p := build(t, `^a.c$`)
	if !accepts(p, "a\nc") {
		t.Fatal("dot should match newline here")
	}
}

func TestErrors(t *testing.T) {
	for _, pat := range []string{
		`(unclosed`,
		`)`,
		`*dangling`,
		`a{4,2}`,
		`[z-a]`,
		`[]`,
		`a\q`,
		`(?P<name>x)`,
		`a^b`,
		`a$b`,
		`x|a$b`,
	} {
		if _, err := Convert(pat); err == nil {
			t.Errorf("pattern %q: expected error", pat)
		}
	}
}

func TestLazyModifierTolerated(t *testing.T) {
	p := build(t, `^a+?b$`)
	if !accepts(p, "aab") || accepts(p, "b") {
		t.Fatal("lazy quantifier recognition wrong")
	}
}

func TestBraceLiteralWhenNotQuantifier(t *testing.T) {
	p := build(t, `^a{b}$`)
	if !accepts(p, "a{b}") {
		t.Fatal("literal braces rejected")
	}
}
