package regexconv

import (
	"math/rand"
	"regexp"
	"testing"

	"xgrammar/internal/grammar"
	"xgrammar/internal/matcher"
	"xgrammar/internal/pda"
)

// build compiles a pattern to a matcher-ready PDA.
func build(t *testing.T, pattern string) *pda.PDA {
	t.Helper()
	e, err := Convert(pattern)
	if err != nil {
		t.Fatalf("Convert(%q): %v", pattern, err)
	}
	g := &grammar.Grammar{Rules: []grammar.Rule{{Name: "root", Body: e}}}
	p, err := pda.Compile(g, pda.AllOptimizations)
	if err != nil {
		t.Fatalf("compile %q: %v", pattern, err)
	}
	return p
}

func accepts(p *pda.PDA, s string) bool {
	m := matcher.New(matcher.NewExec(p), 0)
	return m.Advance([]byte(s)) && m.CanTerminate()
}

// TestAgainstStdlibOracle compares acceptance with Go's regexp package on a
// corpus of probe strings for each pattern.
func TestAgainstStdlibOracle(t *testing.T) {
	patterns := []string{
		`^abc$`,
		`^a+b*c?$`,
		`^[a-z]+$`,
		`^[^0-9]+$`,
		`^(foo|bar|baz)$`,
		`^\d{3}-\d{4}$`,
		`^\w+@\w+\.(com|org)$`,
		`^a{2,4}$`,
		`^x(yz)+$`,
		`^[A-Za-z_][A-Za-z0-9_]*$`,
		`^-?\d+(\.\d+)?$`,
		`^\s*[a-c]\s*$`,
		`abc`,       // unanchored: substring search
		`^start`,    // prefix search
		`end$`,      // suffix search
		`^(?:ab)+$`, // non-capturing group
		`^a.c$`,
		`^[\d]+[.][\d]+$`,
	}
	probes := []string{
		"", "a", "ab", "abc", "abcc", "aabbcc", "abcd", "xabcx", "foo", "bar",
		"baz", "foobar", "123-4567", "12-4567", "user@site.com", "user@site.net",
		"aa", "aaa", "aaaa", "aaaaa", "xyz", "xyzyz", "x", "hello_world", "9bad",
		"-12.5", "12", "12.", " b ", "b", "start here", "not start", "the end",
		"end not", "ababab", "aXc", "a\nc", "1.5", "1x5", "0", "zzz",
	}
	rng := rand.New(rand.NewSource(9))
	letters := "abcxyz019._@- \t"
	for i := 0; i < 60; i++ {
		n := rng.Intn(10)
		b := make([]byte, n)
		for j := range b {
			b[j] = letters[rng.Intn(len(letters))]
		}
		probes = append(probes, string(b))
	}
	for _, pat := range patterns {
		// (?s): our '.' intentionally matches newline (see TestDotMatchesNewline).
		ref := regexp.MustCompile(`(?s)` + pat)
		p := build(t, pat)
		for _, probe := range probes {
			want := ref.MatchString(probe)
			got := accepts(p, probe)
			if got != want {
				t.Errorf("pattern %q probe %q: got %v, regexp says %v", pat, probe, got, want)
			}
		}
	}
}

func TestUnicodeClasses(t *testing.T) {
	p := build(t, `^[α-ω]+$`)
	if !accepts(p, "αβγ") || accepts(p, "abc") || accepts(p, "") {
		t.Fatal("unicode class wrong")
	}
}

func TestDotMatchesNewline(t *testing.T) {
	// Deliberate deviation from the default regexp behavior: '.' includes
	// newline (the useful behavior for generation-side patterns).
	p := build(t, `^a.c$`)
	if !accepts(p, "a\nc") {
		t.Fatal("dot should match newline here")
	}
}

func TestErrors(t *testing.T) {
	for _, pat := range []string{
		`(unclosed`,
		`)`,
		`*dangling`,
		`a{4,2}`,
		`[z-a]`,
		`[]`,
		`a\q`,
		`(?P<name>x)`,
		`a^b`,
		`a$b`,
		`x|a$b`,
	} {
		if _, err := Convert(pat); err == nil {
			t.Errorf("pattern %q: expected error", pat)
		}
	}
}

func TestLazyModifierTolerated(t *testing.T) {
	p := build(t, `^a+?b$`)
	if !accepts(p, "aab") || accepts(p, "b") {
		t.Fatal("lazy quantifier recognition wrong")
	}
}

func TestBraceLiteralWhenNotQuantifier(t *testing.T) {
	p := build(t, `^a{b}$`)
	if !accepts(p, "a{b}") {
		t.Fatal("literal braces rejected")
	}
}

func TestHexEscapes(t *testing.T) {
	cases := []struct {
		pattern string
		good    []string
		bad     []string
	}{
		// \xNN in atom position (ASCII and Latin-1 → 2-byte UTF-8).
		{`^\x41\x42$`, []string{"AB"}, []string{"ab", "A"}},
		{`^\x2e$`, []string{"."}, []string{"x", ".."}},
		{`^\xe9$`, []string{"é"}, []string{"e", "è"}},
		// \uXXXX in atom position across UTF-8 widths (1, 2, 3 bytes).
		{`^\u0041$`, []string{"A"}, []string{"B"}},
		{`^\u00e9+$`, []string{"é", "éé"}, []string{"", "e"}},
		{`^\u4e2d\u6587$`, []string{"中文"}, []string{"中", "文中"}},
		// Inside character classes, as members and as range endpoints.
		{`^[\x41-\x43]+$`, []string{"A", "ABC", "CAB"}, []string{"D", "a"}},
		{`^[\u00e9]$`, []string{"é"}, []string{"e"}},
		{`^[\u00e0-\u00ff]+$`, []string{"àÿ", "é"}, []string{"a", ""}},
		{`^[\x30-9]{2}$`, []string{"07", "99"}, []string{"0", "0a"}},
		// Negated class with a code-point escape member.
		{`^[^\u0041]$`, []string{"B", "é"}, []string{"A"}},
	}
	for _, c := range cases {
		p := build(t, c.pattern)
		for _, s := range c.good {
			if !accepts(p, s) {
				t.Errorf("pattern %q: rejected %q", c.pattern, s)
			}
		}
		for _, s := range c.bad {
			if accepts(p, s) {
				t.Errorf("pattern %q: accepted %q", c.pattern, s)
			}
		}
	}
}

// TestHexEscapesUTF8Encoding pins the byte-level encoding: a \uXXXX escape
// must match the UTF-8 bytes of the code point, never the raw code-point
// value bytes.
func TestHexEscapesUTF8Encoding(t *testing.T) {
	p := build(t, `^\u00e9$`)
	if !accepts(p, string([]byte{0xc3, 0xa9})) {
		t.Fatal("UTF-8 encoding of U+00E9 rejected")
	}
	if accepts(p, string([]byte{0xe9})) {
		t.Fatal("raw Latin-1 byte accepted; escapes must be UTF-8 encoded")
	}
}

func TestHexEscapeErrors(t *testing.T) {
	for _, pat := range []string{
		`\x4`,         // truncated \xNN
		`\u123`,       // truncated \uXXXX
		`\xzz`,        // bad hex digit
		`\u12g4`,      // bad hex digit
		`\ud800`,      // lone surrogate
		`[\udfff]`,    // lone surrogate in class
		`[\x61-\x5a]`, // range out of order after escape resolution
	} {
		if _, err := Convert(pat); err == nil {
			t.Errorf("pattern %q: expected error", pat)
		}
	}
}

// TestHexEscapeOracle cross-checks hex-escape patterns against stdlib regexp.
func TestHexEscapeOracle(t *testing.T) {
	patterns := []string{
		`^\x41+$`,
		`^[\x30-\x39]+$`,
		`^\x41\x42*$`,
		`^[a-z]{2,3}$`,
	}
	probes := []string{"", "A", "AA", "AB", "ABB", "0", "09", "a", "ab", "abc", "abcd", "Z"}
	for _, pat := range patterns {
		re := regexp.MustCompile(pat)
		p := build(t, pat)
		for _, s := range probes {
			want := re.MatchString(s)
			if got := accepts(p, s); got != want {
				t.Errorf("pattern %q on %q: got %v, oracle %v", pat, s, got, want)
			}
		}
	}
}
