// Package workload generates the evaluation datasets: a JSON-mode-eval
// stand-in (schema + instance pairs), unconstrained JSON documents, XML
// documents, and Python-DSL programs (§4.1). All generators are seeded and
// deterministic, and every generated instance is valid under the
// corresponding grammar — verified by tests.
package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// SchemaTask is one JSON-mode-eval-style task: a schema and a canonical
// instance (the string an ideal model would emit).
type SchemaTask struct {
	Name     string
	Schema   []byte
	Instance string
}

var keyPool = []string{
	"name", "age", "email", "address", "city", "country", "id", "kind",
	"value", "items", "tags", "price", "quantity", "status", "created",
	"updated", "description", "title", "author", "meta", "config",
	"enabled", "active", "score", "rating", "phone", "zipcode", "state",
	"latitude", "longitude", "currency", "amount", "unit", "category",
}

var wordPool = []string{
	"alpha", "beta", "gamma", "delta", "omega", "red", "green", "blue",
	"small", "large", "fast", "slow", "new york", "paris", "tokyo",
	"pending", "active", "closed", "hello world", "foo", "bar", "baz",
}

// SchemaTasks generates n schema/instance pairs of varying complexity.
func SchemaTasks(n int, seed int64) []SchemaTask {
	rng := rand.New(rand.NewSource(seed))
	out := make([]SchemaTask, n)
	for i := range out {
		g := &schemaGen{rng: rng}
		schema, inst := g.genObject(0)
		out[i] = SchemaTask{
			Name:     fmt.Sprintf("schema_%03d", i),
			Schema:   []byte(schema),
			Instance: inst,
		}
	}
	return out
}

type schemaGen struct {
	rng  *rand.Rand
	used map[string]bool
}

func (g *schemaGen) key() string {
	if g.used == nil {
		g.used = map[string]bool{}
	}
	for tries := 0; ; tries++ {
		k := keyPool[g.rng.Intn(len(keyPool))]
		if tries > 8 {
			k = fmt.Sprintf("%s_%d", k, g.rng.Intn(100))
		}
		if !g.used[k] {
			g.used[k] = true
			return k
		}
	}
}

// genValue returns (schema fragment, canonical instance) for a random type.
func (g *schemaGen) genValue(depth int) (string, string) {
	max := 7
	if depth >= 2 {
		max = 5 // no more nesting
	}
	switch g.rng.Intn(max) {
	case 0: // string
		w := wordPool[g.rng.Intn(len(wordPool))]
		return `{"type": "string"}`, fmt.Sprintf("%q", w)
	case 1: // integer, sometimes bounded
		if g.rng.Intn(2) == 0 {
			lo := int64(g.rng.Intn(100))
			hi := lo + 1 + int64(g.rng.Intn(1000))
			v := lo + g.rng.Int63n(hi-lo+1)
			return fmt.Sprintf(`{"type": "integer", "minimum": %d, "maximum": %d}`, lo, hi),
				fmt.Sprintf("%d", v)
		}
		return `{"type": "integer"}`, fmt.Sprintf("%d", g.rng.Intn(100000)-50000)
	case 2: // boolean
		if g.rng.Intn(2) == 0 {
			return `{"type": "boolean"}`, "true"
		}
		return `{"type": "boolean"}`, "false"
	case 3: // enum
		k := 2 + g.rng.Intn(3)
		var opts []string
		for i := 0; i < k; i++ {
			opts = append(opts, fmt.Sprintf("%q", wordPool[g.rng.Intn(len(wordPool))]))
		}
		pick := opts[g.rng.Intn(len(opts))]
		return fmt.Sprintf(`{"enum": [%s]}`, strings.Join(opts, ", ")), pick
	case 4: // number
		v := g.rng.Float64() * 100
		return `{"type": "number"}`, fmt.Sprintf("%.2f", v)
	case 5: // array
		itemSchema, _ := g.genValue(depth + 1)
		cnt := 1 + g.rng.Intn(3)
		var items []string
		for i := 0; i < cnt; i++ {
			_, inst := g.genValueLike(itemSchema, depth+1)
			items = append(items, inst)
		}
		return fmt.Sprintf(`{"type": "array", "items": %s, "minItems": 1, "maxItems": 4}`, itemSchema),
			"[" + strings.Join(items, ", ") + "]"
	default: // object
		return g.genObject(depth + 1)
	}
}

// genValueLike re-generates an instance for a previously generated schema
// fragment by re-running the matching generator arm.
func (g *schemaGen) genValueLike(schema string, depth int) (string, string) {
	switch {
	case strings.Contains(schema, `"enum"`):
		start := strings.Index(schema, "[")
		end := strings.LastIndex(schema, "]")
		opts := strings.Split(schema[start+1:end], ", ")
		return schema, opts[g.rng.Intn(len(opts))]
	case strings.Contains(schema, `"minimum"`):
		var lo, hi int64
		fmt.Sscanf(schema, `{"type": "integer", "minimum": %d, "maximum": %d}`, &lo, &hi)
		return schema, fmt.Sprintf("%d", lo+g.rng.Int63n(hi-lo+1))
	case strings.Contains(schema, `"integer"`):
		return schema, fmt.Sprintf("%d", g.rng.Intn(1000))
	case strings.Contains(schema, `"string"`):
		return schema, fmt.Sprintf("%q", wordPool[g.rng.Intn(len(wordPool))])
	case strings.Contains(schema, `"boolean"`):
		if g.rng.Intn(2) == 0 {
			return schema, "true"
		}
		return schema, "false"
	case strings.Contains(schema, `"number"`):
		return schema, fmt.Sprintf("%.2f", g.rng.Float64()*100)
	default:
		// Nested object/array schemas are not reused as array items.
		return schema, "0"
	}
}

// genObject returns a schema and canonical instance for an object.
func (g *schemaGen) genObject(depth int) (string, string) {
	saveUsed := g.used
	g.used = map[string]bool{}
	defer func() { g.used = saveUsed }()

	n := 2 + g.rng.Intn(4)
	type propGen struct {
		key      string
		schema   string
		inst     string
		required bool
		include  bool
	}
	props := make([]propGen, n)
	for i := range props {
		k := g.key()
		s, inst := g.genValue(depth + 1)
		req := g.rng.Intn(10) < 7
		props[i] = propGen{key: k, schema: s, inst: inst, required: req, include: req || g.rng.Intn(2) == 0}
	}
	var schemaProps, required, instParts []string
	for _, p := range props {
		schemaProps = append(schemaProps, fmt.Sprintf("%q: %s", p.key, p.schema))
		if p.required {
			required = append(required, fmt.Sprintf("%q", p.key))
		}
		if p.include {
			instParts = append(instParts, fmt.Sprintf("%q: %s", p.key, p.inst))
		}
	}
	schema := fmt.Sprintf(`{"type": "object", "properties": {%s}, "required": [%s]}`,
		strings.Join(schemaProps, ", "), strings.Join(required, ", "))
	inst := "{" + strings.Join(instParts, ", ") + "}"
	return schema, inst
}

// JSONDocs generates n valid JSON documents (for the unconstrained-JSON CFG
// task). Documents use canonical separators.
func JSONDocs(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, n)
	for i := range out {
		var sb strings.Builder
		writeJSON(&sb, rng, 0)
		out[i] = sb.String()
	}
	return out
}

func writeJSON(sb *strings.Builder, rng *rand.Rand, depth int) {
	limit := 8
	if depth >= 3 {
		limit = 6
	}
	switch rng.Intn(limit) {
	case 0, 1:
		fmt.Fprintf(sb, "%q", wordPool[rng.Intn(len(wordPool))])
	case 2:
		fmt.Fprintf(sb, "%d", rng.Intn(10000)-5000)
	case 3:
		fmt.Fprintf(sb, "%.3f", rng.Float64()*1000)
	case 4:
		sb.WriteString([]string{"true", "false", "null"}[rng.Intn(3)])
	case 5:
		fmt.Fprintf(sb, "%.2e", rng.Float64()*1e6)
	case 6: // array
		sb.WriteByte('[')
		k := rng.Intn(4)
		for i := 0; i < k; i++ {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeJSON(sb, rng, depth+1)
		}
		sb.WriteByte(']')
	default: // object
		sb.WriteByte('{')
		k := 1 + rng.Intn(4)
		for i := 0; i < k; i++ {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(sb, "%q: ", keyPool[rng.Intn(len(keyPool))])
			writeJSON(sb, rng, depth+1)
		}
		sb.WriteByte('}')
	}
}

var xmlTags = []string{"item", "entry", "record", "person", "product", "order", "node", "field"}

// XMLDocs generates n documents valid under the builtin XML grammar.
func XMLDocs(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, n)
	for i := range out {
		var sb strings.Builder
		writeXMLElement(&sb, rng, 0)
		out[i] = sb.String()
	}
	return out
}

func writeXMLElement(sb *strings.Builder, rng *rand.Rand, depth int) {
	tag := xmlTags[rng.Intn(len(xmlTags))]
	sb.WriteByte('<')
	sb.WriteString(tag)
	for a := rng.Intn(3); a > 0; a-- {
		fmt.Fprintf(sb, " %s=\"%s\"", keyPool[rng.Intn(len(keyPool))],
			strings.ReplaceAll(wordPool[rng.Intn(len(wordPool))], `"`, ``))
	}
	if depth >= 3 || rng.Intn(5) == 0 {
		sb.WriteString("/>")
		return
	}
	sb.WriteByte('>')
	k := 1 + rng.Intn(3)
	for i := 0; i < k; i++ {
		switch rng.Intn(3) {
		case 0:
			writeXMLElement(sb, rng, depth+1)
		case 1:
			sb.WriteString(wordPool[rng.Intn(len(wordPool))])
		default:
			sb.WriteString("x &amp; y")
		}
	}
	fmt.Fprintf(sb, "</%s>", tag)
}

var pyNames = []string{"x", "y", "total", "count", "result", "value", "item", "data", "idx", "flag"}

// PythonPrograms generates n programs valid under the builtin Python DSL.
func PythonPrograms(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, n)
	for i := range out {
		var sb strings.Builder
		k := 2 + rng.Intn(5)
		for s := 0; s < k; s++ {
			writePyStmt(&sb, rng, 0)
		}
		out[i] = sb.String()
	}
	return out
}

func writePyStmt(sb *strings.Builder, rng *rand.Rand, depth int) {
	limit := 6
	if depth >= 2 {
		limit = 4
	}
	switch rng.Intn(limit) {
	case 0:
		fmt.Fprintf(sb, "%s = ", pyNames[rng.Intn(len(pyNames))])
		writePyExpr(sb, rng, 0)
		sb.WriteByte('\n')
	case 1:
		fmt.Fprintf(sb, "%s(", pyNames[rng.Intn(len(pyNames))])
		writePyExpr(sb, rng, 1)
		sb.WriteString(")\n")
	case 2:
		sb.WriteString("return ")
		writePyExpr(sb, rng, 0)
		sb.WriteByte('\n')
	case 3:
		sb.WriteString("pass\n")
	case 4:
		sb.WriteString("if ")
		writePyExpr(sb, rng, 0)
		sb.WriteString(" == ")
		writePyExpr(sb, rng, 1)
		sb.WriteString(":\n")
		writePyStmt(sb, rng, depth+1)
	default:
		fmt.Fprintf(sb, "for %s in range(%d):\n", pyNames[rng.Intn(len(pyNames))], rng.Intn(100))
		writePyStmt(sb, rng, depth+1)
	}
}

func writePyExpr(sb *strings.Builder, rng *rand.Rand, depth int) {
	limit := 6
	if depth >= 2 {
		limit = 4
	}
	switch rng.Intn(limit) {
	case 0:
		sb.WriteString(pyNames[rng.Intn(len(pyNames))])
	case 1:
		fmt.Fprintf(sb, "%d", rng.Intn(1000))
	case 2:
		fmt.Fprintf(sb, "%q", wordPool[rng.Intn(len(wordPool))])
	case 3:
		sb.WriteString([]string{"True", "False", "None"}[rng.Intn(3)])
	case 4:
		writePyExpr(sb, rng, depth+1)
		sb.WriteString([]string{" + ", " - ", " * "}[rng.Intn(3)])
		writePyExpr(sb, rng, depth+1)
	default:
		fmt.Fprintf(sb, "%s(", pyNames[rng.Intn(len(pyNames))])
		writePyExpr(sb, rng, depth+1)
		sb.WriteByte(')')
	}
}
