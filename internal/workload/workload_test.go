package workload

import (
	"encoding/json"
	"testing"

	"xgrammar/internal/builtin"
	"xgrammar/internal/grammar"
	"xgrammar/internal/jsonschema"
	"xgrammar/internal/matcher"
	"xgrammar/internal/pda"
)

func matches(t *testing.T, g *grammar.Grammar, doc string) bool {
	t.Helper()
	p, err := pda.Compile(g, pda.AllOptimizations)
	if err != nil {
		t.Fatal(err)
	}
	m := matcher.New(matcher.NewExec(p), 0)
	return m.Advance([]byte(doc)) && m.CanTerminate()
}

// TestSchemaTasksSelfConsistent: every generated instance must (a) be valid
// JSON, (b) match the grammar compiled from its schema.
func TestSchemaTasksSelfConsistent(t *testing.T) {
	tasks := SchemaTasks(25, 11)
	for _, task := range tasks {
		var js interface{}
		if err := json.Unmarshal([]byte(task.Instance), &js); err != nil {
			t.Fatalf("%s: instance not JSON: %v\n%s", task.Name, err, task.Instance)
		}
		g, err := jsonschema.Compile(task.Schema, jsonschema.Options{})
		if err != nil {
			t.Fatalf("%s: schema does not compile: %v\n%s", task.Name, err, task.Schema)
		}
		if !matches(t, g, task.Instance) {
			t.Fatalf("%s: instance does not match schema grammar\nschema: %s\ninstance: %s",
				task.Name, task.Schema, task.Instance)
		}
	}
}

func TestSchemaTasksDeterministic(t *testing.T) {
	a := SchemaTasks(5, 3)
	b := SchemaTasks(5, 3)
	for i := range a {
		if a[i].Instance != b[i].Instance || string(a[i].Schema) != string(b[i].Schema) {
			t.Fatal("not deterministic")
		}
	}
	c := SchemaTasks(5, 4)
	same := true
	for i := range a {
		if a[i].Instance != c[i].Instance {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds gave identical tasks")
	}
}

func TestJSONDocsValid(t *testing.T) {
	g := builtin.JSON()
	for i, doc := range JSONDocs(40, 5) {
		var js interface{}
		if err := json.Unmarshal([]byte(doc), &js); err != nil {
			t.Fatalf("doc %d not JSON: %v\n%s", i, err, doc)
		}
		if !matches(t, g, doc) {
			t.Fatalf("doc %d does not match grammar: %s", i, doc)
		}
	}
}

func TestXMLDocsValid(t *testing.T) {
	g := builtin.XML()
	for i, doc := range XMLDocs(40, 6) {
		if !matches(t, g, doc) {
			t.Fatalf("xml doc %d does not match grammar: %s", i, doc)
		}
	}
}

func TestPythonProgramsValid(t *testing.T) {
	g := builtin.PythonDSL()
	for i, prog := range PythonPrograms(40, 7) {
		if !matches(t, g, prog) {
			t.Fatalf("program %d does not match grammar:\n%s", i, prog)
		}
	}
}

func TestNonTrivialSizes(t *testing.T) {
	tasks := SchemaTasks(10, 1)
	totalLen := 0
	for _, task := range tasks {
		totalLen += len(task.Instance)
	}
	if totalLen/len(tasks) < 20 {
		t.Fatalf("instances too small: avg %d bytes", totalLen/len(tasks))
	}
}
