package builtin

import (
	"testing"

	"xgrammar/internal/matcher"
	"xgrammar/internal/pda"
)

func accepts(t *testing.T, p *pda.PDA, s string) bool {
	t.Helper()
	m := matcher.New(matcher.NewExec(p), 0)
	if !m.Advance([]byte(s)) {
		return false
	}
	return m.CanTerminate()
}

func TestJSONGrammar(t *testing.T) {
	p, err := pda.Compile(JSON(), pda.AllOptimizations)
	if err != nil {
		t.Fatal(err)
	}
	good := []string{
		`{"a": [1, 2.5e-3], "b": {"c": "é\n"}}`,
		`[[],[{}]]`,
		`null`,
		`-0.5`,
	}
	bad := []string{`{,}`, `[1 2]`, `{"a":}`, `"\x"`, `00`}
	for _, s := range good {
		if !accepts(t, p, s) {
			t.Errorf("valid JSON rejected: %q", s)
		}
	}
	for _, s := range bad {
		if accepts(t, p, s) {
			t.Errorf("invalid JSON accepted: %q", s)
		}
	}
}

func TestXMLGrammar(t *testing.T) {
	p, err := pda.Compile(XML(), pda.AllOptimizations)
	if err != nil {
		t.Fatal(err)
	}
	good := []string{
		`<root/>`,
		`<a x="1" y="two"><b>text</b><c/></a>`,
		`<item>a &amp; b</item>`,
		` <doc><x>1</x></doc> `,
	}
	bad := []string{
		`<a`,
		`<a>text`,
		`<a x=1></a>`,
		`text`,
		`<a>&unknown;</a>`,
	}
	for _, s := range good {
		if !accepts(t, p, s) {
			t.Errorf("valid XML rejected: %q", s)
		}
	}
	for _, s := range bad {
		if accepts(t, p, s) {
			t.Errorf("invalid XML accepted: %q", s)
		}
	}
}

func TestPythonDSLGrammar(t *testing.T) {
	p, err := pda.Compile(PythonDSL(), pda.AllOptimizations)
	if err != nil {
		t.Fatal(err)
	}
	good := []string{
		"x = 1\n",
		"x = \"hello\"\n",
		"if x == 1:\nprint(x)\n",
		"for i in range(10):\ntotal = total + i\n",
		"while n > 0:\nn = n - 1\n",
		"x = [1, 2, 3]\n",
		"y = not flag\n",
		"if a and b:\nreturn c\n",
		"f(1, \"two\", g(x))\n",
	}
	bad := []string{
		"x = \n",
		"if :\n",
		"1x = 2\n",
		"x == \n",
		"for in x:\n",
	}
	for _, s := range good {
		if !accepts(t, p, s) {
			t.Errorf("valid DSL rejected: %q", s)
		}
	}
	for _, s := range bad {
		if accepts(t, p, s) {
			t.Errorf("invalid DSL accepted: %q", s)
		}
	}
}

func TestParsedGrammarsCached(t *testing.T) {
	if JSON() != JSON() {
		t.Fatal("JSON grammar not cached")
	}
	if XML() != XML() || PythonDSL() != PythonDSL() {
		t.Fatal("grammar not cached")
	}
}

func TestAllValidate(t *testing.T) {
	for _, g := range []interface{ Validate() error }{JSON(), XML(), PythonDSL()} {
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}
