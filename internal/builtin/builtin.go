// Package builtin provides the grammars used throughout the paper's
// evaluation (§4.1): unconstrained JSON (ECMA-404), an XML 1.0 subset, and
// a Python DSL covering basic control flow and scalar types (indentation is
// not tracked, as in the paper).
package builtin

import (
	"sync"

	"xgrammar/internal/ebnf"
	"xgrammar/internal/grammar"
)

// JSONGrammar is the ECMA-404 JSON grammar in the engine's EBNF dialect.
const JSONGrammar = `
root    ::= ws value ws
value   ::= object | array | string | number | "true" | "false" | "null"
object  ::= "{" ws ( member ( "," ws member )* )? "}"
member  ::= string ws ":" ws value ws
array   ::= "[" ws ( value ws ( "," ws value ws )* )? "]"
string  ::= "\"" char* "\""
char    ::= [^"\\\x00-\x1f] | "\\" escape
escape  ::= ["\\/bfnrt] | "u" hex hex hex hex
hex     ::= [0-9a-fA-F]
number  ::= "-"? int frac? exp?
int     ::= "0" | [1-9] [0-9]*
frac    ::= "." [0-9]+
exp     ::= [eE] [-+]? [0-9]+
ws      ::= [ \t\n\r]*
`

// XMLGrammar is a subset of XML 1.0: nested elements, attributes, character
// data, and the five predefined entities. Matching open/close tag names is
// not context-free, so (as in grammar-constrained generation generally) tag
// names are matched structurally, not by equality.
const XMLGrammar = `
root      ::= ws element ws
element   ::= "<" name attrs ws ( "/>" | ">" content "</" name ">" )
attrs     ::= ( sp attribute )*
attribute ::= name "=" "\"" attvalue* "\""
attvalue  ::= [^<&"] | entity
content   ::= ( chardata | element | entity )*
chardata  ::= [^<&]
entity    ::= "&" ( "lt" | "gt" | "amp" | "apos" | "quot" ) ";"
name      ::= [a-zA-Z_] namechar*
namechar  ::= [a-zA-Z0-9_.-]
sp        ::= " "+
ws        ::= [ \t\n\r]*
`

// PythonDSLGrammar covers basic control flow (if/for/while), assignments,
// calls, and str/int/float/bool literals; indentation is ignored (§4.1).
const PythonDSLGrammar = `
root     ::= stmt+
stmt     ::= simple "\n" | compound
simple   ::= assign | rtn | call | "pass" | "break" | "continue"
assign   ::= name " = " expr
rtn      ::= "return " expr
compound ::= header ":" "\n" stmt+
header   ::= "if " expr | "elif " expr | "else" | "while " expr | "for " name " in " expr
expr     ::= unary ( op unary )*
unary    ::= "not " atom | "-" atom | atom
op       ::= " + " | " - " | " * " | " / " | " % " | " == " | " != " | " < " | " > " | " <= " | " >= " | " and " | " or "
atom     ::= call | name | number | strlit | "True" | "False" | "None" | "(" expr ")" | listlit
call     ::= name "(" args? ")"
args     ::= expr ( ", " expr )*
listlit  ::= "[" args? "]"
name     ::= [a-zA-Z_] [a-zA-Z0-9_]*
number   ::= "-"? [0-9]+ ( "." [0-9]+ )?
strlit   ::= "\"" strchar* "\""
strchar  ::= [^"\\\x00-\x1f] | "\\" ["\\nrt]
`

var (
	mu     sync.Mutex
	parsed = map[string]*grammar.Grammar{}
)

// parse caches parsed grammars by source.
func parse(src string) *grammar.Grammar {
	mu.Lock()
	defer mu.Unlock()
	if g, ok := parsed[src]; ok {
		return g
	}
	g := ebnf.MustParse(src)
	parsed[src] = g
	return g
}

// JSON returns the parsed ECMA-404 grammar.
func JSON() *grammar.Grammar { return parse(JSONGrammar) }

// XML returns the parsed XML-subset grammar.
func XML() *grammar.Grammar { return parse(XMLGrammar) }

// PythonDSL returns the parsed Python-DSL grammar.
func PythonDSL() *grammar.Grammar { return parse(PythonDSLGrammar) }
