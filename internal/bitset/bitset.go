// Package bitset provides fixed-size bitsets used as token masks.
//
// A token mask is a bitset with one bit per vocabulary entry; bit i set
// means token i is allowed at the next decoding step. Masks are stored as
// []uint64 words so they can be handed directly to a sampler and combined
// with cheap word-wise boolean algebra.
package bitset

import "math/bits"

// WordsFor returns the number of uint64 words needed to hold n bits.
func WordsFor(n int) int {
	return (n + 63) / 64
}

// Bitset is a fixed-capacity bitset. The zero value is an empty bitset of
// capacity zero; use New to allocate one with a given number of bits.
type Bitset struct {
	words []uint64
	n     int
}

// New returns a Bitset with capacity for n bits, all clear.
func New(n int) *Bitset {
	return &Bitset{words: make([]uint64, WordsFor(n)), n: n}
}

// FromWords wraps an existing word slice as a Bitset of n bits.
// The slice is used directly, not copied.
func FromWords(words []uint64, n int) *Bitset {
	return &Bitset{words: words, n: n}
}

// Len returns the capacity in bits.
func (b *Bitset) Len() int { return b.n }

// Words returns the underlying word slice.
func (b *Bitset) Words() []uint64 { return b.words }

// Set sets bit i.
func (b *Bitset) Set(i int) { b.words[i>>6] |= 1 << uint(i&63) }

// Clear clears bit i.
func (b *Bitset) Clear(i int) { b.words[i>>6] &^= 1 << uint(i&63) }

// Get reports whether bit i is set.
func (b *Bitset) Get(i int) bool { return b.words[i>>6]&(1<<uint(i&63)) != 0 }

// SetAll sets every bit in [0, Len).
func (b *Bitset) SetAll() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.trimTail()
}

// ClearAll clears every bit.
func (b *Bitset) ClearAll() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// trimTail zeroes the bits above n in the last word so Count stays exact.
func (b *Bitset) trimTail() {
	if b.n%64 != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << uint(b.n%64)) - 1
	}
}

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Or sets b to b | other. The two bitsets must have equal capacity.
func (b *Bitset) Or(other *Bitset) {
	for i, w := range other.words {
		b.words[i] |= w
	}
}

// And sets b to b & other. The two bitsets must have equal capacity.
func (b *Bitset) And(other *Bitset) {
	for i, w := range other.words {
		b.words[i] &= w
	}
}

// AndNot sets b to b &^ other. The two bitsets must have equal capacity.
func (b *Bitset) AndNot(other *Bitset) {
	for i, w := range other.words {
		b.words[i] &^= w
	}
}

// AndCount sets b to b & other and returns the number of set bits in the
// result — a single fused pass, where And followed by Count would walk the
// words twice. The two bitsets must have equal capacity.
//
//xg:hotpath
func (b *Bitset) AndCount(other *Bitset) int {
	c := 0
	for i, w := range other.words {
		v := b.words[i] & w
		b.words[i] = v
		c += bits.OnesCount64(v)
	}
	return c
}

// OrCount sets b to b | other and returns the number of set bits in the
// result in the same pass.
//
//xg:hotpath
func (b *Bitset) OrCount(other *Bitset) int {
	c := 0
	for i, w := range other.words {
		v := b.words[i] | w
		b.words[i] = v
		c += bits.OnesCount64(v)
	}
	return c
}

// CopyFrom copies other into b. The two bitsets must have equal capacity.
func (b *Bitset) CopyFrom(other *Bitset) {
	copy(b.words, other.words)
}

// CopyWordsCount overwrites b with words and returns the number of set bits
// in the same pass. len(words) must equal len(b.Words()).
//
//xg:hotpath
func (b *Bitset) CopyWordsCount(words []uint64) int {
	c := 0
	for i, w := range words {
		b.words[i] = w
		c += bits.OnesCount64(w)
	}
	return c
}

// OrWordsCount sets b to b | words and returns the number of set bits in the
// result in the same pass. len(words) must equal len(b.Words()).
//
//xg:hotpath
func (b *Bitset) OrWordsCount(words []uint64) int {
	c := 0
	for i, w := range words {
		v := b.words[i] | w
		b.words[i] = v
		c += bits.OnesCount64(v)
	}
	return c
}

// OrExceptList sets b to b | (words &^ {except}) and returns the number of
// set bits in the result, all in one word-level pass. except must be a
// strictly ascending id list; ids at or beyond len(words)*64 are ignored.
//
//xg:hotpath
func (b *Bitset) OrExceptList(words []uint64, except []int32) int {
	c := 0
	j := 0
	for i, w := range words {
		hi := int32(i+1) << 6
		for j < len(except) && except[j] < hi {
			w &^= 1 << uint(except[j]&63)
			j++
		}
		v := b.words[i] | w
		b.words[i] = v
		c += bits.OnesCount64(v)
	}
	return c
}

// Clone returns a deep copy of b.
func (b *Bitset) Clone() *Bitset {
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	return &Bitset{words: w, n: b.n}
}

// SetList sets every bit listed in ids.
func (b *Bitset) SetList(ids []int32) {
	for _, id := range ids {
		b.Set(int(id))
	}
}

// SetListCount sets every bit listed in ids and returns how many of them
// were newly set (0 -> 1 transitions), so a merge over disjoint or
// overlapping lists can keep a running popcount without a re-scan.
//
//xg:hotpath
func (b *Bitset) SetListCount(ids []int32) int {
	c := 0
	for _, id := range ids {
		w := &b.words[id>>6]
		bit := uint64(1) << uint(id&63)
		if *w&bit == 0 {
			*w |= bit
			c++
		}
	}
	return c
}

// ClearList clears every bit listed in ids.
func (b *Bitset) ClearList(ids []int32) {
	for _, id := range ids {
		b.Clear(int(id))
	}
}

// ToList appends the indices of all set bits to dst and returns it.
func (b *Bitset) ToList(dst []int32) []int32 {
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			dst = append(dst, int32(wi*64+bit))
			w &= w - 1
		}
	}
	return dst
}

// NextSet returns the index of the first set bit at or after i,
// or -1 if there is none.
func (b *Bitset) NextSet(i int) int {
	if i >= b.n {
		return -1
	}
	wi := i >> 6
	w := b.words[wi] >> uint(i&63)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(b.words); wi++ {
		if b.words[wi] != 0 {
			return wi*64 + bits.TrailingZeros64(b.words[wi])
		}
	}
	return -1
}

// Equal reports whether b and other contain the same bits.
func (b *Bitset) Equal(other *Bitset) bool {
	if b.n != other.n {
		return false
	}
	for i, w := range b.words {
		if w != other.words[i] {
			return false
		}
	}
	return true
}

// IntersectSorted returns the intersection of two sorted int32 slices.
// Both inputs must be strictly increasing. The result is appended to dst.
//
//xg:hotpath
func IntersectSorted(dst, a, b []int32) []int32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

// UnionSorted returns the union of two sorted int32 slices.
// Both inputs must be strictly increasing. The result is appended to dst.
//
//xg:hotpath
func UnionSorted(dst, a, b []int32) []int32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			dst = append(dst, a[i])
			i++
		case a[i] > b[j]:
			dst = append(dst, b[j])
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	dst = append(dst, a[i:]...)
	dst = append(dst, b[j:]...)
	return dst
}

// DiffSorted returns a \ b for two sorted int32 slices, appended to dst.
//
//xg:hotpath
func DiffSorted(dst, a, b []int32) []int32 {
	i, j := 0, 0
	for i < len(a) {
		for j < len(b) && b[j] < a[i] {
			j++
		}
		if j >= len(b) || b[j] != a[i] {
			dst = append(dst, a[i])
		}
		i++
	}
	return dst
}
