package bitset

import (
	"math/rand"
	"testing"
)

// randomBitset returns a bitset of n bits with each bit set with probability
// p, plus the equivalent id list.
func randomBitset(rng *rand.Rand, n int, p float64) (*Bitset, []int32) {
	b := New(n)
	var ids []int32
	for i := 0; i < n; i++ {
		if rng.Float64() < p {
			b.Set(i)
			ids = append(ids, int32(i))
		}
	}
	return b, ids
}

// TestAndCountMatchesTwoPass pins the fused ops against the naive
// two-pass versions (op, then Count) they replace.
func TestAndCountMatchesTwoPass(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 63, 64, 65, 130, 1000} {
		for trial := 0; trial < 20; trial++ {
			a, _ := randomBitset(rng, n, 0.4)
			b, _ := randomBitset(rng, n, 0.4)

			naive := a.Clone()
			naive.And(b)
			want := naive.Count()
			if got := a.AndCount(b); got != want {
				t.Fatalf("n=%d: AndCount = %d, naive And+Count = %d", n, got, want)
			}
			if !a.Equal(naive) {
				t.Fatalf("n=%d: AndCount result differs from And", n)
			}
		}
	}
}

func TestOrCountMatchesTwoPass(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range []int{1, 64, 65, 130, 1000} {
		for trial := 0; trial < 20; trial++ {
			a, _ := randomBitset(rng, n, 0.3)
			b, _ := randomBitset(rng, n, 0.3)

			naive := a.Clone()
			naive.Or(b)
			want := naive.Count()
			if got := a.OrCount(b); got != want {
				t.Fatalf("n=%d: OrCount = %d, naive Or+Count = %d", n, got, want)
			}
			if !a.Equal(naive) {
				t.Fatalf("n=%d: OrCount result differs from Or", n)
			}
		}
	}
}

func TestCopyAndOrWordsCount(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		n := 64 + rng.Intn(300)
		src, _ := randomBitset(rng, n, 0.5)
		dst, _ := randomBitset(rng, n, 0.5)

		cp := New(n)
		if got := cp.CopyWordsCount(src.Words()); got != src.Count() {
			t.Fatalf("CopyWordsCount = %d, want %d", got, src.Count())
		}
		if !cp.Equal(src) {
			t.Fatal("CopyWordsCount result differs from source")
		}

		naive := dst.Clone()
		naive.Or(src)
		if got := dst.OrWordsCount(src.Words()); got != naive.Count() {
			t.Fatalf("OrWordsCount = %d, want %d", got, naive.Count())
		}
		if !dst.Equal(naive) {
			t.Fatal("OrWordsCount result differs from Or")
		}
	}
}

func TestSetListCount(t *testing.T) {
	b := New(200)
	if got := b.SetListCount([]int32{3, 64, 127, 199}); got != 4 {
		t.Fatalf("SetListCount on empty = %d, want 4", got)
	}
	// Overlapping list: only the new ids count.
	if got := b.SetListCount([]int32{3, 64, 65, 199}); got != 1 {
		t.Fatalf("SetListCount with overlap = %d, want 1", got)
	}
	if b.Count() != 5 {
		t.Fatalf("Count = %d, want 5", b.Count())
	}
}

// TestOrExceptList checks the fused b |= (words &^ {except}) against the
// composed reference (copy, clear list, or) across densities and boundaries.
func TestOrExceptList(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, n := range []int{64, 65, 130, 512, 1000} {
		for trial := 0; trial < 30; trial++ {
			base, _ := randomBitset(rng, n, 0.5)
			src, _ := randomBitset(rng, n, 0.9)
			_, except := randomBitset(rng, n, 0.1)

			want := base.Clone()
			tmp := New(n)
			tmp.CopyFrom(src)
			tmp.ClearList(except)
			want.Or(tmp)

			got := base.Clone()
			c := got.OrExceptList(src.Words(), except)
			if !got.Equal(want) {
				t.Fatalf("n=%d: OrExceptList result differs from copy+clear+or", n)
			}
			if c != want.Count() {
				t.Fatalf("n=%d: OrExceptList count = %d, want %d", n, c, want.Count())
			}
		}
	}
}

func TestOrExceptListEmptyExcept(t *testing.T) {
	b := New(130)
	src := New(130)
	src.SetAll()
	if got := b.OrExceptList(src.Words(), nil); got != 130 {
		t.Fatalf("OrExceptList with empty except = %d, want 130", got)
	}
	if !b.Equal(src) {
		t.Fatal("result differs from source")
	}
}
