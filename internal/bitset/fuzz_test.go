package bitset

import (
	"sort"
	"testing"
)

// decodeSortedSet turns fuzz bytes into a strictly ascending id list bounded
// by max: each byte is a gap (+1) from the previous id, so any input maps to
// a valid sorted set.
func decodeSortedSet(data []byte, max int32) []int32 {
	var ids []int32
	cur := int32(-1)
	for _, b := range data {
		cur += int32(b%16) + 1
		if cur >= max {
			break
		}
		ids = append(ids, cur)
	}
	return ids
}

// refOp computes the reference result of a set operation through bitmasks.
func refOp(a, b []int32, max int32, op func(x, y *Bitset)) []int32 {
	x, y := New(int(max)), New(int(max))
	x.SetList(a)
	y.SetList(b)
	op(x, y)
	return x.ToList(nil)
}

func eqIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FuzzSortedSetOps cross-checks IntersectSorted, UnionSorted, and DiffSorted
// against the word-level bitmask reference ops on random sorted id sets —
// the ground truth the fused FillMask merge relies on.
func FuzzSortedSetOps(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{2, 3, 4})
	f.Add([]byte{}, []byte{5, 5, 5, 5})
	f.Add([]byte{15, 15, 15}, []byte{1})
	f.Fuzz(func(t *testing.T, da, db []byte) {
		const max = 1 << 10
		a := decodeSortedSet(da, max)
		b := decodeSortedSet(db, max)

		if got, want := IntersectSorted(nil, a, b), refOp(a, b, max, func(x, y *Bitset) { x.And(y) }); !eqIDs(got, want) {
			t.Fatalf("IntersectSorted(%v, %v) = %v, bitmask ref %v", a, b, got, want)
		}
		if got, want := UnionSorted(nil, a, b), refOp(a, b, max, func(x, y *Bitset) { x.Or(y) }); !eqIDs(got, want) {
			t.Fatalf("UnionSorted(%v, %v) = %v, bitmask ref %v", a, b, got, want)
		}
		if got, want := DiffSorted(nil, a, b), refOp(a, b, max, func(x, y *Bitset) { x.AndNot(y) }); !eqIDs(got, want) {
			t.Fatalf("DiffSorted(%v, %v) = %v, bitmask ref %v", a, b, got, want)
		}

		// The fused OrExceptList must agree with the sorted-set composition:
		// base | (all \ b) == base | complement-list of b.
		base := New(max)
		base.SetList(a)
		all := New(max)
		all.SetAll()
		want := base.Clone()
		comp := DiffSorted(nil, all.ToList(nil), b)
		want.SetList(comp)
		if got := base.OrExceptList(all.Words(), b); got != want.Count() || !base.Equal(want) {
			t.Fatalf("OrExceptList disagrees with sorted-set composition (count %d vs %d)", got, want.Count())
		}
	})
}

// FuzzSetListCount checks the newly-set counter against a sort-based count.
func FuzzSetListCount(f *testing.F) {
	f.Add([]byte{1, 2}, []byte{3, 4})
	f.Fuzz(func(t *testing.T, da, db []byte) {
		const max = 1 << 9
		a := decodeSortedSet(da, max)
		b := decodeSortedSet(db, max)
		bs := New(max)
		bs.SetList(a)
		fresh := DiffSorted(nil, b, a)
		if got := bs.SetListCount(b); got != len(fresh) {
			t.Fatalf("SetListCount = %d, want %d new ids", got, len(fresh))
		}
		union := UnionSorted(nil, a, b)
		if !sort.SliceIsSorted(union, func(i, j int) bool { return union[i] < union[j] }) || bs.Count() != len(union) {
			t.Fatalf("Count after SetListCount = %d, want %d", bs.Count(), len(union))
		}
	})
}
