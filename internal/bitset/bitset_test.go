package bitset

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBasicSetGetClear(t *testing.T) {
	b := New(130)
	if b.Len() != 130 {
		t.Fatalf("Len = %d, want 130", b.Len())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 128, 129} {
		if b.Get(i) {
			t.Fatalf("bit %d set in fresh bitset", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if got := b.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
	b.Clear(64)
	if b.Get(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	if got := b.Count(); got != 6 {
		t.Fatalf("Count = %d, want 6", got)
	}
}

func TestSetAllRespectsLen(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 100, 128} {
		b := New(n)
		b.SetAll()
		if got := b.Count(); got != n {
			t.Errorf("n=%d: Count after SetAll = %d", n, got)
		}
	}
}

func TestClearAll(t *testing.T) {
	b := New(200)
	b.SetAll()
	b.ClearAll()
	if b.Count() != 0 {
		t.Fatal("ClearAll left bits set")
	}
}

func TestBooleanOps(t *testing.T) {
	a := New(128)
	b := New(128)
	a.Set(1)
	a.Set(70)
	b.Set(70)
	b.Set(99)

	u := a.Clone()
	u.Or(b)
	for _, i := range []int{1, 70, 99} {
		if !u.Get(i) {
			t.Errorf("Or: bit %d missing", i)
		}
	}
	if u.Count() != 3 {
		t.Errorf("Or count = %d", u.Count())
	}

	in := a.Clone()
	in.And(b)
	if in.Count() != 1 || !in.Get(70) {
		t.Errorf("And wrong: count=%d", in.Count())
	}

	d := a.Clone()
	d.AndNot(b)
	if d.Count() != 1 || !d.Get(1) {
		t.Errorf("AndNot wrong: count=%d", d.Count())
	}
}

func TestToListAndSetList(t *testing.T) {
	b := New(300)
	ids := []int32{0, 5, 64, 200, 299}
	b.SetList(ids)
	got := b.ToList(nil)
	if len(got) != len(ids) {
		t.Fatalf("ToList len = %d, want %d", len(got), len(ids))
	}
	for i := range ids {
		if got[i] != ids[i] {
			t.Errorf("ToList[%d] = %d, want %d", i, got[i], ids[i])
		}
	}
	b.ClearList(ids[:2])
	if b.Count() != 3 {
		t.Fatalf("Count after ClearList = %d", b.Count())
	}
}

func TestNextSet(t *testing.T) {
	b := New(200)
	b.Set(3)
	b.Set(64)
	b.Set(199)
	cases := []struct{ from, want int }{
		{0, 3}, {3, 3}, {4, 64}, {64, 64}, {65, 199}, {199, 199}, {200, -1},
	}
	for _, c := range cases {
		if got := b.NextSet(c.from); got != c.want {
			t.Errorf("NextSet(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	empty := New(10)
	if empty.NextSet(0) != -1 {
		t.Error("NextSet on empty should be -1")
	}
}

func TestEqual(t *testing.T) {
	a, b := New(100), New(100)
	if !a.Equal(b) {
		t.Fatal("fresh bitsets not equal")
	}
	a.Set(42)
	if a.Equal(b) {
		t.Fatal("differing bitsets reported equal")
	}
	b.Set(42)
	if !a.Equal(b) {
		t.Fatal("same bitsets reported unequal")
	}
	c := New(101)
	c.Set(42)
	if a.Equal(c) {
		t.Fatal("different-capacity bitsets reported equal")
	}
}

func TestFromWords(t *testing.T) {
	w := []uint64{0b101}
	b := FromWords(w, 3)
	if !b.Get(0) || b.Get(1) || !b.Get(2) {
		t.Fatal("FromWords bits wrong")
	}
	b.Set(1)
	if w[0] != 0b111 {
		t.Fatal("FromWords must alias the slice")
	}
}

func sortedUnique(xs []int32, max int32) []int32 {
	seen := map[int32]bool{}
	var out []int32
	for _, x := range xs {
		v := x % max
		if v < 0 {
			v = -v
		}
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestSortedSetOpsProperty(t *testing.T) {
	f := func(as, bs []int32) bool {
		a := sortedUnique(as, 500)
		b := sortedUnique(bs, 500)
		ba, bb := New(500), New(500)
		ba.SetList(a)
		bb.SetList(b)

		// Union
		un := UnionSorted(nil, a, b)
		ref := ba.Clone()
		ref.Or(bb)
		if !listEq(un, ref.ToList(nil)) {
			return false
		}
		// Intersection
		in := IntersectSorted(nil, a, b)
		ref = ba.Clone()
		ref.And(bb)
		if !listEq(in, ref.ToList(nil)) {
			return false
		}
		// Difference
		df := DiffSorted(nil, a, b)
		ref = ba.Clone()
		ref.AndNot(bb)
		return listEq(df, ref.ToList(nil))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func listEq(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRandomAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := New(1000)
	ref := map[int]bool{}
	for i := 0; i < 5000; i++ {
		idx := rng.Intn(1000)
		if rng.Intn(2) == 0 {
			b.Set(idx)
			ref[idx] = true
		} else {
			b.Clear(idx)
			delete(ref, idx)
		}
	}
	if b.Count() != len(ref) {
		t.Fatalf("Count = %d, want %d", b.Count(), len(ref))
	}
	for i := 0; i < 1000; i++ {
		if b.Get(i) != ref[i] {
			t.Fatalf("bit %d = %v, want %v", i, b.Get(i), ref[i])
		}
	}
}
