// Package gramstore is the disk layer of the compile-once/serve-many split:
// a content-addressed store of serialized compiled grammars that survives
// process restarts. The in-memory compiled-grammar LRU (internal/gramcache)
// makes repeated requests cheap within one process; gramstore makes the
// expensive preprocessing artifact — the PDA plus the full-vocabulary mask
// scan — durable, so a restarted server answers its first request without
// recompiling.
//
// Blobs are keyed by a caller-supplied content address (in practice the hex
// form of the compiler's cache key, which covers the grammar source, the
// tokenizer fingerprint, and the compiler configuration). Writes go through
// a temp file in the store directory followed by an atomic rename, so a
// crash mid-write never leaves a half-written blob under a valid ID. Blobs
// that fail to load — truncated, corrupt, or from an incompatible build —
// are quarantined (moved aside, never deleted) so they stop shadowing a
// clean recompile but remain available for inspection.
//
// The store itself is format-agnostic: callers serialize and deserialize
// through the read/write callbacks, and the blob payload carries its own
// version and tokenizer fingerprint checks (see the root package's
// Serialize/LoadCompiledGrammar).
package gramstore

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// blobExt is the on-disk extension of a stored compiled grammar.
const blobExt = ".xgc"

// quarantineDir is the subdirectory bad blobs are moved into.
const quarantineDir = "quarantine"

// Stats counts store activity since Open.
type Stats struct {
	// Hits counts Load calls that found and successfully read a blob;
	// Misses counts Load calls for absent IDs.
	Hits, Misses int64
	// Writes counts blobs persisted; WriteErrors counts failed attempts
	// (the store is best-effort: a full disk degrades to compile-only).
	Writes, WriteErrors int64
	// Quarantined counts blobs moved aside after failing to load.
	Quarantined int64
	// Preloaded counts blobs loaded by warm-start preloading.
	Preloaded int64
}

// Store is a directory of content-addressed compiled-grammar blobs. It is
// safe for concurrent use.
type Store struct {
	dir string

	// putMu serializes the exists-check/rename pair in Put so the blob
	// counter stays consistent under concurrent writers in this process.
	// (Another process writing the same directory can still skew the gauge;
	// each process counts its own view from Open.)
	putMu sync.Mutex
	// blobs tracks the stored-blob count (one directory scan at Open,
	// adjusted on Put/quarantine) so metrics scrapes never walk the
	// directory.
	blobs atomic.Int64

	hits, misses, writes, writeErrors, quarantined, preloaded atomic.Int64
}

// Open creates (if needed) and opens the store directory.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("gramstore: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("gramstore: %w", err)
	}
	s := &Store{dir: dir}
	if ids, err := s.IDs(); err == nil {
		s.blobs.Store(int64(len(ids)))
	}
	return s, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// ValidID reports whether id is a well-formed content address: non-empty
// lowercase hex, bounded length. IDs reach the store from network handlers,
// so anything that could traverse paths is rejected here.
func ValidID(id string) bool {
	if len(id) == 0 || len(id) > 128 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *Store) path(id string) string { return filepath.Join(s.dir, id+blobExt) }

// Has reports whether a blob with the given ID exists.
func (s *Store) Has(id string) bool {
	if !ValidID(id) {
		return false
	}
	_, err := os.Stat(s.path(id))
	return err == nil
}

// Size returns the byte size of a stored blob, or 0 when absent.
func (s *Store) Size(id string) int64 {
	if !ValidID(id) {
		return 0
	}
	fi, err := os.Stat(s.path(id))
	if err != nil {
		return 0
	}
	return fi.Size()
}

// Load opens the blob for id and hands its contents to load. found is false
// when no blob exists (a miss, not an error). When the blob exists but load
// fails — corrupt bytes, stale version, wrong tokenizer — Load quarantines
// the blob and returns found=true with the load error, so the caller falls
// back to a clean recompile exactly once.
func (s *Store) Load(id string, load func(io.Reader) error) (found bool, err error) {
	return s.load(id, load, &s.hits)
}

// Preload is Load for warm-start preloading: identical behavior, but
// successes count toward Stats.Preloaded instead of Stats.Hits so the
// metrics distinguish boot-time warming from request-path hits.
func (s *Store) Preload(id string, load func(io.Reader) error) (found bool, err error) {
	return s.load(id, load, &s.preloaded)
}

func (s *Store) load(id string, load func(io.Reader) error, success *atomic.Int64) (bool, error) {
	if !ValidID(id) {
		return false, fmt.Errorf("gramstore: invalid blob id %q", id)
	}
	f, err := os.Open(s.path(id))
	if err != nil {
		s.misses.Add(1)
		return false, nil
	}
	defer f.Close()
	if err := load(f); err != nil {
		s.quarantine(id)
		return true, fmt.Errorf("gramstore: blob %s: %w", id, err)
	}
	success.Add(1)
	return true, nil
}

// Put persists a blob: write writes the serialized grammar to a temp file in
// the store directory, which is then atomically renamed into place. An
// existing blob under the same ID is replaced (content-addressed IDs make
// the replacement byte-identical in practice).
func (s *Store) Put(id string, write func(io.Writer) error) error {
	if !ValidID(id) {
		return fmt.Errorf("gramstore: invalid blob id %q", id)
	}
	tmp, err := os.CreateTemp(s.dir, "put-*"+blobExt+".tmp")
	if err != nil {
		s.writeErrors.Add(1)
		return fmt.Errorf("gramstore: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := write(tmp); err != nil {
		tmp.Close()
		s.writeErrors.Add(1)
		return fmt.Errorf("gramstore: write blob %s: %w", id, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		s.writeErrors.Add(1)
		return fmt.Errorf("gramstore: sync blob %s: %w", id, err)
	}
	if err := tmp.Close(); err != nil {
		s.writeErrors.Add(1)
		return fmt.Errorf("gramstore: close blob %s: %w", id, err)
	}
	s.putMu.Lock()
	replacing := s.Has(id)
	err = os.Rename(tmp.Name(), s.path(id))
	if err == nil && !replacing {
		s.blobs.Add(1)
	}
	s.putMu.Unlock()
	if err != nil {
		s.writeErrors.Add(1)
		return fmt.Errorf("gramstore: commit blob %s: %w", id, err)
	}
	s.writes.Add(1)
	return nil
}

// quarantine moves a bad blob into the quarantine subdirectory (best
// effort; a failed move falls back to removal so the bad blob cannot keep
// shadowing recompiles).
func (s *Store) quarantine(id string) {
	qdir := filepath.Join(s.dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err == nil {
		if os.Rename(s.path(id), filepath.Join(qdir, id+blobExt)) == nil {
			s.quarantined.Add(1)
			s.blobs.Add(-1)
			return
		}
	}
	if os.Remove(s.path(id)) == nil {
		s.quarantined.Add(1)
		s.blobs.Add(-1)
	}
}

// IDs lists the IDs of every stored blob in sorted order (quarantined and
// temporary files excluded) — the warm-start preload set.
func (s *Store) IDs() ([]string, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("gramstore: %w", err)
	}
	var ids []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, blobExt) {
			continue
		}
		id := strings.TrimSuffix(name, blobExt)
		if ValidID(id) {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// Len returns the number of stored blobs (tracked, not a directory walk —
// it sits on the metrics path).
func (s *Store) Len() int { return int(s.blobs.Load()) }

// Stats returns a snapshot of the store counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Writes:      s.writes.Load(),
		WriteErrors: s.writeErrors.Load(),
		Quarantined: s.quarantined.Load(),
		Preloaded:   s.preloaded.Load(),
	}
}
