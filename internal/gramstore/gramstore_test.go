package gramstore

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const id1 = "0a1b2c3d4e5f60718293a4b5c6d7e8f90a1b2c3d4e5f60718293a4b5c6d7e8f9"

func readAll(t *testing.T, s *Store, id string) (string, bool) {
	t.Helper()
	var got string
	found, err := s.Load(id, func(r io.Reader) error {
		b, err := io.ReadAll(r)
		got = string(b)
		return err
	})
	if err != nil {
		t.Fatalf("Load(%s): %v", id, err)
	}
	return got, found
}

func TestPutLoadRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if got, found := readAll(t, s, id1); found {
		t.Fatalf("empty store returned blob %q", got)
	}
	if err := s.Put(id1, func(w io.Writer) error {
		_, err := w.Write([]byte("payload"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, found := readAll(t, s, id1)
	if !found || got != "payload" {
		t.Fatalf("round trip: found=%v got=%q", found, got)
	}
	st := s.Stats()
	if st.Writes != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 write, 1 hit, 1 miss", st)
	}
	if s.Size(id1) != int64(len("payload")) {
		t.Fatalf("Size = %d", s.Size(id1))
	}
}

func TestPutIsAtomic(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("mid-write crash")
	if err := s.Put(id1, func(w io.Writer) error {
		w.Write([]byte("half"))
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("Put error = %v", err)
	}
	if s.Has(id1) {
		t.Fatal("failed write left a visible blob")
	}
	// No stray temp files either.
	ents, _ := os.ReadDir(s.Dir())
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("stray temp file %s", e.Name())
		}
	}
	if st := s.Stats(); st.WriteErrors != 1 || st.Writes != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCorruptBlobQuarantined(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(id1, func(w io.Writer) error {
		_, err := w.Write([]byte("garbage"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	bad := errors.New("cannot decode")
	found, err := s.Load(id1, func(r io.Reader) error { return bad })
	if !found || !errors.Is(err, bad) {
		t.Fatalf("Load = (%v, %v)", found, err)
	}
	if s.Has(id1) {
		t.Fatal("corrupt blob still visible after quarantine")
	}
	q := filepath.Join(dir, quarantineDir, id1+blobExt)
	if _, err := os.Stat(q); err != nil {
		t.Fatalf("quarantined blob missing: %v", err)
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// The next Load is a clean miss: the caller recompiles.
	if _, found := readAll(t, s, id1); found {
		t.Fatal("quarantined blob served")
	}
}

func TestIDsAndPreload(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"aa", "bb", "cc"}
	for _, id := range want {
		id := id
		if err := s.Put(id, func(w io.Writer) error {
			_, err := fmt.Fprint(w, "blob-", id)
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Non-blob files are ignored.
	os.WriteFile(filepath.Join(s.Dir(), "README.txt"), []byte("x"), 0o644)
	os.WriteFile(filepath.Join(s.Dir(), "UPPER"+blobExt), []byte("x"), 0o644)
	ids, err := s.IDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(want) {
		t.Fatalf("IDs = %v", ids)
	}
	for i, id := range want {
		if ids[i] != id {
			t.Fatalf("IDs = %v, want %v", ids, want)
		}
	}
	for _, id := range ids {
		if _, err := s.Preload(id, func(r io.Reader) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Preloaded != 3 || st.Hits != 0 {
		t.Fatalf("stats = %+v, want 3 preloads and no hits", st)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestInvalidIDsRejected(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"", "../../etc/passwd", "ABCDEF", "a/b", "0g", strings.Repeat("a", 200)} {
		if ValidID(id) {
			t.Fatalf("ValidID(%q) = true", id)
		}
		if err := s.Put(id, func(w io.Writer) error { return nil }); err == nil {
			t.Fatalf("Put(%q) accepted", id)
		}
		if _, err := s.Load(id, func(r io.Reader) error { return nil }); err == nil {
			t.Fatalf("Load(%q) accepted", id)
		}
		if s.Has(id) {
			t.Fatalf("Has(%q) = true", id)
		}
	}
}
