// Package trie provides a byte trie over a token vocabulary. The mask-cache
// preprocessor walks it to share work across tokens with common prefixes
// (§3.3), and the lm-format-enforcer-style baseline traverses it against a
// regex DFA at every decoding step.
package trie

import "sort"

// Trie is a byte-level prefix tree over token strings.
type Trie struct {
	nodes []node
}

type node struct {
	// children maps are kept as parallel sorted slices for cache-friendly
	// iteration; vocabulary tries are built once and read many times.
	childBytes []byte
	childIDs   []int32
	// token is the id of the token ending at this node, or -1.
	token int32
}

// Build constructs a trie over tokens; the i-th token gets id i. Tokens may
// share prefixes or duplicate each other (later duplicates win).
func Build(tokens [][]byte) *Trie {
	t := &Trie{nodes: []node{{token: -1}}}
	for id, tok := range tokens {
		cur := int32(0)
		for _, b := range tok {
			next := t.child(cur, b)
			if next < 0 {
				next = int32(len(t.nodes))
				t.nodes = append(t.nodes, node{token: -1})
				n := &t.nodes[cur]
				idx := sort.Search(len(n.childBytes), func(i int) bool { return n.childBytes[i] >= b })
				n.childBytes = append(n.childBytes, 0)
				copy(n.childBytes[idx+1:], n.childBytes[idx:])
				n.childBytes[idx] = b
				n.childIDs = append(n.childIDs, 0)
				copy(n.childIDs[idx+1:], n.childIDs[idx:])
				n.childIDs[idx] = next
			}
			cur = next
		}
		t.nodes[cur].token = int32(id)
	}
	return t
}

// child returns the child of n along byte b, or -1.
func (t *Trie) child(n int32, b byte) int32 {
	nd := &t.nodes[n]
	idx := sort.Search(len(nd.childBytes), func(i int) bool { return nd.childBytes[i] >= b })
	if idx < len(nd.childBytes) && nd.childBytes[idx] == b {
		return nd.childIDs[idx]
	}
	return -1
}

// Root returns the root node id.
func (t *Trie) Root() int32 { return 0 }

// Step walks from node n along byte b; it returns -1 if no child exists.
func (t *Trie) Step(n int32, b byte) int32 { return t.child(n, b) }

// Token returns the token id ending at node n, or -1.
func (t *Trie) Token(n int32) int32 { return t.nodes[n].token }

// NumNodes returns the node count.
func (t *Trie) NumNodes() int { return len(t.nodes) }

// Children calls f for every child edge of node n.
func (t *Trie) Children(n int32, f func(b byte, child int32)) {
	nd := &t.nodes[n]
	for i, b := range nd.childBytes {
		f(b, nd.childIDs[i])
	}
}

// Walk visits the trie depth-first. enter is called before descending into a
// node (with the byte leading to it) and must report whether to descend;
// leave is called when backtracking. The root is neither entered nor left.
func (t *Trie) Walk(enter func(b byte, node int32) bool, leave func(node int32)) {
	var rec func(n int32)
	rec = func(n int32) {
		nd := &t.nodes[n]
		for i, b := range nd.childBytes {
			c := nd.childIDs[i]
			if enter(b, c) {
				rec(c)
			}
			leave(c)
		}
	}
	rec(0)
}
