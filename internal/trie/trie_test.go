package trie

import (
	"sort"
	"testing"
)

func toks(ss ...string) [][]byte {
	out := make([][]byte, len(ss))
	for i, s := range ss {
		out[i] = []byte(s)
	}
	return out
}

func TestLookup(t *testing.T) {
	tr := Build(toks("read", "ready", "reader", "red", ""))
	find := func(s string) int32 {
		n := tr.Root()
		for i := 0; i < len(s); i++ {
			n = tr.Step(n, s[i])
			if n < 0 {
				return -1
			}
		}
		return tr.Token(n)
	}
	if find("read") != 0 || find("ready") != 1 || find("reader") != 2 || find("red") != 3 {
		t.Fatal("token ids wrong")
	}
	if find("") != 4 {
		t.Fatalf("empty token id = %d", find(""))
	}
	if find("rea") != -1 || find("readers") != -1 || find("x") != -1 {
		t.Fatal("non-tokens resolved")
	}
}

func TestDuplicateLastWins(t *testing.T) {
	tr := Build(toks("ab", "ab"))
	n := tr.Step(tr.Step(tr.Root(), 'a'), 'b')
	if tr.Token(n) != 1 {
		t.Fatalf("token = %d, want 1", tr.Token(n))
	}
}

func TestWalkVisitsAllTokens(t *testing.T) {
	words := []string{"a", "ab", "abc", "b", "ba"}
	tr := Build(toks(words...))
	var found []int32
	var depth int
	tr.Walk(
		func(b byte, n int32) bool {
			depth++
			if id := tr.Token(n); id >= 0 {
				found = append(found, id)
			}
			return true
		},
		func(n int32) { depth-- },
	)
	if depth != 0 {
		t.Fatalf("unbalanced walk: depth %d", depth)
	}
	sort.Slice(found, func(i, j int) bool { return found[i] < found[j] })
	if len(found) != len(words) {
		t.Fatalf("found %d tokens, want %d", len(found), len(words))
	}
	for i, id := range found {
		if id != int32(i) {
			t.Fatalf("missing token %d", i)
		}
	}
}

func TestWalkPrune(t *testing.T) {
	tr := Build(toks("ab", "ac", "b"))
	visited := 0
	tr.Walk(
		func(b byte, n int32) bool {
			visited++
			return b != 'a' // prune the a-subtree
		},
		func(n int32) {},
	)
	// Visits: 'a' (pruned), 'b' => 2
	if visited != 2 {
		t.Fatalf("visited = %d, want 2", visited)
	}
}

func TestChildren(t *testing.T) {
	tr := Build(toks("a", "b", "c"))
	var bs []byte
	tr.Children(tr.Root(), func(b byte, c int32) { bs = append(bs, b) })
	if string(bs) != "abc" {
		t.Fatalf("children = %q, want sorted abc", bs)
	}
}

func TestNumNodes(t *testing.T) {
	tr := Build(toks("ab", "ac"))
	// root, a, ab, ac
	if tr.NumNodes() != 4 {
		t.Fatalf("nodes = %d, want 4", tr.NumNodes())
	}
}
