// Package structtag implements structural-tag dispatch for constrained tool
// calling: a composite-grammar dispatcher that runs a generation in
// free-text mode — every regular token allowed — while watching the decoded
// byte stream for trigger-tag prefixes through a byte trie, switches into a
// compiled per-tag sub-grammar the moment a begin tag completes, enforces
// that grammar (the tag's content followed by its end tag, composed into
// one segment grammar by the caller) until the segment completes, and then
// returns to free text. A request may carry any number of tags; each tag's
// segment grammar is an ordinary compiled grammar, so per-tool schemas
// resolve through the compiled-grammar LRU and disk store and are compiled
// once however many requests share them.
//
// Dispatch state lives in the pooled-session hot path: the steady-state
// decode step (Accept + Fill) performs no heap allocations, segment
// sessions are recycled through each segment grammar's serve.SessionPool,
// and the dispatcher session itself is pooled on the Set. Sessions are
// rollback-safe across mode boundaries — a checkpoint ring records, per
// accepted step, the bytes consumed, the segment checkpoints taken, and
// whether the step crossed a mode transition. Rollbacks that stay on one
// side of a transition retract in O(steps) (segment rollbacks ride the
// matcher's persistent stack tree); the rare rollback across a transition
// replays the retained byte history step-aligned, so speculative decoding
// can treat a dispatcher session exactly like a plain grammar session.
package structtag

import (
	"fmt"
	"sync"

	"xgrammar/internal/baselines"
	"xgrammar/internal/bitset"
	"xgrammar/internal/matcher"
	"xgrammar/internal/serve"
	"xgrammar/internal/tokenizer"
	"xgrammar/internal/trie"
)

// Tag is one compiled trigger: the literal begin tag that flips the
// dispatcher into constrained mode, the pooled sessions of the segment
// grammar (the tag's content grammar with the end tag composed in, so the
// segment completes exactly after the end tag), and the end tag for
// display.
type Tag struct {
	Begin string
	End   string
	// Pool supplies segment sessions. The pool belongs to the compiled
	// segment grammar, so its memory lives and dies with the grammar in the
	// compiled-grammar LRU.
	Pool *serve.SessionPool
}

// Set is a compiled structural-tag dispatcher: the trigger trie, the
// free-text token mask, and a pool of dispatcher sessions. It is immutable
// after NewSet and safe for concurrent use.
type Set struct {
	tags     []Tag
	tok      *tokenizer.Tokenizer
	trie     *trie.Trie
	maxBegin int
	// freeWords is the free-text mask template: every regular token plus
	// EOS; non-stop special tokens cleared. freeCount is its popcount,
	// computed once so free-mode fills report Accepted without a re-scan.
	freeWords  []uint64
	freeCount  int
	words      int
	maxHistory int
	pool       sync.Pool
}

// NewSet compiles a dispatcher over the tags. Begin tags must be non-empty,
// distinct, and prefix-free (a begin tag that is a prefix of another could
// never lose the dispatch race). maxHistory <= 0 uses the matcher default
// rollback window.
func NewSet(tags []Tag, tok *tokenizer.Tokenizer, maxHistory int) (*Set, error) {
	if len(tags) == 0 {
		return nil, fmt.Errorf("structtag: no tags")
	}
	if maxHistory <= 0 {
		maxHistory = matcher.DefaultMaxHistory
	}
	begins := make([][]byte, len(tags))
	maxBegin := 0
	for i, t := range tags {
		if t.Begin == "" {
			return nil, fmt.Errorf("structtag: tag %d has an empty begin tag", i)
		}
		if t.Pool == nil {
			return nil, fmt.Errorf("structtag: tag %d (begin %q) has no segment pool", i, t.Begin)
		}
		for j := 0; j < i; j++ {
			a, b := tags[j].Begin, t.Begin
			if len(a) > len(b) {
				a, b = b, a
			}
			if b[:len(a)] == a {
				return nil, fmt.Errorf("structtag: begin tags %q and %q overlap (one is a prefix of the other)",
					tags[j].Begin, t.Begin)
			}
		}
		begins[i] = []byte(t.Begin)
		if len(t.Begin) > maxBegin {
			maxBegin = len(t.Begin)
		}
	}
	words := bitset.WordsFor(tok.VocabSize())
	free := bitset.New(tok.VocabSize())
	free.SetAll()
	for _, id := range tok.SpecialIDs() {
		free.Clear(int(id))
	}
	for _, id := range tok.StopIDs() {
		free.Set(int(id))
	}
	return &Set{
		tags:       tags,
		tok:        tok,
		trie:       trie.Build(begins),
		maxBegin:   maxBegin,
		freeWords:  free.Words(),
		freeCount:  free.Count(),
		words:      words,
		maxHistory: maxHistory,
	}, nil
}

// Tags returns the compiled tag list.
func (ts *Set) Tags() []Tag { return ts.tags }

// Tok returns the tokenizer the set dispatches over.
func (ts *Set) Tok() *tokenizer.Tokenizer { return ts.tok }

// Acquire returns a dispatcher session in free-text mode at the stream
// start, recycling a closed one when available. The session's mask is not
// yet filled; call Fill (or let the first Step do it).
func (ts *Set) Acquire() *Session {
	if v := ts.pool.Get(); v != nil {
		return v.(*Session)
	}
	s := &Session{
		ts:    ts,
		mode:  -1,
		mask:  make([]uint64, ts.words),
		steps: make([]stepRec, ts.maxHistory),
		bytes: make([]byte, 0, 1024),
		dirty: true,
	}
	s.bs = bitset.FromWords(s.mask, ts.tok.VocabSize())
	return s
}

// stepRec is one checkpoint in the dispatcher's rollback ring.
type stepRec struct {
	// nbytes is how many bytes this step appended to the stream.
	nbytes int32
	// segSteps is how many checkpoints this step consumed on the active
	// segment session (0 for pure free-text steps).
	segSteps int32
	// transition marks a step that entered or left a tag segment; rolling
	// one back takes the replay slow path.
	transition bool
}

// Backend adapts a Set to the engine's grammar-backend interface: every
// NewSession is a pooled dispatcher session starting in free-text mode.
type Backend struct {
	set  *Set
	name string
}

// NewBackend wraps a tag set as an engine backend.
func NewBackend(set *Set, name string) *Backend {
	if name == "" {
		name = "structtag"
	}
	return &Backend{set: set, name: name}
}

// Name implements baselines.Backend.
func (b *Backend) Name() string { return b.name }

// NewSession implements baselines.Backend.
func (b *Backend) NewSession() baselines.Session { return b.set.Acquire() }

// Set returns the underlying tag set.
func (b *Backend) Set() *Set { return b.set }
