//go:build race

package structtag_test

// raceEnabled reports whether the race detector is active (its
// instrumentation allocates, which would break allocation assertions).
const raceEnabled = true
