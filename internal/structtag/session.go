package structtag

import (
	"errors"
	"fmt"
	"time"

	"xgrammar/internal/bitset"
	"xgrammar/internal/maskcache"
	"xgrammar/internal/serve"
	"xgrammar/internal/tokenizer"
)

// SegmentSpan records one completed constrained segment (enterTag to
// leaveTag) for the request tracer: which tag ran and when. Spans are
// best-effort observability — a rollback that retracts a completed segment
// does not remove its span — and the window is bounded by maxSegmentSpans.
type SegmentSpan struct {
	Tag   int
	Start time.Time
	Dur   time.Duration
}

// maxSegmentSpans bounds the per-session span window; tool-calling outputs
// run a handful of segments, so 32 covers real requests while capping the
// cost of pathological ones.
const maxSegmentSpans = 32

// Session is one generation driven through the dispatcher. Like a
// serve.Session it owns its mask buffer, is driven from one goroutine, and
// returns to its pool on Close. It satisfies the serving engine's session
// surfaces (baselines.Session, the engine's JumpForwarder, and the
// speculative decoder's Sequencer), so every decode mode — plain,
// overlapped batch fill, jump-forward insertion, speculative draft-verify —
// works unchanged on top of structural-tag dispatch.
type Session struct {
	ts *Set
	// mode is -1 in free text, else the index of the active tag.
	mode int
	// seg is the active segment session (nil in free text).
	seg *serve.Session
	// cands are the live trigger-trie nodes: one per begin-tag prefix the
	// stream currently ends with, ordered oldest start first (so the
	// longest match wins a simultaneous completion).
	cands, candsNext []int32

	// bytes is the full accepted stream; rollbacks truncate it and the
	// replay slow path re-feeds it. steps is the checkpoint ring over the
	// last maxHistory accepted steps.
	bytes    []byte
	steps    []stepRec
	stepHead int // ring index of the next write
	stepLen  int
	// freeStart is the byte offset where the current free-text run began
	// (0, or just past the last segment's end tag). Trigger candidates can
	// only start at or after it — earlier bytes belonged to a segment and
	// never fed the trie.
	freeStart int

	mask       []uint64
	bs         *bitset.Bitset
	jf         []byte
	dirty      bool
	lastStats  maskcache.FillStats
	terminated bool

	// spans records completed segments for the tracer; segStart stamps the
	// active segment's entry. replaying suppresses recording while replayTo
	// re-feeds already-accepted bytes, so rollback slow paths never double-
	// record a segment.
	spans     []SegmentSpan
	segStart  time.Time
	replaying bool
}

// SegmentSpans returns the completed-segment spans recorded so far (up to
// maxSegmentSpans). The slice is owned by the session; valid until Close.
func (s *Session) SegmentSpans() []SegmentSpan { return s.spans }

// TagIndex returns the active tag index, or -1 in free-text mode.
func (s *Session) TagIndex() int { return s.mode }

// InTag reports whether the session is inside a constrained tag segment.
func (s *Session) InTag() bool { return s.mode >= 0 }

// Bytes returns the accepted stream so far (valid until the next call).
func (s *Session) Bytes() []byte { return s.bytes }

// errTerminated is preconstructed so the hot-path Accept does not box a
// format call on its error checks.
var errTerminated = errors.New("structtag: session already terminated")

// errStopInSegment and errSpecialToken keep fmt off the annotated Accept
// body; both run only on requests that are already failing.
func (s *Session) errStopInSegment() error {
	return fmt.Errorf("structtag: stop token inside a %q segment", s.ts.tags[s.mode].Begin)
}

func errSpecialToken(id int32) error {
	return fmt.Errorf("structtag: special token %d not allowed", id)
}

// Accept advances the session by one generated token. In free-text mode the
// token's bytes stream through the trigger trie (entering a tag segment the
// moment a begin tag completes, mid-token included); inside a segment they
// must advance the segment grammar. The stop token is only legal in
// free-text mode. On error the session is unchanged.
//
//xg:hotpath
func (s *Session) Accept(id int32) error {
	if s.terminated {
		return errTerminated
	}
	if id == tokenizer.EosID {
		if s.mode >= 0 {
			return s.errStopInSegment()
		}
		s.terminated = true
		s.bs.ClearAll()
		s.dirty = false
		s.lastStats = maskcache.FillStats{}
		return nil
	}
	if s.ts.tok.IsSpecial(id) {
		return errSpecialToken(id)
	}
	return s.acceptBytes(s.ts.tok.TokenBytes(id))
}

// AcceptString advances the session by raw bytes as one checkpoint (prompt
// priming, forced tag openings, jump-forward insertion). On error the
// session is unchanged.
func (s *Session) AcceptString(text string) error {
	if s.terminated {
		return fmt.Errorf("structtag: session already terminated")
	}
	return s.acceptBytes([]byte(text))
}

// acceptBytes runs one checkpointed step over the byte processor, restoring
// the pre-step state on failure.
func (s *Session) acceptBytes(b []byte) error {
	mark := len(s.bytes)
	rec, err := s.process(b)
	if err != nil {
		s.replayTo(mark)
		return err
	}
	s.pushStep(rec)
	s.dirty = true
	return nil
}

// process feeds bytes through the dispatcher: trie matching in free text,
// segment-grammar advances inside a tag, with mode transitions allowed
// mid-chunk in both directions. It appends to s.bytes as it goes and
// returns the step record.
func (s *Session) process(b []byte) (stepRec, error) {
	var rec stepRec
	i := 0
	for i < len(b) {
		if s.mode < 0 {
			ch := b[i]
			i++
			s.bytes = append(s.bytes, ch)
			rec.nbytes++
			if tag := s.feedTrie(ch); tag >= 0 {
				s.enterTag(tag)
				rec.transition = true
			}
			continue
		}
		// Inside a segment: feed the longest chunk the grammar takes. The
		// in-tag mask only admits tokens that stay inside the segment, so
		// the whole remaining chunk normally lands in one checkpoint; the
		// byte-at-a-time fallback handles teacher-forced tokens that span
		// the segment end.
		chunk := b[i:]
		if err := s.seg.AcceptBytes(chunk); err == nil {
			i += len(chunk)
			s.bytes = append(s.bytes, chunk...)
			rec.nbytes += int32(len(chunk))
			rec.segSteps++
			if s.segComplete() {
				s.leaveTag()
				rec.transition = true
			}
			continue
		}
		n, segSteps, err := s.feedSegmentBytewise(chunk)
		i += n
		rec.nbytes += int32(n)
		rec.segSteps += segSteps
		if err != nil {
			return rec, err
		}
		rec.transition = true // bytewise feed always ends by leaving the tag
	}
	return rec, nil
}

// feedSegmentBytewise advances the segment one byte at a time until it
// completes (returning how many bytes were consumed), for chunks that cross
// the segment end. A byte the segment rejects before completing fails the
// step.
func (s *Session) feedSegmentBytewise(chunk []byte) (int, int32, error) {
	var segSteps int32
	for n := 0; n < len(chunk); n++ {
		if err := s.seg.AcceptBytes(chunk[n : n+1]); err != nil {
			return n, segSteps, fmt.Errorf("structtag: byte %q violates the %q segment grammar: %w",
				chunk[n], s.ts.tags[s.mode].Begin, err)
		}
		segSteps++
		s.bytes = append(s.bytes, chunk[n])
		if s.segComplete() {
			s.leaveTag()
			return n + 1, segSteps, nil
		}
	}
	// The chunk was rejected as a whole but accepted byte-wise without
	// completing — impossible for a deterministic matcher; fail loudly.
	return len(chunk), segSteps, fmt.Errorf("structtag: inconsistent segment advance")
}

// feedTrie advances the trigger candidates by one byte and returns the
// completed tag index, or -1. Candidates stay ordered oldest-first, so when
// two begin tags complete on the same byte the longer (earlier-started)
// match wins.
func (s *Session) feedTrie(ch byte) int {
	tr := s.ts.trie
	next := s.candsNext[:0]
	done := -1
	for _, c := range s.cands {
		n := tr.Step(c, ch)
		if n < 0 {
			continue
		}
		if t := tr.Token(n); t >= 0 && done < 0 {
			done = int(t)
		}
		next = append(next, n)
	}
	if n := tr.Step(tr.Root(), ch); n >= 0 {
		if t := tr.Token(n); t >= 0 && done < 0 {
			done = int(t)
		}
		next = append(next, n)
	}
	s.cands, s.candsNext = next, s.cands
	return done
}

// enterTag switches into the tag's segment grammar.
func (s *Session) enterTag(tag int) {
	s.seg = s.ts.tags[tag].Pool.Acquire()
	s.mode = tag
	s.cands = s.cands[:0]
	if !s.replaying {
		//xg:allow noclock: segment entry is a rare mode transition, stamped once per tag, not per token
		s.segStart = time.Now()
	}
}

// leaveTag returns to free text, releasing the segment session. Rollbacks
// into the finished segment take the replay slow path, which re-acquires a
// fresh pooled session.
func (s *Session) leaveTag() {
	if !s.replaying && len(s.spans) < maxSegmentSpans {
		s.spans = append(s.spans, SegmentSpan{
			//xg:allow noclock: segment exit is a rare mode transition, stamped once per tag, not per token
			Tag: s.mode, Start: s.segStart, Dur: time.Since(s.segStart),
		})
	}
	s.seg.Close()
	s.seg = nil
	s.mode = -1
	s.freeStart = len(s.bytes)
}

// segComplete reports whether the active segment grammar has consumed its
// end tag: it can terminate and no byte can extend it. The mask probe rides
// the segment session's idempotent Fill, so the completion check and the
// next decode step share one mask computation.
func (s *Session) segComplete() bool {
	if !s.seg.CanTerminate() {
		return false
	}
	s.seg.Fill()
	eos := tokenizer.EosID
	for w, word := range s.seg.Mask() {
		if int32(w) == eos>>6 {
			word &^= 1 << uint(eos&63)
		}
		if word != 0 {
			return false
		}
	}
	return true
}

// Fill computes the allowed-token mask for the next decoding step: the
// free-text mask template (every regular token plus EOS) in free mode, the
// segment grammar's mask with EOS cleared inside a tag. Like serve.Session,
// Fill is idempotent between accepts.
func (s *Session) Fill() maskcache.FillStats {
	st, _ := s.FillTracked()
	return st
}

// FillTracked is Fill additionally reporting whether this call did the mask
// work (computed is false for the idempotent no-op), mirroring
// serve.Session.FillTracked so the engine's fill counters see both session
// kinds uniformly.
//
//xg:hotpath
func (s *Session) FillTracked() (maskcache.FillStats, bool) {
	if !s.dirty {
		return s.lastStats, false
	}
	if s.mode < 0 {
		copy(s.mask, s.ts.freeWords)
		// A template memcpy is the same fast path a fully context-independent
		// grammar state takes; Accepted is the precomputed template popcount.
		s.lastStats = maskcache.FillStats{Accepted: s.ts.freeCount, FastPath: true}
	} else {
		s.lastStats = s.seg.Fill()
		copy(s.mask, s.seg.Mask())
		eos := tokenizer.EosID
		if s.mask[eos>>6]&(1<<uint(eos&63)) != 0 {
			s.mask[eos>>6] &^= 1 << uint(eos&63)
			s.lastStats.Accepted--
		}
	}
	s.dirty = false
	return s.lastStats, true
}

// Mask returns the session's mask buffer; valid until the next Step/Fill.
func (s *Session) Mask() []uint64 { return s.mask }

// FillMask writes the allowed-token mask into a caller-provided bitset (the
// engine's baselines.Session fill path).
func (s *Session) FillMask(mask *bitset.Bitset) {
	s.Fill()
	copy(mask.Words(), s.mask)
}

// Step is the fused per-token call: accept, probe the jump-forward
// continuation, fill the next mask.
//
//xg:hotpath
func (s *Session) Step(id int32) (serve.StepResult, error) {
	var res serve.StepResult
	if err := s.Accept(id); err != nil {
		return res, err
	}
	if s.terminated {
		res.Terminated = true
		return res, nil
	}
	s.jf = s.jumpForwardAppend(s.jf)
	res.JumpForward = s.jf
	res.Stats = s.Fill()
	return res, nil
}

// JumpForward returns the deterministic continuation inside the active tag
// segment (JSON structure, forced keys, the end tag itself), or "" in free
// text — free text is never deterministic.
func (s *Session) JumpForward() string {
	if s.terminated || s.mode < 0 {
		return ""
	}
	return s.seg.JumpForward()
}

func (s *Session) jumpForwardAppend(dst []byte) []byte {
	if s.terminated || s.mode < 0 {
		return dst[:0]
	}
	return s.seg.JumpForwardAppend(dst)
}

// CanTerminate reports whether EOS is currently legal: free text only.
func (s *Session) CanTerminate() bool { return !s.terminated && s.mode < 0 }

// IsTerminated reports whether the stop token has been accepted.
func (s *Session) IsTerminated() bool { return s.terminated }

// HistoryCap returns the rollback window in accepted steps.
func (s *Session) HistoryCap() int { return len(s.steps) }

// HistoryLen returns the number of steps currently retractable.
func (s *Session) HistoryLen() int { return s.stepLen }

// pushStep appends a checkpoint to the ring, dropping the oldest once full.
func (s *Session) pushStep(rec stepRec) {
	s.steps[s.stepHead] = rec
	s.stepHead = (s.stepHead + 1) % len(s.steps)
	if s.stepLen < len(s.steps) {
		s.stepLen++
	}
}

// stepAt returns the i-th most recent step record (i in [1, stepLen]).
func (s *Session) stepAt(i int) *stepRec {
	idx := s.stepHead - i
	if idx < 0 {
		idx += len(s.steps)
	}
	return &s.steps[idx]
}

// Rollback undoes the last n Accept/AcceptString calls. It is atomic: on
// error (n exceeds the retained history) the session is unchanged. Windows
// that stay on one side of a mode transition retract through the segment
// matcher's checkpoint history; windows crossing a transition replay the
// retained byte stream.
func (s *Session) Rollback(n int) error {
	steps := n
	if s.terminated && steps > 0 {
		steps-- // undoing the terminating EOS costs no dispatcher step
	}
	if steps > s.stepLen {
		return fmt.Errorf("structtag: rollback %d exceeds retained history %d", steps, s.stepLen)
	}
	if steps > 0 {
		var nbytes, segSteps int32
		crossing := false
		for i := 1; i <= steps; i++ {
			r := s.stepAt(i)
			nbytes += r.nbytes
			segSteps += r.segSteps
			if r.transition {
				crossing = true
			}
		}
		target := len(s.bytes) - int(nbytes)
		fast := !crossing
		if fast && s.mode >= 0 && segSteps > 0 {
			fast = s.seg.Rollback(int(segSteps)) == nil
		}
		if fast {
			s.bytes = s.bytes[:target]
			s.popSteps(steps)
			if s.mode < 0 {
				s.rescanCandidates()
			}
			s.dirty = true
		} else {
			s.popSteps(steps)
			s.replayTo(target)
		}
	}
	if s.terminated && n > 0 {
		s.terminated = false
		s.dirty = true
	}
	return nil
}

// popSteps drops the newest n records from the ring.
func (s *Session) popSteps(n int) {
	s.stepHead -= n
	if s.stepHead < 0 {
		s.stepHead += len(s.steps)
	}
	s.stepLen -= n
}

// rescanCandidates rebuilds the trigger-trie candidates from the byte tail
// after a free-text truncation: only suffixes shorter than the longest
// begin tag can be live prefixes, and none may start before the current
// free-text run — bytes inside a just-closed segment (its content and end
// tag) never fed the trie, so resurrecting candidates from them would make
// a rolled-back session diverge from a straight decode of the same bytes.
func (s *Session) rescanCandidates() {
	s.cands = s.cands[:0]
	start := len(s.bytes) - (s.ts.maxBegin - 1)
	if start < s.freeStart {
		start = s.freeStart
	}
	tr := s.ts.trie
	for from := start; from < len(s.bytes); from++ {
		n := tr.Root()
		ok := true
		for _, ch := range s.bytes[from:] {
			if n = tr.Step(n, ch); n < 0 {
				ok = false
				break
			}
		}
		// A suffix that already completed a begin tag would have entered the
		// segment when originally accepted; only proper prefixes are live.
		if ok && tr.Token(n) < 0 {
			s.cands = append(s.cands, n)
		}
	}
}

// replayTo rebuilds the dispatcher state for the byte prefix of the given
// length: the slow rollback path for windows that cross a mode transition,
// and the restore path for failed accepts. Bytes older than the checkpoint
// ring are re-fed as one chunk (they can never be rolled back), then each
// retained step's bytes re-run through the processor so the ring's segment
// checkpoint counts stay aligned with the fresh segment session.
func (s *Session) replayTo(target int) {
	if s.seg != nil {
		s.seg.Close()
		s.seg = nil
	}
	s.mode = -1
	s.cands = s.cands[:0]
	s.freeStart = 0
	s.replaying = true
	defer func() { s.replaying = false }()
	replay := s.bytes[:target:target]
	s.bytes = s.bytes[:0]

	var ringBytes int32
	for i := 1; i <= s.stepLen; i++ {
		ringBytes += s.stepAt(i).nbytes
	}
	pre := target - int(ringBytes)
	if pre < 0 {
		// Records beyond the target (a failed accept's partial step) are not
		// in the ring; everything replayed is pre-history relative to it.
		pre = target
	}
	if pre > 0 {
		if _, err := s.process(replay[:pre]); err != nil {
			panic(fmt.Sprintf("structtag: replay diverged on accepted bytes: %v", err))
		}
	}
	off := pre
	for i := s.stepLen; i >= 1; i-- {
		r := s.stepAt(i)
		end := off + int(r.nbytes)
		if end > target {
			end = target
		}
		rec, err := s.process(replay[off:end])
		if err != nil {
			panic(fmt.Sprintf("structtag: replay diverged on accepted bytes: %v", err))
		}
		*r = rec
		off = end
	}
	s.dirty = true
}

// Close releases the session (and any active segment session) back to the
// pools. The session must not be used afterwards.
func (s *Session) Close() {
	if s.seg != nil {
		s.seg.Close()
		s.seg = nil
	}
	s.mode = -1
	s.cands = s.cands[:0]
	s.bytes = s.bytes[:0]
	s.stepHead, s.stepLen = 0, 0
	s.freeStart = 0
	s.terminated = false
	s.dirty = true
	s.lastStats = maskcache.FillStats{}
	s.spans = s.spans[:0]
	s.replaying = false
	s.ts.pool.Put(s)
}
