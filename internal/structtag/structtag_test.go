package structtag_test

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"xgrammar"
	"xgrammar/internal/structtag"
)

const intSchema = `{
	"type": "object",
	"properties": {"a": {"type": "integer", "minimum": 0, "maximum": 99}},
	"required": ["a"]
}`

const strSchema = `{
	"type": "object",
	"properties": {"q": {"type": "string", "maxLength": 6}},
	"required": ["q"]
}`

var (
	setupOnce sync.Once
	testInfo  *xgrammar.TokenizerInfo
	testComp  *xgrammar.Compiler
	testSet   *structtag.Set
	testTags  *xgrammar.CompiledTagSet
)

// setup compiles a two-tag set shared by the tests: <t>…</t> carrying
// intSchema and <q>…</q> carrying strSchema.
func setup(t *testing.T) {
	t.Helper()
	setupOnce.Do(func() {
		testInfo = xgrammar.DefaultTokenizer(2000)
		testComp = xgrammar.NewCompiler(testInfo)
		ts, err := testComp.CompileStructuralTags(xgrammar.StructuralTags{
			{Begin: "<t>", Grammar: xgrammar.GrammarSpec{Kind: xgrammar.KindJSONSchema, Source: intSchema}, End: "</t>"},
			{Begin: "<q>", Grammar: xgrammar.GrammarSpec{Kind: xgrammar.KindJSONSchema, Source: strSchema}, End: "</q>"},
		})
		if err != nil {
			panic(err)
		}
		testTags = ts
		testSet = ts.Dispatch()
	})
	if testSet == nil {
		t.Fatal("setup failed")
	}
}

func maskEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// oracle returns a fresh session advanced over the byte stream in one
// checkpoint — dispatcher state is a pure function of the stream, so any
// chunking must land in the same mode with the same mask.
func oracle(t *testing.T, stream []byte) *structtag.Session {
	t.Helper()
	o := testSet.Acquire()
	if len(stream) > 0 {
		if err := o.AcceptString(string(stream)); err != nil {
			t.Fatalf("oracle rejected accepted stream %q: %v", stream, err)
		}
	}
	o.Fill()
	return o
}

// checkAgainstOracle compares a session's observable state with a fresh
// session fed the same bytes.
func checkAgainstOracle(t *testing.T, s *structtag.Session, context string) {
	t.Helper()
	o := oracle(t, s.Bytes())
	defer o.Close()
	s.Fill()
	if s.InTag() != o.InTag() || s.TagIndex() != o.TagIndex() {
		t.Fatalf("%s: mode (%v, %d) != oracle (%v, %d) for stream %q",
			context, s.InTag(), s.TagIndex(), o.InTag(), o.TagIndex(), s.Bytes())
	}
	if s.CanTerminate() != o.CanTerminate() {
		t.Fatalf("%s: CanTerminate %v != oracle %v for stream %q", context, s.CanTerminate(), o.CanTerminate(), s.Bytes())
	}
	if !maskEqual(s.Mask(), o.Mask()) {
		t.Fatalf("%s: mask diverges from oracle for stream %q (in tag: %v)", context, s.Bytes(), s.InTag())
	}
}

func TestFreeTagFreeRoundTrip(t *testing.T) {
	setup(t)
	s := testSet.Acquire()
	defer s.Close()
	if s.InTag() {
		t.Fatal("fresh session not in free mode")
	}
	if err := s.AcceptString("some prose "); err != nil {
		t.Fatal(err)
	}
	if s.InTag() || !s.CanTerminate() {
		t.Fatal("free text flipped mode")
	}
	if err := s.AcceptString("<t>"); err != nil {
		t.Fatal(err)
	}
	if !s.InTag() || s.TagIndex() != 0 {
		t.Fatalf("begin tag did not enter tag 0 (in tag %v, idx %d)", s.InTag(), s.TagIndex())
	}
	if s.CanTerminate() {
		t.Fatal("EOS legal inside a segment")
	}
	if err := s.AcceptString(`{"a": 7}`); err != nil {
		t.Fatal(err)
	}
	if !s.InTag() {
		t.Fatal("left tag before the end tag")
	}
	if err := s.AcceptString("</t>"); err != nil {
		t.Fatal(err)
	}
	if s.InTag() {
		t.Fatal("end tag did not return to free text")
	}
	if err := s.AcceptString(" and more prose, then a second call <q>"); err != nil {
		t.Fatal(err)
	}
	if !s.InTag() || s.TagIndex() != 1 {
		t.Fatalf("second tag not entered (in tag %v, idx %d)", s.InTag(), s.TagIndex())
	}
	if err := s.AcceptString(`{"q": "hi"}</q>`); err != nil {
		t.Fatal(err)
	}
	if s.InTag() {
		t.Fatal("second segment did not close")
	}
	if err := s.Accept(testInfo.EOSTokenID()); err != nil {
		t.Fatal(err)
	}
	if !s.IsTerminated() {
		t.Fatal("EOS did not terminate")
	}
}

func TestMidTokenEntryAndExit(t *testing.T) {
	setup(t)
	s := testSet.Acquire()
	defer s.Close()
	// One step whose bytes cross free → tag.
	if err := s.AcceptString(`x<t>{`); err != nil {
		t.Fatal(err)
	}
	if !s.InTag() {
		t.Fatal("mid-chunk entry missed")
	}
	checkAgainstOracle(t, s, "mid-token entry")
	// One step whose bytes cross tag → free (segment end plus trailing
	// prose) — the byte-wise fallback path.
	if err := s.AcceptString(`"a": 4}</t> done`); err != nil {
		t.Fatal(err)
	}
	if s.InTag() {
		t.Fatal("mid-chunk exit missed")
	}
	checkAgainstOracle(t, s, "mid-token exit")
}

func TestFreeMaskAllowsEverythingRegular(t *testing.T) {
	setup(t)
	s := testSet.Acquire()
	defer s.Close()
	s.Fill()
	mask := s.Mask()
	eos := testInfo.EOSTokenID()
	if mask[eos>>6]&(1<<uint(eos&63)) == 0 {
		t.Fatal("EOS not allowed in free text")
	}
	allowed := 0
	for id := 0; id < testInfo.VocabSize(); id++ {
		if mask[id>>6]&(1<<uint(id&63)) != 0 {
			allowed++
		}
	}
	// Every regular token plus EOS; pad and bos cleared.
	if allowed != testInfo.VocabSize()-2 {
		t.Fatalf("free mask allows %d of %d tokens", allowed, testInfo.VocabSize())
	}
	// In-tag masks clear EOS.
	if err := s.AcceptString("<t>"); err != nil {
		t.Fatal(err)
	}
	s.Fill()
	if s.Mask()[eos>>6]&(1<<uint(eos&63)) != 0 {
		t.Fatal("EOS allowed inside a segment")
	}
}

func TestSegmentMaskConstrains(t *testing.T) {
	setup(t)
	s := testSet.Acquire()
	defer s.Close()
	if err := s.AcceptString(`<t>{"a": `); err != nil {
		t.Fatal(err)
	}
	s.Fill()
	mask := s.Mask()
	// Only digits can follow; a letter token must be masked out.
	bad := testInfo.Encode("x")[0]
	if mask[bad>>6]&(1<<uint(bad&63)) != 0 {
		t.Fatal("segment mask allows a letter where the schema needs a digit")
	}
}

func TestJumpForwardInsideSegment(t *testing.T) {
	setup(t)
	s := testSet.Acquire()
	defer s.Close()
	if s.JumpForward() != "" {
		t.Fatal("free text reported a deterministic continuation")
	}
	if err := s.AcceptString("<t>"); err != nil {
		t.Fatal(err)
	}
	jf := s.JumpForward()
	if !strings.HasPrefix(jf, `{"a": `) {
		t.Fatalf("jump-forward inside segment = %q, want the forced object prefix", jf)
	}
	if err := s.AcceptString(jf); err != nil {
		t.Fatalf("inserting own jump-forward failed: %v", err)
	}
	// After the integer, the continuation is the closing brace + end tag.
	if err := s.AcceptString("42"); err != nil {
		t.Fatal(err)
	}
	jf = s.JumpForward()
	if jf != "}</t>" {
		t.Fatalf("jump-forward at segment end = %q, want \"}</t>\"", jf)
	}
	if err := s.AcceptString(jf); err != nil {
		t.Fatal(err)
	}
	if s.InTag() {
		t.Fatal("jump-forward through the end tag did not close the segment")
	}
}

func TestRollbackWithinFreeText(t *testing.T) {
	setup(t)
	s := testSet.Acquire()
	defer s.Close()
	for _, chunk := range []string{"ab", "c<", "t"} {
		if err := s.AcceptString(chunk); err != nil {
			t.Fatal(err)
		}
	}
	// Roll back "t" — the "<" trigger prefix must be live again.
	if err := s.Rollback(1); err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, s, "free rollback")
	if err := s.AcceptString("q>"); err != nil {
		t.Fatal(err)
	}
	if !s.InTag() || s.TagIndex() != 1 {
		t.Fatal("trigger prefix lost across free-text rollback")
	}
}

func TestRollbackWithinSegment(t *testing.T) {
	setup(t)
	s := testSet.Acquire()
	defer s.Close()
	if err := s.AcceptString("<t>"); err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []string{`{"a"`, `: 1`, `2`} {
		if err := s.AcceptString(chunk); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Rollback(2); err != nil { // retract ": 1" and "2"
		t.Fatal(err)
	}
	checkAgainstOracle(t, s, "in-segment rollback")
	if err := s.AcceptString(`: 34}</t>`); err != nil {
		t.Fatal(err)
	}
	if s.InTag() {
		t.Fatal("segment did not close after rollback and re-accept")
	}
}

func TestRollbackAcrossEntry(t *testing.T) {
	setup(t)
	s := testSet.Acquire()
	defer s.Close()
	if err := s.AcceptString("pre "); err != nil {
		t.Fatal(err)
	}
	if err := s.AcceptString("<t>"); err != nil {
		t.Fatal(err)
	}
	if err := s.AcceptString(`{"a": 5`); err != nil {
		t.Fatal(err)
	}
	// Retract the segment content and the entry itself.
	if err := s.Rollback(2); err != nil {
		t.Fatal(err)
	}
	if s.InTag() {
		t.Fatal("rollback across entry left the session in tag mode")
	}
	checkAgainstOracle(t, s, "rollback across entry")
	// The stream can now continue as plain free text.
	if err := s.AcceptString("no tag after all"); err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, s, "free continuation after entry rollback")
}

func TestRollbackAcrossExit(t *testing.T) {
	setup(t)
	s := testSet.Acquire()
	defer s.Close()
	if err := s.AcceptString(`<t>{"a": 5}`); err != nil {
		t.Fatal(err)
	}
	if err := s.AcceptString(`</t>`); err != nil {
		t.Fatal(err)
	}
	if err := s.AcceptString(` after`); err != nil {
		t.Fatal(err)
	}
	// Retract the trailing prose and the segment close: back inside the tag.
	if err := s.Rollback(2); err != nil {
		t.Fatal(err)
	}
	if !s.InTag() || s.TagIndex() != 0 {
		t.Fatal("rollback across exit did not re-enter the segment")
	}
	checkAgainstOracle(t, s, "rollback across exit")
	// Close it again and terminate.
	if err := s.AcceptString("</t>"); err != nil {
		t.Fatal(err)
	}
	if err := s.Accept(testInfo.EOSTokenID()); err != nil {
		t.Fatal(err)
	}
}

func TestFailedAcceptLeavesStateUnchanged(t *testing.T) {
	setup(t)
	s := testSet.Acquire()
	defer s.Close()
	if err := s.AcceptString("hello "); err != nil {
		t.Fatal(err)
	}
	before := append([]byte(nil), s.Bytes()...)
	s.Fill()
	maskBefore := append([]uint64(nil), s.Mask()...)
	// A chunk that completes the begin tag and then violates the schema.
	if err := s.AcceptString("<t>zzz"); err == nil {
		t.Fatal("illegal segment tail accepted")
	}
	if string(s.Bytes()) != string(before) {
		t.Fatalf("failed accept mutated the stream: %q -> %q", before, s.Bytes())
	}
	if s.InTag() {
		t.Fatal("failed accept left tag mode active")
	}
	s.Fill()
	if !maskEqual(s.Mask(), maskBefore) {
		t.Fatal("failed accept changed the mask")
	}
	// The session still works.
	if err := s.AcceptString(`<t>{"a": 1}</t>`); err != nil {
		t.Fatal(err)
	}
}

func TestEOSOnlyInFreeText(t *testing.T) {
	setup(t)
	s := testSet.Acquire()
	defer s.Close()
	if err := s.AcceptString("<t>"); err != nil {
		t.Fatal(err)
	}
	if err := s.Accept(testInfo.EOSTokenID()); err == nil {
		t.Fatal("EOS accepted inside a segment")
	}
}

func TestSetValidation(t *testing.T) {
	setup(t)
	mk := func(begins ...string) error {
		var tags xgrammar.StructuralTags
		for _, b := range begins {
			tags = append(tags, xgrammar.StructuralTag{
				Begin:   b,
				Grammar: xgrammar.GrammarSpec{Kind: xgrammar.KindJSONSchema, Source: intSchema},
				End:     "</t>",
			})
		}
		_, err := testComp.CompileStructuralTags(tags)
		return err
	}
	if err := mk(); err == nil {
		t.Error("empty tag list compiled")
	}
	if err := mk(""); err == nil {
		t.Error("empty begin tag compiled")
	}
	if err := mk("<a>", "<a>b"); err == nil {
		t.Error("prefix-overlapping begin tags compiled")
	}
	if err := mk("<a>", "<b>"); err != nil {
		t.Errorf("valid tag set rejected: %v", err)
	}
}

// TestRandomWalkAgainstOracle drives a session with random mask-legal
// tokens and random rollbacks, comparing the observable state against a
// fresh session fed the same byte stream after every operation. This is the
// dispatch-state soundness test: mode, masks, and termination must be a
// pure function of the accepted stream no matter how it was chunked,
// rolled back, or replayed.
func TestRandomWalkAgainstOracle(t *testing.T) {
	setup(t)
	rng := rand.New(rand.NewSource(7))
	eos := testInfo.EOSTokenID()
	for trial := 0; trial < 8; trial++ {
		s := testSet.Acquire()
		var stepBytes []int // bytes per accepted step, for mirror truncation
		var allowed []int32
		for op := 0; op < 120; op++ {
			// Occasionally force progress toward a tag so segments happen.
			if !s.InTag() && rng.Intn(10) == 0 {
				begin := testSet.Tags()[rng.Intn(2)].Begin
				if err := s.AcceptString(begin); err != nil {
					t.Fatal(err)
				}
				stepBytes = append(stepBytes, len(begin))
				continue
			}
			if rng.Intn(6) == 0 && len(stepBytes) > 0 {
				n := rng.Intn(min(len(stepBytes), s.HistoryCap())) + 1
				if err := s.Rollback(n); err != nil {
					t.Fatal(err)
				}
				stepBytes = stepBytes[:len(stepBytes)-n]
				checkAgainstOracle(t, s, fmt.Sprintf("trial %d op %d rollback %d", trial, op, n))
				continue
			}
			s.Fill()
			mask := s.Mask()
			allowed = allowed[:0]
			for id := int32(0); int(id) < testInfo.VocabSize(); id++ {
				if id != eos && mask[id>>6]&(1<<uint(id&63)) != 0 {
					allowed = append(allowed, id)
				}
			}
			if len(allowed) == 0 {
				t.Fatalf("trial %d op %d: empty mask (in tag %v)", trial, op, s.InTag())
			}
			id := allowed[rng.Intn(len(allowed))]
			before := len(s.Bytes())
			if err := s.Accept(id); err != nil {
				t.Fatalf("trial %d op %d: mask-legal token %d (%q) rejected: %v",
					trial, op, id, testInfo.TokenBytes(id), err)
			}
			stepBytes = append(stepBytes, len(s.Bytes())-before)
			if op%10 == 0 {
				checkAgainstOracle(t, s, fmt.Sprintf("trial %d op %d accept", trial, op))
			}
		}
		checkAgainstOracle(t, s, fmt.Sprintf("trial %d end", trial))
		s.Close()
	}
}

// TestTaggedSegmentsParse drives a full scripted generation and checks every
// tagged segment parses under its schema.
func TestTaggedSegmentsParse(t *testing.T) {
	setup(t)
	s := testSet.Acquire()
	defer s.Close()
	script := `thinking... <t>{"a": 12}</t> now a query <q>{"q": "books"}</q> bye`
	if err := s.AcceptString(script); err != nil {
		t.Fatal(err)
	}
	out := string(s.Bytes())
	for _, seg := range [][2]string{{"<t>", "</t>"}, {"<q>", "</q>"}} {
		i := strings.Index(out, seg[0])
		j := strings.Index(out, seg[1])
		if i < 0 || j < 0 {
			t.Fatalf("segment %s missing from %q", seg[0], out)
		}
		var v map[string]any
		if err := json.Unmarshal([]byte(out[i+len(seg[0]):j]), &v); err != nil {
			t.Fatalf("segment %s content does not parse: %v", seg[0], err)
		}
	}
}

func TestConcurrentSessions(t *testing.T) {
	setup(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for iter := 0; iter < 5; iter++ {
				s := testSet.Acquire()
				if err := s.AcceptString("go "); err != nil {
					panic(err)
				}
				if rng.Intn(2) == 0 {
					if err := s.AcceptString(`<t>{"a": 3}</t>`); err != nil {
						panic(err)
					}
				}
				s.Fill()
				s.Close()
			}
		}(int64(g))
	}
	wg.Wait()
}

// TestSteadyStateAllocs pins the 0-alloc hot path: free-text and in-segment
// Accept+Fill steps must not allocate once buffers have warmed up.
func TestSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	setup(t)
	s := testSet.Acquire()
	defer s.Close()
	tok := testInfo.Encode("a")[0]
	// Warm up the byte buffer.
	for i := 0; i < 64; i++ {
		if err := s.Accept(tok); err != nil {
			t.Fatal(err)
		}
		s.Fill()
	}
	free := testing.AllocsPerRun(200, func() {
		if err := s.Accept(tok); err != nil {
			t.Fatal(err)
		}
		s.Fill()
	})
	if free > 0.1 {
		t.Errorf("free-text step allocates %.2f/op", free)
	}
	// A full tool-call cycle as sampled tokens (AcceptString is excluded:
	// its string-to-bytes conversion is the caller's allocation).
	script := testInfo.Encode(`<t>{"a": 1}</t>`)
	cycle := func() {
		for _, id := range script {
			if err := s.Accept(id); err != nil {
				t.Fatal(err)
			}
			s.Fill()
		}
	}
	for i := 0; i < 4; i++ {
		cycle() // warm segment pools and scratch
	}
	inTag := testing.AllocsPerRun(50, cycle)
	if inTag > 0.5 {
		t.Errorf("in-segment cycle allocates %.2f/op", inTag)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestRollbackDoesNotResurrectCandidatesFromSegmentBytes is the regression
// for the fast-path free-text rollback: trigger candidates must never be
// rebuilt from bytes that belonged to a just-closed segment (its content
// and end tag never fed the trie), or a rolled-back session diverges from
// a straight decode of the same stream. Tag begins "<a>" and "a>x" are
// prefix-free, but "a>" — the tail of "<a>"'s end tag "</a>" — is a proper
// prefix of "a>x".
func TestRollbackDoesNotResurrectCandidatesFromSegmentBytes(t *testing.T) {
	setup(t)
	info := xgrammar.DefaultTokenizer(2000)
	comp := xgrammar.NewCompiler(info)
	ts, err := comp.CompileStructuralTags(xgrammar.StructuralTags{
		{Begin: "<a>", Grammar: xgrammar.GrammarSpec{Kind: xgrammar.KindJSONSchema, Source: intSchema}, End: "</a>"},
		{Begin: "a>x", Grammar: xgrammar.GrammarSpec{Kind: xgrammar.KindJSONSchema, Source: intSchema}, End: "</x>"},
	})
	if err != nil {
		t.Fatal(err)
	}
	set := ts.Dispatch()
	s := set.Acquire()
	defer s.Close()
	if err := s.AcceptString(`<a>{"a": 1}</a>`); err != nil {
		t.Fatal(err)
	}
	if s.InTag() {
		t.Fatal("segment did not close")
	}
	// Two free steps, then a fast-path rollback (no transition in window).
	if err := s.AcceptString("q"); err != nil {
		t.Fatal(err)
	}
	if err := s.AcceptString("r"); err != nil {
		t.Fatal(err)
	}
	if err := s.Rollback(2); err != nil {
		t.Fatal(err)
	}
	// "x" must stay free text: the "a>" suffix belongs to the closed
	// segment's end tag and must not combine into the "a>x" trigger.
	if err := s.AcceptString("x"); err != nil {
		t.Fatal(err)
	}
	if s.InTag() {
		t.Fatal("rollback resurrected a trigger candidate from segment bytes")
	}
	// And the full state matches a straight decode of the same stream.
	o := set.Acquire()
	defer o.Close()
	if err := o.AcceptString(string(s.Bytes())); err != nil {
		t.Fatal(err)
	}
	o.Fill()
	s.Fill()
	if o.InTag() != s.InTag() || !maskEqual(o.Mask(), s.Mask()) {
		t.Fatal("rolled-back session diverges from straight decode")
	}
}
