package quantile

import (
	"testing"
	"time"
)

func TestRank(t *testing.T) {
	cases := []struct {
		n    int
		p    float64
		want int
	}{
		{0, 0.99, -1},
		{1, 0.50, 0},
		{1, 0.99, 0},
		{2, 0.50, 0},
		{2, 0.99, 1},
		{4, 0.50, 1},
		{10, 0.50, 4},
		{10, 0.99, 9},
		// The regression the truncating helper got wrong: 0.99*49 = 48.51
		// truncated to index 48 (rank 49); nearest rank is ceil(49.5) = 50,
		// index 49.
		{50, 0.99, 49},
		{100, 0.50, 49},
		// p99 of 100 samples is the 99th-rank value (index 98), not the max.
		{100, 0.99, 98},
		{100, 1.00, 99},
		{1000, 0.999, 998},
		{3, 0.0, 0},
	}
	for _, c := range cases {
		if got := Rank(c.n, c.p); got != c.want {
			t.Errorf("Rank(%d, %g) = %d, want %d", c.n, c.p, got, c.want)
		}
	}
}

// TestDurationsLadder pins the acceptance criterion: on a 100-sample ladder
// 1ms..100ms, p99 returns the 99th-rank value (99ms), and p50 the 50th
// (50ms).
func TestDurationsLadder(t *testing.T) {
	lats := make([]time.Duration, 100)
	for i := range lats {
		// Shuffle-ish order: Durations must sort its own copy.
		lats[(i*37)%100] = time.Duration(i+1) * time.Millisecond
	}
	q := Durations(lats, 0.50, 0.99, 1.0)
	if q[0] != 50*time.Millisecond {
		t.Errorf("p50 = %v, want 50ms", q[0])
	}
	if q[1] != 99*time.Millisecond {
		t.Errorf("p99 = %v, want 99ms", q[1])
	}
	if q[2] != 100*time.Millisecond {
		t.Errorf("p100 = %v, want 100ms", q[2])
	}
	// Input must not be mutated (still the shuffled order).
	sortedInPlace := true
	for i := 1; i < len(lats); i++ {
		if lats[i] < lats[i-1] {
			sortedInPlace = false
			break
		}
	}
	if sortedInPlace {
		t.Error("Durations sorted the caller's sample in place")
	}
}

func TestDurationsSmallSamples(t *testing.T) {
	if q := Durations(nil, 0.5, 0.99); q[0] != 0 || q[1] != 0 {
		t.Errorf("empty sample: got %v, want zeros", q)
	}
	one := []time.Duration{7 * time.Microsecond}
	q := Durations(one, 0.5, 0.99)
	if q[0] != one[0] || q[1] != one[0] {
		t.Errorf("single sample: got %v, want both 7us", q)
	}
	// 50-sample ladder: p99 must be the maximum (rank 50), the case the
	// truncating implementation under-reported (it returned rank 49).
	lats := make([]time.Duration, 50)
	for i := range lats {
		lats[i] = time.Duration(i+1) * time.Microsecond
	}
	if got := Durations(lats, 0.99)[0]; got != 50*time.Microsecond {
		t.Errorf("p99 of 50-ladder = %v, want 50us", got)
	}
}

func TestRingWindow(t *testing.T) {
	r := NewRing(4)
	if q := r.Quantiles(0.5, 0.99); q[0] != 0 || q[1] != 0 {
		t.Fatalf("empty ring quantiles = %v, want zeros", q)
	}
	for i := 1; i <= 4; i++ {
		r.Observe(time.Duration(i) * time.Millisecond)
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	// Window full: two more evict the oldest two (1ms, 2ms).
	r.Observe(10 * time.Millisecond)
	r.Observe(20 * time.Millisecond)
	if r.Len() != 4 {
		t.Fatalf("Len after wrap = %d, want 4", r.Len())
	}
	q := r.Quantiles(0.99)
	if q[0] != 20*time.Millisecond {
		t.Fatalf("p99 = %v, want 20ms", q[0])
	}
	qlo := r.Quantiles(0.25)
	if qlo[0] != 3*time.Millisecond {
		t.Fatalf("p25 = %v, want 3ms (oldest samples evicted)", qlo[0])
	}
}

func TestRingTinyCapacity(t *testing.T) {
	r := NewRing(0) // normalised to 1
	r.Observe(time.Second)
	r.Observe(2 * time.Second)
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
	if q := r.Quantiles(0.5); q[0] != 2*time.Second {
		t.Fatalf("p50 = %v, want the last sample", q[0])
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1e-6, 4, 5)
	want := []float64{1e-6, 4e-6, 16e-6, 64e-6, 256e-6}
	if len(b) != len(want) {
		t.Fatalf("len = %d, want %d", len(b), len(want))
	}
	for i := range want {
		if diff := b[i]/want[i] - 1; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not strictly increasing at %d", i)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ExpBuckets(0, 2, 3) should panic")
		}
	}()
	ExpBuckets(0, 2, 3)
}
