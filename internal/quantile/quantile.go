// Package quantile is the one shared implementation of the nearest-rank
// percentile used by the serving metrics (engine fill latencies, gateway
// /metrics). Nearest rank is ceil-based: the p-quantile of n samples is the
// value at rank ceil(p*n) (1-based). The previously duplicated helpers used
// int(p*(n-1)), which truncates toward zero and under-reports the tail on
// small samples — p99 of 50 samples landed on rank 49 instead of 50.
package quantile

import (
	"math"
	"sort"
	"time"
)

// Rank returns the 0-based index of the p-quantile in a sorted sample of n
// values, using the ceil-based nearest-rank definition: index ceil(p*n)-1,
// clamped to [0, n-1]. Rank(0, p) is -1 (no sample).
func Rank(n int, p float64) int {
	if n <= 0 {
		return -1
	}
	i := int(math.Ceil(p*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i > n-1 {
		i = n - 1
	}
	return i
}

// Durations returns the requested quantiles of the (unsorted) latency
// sample, in the order of ps. The input is not modified; one sorted copy
// serves every requested quantile. An empty sample yields all zeros.
func Durations(lats []time.Duration, ps ...float64) []time.Duration {
	out := make([]time.Duration, len(ps))
	if len(lats) == 0 {
		return out
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, p := range ps {
		out[i] = sorted[Rank(len(sorted), p)]
	}
	return out
}
