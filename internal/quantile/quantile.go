// Package quantile is the one shared implementation of the nearest-rank
// percentile used by the serving metrics (engine fill latencies, gateway
// /metrics). Nearest rank is ceil-based: the p-quantile of n samples is the
// value at rank ceil(p*n) (1-based). The previously duplicated helpers used
// int(p*(n-1)), which truncates toward zero and under-reports the tail on
// small samples — p99 of 50 samples landed on rank 49 instead of 50.
package quantile

import (
	"math"
	"sort"
	"sync"
	"time"
)

// Rank returns the 0-based index of the p-quantile in a sorted sample of n
// values, using the ceil-based nearest-rank definition: index ceil(p*n)-1,
// clamped to [0, n-1]. Rank(0, p) is -1 (no sample).
func Rank(n int, p float64) int {
	if n <= 0 {
		return -1
	}
	i := int(math.Ceil(p*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i > n-1 {
		i = n - 1
	}
	return i
}

// Durations returns the requested quantiles of the (unsorted) latency
// sample, in the order of ps. The input is not modified; one sorted copy
// serves every requested quantile. An empty sample yields all zeros.
func Durations(lats []time.Duration, ps ...float64) []time.Duration {
	out := make([]time.Duration, len(ps))
	if len(lats) == 0 {
		return out
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, p := range ps {
		out[i] = sorted[Rank(len(sorted), p)]
	}
	return out
}

// Ring is a bounded, concurrency-safe sliding window of latency samples:
// once full, each Observe overwrites the oldest sample. It replaces the
// hand-rolled (mutex, slice, next-index) triples that the gateway and the
// batcher each duplicated for their p50/p99 snapshots.
type Ring struct {
	mu   sync.Mutex
	buf  []time.Duration
	next int
}

// NewRing returns a ring keeping the most recent capacity samples.
// capacity <= 0 is normalised to 1.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 1
	}
	return &Ring{buf: make([]time.Duration, 0, capacity)}
}

// Observe records one sample, evicting the oldest when the window is full.
func (r *Ring) Observe(d time.Duration) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, d)
	} else {
		r.buf[r.next] = d
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.mu.Unlock()
}

// Len returns the number of samples currently in the window.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Quantiles returns the requested quantiles over the current window, in the
// order of ps. An empty window yields all zeros.
func (r *Ring) Quantiles(ps ...float64) []time.Duration {
	r.mu.Lock()
	snap := append([]time.Duration(nil), r.buf...)
	r.mu.Unlock()
	return Durations(snap, ps...)
}

// ExpBuckets returns n exponentially spaced histogram bucket upper bounds
// starting at start: start, start*factor, start*factor², … — the explicit
// boundary set the observability layer feeds its Prometheus histograms.
// Panics on non-positive start or n, or factor <= 1, because bucket layouts
// are compile-time decisions and a silent empty layout would hide the bug.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic("quantile: ExpBuckets needs start > 0, factor > 1, n > 0")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}
