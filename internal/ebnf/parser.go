package ebnf

import (
	"fmt"

	"xgrammar/internal/grammar"
)

// Parse parses EBNF source into a validated Grammar. The root rule is the
// one named "root" or "main" if present, otherwise the first rule.
func Parse(src string) (*grammar.Grammar, error) {
	p := &parser{lex: newLexer(src), ruleIdx: map[string]int{}}
	if err := p.fill(); err != nil {
		return nil, err
	}
	g, err := p.parseGrammar()
	if err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// MustParse is Parse but panics on error; for built-in grammars and tests.
func MustParse(src string) *grammar.Grammar {
	g, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return g
}

type parser struct {
	lex *lexer
	// Two-token lookahead so `ident ::=` can end the previous rule body.
	buf [2]token
	// pending references to rules not yet defined: name -> refs
	pending map[string][]*grammar.RuleRef
	ruleIdx map[string]int
	g       grammar.Grammar
}

func (p *parser) fill() error {
	for i := range p.buf {
		t, err := p.lex.next()
		if err != nil {
			return err
		}
		p.buf[i] = t
	}
	return nil
}

func (p *parser) peek() token  { return p.buf[0] }
func (p *parser) peek2() token { return p.buf[1] }

func (p *parser) advance() (token, error) {
	t := p.buf[0]
	p.buf[0] = p.buf[1]
	nt, err := p.lex.next()
	if err != nil {
		return token{}, err
	}
	p.buf[1] = nt
	return t, nil
}

func (p *parser) expect(k tokenKind) (token, error) {
	t := p.peek()
	if t.kind != k {
		return token{}, fmt.Errorf("ebnf: %d:%d: expected %v, found %v", t.line, t.col, k, t.kind)
	}
	return p.advance()
}

// atRuleStart reports whether the lookahead is `ident ::=`.
func (p *parser) atRuleStart() bool {
	return p.peek().kind == tokIdent && p.peek2().kind == tokAssign
}

func (p *parser) parseGrammar() (*grammar.Grammar, error) {
	p.pending = map[string][]*grammar.RuleRef{}
	for p.peek().kind != tokEOF {
		if !p.atRuleStart() {
			t := p.peek()
			return nil, fmt.Errorf("ebnf: %d:%d: expected rule definition, found %v", t.line, t.col, t.kind)
		}
		nameTok, err := p.advance()
		if err != nil {
			return nil, err
		}
		if _, dup := p.ruleIdx[nameTok.text]; dup {
			return nil, fmt.Errorf("ebnf: %d:%d: duplicate rule %q", nameTok.line, nameTok.col, nameTok.text)
		}
		if _, err := p.expect(tokAssign); err != nil {
			return nil, err
		}
		body, err := p.parseChoice()
		if err != nil {
			return nil, err
		}
		idx := len(p.g.Rules)
		p.g.Rules = append(p.g.Rules, grammar.Rule{Name: nameTok.text, Body: body})
		p.ruleIdx[nameTok.text] = idx
	}
	if len(p.g.Rules) == 0 {
		return nil, fmt.Errorf("ebnf: no rules defined")
	}
	// Resolve forward references.
	for name, refs := range p.pending {
		idx, ok := p.ruleIdx[name]
		if !ok {
			return nil, fmt.Errorf("ebnf: undefined rule %q", name)
		}
		for _, r := range refs {
			r.Index = idx
		}
	}
	// Root selection: "root", then "main", then the first rule.
	p.g.Root = 0
	if idx, ok := p.ruleIdx["root"]; ok {
		p.g.Root = idx
	} else if idx, ok := p.ruleIdx["main"]; ok {
		p.g.Root = idx
	}
	return &p.g, nil
}

func (p *parser) parseChoice() (grammar.Expr, error) {
	first, err := p.parseSeq()
	if err != nil {
		return nil, err
	}
	alts := []grammar.Expr{first}
	for p.peek().kind == tokPipe {
		if _, err := p.advance(); err != nil {
			return nil, err
		}
		next, err := p.parseSeq()
		if err != nil {
			return nil, err
		}
		alts = append(alts, next)
	}
	if len(alts) == 1 {
		return alts[0], nil
	}
	return &grammar.Choice{Alts: alts}, nil
}

func (p *parser) parseSeq() (grammar.Expr, error) {
	var items []grammar.Expr
	for {
		k := p.peek().kind
		if k == tokPipe || k == tokRParen || k == tokEOF || p.atRuleStart() {
			break
		}
		it, err := p.parseRepeat()
		if err != nil {
			return nil, err
		}
		items = append(items, it)
	}
	switch len(items) {
	case 0:
		return &grammar.Empty{}, nil
	case 1:
		return items[0], nil
	}
	return &grammar.Seq{Items: items}, nil
}

func (p *parser) parseRepeat() (grammar.Expr, error) {
	prim, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek().kind {
		case tokStar:
			if _, err := p.advance(); err != nil {
				return nil, err
			}
			prim = &grammar.Repeat{Sub: prim, Min: 0, Max: -1}
		case tokPlus:
			if _, err := p.advance(); err != nil {
				return nil, err
			}
			prim = &grammar.Repeat{Sub: prim, Min: 1, Max: -1}
		case tokQuestion:
			if _, err := p.advance(); err != nil {
				return nil, err
			}
			prim = &grammar.Repeat{Sub: prim, Min: 0, Max: 1}
		case tokBrace:
			t, err := p.advance()
			if err != nil {
				return nil, err
			}
			prim = &grammar.Repeat{Sub: prim, Min: t.min, Max: t.max}
		default:
			return prim, nil
		}
	}
}

func (p *parser) parsePrimary() (grammar.Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokString:
		if _, err := p.advance(); err != nil {
			return nil, err
		}
		if len(t.bytes) == 0 {
			return &grammar.Empty{}, nil
		}
		return &grammar.Literal{Bytes: t.bytes}, nil
	case tokClass:
		if _, err := p.advance(); err != nil {
			return nil, err
		}
		return t.class, nil
	case tokIdent:
		if _, err := p.advance(); err != nil {
			return nil, err
		}
		ref := &grammar.RuleRef{Name: t.text, Index: -1}
		if idx, ok := p.ruleIdx[t.text]; ok {
			ref.Index = idx
		} else {
			p.pending[t.text] = append(p.pending[t.text], ref)
		}
		return ref, nil
	case tokLParen:
		if _, err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseChoice()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return inner, nil
	}
	return nil, fmt.Errorf("ebnf: %d:%d: unexpected %v", t.line, t.col, t.kind)
}
