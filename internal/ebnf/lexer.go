// Package ebnf parses the GBNF-style EBNF dialect used to specify grammars:
//
//	root   ::= ws value ws
//	value  ::= object | array | "true" | [0-9]+ | string{1,3}
//	string ::= "\"" [^"\\]* "\""   # comment to end of line
//
// Rules are `name ::= expression`. Expressions support string literals with
// escapes (\" \\ \n \r \t \xHH \uHHHH), character classes ([a-z0-9], [^"\],
// same escapes plus \x/\u), grouping, alternation `|`, and the quantifiers
// `* + ? {n} {n,} {n,m}`. A rule body extends until the next `name ::=` or
// end of input, so bodies may span lines.
package ebnf

import (
	"fmt"
	"strings"
	"unicode/utf8"

	"xgrammar/internal/grammar"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokAssign // ::=
	tokPipe
	tokLParen
	tokRParen
	tokStar
	tokPlus
	tokQuestion
	tokString // decoded literal bytes in tok.bytes
	tokClass  // parsed char class in tok.class
	tokBrace  // quantifier {m}, {m,}, {m,n}: bounds in tok.min/tok.max
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokAssign:
		return "::="
	case tokPipe:
		return "|"
	case tokLParen:
		return "("
	case tokRParen:
		return ")"
	case tokStar:
		return "*"
	case tokPlus:
		return "+"
	case tokQuestion:
		return "?"
	case tokString:
		return "string literal"
	case tokClass:
		return "character class"
	case tokBrace:
		return "quantifier"
	}
	return "unknown token"
}

type token struct {
	kind  tokenKind
	text  string
	bytes []byte
	class *grammar.CharClass
	min   int
	max   int
	line  int
	col   int
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) errf(line, col int, format string, args ...interface{}) error {
	return fmt.Errorf("ebnf: %d:%d: %s", line, col, fmt.Sprintf(format, args...))
}

func (l *lexer) peekByte() (byte, bool) {
	if l.pos >= len(l.src) {
		return 0, false
	}
	return l.src[l.pos], true
}

func (l *lexer) advance() byte {
	b := l.src[l.pos]
	l.pos++
	if b == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return b
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		b := l.src[l.pos]
		switch {
		case b == ' ' || b == '\t' || b == '\n' || b == '\r':
			l.advance()
		case b == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(b byte) bool {
	return b == '_' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z')
}

func isIdentByte(b byte) bool {
	return isIdentStart(b) || (b >= '0' && b <= '9') || b == '-' || b == '.'
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	line, col := l.line, l.col
	b, ok := l.peekByte()
	if !ok {
		return token{kind: tokEOF, line: line, col: col}, nil
	}
	switch {
	case isIdentStart(b):
		start := l.pos
		for l.pos < len(l.src) && isIdentByte(l.src[l.pos]) {
			l.advance()
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], line: line, col: col}, nil
	case b == ':':
		if strings.HasPrefix(l.src[l.pos:], "::=") {
			l.advance()
			l.advance()
			l.advance()
			return token{kind: tokAssign, line: line, col: col}, nil
		}
		return token{}, l.errf(line, col, "unexpected ':'")
	case b == '|':
		l.advance()
		return token{kind: tokPipe, line: line, col: col}, nil
	case b == '(':
		l.advance()
		return token{kind: tokLParen, line: line, col: col}, nil
	case b == ')':
		l.advance()
		return token{kind: tokRParen, line: line, col: col}, nil
	case b == '*':
		l.advance()
		return token{kind: tokStar, line: line, col: col}, nil
	case b == '+':
		l.advance()
		return token{kind: tokPlus, line: line, col: col}, nil
	case b == '?':
		l.advance()
		return token{kind: tokQuestion, line: line, col: col}, nil
	case b == '{':
		return l.lexBrace(line, col)
	case b == '"':
		return l.lexString(line, col)
	case b == '[':
		return l.lexClass(line, col)
	}
	return token{}, l.errf(line, col, "unexpected character %q", b)
}

func (l *lexer) lexBrace(line, col int) (token, error) {
	l.advance() // {
	readInt := func() (int, bool) {
		n, any := 0, false
		for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			n = n*10 + int(l.advance()-'0')
			any = true
			if n > 1<<20 {
				return n, any
			}
		}
		return n, any
	}
	min, ok := readInt()
	if !ok {
		return token{}, l.errf(line, col, "expected number in quantifier")
	}
	max := min
	if b, _ := l.peekByte(); b == ',' {
		l.advance()
		if b2, _ := l.peekByte(); b2 >= '0' && b2 <= '9' {
			max, _ = readInt()
		} else {
			max = -1
		}
	}
	if b, _ := l.peekByte(); b != '}' {
		return token{}, l.errf(line, col, "unterminated quantifier")
	}
	l.advance()
	return token{kind: tokBrace, min: min, max: max, line: line, col: col}, nil
}

// lexEscape decodes an escape sequence after the backslash has been
// consumed. inClass permits class-specific escapes. It returns the rune and
// whether the escape denoted a raw byte (\xHH) rather than a code point.
func (l *lexer) lexEscape(line, col int, inClass bool) (rune, bool, error) {
	if l.pos >= len(l.src) {
		return 0, false, l.errf(line, col, "unterminated escape")
	}
	c := l.advance()
	switch c {
	case 'n':
		return '\n', false, nil
	case 'r':
		return '\r', false, nil
	case 't':
		return '\t', false, nil
	case '0':
		return 0, false, nil
	case '"', '\\', '/', '\'':
		return rune(c), false, nil
	case '-', ']', '^', '[':
		if inClass {
			return rune(c), false, nil
		}
		return rune(c), false, nil
	case 'x':
		v, err := l.hexDigits(line, col, 2)
		return rune(v), true, err
	case 'u':
		v, err := l.hexDigits(line, col, 4)
		return rune(v), false, err
	case 'U':
		v, err := l.hexDigits(line, col, 8)
		if err == nil && v > 0x10FFFF {
			return 0, false, l.errf(line, col, `\U escape beyond Unicode: %#x`, v)
		}
		return rune(v), false, err
	}
	return 0, false, l.errf(line, col, "unknown escape \\%c", c)
}

func (l *lexer) hexDigits(line, col, n int) (int, error) {
	v := 0
	for i := 0; i < n; i++ {
		if l.pos >= len(l.src) {
			return 0, l.errf(line, col, "truncated hex escape")
		}
		c := l.advance()
		switch {
		case c >= '0' && c <= '9':
			v = v*16 + int(c-'0')
		case c >= 'a' && c <= 'f':
			v = v*16 + int(c-'a'+10)
		case c >= 'A' && c <= 'F':
			v = v*16 + int(c-'A'+10)
		default:
			return 0, l.errf(line, col, "bad hex digit %q", c)
		}
	}
	return v, nil
}

func (l *lexer) lexString(line, col int) (token, error) {
	l.advance() // opening quote
	var out []byte
	for {
		if l.pos >= len(l.src) {
			return token{}, l.errf(line, col, "unterminated string literal")
		}
		c := l.advance()
		switch c {
		case '"':
			return token{kind: tokString, bytes: out, line: line, col: col}, nil
		case '\\':
			r, raw, err := l.lexEscape(line, col, false)
			if err != nil {
				return token{}, err
			}
			if raw {
				out = append(out, byte(r))
			} else {
				out = utf8.AppendRune(out, r)
			}
		case '\n':
			return token{}, l.errf(line, col, "newline in string literal")
		default:
			out = append(out, c)
		}
	}
}

func (l *lexer) lexClass(line, col int) (token, error) {
	l.advance() // [
	cc := &grammar.CharClass{}
	if b, _ := l.peekByte(); b == '^' {
		l.advance()
		cc.Negated = true
	}
	readRune := func() (rune, error) {
		c := l.advance()
		if c == '\\' {
			r, raw, err := l.lexEscape(line, col, true)
			if err != nil {
				return 0, err
			}
			_ = raw // raw byte escapes act as code points < 256 inside classes
			return r, nil
		}
		if c < utf8.RuneSelf {
			return rune(c), nil
		}
		// Multi-byte UTF-8 character: back up and decode.
		l.pos--
		l.col--
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		for i := 0; i < size; i++ {
			l.advance()
		}
		return r, nil
	}
	for {
		if l.pos >= len(l.src) {
			return token{}, l.errf(line, col, "unterminated character class")
		}
		if b, _ := l.peekByte(); b == ']' {
			l.advance()
			normalizeClass(cc)
			return token{kind: tokClass, class: cc, line: line, col: col}, nil
		}
		lo, err := readRune()
		if err != nil {
			return token{}, err
		}
		hi := lo
		if b, _ := l.peekByte(); b == '-' {
			// Range unless the '-' is the last char before ']'.
			if l.pos+1 < len(l.src) && l.src[l.pos+1] != ']' {
				l.advance() // -
				hi, err = readRune()
				if err != nil {
					return token{}, err
				}
				if hi < lo {
					return token{}, l.errf(line, col, "character class range out of order")
				}
			}
		}
		cc.Ranges = append(cc.Ranges, grammar.RuneRange{Lo: lo, Hi: hi})
	}
}

// normalizeClass sorts and merges overlapping or adjacent ranges.
func normalizeClass(cc *grammar.CharClass) {
	rs := cc.Ranges
	if len(rs) <= 1 {
		return
	}
	// Insertion sort: classes are tiny.
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].Lo < rs[j-1].Lo; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
	out := rs[:1]
	for _, r := range rs[1:] {
		last := &out[len(out)-1]
		if r.Lo <= last.Hi+1 {
			if r.Hi > last.Hi {
				last.Hi = r.Hi
			}
		} else {
			out = append(out, r)
		}
	}
	cc.Ranges = out
}
