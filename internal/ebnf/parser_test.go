package ebnf

import (
	"strings"
	"testing"

	"xgrammar/internal/grammar"
)

func TestParseSimple(t *testing.T) {
	g, err := Parse(`root ::= "hello"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Rules) != 1 || g.Rules[0].Name != "root" {
		t.Fatalf("bad rules: %+v", g.Rules)
	}
	lit, ok := g.Rules[0].Body.(*grammar.Literal)
	if !ok || string(lit.Bytes) != "hello" {
		t.Fatalf("body = %v", g.Rules[0].Body)
	}
}

func TestParseChoiceAndSeq(t *testing.T) {
	g, err := Parse(`root ::= "a" "b" | "c"`)
	if err != nil {
		t.Fatal(err)
	}
	ch, ok := g.Rules[0].Body.(*grammar.Choice)
	if !ok || len(ch.Alts) != 2 {
		t.Fatalf("body = %v", g.Rules[0].Body)
	}
	if _, ok := ch.Alts[0].(*grammar.Seq); !ok {
		t.Fatalf("first alt = %T, want Seq", ch.Alts[0])
	}
}

func TestParseQuantifiers(t *testing.T) {
	src := `root ::= "a"* "b"+ "c"? "d"{2} "e"{2,} "f"{2,5}`
	g, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	seq := g.Rules[0].Body.(*grammar.Seq)
	wants := []struct{ min, max int }{{0, -1}, {1, -1}, {0, 1}, {2, 2}, {2, -1}, {2, 5}}
	if len(seq.Items) != len(wants) {
		t.Fatalf("items = %d", len(seq.Items))
	}
	for i, w := range wants {
		rep, ok := seq.Items[i].(*grammar.Repeat)
		if !ok {
			t.Fatalf("item %d = %T", i, seq.Items[i])
		}
		if rep.Min != w.min || rep.Max != w.max {
			t.Errorf("item %d = {%d,%d}, want {%d,%d}", i, rep.Min, rep.Max, w.min, w.max)
		}
	}
}

func TestParseCharClass(t *testing.T) {
	g, err := Parse(`root ::= [a-z0-9_]`)
	if err != nil {
		t.Fatal(err)
	}
	cc := g.Rules[0].Body.(*grammar.CharClass)
	if cc.Negated {
		t.Fatal("unexpected negation")
	}
	// normalizeClass sorts: 0-9, _, a-z
	if len(cc.Ranges) != 3 {
		t.Fatalf("ranges = %v", cc.Ranges)
	}
	if cc.Ranges[0].Lo != '0' || cc.Ranges[0].Hi != '9' {
		t.Errorf("range 0 = %v", cc.Ranges[0])
	}
}

func TestParseNegatedClassWithEscapes(t *testing.T) {
	g, err := Parse(`root ::= [^"\\]`)
	if err != nil {
		t.Fatal(err)
	}
	cc := g.Rules[0].Body.(*grammar.CharClass)
	if !cc.Negated {
		t.Fatal("want negated")
	}
	has := func(r rune) bool {
		for _, rr := range cc.Ranges {
			if r >= rr.Lo && r <= rr.Hi {
				return true
			}
		}
		return false
	}
	if !has('"') || !has('\\') || has('a') {
		t.Fatalf("ranges = %v", cc.Ranges)
	}
}

func TestClassRangeMerging(t *testing.T) {
	g, err := Parse(`root ::= [a-cb-e]`)
	if err != nil {
		t.Fatal(err)
	}
	cc := g.Rules[0].Body.(*grammar.CharClass)
	if len(cc.Ranges) != 1 || cc.Ranges[0].Lo != 'a' || cc.Ranges[0].Hi != 'e' {
		t.Fatalf("ranges = %v", cc.Ranges)
	}
}

func TestStringEscapes(t *testing.T) {
	g, err := Parse(`root ::= "a\"b\\c\n\t\x41é"`)
	if err != nil {
		t.Fatal(err)
	}
	lit := g.Rules[0].Body.(*grammar.Literal)
	want := "a\"b\\c\n\tAé"
	if string(lit.Bytes) != want {
		t.Fatalf("bytes = %q, want %q", lit.Bytes, want)
	}
}

func TestMultiRuleAndForwardRef(t *testing.T) {
	src := `
# grammar with forward reference
root ::= item ("," item)*
item ::= [0-9]+
`
	g, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Rules) != 2 {
		t.Fatalf("rules = %d", len(g.Rules))
	}
	var found bool
	grammarWalk(g.Rules[0].Body, func(e grammar.Expr) {
		if r, ok := e.(*grammar.RuleRef); ok && r.Name == "item" && r.Index == 1 {
			found = true
		}
	})
	if !found {
		t.Fatal("forward reference not resolved")
	}
}

func grammarWalk(e grammar.Expr, f func(grammar.Expr)) {
	f(e)
	switch v := e.(type) {
	case *grammar.Seq:
		for _, it := range v.Items {
			grammarWalk(it, f)
		}
	case *grammar.Choice:
		for _, a := range v.Alts {
			grammarWalk(a, f)
		}
	case *grammar.Repeat:
		grammarWalk(v.Sub, f)
	}
}

func TestRootSelection(t *testing.T) {
	g, err := Parse("a ::= \"x\"\nroot ::= a\n")
	if err != nil {
		t.Fatal(err)
	}
	if g.Rules[g.Root].Name != "root" {
		t.Fatalf("root = %q", g.Rules[g.Root].Name)
	}
	g2, err := Parse("a ::= \"x\"\nmain ::= a\n")
	if err != nil {
		t.Fatal(err)
	}
	if g2.Rules[g2.Root].Name != "main" {
		t.Fatalf("root = %q", g2.Rules[g2.Root].Name)
	}
	g3, err := Parse("first ::= \"x\"\nsecond ::= first\n")
	if err != nil {
		t.Fatal(err)
	}
	if g3.Rules[g3.Root].Name != "first" {
		t.Fatalf("root = %q", g3.Rules[g3.Root].Name)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{``, "no rules"},
		{`root ::= ghost`, "undefined rule"},
		{`root ::= "unterminated`, "unterminated string"},
		{`root ::= [abc`, "unterminated character class"},
		{`root ::= "a" ::= "b"`, "expected"},
		{`root ::= "x"` + "\n" + `root ::= "y"`, "duplicate"},
		{`root ::= "a"{5,2}`, "repeat max"},
		{`root ::= (`, "expected )"},
		{`root ::= "a" )`, "expected rule definition"},
		{`root ::= "\q"`, "unknown escape"},
		{`root ::= [z-a]`, "out of order"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("src %q: want error containing %q, got nil", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("src %q: error %q missing %q", c.src, err, c.want)
		}
	}
}

func TestCommentsIgnored(t *testing.T) {
	src := `
# leading comment
root ::= "a"   # trailing comment
     | "b"
`
	g, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ch := g.Rules[0].Body.(*grammar.Choice)
	if len(ch.Alts) != 2 {
		t.Fatalf("alts = %d", len(ch.Alts))
	}
}

func TestEmptyAlternative(t *testing.T) {
	g, err := Parse(`root ::= "a" | `)
	if err != nil {
		t.Fatal(err)
	}
	ch := g.Rules[0].Body.(*grammar.Choice)
	if _, ok := ch.Alts[1].(*grammar.Empty); !ok {
		t.Fatalf("alt 1 = %T, want Empty", ch.Alts[1])
	}
}

func TestUnicodeLiteralAndClass(t *testing.T) {
	g, err := Parse(`root ::= "héllo" [α-ω]`)
	if err != nil {
		t.Fatal(err)
	}
	seq := g.Rules[0].Body.(*grammar.Seq)
	lit := seq.Items[0].(*grammar.Literal)
	if string(lit.Bytes) != "héllo" {
		t.Fatalf("literal = %q", lit.Bytes)
	}
	cc := seq.Items[1].(*grammar.CharClass)
	if cc.Ranges[0].Lo != 'α' || cc.Ranges[0].Hi != 'ω' {
		t.Fatalf("class = %v", cc.Ranges)
	}
}

func TestLeftRecursionRejectedAtParse(t *testing.T) {
	_, err := Parse(`expr ::= expr "+" term | term
term ::= [0-9]+`)
	if err == nil || !strings.Contains(err.Error(), "left recursion") {
		t.Fatalf("got %v", err)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic")
		}
	}()
	MustParse(`root ::= ghost`)
}
