package serve

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"xgrammar/internal/prefixcache"
	"xgrammar/internal/spec"
	"xgrammar/internal/tokenizer"
)

func newAcquirer(e env, budget int64, minDepth, stride int) *Acquirer {
	pool := NewSessionPool(e.p, e.cache, e.tok, 0)
	return NewAcquirer(pool, prefixcache.New(budget), "test-grammar", minDepth, stride)
}

func masksSame(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// decodeGreedy drives a session to completion with a deterministic seeded
// sampler, returning the emitted text. Identical masks at every position
// produce identical output, so equal outputs certify byte-identity.
func decodeGreedy(t *testing.T, e env, s *Session, seed int64, maxTokens int) string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	out := ""
	for tokens := 0; tokens < maxTokens; tokens++ {
		mask := s.Mask()
		var allowed []int32
		for id := int32(0); id < int32(e.tok.VocabSize()); id++ {
			if mask[id/64]&(1<<(id%64)) != 0 {
				allowed = append(allowed, id)
			}
		}
		if len(allowed) == 0 {
			break
		}
		id := allowed[rng.Intn(len(allowed))]
		if id == tokenizer.EosID {
			if err := s.Accept(id); err != nil {
				t.Fatalf("accept EOS: %v", err)
			}
			break
		}
		if _, err := s.Step(id); err != nil {
			t.Fatalf("step token %d: %v", id, err)
		}
		out += string(e.tok.TokenBytes(id))
	}
	return out
}

// TestAcquireWarmMatchesCold is the core byte-identity check: cold and warm
// acquisitions of the same forced prefix must produce identical masks and —
// driven by the same seeded sampler — identical decoded bytes.
func TestAcquireWarmMatchesCold(t *testing.T) {
	e := testEnv(t)
	prefixes := []string{
		`{"name": "`,
		`{"user": {"id": 12345, "tags": ["`,
		`[[1, 2], [3, `,
	}
	for pi, prefix := range prefixes {
		a := newAcquirer(e, 1<<20, 1, 0)
		cold, res, err := a.Acquire([]byte(prefix))
		if err != nil {
			t.Fatalf("cold acquire %q: %v", prefix, err)
		}
		if res.Hit || res.ReplayedBytes != len(prefix) {
			t.Fatalf("cold acquire %q reported %+v", prefix, res)
		}
		coldMask := append([]uint64(nil), cold.Mask()...)
		coldOut := decodeGreedy(t, e, cold, 42, 200)
		cold.Close() // publishes the full-prefix checkpoint + mask

		warm, res, err := a.Acquire([]byte(prefix))
		if err != nil {
			t.Fatalf("warm acquire %q: %v", prefix, err)
		}
		if !res.Hit || !res.MaskReused || res.ReusedBytes != len(prefix) {
			t.Fatalf("warm acquire %q not exact-hit: %+v", prefix, res)
		}
		if !masksSame(warm.Mask(), coldMask) {
			t.Fatalf("prefix %q: warm first mask differs from cold", prefix)
		}
		warmOut := decodeGreedy(t, e, warm, 42, 200)
		warm.Close()
		if warmOut != coldOut {
			t.Fatalf("prefix %q: warm decode %q != cold %q", prefix, warmOut, coldOut)
		}
		st := a.Stats()
		if st.WarmStarts != 1 || st.ExactHits != 1 || st.BytesReused != int64(len(prefix)) {
			t.Fatalf("prefix %d acquirer stats %+v", pi, st)
		}
	}
}

// TestAcquirePartialHitReplaysResidual publishes a short prefix, then
// acquires a longer one: the cached checkpoint must cover the shared bytes
// and only the residual must replay, with identical masks.
func TestAcquirePartialHitReplaysResidual(t *testing.T) {
	e := testEnv(t)
	a := newAcquirer(e, 1<<20, 1, 0)
	short := `{"name": "`
	long := `{"name": "alice", "age": `

	s, _, err := a.Acquire([]byte(short))
	if err != nil {
		t.Fatal(err)
	}
	s.Close()

	warm, res, err := a.Acquire([]byte(long))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hit || res.ReusedBytes != len(short) || res.ReplayedBytes != len(long)-len(short) {
		t.Fatalf("partial hit result %+v", res)
	}
	warmMask := append([]uint64(nil), warm.Mask()...)
	warm.Close()

	ref := referenceMask(e, long)
	if !masksSame(warmMask, ref.Words()) {
		t.Fatal("partial-hit mask differs from reference")
	}
}

// TestAcquireSpeculativeByteIdentity runs spec.Step draft-verify decoding on
// cold and warm sessions with identical seeded proposers/samplers: the
// speculative path over a restored checkpoint must remain byte-identical.
func TestAcquireSpeculativeByteIdentity(t *testing.T) {
	e := testEnv(t)
	prefix := `{"items": [`
	run := func(s *Session) string {
		rng := rand.New(rand.NewSource(7))
		var w spec.Window
		out := ""
		pick := func(_ int, mask []uint64) (int32, bool) {
			var allowed []int32
			for id := int32(0); id < int32(e.tok.VocabSize()); id++ {
				if mask[id/64]&(1<<(id%64)) != 0 {
					allowed = append(allowed, id)
				}
			}
			if len(allowed) == 0 {
				return 0, false
			}
			return allowed[rng.Intn(len(allowed))], true
		}
		for step := 0; step < 30 && !s.IsTerminated(); step++ {
			res, err := spec.Step(s, func() { s.Fill() }, pick, pick, &w, spec.Options{MaxDraft: 4, EOS: tokenizer.EosID})
			if err != nil {
				t.Fatalf("spec step: %v", err)
			}
			for i := 0; i < res.Accepted; i++ {
				out += string(e.tok.TokenBytes(w.DraftAt(i)))
			}
			if res.HasBonus && !res.Terminated {
				out += string(e.tok.TokenBytes(res.Bonus))
			}
		}
		return out
	}

	a := newAcquirer(e, 1<<20, 1, 0)
	cold, _, err := a.Acquire([]byte(prefix))
	if err != nil {
		t.Fatal(err)
	}
	coldOut := run(cold)
	cold.Close()

	warm, res, err := a.Acquire([]byte(prefix))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hit {
		t.Fatalf("expected warm hit, got %+v", res)
	}
	warmOut := run(warm)
	warm.Close()
	if warmOut != coldOut {
		t.Fatalf("speculative warm decode %q != cold %q", warmOut, coldOut)
	}
}

// TestRollbackPastCheckpointDegradesCold checks the fork-point degrade: a
// warm session rolled back across the restored checkpoint lands at the
// grammar start, exactly where a cold session's equivalent rollback lands.
func TestRollbackPastCheckpointDegradesCold(t *testing.T) {
	e := testEnv(t)
	prefix := `{"k": `
	a := newAcquirer(e, 1<<20, 1, 0)
	s, _, err := a.Acquire([]byte(prefix))
	if err != nil {
		t.Fatal(err)
	}
	s.Close()

	cold := a.pool.Acquire()
	if err := cold.AcceptString(prefix); err != nil {
		t.Fatal(err)
	}
	warm, res, err := a.Acquire([]byte(prefix))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hit || res.ReusedBytes != len(prefix) {
		t.Fatalf("expected exact hit, got %+v", res)
	}

	// Advance both one token, then roll back 2 steps: the token plus the
	// prefix step (virtual on the warm session).
	ids := e.tok.Encode(`[1`)
	if err := cold.Accept(ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := warm.Accept(ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := cold.Rollback(2); err != nil {
		t.Fatalf("cold rollback: %v", err)
	}
	if err := warm.Rollback(2); err != nil {
		t.Fatalf("warm rollback across fork: %v", err)
	}
	cold.Fill()
	warm.Fill()
	if !masksSame(warm.Mask(), cold.Mask()) {
		t.Fatal("post-degrade mask differs from cold start state")
	}
	// Rolling back more than the virtual step allows still fails atomically.
	if err := warm.Rollback(1); err == nil {
		t.Fatal("rollback beyond start unexpectedly succeeded")
	}
	cold.Close()
	warm.Close()
}

// TestStridePublishesIntermediateCheckpoints checks depth-configured
// publication: with a stride, a long prefix plants checkpoints at stride
// multiples, so a shorter query sharing only the scaffold still warm-starts.
func TestStridePublishesIntermediateCheckpoints(t *testing.T) {
	e := testEnv(t)
	a := newAcquirer(e, 1<<20, 1, 8)
	long := `{"scaffold": {"shared": true}, "x": 1`
	s, _, err := a.Acquire([]byte(long))
	if err != nil {
		t.Fatal(err)
	}
	s.Close()

	// A different continuation sharing only the first 16 bytes.
	shorter := long[:16] + `false}}`
	warm, res, err := a.Acquire([]byte(shorter))
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	if !res.Hit || res.ReusedBytes != 16 {
		t.Fatalf("stride warm-start result %+v, want 16 reused bytes", res)
	}
	ref := referenceMask(e, shorter)
	if !masksSame(warm.Mask(), ref.Words()) {
		t.Fatal("stride warm mask differs from reference")
	}
}

// TestAcquireInvalidPrefix checks the error path: the session returns to the
// pool and the acquirer stays usable.
func TestAcquireInvalidPrefix(t *testing.T) {
	e := testEnv(t)
	a := newAcquirer(e, 1<<20, 1, 0)
	if _, _, err := a.Acquire([]byte(`{"a" 12`)); err == nil {
		t.Fatal("invalid prefix accepted")
	}
	s, res, err := a.Acquire([]byte(`{"a"`))
	if err != nil {
		t.Fatalf("acquire after failure: %v", err)
	}
	defer s.Close()
	if res.PrefixLen != 4 {
		t.Fatalf("result %+v", res)
	}
}

// TestConcurrentAcquireRelease drives many goroutines through one acquirer
// on a handful of templates with a tiny cache budget (constant eviction
// churn); run under -race. Every session's first mask must equal the
// reference for its prefix regardless of interleaving.
func TestConcurrentAcquireRelease(t *testing.T) {
	e := testEnv(t)
	a := newAcquirer(e, 4<<10, 1, 8)
	prefixes := []string{
		`{"name": "`,
		`{"name": "alice", "age": `,
		`[[1, 2], [3, `,
		`{"k": [true, null, `,
	}
	refs := make([][]uint64, len(prefixes))
	for i, p := range prefixes {
		refs[i] = referenceMask(e, p).Words()
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				pi := rng.Intn(len(prefixes))
				s, _, err := a.Acquire([]byte(prefixes[pi]))
				if err != nil {
					panic(fmt.Sprintf("acquire: %v", err))
				}
				if !masksSame(s.Mask(), refs[pi]) {
					panic("concurrent warm mask diverged from reference")
				}
				s.Close()
			}
		}(int64(w))
	}
	wg.Wait()
}
