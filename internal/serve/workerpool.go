package serve

import (
	"runtime"
	"sync"
	"sync/atomic"

	"xgrammar/internal/maskcache"
)

// WorkerPool is a persistent pool of goroutines that executes batches of
// independent work items — one mask fill per live sequence per decode step
// in the serving scenario (§3.5). Unlike a per-call goroutine fan-out, the
// workers live for the lifetime of the pool, so a decode step pays no
// goroutine spawn cost; within a batch the index space is split into
// per-participant shards and idle participants steal from the shards of
// slower ones, which keeps the batch balanced when sequences have very
// different mask costs (deep stacks, context-dependent tokens).
type WorkerPool struct {
	workers int
	jobs    chan *fillJob
	quit    chan struct{}
	once    sync.Once

	batches atomic.Int64
	items   atomic.Int64
	steals  atomic.Int64
}

// fillJob is one batch of n independent items. Participants (workers plus
// the submitting caller) claim indices from per-shard cursors; the last
// finished item closes done.
type fillJob struct {
	run       func(i int)
	n         int
	chunk     int
	shards    []jobShard
	nextPart  atomic.Int64
	remaining atomic.Int64
	done      chan struct{}
}

// jobShard is a claim cursor padded to its own cache line.
type jobShard struct {
	cursor atomic.Int64
	_      [7]int64
}

// NewWorkerPool starts a pool with the given number of persistent workers;
// n <= 0 uses GOMAXPROCS. The submitting goroutine always participates in
// its own batches, so even a closed or zero-worker pool makes progress.
func NewWorkerPool(n int) *WorkerPool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &WorkerPool{
		workers: n,
		jobs:    make(chan *fillJob, n),
		quit:    make(chan struct{}),
	}
	for i := 0; i < n; i++ {
		go func() {
			for {
				select {
				case j := <-p.jobs:
					p.work(j)
				case <-p.quit:
					return
				}
			}
		}()
	}
	return p
}

// Run executes fn(i) for every i in [0, n), fanning the items out across the
// pool's workers with the submitting goroutine participating. It returns
// when all n items have completed.
func (p *WorkerPool) Run(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	p.batches.Add(1)
	p.items.Add(int64(n))
	if n == 1 {
		fn(0)
		return
	}
	parts := p.workers + 1
	if parts > n {
		parts = n
	}
	j := &fillJob{
		run:    fn,
		n:      n,
		chunk:  (n + parts - 1) / parts,
		shards: make([]jobShard, parts),
		done:   make(chan struct{}),
	}
	for s := range j.shards {
		j.shards[s].cursor.Store(int64(s * j.chunk))
	}
	j.remaining.Store(int64(n))
	// Wake up to parts-1 workers without blocking: the buffered channel
	// holds the announcements, and a stale announcement (job already
	// finished) is a cheap no-op for whoever drains it.
announce:
	for w := 0; w < parts-1; w++ {
		select {
		case <-p.quit:
			break announce // closed pool: no workers left to drain announcements
		case p.jobs <- j:
		default:
			break announce // channel full; busy workers will drain it, the caller picks up the slack
		}
	}
	p.work(j)
	<-j.done
	// Undrained announcements may keep the job reachable from the channel;
	// drop the work closure (and the batch it captures) now that every item
	// has run — a stale announcement is then just a few words of memory.
	j.run = nil
}

// work claims items for one participant: drain the participant's own shard,
// then steal from the other shards.
func (p *WorkerPool) work(j *fillJob) {
	id := int(j.nextPart.Add(1)) - 1
	if id >= len(j.shards) {
		return // late announcement; the batch is already fully claimed
	}
	for off := 0; off < len(j.shards); off++ {
		s := (id + off) % len(j.shards)
		end := (s + 1) * j.chunk
		if end > j.n {
			end = j.n
		}
		stole := false
		for {
			i := int(j.shards[s].cursor.Add(1)) - 1
			if i >= end {
				break
			}
			j.run(i)
			stole = off > 0
			if j.remaining.Add(-1) == 0 {
				close(j.done)
			}
		}
		if stole {
			p.steals.Add(1)
		}
	}
}

// FillSessions fills every session's own mask buffer for one decode step and
// returns the per-session fill statistics.
func (p *WorkerPool) FillSessions(sessions []*Session) []maskcache.FillStats {
	stats := make([]maskcache.FillStats, len(sessions))
	p.Run(len(sessions), func(i int) { stats[i] = sessions[i].Fill() })
	return stats
}

// Close stops the persistent workers and drains any stale announcements.
// Run remains usable afterwards (the caller just does all the work itself).
func (p *WorkerPool) Close() {
	p.once.Do(func() {
		close(p.quit)
		for {
			select {
			case <-p.jobs:
			default:
				return
			}
		}
	})
}

// WorkerPoolStats reports pool activity.
type WorkerPoolStats struct {
	// Workers is the number of persistent workers.
	Workers int
	// Batches and Items count Run calls and total items executed.
	Batches, Items int64
	// Steals counts shard visits where a participant executed items outside
	// its own shard (work stealing events).
	Steals int64
}

// Stats returns a snapshot of the pool counters.
func (p *WorkerPool) Stats() WorkerPoolStats {
	return WorkerPoolStats{
		Workers: p.workers,
		Batches: p.batches.Load(),
		Items:   p.items.Load(),
		Steals:  p.steals.Load(),
	}
}

var (
	defaultPoolOnce sync.Once
	defaultPool     *WorkerPool
)

// DefaultPool returns the process-wide shared worker pool, started on first
// use with one worker per CPU. It is never closed; serving runtimes that
// want their own sizing create pools with NewWorkerPool.
func DefaultPool() *WorkerPool {
	defaultPoolOnce.Do(func() { defaultPool = NewWorkerPool(0) })
	return defaultPool
}
