package serve

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"xgrammar/internal/bitset"
	"xgrammar/internal/builtin"
	"xgrammar/internal/maskcache"
	"xgrammar/internal/matcher"
	"xgrammar/internal/pda"
	"xgrammar/internal/tokenizer"
)

type env struct {
	tok   *tokenizer.Tokenizer
	p     *pda.PDA
	cache *maskcache.Cache
}

var (
	envOnce sync.Once
	shared  env
)

func testEnv(t testing.TB) env {
	t.Helper()
	envOnce.Do(func() {
		tok := tokenizer.BuildDefault(600)
		p, err := pda.Compile(builtin.JSON(), pda.AllOptimizations)
		if err != nil {
			panic(err)
		}
		shared = env{tok: tok, p: p, cache: maskcache.Build(p, tok, maskcache.Options{ContextExpansion: true})}
	})
	return shared
}

// referenceMask computes the mask for a fresh matcher advanced over doc.
func referenceMask(e env, doc string) *bitset.Bitset {
	exec := matcher.NewExec(e.p)
	m := matcher.New(exec, 0)
	if doc != "" && !m.Advance([]byte(doc)) {
		panic("reference advance failed: " + doc)
	}
	mask := bitset.New(e.tok.VocabSize())
	e.cache.FillMask(exec, m.States(), mask, m.CanTerminate(), maskcache.NewFillContext(e.tok.VocabSize()))
	return mask
}

// TestPooledSessionMatchesFresh drives a recycled session and a fresh
// matcher through the same prefixes and requires identical masks at every
// position — the pooled fast path must be observationally equal to building
// grammar state from scratch.
func TestPooledSessionMatchesFresh(t *testing.T) {
	e := testEnv(t)
	pool := NewSessionPool(e.p, e.cache, e.tok, 0)
	docs := []string{
		`{"a": 1, "b": [true, null]}`,
		`[1, 2, {"k": "v"}]`,
		`"string with spaces"`,
		`-12.5e3`,
	}
	for round := 0; round < 3; round++ {
		for _, doc := range docs {
			s := pool.Acquire()
			ids := e.tok.Encode(doc)
			emitted := ""
			if got := referenceMask(e, ""); !maskEqual(s.Mask(), got, s.Fill(), e) {
				t.Fatalf("round %d doc %q: initial mask differs", round, doc)
			}
			for _, id := range ids {
				res, err := s.Step(id)
				if err != nil {
					t.Fatalf("round %d doc %q: step(%d): %v", round, doc, id, err)
				}
				if res.Terminated {
					t.Fatalf("round %d doc %q: premature termination", round, doc)
				}
				emitted += string(e.tok.TokenBytes(id))
				want := referenceMask(e, emitted)
				if !bitset.FromWords(s.Mask(), e.tok.VocabSize()).Equal(want) {
					t.Fatalf("round %d doc %q: mask differs after %q", round, doc, emitted)
				}
			}
			if !s.CanTerminate() {
				t.Fatalf("round %d doc %q: cannot terminate after full doc", round, doc)
			}
			res, err := s.Step(tokenizer.EosID)
			if err != nil || !res.Terminated || !s.IsTerminated() {
				t.Fatalf("round %d doc %q: EOS step: %v res=%+v", round, doc, err, res)
			}
			s.Close()
		}
	}
	st := pool.Stats()
	if st.Reused == 0 {
		t.Fatalf("pool never reused a session: %+v", st)
	}
}

func maskEqual(words []uint64, want *bitset.Bitset, _ maskcache.FillStats, e env) bool {
	return bitset.FromWords(words, e.tok.VocabSize()).Equal(want)
}

// TestSessionJumpForwardRollback exercises the fused step's jump-forward
// probe plus insertion and rollback on a recycled session: after rolling the
// insertion back, masks must again match a fresh matcher at the same
// position.
func TestSessionJumpForwardRollback(t *testing.T) {
	e := testEnv(t)
	pool := NewSessionPool(e.p, e.cache, e.tok, 0)

	// Warm the pool so the tested session is a recycled one.
	warm := pool.Acquire()
	warm.Fill()
	if err := warm.AcceptString(`{"x": `); err != nil {
		t.Fatal(err)
	}
	warm.Close()

	s := pool.Acquire()
	s.Fill()
	prefix := `{"key`
	if err := s.AcceptString(prefix); err != nil {
		t.Fatal(err)
	}
	// Inside an object key the continuation is ambiguous byte-wise, so probe
	// via the matcher after a forced token instead: accept a token, read the
	// fused result's continuation.
	ids := e.tok.Encode(`": `)
	var jf string
	for _, id := range ids {
		res, err := s.Step(id)
		if err != nil {
			t.Fatal(err)
		}
		jf = string(res.JumpForward)
	}
	_ = jf
	// Force a deterministic run: "tru" must jump-forward to "e".
	for _, id := range e.tok.Encode(`tru`) {
		res, err := s.Step(id)
		if err != nil {
			t.Fatal(err)
		}
		jf = string(res.JumpForward)
	}
	if !strings.HasPrefix(jf, "e") {
		t.Fatalf("jump-forward after 'tru' = %q, want prefix 'e'", jf)
	}
	before := `{"key": tru`
	if !bitset.FromWords(s.Mask(), e.tok.VocabSize()).Equal(referenceMask(e, before)) {
		t.Fatalf("mask differs before insertion")
	}
	// Insert the continuation, then roll it back.
	if err := s.AcceptString(jf); err != nil {
		t.Fatalf("jump-forward insertion: %v", err)
	}
	s.Fill()
	if !bitset.FromWords(s.Mask(), e.tok.VocabSize()).Equal(referenceMask(e, before+jf)) {
		t.Fatalf("mask differs after insertion of %q", jf)
	}
	if err := s.Rollback(1); err != nil {
		t.Fatalf("rollback: %v", err)
	}
	s.Fill()
	if !bitset.FromWords(s.Mask(), e.tok.VocabSize()).Equal(referenceMask(e, before)) {
		t.Fatalf("mask differs after rollback of jump-forward insertion")
	}
	s.Close()
}

// TestStepNoAllocs is the PR's steady-state guarantee: once capacities
// settle, the fused Step (accept + jump-forward probe + mask fill) performs
// zero heap allocations per token.
func TestStepNoAllocs(t *testing.T) {
	e := testEnv(t)
	pool := NewSessionPool(e.p, e.cache, e.tok, 0)
	var sb strings.Builder
	sb.WriteString(`{"vals": [`)
	for i := 0; i < 400; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, `{"i": %d, "f": true, "s": "ab"}`, i)
	}
	sb.WriteString(`]}`)
	ids := e.tok.Encode(sb.String())

	run := func(s *Session, ids []int32) {
		for _, id := range ids {
			if _, err := s.Step(id); err != nil {
				t.Fatalf("step: %v", err)
			}
		}
	}
	// Warm: one full pass settles every buffer capacity, then recycle.
	s := pool.Acquire()
	s.Fill()
	run(s, ids)
	s.Close()

	s = pool.Acquire()
	s.Fill()
	warmup := 256 // past the rollback-history fill so eviction recycling is active
	run(s, ids[:warmup])
	i := warmup
	const runs = 300
	if warmup+runs+1 >= len(ids) {
		t.Fatalf("token stream too short: %d", len(ids))
	}
	allocs := testing.AllocsPerRun(runs, func() {
		if _, err := s.Step(ids[i]); err != nil {
			t.Fatalf("step: %v", err)
		}
		i++
	})
	s.Close()
	if allocs != 0 {
		t.Fatalf("Session.Step allocated %.2f allocs/op in steady state, want 0", allocs)
	}
}

// TestWorkerPoolFillsMatchSerial checks that the persistent pool produces
// exactly the masks of a serial fill, across repeated batches (pool reuse)
// and uneven sequence positions (work stealing fodder).
func TestWorkerPoolFillsMatchSerial(t *testing.T) {
	e := testEnv(t)
	spool := NewSessionPool(e.p, e.cache, e.tok, 0)
	wp := NewWorkerPool(4)
	defer wp.Close()

	prefixes := []string{
		``, `{`, `{"a": `, `[1, 2, `, `"str`, `{"a": {"b": {"c": `, `-1.5e`, `[[[[`,
		`{"k": [1, {"x": "y"}, `, `tru`, `nul`, `{"a": 1, "b": 2, `, `[`, `"`, `{"zzz": "`, `[false`,
	}
	sessions := make([]*Session, len(prefixes))
	for i, p := range prefixes {
		sessions[i] = spool.Acquire()
		if p != "" {
			if err := sessions[i].AcceptString(p); err != nil {
				t.Fatalf("prefix %q: %v", p, err)
			}
		}
	}
	for batch := 0; batch < 5; batch++ {
		wp.FillSessions(sessions)
		for i, s := range sessions {
			want := referenceMask(e, prefixes[i])
			if !bitset.FromWords(s.Mask(), e.tok.VocabSize()).Equal(want) {
				t.Fatalf("batch %d: sequence %d (%q): pooled fill differs from serial", batch, i, prefixes[i])
			}
		}
	}
	st := wp.Stats()
	if st.Batches != 5 || st.Items != int64(5*len(prefixes)) {
		t.Fatalf("pool stats wrong: %+v", st)
	}
	for _, s := range sessions {
		s.Close()
	}
}

// TestWorkerPoolZeroWorkersAndClosed verifies the caller-participates
// guarantee: a closed pool still completes every batch.
func TestWorkerPoolZeroWorkersAndClosed(t *testing.T) {
	wp := NewWorkerPool(2)
	wp.Close()
	var hits [97]int32
	wp.Run(len(hits), func(i int) { hits[i]++ })
	// A second Run after Close must also complete.
	wp.Run(len(hits), func(i int) { hits[i]++ })
	for i, h := range hits {
		if h != 2 {
			t.Fatalf("item %d executed %d times, want 2", i, h)
		}
	}
}

// TestWorkerPoolConcurrentBatches submits batches from many goroutines; every
// item of every batch must run exactly once.
func TestWorkerPoolConcurrentBatches(t *testing.T) {
	wp := NewWorkerPool(3)
	defer wp.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 20; round++ {
				counts := make([]int32, 33)
				wp.Run(len(counts), func(i int) { counts[i]++ })
				for i, c := range counts {
					if c != 1 {
						t.Errorf("item %d ran %d times", i, c)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestRollbackAtomicOnError: a rollback deeper than the retained history
// must leave the session untouched (in particular, a terminated session must
// stay terminated with its cleared mask intact).
func TestRollbackAtomicOnError(t *testing.T) {
	e := testEnv(t)
	pool := NewSessionPool(e.p, e.cache, e.tok, 0)
	s := pool.Acquire()
	if err := s.AcceptString(`[1]`); err != nil { // one checkpoint
		t.Fatal(err)
	}
	if err := s.Accept(tokenizer.EosID); err != nil {
		t.Fatal(err)
	}
	if err := s.Rollback(3); err == nil { // only EOS + 1 checkpoint available
		t.Fatal("rollback past history did not error")
	}
	if !s.IsTerminated() {
		t.Fatal("failed rollback cleared the terminated state")
	}
	// A valid rollback afterwards still works and refills.
	if err := s.Rollback(2); err != nil {
		t.Fatal(err)
	}
	s.Fill()
	want := referenceMask(e, "")
	if !bitset.FromWords(s.Mask(), e.tok.VocabSize()).Equal(want) {
		t.Fatal("mask wrong after recovering with a valid rollback")
	}
	s.Close()
}
