// Package serve is the continuous-batching serving runtime that co-designs
// the grammar engine with the LLM engine (§3.5): pooled per-sequence
// sessions whose steady-state decode step is allocation-free, and a
// persistent worker pool that fills a whole batch's token masks with work
// stealing across sequences.
//
// A Session fuses the per-token grammar work — accept the sampled token,
// probe the jump-forward continuation (Appendix B), and fill the next-step
// token mask — into one Step call over resources (matcher, fill context,
// mask buffer) that are recycled through a sync.Pool, so sequences joining
// and leaving a running batch never re-allocate grammar state.
package serve

import (
	"fmt"
	"sync"
	"sync/atomic"

	"xgrammar/internal/bitset"
	"xgrammar/internal/maskcache"
	"xgrammar/internal/matcher"
	"xgrammar/internal/pda"
	"xgrammar/internal/tokenizer"
)

// SessionPool recycles decoding sessions for one compiled grammar. Acquire
// returns a session at the grammar start state; Release (or Session.Close)
// hands it back. The pool is safe for concurrent use; individual sessions
// are not (one per sequence, driven from one goroutine at a time).
type SessionPool struct {
	p          *pda.PDA
	cache      *maskcache.Cache // nil: full-vocabulary scan fills
	tok        *tokenizer.Tokenizer
	maxHistory int
	pool       sync.Pool
	created    atomic.Int64
	reused     atomic.Int64
}

// NewSessionPool returns a pool of sessions over the compiled automaton.
// cache may be nil (every fill scans the vocabulary); maxHistory <= 0 uses
// the matcher default rollback window.
func NewSessionPool(p *pda.PDA, cache *maskcache.Cache, tok *tokenizer.Tokenizer, maxHistory int) *SessionPool {
	return &SessionPool{p: p, cache: cache, tok: tok, maxHistory: maxHistory}
}

// Acquire returns a session at the grammar start state, reusing a released
// one when available.
func (sp *SessionPool) Acquire() *Session {
	if v := sp.pool.Get(); v != nil {
		sp.reused.Add(1)
		return v.(*Session)
	}
	sp.created.Add(1)
	exec := matcher.NewExec(sp.p)
	words := bitset.WordsFor(sp.tok.VocabSize())
	s := &Session{
		sp:    sp,
		exec:  exec,
		m:     matcher.New(exec, sp.maxHistory),
		fc:    maskcache.NewFillContext(sp.tok.VocabSize()),
		mask:  make([]uint64, words),
		dirty: true,
	}
	s.bs = bitset.FromWords(s.mask, sp.tok.VocabSize())
	return s
}

// Release resets the session and returns it to the pool. When the session
// was acquired through an Acquirer, checkpoints captured during its replay
// are published to the prefix cache first (publication rides on release so
// capture cost never sits on a request's critical path). The session must
// not be used afterwards.
func (sp *SessionPool) Release(s *Session) {
	s.publishPending()
	s.base = s.base[:0]
	s.baseSteps = 0
	s.m.Reset()
	s.terminated = false
	s.dirty = true
	s.lastStats = maskcache.FillStats{}
	sp.pool.Put(s)
}

// PoolStats reports session recycling activity.
type PoolStats struct {
	// Created counts sessions built from scratch; Reused counts Acquire
	// calls served by recycling a released session.
	Created, Reused int64
}

// Stats returns a snapshot of the pool counters.
func (sp *SessionPool) Stats() PoolStats {
	return PoolStats{Created: sp.created.Load(), Reused: sp.reused.Load()}
}

// Tok returns the tokenizer the pool's grammar was compiled for.
func (sp *SessionPool) Tok() *tokenizer.Tokenizer { return sp.tok }

// StepResult is the outcome of one fused decode step.
type StepResult struct {
	// Terminated is true once the stop token has been accepted; the mask is
	// all zero from then on.
	Terminated bool
	// JumpForward is the deterministic continuation available after the
	// accepted token (empty when the next byte is ambiguous). The bytes are
	// only valid until the next call on the session; callers that keep the
	// continuation must copy it (or feed it straight to AcceptString).
	JumpForward []byte
	// Stats instruments the mask fill.
	Stats maskcache.FillStats
}

// Session tracks one generation over pooled grammar resources: a matcher, a
// mask-fill scratch context, and the session's own mask buffer. In steady
// state Step performs no heap allocations. A Session also satisfies the
// baselines.Session and baselines.JumpForwarder interfaces, so the serving
// engine can schedule pooled sessions like any other grammar backend.
type Session struct {
	sp   *SessionPool
	exec *matcher.Exec
	m    *matcher.Matcher
	fc   *maskcache.FillContext
	mask []uint64
	bs   *bitset.Bitset
	jf   []byte
	// dirty is true when the matcher advanced past the state Mask was
	// filled for; Fill is a no-op while clean, so a batch fill never
	// recomputes a mask the fused Step already produced (and vice versa).
	dirty      bool
	lastStats  maskcache.FillStats
	terminated bool
	// Warm-start state, set when the session came through an Acquirer: acq
	// publishes pending checkpoint captures at Release; base/baseSteps
	// record the prefix the restored checkpoint stands in for, so Rollback
	// can degrade past the fork point (see Rollback).
	acq       *Acquirer
	pending   []pendingPub
	base      []byte
	baseSteps int
}

// Step is the fused per-token hot path: accept the sampled token, probe the
// jump-forward continuation, and fill the next-step mask into Mask(), all in
// one call. Accepting the stop token terminates the session (legal only when
// the grammar can complete) and clears the mask.
//
//xg:hotpath
func (s *Session) Step(id int32) (StepResult, error) {
	var res StepResult
	if err := s.Accept(id); err != nil {
		return res, err
	}
	if s.terminated {
		res.Terminated = true
		return res, nil
	}
	s.jf = s.m.JumpForwardAppend(s.jf)
	res.JumpForward = s.jf
	res.Stats = s.Fill()
	return res, nil
}

// Fill computes the allowed-token mask for the next decoding step into the
// session's own buffer (Mask). Fill is idempotent: when the mask is already
// current — the fused Step just produced it, or a batch fill ran since the
// last accept — it returns the cached statistics without recomputing, so
// mixing Step with WorkerPool batch fills never does the grammar work twice.
func (s *Session) Fill() maskcache.FillStats {
	st, _ := s.FillTracked()
	return st
}

// FillTracked is Fill additionally reporting whether this call did the
// grammar work: computed is false when the mask was already current (the
// fused Step or a previous batch fill produced it) and the memoized stats
// were returned. The serving engine uses it to count real fills — and
// canonical-mask fast-path hits — without double-counting idempotent
// no-ops.
//
//xg:hotpath
func (s *Session) FillTracked() (stats maskcache.FillStats, computed bool) {
	if !s.dirty {
		return s.lastStats, false
	}
	s.lastStats = s.fillInto(s.bs)
	s.dirty = false
	return s.lastStats, true
}

// Mask returns the session's mask buffer: bit i set means token i keeps the
// output inside the grammar. Valid until the next Step/Fill call.
func (s *Session) Mask() []uint64 { return s.mask }

// FillMask fills the allowed-token mask into a caller-provided bitset (the
// baselines.Session fill path used by the serving engine).
func (s *Session) FillMask(mask *bitset.Bitset) { s.fillInto(mask) }

func (s *Session) fillInto(mask *bitset.Bitset) maskcache.FillStats {
	if s.terminated {
		mask.ClearAll()
		return maskcache.FillStats{}
	}
	canTerm := s.m.CanTerminate()
	if s.sp.cache != nil {
		return s.sp.cache.FillMask(s.exec, s.m.States(), mask, canTerm, s.fc)
	}
	maskcache.FullScanMask(s.exec, s.sp.tok, s.m.States(), mask, canTerm, true)
	return maskcache.FillStats{}
}

// Accept advances the session by one generated token without the fused
// probe+fill — the batch-decoding path where the next round's WorkerPool
// fill computes the mask while the GPU runs. The stop token terminates the
// generation; it is only legal when the grammar can complete.
func (s *Session) Accept(id int32) error {
	if s.terminated {
		return fmt.Errorf("serve: session already terminated")
	}
	if id == tokenizer.EosID {
		if !s.m.CanTerminate() {
			return fmt.Errorf("serve: stop token before grammar completion")
		}
		s.terminated = true
		s.bs.ClearAll()
		s.dirty = false
		s.lastStats = maskcache.FillStats{}
		return nil
	}
	if s.sp.tok.IsSpecial(id) {
		return fmt.Errorf("serve: special token %d not allowed", id)
	}
	if !s.m.Advance(s.sp.tok.TokenBytes(id)) {
		return fmt.Errorf("serve: token %d (%q) violates grammar", id, s.sp.tok.TokenBytes(id))
	}
	s.dirty = true
	return nil
}

// AcceptString advances the session by raw bytes as one checkpoint — the
// jump-forward insertion path (the caller refills via Fill or the next Step).
func (s *Session) AcceptString(text string) error {
	if s.terminated {
		return fmt.Errorf("serve: session already terminated")
	}
	if !s.m.Advance([]byte(text)) {
		return fmt.Errorf("serve: string %q violates grammar", text)
	}
	s.dirty = true
	return nil
}

// AcceptBytes is AcceptString without the string conversion — the
// allocation-free variant for byte-stream drivers (structural-tag dispatch).
func (s *Session) AcceptBytes(b []byte) error {
	if s.terminated {
		return fmt.Errorf("serve: session already terminated")
	}
	if !s.m.Advance(b) {
		return fmt.Errorf("serve: bytes %q violate grammar", b)
	}
	s.dirty = true
	return nil
}

// JumpForward returns the deterministic continuation of the current state,
// or "" when the next byte is ambiguous.
func (s *Session) JumpForward() string {
	if s.terminated {
		return ""
	}
	return s.m.JumpForward()
}

// JumpForwardAppend appends the deterministic continuation to dst and
// returns it — the allocation-free variant of JumpForward for fused decode
// steps (callers pass a reused buffer).
func (s *Session) JumpForwardAppend(dst []byte) []byte {
	if s.terminated {
		return dst[:0]
	}
	return s.m.JumpForwardAppend(dst)
}

// Rollback undoes the last n Accept/AcceptString calls. Like the matcher's
// rollback it is atomic: on error (n exceeds the retained history) the
// session is unchanged.
//
// A warm-started session has one extra virtual step below its oldest real
// checkpoint: the restored prefix itself (a cold session accepts the forced
// prefix as a single AcceptString step, so parity requires the fork point to
// be undoable too). Rolling back exactly across it degrades safely to a cold
// reset — the matcher returns to the grammar start, precisely where the cold
// session's equivalent rollback would land; the cache is not consulted.
func (s *Session) Rollback(n int) error {
	steps := n
	if s.terminated && steps > 0 {
		steps-- // undoing the terminating EOS costs no matcher step
	}
	if err := s.m.Rollback(steps); err != nil {
		if s.baseSteps == 0 || steps != s.m.HistoryLen()+s.baseSteps {
			return err
		}
		s.m.Reset()
		s.base = s.base[:0]
		s.baseSteps = 0
	}
	if s.terminated && n > 0 {
		s.terminated = false
	}
	s.dirty = true
	return nil
}

// HistoryCap returns the session's rollback window: the largest number of
// Accept/AcceptString calls that can ever be undone. Speculative decoding
// bounds its draft window by this so a fully rejected draft is always
// retractable.
func (s *Session) HistoryCap() int { return s.m.MaxHistory() }

// HistoryLen returns the number of steps currently available for rollback.
func (s *Session) HistoryLen() int { return s.m.HistoryLen() }

// CanTerminate reports whether the grammar permits stopping here.
func (s *Session) CanTerminate() bool { return !s.terminated && s.m.CanTerminate() }

// IsTerminated reports whether the stop token has been accepted.
func (s *Session) IsTerminated() bool { return s.terminated }

// Close releases the session back to its pool. The session must not be used
// afterwards.
func (s *Session) Close() { s.sp.Release(s) }
