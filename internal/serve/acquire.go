package serve

import (
	"sync/atomic"

	"xgrammar/internal/maskcache"
	"xgrammar/internal/matcher"
	"xgrammar/internal/prefixcache"
)

// DefaultPublishDepth is the shortest forced prefix (in bytes) worth
// publishing to the prefix cache: below this, replaying is cheaper than a
// checkpoint restore plus the cache bookkeeping.
const DefaultPublishDepth = 4

// Acquirer is the warm-start acquisition layer over a SessionPool: where
// the pool recycles session *resources* (matcher, fill context, mask
// buffer), the acquirer recycles session *state*. Acquire walks the prefix
// cache's radix tree for the deepest checkpoint covering the request's
// forced prefix, restores it, replays only the residual bytes, and — on an
// exact hit — adopts the memoized allowed-token mask so the first fill is
// free. Release (via Session.Close) publishes checkpoints captured during
// replay at the configured depths, so the first request through a template
// warms every request after it.
//
// An Acquirer is safe for concurrent use; the singleflight lives in the
// cache's Reserve, so concurrent cold sessions on one template capture its
// checkpoint exactly once.
type Acquirer struct {
	pool      *SessionPool
	cache     *prefixcache.Cache // nil: every acquisition is cold
	grammarID string
	minDepth  int
	stride    int

	acquires      atomic.Int64
	warmStarts    atomic.Int64
	exactHits     atomic.Int64
	bytesReused   atomic.Int64
	bytesReplayed atomic.Int64
}

// NewAcquirer layers warm-start acquisition over pool. cache may be nil
// (every acquisition replays cold). grammarID keys the cache — it must be
// stable and collision-free across grammars (the compiler's content-
// addressed ID). minDepth <= 0 uses DefaultPublishDepth; stride > 0
// additionally publishes intermediate checkpoints every stride bytes along
// the prefix, so templates sharing a shorter scaffold still warm-start.
func NewAcquirer(pool *SessionPool, cache *prefixcache.Cache, grammarID string, minDepth, stride int) *Acquirer {
	if minDepth <= 0 {
		minDepth = DefaultPublishDepth
	}
	if stride < 0 {
		stride = 0
	}
	return &Acquirer{pool: pool, cache: cache, grammarID: grammarID, minDepth: minDepth, stride: stride}
}

// Pool returns the underlying session pool.
func (a *Acquirer) Pool() *SessionPool { return a.pool }

// AcquireResult reports how warm one acquisition was.
type AcquireResult struct {
	// PrefixLen is the forced prefix length in bytes; ReusedBytes of it were
	// skipped by restoring a cached checkpoint and ReplayedBytes were
	// replayed through the matcher.
	PrefixLen     int
	ReusedBytes   int
	ReplayedBytes int
	// Hit is true when any cached checkpoint applied; MaskReused is true
	// when the exact-prefix entry also supplied the memoized token mask
	// (the session's first fill cost nothing).
	Hit        bool
	MaskReused bool
}

// Acquire returns a session positioned after forcedPrefix with its
// allowed-token mask filled, warm-starting from the deepest cached
// checkpoint. On error (the prefix violates the grammar) the session is
// released back to the pool and any checkpoints captured up to the failing
// byte are still published — they describe positions the replay did reach.
func (a *Acquirer) Acquire(forcedPrefix []byte) (*Session, AcquireResult, error) {
	s := a.pool.Acquire()
	s.acq = a
	res := AcquireResult{PrefixLen: len(forcedPrefix)}
	a.acquires.Add(1)
	if len(forcedPrefix) == 0 {
		s.Fill()
		return s, res, nil
	}
	start := 0
	if e, depth := a.cache.Lookup(a.grammarID, forcedPrefix); e != nil && e.Checkpoint() != nil {
		s.restoreCheckpoint(e.Checkpoint(), forcedPrefix[:depth])
		start = depth
		res.Hit = true
		res.ReusedBytes = depth
		a.warmStarts.Add(1)
		a.bytesReused.Add(int64(depth))
		if depth == len(forcedPrefix) {
			a.exactHits.Add(1)
			if mask, stats, ok := e.Mask(); ok && len(mask) == len(s.mask) {
				s.adoptMask(mask, stats)
				res.MaskReused = true
				return s, res, nil
			}
			s.Fill()
			return s, res, nil
		}
	}
	// Replay the residual bytes, breaking at capture depths so intermediate
	// checkpoints can be published for shorter shared scaffolds.
	for start < len(forcedPrefix) {
		next := a.nextCaptureDepth(start, len(forcedPrefix))
		if err := s.AcceptBytes(forcedPrefix[start:next]); err != nil {
			a.bytesReplayed.Add(int64(start - res.ReusedBytes))
			res.ReplayedBytes = start - res.ReusedBytes
			s.Close()
			return nil, res, err
		}
		start = next
		if start == len(forcedPrefix) {
			break // the full-prefix capture below also memoizes the mask
		}
		if a.cache.Reserve(a.grammarID, forcedPrefix[:start]) {
			s.pending = append(s.pending, pendingPub{
				key: append([]byte(nil), forcedPrefix[:start]...),
				cp:  s.m.Checkpoint(),
			})
		}
	}
	res.ReplayedBytes = len(forcedPrefix) - res.ReusedBytes
	a.bytesReplayed.Add(int64(res.ReplayedBytes))
	stats := s.Fill()
	if len(forcedPrefix) >= a.minDepth && a.cache.Reserve(a.grammarID, forcedPrefix) {
		s.pending = append(s.pending, pendingPub{
			key:   append([]byte(nil), forcedPrefix...),
			cp:    s.m.Checkpoint(),
			mask:  append([]uint64(nil), s.mask...),
			stats: stats,
		})
	}
	return s, res, nil
}

// nextCaptureDepth returns the depth the current replay segment should end
// at: the next stride multiple past start that is at least minDepth, or end.
func (a *Acquirer) nextCaptureDepth(start, end int) int {
	if a.stride <= 0 {
		return end
	}
	d := (start/a.stride + 1) * a.stride
	for d < a.minDepth {
		d += a.stride
	}
	if d >= end {
		return end
	}
	return d
}

// AcquirerStats is a point-in-time snapshot of acquisition activity.
type AcquirerStats struct {
	// Acquires counts Acquire calls; WarmStarts those that restored a cached
	// checkpoint; ExactHits those whose whole prefix was cached.
	Acquires, WarmStarts, ExactHits int64
	// BytesReused counts prefix bytes skipped via checkpoints;
	// BytesReplayed counts bytes fed through the matcher.
	BytesReused, BytesReplayed int64
}

// Stats returns a snapshot of the acquirer counters.
func (a *Acquirer) Stats() AcquirerStats {
	return AcquirerStats{
		Acquires:      a.acquires.Load(),
		WarmStarts:    a.warmStarts.Load(),
		ExactHits:     a.exactHits.Load(),
		BytesReused:   a.bytesReused.Load(),
		BytesReplayed: a.bytesReplayed.Load(),
	}
}

// pendingPub is a checkpoint captured during Acquire's replay, held on the
// session until Release publishes it (publication after the session's work
// keeps capture off the request's critical path).
type pendingPub struct {
	key   []byte
	cp    *matcher.Checkpoint
	mask  []uint64 // non-nil only for the full-prefix entry
	stats maskcache.FillStats
}

// publishPending moves the session's captured checkpoints into the cache.
// Called by SessionPool.Release before the session is recycled.
func (s *Session) publishPending() {
	if s.acq != nil {
		for i := range s.pending {
			p := &s.pending[i]
			s.acq.cache.Publish(s.acq.grammarID, p.key, p.cp, p.mask, p.stats)
		}
	}
	s.pending = s.pending[:0]
	s.acq = nil
}

// restoreCheckpoint positions the pooled session at a cached checkpoint.
// base records the prefix bytes the checkpoint stands in for, so a rollback
// crossing the fork point can degrade to a cold reset (see Rollback).
func (s *Session) restoreCheckpoint(cp *matcher.Checkpoint, base []byte) {
	s.m.Restore(cp)
	s.base = append(s.base[:0], base...)
	s.baseSteps = 1
	s.terminated = false
	s.dirty = true
}

// RestoreCheckpoint positions the session at a checkpoint previously
// captured with Checkpoint, clearing the rollback history. Rolling back
// past the restore point degrades to the grammar start state.
func (s *Session) RestoreCheckpoint(cp *matcher.Checkpoint) {
	s.restoreCheckpoint(cp, nil)
}

// Checkpoint returns a portable snapshot of the session's current grammar
// position (the cross-goroutine complement of a matcher fork): it can be
// cached and restored into any session of the same compiled grammar.
func (s *Session) Checkpoint() *matcher.Checkpoint { return s.m.Checkpoint() }

// adoptMask installs a memoized allowed-token mask as current, so the next
// Fill is an idempotent no-op.
func (s *Session) adoptMask(mask []uint64, stats maskcache.FillStats) {
	copy(s.mask, mask)
	s.lastStats = stats
	s.dirty = false
}
