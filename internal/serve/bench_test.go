package serve

import (
	"fmt"
	"strings"
	"testing"

	"xgrammar/internal/bitset"
)

// BenchmarkSessionStep measures the fused per-token hot path (accept +
// jump-forward probe + mask fill) on a recycled session in steady state.
// The acceptance bar for this runtime is 0 allocs/op.
func BenchmarkSessionStep(b *testing.B) {
	e := testEnv(b)
	pool := NewSessionPool(e.p, e.cache, e.tok, 0)
	var sb strings.Builder
	sb.WriteString(`[`)
	for i := 0; i < 500; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, `{"id": %d, "ok": true}`, i)
	}
	sb.WriteString(`]`)
	doc := sb.String()
	ids := e.tok.Encode(doc)

	s := pool.Acquire()
	s.Fill()
	for _, id := range ids { // settle capacities
		if _, err := s.Step(id); err != nil {
			b.Fatal(err)
		}
	}
	s.Close()

	s = pool.Acquire()
	s.Fill()
	i := 0
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if i == len(ids) {
			b.StopTimer()
			s.Close() // release resets; the next acquire recycles it
			s = pool.Acquire()
			s.Fill()
			i = 0
			b.StartTimer()
		}
		if _, err := s.Step(ids[i]); err != nil {
			b.Fatal(err)
		}
		i++
	}
}

// BenchmarkWorkerPoolFill compares one decode step's batch mask fill through
// the persistent work-stealing pool against a serial fill, at a serving
// batch size. Fills go into external bitsets (the engine's per-step path),
// which always compute — Session.Fill is idempotent and would no-op after
// the first iteration.
func BenchmarkWorkerPoolFill(b *testing.B) {
	e := testEnv(b)
	spool := NewSessionPool(e.p, e.cache, e.tok, 0)
	const batch = 32
	sessions := make([]*Session, batch)
	masks := make([]*bitset.Bitset, batch)
	for i := range sessions {
		sessions[i] = spool.Acquire()
		if err := sessions[i].AcceptString(fmt.Sprintf(`{"seq%d": [%d, `, i, i)); err != nil {
			b.Fatal(err)
		}
		masks[i] = bitset.New(e.tok.VocabSize())
	}
	b.Run("serial", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			for i, s := range sessions {
				s.FillMask(masks[i])
			}
		}
	})
	b.Run("pool", func(b *testing.B) {
		wp := NewWorkerPool(0)
		defer wp.Close()
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			wp.Run(len(sessions), func(i int) { sessions[i].FillMask(masks[i]) })
		}
	})
}
