// Package jsonschema compiles JSON Schema documents into grammars for
// constrained generation (the paper's "JSON Schema" task, §4.1). Supported
// keywords: type (object, array, string, integer, number, boolean, null),
// properties/required/additionalProperties, items/minItems/maxItems,
// enum/const, minLength/maxLength, minimum/maximum (integers), anyOf/oneOf,
// and $ref into $defs/definitions (including recursive references).
// Output formatting is canonical (", " and ": " separators), which maximizes
// jump-forward opportunities (Appendix B).
package jsonschema

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Kind enumerates ordered JSON value kinds.
type Kind uint8

// Value kinds.
const (
	KindObject Kind = iota
	KindArray
	KindString
	KindNumber
	KindBool
	KindNull
)

// Value is a JSON value that preserves object key order — required because
// the schema's property order defines the generation order.
type Value struct {
	Kind  Kind
	Keys  []string
	Vals  []*Value
	Items []*Value
	Str   string
	Num   json.Number
	Bool  bool
}

// Get returns the member value for key, or nil.
func (v *Value) Get(key string) *Value {
	if v == nil || v.Kind != KindObject {
		return nil
	}
	for i, k := range v.Keys {
		if k == key {
			return v.Vals[i]
		}
	}
	return nil
}

// ParseOrdered parses JSON preserving object key order.
func ParseOrdered(data []byte) (*Value, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	v, err := parseValue(dec)
	if err != nil {
		return nil, err
	}
	if dec.More() {
		return nil, fmt.Errorf("jsonschema: trailing data after document")
	}
	return v, nil
}

func parseValue(dec *json.Decoder) (*Value, error) {
	tok, err := dec.Token()
	if err != nil {
		return nil, err
	}
	return parseFromToken(dec, tok)
}

func parseFromToken(dec *json.Decoder, tok json.Token) (*Value, error) {
	switch t := tok.(type) {
	case json.Delim:
		switch t {
		case '{':
			v := &Value{Kind: KindObject}
			for dec.More() {
				keyTok, err := dec.Token()
				if err != nil {
					return nil, err
				}
				key, ok := keyTok.(string)
				if !ok {
					return nil, fmt.Errorf("jsonschema: non-string object key %v", keyTok)
				}
				val, err := parseValue(dec)
				if err != nil {
					return nil, err
				}
				v.Keys = append(v.Keys, key)
				v.Vals = append(v.Vals, val)
			}
			if _, err := dec.Token(); err != nil { // consume '}'
				return nil, err
			}
			return v, nil
		case '[':
			v := &Value{Kind: KindArray}
			for dec.More() {
				item, err := parseValue(dec)
				if err != nil {
					return nil, err
				}
				v.Items = append(v.Items, item)
			}
			if _, err := dec.Token(); err != nil { // consume ']'
				return nil, err
			}
			return v, nil
		}
		return nil, fmt.Errorf("jsonschema: unexpected delimiter %v", t)
	case string:
		return &Value{Kind: KindString, Str: t}, nil
	case json.Number:
		return &Value{Kind: KindNumber, Num: t}, nil
	case bool:
		return &Value{Kind: KindBool, Bool: t}, nil
	case nil:
		return &Value{Kind: KindNull}, nil
	}
	return nil, fmt.Errorf("jsonschema: unexpected token %v", tok)
}

// MarshalCanonical renders v back to canonical JSON text (", " and ": "
// separators, schema key order preserved).
func (v *Value) MarshalCanonical() string {
	var sb bytes.Buffer
	v.writeCanonical(&sb)
	return sb.String()
}

func (v *Value) writeCanonical(sb *bytes.Buffer) {
	switch v.Kind {
	case KindObject:
		sb.WriteByte('{')
		for i, k := range v.Keys {
			if i > 0 {
				sb.WriteString(", ")
			}
			kb, _ := json.Marshal(k)
			sb.Write(kb)
			sb.WriteString(": ")
			v.Vals[i].writeCanonical(sb)
		}
		sb.WriteByte('}')
	case KindArray:
		sb.WriteByte('[')
		for i, it := range v.Items {
			if i > 0 {
				sb.WriteString(", ")
			}
			it.writeCanonical(sb)
		}
		sb.WriteByte(']')
	case KindString:
		b, _ := json.Marshal(v.Str)
		sb.Write(b)
	case KindNumber:
		sb.WriteString(v.Num.String())
	case KindBool:
		if v.Bool {
			sb.WriteString("true")
		} else {
			sb.WriteString("false")
		}
	case KindNull:
		sb.WriteString("null")
	}
}
