package jsonschema

import (
	"fmt"
	"unicode/utf8"

	"xgrammar/internal/grammar"
	"xgrammar/internal/regexconv"
)

// composePatternLength intersects an edge-anchored pattern with
// minLength/maxLength (counted in code points, per JSON Schema). Supported
// shapes:
//
//   - a single top-level repeat over a one-rune subexpression (classes or
//     one-rune literals): the length window composes directly into the
//     repeat bounds ("^[a-z]+$" with maxLength 4 becomes [a-z]{1,4});
//   - any pattern whose possible match lengths already sit inside the
//     window: the bounds are redundant and the pattern is used alone;
//   - a window that excludes every possible match length: an error.
//
// Everything else — unanchored edges (which admit arbitrarily long matches)
// or multi-part bodies whose lengths only partially overlap the window —
// fails with a descriptive error; the caller attaches the pointer path.
func composePatternLength(p regexconv.Pattern, minL int64, hasMin bool, maxL int64, hasMax bool) (grammar.Expr, error) {
	if !p.AnchoredStart || !p.AnchoredEnd {
		return nil, fmt.Errorf("pattern must be edge-anchored (^...$) to compose with length bounds")
	}
	if hasMin && hasMax && maxL < minL {
		return nil, fmt.Errorf("length window [%d, %d] is empty", minL, maxL)
	}

	// Shape 1: a single bounded-or-unbounded repeat of a one-rune atom.
	if rep, ok := p.Expr.(*grammar.Repeat); ok && runeLen1(rep.Sub) {
		lo := int64(rep.Min)
		if hasMin && minL > lo {
			lo = minL
		}
		hi := int64(rep.Max) // -1: unbounded
		if hasMax && (hi < 0 || maxL < hi) {
			hi = maxL
		}
		if hi >= 0 && hi < lo {
			return nil, fmt.Errorf("pattern repeat {%d,%s} and length window do not intersect",
				rep.Min, maxStr(rep.Max))
		}
		return &grammar.Repeat{Sub: rep.Sub, Min: int(lo), Max: int(hi)}, nil
	}

	// Shape 2: the window already covers every length the pattern can match.
	lo, hi, ok := exprRuneBounds(p.Expr)
	if ok {
		coveredLow := !hasMin || minL <= int64(lo)
		coveredHigh := !hasMax || (hi >= 0 && int64(hi) <= maxL)
		if coveredLow && coveredHigh {
			return p.Expr, nil
		}
		disjoint := (hasMax && maxL < int64(lo)) || (hi >= 0 && hasMin && minL > int64(hi))
		if disjoint {
			return nil, fmt.Errorf("pattern lengths [%d, %s] and length window do not intersect", lo, maxStr(hi))
		}
	}
	return nil, fmt.Errorf("length bounds only compose with a single repeat of one-rune atoms, or when redundant (pattern lengths [%d, %s])",
		lo, maxStr(hi))
}

func maxStr(m int) string {
	if m < 0 {
		return "inf"
	}
	return fmt.Sprintf("%d", m)
}

// runeLen1 reports whether e always matches exactly one rune.
func runeLen1(e grammar.Expr) bool {
	lo, hi, ok := exprRuneBounds(e)
	return ok && lo == 1 && hi == 1
}

// exprRuneBounds computes the minimum and maximum number of runes an
// expression can match (hi == -1 means unbounded). ok is false for
// expression kinds the analysis does not cover (rule references).
func exprRuneBounds(e grammar.Expr) (lo, hi int, ok bool) {
	switch v := e.(type) {
	case *grammar.Empty:
		return 0, 0, true
	case *grammar.Literal:
		n := utf8.RuneCount(v.Bytes)
		return n, n, true
	case *grammar.CharClass:
		return 1, 1, true
	case *grammar.Seq:
		for _, it := range v.Items {
			l, h, o := exprRuneBounds(it)
			if !o {
				return 0, -1, false
			}
			lo += l
			if hi >= 0 {
				if h < 0 {
					hi = -1
				} else {
					hi += h
				}
			}
		}
		return lo, hi, true
	case *grammar.Choice:
		first := true
		for _, a := range v.Alts {
			l, h, o := exprRuneBounds(a)
			if !o {
				return 0, -1, false
			}
			if first {
				lo, hi, first = l, h, false
				continue
			}
			if l < lo {
				lo = l
			}
			if hi >= 0 && (h < 0 || h > hi) {
				hi = h
				if h < 0 {
					hi = -1
				}
			}
		}
		return lo, hi, !first
	case *grammar.Repeat:
		l, h, o := exprRuneBounds(v.Sub)
		if !o {
			return 0, -1, false
		}
		lo = l * v.Min
		switch {
		case v.Max < 0:
			hi = -1
			if h == 0 {
				hi = 0 // repeating the empty string adds no length
			}
		case h < 0:
			hi = -1
			if v.Max == 0 {
				hi = 0
			}
		default:
			hi = h * v.Max
		}
		return lo, hi, true
	}
	return 0, -1, false
}
