package jsonschema

import "fmt"

// Diagnostic reports a schema constraint the compiled grammar does not
// fully enforce. Compilation still succeeds — the grammar is a sound
// over-approximation (every instance it rejects is invalid) — but callers
// that need exact validation can inspect the list instead of discovering
// the gap in production. The pointer names the subschema the constraint
// came from, JSON-Pointer style ("/properties/age").
type Diagnostic struct {
	// Pointer locates the subschema ("" is the root).
	Pointer string
	// Message describes what is not enforced and how far enforcement got.
	Message string
}

func (d Diagnostic) String() string {
	ptr := d.Pointer
	if ptr == "" {
		ptr = "/"
	}
	return fmt.Sprintf("%s: %s", ptr, d.Message)
}
