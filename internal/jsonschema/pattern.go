package jsonschema

import (
	"fmt"

	"xgrammar/internal/grammar"
)

// exprToEBNF renders a grammar expression back to EBNF source; the schema
// compiler assembles its output grammar as text.
func exprToEBNF(e grammar.Expr) string { return e.String() }

// jsonSafe returns whether a rune may appear raw inside a JSON string.
func jsonSafe(r rune) bool {
	return r >= 0x20 && r != '"' && r != '\\'
}

// restrictToStringChars rewrites a pattern expression so it can be embedded
// between JSON quotes: character classes are intersected with the set of
// runes that need no JSON escaping, and literals containing unsafe runes are
// rejected (emitting them would require escape-aware serialization).
func restrictToStringChars(e grammar.Expr) (grammar.Expr, error) {
	switch v := e.(type) {
	case *grammar.Seq:
		for i, it := range v.Items {
			ni, err := restrictToStringChars(it)
			if err != nil {
				return nil, err
			}
			v.Items[i] = ni
		}
		return v, nil
	case *grammar.Choice:
		for i, a := range v.Alts {
			na, err := restrictToStringChars(a)
			if err != nil {
				return nil, err
			}
			v.Alts[i] = na
		}
		return v, nil
	case *grammar.Repeat:
		ns, err := restrictToStringChars(v.Sub)
		if err != nil {
			return nil, err
		}
		v.Sub = ns
		return v, nil
	case *grammar.Literal:
		for _, r := range string(v.Bytes) {
			if !jsonSafe(r) {
				return nil, fmt.Errorf("pattern matches %q, which needs JSON escaping", r)
			}
		}
		return v, nil
	case *grammar.CharClass:
		ranges := v.Ranges
		if v.Negated {
			rs := make([][2]rune, len(ranges))
			for i, r := range ranges {
				rs[i] = [2]rune{r.Lo, r.Hi}
			}
			comp := complementSorted(rs)
			ranges = ranges[:0:0]
			for _, cr := range comp {
				ranges = append(ranges, grammar.RuneRange{Lo: cr[0], Hi: cr[1]})
			}
		}
		var out []grammar.RuneRange
		for _, r := range ranges {
			out = append(out, subtractUnsafe(r)...)
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("pattern class matches only characters that need JSON escaping")
		}
		return &grammar.CharClass{Ranges: out}, nil
	case *grammar.Empty:
		return v, nil
	}
	return nil, fmt.Errorf("unexpected expression %T in pattern", e)
}

// subtractUnsafe removes the JSON-unsafe runes (controls, quote, backslash)
// from an inclusive range.
func subtractUnsafe(r grammar.RuneRange) []grammar.RuneRange {
	holes := [][2]rune{{0x00, 0x1f}, {'"', '"'}, {'\\', '\\'}}
	cur := []grammar.RuneRange{r}
	for _, h := range holes {
		var next []grammar.RuneRange
		for _, c := range cur {
			if h[1] < c.Lo || h[0] > c.Hi {
				next = append(next, c)
				continue
			}
			if c.Lo < h[0] {
				next = append(next, grammar.RuneRange{Lo: c.Lo, Hi: h[0] - 1})
			}
			if c.Hi > h[1] {
				next = append(next, grammar.RuneRange{Lo: h[1] + 1, Hi: c.Hi})
			}
		}
		cur = next
	}
	return cur
}

// complementSorted complements sorted, non-overlapping rune ranges over the
// Unicode space.
func complementSorted(rs [][2]rune) [][2]rune {
	var out [][2]rune
	next := rune(0)
	for _, r := range rs {
		if r[0] > next {
			out = append(out, [2]rune{next, r[0] - 1})
		}
		if r[1]+1 > next {
			next = r[1] + 1
		}
	}
	if next <= 0x10FFFF {
		out = append(out, [2]rune{next, 0x10FFFF})
	}
	return out
}
