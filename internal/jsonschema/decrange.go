package jsonschema

import (
	"fmt"
	"strings"
)

// decRangeExpr returns an EBNF expression fragment matching exactly the
// decimal representations of the integers in [lo, hi] (no leading zeros,
// "-" for negatives). It mirrors the byte-range decomposition used for
// UTF-8 in the automaton builder, but over decimal digit strings.
func decRangeExpr(lo, hi int64) string {
	if lo > hi {
		panic("jsonschema: decRangeExpr lo > hi")
	}
	var alts []string
	if lo < 0 {
		nhi := -lo
		nlo := int64(1)
		if hi < 0 {
			nlo = -hi
		}
		for _, a := range nonNegDecAlts(nlo, nhi) {
			alts = append(alts, `"-" `+a)
		}
		if hi >= 0 {
			alts = append(alts, nonNegDecAlts(0, hi)...)
		}
	} else {
		alts = nonNegDecAlts(lo, hi)
	}
	return "( " + strings.Join(alts, " | ") + " )"
}

// nonNegDecAlts returns EBNF alternatives covering [lo, hi] for 0 <= lo <= hi.
func nonNegDecAlts(lo, hi int64) []string {
	var alts []string
	ls, hs := fmt.Sprintf("%d", lo), fmt.Sprintf("%d", hi)
	if len(ls) == len(hs) {
		return decSameLen(ls, hs)
	}
	// lo's length: lo .. 999…9
	alts = append(alts, decSameLen(ls, strings.Repeat("9", len(ls)))...)
	// intermediate lengths: full ranges without leading zeros
	for l := len(ls) + 1; l < len(hs); l++ {
		alts = append(alts, `[1-9] `+digitsExpr(l-1))
	}
	// hi's length: 100…0 .. hi
	alts = append(alts, decSameLen("1"+strings.Repeat("0", len(hs)-1), hs)...)
	return alts
}

// digitsExpr matches exactly n digits.
func digitsExpr(n int) string {
	switch n {
	case 0:
		return `""`
	case 1:
		return `[0-9]`
	default:
		return fmt.Sprintf(`[0-9]{%d}`, n)
	}
}

// decSameLen returns alternatives for digit strings between lo and hi, which
// must have equal length, compared lexicographically (equivalent to numeric
// order at equal length).
func decSameLen(lo, hi string) []string {
	var out []string
	var rec func(prefix string, lo, hi string)
	rec = func(prefix string, lo, hi string) {
		if len(lo) == 0 {
			if prefix != "" {
				out = append(out, fmt.Sprintf("%q", prefix))
			}
			return
		}
		if lo[0] == hi[0] {
			rec(prefix+string(lo[0]), lo[1:], hi[1:])
			return
		}
		emit := func(first byte, last byte, rest string) {
			// prefix, digit class [first-last], then free digits or a
			// constrained tail expression `rest`.
			var sb strings.Builder
			if prefix != "" {
				fmt.Fprintf(&sb, "%q ", prefix)
			}
			if first == last {
				fmt.Fprintf(&sb, `"%c"`, first)
			} else {
				fmt.Fprintf(&sb, "[%c-%c]", first, last)
			}
			if rest != "" {
				sb.WriteByte(' ')
				sb.WriteString(rest)
			}
			out = append(out, sb.String())
		}
		start, end := lo[0], hi[0]
		lowAllZero := allDigit(lo[1:], '0')
		highAllNine := allDigit(hi[1:], '9')
		if !lowAllZero {
			// start with exact lo[0], tail in [lo[1:] .. 99…9]
			sub := decSameLen(lo[1:], strings.Repeat("9", len(lo)-1))
			emitGroup := "( " + strings.Join(sub, " | ") + " )"
			emit(start, start, emitGroup)
			start++
		}
		if !highAllNine {
			end--
		}
		if start <= end {
			emit(start, end, digitsFree(len(lo)-1))
		}
		if !highAllNine {
			sub := decSameLen(strings.Repeat("0", len(hi)-1), hi[1:])
			emitGroup := "( " + strings.Join(sub, " | ") + " )"
			emit(hi[0], hi[0], emitGroup)
		}
	}
	rec("", lo, hi)
	return out
}

func digitsFree(n int) string {
	if n == 0 {
		return ""
	}
	return digitsExpr(n)
}

func allDigit(s string, d byte) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != d {
			return false
		}
	}
	return true
}
