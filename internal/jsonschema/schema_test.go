package jsonschema

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"xgrammar/internal/grammar"
	"xgrammar/internal/matcher"
	"xgrammar/internal/pda"
)

// accepts compiles the schema and reports whether doc is a complete match.
func accepts(t *testing.T, schema string, doc string, opts Options) bool {
	t.Helper()
	g, err := Compile([]byte(schema), opts)
	if err != nil {
		t.Fatalf("compile %s: %v", schema, err)
	}
	return matchComplete(t, g, doc)
}

func matchComplete(t *testing.T, g *grammar.Grammar, doc string) bool {
	t.Helper()
	p, err := pda.Compile(g, pda.AllOptimizations)
	if err != nil {
		t.Fatal(err)
	}
	m := matcher.New(matcher.NewExec(p), 0)
	if !m.Advance([]byte(doc)) {
		return false
	}
	return m.CanTerminate()
}

func TestSimpleObject(t *testing.T) {
	schema := `{
		"type": "object",
		"properties": {
			"name": {"type": "string"},
			"age": {"type": "integer"}
		},
		"required": ["name", "age"]
	}`
	good := []string{
		`{"name": "bob", "age": 42}`,
		`{"name": "", "age": -1}`,
	}
	bad := []string{
		`{"age": 42, "name": "bob"}`, // wrong order (canonical order enforced)
		`{"name": "bob"}`,            // missing required
		`{"name": "bob", "age": 4.5}`,
		`{"name": "bob", "age": 42, "x": 1}`, // additional prop (strict)
		`{ "name": "bob", "age": 42}`,        // non-canonical whitespace
	}
	for _, d := range good {
		if !accepts(t, schema, d, Options{}) {
			t.Errorf("valid doc rejected: %s", d)
		}
	}
	for _, d := range bad {
		if accepts(t, schema, d, Options{}) {
			t.Errorf("invalid doc accepted: %s", d)
		}
	}
}

func TestOptionalProperties(t *testing.T) {
	schema := `{
		"type": "object",
		"properties": {
			"a": {"type": "integer"},
			"b": {"type": "integer"},
			"c": {"type": "integer"}
		},
		"required": ["b"]
	}`
	good := []string{
		`{"b": 1}`,
		`{"a": 1, "b": 2}`,
		`{"b": 1, "c": 2}`,
		`{"a": 1, "b": 2, "c": 3}`,
	}
	bad := []string{
		`{}`,
		`{"a": 1}`,
		`{"a": 1, "c": 3}`,
		`{"c": 1, "b": 2}`, // order
		`{"b": 1,}`,
	}
	for _, d := range good {
		if !accepts(t, schema, d, Options{}) {
			t.Errorf("valid doc rejected: %s", d)
		}
	}
	for _, d := range bad {
		if accepts(t, schema, d, Options{}) {
			t.Errorf("invalid doc accepted: %s", d)
		}
	}
}

func TestAdditionalProperties(t *testing.T) {
	schema := `{
		"type": "object",
		"properties": {"a": {"type": "integer"}},
		"required": ["a"],
		"additionalProperties": true
	}`
	if !accepts(t, schema, `{"a": 1, "extra": [true, null]}`, Options{}) {
		t.Error("additional property rejected")
	}
	if !accepts(t, schema, `{"a": 1}`, Options{}) {
		t.Error("plain doc rejected")
	}
}

func TestEmptyObjectSchemas(t *testing.T) {
	if !accepts(t, `{"type": "object"}`, `{}`, Options{}) {
		t.Error("{} rejected for bare object schema")
	}
	if accepts(t, `{"type": "object"}`, `{"a": 1}`, Options{}) {
		t.Error("strict bare object accepted members")
	}
	if !accepts(t, `{"type": "object"}`, `{"a": 1}`, Options{AllowAdditionalProperties: true}) {
		t.Error("permissive bare object rejected members")
	}
}

func TestArrays(t *testing.T) {
	schema := `{"type": "array", "items": {"type": "integer"}, "minItems": 1, "maxItems": 3}`
	good := []string{`[1]`, `[1, 2]`, `[1, 2, 3]`}
	bad := []string{`[]`, `[1, 2, 3, 4]`, `[1.5]`, `[1,2]`}
	for _, d := range good {
		if !accepts(t, schema, d, Options{}) {
			t.Errorf("valid array rejected: %s", d)
		}
	}
	for _, d := range bad {
		if accepts(t, schema, d, Options{}) {
			t.Errorf("invalid array accepted: %s", d)
		}
	}
}

func TestArrayUnbounded(t *testing.T) {
	schema := `{"type": "array", "items": {"type": "boolean"}}`
	for _, d := range []string{`[]`, `[true]`, `[true, false, true, true]`} {
		if !accepts(t, schema, d, Options{}) {
			t.Errorf("rejected: %s", d)
		}
	}
}

func TestEnumAndConst(t *testing.T) {
	schema := `{"enum": ["red", "green", 42, true, null, {"k": 1}]}`
	good := []string{`"red"`, `"green"`, `42`, `true`, `null`, `{"k": 1}`}
	bad := []string{`"blue"`, `43`, `false`}
	for _, d := range good {
		if !accepts(t, schema, d, Options{}) {
			t.Errorf("enum member rejected: %s", d)
		}
	}
	for _, d := range bad {
		if accepts(t, schema, d, Options{}) {
			t.Errorf("non-member accepted: %s", d)
		}
	}
	if !accepts(t, `{"const": "fixed"}`, `"fixed"`, Options{}) {
		t.Error("const rejected")
	}
}

func TestIntegerBounds(t *testing.T) {
	schema := `{"type": "integer", "minimum": -12, "maximum": 1045}`
	g, err := Compile([]byte(schema), Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := pda.Compile(g, pda.AllOptimizations)
	if err != nil {
		t.Fatal(err)
	}
	for n := -40; n <= 1100; n++ {
		m := matcher.New(matcher.NewExec(p), 0)
		doc := strconv.Itoa(n)
		got := m.Advance([]byte(doc)) && m.CanTerminate()
		want := n >= -12 && n <= 1045
		if got != want {
			t.Fatalf("%d: got %v want %v", n, got, want)
		}
	}
	// No leading zeros.
	m := matcher.New(matcher.NewExec(p), 0)
	if m.Advance([]byte("007")) && m.CanTerminate() {
		t.Error("leading zeros accepted")
	}
}

func TestIntegerBoundsProperty(t *testing.T) {
	// Randomized ranges verified exhaustively near the edges.
	cases := [][2]int64{{0, 0}, {0, 9}, {5, 5}, {7, 23}, {99, 101}, {-3, 3}, {-200, -100}, {1, 100000}}
	for _, cse := range cases {
		expr := decRangeExpr(cse[0], cse[1])
		src := "root ::= " + expr
		g, err := Compile([]byte(fmt.Sprintf(`{"type":"integer","minimum":%d,"maximum":%d}`, cse[0], cse[1])), Options{})
		if err != nil {
			t.Fatalf("%v: %v (expr %s)", cse, err, src)
		}
		p, err := pda.Compile(g, pda.AllOptimizations)
		if err != nil {
			t.Fatal(err)
		}
		probe := []int64{cse[0] - 2, cse[0] - 1, cse[0], cse[0] + 1, (cse[0] + cse[1]) / 2, cse[1] - 1, cse[1], cse[1] + 1, cse[1] + 2}
		for _, n := range probe {
			m := matcher.New(matcher.NewExec(p), 0)
			doc := strconv.FormatInt(n, 10)
			got := m.Advance([]byte(doc)) && m.CanTerminate()
			want := n >= cse[0] && n <= cse[1]
			if got != want {
				t.Fatalf("range %v value %d: got %v want %v", cse, n, got, want)
			}
		}
	}
}

func TestStringLengthBounds(t *testing.T) {
	schema := `{"type": "string", "minLength": 2, "maxLength": 4}`
	good := []string{`"ab"`, `"abc"`, `"abcd"`, `"éé"`}
	bad := []string{`""`, `"a"`, `"abcde"`}
	for _, d := range good {
		if !accepts(t, schema, d, Options{}) {
			t.Errorf("rejected: %s", d)
		}
	}
	for _, d := range bad {
		if accepts(t, schema, d, Options{}) {
			t.Errorf("accepted: %s", d)
		}
	}
}

func TestAnyOf(t *testing.T) {
	schema := `{"anyOf": [{"type": "integer"}, {"type": "string"}]}`
	for _, d := range []string{`42`, `"hi"`} {
		if !accepts(t, schema, d, Options{}) {
			t.Errorf("rejected: %s", d)
		}
	}
	if accepts(t, schema, `true`, Options{}) {
		t.Error("accepted non-member")
	}
}

func TestTypeArray(t *testing.T) {
	schema := `{"type": ["string", "null"]}`
	for _, d := range []string{`"x"`, `null`} {
		if !accepts(t, schema, d, Options{}) {
			t.Errorf("rejected: %s", d)
		}
	}
	if accepts(t, schema, `5`, Options{}) {
		t.Error("accepted non-member")
	}
}

func TestRefAndRecursion(t *testing.T) {
	schema := `{
		"type": "object",
		"properties": {
			"value": {"type": "integer"},
			"next": {"anyOf": [{"$ref": "#"}, {"type": "null"}]}
		},
		"required": ["value", "next"]
	}`
	good := []string{
		`{"value": 1, "next": null}`,
		`{"value": 1, "next": {"value": 2, "next": null}}`,
		`{"value": 1, "next": {"value": 2, "next": {"value": 3, "next": null}}}`,
	}
	for _, d := range good {
		if !accepts(t, schema, d, Options{}) {
			t.Errorf("rejected: %s", d)
		}
	}
	if accepts(t, schema, `{"value": 1}`, Options{}) {
		t.Error("accepted incomplete recursion")
	}
}

func TestDefs(t *testing.T) {
	schema := `{
		"$defs": {"pt": {"type": "object", "properties": {"x": {"type": "integer"}}, "required": ["x"]}},
		"type": "array",
		"items": {"$ref": "#/$defs/pt"}
	}`
	if !accepts(t, schema, `[{"x": 1}, {"x": 2}]`, Options{}) {
		t.Error("rejected $defs doc")
	}
}

func TestNestedObjects(t *testing.T) {
	schema := `{
		"type": "object",
		"properties": {
			"user": {
				"type": "object",
				"properties": {
					"email": {"type": "string"},
					"tags": {"type": "array", "items": {"type": "string"}}
				},
				"required": ["email"]
			},
			"active": {"type": "boolean"}
		},
		"required": ["user", "active"]
	}`
	good := `{"user": {"email": "a@b.c", "tags": ["x", "y"]}, "active": true}`
	if !accepts(t, schema, good, Options{}) {
		t.Errorf("rejected: %s", good)
	}
	bad := `{"user": {"tags": []}, "active": true}`
	if accepts(t, schema, bad, Options{}) {
		t.Errorf("accepted: %s", bad)
	}
}

func TestUnsupportedKeywords(t *testing.T) {
	for _, s := range []string{
		`{"allOf": [{"type": "string"}]}`,
		`{"not": {"type": "string"}}`,
		`{"type": "string", "pattern": "(unbalanced"}`,
	} {
		if _, err := Compile([]byte(s), Options{}); err == nil {
			t.Errorf("no error for %s", s)
		}
	}
}

func TestSchemaTrueFalse(t *testing.T) {
	if !accepts(t, `true`, `{"any": [1, "x"]}`, Options{}) {
		t.Error("schema true rejected a JSON value")
	}
	if _, err := Compile([]byte(`false`), Options{}); err == nil {
		t.Error("schema false compiled")
	}
}

func TestBadSchemaJSON(t *testing.T) {
	if _, err := Compile([]byte(`{"type":`), Options{}); err == nil {
		t.Error("truncated schema compiled")
	}
	if _, err := Compile([]byte(`{} {}`), Options{}); err == nil {
		t.Error("trailing data accepted")
	}
}

func TestOrderedParsePreservesKeyOrder(t *testing.T) {
	v, err := ParseOrdered([]byte(`{"z": 1, "a": 2, "m": 3}`))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(v.Keys, ",") != "z,a,m" {
		t.Fatalf("keys = %v", v.Keys)
	}
}

func TestMarshalCanonicalRoundTrip(t *testing.T) {
	in := `{"b": [1, 2.5, "x"], "a": {"c": null}}`
	v, err := ParseOrdered([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := v.MarshalCanonical(); got != in {
		t.Fatalf("canonical = %s, want %s", got, in)
	}
}

func TestPatternStrings(t *testing.T) {
	schema := `{"type": "string", "pattern": "^[a-z]+-[0-9]{2}$"}`
	good := []string{`"abc-12"`, `"x-00"`}
	bad := []string{`"abc-1"`, `"ABC-12"`, `"abc-123"`, `""`, `"abc_12"`}
	for _, d := range good {
		if !accepts(t, schema, d, Options{}) {
			t.Errorf("rejected: %s", d)
		}
	}
	for _, d := range bad {
		if accepts(t, schema, d, Options{}) {
			t.Errorf("accepted: %s", d)
		}
	}
}

func TestPatternUnanchoredSearchSemantics(t *testing.T) {
	schema := `{"type": "string", "pattern": "ab+c"}`
	if !accepts(t, schema, `"xx abbbc yy"`, Options{}) {
		t.Error("unanchored pattern rejected a containing string")
	}
	if accepts(t, schema, `"no match here"`, Options{}) {
		t.Error("unanchored pattern accepted a non-containing string")
	}
}

func TestPatternRestrictsJSONUnsafe(t *testing.T) {
	// '.' may not generate a raw quote inside the JSON string.
	schema := `{"type": "string", "pattern": "^.$"}`
	if accepts(t, schema, `"""`, Options{}) {
		t.Error("pattern dot emitted a raw quote")
	}
	if !accepts(t, schema, `"a"`, Options{}) {
		t.Error("pattern dot rejected a normal character")
	}
	// Patterns that can only match unsafe characters fail at compile time.
	if _, err := Compile([]byte(`{"type": "string", "pattern": "^\"$"}`), Options{}); err == nil {
		t.Error("quote-literal pattern compiled")
	}
}

func TestPatternInObject(t *testing.T) {
	schema := `{
		"type": "object",
		"properties": {"sku": {"type": "string", "pattern": "^[A-Z]{3}-\\d{4}$"}},
		"required": ["sku"]
	}`
	if !accepts(t, schema, `{"sku": "ABC-1234"}`, Options{}) {
		t.Error("valid sku rejected")
	}
	if accepts(t, schema, `{"sku": "AB-1234"}`, Options{}) {
		t.Error("invalid sku accepted")
	}
}

// TestPatternWithLengthBounds covers the composable branch: edge-anchored
// patterns whose length bounds intersect with minLength/maxLength.
func TestPatternWithLengthBounds(t *testing.T) {
	cases := []struct {
		name   string
		schema string
		good   []string
		bad    []string
	}{
		{
			name:   "unbounded repeat capped by maxLength",
			schema: `{"type": "string", "pattern": "^[a-z]+$", "minLength": 2, "maxLength": 4}`,
			good:   []string{`"ab"`, `"abcd"`},
			bad:    []string{`"a"`, `"abcde"`, `"AB"`, `""`},
		},
		{
			name:   "bounded repeat narrowed from both sides",
			schema: `{"type": "string", "pattern": "^[0-9]{2,6}$", "minLength": 3, "maxLength": 5}`,
			good:   []string{`"123"`, `"12345"`},
			bad:    []string{`"12"`, `"123456"`},
		},
		{
			name:   "minLength only on a star",
			schema: `{"type": "string", "pattern": "^[ab]*$", "minLength": 2}`,
			good:   []string{`"ab"`, `"aabb"`},
			bad:    []string{`""`, `"a"`, `"abc"`},
		},
		{
			name:   "redundant window over a fixed-length pattern",
			schema: `{"type": "string", "pattern": "^a(b|c)d$", "minLength": 1, "maxLength": 5}`,
			good:   []string{`"abd"`, `"acd"`},
			bad:    []string{`"ad"`, `"abcd"`},
		},
		{
			name:   "redundant window with multi-rune atoms",
			schema: `{"type": "string", "pattern": "^(foo|ba)[0-9]$", "maxLength": 8}`,
			good:   []string{`"foo1"`, `"ba9"`},
			bad:    []string{`"foo"`, `"quux1"`},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			for _, d := range c.good {
				if !accepts(t, c.schema, d, Options{}) {
					t.Errorf("valid doc rejected: %s", d)
				}
			}
			for _, d := range c.bad {
				if accepts(t, c.schema, d, Options{}) {
					t.Errorf("invalid doc accepted: %s", d)
				}
			}
		})
	}
}

// TestPatternWithLengthBoundsDiagnosticPath covers the failing branch: the
// combination must be rejected with an error naming the pointer path.
func TestPatternWithLengthBoundsDiagnosticPath(t *testing.T) {
	cases := []struct {
		name    string
		schema  string
		wantPtr string
	}{
		{
			name: "unanchored pattern",
			schema: `{"type": "object", "properties": {
				"sku": {"type": "string", "pattern": "[A-Z]+", "maxLength": 4}}, "required": ["sku"]}`,
			wantPtr: "/properties/sku",
		},
		{
			name: "multi-part body partially overlapping the window",
			schema: `{"type": "object", "properties": {
				"id": {"type": "string", "pattern": "^a+b$", "maxLength": 3}}, "required": ["id"]}`,
			wantPtr: "/properties/id",
		},
		{
			name: "disjoint lengths",
			schema: `{"type": "object", "properties": {
				"code": {"type": "string", "pattern": "^[a-z]{2}$", "minLength": 5}}, "required": ["code"]}`,
			wantPtr: "/properties/code",
		},
		{
			name:    "empty length window",
			schema:  `{"type": "string", "pattern": "^[a-z]+$", "minLength": 4, "maxLength": 2}`,
			wantPtr: "/",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Compile([]byte(c.schema), Options{})
			if err == nil {
				t.Fatal("expected a compile error")
			}
			if !strings.Contains(err.Error(), c.wantPtr) {
				t.Fatalf("error %q does not name pointer path %q", err, c.wantPtr)
			}
		})
	}
}

// TestSingleSidedIntegerBounds pins the sign enforcement of single-sided
// minimum/maximum, which used to be dropped silently.
func TestSingleSidedIntegerBounds(t *testing.T) {
	cases := []struct {
		name   string
		schema string
		good   []string
		bad    []string
	}{
		{
			name:   "minimum 0 forbids a leading minus",
			schema: `{"type": "integer", "minimum": 0}`,
			good:   []string{`0`, `7`, `12345`},
			bad:    []string{`-1`, `-0`, `-12345`},
		},
		{
			name:   "minimum 1 forbids zero and negatives",
			schema: `{"type": "integer", "minimum": 1}`,
			good:   []string{`1`, `42`},
			bad:    []string{`0`, `-1`},
		},
		{
			name:   "exclusiveMinimum -1 behaves like minimum 0",
			schema: `{"type": "integer", "exclusiveMinimum": -1}`,
			good:   []string{`0`, `3`},
			bad:    []string{`-1`, `-2`},
		},
		{
			name:   "maximum 0 forbids positives",
			schema: `{"type": "integer", "maximum": 0}`,
			good:   []string{`0`, `-1`, `-99`},
			bad:    []string{`1`, `42`},
		},
		{
			name:   "maximum -1 forbids zero and positives",
			schema: `{"type": "integer", "maximum": -1}`,
			good:   []string{`-1`, `-37`},
			bad:    []string{`0`, `1`},
		},
		{
			name:   "large minimum still enforces the sign",
			schema: `{"type": "integer", "minimum": 5}`,
			good:   []string{`5`, `6`, `100`},
			bad:    []string{`0`, `-5`},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			for _, d := range c.good {
				if !accepts(t, c.schema, d, Options{}) {
					t.Errorf("valid doc rejected: %s", d)
				}
			}
			for _, d := range c.bad {
				if accepts(t, c.schema, d, Options{}) {
					t.Errorf("invalid doc accepted: %s", d)
				}
			}
		})
	}
}

// TestCompileDiagnostics pins the compile-time diagnostics list: partially
// enforced constraints are surfaced with their pointer path, and exact
// compilations report nothing.
func TestCompileDiagnostics(t *testing.T) {
	schema := `{
		"type": "object",
		"properties": {
			"count": {"type": "integer", "minimum": 5},
			"delta": {"type": "integer", "maximum": -3},
			"ratio": {"type": "number", "minimum": 0},
			"exact": {"type": "integer", "minimum": 0},
			"ranged": {"type": "integer", "minimum": 1, "maximum": 9}
		},
		"required": ["count", "delta", "ratio", "exact", "ranged"]
	}`
	_, diags, err := CompileFull([]byte(schema), Options{})
	if err != nil {
		t.Fatal(err)
	}
	byPtr := map[string]string{}
	for _, d := range diags {
		byPtr[d.Pointer] = d.Message
	}
	for _, want := range []string{"/properties/count", "/properties/delta", "/properties/ratio"} {
		if _, ok := byPtr[want]; !ok {
			t.Errorf("missing diagnostic for %s (got %v)", want, diags)
		}
	}
	for _, exact := range []string{"/properties/exact", "/properties/ranged"} {
		if msg, ok := byPtr[exact]; ok {
			t.Errorf("unexpected diagnostic for exact constraint %s: %s", exact, msg)
		}
	}
	if _, diags, err := CompileFull([]byte(`{"type": "integer", "minimum": 0, "maximum": 10}`), Options{}); err != nil || len(diags) != 0 {
		t.Errorf("exact schema produced diags %v (err %v)", diags, err)
	}
}
