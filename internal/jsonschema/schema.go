package jsonschema

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"xgrammar/internal/ebnf"
	"xgrammar/internal/grammar"
	"xgrammar/internal/regexconv"
)

// Options configures schema compilation.
type Options struct {
	// AllowAdditionalProperties permits extra object members beyond the
	// declared properties (after them, in generation order). The default is
	// strict (false), the usual choice for structured outputs.
	AllowAdditionalProperties bool
}

// Compile converts a JSON Schema document into a grammar whose language is
// the canonical JSON serializations of instances of the schema.
//
// Unsupported keywords fail loudly: allOf, not, patternProperties.
// String "pattern" supports the regex subset of package regexconv; the
// pattern must not match characters that need JSON escaping. "pattern"
// combined with minLength/maxLength is honored when the pattern is
// edge-anchored and its length bounds compose (a single bounded repeat, or
// a pattern whose possible lengths already sit inside the window);
// otherwise compilation fails naming the offending pointer path.
// Constraints the grammar cannot express — single-sided integer bounds
// beyond their sign, number (float) bounds — are enforced as far as the
// grammar allows and surfaced as Diagnostics by CompileFull.
func Compile(schema []byte, opts Options) (*grammar.Grammar, error) {
	g, _, err := CompileFull(schema, opts)
	return g, err
}

// CompileFull is Compile returning, alongside the grammar, the list of
// schema constraints the grammar does not fully enforce (empty when the
// grammar is exact).
func CompileFull(schema []byte, opts Options) (*grammar.Grammar, []Diagnostic, error) {
	v, err := ParseOrdered(schema)
	if err != nil {
		return nil, nil, err
	}
	c := &compiler{opts: opts, root: v, refRules: map[string]string{}, need: map[string]bool{}}
	rootExpr := c.expr(v, "root", "")
	if c.err != nil {
		return nil, nil, c.err
	}
	var src strings.Builder
	fmt.Fprintf(&src, "root ::= %s\n", rootExpr)
	for _, l := range c.lines {
		src.WriteString(l)
		src.WriteByte('\n')
	}
	c.emitBasics(&src)
	g, err := ebnf.Parse(src.String())
	if err != nil {
		return nil, nil, fmt.Errorf("jsonschema: internal grammar error: %w\nsource:\n%s", err, src.String())
	}
	return g, c.diags, nil
}

// MustCompile is Compile but panics on error.
func MustCompile(schema []byte, opts Options) *grammar.Grammar {
	g, err := Compile(schema, opts)
	if err != nil {
		panic(err)
	}
	return g
}

type compiler struct {
	opts     Options
	root     *Value
	lines    []string
	counter  int
	refRules map[string]string
	need     map[string]bool
	diags    []Diagnostic
	err      error
}

func (c *compiler) fail(format string, args ...interface{}) string {
	if c.err == nil {
		c.err = fmt.Errorf("jsonschema: "+format, args...)
	}
	return `""`
}

// diag records a constraint the emitted grammar under-enforces at the given
// pointer path.
func (c *compiler) diag(ptr, format string, args ...interface{}) {
	c.diags = append(c.diags, Diagnostic{Pointer: ptr, Message: fmt.Sprintf(format, args...)})
}

func (c *compiler) fresh(prefix string) string {
	c.counter++
	return fmt.Sprintf("%s_%d", prefix, c.counter)
}

func (c *compiler) rule(prefix, body string) string {
	name := c.fresh(prefix)
	c.lines = append(c.lines, fmt.Sprintf("%s ::= %s", name, body))
	return name
}

// expr compiles a subschema into an EBNF expression string. hint names
// generated rules for readability; ptr is the subschema's JSON-Pointer
// path, used in errors and diagnostics.
func (c *compiler) expr(v *Value, hint, ptr string) string {
	if c.err != nil {
		return `""`
	}
	switch v.Kind {
	case KindBool:
		if v.Bool {
			c.need["jvalue"] = true
			return "jvalue"
		}
		return c.fail("schema 'false' matches nothing")
	case KindObject:
		// fallthrough below
	default:
		return c.fail("schema must be an object or boolean, got kind %d", v.Kind)
	}

	if ref := v.Get("$ref"); ref != nil {
		return c.refExpr(ref)
	}
	for _, bad := range []string{"allOf", "not", "patternProperties"} {
		if v.Get(bad) != nil {
			return c.fail("unsupported keyword %q", bad)
		}
	}
	if e := v.Get("enum"); e != nil {
		return c.literalChoice(e.Items)
	}
	if cv := v.Get("const"); cv != nil {
		return c.literalChoice([]*Value{cv})
	}
	if any := v.Get("anyOf"); any != nil {
		return c.choiceOf(any, hint, ptr+"/anyOf")
	}
	if one := v.Get("oneOf"); one != nil {
		return c.choiceOf(one, hint, ptr+"/oneOf")
	}

	t := v.Get("type")
	if t == nil {
		c.need["jvalue"] = true
		return "jvalue"
	}
	if t.Kind == KindArray {
		var alts []string
		for _, tv := range t.Items {
			alts = append(alts, c.typedExpr(v, tv.Str, hint, ptr))
		}
		return "( " + strings.Join(alts, " | ") + " )"
	}
	return c.typedExpr(v, t.Str, hint, ptr)
}

func (c *compiler) choiceOf(list *Value, hint, ptr string) string {
	if list.Kind != KindArray || len(list.Items) == 0 {
		return c.fail("anyOf/oneOf must be a non-empty array")
	}
	var alts []string
	for i, sub := range list.Items {
		alts = append(alts, c.expr(sub, fmt.Sprintf("%s_alt%d", hint, i), fmt.Sprintf("%s/%d", ptr, i)))
	}
	return "( " + strings.Join(alts, " | ") + " )"
}

func (c *compiler) refExpr(ref *Value) string {
	if ref.Kind != KindString {
		return c.fail("$ref must be a string")
	}
	path := ref.Str
	if name, ok := c.refRules[path]; ok {
		return name
	}
	target := c.resolveRef(path)
	if target == nil {
		return c.fail("cannot resolve $ref %q", path)
	}
	// Pre-register the rule name so recursive references terminate. The
	// referenced subschema's pointer path is the ref target itself.
	name := c.fresh("ref_" + sanitize(path))
	c.refRules[path] = name
	body := c.expr(target, name, strings.TrimPrefix(path, "#"))
	c.lines = append(c.lines, fmt.Sprintf("%s ::= %s", name, body))
	return name
}

func (c *compiler) resolveRef(path string) *Value {
	if path == "#" {
		return c.root
	}
	for _, prefix := range []string{"#/$defs/", "#/definitions/"} {
		if strings.HasPrefix(path, prefix) {
			name := strings.TrimPrefix(path, prefix)
			for _, container := range []string{"$defs", "definitions"} {
				if defs := c.root.Get(container); defs != nil {
					if d := defs.Get(name); d != nil {
						return d
					}
				}
			}
		}
	}
	return nil
}

func (c *compiler) literalChoice(vals []*Value) string {
	if len(vals) == 0 {
		return c.fail("empty enum")
	}
	var alts []string
	for _, v := range vals {
		alts = append(alts, ebnfString(v.MarshalCanonical()))
	}
	if len(alts) == 1 {
		return alts[0]
	}
	return "( " + strings.Join(alts, " | ") + " )"
}

func (c *compiler) typedExpr(v *Value, typ, hint, ptr string) string {
	switch typ {
	case "object":
		return c.objectExpr(v, hint, ptr)
	case "array":
		return c.arrayExpr(v, hint, ptr)
	case "string":
		return c.stringExpr(v, ptr)
	case "integer":
		return c.integerExpr(v, ptr)
	case "number":
		for _, k := range []string{"minimum", "maximum", "exclusiveMinimum", "exclusiveMaximum", "multipleOf"} {
			if v.Get(k) != nil {
				c.diag(ptr, "number keyword %q is not enforced by the grammar", k)
			}
		}
		c.need["jnumber"] = true
		return "jnumber"
	case "boolean":
		return `( "true" | "false" )`
	case "null":
		return `"null"`
	}
	return c.fail("unknown type %q", typ)
}

func (c *compiler) stringExpr(v *Value, ptr string) string {
	minL, hasMin := c.intField(v, "minLength")
	maxL, hasMax := c.intField(v, "maxLength")
	if pat := v.Get("pattern"); pat != nil {
		if pat.Kind != KindString {
			return c.fail("pattern must be a string")
		}
		parsed, err := regexconv.Parse(pat.Str)
		if err != nil {
			return c.fail("%s: pattern %q: %v", ptrOrRoot(ptr), pat.Str, err)
		}
		var e grammar.Expr
		if hasMin || hasMax {
			e, err = composePatternLength(parsed, minL, hasMin, maxL, hasMax)
			if err != nil {
				return c.fail("%s: pattern %q with minLength/maxLength: %v", ptrOrRoot(ptr), pat.Str, err)
			}
		} else {
			e = parsed.Search()
		}
		e, err = restrictToStringChars(e)
		if err != nil {
			return c.fail("%s: pattern %q: %v", ptrOrRoot(ptr), pat.Str, err)
		}
		name := c.rule("pat", exprToEBNF(e))
		return fmt.Sprintf(`"\"" %s "\""`, name)
	}
	c.need["jchar"] = true
	switch {
	case !hasMin && !hasMax:
		c.need["jstring"] = true
		return "jstring"
	case hasMin && hasMax:
		return fmt.Sprintf(`"\"" jchar{%d,%d} "\""`, minL, maxL)
	case hasMin:
		return fmt.Sprintf(`"\"" jchar{%d,} "\""`, minL)
	default:
		return fmt.Sprintf(`"\"" jchar{0,%d} "\""`, maxL)
	}
}

func (c *compiler) integerExpr(v *Value, ptr string) string {
	lo, hasLo := c.intField(v, "minimum")
	hi, hasHi := c.intField(v, "maximum")
	if xl, ok := c.intField(v, "exclusiveMinimum"); ok {
		lo, hasLo = xl+1, true
	}
	if xh, ok := c.intField(v, "exclusiveMaximum"); ok {
		hi, hasHi = xh-1, true
	}
	switch {
	case hasLo && hasHi:
		if lo > hi {
			return c.fail("integer range empty: [%d, %d]", lo, hi)
		}
		return decRangeExpr(lo, hi)
	case hasLo:
		// Single-sided lower bound: enforce at least the sign. minimum 0
		// (non-negative) and minimum 1 (positive) are exact; larger minima
		// keep the sign enforcement and surface the residue.
		switch {
		case lo == 0:
			c.need["jint"] = true
			return "jint"
		case lo > 0:
			if lo > 1 {
				c.diag(ptr, "minimum %d enforced only as >= 1 (sign); values in [1, %d] still pass the grammar", lo, lo-1)
			}
			c.need["jposint"] = true
			return "jposint"
		default: // lo < 0: every sign is legal, nothing to enforce
			c.diag(ptr, "minimum %d not enforced (single-sided negative bound)", lo)
			c.need["jinteger"] = true
			return "jinteger"
		}
	case hasHi:
		// Single-sided upper bound, mirrored: maximum 0 and -1 are exact.
		switch {
		case hi == 0:
			c.need["jposint"] = true
			return `( "0" | "-" jposint )`
		case hi < 0:
			if hi < -1 {
				c.diag(ptr, "maximum %d enforced only as <= -1 (sign); values in [%d, -1] still pass the grammar", hi, hi+1)
			}
			c.need["jposint"] = true
			return `"-" jposint`
		default: // hi > 0
			c.diag(ptr, "maximum %d not enforced (single-sided positive bound)", hi)
			c.need["jinteger"] = true
			return "jinteger"
		}
	}
	c.need["jinteger"] = true
	return "jinteger"
}

// ptrOrRoot renders a pointer path for error messages.
func ptrOrRoot(ptr string) string {
	if ptr == "" {
		return "/"
	}
	return ptr
}

func (c *compiler) intField(v *Value, key string) (int64, bool) {
	f := v.Get(key)
	if f == nil || f.Kind != KindNumber {
		return 0, false
	}
	n, err := strconv.ParseInt(f.Num.String(), 10, 64)
	if err != nil {
		c.fail("field %q: %v", key, err)
		return 0, false
	}
	return n, true
}

func (c *compiler) arrayExpr(v *Value, hint, ptr string) string {
	itemExpr := "jvalue"
	if items := v.Get("items"); items != nil {
		itemExpr = c.expr(items, hint+"_item", ptr+"/items")
	} else {
		c.need["jvalue"] = true
	}
	item := c.rule(hint+"_item", itemExpr)
	minI, hasMin := c.intField(v, "minItems")
	maxI, hasMax := c.intField(v, "maxItems")
	if !hasMin {
		minI = 0
	}
	if hasMax && maxI < minI {
		return c.fail("array bounds empty: [%d, %d]", minI, maxI)
	}
	rest := func(min, max int64, unbounded bool) string {
		switch {
		case unbounded:
			if min == 0 {
				return fmt.Sprintf(`( ", " %s )*`, item)
			}
			return fmt.Sprintf(`( ", " %s ){%d,}`, item, min)
		case max == 0:
			return `""`
		case min == max:
			return fmt.Sprintf(`( ", " %s ){%d}`, item, min)
		default:
			return fmt.Sprintf(`( ", " %s ){%d,%d}`, item, min, max)
		}
	}
	switch {
	case hasMax && maxI == 0:
		return `"[]"`
	case minI == 0:
		if hasMax {
			return fmt.Sprintf(`"[" ( %s %s )? "]"`, item, rest(0, maxI-1, false))
		}
		return fmt.Sprintf(`"[" ( %s %s )? "]"`, item, rest(0, 0, true))
	default:
		if hasMax {
			return fmt.Sprintf(`"[" %s %s "]"`, item, rest(minI-1, maxI-1, false))
		}
		return fmt.Sprintf(`"[" %s %s "]"`, item, rest(minI-1, 0, true))
	}
}

// objectExpr compiles an object schema. Properties are generated in schema
// order; optional properties may be skipped. Comma placement is handled with
// paired first/rest rules: the "first" variant emits no leading separator,
// the "rest" variant prefixes each member with ", ".
func (c *compiler) objectExpr(v *Value, hint, ptr string) string {
	props := v.Get("properties")
	required := map[string]bool{}
	if req := v.Get("required"); req != nil {
		for _, r := range req.Items {
			required[r.Str] = true
		}
	}
	allowExtra := c.opts.AllowAdditionalProperties
	if ap := v.Get("additionalProperties"); ap != nil {
		allowExtra = !(ap.Kind == KindBool && !ap.Bool)
	}

	type prop struct {
		memberExpr string
		required   bool
	}
	var plist []prop
	if props != nil {
		for i, key := range props.Keys {
			kb, _ := json.Marshal(key)
			valExpr := c.expr(props.Vals[i], hint+"_"+sanitize(key), ptr+"/properties/"+pointerEscape(key))
			member := fmt.Sprintf(`%s %s`, ebnfString(string(kb)+": "), valExpr)
			plist = append(plist, prop{memberExpr: member, required: required[key]})
		}
	}

	// Tail rules for additional properties.
	extraFirst, extraRest := `""`, `""`
	if allowExtra {
		c.need["jmember"] = true
		extraFirst = `( jmember ( ", " jmember )* )?`
		extraRest = `( ", " jmember )*`
	}

	// Build from the last property backwards: firstN/restN are the tails.
	first, restChain := extraFirst, extraRest
	for i := len(plist) - 1; i >= 0; i-- {
		p := plist[i]
		mem := c.rule(hint+"_m", p.memberExpr)
		restName := c.rule(hint+"_r", restBody(mem, restChain, p.required))
		firstBody := fmt.Sprintf(`%s %s`, mem, restChain)
		if !p.required {
			firstBody = fmt.Sprintf(`%s %s | %s`, mem, restChain, first)
		}
		firstName := c.rule(hint+"_f", firstBody)
		first, restChain = firstName, restName
	}
	return fmt.Sprintf(`"{" %s "}"`, first)
}

// restBody emits the continuation when at least one member was already
// generated: a leading ", " precedes this property if it appears.
func restBody(member, restChain string, required bool) string {
	body := fmt.Sprintf(`", " %s %s`, member, restChain)
	if !required {
		body = fmt.Sprintf(`%s | %s`, body, restChain)
	}
	return body
}

// emitBasics appends the generic JSON rules that were referenced.
func (c *compiler) emitBasics(src *strings.Builder) {
	if c.need["jvalue"] || c.need["jmember"] {
		c.need["jstring"] = true
		c.need["jnumber"] = true
		src.WriteString(`jvalue ::= jobject | jarray | jstring | jnumber | "true" | "false" | "null"
jobject ::= "{" ( jmember ( ", " jmember )* )? "}"
jmember ::= jstring ": " jvalue
jarray ::= "[" ( jvalue ( ", " jvalue )* )? "]"
`)
	}
	if c.need["jstring"] {
		c.need["jchar"] = true
		src.WriteString("jstring ::= \"\\\"\" jchar* \"\\\"\"\n")
	}
	if c.need["jchar"] {
		src.WriteString(`jchar ::= [^"\\\x00-\x1f] | "\\" jescape
jescape ::= ["\\/bfnrt] | "u" jhex jhex jhex jhex
jhex ::= [0-9a-fA-F]
`)
	}
	if c.need["jnumber"] {
		src.WriteString(`jnumber ::= "-"? jint jfrac? jexp?
jfrac ::= "." [0-9]+
jexp ::= [eE] [-+]? [0-9]+
`)
		c.need["jint"] = true
		c.need["jinteger"] = true
	}
	if c.need["jinteger"] {
		src.WriteString("jinteger ::= \"-\"? jint\n")
		c.need["jint"] = true
	}
	if c.need["jint"] {
		src.WriteString("jint ::= \"0\" | [1-9] [0-9]*\n")
	}
	if c.need["jposint"] {
		src.WriteString("jposint ::= [1-9] [0-9]*\n")
	}
}

// pointerEscape escapes a property name for a JSON-Pointer segment.
func pointerEscape(s string) string {
	s = strings.ReplaceAll(s, "~", "~0")
	return strings.ReplaceAll(s, "/", "~1")
}

// ebnfString renders s as an EBNF string literal.
func ebnfString(s string) string {
	var sb strings.Builder
	sb.WriteByte('"')
	for i := 0; i < len(s); i++ {
		b := s[i]
		switch b {
		case '"':
			sb.WriteString(`\"`)
		case '\\':
			sb.WriteString(`\\`)
		case '\n':
			sb.WriteString(`\n`)
		case '\r':
			sb.WriteString(`\r`)
		case '\t':
			sb.WriteString(`\t`)
		default:
			if b < 0x20 {
				fmt.Fprintf(&sb, `\x%02x`, b)
			} else {
				sb.WriteByte(b)
			}
		}
	}
	sb.WriteByte('"')
	return sb.String()
}

func sanitize(s string) string {
	var sb strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '_':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	out := sb.String()
	if len(out) > 24 {
		out = out[:24]
	}
	return out
}
