// Package backend defines the pluggable model-backend abstraction the
// decode stack is built on: prompt/context in, masked next-token out, plus a
// draft-proposal hook for speculative decoding. The grammar side of the
// system (internal/baselines.Backend, the mask compiler, the serving
// sessions) constrains WHAT may be emitted; a model backend decides WHICH of
// the allowed tokens is emitted — and, through its Timing profile, how long
// the accelerator side of a decode step is modelled to take.
//
// Two implementations ship with the repo: internal/backend/simllm adapts
// the teacher-forced simulated LLM (internal/llmsim) and the gateway's
// seeded sampler, and internal/backend/httpllm speaks an OpenAI-compatible /
// llama.cpp-style HTTP completions protocol with per-step token masking.
// The engine (internal/engine), the gateway batcher (internal/server), and
// the cmd-layer tools select backends through the registry in this package,
// so none of them name a concrete model implementation.
package backend

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Request is one generation a model backend serves: the prompt (as text
// and/or a modelled token count) and, for teacher-forced simulation
// backends, the clean target the model intends to produce. Real-model
// backends ignore Target.
type Request struct {
	// ID identifies the sequence within a run; deterministic simulation
	// backends fold it into their per-sequence randomness so runs are
	// reproducible request by request.
	ID int
	// PromptTokens is the modelled prompt length (prefill cost).
	PromptTokens int
	// Prompt is the prompt text, for backends that consume real prompts.
	Prompt string
	// Target is the clean output a teacher-forced simulation backend
	// reproduces; real backends ignore it.
	Target string
	// Seed makes sampling backends deterministic; 0 lets the backend choose.
	Seed int64
	// MaxTokens hints the output bound (backends may use it to size
	// server-side state; enforcement stays with the caller).
	MaxTokens int
}

// NewRequests builds requests from target strings with the paper's average
// prompt length (139 tokens, §4.2).
func NewRequests(targets []string, promptTokens int) []*Request {
	out := make([]*Request, len(targets))
	for i, tgt := range targets {
		out[i] = &Request{ID: i, PromptTokens: promptTokens, Target: tgt}
	}
	return out
}

// String implements fmt.Stringer.
func (r *Request) String() string {
	return fmt.Sprintf("req%d(prompt=%d, target=%dB)", r.ID, r.PromptTokens, len(r.Target))
}

// ErrNoToken reports that the backend cannot emit any token under the given
// mask (for sampling backends: the allowed set is empty and the stop token
// is not permitted). Callers treat it as a clean end-of-sequence condition,
// not a backend failure.
var ErrNoToken = errors.New("backend: no legal token under the mask")

// Proposer is a draft model's guess: called once per window position with
// the position index and the grammar's allowed-token mask there, it returns
// the draft token, or ok=false to stop drafting early. It mirrors
// spec.Proposer so a backend's draft hook plugs straight into spec.Step.
type Proposer func(pos int, mask []uint64) (id int32, ok bool)

// Sequence is one live generation against a backend. It is driven from a
// single goroutine by the decode loop that owns it.
type Sequence interface {
	// Next returns the model's next token given the grammar's allowed-token
	// mask (bit i set means token i is legal; nil means unconstrained). The
	// returned token is committed: the backend advances its state. Next
	// returns ErrNoToken when no legal token can be emitted, and any other
	// error when the backend failed (the sequence is then abandoned).
	Next(ctx context.Context, mask []uint64) (int32, error)
	// ObserveForced informs the backend that text was force-inserted into
	// the output without sampling (jump-forward decoding, trigger
	// injection). ok=false means the backend cannot absorb the insertion
	// (e.g. a teacher-forced model whose target diverges); the caller must
	// then not insert the text.
	ObserveForced(text string) bool
	// Close releases per-sequence backend state (server-side sessions,
	// buffers). The sequence must not be used afterwards.
	Close()
}

// Speculator is the optional draft-proposal hook of a Sequence: Draft is
// called before a speculative round and returns the draft proposer for a
// window of up to k tokens, or ok=false when the backend cannot draft this
// round (the round then decodes plainly). Proposing must not advance the
// sequence: only tokens later confirmed through Next are committed.
type Speculator interface {
	Draft(ctx context.Context, k int) (propose Proposer, ok bool)
}

// TriggerProposer is the optional tool-call hook of a Sequence: for
// structural-tag generations in free text, ProposeTrigger lets the model
// elect to open one of n tool-call segments (returning which). Simulation
// backends decide with their seeded RNG; real-model backends emit begin
// tags through ordinary sampling instead and do not implement this.
type TriggerProposer interface {
	ProposeTrigger(n int) (idx int, ok bool)
}

// Timing models the accelerator-side latency of a backend for simulated
// clocks (the engine's modelled wall time). llmsim.Profile satisfies it;
// real backends report zeros and are measured, not modelled.
type Timing interface {
	// Prefill is the modelled prompt-processing time.
	Prefill(promptTokens int) time.Duration
	// DecodeStep is the modelled forward-pass time at a batch size.
	DecodeStep(batch int) time.Duration
	// SpecStep is the modelled draft+verify time for one speculative round
	// at a batch size and draft-window length.
	SpecStep(batch, window int) time.Duration
	// SampleStep is the modelled per-step sampling cost after the sync point.
	SampleStep() time.Duration
}

// ZeroTiming is the Timing of real (measured) backends: every modelled
// charge is zero, so clocks advance only by actual elapsed work.
type ZeroTiming struct{}

// Prefill implements Timing.
func (ZeroTiming) Prefill(int) time.Duration { return 0 }

// DecodeStep implements Timing.
func (ZeroTiming) DecodeStep(int) time.Duration { return 0 }

// SpecStep implements Timing.
func (ZeroTiming) SpecStep(int, int) time.Duration { return 0 }

// SampleStep implements Timing.
func (ZeroTiming) SampleStep() time.Duration { return 0 }

// Backend is a model implementation: it opens one Sequence per generation
// and reports its latency model. Backends must be safe for concurrent Open
// calls; each returned Sequence is single-goroutine.
type Backend interface {
	// Name identifies the backend in metrics and logs.
	Name() string
	// Open starts a generation. The request is passed by value; the backend
	// keeps what it needs.
	Open(req Request) (Sequence, error)
	// Timing is the backend's latency model (ZeroTiming for real backends).
	Timing() Timing
	// Close releases backend-wide resources (connections, pools).
	Close() error
}
