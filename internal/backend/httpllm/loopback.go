package httpllm

import (
	"encoding/json"
	"errors"
	"net/http"
	"sync"
	"time"

	"xgrammar/internal/backend"
)

// LoopbackOptions configures a loopback handler.
type LoopbackOptions struct {
	// MaxSessions bounds concurrently open server-side sequences; beyond it
	// the least-recently-used session is evicted (default 256).
	MaxSessions int
	// IdleTTL evicts sessions idle longer than this on the next request
	// (default 2 minutes).
	IdleTTL time.Duration
}

// NewLoopbackHandler serves the httpllm wire protocol over any local model
// backend — the reference implementation of the protocol, and the loopback
// half of the in-proc-vs-HTTP identity tests: a gateway pointed at a
// loopback of the simulated sampler must produce byte-identical output to
// the in-process sampler, since the protocol adds transport but no
// semantics. Sessions open lazily on a session id's first sample step and
// are evicted LRU/idle; each session caches its last step's response so
// client retries replay instead of double-advancing.
func NewLoopbackHandler(bk backend.Backend, opts LoopbackOptions) http.Handler {
	if opts.MaxSessions <= 0 {
		opts.MaxSessions = 256
	}
	if opts.IdleTTL <= 0 {
		opts.IdleTTL = 2 * time.Minute
	}
	lb := &loopback{bk: bk, opts: opts, sessions: map[string]*loopSession{}}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/generate", lb.handle)
	return mux
}

type loopback struct {
	bk   backend.Backend
	opts LoopbackOptions

	mu       sync.Mutex
	sessions map[string]*loopSession
}

type loopSession struct {
	seq      backend.Sequence
	lastUsed time.Time
	// lastStep/lastResp replay the answer when a client retries a step the
	// session already served.
	lastStep int
	lastResp stepResponse
}

func (lb *loopback) handle(w http.ResponseWriter, r *http.Request) {
	var sr stepRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(&sr); err != nil {
		writeStep(w, http.StatusBadRequest, stepResponse{Error: "invalid JSON body: " + err.Error()})
		return
	}
	if sr.SessionID == "" {
		writeStep(w, http.StatusBadRequest, stepResponse{Error: "session_id is required"})
		return
	}

	if sr.Mode == "close" {
		lb.mu.Lock()
		ls, ok := lb.sessions[sr.SessionID]
		if ok {
			delete(lb.sessions, sr.SessionID)
		}
		lb.mu.Unlock()
		if ok {
			// Close outside the registry lock: a backend teardown must not
			// stall unrelated sessions' steps.
			ls.seq.Close()
		}
		writeStep(w, http.StatusOK, stepResponse{OK: true})
		return
	}

	// Sweep, lookup, and the lastUsed refresh share one critical section: a
	// session found here must never be judged idle (or LRU-oldest) by a
	// concurrent request's sweep on a stale timestamp while we step it.
	lb.mu.Lock()
	evicted := lb.sweepLocked()
	ls, ok := lb.sessions[sr.SessionID]
	if ok {
		ls.lastUsed = time.Now()
		if sr.Step == ls.lastStep {
			// Retry of an already-served step: replay, don't re-advance.
			resp := ls.lastResp
			lb.mu.Unlock()
			closeAll(evicted)
			writeStep(w, http.StatusOK, resp)
			return
		}
	}
	lb.mu.Unlock()
	closeAll(evicted)

	if !ok {
		// Open outside the registry lock — a slow backend Open must not
		// block every other session's step — then re-check under the lock:
		// protocol-wise a session has one client, but a racing duplicate
		// open must not leak its sequence.
		seq, err := lb.bk.Open(backend.Request{
			Prompt:    sr.Prompt,
			Seed:      sr.Seed,
			MaxTokens: sr.MaxTokens,
		})
		if err != nil {
			writeStep(w, http.StatusInternalServerError, stepResponse{Error: "open: " + err.Error()})
			return
		}
		lb.mu.Lock()
		if cur, raced := lb.sessions[sr.SessionID]; raced {
			cur.lastUsed = time.Now()
			if sr.Step == cur.lastStep {
				resp := cur.lastResp
				lb.mu.Unlock()
				seq.Close()
				writeStep(w, http.StatusOK, resp)
				return
			}
			lb.mu.Unlock()
			seq.Close()
			ls = cur
		} else {
			// Re-sweep before inserting: concurrent first-step opens each
			// swept before their Open, so without this the registry could
			// transiently exceed MaxSessions. The session is inserted with
			// lastUsed already stamped — it must never be visible to a sweep
			// with a zero timestamp, which would read as instantly idle.
			evicted := lb.sweepLocked()
			ls = &loopSession{seq: seq, lastStep: -1, lastUsed: time.Now()}
			lb.sessions[sr.SessionID] = ls
			lb.mu.Unlock()
			closeAll(evicted)
		}
	}

	// The sequence is single-client by protocol (one step counter), so it is
	// stepped outside the registry lock.
	var resp stepResponse
	switch sr.Mode {
	case "sample":
		mask, err := decodeMask(&sr)
		if err != nil {
			writeStep(w, http.StatusBadRequest, stepResponse{Error: err.Error()})
			return
		}
		id, err := ls.seq.Next(r.Context(), mask)
		switch {
		case errors.Is(err, backend.ErrNoToken):
			resp = stepResponse{NoToken: true}
		case err != nil:
			writeStep(w, http.StatusInternalServerError, stepResponse{Error: err.Error()})
			return
		default:
			resp = stepResponse{Token: id, OK: true}
		}
	case "forced":
		resp = stepResponse{OK: ls.seq.ObserveForced(sr.Forced)}
	default:
		writeStep(w, http.StatusBadRequest, stepResponse{Error: "unknown mode " + sr.Mode})
		return
	}

	lb.mu.Lock()
	ls.lastStep = sr.Step
	ls.lastResp = resp
	lb.mu.Unlock()
	writeStep(w, http.StatusOK, resp)
}

// sweepLocked evicts idle sessions, then the least-recently-used one while
// over capacity, returning the evicted sequences. Called with lb.mu held;
// the caller closes the returned sequences after unlocking, so a slow
// backend teardown never stalls the registry.
func (lb *loopback) sweepLocked() []backend.Sequence {
	var evicted []backend.Sequence
	now := time.Now()
	for id, ls := range lb.sessions {
		if now.Sub(ls.lastUsed) > lb.opts.IdleTTL {
			delete(lb.sessions, id)
			evicted = append(evicted, ls.seq)
		}
	}
	for len(lb.sessions) >= lb.opts.MaxSessions {
		oldest, oldestAt := "", time.Time{}
		for id, ls := range lb.sessions {
			if oldest == "" || ls.lastUsed.Before(oldestAt) {
				oldest, oldestAt = id, ls.lastUsed
			}
		}
		ls := lb.sessions[oldest]
		delete(lb.sessions, oldest)
		evicted = append(evicted, ls.seq)
	}
	return evicted
}

// closeAll closes evicted sequences outside the registry lock.
func closeAll(seqs []backend.Sequence) {
	for _, seq := range seqs {
		seq.Close()
	}
}

func writeStep(w http.ResponseWriter, code int, resp stepResponse) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(resp)
}
