// Package httpllm is the HTTP model-backend adapter: it drives a remote
// llama.cpp-style completion server through the backend.Backend interface,
// carrying the grammar's allowed-token mask on every decode step. Because
// each step's mask depends on the token the grammar just accepted, the
// completion is streamed one token per request: the adapter POSTs the mask,
// the server answers with the sampled token, and the gateway's own SSE
// stream relays it to the end client. Masks ride as an explicit
// allowed-token list while small (the logit-bias form, at most MaskListMax
// ids) and switch to a base64 bitmask beyond that, so wide free-text masks
// do not balloon request bodies.
//
// The wire protocol is POST {base}/v1/generate with a mode tag:
//
//	sample  next token under the mask (the first sample opens the
//	        server-side session: prompt, seed, max_tokens ride along)
//	forced  observe force-inserted text (jump-forward, trigger injection)
//	close   release the server-side session
//
// Requests carry a session id and a monotonically increasing step counter;
// the server replays the cached response when it sees a step it has already
// served, which makes the bounded retries safe: a retry after a lost
// response cannot double-advance the completion. Retries apply to network
// errors and 5xx answers only — 4xx means the request itself is wrong and
// fails the sequence immediately.
package httpllm

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"net/http"
	"sync/atomic"
	"time"

	"xgrammar/internal/backend"
)

func init() {
	backend.Register("http", func(cfg string) (backend.Backend, error) {
		if cfg == "" {
			return nil, fmt.Errorf("httpllm: backend spec needs a base URL (http:http://host:port)")
		}
		return New(Options{BaseURL: cfg}), nil
	})
}

// MaskListMax is the default widest allowed set sent as an explicit token
// list; wider masks switch to the base64 bitmask encoding.
const MaskListMax = 512

// Options configures the adapter.
type Options struct {
	// BaseURL is the completion server root (e.g. "http://127.0.0.1:8080").
	BaseURL string
	// Model is the model name forwarded on session open (optional).
	Model string
	// Client overrides the HTTP client (default: http.DefaultClient).
	Client *http.Client
	// Retries bounds re-sends after a network error or 5xx (default 2; the
	// step-replay protocol makes retries idempotent).
	Retries int
	// StepTimeout bounds each attempt (default 10s).
	StepTimeout time.Duration
	// MaskListMax overrides the list/bitmask encoding switchover.
	MaskListMax int
	// ObserveAttempt, when set, is called once per HTTP attempt with its
	// wall time and outcome — retried attempts included, so the gateway's
	// backend_attempt histogram sees wire-level tail latency the per-step
	// timing hides.
	ObserveAttempt func(d time.Duration, err error)
}

// Client is the HTTP model backend. Safe for concurrent Open.
type Client struct {
	opts    Options
	http    *http.Client
	nextSID atomic.Int64
	observe atomic.Pointer[func(time.Duration, error)]
}

// New returns an adapter for the server at opts.BaseURL.
func New(opts Options) *Client {
	if opts.Client == nil {
		opts.Client = http.DefaultClient
	}
	if opts.Retries <= 0 {
		opts.Retries = 2
	}
	if opts.StepTimeout <= 0 {
		opts.StepTimeout = 10 * time.Second
	}
	if opts.MaskListMax <= 0 {
		opts.MaskListMax = MaskListMax
	}
	c := &Client{opts: opts, http: opts.Client}
	if opts.ObserveAttempt != nil {
		c.SetAttemptObserver(opts.ObserveAttempt)
	}
	return c
}

// SetAttemptObserver installs (or replaces) the per-attempt timing hook at
// runtime — the gateway wires its tracer into backends it only knows behind
// the backend.Backend interface, via a type assertion on this method.
func (c *Client) SetAttemptObserver(fn func(d time.Duration, err error)) {
	if fn == nil {
		c.observe.Store(nil)
		return
	}
	c.observe.Store(&fn)
}

// Name implements backend.Backend.
func (c *Client) Name() string { return "http" }

// Timing implements backend.Backend: a real backend is measured, not
// modelled.
func (c *Client) Timing() backend.Timing { return backend.ZeroTiming{} }

// Close implements backend.Backend.
func (c *Client) Close() error {
	c.http.CloseIdleConnections()
	return nil
}

// Open implements backend.Backend. The server-side session opens lazily on
// the first sample step (so Open itself cannot fail over the network).
func (c *Client) Open(req backend.Request) (backend.Sequence, error) {
	return &httpSeq{
		c:   c,
		req: req,
		sid: fmt.Sprintf("%d-%d", req.Seed, c.nextSID.Add(1)),
	}, nil
}

// stepRequest is the wire form of one decode step.
type stepRequest struct {
	Mode      string `json:"mode"` // sample | forced | close
	SessionID string `json:"session_id"`
	// Step is the per-session step counter; the server replays the cached
	// response for a step it has already served (retry idempotence).
	Step int `json:"step"`

	// Session-open fields, sent on every request so a server that lost the
	// session (restart, eviction) can rebuild it.
	Model     string `json:"model,omitempty"`
	Prompt    string `json:"prompt,omitempty"`
	Seed      int64  `json:"seed,omitempty"`
	MaxTokens int    `json:"max_tokens,omitempty"`

	// The allowed-token mask, one encoding or the other. Absent both, the
	// step is unconstrained.
	AllowedTokens []int32 `json:"allowed_tokens,omitempty"`
	MaskB64       string  `json:"mask_b64,omitempty"`
	MaskBits      int     `json:"mask_bits,omitempty"`

	// Forced is the force-inserted text of a "forced" step.
	Forced string `json:"forced,omitempty"`
}

// stepResponse is the wire form of the server's answer.
type stepResponse struct {
	Token int32 `json:"token"`
	// NoToken reports a clean decline: no legal token under the mask.
	NoToken bool `json:"no_token,omitempty"`
	// OK is the verdict of a "forced" step.
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
}

// httpSeq is one remote completion.
type httpSeq struct {
	c      *Client
	req    backend.Request
	sid    string
	step   int
	closed bool
}

// Next implements backend.Sequence.
func (s *httpSeq) Next(ctx context.Context, mask []uint64) (int32, error) {
	s.step++
	sr := s.baseRequest("sample")
	encodeMask(&sr, mask, s.c.opts.MaskListMax)
	resp, err := s.c.roundTrip(ctx, sr)
	if err != nil {
		return 0, err
	}
	if resp.NoToken {
		return 0, backend.ErrNoToken
	}
	return resp.Token, nil
}

// ObserveForced implements backend.Sequence.
func (s *httpSeq) ObserveForced(text string) bool {
	s.step++
	sr := s.baseRequest("forced")
	sr.Forced = text
	ctx, cancel := context.WithTimeout(context.Background(), s.c.opts.StepTimeout)
	defer cancel()
	resp, err := s.c.roundTrip(ctx, sr)
	return err == nil && resp.OK
}

// Close implements backend.Sequence: best-effort server-side release.
func (s *httpSeq) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.step++
	sr := s.baseRequest("close")
	ctx, cancel := context.WithTimeout(context.Background(), s.c.opts.StepTimeout)
	defer cancel()
	s.c.roundTrip(ctx, sr) //nolint:errcheck // the session times out server-side anyway
}

func (s *httpSeq) baseRequest(mode string) stepRequest {
	return stepRequest{
		Mode:      mode,
		SessionID: s.sid,
		Step:      s.step,
		Model:     s.c.opts.Model,
		Prompt:    s.req.Prompt,
		Seed:      s.req.Seed,
		MaxTokens: s.req.MaxTokens,
	}
}

// encodeMask attaches the allowed-token mask in its compact form: an
// explicit id list while narrow, the base64 bitmask beyond listMax bits.
func encodeMask(sr *stepRequest, mask []uint64, listMax int) {
	if mask == nil {
		return
	}
	n := 0
	for _, w := range mask {
		n += bits.OnesCount64(w)
		if n > listMax {
			break
		}
	}
	if n <= listMax {
		ids := make([]int32, 0, n)
		for w, word := range mask {
			for ; word != 0; word &= word - 1 {
				ids = append(ids, int32(w<<6)+int32(bits.TrailingZeros64(word)))
			}
		}
		if ids == nil {
			ids = []int32{} // an empty mask is still a constraint
		}
		sr.AllowedTokens = ids
		return
	}
	buf := make([]byte, 8*len(mask))
	for i, w := range mask {
		binary.LittleEndian.PutUint64(buf[8*i:], w)
	}
	sr.MaskB64 = base64.StdEncoding.EncodeToString(buf)
	sr.MaskBits = 64 * len(mask)
}

// decodeMask rebuilds the bitmask a stepRequest carries; nil means the step
// is unconstrained.
func decodeMask(sr *stepRequest) ([]uint64, error) {
	switch {
	case sr.MaskB64 != "":
		buf, err := base64.StdEncoding.DecodeString(sr.MaskB64)
		if err != nil {
			return nil, fmt.Errorf("httpllm: mask_b64: %w", err)
		}
		if len(buf)%8 != 0 {
			return nil, fmt.Errorf("httpllm: mask_b64 length %d is not word-aligned", len(buf))
		}
		mask := make([]uint64, len(buf)/8)
		for i := range mask {
			mask[i] = binary.LittleEndian.Uint64(buf[8*i:])
		}
		return mask, nil
	case sr.AllowedTokens != nil:
		max := int32(-1)
		for _, id := range sr.AllowedTokens {
			if id < 0 {
				return nil, fmt.Errorf("httpllm: negative token id %d", id)
			}
			if id > max {
				max = id
			}
		}
		mask := make([]uint64, int(max)/64+1)
		for _, id := range sr.AllowedTokens {
			mask[id>>6] |= 1 << uint(id&63)
		}
		return mask, nil
	default:
		return nil, nil
	}
}

// roundTrip POSTs one step with bounded retries. Network errors and 5xx
// answers are retried (the step counter makes replays idempotent); 4xx and
// protocol errors fail immediately.
func (c *Client) roundTrip(ctx context.Context, sr stepRequest) (*stepResponse, error) {
	body, err := json.Marshal(sr)
	if err != nil {
		return nil, err
	}
	var lastErr error
	for attempt := 0; attempt <= c.opts.Retries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(time.Duration(attempt) * 25 * time.Millisecond):
			}
		}
		resp, retriable, err := c.attempt(ctx, body)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if !retriable || ctx.Err() != nil {
			break
		}
	}
	return nil, lastErr
}

func (c *Client) attempt(ctx context.Context, body []byte) (out *stepResponse, retriable bool, err error) {
	if obs := c.observe.Load(); obs != nil {
		t0 := time.Now()
		defer func() { (*obs)(time.Since(t0), err) }()
	}
	actx, cancel := context.WithTimeout(ctx, c.opts.StepTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, c.opts.BaseURL+"/v1/generate", bytes.NewReader(body))
	if err != nil {
		return nil, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, true, err // network-level: retriable
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, true, err
	}
	if resp.StatusCode >= 500 {
		return nil, true, fmt.Errorf("httpllm: server error %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	if resp.StatusCode != http.StatusOK {
		return nil, false, fmt.Errorf("httpllm: status %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	var sr2 stepResponse
	if err := json.Unmarshal(data, &sr2); err != nil {
		return nil, false, fmt.Errorf("httpllm: bad response: %w", err)
	}
	if sr2.Error != "" {
		return nil, false, fmt.Errorf("httpllm: %s", sr2.Error)
	}
	return &sr2, false, nil
}
