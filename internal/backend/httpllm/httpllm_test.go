package httpllm

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xgrammar/internal/backend"
	"xgrammar/internal/backend/simllm"
)

const testEOS = int32(2)

// synthMask builds a mask with the given ids allowed over a 4096-token
// vocabulary (64 words, wide enough to exercise both encodings).
func synthMask(ids ...int32) []uint64 {
	mask := make([]uint64, 64)
	for _, id := range ids {
		mask[id>>6] |= 1 << uint(id&63)
	}
	return mask
}

// wideMask allows [0, n) plus eos — above MaskListMax this forces the
// base64 bitmask encoding.
func wideMask(n int32) []uint64 {
	mask := make([]uint64, 64)
	for id := int32(0); id < n; id++ {
		mask[id>>6] |= 1 << uint(id&63)
	}
	mask[testEOS>>6] |= 1 << uint(testEOS&63)
	return mask
}

func loopbackServer(t *testing.T, bk backend.Backend, opts LoopbackOptions) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(NewLoopbackHandler(bk, opts))
	t.Cleanup(ts.Close)
	return ts
}

// driveSteps walks a sequence through a fixed mask schedule.
func driveSteps(t *testing.T, seq backend.Sequence, masks [][]uint64) []int32 {
	t.Helper()
	var out []int32
	for i, m := range masks {
		id, err := seq.Next(context.Background(), m)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		out = append(out, id)
	}
	return out
}

// TestLoopbackIdentity pins the transport's no-semantics contract: the same
// seed driven through the HTTP loopback and through the in-process sampler
// must pick identical tokens at every step, across both mask encodings and
// a forced insertion.
func TestLoopbackIdentity(t *testing.T) {
	masks := [][]uint64{
		synthMask(5, 9, 700, testEOS), // narrow: allowed_tokens list
		wideMask(1200),                // wide: base64 bitmask
		synthMask(3, 4),
		wideMask(600),
	}
	for _, seed := range []int64{1, 7, 99} {
		ts := loopbackServer(t, simllm.NewSampler(testEOS), LoopbackOptions{})
		remote := New(Options{BaseURL: ts.URL, MaskListMax: 512})
		rseq, err := remote.Open(backend.Request{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		local, err := simllm.NewSampler(testEOS).Open(backend.Request{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}

		got := driveSteps(t, rseq, masks[:2])
		if !rseq.ObserveForced("forced text") {
			t.Fatal("loopback rejected a forced insertion the sampler absorbs")
		}
		got = append(got, driveSteps(t, rseq, masks[2:])...)

		want := driveSteps(t, local, masks[:2])
		local.ObserveForced("forced text")
		want = append(want, driveSteps(t, local, masks[2:])...)

		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d step %d: loopback picked %d, in-proc picked %d", seed, i, got[i], want[i])
			}
		}
		rseq.Close()
		local.Close()
	}
}

// flakyProxy fails the first attempt of every step with a 503, proving the
// step-replay protocol makes retries idempotent.
type flakyProxy struct {
	inner http.Handler
	seen  atomic.Int64
}

func (p *flakyProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if p.seen.Add(1)%2 == 1 {
		http.Error(w, "proxy hiccup", http.StatusServiceUnavailable)
		return
	}
	p.inner.ServeHTTP(w, r)
}

// TestRetryIdempotence drives a completion through a proxy that 503s every
// other request: with bounded retries the token stream must still match a
// clean run byte-for-byte (no double-advance).
func TestRetryIdempotence(t *testing.T) {
	masks := [][]uint64{synthMask(5, 9, 700, testEOS), wideMask(900), synthMask(3, 4, 11)}
	proxy := &flakyProxy{inner: NewLoopbackHandler(simllm.NewSampler(testEOS), LoopbackOptions{})}
	ts := httptest.NewServer(proxy)
	defer ts.Close()

	remote := New(Options{BaseURL: ts.URL, Retries: 3})
	rseq, err := remote.Open(backend.Request{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer rseq.Close()
	got := driveSteps(t, rseq, masks)

	local, _ := simllm.NewSampler(testEOS).Open(backend.Request{Seed: 7})
	want := driveSteps(t, local, masks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("step %d: flaky run picked %d, clean run picked %d", i, got[i], want[i])
		}
	}
}

// TestNoRetryOn4xx pins the retry policy: a 4xx answer fails the step
// immediately, without burning retries.
func TestNoRetryOn4xx(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "bad request", http.StatusBadRequest)
	}))
	defer ts.Close()
	remote := New(Options{BaseURL: ts.URL, Retries: 3})
	seq, _ := remote.Open(backend.Request{Seed: 1})
	if _, err := seq.Next(context.Background(), synthMask(1)); err == nil {
		t.Fatal("4xx must fail the step")
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("4xx was attempted %d times, want 1", got)
	}
}

// TestStepTimeout pins the per-attempt timeout: a hung server fails the
// step with a deadline error instead of blocking the decode loop.
func TestStepTimeout(t *testing.T) {
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer func() { close(release); ts.Close() }()
	remote := New(Options{BaseURL: ts.URL, Retries: 1, StepTimeout: 30 * time.Millisecond})
	seq, _ := remote.Open(backend.Request{Seed: 1})
	_, err := seq.Next(context.Background(), synthMask(1))
	if err == nil {
		t.Fatal("hung server must time the step out")
	}
	if !errors.Is(err, context.DeadlineExceeded) && !strings.Contains(err.Error(), "deadline") &&
		!strings.Contains(err.Error(), "context") && !strings.Contains(err.Error(), "Timeout") {
		t.Fatalf("err = %v, want a timeout", err)
	}
}

// closeCounter counts closed sequences for the eviction test.
type closeCounter struct {
	backend.Backend
	closed atomic.Int64
}

func (c *closeCounter) Open(req backend.Request) (backend.Sequence, error) {
	seq, err := c.Backend.Open(req)
	if err != nil {
		return nil, err
	}
	return &countedSeq{Sequence: seq, n: &c.closed}, nil
}

type countedSeq struct {
	backend.Sequence
	n *atomic.Int64
}

func (s *countedSeq) Close() { s.n.Add(1); s.Sequence.Close() }

// TestSessionEviction pins the loopback's session bound: beyond MaxSessions
// the least-recently-used sequence is closed and evicted.
func TestSessionEviction(t *testing.T) {
	cc := &closeCounter{Backend: simllm.NewSampler(testEOS)}
	ts := loopbackServer(t, cc, LoopbackOptions{MaxSessions: 4})
	remote := New(Options{BaseURL: ts.URL})
	for i := 0; i < 10; i++ {
		seq, err := remote.Open(backend.Request{Seed: int64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		driveSteps(t, seq, [][]uint64{synthMask(5, 9)})
		// No Close: the server must bound live sessions itself.
	}
	if cc.closed.Load() < 6 {
		t.Fatalf("evicted %d sessions, want >= 6 of 10 with MaxSessions=4", cc.closed.Load())
	}
}

// TestRegistrySpec opens the adapter through the backend registry with a
// URL-bearing spec (the "name:config" split must leave the URL intact).
func TestRegistrySpec(t *testing.T) {
	ts := loopbackServer(t, simllm.NewSampler(testEOS), LoopbackOptions{})
	bk, err := backend.Open("http:" + ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := bk.Open(backend.Request{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer seq.Close()
	driveSteps(t, seq, [][]uint64{synthMask(7, 8, testEOS)})
}

// guardBackend wraps sequences so a step after Close is counted instead of
// silently hitting a torn-down sequence.
type guardBackend struct {
	backend.Backend
	violations *atomic.Int64
}

func (b *guardBackend) Open(req backend.Request) (backend.Sequence, error) {
	seq, err := b.Backend.Open(req)
	if err != nil {
		return nil, err
	}
	return &guardSeq{Sequence: seq, violations: b.violations}, nil
}

type guardSeq struct {
	backend.Sequence
	closed     atomic.Bool
	violations *atomic.Int64
}

func (s *guardSeq) Next(ctx context.Context, mask []uint64) (int32, error) {
	if s.closed.Load() {
		s.violations.Add(1)
	}
	return s.Sequence.Next(ctx, mask)
}

func (s *guardSeq) Close() {
	s.closed.Store(true)
	s.Sequence.Close()
}

// TestConcurrentSessionsNoUseAfterClose pins the sweep/step atomicity
// contract under churn: with the registry nowhere near MaxSessions and a
// long IdleTTL, no sequence may ever be closed by a sweep while its handler
// steps it. A session inserted with a zero lastUsed, or refreshed outside
// the sweep's critical section, reads as instantly idle in the window
// between lookup and stamp and gets evicted mid-step — this test floods
// that window with concurrent first-step opens and follow-up steps.
func TestConcurrentSessionsNoUseAfterClose(t *testing.T) {
	var violations atomic.Int64
	bk := &guardBackend{Backend: simllm.NewSampler(testEOS), violations: &violations}
	ts := loopbackServer(t, bk, LoopbackOptions{MaxSessions: 1024, IdleTTL: time.Hour})

	const workers, sessionsPer, stepsPer = 16, 8, 4
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			remote := New(Options{BaseURL: ts.URL})
			for i := 0; i < sessionsPer; i++ {
				seq, err := remote.Open(backend.Request{Seed: int64(g*sessionsPer + i + 1)})
				if err != nil {
					t.Error(err)
					return
				}
				for s := 0; s < stepsPer; s++ {
					if _, err := seq.Next(context.Background(), synthMask(5, 9, 700)); err != nil {
						t.Errorf("worker %d session %d step %d: %v", g, i, s, err)
						break
					}
				}
				seq.Close()
			}
		}(g)
	}
	wg.Wait()
	if n := violations.Load(); n > 0 {
		t.Fatalf("%d steps reached a sequence the sweep had already closed", n)
	}
}

// gateBackend holds every Open inside the backend until released, so a test
// can park N first-step requests between their initial registry miss and
// their insert.
type gateBackend struct {
	backend.Backend
	entered chan struct{}
	release chan struct{}
}

func (b *gateBackend) Open(req backend.Request) (backend.Sequence, error) {
	b.entered <- struct{}{}
	<-b.release
	return b.Backend.Open(req)
}

// TestConcurrentOpensRespectMaxSessions pins the insert-side capacity bound:
// N concurrent first-step requests for distinct sessions each pass the sweep
// before their backend Open, so the insert after Open must re-sweep — the
// registry may never settle above MaxSessions.
func TestConcurrentOpensRespectMaxSessions(t *testing.T) {
	const opens, maxSessions = 4, 2
	cc := &closeCounter{Backend: simllm.NewSampler(testEOS)}
	gate := &gateBackend{Backend: cc, entered: make(chan struct{}), release: make(chan struct{})}
	lb := &loopback{
		bk:       gate,
		opts:     LoopbackOptions{MaxSessions: maxSessions, IdleTTL: time.Hour},
		sessions: map[string]*loopSession{},
	}

	var wg sync.WaitGroup
	for i := 0; i < opens; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"mode":"sample","session_id":"s%d","step":1,"seed":%d,"allowed_tokens":[5,9]}`, i, i+1)
			rec := httptest.NewRecorder()
			lb.handle(rec, httptest.NewRequest("POST", "/v1/generate", strings.NewReader(body)))
			if rec.Code != http.StatusOK {
				t.Errorf("open %d: status %d, body %s", i, rec.Code, rec.Body)
			}
		}(i)
	}
	for i := 0; i < opens; i++ {
		<-gate.entered // every request is now past its pre-Open sweep
	}
	close(gate.release)
	wg.Wait()

	lb.mu.Lock()
	live := len(lb.sessions)
	lb.mu.Unlock()
	if live > maxSessions {
		t.Fatalf("registry settled at %d sessions, want <= %d", live, maxSessions)
	}
	if closed := cc.closed.Load(); closed != opens-maxSessions {
		t.Fatalf("evicted %d sequences, want %d", closed, opens-maxSessions)
	}
}

// attemptRec is one observed HTTP attempt for TestAttemptObserver.
type attemptRec struct {
	d   time.Duration
	err error
}

// TestAttemptObserver pins the per-attempt timing hook: behind a proxy that
// 503s every other request, the observer must see every wire attempt —
// failed and retried alike — while Next reports only per-step success.
func TestAttemptObserver(t *testing.T) {
	masks := [][]uint64{synthMask(5, 9, 700, testEOS), wideMask(900), synthMask(3, 4, 11)}
	proxy := &flakyProxy{inner: NewLoopbackHandler(simllm.NewSampler(testEOS), LoopbackOptions{})}
	ts := httptest.NewServer(proxy)
	defer ts.Close()

	var mu sync.Mutex
	var attempts []attemptRec
	remote := New(Options{BaseURL: ts.URL, Retries: 3, ObserveAttempt: func(d time.Duration, err error) {
		mu.Lock()
		attempts = append(attempts, attemptRec{d, err})
		mu.Unlock()
	}})
	seq, err := remote.Open(backend.Request{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer seq.Close()
	driveSteps(t, seq, masks)

	mu.Lock()
	defer mu.Unlock()
	// Every other request 503s, so each of the 3 steps takes exactly 2
	// attempts: one failed, one successful.
	if len(attempts) != 2*len(masks) {
		t.Fatalf("observed %d attempts, want %d", len(attempts), 2*len(masks))
	}
	var failed, succeeded int
	for i, a := range attempts {
		if a.d <= 0 {
			t.Fatalf("attempt %d has non-positive duration %v", i, a.d)
		}
		if a.err != nil {
			failed++
		} else {
			succeeded++
		}
	}
	if failed != len(masks) || succeeded != len(masks) {
		t.Fatalf("failed/succeeded = %d/%d, want %d/%d", failed, succeeded, len(masks), len(masks))
	}

	// SetAttemptObserver(nil) detaches the hook.
	remote.SetAttemptObserver(nil)
	before := len(attempts)
	mu.Unlock()
	driveSteps(t, seq, [][]uint64{synthMask(5, 9)})
	mu.Lock()
	if len(attempts) != before {
		t.Fatalf("detached observer still saw %d new attempts", len(attempts)-before)
	}
}
