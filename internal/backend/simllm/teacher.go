// Package simllm adapts the simulated LLM (internal/llmsim) to the model
// backend interface: a teacher-forced Teacher backend for the engine's
// reproducible experiments, and a seeded-sampler Sampler backend for the
// gateway's grammar-uniform generation. Both are deterministic per
// (request, seed), which is what makes plain, speculative, and
// structural-tag decodes byte-identical across scheduling modes.
package simllm

import (
	"context"
	"fmt"

	"xgrammar/internal/backend"
	"xgrammar/internal/llmsim"
	"xgrammar/internal/tokenizer"
)

// TeacherOptions parameterizes the simulated draft model riding on a
// Teacher backend (the speculative path's proposer).
type TeacherOptions struct {
	// DraftAccuracy is the per-position probability that the simulated
	// draft model proposes the token the target model samples (default
	// 0.8). Lower accuracy lowers the acceptance rate, not correctness.
	DraftAccuracy float64
	// DraftSeed varies the deterministic draft-error pattern.
	DraftSeed int64
}

func (o TeacherOptions) accuracy() float64 {
	switch {
	case o.DraftAccuracy <= 0:
		return 0.8
	case o.DraftAccuracy > 1:
		return 1
	default:
		return o.DraftAccuracy
	}
}

// Teacher is the teacher-forced simulated model behind the engine's
// experiments: each sequence reproduces its request's Target token by
// token (EOS at the end), with a latency profile modelling the
// accelerator. Timing is the wrapped llmsim.Profile.
type Teacher struct {
	tok     *tokenizer.Tokenizer
	profile llmsim.Profile
	opts    TeacherOptions
}

// NewTeacher returns a teacher-forced backend over the tokenizer with the
// given latency profile.
func NewTeacher(tok *tokenizer.Tokenizer, profile llmsim.Profile, opts TeacherOptions) *Teacher {
	return &Teacher{tok: tok, profile: profile, opts: opts}
}

// Name implements backend.Backend.
func (t *Teacher) Name() string { return "llmsim" }

// Timing implements backend.Backend (the llmsim latency profile).
func (t *Teacher) Timing() backend.Timing { return t.profile }

// Close implements backend.Backend.
func (t *Teacher) Close() error { return nil }

// Open implements backend.Backend.
func (t *Teacher) Open(req backend.Request) (backend.Sequence, error) {
	return &teacherSeq{t: t, req: req}, nil
}

// teacherSeq is one teacher-forced generation: emitted tracks how many
// target bytes have been committed, outTokens how many tokens — the
// absolute position the deterministic draft-error hash keys on.
type teacherSeq struct {
	t         *Teacher
	req       backend.Request
	emitted   int
	outTokens int
	draft     []int32
	propose   backend.Proposer
	// Verdict cache: Draft's single walk of the remaining target also
	// pre-tokenizes the verdict stream (token id per byte offset), so the
	// verify pass's Next calls serve from it instead of re-encoding inside
	// the measured grammar window — tokenization is the simulated LLM's
	// work, not grammar time.
	vAt   []int
	vID   []int32
	vNext int
}

// peek returns the token the teacher-forced model proposes next: the first
// token of the remaining target, or EOS at the end.
func (s *teacherSeq) peek() int32 {
	for s.vNext < len(s.vAt) && s.vAt[s.vNext] < s.emitted {
		s.vNext++
	}
	if s.vNext < len(s.vAt) && s.vAt[s.vNext] == s.emitted {
		id := s.vID[s.vNext]
		s.vNext++
		return id
	}
	if s.emitted >= len(s.req.Target) {
		return tokenizer.EosID
	}
	return s.t.tok.Encode(s.req.Target[s.emitted:])[0]
}

// Next implements backend.Sequence. When the target's next token is masked
// out it re-splits at the boundary — the longest target prefix whose first
// token the mask allows — exactly as a real constrained sampler would pick
// a shorter token there (structural-tag segment exits, Appendix B).
func (s *teacherSeq) Next(_ context.Context, mask []uint64) (int32, error) {
	id := s.peek()
	if mask != nil && !maskHas(mask, id) {
		alt, ok := s.prefixToken(mask)
		if !ok {
			return 0, fmt.Errorf("simllm: target token %d (%q) masked out (emitted %d/%d target bytes)",
				id, s.t.tok.TokenBytes(id), s.emitted, len(s.req.Target))
		}
		id = alt
	}
	s.commit(id)
	return id, nil
}

// commit advances the teacher state by an emitted token.
func (s *teacherSeq) commit(id int32) {
	if id == tokenizer.EosID {
		return
	}
	s.emitted += len(s.t.tok.TokenBytes(id))
	s.outTokens++
}

// prefixToken finds an alternative next token when the teacher-forced
// first token of the remaining target is masked out: the longest token that
// is both a byte-prefix of the remaining target and allowed by the mask.
func (s *teacherSeq) prefixToken(mask []uint64) (int32, bool) {
	rem := s.req.Target[s.emitted:]
	max := 32
	if len(rem) < max {
		max = len(rem)
	}
	for plen := max; plen >= 1; plen-- {
		id := s.t.tok.Encode(rem[:plen])[0]
		if maskHas(mask, id) {
			return id, true
		}
	}
	return 0, false
}

// ObserveForced implements backend.Sequence: a forced insertion is
// absorbed only when it matches the remaining target (the teacher checks
// the jump-forward continuation against what it was going to produce).
func (s *teacherSeq) ObserveForced(text string) bool {
	if s.emitted+len(text) > len(s.req.Target) ||
		s.req.Target[s.emitted:s.emitted+len(text)] != text {
		return false
	}
	s.emitted += len(text)
	s.outTokens += len(s.t.tok.Encode(text))
	return true
}

// Close implements backend.Sequence.
func (s *teacherSeq) Close() {}

// Draft implements backend.Speculator: one walk of the remaining target
// yields up to k draft tokens with deterministic per-position errors at
// rate 1-DraftAccuracy (a hash of seed, sequence, and absolute position,
// so runs are reproducible); corrupted positions propose a different token
// and the verify pass rejects them, which is what produces acceptance
// rates below one. Drafting does not advance the sequence — only verdicts
// delivered through Next commit.
func (s *teacherSeq) Draft(_ context.Context, k int) (backend.Proposer, bool) {
	tok := s.t.tok
	target := s.req.Target
	pos := s.emitted
	draft := s.draft[:0]
	s.vAt, s.vID, s.vNext = s.vAt[:0], s.vID[:0], 0
	for i := 0; i <= k; i++ {
		if pos >= len(target) {
			s.vAt = append(s.vAt, pos)
			s.vID = append(s.vID, tokenizer.EosID)
			continue
		}
		id := tok.Encode(target[pos:])[0]
		s.vAt = append(s.vAt, pos)
		s.vID = append(s.vID, id)
		pos += len(tok.TokenBytes(id))
		if i < k {
			d := id
			if !draftHit(s.t.opts.DraftSeed, s.req.ID, s.outTokens+i, s.t.opts.accuracy()) {
				d = corruptToken(id, tok.VocabSize())
			}
			draft = append(draft, d)
		}
	}
	s.draft = draft
	if s.propose == nil {
		s.propose = func(p int, _ []uint64) (int32, bool) {
			if p >= len(s.draft) {
				return 0, false
			}
			return s.draft[p], true
		}
	}
	return s.propose, true
}

// draftHit deterministically decides whether the simulated draft model gets
// a position right (SplitMix64-style hash of seed, sequence, position).
func draftHit(seed int64, seq, pos int, acc float64) bool {
	h := uint64(seed)*0x9E3779B97F4A7C15 ^ uint64(seq+1)*0xBF58476D1CE4E5B9 ^ uint64(pos+1)*0x94D049BB133111EB
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return float64(h>>11)/float64(1<<53) < acc
}

// corruptToken returns a regular token different from id — the draft
// model's wrong guess.
func corruptToken(id int32, vocab int) int32 {
	c := id + 1
	if int(c) >= vocab {
		c = tokenizer.NumSpecial
	}
	if c == id { // single-regular-token vocabulary; nothing else to propose
		return id
	}
	return c
}

// maskHas reports whether token id is set in mask.
func maskHas(mask []uint64, id int32) bool {
	w := int(id >> 6)
	return id >= 0 && w < len(mask) && mask[w]&(1<<uint(id&63)) != 0
}
