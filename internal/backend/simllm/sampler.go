package simllm

import (
	"context"
	"errors"
	"math/bits"
	"math/rand"

	"xgrammar/internal/backend"
	"xgrammar/internal/tokenizer"
)

func init() {
	backend.Register("sim", func(string) (backend.Backend, error) {
		return NewSampler(tokenizer.EosID), nil
	})
}

// Sampler is the gateway's simulated LLM: per sequence, a seeded RNG draws
// uniformly over the grammar's allowed set with a mild bias toward the stop
// token once stopping is legal, so outputs stay bounded and a given seed is
// exactly reproducible. It drafts greedily (smallest allowed token) and
// elects to open tool-call segments with probability 1/6 per free-text
// round — the simulated counterpart of an instruction-tuned model deciding
// to call a tool.
type Sampler struct {
	eos int32
}

// NewSampler returns a seeded-sampling backend with the given stop token.
func NewSampler(eos int32) *Sampler { return &Sampler{eos: eos} }

// Name implements backend.Backend.
func (b *Sampler) Name() string { return "sim" }

// Timing implements backend.Backend: the gateway paces rounds with a real
// timer, so nothing is modelled here.
func (b *Sampler) Timing() backend.Timing { return backend.ZeroTiming{} }

// Close implements backend.Backend.
func (b *Sampler) Close() error { return nil }

// Open implements backend.Backend.
func (b *Sampler) Open(req backend.Request) (backend.Sequence, error) {
	return &samplerSeq{rng: rand.New(rand.NewSource(req.Seed)), eos: b.eos}, nil
}

// samplerSeq is one seeded generation.
type samplerSeq struct {
	rng     *rand.Rand
	eos     int32
	allowed []int32 // sampling scratch
	greedy  backend.Proposer
}

// Next implements backend.Sequence: uniform over the allowed set, with a
// bias toward the stop token once stopping is legal. ErrNoToken reports a
// mask with no legal continuation (a stuck mask, which a sound grammar
// never produces). The RNG consumption per call is fixed — one or two
// draws — so plain and speculative decodes of the same token stream
// consume the seed identically.
func (s *samplerSeq) Next(_ context.Context, mask []uint64) (int32, error) {
	if mask == nil {
		return 0, errors.New("simllm: sampler requires an allowed-token mask")
	}
	s.allowed = s.allowed[:0]
	eosAllowed := false
	for w, word := range mask {
		for ; word != 0; word &= word - 1 {
			id := int32(w<<6) + int32(bits.TrailingZeros64(word))
			if id == s.eos {
				eosAllowed = true
				continue
			}
			s.allowed = append(s.allowed, id)
		}
	}
	if len(s.allowed) == 0 {
		if eosAllowed {
			return s.eos, nil
		}
		return 0, backend.ErrNoToken
	}
	// Termination bias: once the grammar can complete, stop with probability
	// 1/4 — the simulated LLM's mild preference for finishing its answer.
	if eosAllowed && s.rng.Intn(4) == 0 {
		return s.eos, nil
	}
	return s.allowed[s.rng.Intn(len(s.allowed))], nil
}

// ObserveForced implements backend.Sequence: forced insertions (jump
// forward, trigger injection) cost the sampler nothing and draw no RNG.
func (s *samplerSeq) ObserveForced(string) bool { return true }

// Close implements backend.Sequence.
func (s *samplerSeq) Close() {}

// Draft implements backend.Speculator: the stand-in draft model proposes
// the smallest allowed token at each window position. On grammar-constrained
// output it is right exactly where the structure leaves little choice — the
// positions speculation gets for free. Drafting draws no RNG.
func (s *samplerSeq) Draft(_ context.Context, _ int) (backend.Proposer, bool) {
	if s.greedy == nil {
		s.greedy = GreedyProposer(s.eos)
	}
	return s.greedy, true
}

// ProposeTrigger implements backend.TriggerProposer: with probability 1/6
// the model elects to open a tool call, choosing uniformly among the n
// begin tags. The draw order (one Intn(6), then Intn(n) only when n > 1)
// is part of the byte-identity contract with earlier seeds.
func (s *samplerSeq) ProposeTrigger(n int) (int, bool) {
	if s.rng.Intn(6) != 0 {
		return 0, false
	}
	idx := 0
	if n > 1 {
		idx = s.rng.Intn(n)
	}
	return idx, true
}

// GreedyProposer proposes the smallest allowed non-stop token at every
// position — the shared grammar-greedy draft model.
func GreedyProposer(eos int32) backend.Proposer {
	return func(_ int, mask []uint64) (int32, bool) {
		for w, word := range mask {
			for ; word != 0; word &= word - 1 {
				id := int32(w<<6) + int32(bits.TrailingZeros64(word))
				if id == eos {
					continue
				}
				return id, true
			}
		}
		return 0, false
	}
}
