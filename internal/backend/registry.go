package backend

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Factory builds a backend from the configuration part of a backend spec
// (everything after the first ':'; empty for a bare name).
type Factory func(cfg string) (Backend, error)

var (
	regMu     sync.RWMutex
	factories = map[string]Factory{}
)

// Register installs a backend factory under a name ("sim", "http", ...).
// Registering a taken name panics: factories are wired at init time and a
// collision is a programming error.
func Register(name string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := factories[name]; dup {
		panic(fmt.Sprintf("backend: factory %q registered twice", name))
	}
	factories[name] = f
}

// Open builds a backend from a spec of the form "name" or "name:config" —
// e.g. "sim" or "http:http://127.0.0.1:8080". The config part is passed to
// the factory verbatim (it may itself contain ':', as URLs do).
func Open(spec string) (Backend, error) {
	name, cfg := spec, ""
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		name, cfg = spec[:i], spec[i+1:]
	}
	regMu.RLock()
	f, ok := factories[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("backend: unknown backend %q (registered: %s)", name, strings.Join(Names(), ", "))
	}
	return f(cfg)
}

// Names lists the registered backend names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(factories))
	for n := range factories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
