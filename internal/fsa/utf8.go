package fsa

import "unicode/utf8"

// ByteRange is an inclusive range of byte values.
type ByteRange struct{ Lo, Hi byte }

// ByteSeq is a sequence of byte ranges; a string matches the sequence when
// its i-th byte lies in the i-th range.
type ByteSeq []ByteRange

// maxRune is the highest valid Unicode code point.
const maxRune = 0x10FFFF

// RuneRangeToByteSeqs converts an inclusive rune range into a set of UTF-8
// byte-range sequences whose union matches exactly the encodings of the
// runes in [lo, hi]. Surrogate code points are skipped. This is the standard
// decomposition used by RE2-style byte-level regex engines.
func RuneRangeToByteSeqs(lo, hi rune) []ByteSeq {
	var out []ByteSeq
	var rec func(lo, hi rune)
	rec = func(lo, hi rune) {
		if lo > hi {
			return
		}
		if hi > maxRune {
			hi = maxRune
		}
		if lo < 0 {
			lo = 0
		}
		// Exclude the surrogate gap, which has no UTF-8 encoding.
		if lo <= 0xDFFF && hi >= 0xD800 {
			if lo < 0xD800 {
				rec(lo, 0xD7FF)
			}
			if hi > 0xDFFF {
				rec(0xE000, hi)
			}
			return
		}
		// Split on encoding-length boundaries.
		for _, b := range [...]rune{0x7F, 0x7FF, 0xFFFF} {
			if lo <= b && b < hi {
				rec(lo, b)
				rec(b+1, hi)
				return
			}
		}
		if hi <= 0x7F {
			out = append(out, ByteSeq{{byte(lo), byte(hi)}})
			return
		}
		var lb, hb [4]byte
		n := utf8.EncodeRune(lb[:], lo)
		utf8.EncodeRune(hb[:], hi)
		out = append(out, emitByteRanges(nil, lb[:n], hb[:n])...)
	}
	rec(lo, hi)
	return out
}

// emitByteRanges produces the byte sequences between two equal-length UTF-8
// encodings lob..hib, prefixed by prefix.
func emitByteRanges(prefix ByteSeq, lob, hib []byte) []ByteSeq {
	var out []ByteSeq
	var rec func(prefix ByteSeq, lob, hib []byte)
	rec = func(prefix ByteSeq, lob, hib []byte) {
		if len(lob) == 0 {
			seq := make(ByteSeq, len(prefix))
			copy(seq, prefix)
			out = append(out, seq)
			return
		}
		if lob[0] == hib[0] {
			rec(append(prefix, ByteRange{lob[0], lob[0]}), lob[1:], hib[1:])
			return
		}
		// lob[0] < hib[0]. Continuation bytes span [0x80, 0xBF].
		start, end := lob[0], hib[0]
		if !allEqual(lob[1:], 0x80) {
			rec(append(prefix, ByteRange{start, start}), lob[1:], maxCont(len(lob)-1))
			start++
		}
		highCarve := !allEqual(hib[1:], 0xBF)
		if highCarve {
			end--
		}
		if start <= end {
			rec(append(prefix, ByteRange{start, end}), minCont(len(lob)-1), maxCont(len(lob)-1))
		}
		if highCarve {
			rec(append(prefix, ByteRange{hib[0], hib[0]}), minCont(len(hib)-1), hib[1:])
		}
	}
	rec(prefix, lob, hib)
	return out
}

func allEqual(bs []byte, v byte) bool {
	for _, b := range bs {
		if b != v {
			return false
		}
	}
	return true
}

var contMin = []byte{0x80, 0x80, 0x80}
var contMax = []byte{0xBF, 0xBF, 0xBF}

func minCont(n int) []byte { return contMin[:n] }
func maxCont(n int) []byte { return contMax[:n] }

// ComplementRuneRanges returns the sorted rune ranges covering all valid
// Unicode code points (excluding surrogates) not covered by rs. rs must be
// sorted by Lo and non-overlapping.
func ComplementRuneRanges(rs [][2]rune) [][2]rune {
	var out [][2]rune
	next := rune(0)
	for _, r := range rs {
		if r[0] > next {
			out = append(out, [2]rune{next, r[0] - 1})
		}
		if r[1]+1 > next {
			next = r[1] + 1
		}
	}
	if next <= maxRune {
		out = append(out, [2]rune{next, maxRune})
	}
	return out
}
