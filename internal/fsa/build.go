package fsa

import (
	"fmt"

	"xgrammar/internal/grammar"
)

// maxUnroll bounds how many times a bounded repetition is unrolled into the
// automaton before compilation fails; it guards against pathological
// {1,100000} quantifiers exploding the node count.
const maxUnroll = 4096

// BuildRule compiles a single rule body into an FSA fragment. The result
// contains epsilon edges; callers run the optimization passes afterwards.
func BuildRule(body grammar.Expr) (*FSA, error) {
	f := New()
	end, err := build(f, body, f.Start)
	if err != nil {
		return nil, err
	}
	f.Nodes[end].Final = true
	return f, nil
}

// build compiles e starting at node from; it returns the node reached after
// matching e.
func build(f *FSA, e grammar.Expr, from int32) (int32, error) {
	switch v := e.(type) {
	case *grammar.Empty:
		return from, nil

	case *grammar.Literal:
		cur := from
		for _, b := range v.Bytes {
			next := f.AddNode()
			f.AddByteEdge(cur, b, b, next)
			cur = next
		}
		return cur, nil

	case *grammar.CharClass:
		return buildClass(f, v, from)

	case *grammar.RuleRef:
		to := f.AddNode()
		f.AddRuleEdge(from, int32(v.Index), to)
		return to, nil

	case *grammar.Seq:
		cur := from
		for _, it := range v.Items {
			next, err := build(f, it, cur)
			if err != nil {
				return 0, err
			}
			cur = next
		}
		return cur, nil

	case *grammar.Choice:
		end := f.AddNode()
		for _, a := range v.Alts {
			altStart := f.AddNode()
			f.AddEpsEdge(from, altStart)
			altEnd, err := build(f, a, altStart)
			if err != nil {
				return 0, err
			}
			f.AddEpsEdge(altEnd, end)
		}
		return end, nil

	case *grammar.Repeat:
		return buildRepeat(f, v, from)
	}
	return 0, fmt.Errorf("fsa: unknown expression %T", e)
}

func buildRepeat(f *FSA, v *grammar.Repeat, from int32) (int32, error) {
	if v.Max >= 0 && v.Max > maxUnroll || v.Min > maxUnroll {
		return 0, fmt.Errorf("fsa: repetition bound too large (max %d)", maxUnroll)
	}
	cur := from
	// Mandatory copies.
	for i := 0; i < v.Min; i++ {
		next, err := build(f, v.Sub, cur)
		if err != nil {
			return 0, err
		}
		cur = next
	}
	if v.Max < 0 {
		// Kleene closure: loop through a dedicated hub node so that a
		// nullable body cannot create an infinite epsilon cycle of fresh
		// nodes. hub --sub--> back to hub; exit via epsilon.
		hub := f.AddNode()
		f.AddEpsEdge(cur, hub)
		bodyEnd, err := build(f, v.Sub, hub)
		if err != nil {
			return 0, err
		}
		f.AddEpsEdge(bodyEnd, hub)
		return hub, nil
	}
	// Optional copies: each can be skipped.
	end := f.AddNode()
	f.AddEpsEdge(cur, end)
	for i := v.Min; i < v.Max; i++ {
		next, err := build(f, v.Sub, cur)
		if err != nil {
			return 0, err
		}
		f.AddEpsEdge(next, end)
		cur = next
	}
	return end, nil
}

// buildClass lowers a character class to byte-level edges.
func buildClass(f *FSA, cc *grammar.CharClass, from int32) (int32, error) {
	ranges := cc.Ranges
	if cc.Negated {
		rs := make([][2]rune, len(ranges))
		for i, r := range ranges {
			rs[i] = [2]rune{r.Lo, r.Hi}
		}
		comp := ComplementRuneRanges(rs)
		ranges = ranges[:0:0]
		for _, c := range comp {
			ranges = append(ranges, grammar.RuneRange{Lo: c[0], Hi: c[1]})
		}
		if len(ranges) == 0 {
			return 0, fmt.Errorf("fsa: negated class matches nothing")
		}
	}
	end := f.AddNode()
	for _, r := range ranges {
		for _, seq := range RuneRangeToByteSeqs(r.Lo, r.Hi) {
			cur := from
			for i, br := range seq {
				var to int32
				if i == len(seq)-1 {
					to = end
				} else {
					to = f.AddNode()
				}
				f.AddByteEdge(cur, br.Lo, br.Hi, to)
				cur = to
			}
		}
	}
	return end, nil
}
