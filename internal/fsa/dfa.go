package fsa

import (
	"fmt"
	"sort"
)

// DFA is a deterministic automaton over bytes with a dense transition table,
// used by the regex-FSM baselines (Outlines-style token indexing) and for
// fast expanded-suffix matching.
type DFA struct {
	// Trans[state*256 + b] is the next state, or -1 for the dead state.
	Trans  []int32
	Accept []bool
	Start  int32
}

// NumStates returns the number of DFA states.
func (d *DFA) NumStates() int { return len(d.Accept) }

// Next returns the successor of state s on byte b, or -1.
func (d *DFA) Next(s int32, b byte) int32 { return d.Trans[int(s)*256+int(b)] }

// MatchPrefixResult describes how far a DFA consumed a byte string.
type MatchPrefixResult struct {
	// Consumed is the number of bytes consumed before dying (or len(input)).
	Consumed int
	// Alive reports whether the DFA survived the whole input.
	Alive bool
	// SawAccept reports whether any visited state (including start) accepts.
	SawAccept bool
	// EndAccept reports whether the final state (if alive) accepts.
	EndAccept bool
}

// MatchPrefix runs the DFA over input from the start state.
func (d *DFA) MatchPrefix(input []byte) MatchPrefixResult {
	res := MatchPrefixResult{SawAccept: d.Accept[d.Start]}
	s := d.Start
	for i, b := range input {
		s = d.Next(s, b)
		if s < 0 {
			res.Consumed = i
			return res
		}
		if d.Accept[s] {
			res.SawAccept = true
		}
	}
	res.Consumed = len(input)
	res.Alive = true
	res.EndAccept = d.Accept[s]
	return res
}

// maxDFAStates caps subset construction to avoid exponential blowups.
const maxDFAStates = 1 << 18

// Determinize converts an FSA (rule-edge-free; epsilon edges are handled via
// closure) into a DFA by subset construction.
func Determinize(f *FSA) (*DFA, error) {
	if f.HasRuleEdges() {
		return nil, fmt.Errorf("fsa: cannot determinize automaton with rule edges")
	}
	closures := make([][]int32, len(f.Nodes))
	closureOf := func(i int32) []int32 {
		if closures[i] == nil {
			c := epsClosure(f, i)
			sort.Slice(c, func(a, b int) bool { return c[a] < c[b] })
			closures[i] = c
		}
		return closures[i]
	}

	type setKey string
	keyOf := func(set []int32) setKey {
		b := make([]byte, 0, len(set)*4)
		for _, s := range set {
			b = append(b, byte(s), byte(s>>8), byte(s>>16), byte(s>>24))
		}
		return setKey(b)
	}

	startSet := closureOf(f.Start)
	d := &DFA{Start: 0}
	ids := map[setKey]int32{}
	var sets [][]int32

	addState := func(set []int32) int32 {
		k := keyOf(set)
		if id, ok := ids[k]; ok {
			return id
		}
		id := int32(len(sets))
		ids[k] = id
		sets = append(sets, set)
		accept := false
		for _, s := range set {
			if f.Nodes[s].Final {
				accept = true
				break
			}
		}
		d.Accept = append(d.Accept, accept)
		d.Trans = append(d.Trans, make([]int32, 256)...)
		for i := 0; i < 256; i++ {
			d.Trans[int(id)*256+i] = -1
		}
		return id
	}
	addState(startSet)

	scratch := map[int32]bool{}
	for si := 0; si < len(sets); si++ {
		if len(sets) > maxDFAStates {
			return nil, fmt.Errorf("fsa: DFA state explosion (> %d states)", maxDFAStates)
		}
		set := sets[si]
		// Collect boundary points from all outgoing byte edges, then compute
		// the successor set per distinct byte region.
		var edges []Edge
		for _, s := range set {
			for _, e := range f.Nodes[s].Edges {
				if e.Kind == EdgeByte {
					edges = append(edges, e)
				}
			}
		}
		if len(edges) == 0 {
			continue
		}
		// Determine distinct breakpoints.
		marks := map[int]bool{0: true, 256: true}
		for _, e := range edges {
			marks[int(e.Lo)] = true
			marks[int(e.Hi)+1] = true
		}
		points := make([]int, 0, len(marks))
		for p := range marks {
			points = append(points, p)
		}
		sort.Ints(points)
		for pi := 0; pi+1 < len(points); pi++ {
			lo, hi := points[pi], points[pi+1]-1
			if lo > 255 {
				break
			}
			b := byte(lo)
			for k := range scratch {
				delete(scratch, k)
			}
			for _, e := range edges {
				if b >= e.Lo && b <= e.Hi {
					for _, c := range closureOf(e.To) {
						scratch[c] = true
					}
				}
			}
			if len(scratch) == 0 {
				continue
			}
			next := make([]int32, 0, len(scratch))
			for s := range scratch {
				next = append(next, s)
			}
			sort.Slice(next, func(a, b int) bool { return next[a] < next[b] })
			id := addState(next)
			for bb := lo; bb <= hi && bb <= 255; bb++ {
				d.Trans[si*256+bb] = id
			}
		}
	}
	return d, nil
}
