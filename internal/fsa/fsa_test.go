package fsa

import (
	"math/rand"
	"testing"
	"unicode/utf8"

	"xgrammar/internal/grammar"
)

// compile builds a rule body, removes epsilons, and optionally merges nodes.
func compile(t *testing.T, e grammar.Expr, merge bool) *FSA {
	t.Helper()
	f, err := BuildRule(e)
	if err != nil {
		t.Fatal(err)
	}
	f = RemoveEpsilon(f)
	if merge {
		f = MergeSiblings(f)
	}
	return f
}

// matches runs the byte-only FSA over s and reports full-string acceptance.
func matches(f *FSA, s string) bool {
	r := NewRunner(f)
	for i := 0; i < len(s); i++ {
		if !r.Step(s[i]) {
			return false
		}
	}
	return r.InFinal()
}

func lit(s string) *grammar.Literal { return &grammar.Literal{Bytes: []byte(s)} }

func TestLiteralFSA(t *testing.T) {
	f := compile(t, lit("abc"), true)
	if !matches(f, "abc") {
		t.Fatal("abc not accepted")
	}
	for _, bad := range []string{"", "ab", "abcd", "abd", "xbc"} {
		if matches(f, bad) {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestChoiceFSA(t *testing.T) {
	e := &grammar.Choice{Alts: []grammar.Expr{lit("cat"), lit("car"), lit("dog")}}
	f := compile(t, e, true)
	for _, good := range []string{"cat", "car", "dog"} {
		if !matches(f, good) {
			t.Errorf("%q rejected", good)
		}
	}
	for _, bad := range []string{"ca", "cab", "dogs", ""} {
		if matches(f, bad) {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestRepeatStar(t *testing.T) {
	e := &grammar.Repeat{Sub: lit("ab"), Min: 0, Max: -1}
	f := compile(t, e, true)
	for _, good := range []string{"", "ab", "abab", "ababab"} {
		if !matches(f, good) {
			t.Errorf("%q rejected", good)
		}
	}
	for _, bad := range []string{"a", "aba", "ba"} {
		if matches(f, bad) {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestRepeatBounds(t *testing.T) {
	e := &grammar.Repeat{Sub: lit("x"), Min: 2, Max: 4}
	f := compile(t, e, true)
	cases := map[string]bool{
		"": false, "x": false, "xx": true, "xxx": true, "xxxx": true, "xxxxx": false,
	}
	for s, want := range cases {
		if got := matches(f, s); got != want {
			t.Errorf("%q = %v, want %v", s, got, want)
		}
	}
}

func TestRepeatMinOnly(t *testing.T) {
	e := &grammar.Repeat{Sub: lit("x"), Min: 2, Max: -1}
	f := compile(t, e, true)
	cases := map[string]bool{"x": false, "xx": true, "xxxxxxx": true}
	for s, want := range cases {
		if got := matches(f, s); got != want {
			t.Errorf("%q = %v, want %v", s, got, want)
		}
	}
}

func TestNullableStarNoHang(t *testing.T) {
	// ("a"?)* must terminate during construction and accept a*.
	e := &grammar.Repeat{
		Sub: &grammar.Repeat{Sub: lit("a"), Min: 0, Max: 1},
		Min: 0, Max: -1,
	}
	f := compile(t, e, true)
	for _, good := range []string{"", "a", "aaa"} {
		if !matches(f, good) {
			t.Errorf("%q rejected", good)
		}
	}
	if matches(f, "b") {
		t.Error("b accepted")
	}
}

func TestCharClassASCII(t *testing.T) {
	e := &grammar.CharClass{Ranges: []grammar.RuneRange{{Lo: 'a', Hi: 'z'}, {Lo: '0', Hi: '9'}}}
	f := compile(t, e, true)
	for _, good := range []string{"a", "m", "z", "0", "9"} {
		if !matches(f, good) {
			t.Errorf("%q rejected", good)
		}
	}
	for _, bad := range []string{"A", " ", "", "ab", "é"} {
		if matches(f, bad) {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestCharClassNegated(t *testing.T) {
	e := &grammar.CharClass{Ranges: []grammar.RuneRange{{Lo: '"', Hi: '"'}, {Lo: '\\', Hi: '\\'}}, Negated: true}
	f := compile(t, e, true)
	for _, good := range []string{"a", " ", "é", "日", "\U0001F600"} {
		if !matches(f, good) {
			t.Errorf("%q rejected", good)
		}
	}
	for _, bad := range []string{`"`, `\`, ""} {
		if matches(f, bad) {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestCharClassUnicodeRange(t *testing.T) {
	e := &grammar.CharClass{Ranges: []grammar.RuneRange{{Lo: 0x3B1, Hi: 0x3C9}}} // α-ω
	f := compile(t, e, true)
	if !matches(f, "α") || !matches(f, "ω") || !matches(f, "μ") {
		t.Error("greek letters rejected")
	}
	if matches(f, "a") || matches(f, "Ω") {
		t.Error("out-of-range accepted")
	}
}

func TestUTF8RangeExhaustiveSmall(t *testing.T) {
	// Exhaustively verify the byte-seq decomposition over tricky boundaries.
	ranges := [][2]rune{
		{0x60, 0x90},       // crosses 1/2-byte boundary
		{0x7FF, 0x800},     // crosses 2/3-byte boundary
		{0xD700, 0xE100},   // straddles the surrogate gap
		{0xFFFE, 0x10001},  // crosses 3/4-byte boundary
		{0x10000, 0x10400}, // 4-byte
	}
	for _, rr := range ranges {
		seqs := RuneRangeToByteSeqs(rr[0], rr[1])
		inSeqs := func(b []byte) bool {
		seqLoop:
			for _, seq := range seqs {
				if len(seq) != len(b) {
					continue
				}
				for i, br := range seq {
					if b[i] < br.Lo || b[i] > br.Hi {
						continue seqLoop
					}
				}
				return true
			}
			return false
		}
		for r := rr[0] - 2; r <= rr[1]+2; r++ {
			if r < 0 || r > 0x10FFFF {
				continue
			}
			valid := utf8.ValidRune(r)
			want := valid && r >= rr[0] && r <= rr[1]
			var buf [4]byte
			if !valid {
				continue
			}
			n := utf8.EncodeRune(buf[:], r)
			if got := inSeqs(buf[:n]); got != want {
				t.Errorf("range %#x-%#x rune %#x: got %v want %v", rr[0], rr[1], r, got, want)
			}
		}
	}
}

func TestRuleEdgePreserved(t *testing.T) {
	e := &grammar.Seq{Items: []grammar.Expr{lit("("), &grammar.RuleRef{Index: 3, Name: "x"}, lit(")")}}
	f, err := BuildRule(e)
	if err != nil {
		t.Fatal(err)
	}
	f = RemoveEpsilon(f)
	if !f.HasRuleEdges() {
		t.Fatal("rule edge lost")
	}
	found := false
	for i := range f.Nodes {
		for _, ed := range f.Nodes[i].Edges {
			if ed.Kind == EdgeRule && ed.Rule == 3 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("rule index lost")
	}
}

func TestMergeSiblingsReducesNodes(t *testing.T) {
	// "cat" | "car" | "cab" — without merging, eps removal leaves three
	// parallel 'c'->'a' chains; merging should collapse the shared prefix.
	e := &grammar.Choice{Alts: []grammar.Expr{lit("cat"), lit("car"), lit("cab")}}
	f, err := BuildRule(e)
	if err != nil {
		t.Fatal(err)
	}
	plain := RemoveEpsilon(f)
	merged := MergeSiblings(plain)
	if len(merged.Nodes) >= len(plain.Nodes) {
		t.Fatalf("merge did not shrink: %d -> %d", len(plain.Nodes), len(merged.Nodes))
	}
	for _, s := range []string{"cat", "car", "cab"} {
		if !matches(merged, s) {
			t.Errorf("%q rejected after merge", s)
		}
	}
	if matches(merged, "caX") || matches(merged, "ca") {
		t.Error("merge broke rejection")
	}
	// The start node should now have a single 'c' edge.
	cEdges := 0
	for _, e := range merged.Nodes[merged.Start].Edges {
		if e.Kind == EdgeByte && e.Lo <= 'c' && 'c' <= e.Hi {
			cEdges++
		}
	}
	if cEdges != 1 {
		t.Errorf("start has %d 'c' edges, want 1", cEdges)
	}
}

func TestMergeSiblingsPreservesLanguage(t *testing.T) {
	exprs := []grammar.Expr{
		&grammar.Choice{Alts: []grammar.Expr{lit("aa"), lit("ab"), lit("ba")}},
		&grammar.Seq{Items: []grammar.Expr{
			&grammar.Repeat{Sub: &grammar.Choice{Alts: []grammar.Expr{lit("x"), lit("xy")}}, Min: 0, Max: -1},
			lit("z"),
		}},
	}
	inputs := []string{"", "aa", "ab", "ba", "bb", "z", "xz", "xyz", "xxyz", "xyxz", "xy", "x"}
	for _, e := range exprs {
		plain := compile(t, e, false)
		merged := MergeSiblings(plain)
		for _, in := range inputs {
			if matches(plain, in) != matches(merged, in) {
				t.Errorf("expr %v input %q: merge changed language", e, in)
			}
		}
	}
}

func TestUnion(t *testing.T) {
	a := compile(t, lit("foo"), true)
	b := compile(t, lit("bar"), true)
	u := RemoveEpsilon(Union(a, b))
	if !matches(u, "foo") || !matches(u, "bar") {
		t.Fatal("union missing member")
	}
	if matches(u, "foobar") || matches(u, "") {
		t.Fatal("union over-accepts")
	}
}

func TestUnionWithEmpty(t *testing.T) {
	a := compile(t, lit("x"), true)
	u := RemoveEpsilon(Union(nil, a))
	if !matches(u, "x") {
		t.Fatal("union with nil lost language")
	}
}

func TestDeterminize(t *testing.T) {
	e := &grammar.Seq{Items: []grammar.Expr{
		&grammar.Repeat{Sub: &grammar.CharClass{Ranges: []grammar.RuneRange{{Lo: 'a', Hi: 'z'}}}, Min: 1, Max: -1},
		lit("!"),
	}}
	f := compile(t, e, false)
	d, err := Determinize(f)
	if err != nil {
		t.Fatal(err)
	}
	for s, want := range map[string]bool{"a!": true, "abc!": true, "!": false, "a": false, "a!x": false} {
		res := d.MatchPrefix([]byte(s))
		got := res.Alive && res.EndAccept
		if got != want {
			t.Errorf("%q = %v, want %v", s, got, want)
		}
	}
}

func TestDeterminizeRejectsRuleEdges(t *testing.T) {
	f := New()
	to := f.AddNode()
	f.AddRuleEdge(f.Start, 0, to)
	if _, err := Determinize(f); err == nil {
		t.Fatal("expected error")
	}
}

func TestMatchPrefixSawAccept(t *testing.T) {
	// Language "ab" — walking "abz" dies at z but passed an accept state.
	f := compile(t, lit("ab"), true)
	d, err := Determinize(f)
	if err != nil {
		t.Fatal(err)
	}
	res := d.MatchPrefix([]byte("abz"))
	if res.Alive {
		t.Fatal("should have died")
	}
	if !res.SawAccept {
		t.Fatal("SawAccept lost")
	}
	if res.Consumed != 2 {
		t.Fatalf("Consumed = %d", res.Consumed)
	}
}

func TestRunnerReset(t *testing.T) {
	f := compile(t, lit("ab"), true)
	r := NewRunner(f)
	r.Step('a')
	r.Step('b')
	if !r.InFinal() {
		t.Fatal("not final after ab")
	}
	r.Reset()
	if r.InFinal() || !r.Alive() {
		t.Fatal("reset failed")
	}
	if !r.Step('a') {
		t.Fatal("step after reset failed")
	}
}

func TestCompactRemovesUnreachable(t *testing.T) {
	f := New()
	a := f.AddNode()
	f.AddByteEdge(f.Start, 'x', 'x', a)
	f.Nodes[a].Final = true
	f.AddNode() // orphan
	c := Compact(f)
	if len(c.Nodes) != 2 {
		t.Fatalf("nodes = %d, want 2", len(c.Nodes))
	}
	if !matches(c, "x") {
		t.Fatal("language changed")
	}
}

func TestRepeatTooLarge(t *testing.T) {
	_, err := BuildRule(&grammar.Repeat{Sub: lit("x"), Min: 0, Max: 100000})
	if err == nil {
		t.Fatal("expected unroll bound error")
	}
}

// TestDeterminizeEquivalenceProperty: the DFA from subset construction must
// accept exactly the same strings as the NFA it came from, over random
// expressions and random probes.
func TestDeterminizeEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	randExpr := func() grammar.Expr {
		var rec func(depth int) grammar.Expr
		rec = func(depth int) grammar.Expr {
			if depth >= 3 {
				return lit(string(rune('a' + rng.Intn(4))))
			}
			switch rng.Intn(5) {
			case 0:
				return lit(string(rune('a' + rng.Intn(4))))
			case 1:
				lo := rune('a' + rng.Intn(3))
				return &grammar.CharClass{Ranges: []grammar.RuneRange{{Lo: lo, Hi: lo + rune(rng.Intn(3))}}}
			case 2:
				return &grammar.Seq{Items: []grammar.Expr{rec(depth + 1), rec(depth + 1)}}
			case 3:
				return &grammar.Choice{Alts: []grammar.Expr{rec(depth + 1), rec(depth + 1)}}
			default:
				return &grammar.Repeat{Sub: rec(depth + 1), Min: rng.Intn(2), Max: rng.Intn(3) - 1}
			}
		}
		return rec(0)
	}
	for trial := 0; trial < 40; trial++ {
		e := randExpr()
		f, err := BuildRule(e)
		if err != nil {
			continue
		}
		nfa := RemoveEpsilon(f)
		dfa, err := Determinize(nfa)
		if err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 60; probe++ {
			n := rng.Intn(8)
			b := make([]byte, n)
			for i := range b {
				b[i] = byte('a' + rng.Intn(5))
			}
			nfaAccept := matches(nfa, string(b))
			res := dfa.MatchPrefix(b)
			dfaAccept := res.Alive && res.EndAccept
			if nfaAccept != dfaAccept {
				t.Fatalf("expr %v probe %q: nfa=%v dfa=%v", e, b, nfaAccept, dfaAccept)
			}
		}
	}
}
