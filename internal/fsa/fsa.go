// Package fsa implements byte-level finite state automata: the building
// blocks of the pushdown automaton. Each grammar rule body is compiled into
// an FSA whose edges are labeled with byte ranges, references to other rules,
// or epsilon. Character classes over runes are lowered to UTF-8 byte-range
// sequences so the automaton operates purely on bytes (§3 of the paper).
package fsa

import (
	"fmt"
	"sort"
	"strings"
)

// EdgeKind discriminates automaton edge labels.
type EdgeKind uint8

const (
	// EdgeByte consumes one input byte in [Lo, Hi].
	EdgeByte EdgeKind = iota
	// EdgeRule recursively enters another rule's automaton.
	EdgeRule
	// EdgeEps consumes no input.
	EdgeEps
)

// Edge is a labeled transition to node To.
type Edge struct {
	Kind EdgeKind
	Lo   byte  // for EdgeByte
	Hi   byte  // for EdgeByte
	Rule int32 // for EdgeRule
	To   int32
}

// Node is an automaton state.
type Node struct {
	Edges []Edge
	Final bool
}

// FSA is a nondeterministic finite automaton over bytes with optional
// rule-reference and epsilon edges.
type FSA struct {
	Nodes []Node
	Start int32
}

// New returns an FSA with a single non-final start node.
func New() *FSA {
	return &FSA{Nodes: []Node{{}}, Start: 0}
}

// AddNode appends a fresh node and returns its index.
func (f *FSA) AddNode() int32 {
	f.Nodes = append(f.Nodes, Node{})
	return int32(len(f.Nodes) - 1)
}

// AddByteEdge adds a byte-range transition.
func (f *FSA) AddByteEdge(from int32, lo, hi byte, to int32) {
	f.Nodes[from].Edges = append(f.Nodes[from].Edges, Edge{Kind: EdgeByte, Lo: lo, Hi: hi, To: to})
}

// AddRuleEdge adds a rule-reference transition.
func (f *FSA) AddRuleEdge(from int32, rule int32, to int32) {
	f.Nodes[from].Edges = append(f.Nodes[from].Edges, Edge{Kind: EdgeRule, Rule: rule, To: to})
}

// AddEpsEdge adds an epsilon transition.
func (f *FSA) AddEpsEdge(from, to int32) {
	f.Nodes[from].Edges = append(f.Nodes[from].Edges, Edge{Kind: EdgeEps, To: to})
}

// NumEdges returns the total edge count.
func (f *FSA) NumEdges() int {
	n := 0
	for i := range f.Nodes {
		n += len(f.Nodes[i].Edges)
	}
	return n
}

// HasRuleEdges reports whether any edge references a rule.
func (f *FSA) HasRuleEdges() bool {
	for i := range f.Nodes {
		for _, e := range f.Nodes[i].Edges {
			if e.Kind == EdgeRule {
				return true
			}
		}
	}
	return false
}

// HasEpsEdges reports whether any epsilon edges remain.
func (f *FSA) HasEpsEdges() bool {
	for i := range f.Nodes {
		for _, e := range f.Nodes[i].Edges {
			if e.Kind == EdgeEps {
				return true
			}
		}
	}
	return false
}

// Clone returns a deep copy.
func (f *FSA) Clone() *FSA {
	nf := &FSA{Start: f.Start, Nodes: make([]Node, len(f.Nodes))}
	for i, n := range f.Nodes {
		edges := make([]Edge, len(n.Edges))
		copy(edges, n.Edges)
		nf.Nodes[i] = Node{Edges: edges, Final: n.Final}
	}
	return nf
}

// SortEdges orders every node's edges deterministically: byte edges by
// (Lo, Hi, To), then rule edges, then epsilon edges.
func (f *FSA) SortEdges() {
	for i := range f.Nodes {
		es := f.Nodes[i].Edges
		sort.Slice(es, func(a, b int) bool {
			x, y := es[a], es[b]
			if x.Kind != y.Kind {
				return x.Kind < y.Kind
			}
			if x.Lo != y.Lo {
				return x.Lo < y.Lo
			}
			if x.Hi != y.Hi {
				return x.Hi < y.Hi
			}
			if x.Rule != y.Rule {
				return x.Rule < y.Rule
			}
			return x.To < y.To
		})
	}
}

// String renders the FSA for debugging.
func (f *FSA) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "start=%d\n", f.Start)
	for i, n := range f.Nodes {
		mark := " "
		if n.Final {
			mark = "*"
		}
		fmt.Fprintf(&sb, "%s%3d:", mark, i)
		for _, e := range n.Edges {
			switch e.Kind {
			case EdgeByte:
				if e.Lo == e.Hi {
					fmt.Fprintf(&sb, " [%q]->%d", e.Lo, e.To)
				} else {
					fmt.Fprintf(&sb, " [%q-%q]->%d", e.Lo, e.Hi, e.To)
				}
			case EdgeRule:
				fmt.Fprintf(&sb, " <rule %d>->%d", e.Rule, e.To)
			case EdgeEps:
				fmt.Fprintf(&sb, " eps->%d", e.To)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Union returns an FSA accepting the union of a and b. Rule edges are
// preserved. The result may contain epsilon edges.
func Union(a, b *FSA) *FSA {
	if a == nil || len(a.Nodes) == 0 {
		return b.Clone()
	}
	if b == nil || len(b.Nodes) == 0 {
		return a.Clone()
	}
	out := New()
	offA := int32(len(out.Nodes))
	for _, n := range a.Nodes {
		edges := make([]Edge, len(n.Edges))
		for i, e := range n.Edges {
			e.To += offA
			edges[i] = e
		}
		out.Nodes = append(out.Nodes, Node{Edges: edges, Final: n.Final})
	}
	offB := int32(len(out.Nodes))
	for _, n := range b.Nodes {
		edges := make([]Edge, len(n.Edges))
		for i, e := range n.Edges {
			e.To += offB
			edges[i] = e
		}
		out.Nodes = append(out.Nodes, Node{Edges: edges, Final: n.Final})
	}
	out.AddEpsEdge(out.Start, a.Start+offA)
	out.AddEpsEdge(out.Start, b.Start+offB)
	return out
}
