package fsa

import "sort"

// RemoveEpsilon returns an equivalent FSA with no epsilon edges: each node's
// outgoing edges become the non-epsilon edges of its epsilon closure, and a
// node is final if its closure contains a final node. Unreachable nodes are
// then compacted away.
func RemoveEpsilon(f *FSA) *FSA {
	n := len(f.Nodes)
	closures := make([][]int32, n)
	for i := 0; i < n; i++ {
		closures[i] = epsClosure(f, int32(i))
	}
	out := &FSA{Start: f.Start, Nodes: make([]Node, n)}
	for i := 0; i < n; i++ {
		var node Node
		for _, m := range closures[i] {
			if f.Nodes[m].Final {
				node.Final = true
			}
			for _, e := range f.Nodes[m].Edges {
				if e.Kind != EdgeEps {
					node.Edges = append(node.Edges, e)
				}
			}
		}
		out.Nodes[i] = node
	}
	out.dedupeEdges()
	return Compact(out)
}

// epsClosure returns all nodes reachable from s via epsilon edges, s first.
func epsClosure(f *FSA, s int32) []int32 {
	seen := map[int32]bool{s: true}
	order := []int32{s}
	for i := 0; i < len(order); i++ {
		for _, e := range f.Nodes[order[i]].Edges {
			if e.Kind == EdgeEps && !seen[e.To] {
				seen[e.To] = true
				order = append(order, e.To)
			}
		}
	}
	return order
}

// dedupeEdges removes exact duplicate edges on every node.
func (f *FSA) dedupeEdges() {
	for i := range f.Nodes {
		es := f.Nodes[i].Edges
		if len(es) < 2 {
			continue
		}
		sort.Slice(es, func(a, b int) bool {
			x, y := es[a], es[b]
			if x.Kind != y.Kind {
				return x.Kind < y.Kind
			}
			if x.Lo != y.Lo {
				return x.Lo < y.Lo
			}
			if x.Hi != y.Hi {
				return x.Hi < y.Hi
			}
			if x.Rule != y.Rule {
				return x.Rule < y.Rule
			}
			return x.To < y.To
		})
		w := 1
		for r := 1; r < len(es); r++ {
			if es[r] != es[r-1] {
				es[w] = es[r]
				w++
			}
		}
		f.Nodes[i].Edges = es[:w]
	}
}

// Compact removes nodes unreachable from the start and renumbers the rest.
func Compact(f *FSA) *FSA {
	n := len(f.Nodes)
	seen := make([]bool, n)
	order := []int32{f.Start}
	seen[f.Start] = true
	for i := 0; i < len(order); i++ {
		for _, e := range f.Nodes[order[i]].Edges {
			if !seen[e.To] {
				seen[e.To] = true
				order = append(order, e.To)
			}
		}
	}
	remap := make([]int32, n)
	for i := range remap {
		remap[i] = -1
	}
	for newID, old := range order {
		remap[old] = int32(newID)
	}
	out := &FSA{Start: 0, Nodes: make([]Node, len(order))}
	for newID, old := range order {
		src := f.Nodes[old]
		edges := make([]Edge, len(src.Edges))
		for i, e := range src.Edges {
			e.To = remap[e.To]
			edges[i] = e
		}
		out.Nodes[newID] = Node{Edges: edges, Final: src.Final}
	}
	return out
}

// edgeLabel identifies an edge's label, ignoring its target.
type edgeLabel struct {
	kind EdgeKind
	lo   byte
	hi   byte
	rule int32
}

func labelOf(e Edge) edgeLabel {
	return edgeLabel{kind: e.Kind, lo: e.Lo, hi: e.Hi, rule: e.Rule}
}

// MergeSiblings implements the node-merging optimization (§3.4): when a node
// has several outgoing edges with the same label whose targets are not
// pointed to by any other edge, the targets are merged into one node,
// removing nondeterministic stack splits at runtime. The pass runs to a
// fixpoint and then compacts the automaton. The input must be epsilon-free.
func MergeSiblings(f *FSA) *FSA {
	out := f.Clone()
	for {
		changed := false
		indeg := make([]int, len(out.Nodes))
		for i := range out.Nodes {
			for _, e := range out.Nodes[i].Edges {
				indeg[e.To]++
			}
		}
		indeg[out.Start]++ // the start node is externally referenced
		for u := range out.Nodes {
			groups := map[edgeLabel][]int{}
			for ei, e := range out.Nodes[u].Edges {
				groups[labelOf(e)] = append(groups[labelOf(e)], ei)
			}
			for _, eis := range groups {
				if len(eis) < 2 {
					continue
				}
				// Collect distinct mergeable targets: in-degree exactly 1
				// (this edge), not the node itself.
				var tgt []int32
				seen := map[int32]bool{}
				ok := true
				for _, ei := range eis {
					to := out.Nodes[u].Edges[ei].To
					if seen[to] {
						continue // duplicate edge; will be deduped
					}
					seen[to] = true
					if int(to) == u || indeg[to] != 1 {
						ok = false
						break
					}
					tgt = append(tgt, to)
				}
				if !ok || len(tgt) < 2 {
					continue
				}
				// Merge all targets into tgt[0].
				keep := tgt[0]
				for _, t := range tgt[1:] {
					out.Nodes[keep].Edges = append(out.Nodes[keep].Edges, out.Nodes[t].Edges...)
					if out.Nodes[t].Final {
						out.Nodes[keep].Final = true
					}
					out.Nodes[t].Edges = nil
				}
				// Redirect u's edges in this group to keep.
				for _, ei := range eis {
					out.Nodes[u].Edges[ei].To = keep
				}
				changed = true
			}
			if changed {
				break // in-degrees are stale; recompute
			}
		}
		if !changed {
			break
		}
		out.dedupeEdges()
	}
	out.dedupeEdges()
	return Compact(out)
}

// Runner simulates an epsilon-free, rule-edge-free FSA over bytes with a
// set of current states. It is used for expanded-suffix matching during
// context expansion and in tests.
type Runner struct {
	f          *FSA
	cur        []int32
	next       []int32
	sawFinal   bool
	curInFinal bool
}

// NewRunner returns a Runner positioned at the start state. It panics if the
// FSA still contains epsilon or rule edges.
func NewRunner(f *FSA) *Runner {
	if f.HasEpsEdges() || f.HasRuleEdges() {
		panic("fsa: Runner requires an epsilon-free, rule-free FSA")
	}
	r := &Runner{f: f}
	r.Reset()
	return r
}

// Reset returns the runner to the start state.
func (r *Runner) Reset() {
	r.cur = append(r.cur[:0], r.f.Start)
	r.curInFinal = r.f.Nodes[r.f.Start].Final
	r.sawFinal = r.curInFinal
}

// Step consumes one byte and reports whether any state survives.
func (r *Runner) Step(b byte) bool {
	r.next = r.next[:0]
	inFinal := false
	for _, s := range r.cur {
		for _, e := range r.f.Nodes[s].Edges {
			if b >= e.Lo && b <= e.Hi {
				if !contains(r.next, e.To) {
					r.next = append(r.next, e.To)
					if r.f.Nodes[e.To].Final {
						inFinal = true
					}
				}
			}
		}
	}
	r.cur, r.next = r.next, r.cur
	r.curInFinal = inFinal
	if inFinal {
		r.sawFinal = true
	}
	return len(r.cur) > 0
}

// Alive reports whether any state remains.
func (r *Runner) Alive() bool { return len(r.cur) > 0 }

// InFinal reports whether a current state is final.
func (r *Runner) InFinal() bool { return r.curInFinal }

// SawFinal reports whether any visited state (including the start) was final.
func (r *Runner) SawFinal() bool { return r.sawFinal }

func contains(xs []int32, v int32) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
