// Package gramcache provides a byte-bounded LRU cache with singleflight
// deduplication, used to memoize compiled grammars. Grammar compilation —
// PDA construction plus the adaptive token mask cache's full-vocabulary scan
// — is the dominant preprocessing cost (paper §3.1–§3.3), and production
// serving stacks see the same few grammars over and over; upstream XGrammar
// hides the cost behind a compiled-grammar cache in its GrammarCompiler.
//
// The cache is safe for concurrent use. When N goroutines ask for the same
// missing key, exactly one runs the build function; the rest block and share
// its result (singleflight). Entries carry a caller-reported byte size and
// the least-recently-used entries are evicted once the configured budget is
// exceeded.
package gramcache

import (
	"container/list"
	"fmt"
	"sync"
)

// Stats counts cache activity. Hits + Misses + Coalesced equals the number
// of GetOrBuild calls; Builds counts builds that completed successfully
// (failed builds are not cached and are retried by later calls).
type Stats struct {
	Hits      int64 // entry present
	Misses    int64 // entry absent, caller ran the build
	Coalesced int64 // entry absent, caller joined an in-flight build
	Builds    int64 // successful builds inserted
	Evictions int64 // entries dropped to fit the byte budget
}

type entry[V any] struct {
	key  string
	val  V
	size int64
	elem *list.Element
}

type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Cache is a byte-bounded LRU keyed by string. The zero value is not usable;
// call New.
type Cache[V any] struct {
	mu       sync.Mutex
	maxBytes int64
	curBytes int64
	entries  map[string]*entry[V]
	ll       *list.List // front = most recently used
	flights  map[string]*flight[V]
	stats    Stats
	onEvict  func(key string, val V)
}

// New returns a cache that holds at most maxBytes of cached values (as
// reported by the build functions). A single entry larger than the budget is
// still cached alone, so the hot grammar is never thrashed.
func New[V any](maxBytes int64) *Cache[V] {
	return &Cache[V]{
		maxBytes: maxBytes,
		entries:  map[string]*entry[V]{},
		ll:       list.New(),
		flights:  map[string]*flight[V]{},
	}
}

// Get returns the cached value for key, if present, marking it recently
// used. It does not join in-flight builds.
func (c *Cache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.ll.MoveToFront(e.elem)
		c.stats.Hits++
		return e.val, true
	}
	var zero V
	return zero, false
}

// SetOnEvict registers fn to be called (outside the cache lock, after the
// eviction took effect) for every entry dropped by LRU pressure or Purge —
// the hook dependent caches key off: evicting a compiled grammar must also
// invalidate any warm-start state derived from it. Not safe to change
// concurrently with cache use; set it once at construction time.
func (c *Cache[V]) SetOnEvict(fn func(key string, val V)) { c.onEvict = fn }

// notifyEvicted runs the eviction hook for each dropped entry. Must be
// called without holding c.mu.
func (c *Cache[V]) notifyEvicted(dropped []*entry[V]) {
	if c.onEvict == nil {
		return
	}
	for _, e := range dropped {
		c.onEvict(e.key, e.val)
	}
}

// GetOrBuild returns the value for key, running build at most once across
// all concurrent callers. build returns the value and its byte size; on
// error nothing is cached and every waiting caller receives the error.
func (c *Cache[V]) GetOrBuild(key string, build func() (V, int64, error)) (V, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.ll.MoveToFront(e.elem)
		c.stats.Hits++
		v := e.val
		c.mu.Unlock()
		return v, nil
	}
	if fl, ok := c.flights[key]; ok {
		c.stats.Coalesced++
		c.mu.Unlock()
		<-fl.done
		return fl.val, fl.err
	}
	fl := &flight[V]{done: make(chan struct{})}
	c.flights[key] = fl
	c.stats.Misses++
	c.mu.Unlock()

	var size int64
	var panicked any
	func() {
		defer func() {
			if r := recover(); r != nil {
				panicked = r
				fl.err = fmt.Errorf("gramcache: build panic: %v", r)
			}
		}()
		fl.val, size, fl.err = build()
	}()

	c.mu.Lock()
	delete(c.flights, key)
	var dropped []*entry[V]
	if fl.err == nil {
		c.stats.Builds++
		dropped = c.insertLocked(key, fl.val, size)
	}
	c.mu.Unlock()
	c.notifyEvicted(dropped)
	close(fl.done)
	if panicked != nil {
		panic(panicked)
	}
	return fl.val, fl.err
}

// insertLocked adds the entry and evicts from the LRU tail until the budget
// holds (never evicting the entry just inserted). It returns the evicted
// entries so the caller can run the eviction hook after unlocking.
func (c *Cache[V]) insertLocked(key string, val V, size int64) (dropped []*entry[V]) {
	if e, ok := c.entries[key]; ok {
		// A racing Purge plus rebuild could, in principle, re-insert; keep
		// the newest value and adjust the accounting.
		c.curBytes += size - e.size
		e.val, e.size = val, size
		c.ll.MoveToFront(e.elem)
	} else {
		e := &entry[V]{key: key, val: val, size: size}
		e.elem = c.ll.PushFront(e)
		c.entries[key] = e
		c.curBytes += size
	}
	for c.curBytes > c.maxBytes && c.ll.Len() > 1 {
		back := c.ll.Back()
		if back == nil {
			break
		}
		ev := back.Value.(*entry[V])
		if ev.key == key {
			break
		}
		c.ll.Remove(back)
		delete(c.entries, ev.key)
		c.curBytes -= ev.size
		c.stats.Evictions++
		dropped = append(dropped, ev)
	}
	return dropped
}

// Put inserts (or replaces) a prebuilt value of the given byte size,
// evicting least-recently-used entries beyond the byte budget — the
// warm-start path, where values come from a disk store rather than a build
// function. Put does not touch the hit/miss counters.
func (c *Cache[V]) Put(key string, val V, size int64) {
	c.mu.Lock()
	dropped := c.insertLocked(key, val, size)
	c.mu.Unlock()
	c.notifyEvicted(dropped)
}

// Purge drops every cached entry (in-flight builds are unaffected and will
// insert when they finish). The eviction hook runs for every entry dropped.
func (c *Cache[V]) Purge() {
	c.mu.Lock()
	var dropped []*entry[V]
	for _, e := range c.entries {
		dropped = append(dropped, e)
	}
	c.entries = map[string]*entry[V]{}
	c.ll.Init()
	c.curBytes = 0
	c.mu.Unlock()
	c.notifyEvicted(dropped)
}

// Len returns the number of cached entries.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Bytes returns the cached bytes as reported by the build functions.
func (c *Cache[V]) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.curBytes
}

// MaxBytes returns the configured byte budget.
func (c *Cache[V]) MaxBytes() int64 { return c.maxBytes }

// Stats returns a snapshot of the activity counters.
func (c *Cache[V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
