package gramcache

import "testing"

// TestReplaceSubtractsOldBytes pins the size accounting when an insert
// lands on a key that already has an entry (Put over Put, or a completed
// build flight over a racing Put): the old entry's bytes must come off
// before the new size goes on, observable through eviction behavior —
// double-counted bytes would evict entries that fit, leaked bytes would
// keep entries that don't.
func TestReplaceSubtractsOldBytes(t *testing.T) {
	c := New[string](100)
	c.Put("a", "a1", 60)
	c.Put("b", "b1", 30)
	if got := c.Bytes(); got != 90 {
		t.Fatalf("Bytes = %d, want 90", got)
	}

	// Replacing a with a larger value overflows the budget by exactly the
	// growth: only b must be evicted, and the eviction counted once.
	c.Put("a", "a2", 80)
	if got := c.Bytes(); got != 80 {
		t.Fatalf("after grow-replace: Bytes = %d, want 80 (old 60 subtracted)", got)
	}
	if c.Len() != 1 {
		t.Fatalf("after grow-replace: Len = %d, want 1 (b evicted)", c.Len())
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Fatalf("Evictions = %d, want 1 (replacement itself is not an eviction)", ev)
	}
	if v, ok := c.Get("a"); !ok || v != "a2" {
		t.Fatalf("a = %q/%v, want replaced value a2", v, ok)
	}

	// Replacing a with a smaller value must free its bytes: a 10-byte a
	// plus an 85-byte c fit the 100-byte budget with no eviction. Stale
	// accounting (10+80 or 10+60+80) would evict here.
	c.Put("a", "a3", 10)
	c.Put("c", "c1", 85)
	if got := c.Bytes(); got != 95 {
		t.Fatalf("after shrink-replace: Bytes = %d, want 95", got)
	}
	if c.Len() != 2 {
		t.Fatalf("after shrink-replace: Len = %d, want 2 (nothing evicted)", c.Len())
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Fatalf("Evictions = %d, want still 1", ev)
	}
}

// TestPutRacingCompletedFlight covers the warm-start race: a Put lands
// while a build flight for the same key is running, then the flight
// completes and re-inserts. The flight's value wins, the Put's bytes are
// fully released, and the shared curBytes stays consistent — verified by
// filling the cache to the brink and watching what evicts.
func TestPutRacingCompletedFlight(t *testing.T) {
	c := New[string](100)
	v, err := c.GetOrBuild("k", func() (string, int64, error) {
		// The racing Put: a stale disk-store load inserted mid-build.
		c.Put("k", "stale", 70)
		return "built", 40, nil
	})
	if err != nil || v != "built" {
		t.Fatalf("GetOrBuild = %q, %v", v, err)
	}
	if got, ok := c.Get("k"); !ok || got != "built" {
		t.Fatalf("k = %q/%v, want the flight's value", got, ok)
	}
	// 40 bytes live, not 70 or 110: a 55-byte neighbor fits without
	// eviction.
	if got := c.Bytes(); got != 40 {
		t.Fatalf("Bytes = %d, want 40 (stale 70 subtracted)", got)
	}
	c.Put("x", "x1", 55)
	if c.Len() != 2 || c.Stats().Evictions != 0 {
		t.Fatalf("Len = %d, Evictions = %d; want 2 entries, no eviction", c.Len(), c.Stats().Evictions)
	}
	// One more insert pushes past the budget: exactly one LRU eviction.
	c.Put("y", "y1", 30)
	if got := c.Bytes(); got > 100 {
		t.Fatalf("Bytes = %d exceeds budget after eviction", got)
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Fatalf("Evictions = %d, want 1", ev)
	}
}
