package gramcache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestGetOrBuildBasic(t *testing.T) {
	c := New[string](1 << 20)
	builds := 0
	build := func() (string, int64, error) { builds++; return "v", 8, nil }
	for i := 0; i < 3; i++ {
		v, err := c.GetOrBuild("k", build)
		if err != nil || v != "v" {
			t.Fatalf("get %d: %q, %v", i, v, err)
		}
	}
	if builds != 1 {
		t.Fatalf("builds = %d", builds)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 2 || st.Builds != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if v, ok := c.Get("k"); !ok || v != "v" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if c.Len() != 1 || c.Bytes() != 8 {
		t.Fatalf("len=%d bytes=%d", c.Len(), c.Bytes())
	}
}

func TestLRUEviction(t *testing.T) {
	c := New[int](100)
	add := func(key string, size int64) {
		if _, err := c.GetOrBuild(key, func() (int, int64, error) { return 0, size, nil }); err != nil {
			t.Fatal(err)
		}
	}
	add("a", 40)
	add("b", 40)
	c.Get("a")   // a is now more recently used than b
	add("c", 40) // 120 > 100: evicts b (least recent)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b not evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted out of order")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c evicted")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d", st.Evictions)
	}
	if c.Bytes() != 80 {
		t.Fatalf("bytes = %d", c.Bytes())
	}
}

func TestOversizedEntryKept(t *testing.T) {
	c := New[int](10)
	if _, err := c.GetOrBuild("big", func() (int, int64, error) { return 1, 1000, nil }); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("big"); !ok {
		t.Fatal("oversized sole entry evicted")
	}
	// A second entry displaces it.
	if _, err := c.GetOrBuild("small", func() (int, int64, error) { return 2, 1, nil }); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("big"); ok {
		t.Fatal("big survived over budget with another entry present")
	}
}

func TestBuildErrorNotCached(t *testing.T) {
	c := New[int](100)
	boom := errors.New("boom")
	if _, err := c.GetOrBuild("k", func() (int, int64, error) { return 0, 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	v, err := c.GetOrBuild("k", func() (int, int64, error) { return 7, 1, nil })
	if err != nil || v != 7 {
		t.Fatalf("retry = %d, %v", v, err)
	}
	if st := c.Stats(); st.Builds != 1 || st.Misses != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSingleflight has 16 goroutines request the same missing key; exactly
// one build must run and all callers must share its result.
func TestSingleflight(t *testing.T) {
	c := New[string](1 << 20)
	var builds atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]string, 16)
	errs := make([]error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-gate
			results[i], errs[i] = c.GetOrBuild("shared", func() (string, int64, error) {
				builds.Add(1)
				return "compiled", 64, nil
			})
		}(i)
	}
	close(gate)
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("build ran %d times", n)
	}
	for i := range results {
		if errs[i] != nil || results[i] != "compiled" {
			t.Fatalf("caller %d: %q, %v", i, results[i], errs[i])
		}
	}
	st := c.Stats()
	if st.Builds != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Hits+st.Coalesced != 15 {
		t.Fatalf("hits+coalesced = %d, want 15 (%+v)", st.Hits+st.Coalesced, st)
	}
}

func TestPurge(t *testing.T) {
	c := New[int](100)
	for i := 0; i < 3; i++ {
		k := fmt.Sprintf("k%d", i)
		c.GetOrBuild(k, func() (int, int64, error) { return i, 10, nil })
	}
	c.Purge()
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("purge left len=%d bytes=%d", c.Len(), c.Bytes())
	}
}

func TestBuildPanicPropagatesAndUnblocks(t *testing.T) {
	c := New[int](100)
	done := make(chan error, 1)
	started := make(chan struct{})
	go func() {
		defer func() { recover() }()
		c.GetOrBuild("k", func() (int, int64, error) {
			close(started)
			panic("kaboom")
		})
		done <- nil
	}()
	<-started
	// A second caller must not deadlock: it either coalesces and receives
	// the panic-as-error, or retries the build after the flight clears.
	v, err := c.GetOrBuild("k", func() (int, int64, error) { return 5, 1, nil })
	if err != nil && v != 0 {
		t.Fatalf("unexpected %d, %v", v, err)
	}
}
