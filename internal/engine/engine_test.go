package engine

import (
	"strings"
	"testing"
	"time"

	"xgrammar/internal/baselines"
	"xgrammar/internal/builtin"
	"xgrammar/internal/llmsim"
	"xgrammar/internal/maskcache"
	"xgrammar/internal/pda"
	"xgrammar/internal/tokenizer"
	"xgrammar/internal/workload"
)

func testSetup(t testing.TB) (*tokenizer.Tokenizer, baselines.Backend) {
	t.Helper()
	tok := tokenizer.BuildDefault(500)
	p, err := pda.Compile(builtin.JSON(), pda.AllOptimizations)
	if err != nil {
		t.Fatal(err)
	}
	cache := maskcache.Build(p, tok, maskcache.Options{ContextExpansion: true})
	return tok, baselines.NewXGBackend(p, cache, tok, "")
}

func testProfile() llmsim.Profile {
	// A fast profile so tests run quickly but the overlap math is exercised.
	return llmsim.Profile{
		Name:            "test",
		DecodeBase:      200 * time.Microsecond,
		DecodePerSeq:    10 * time.Microsecond,
		PrefillPerToken: 5 * time.Microsecond,
		SamplePerStep:   time.Microsecond,
	}
}

func jsonTargets(n int) []string {
	return workload.JSONDocs(n, 99)
}

func TestUnconstrainedRun(t *testing.T) {
	tok, _ := testSetup(t)
	targets := jsonTargets(3)
	reqs := llmsim.NewRequests(targets, 139)
	met, outs, err := Run(Config{Model: testModel(tok), Mode: Unconstrained, Tok: tok}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range outs {
		if o != targets[i] {
			t.Fatalf("output %d = %q, want %q", i, o, targets[i])
		}
	}
	if met.OutputTokens == 0 || met.DecodeSteps == 0 || met.TPOT == 0 {
		t.Fatalf("degenerate metrics: %+v", met)
	}
	if met.MaskCPU != 0 {
		t.Fatal("unconstrained run measured grammar CPU")
	}
}

func TestConstrainedMatchesTargets(t *testing.T) {
	tok, backend := testSetup(t)
	targets := jsonTargets(3)
	reqs := llmsim.NewRequests(targets, 139)
	for _, mode := range []Mode{Serial, Overlap} {
		met, outs, err := Run(Config{Model: testModel(tok), Mode: mode, Grammar: backend, Tok: tok}, reqs)
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		for i, o := range outs {
			if o != targets[i] {
				t.Fatalf("mode %v: output %d = %q, want %q", mode, i, o, targets[i])
			}
		}
		if met.MaskCPU == 0 {
			t.Fatalf("mode %v: no grammar CPU measured", mode)
		}
	}
}

func TestOverlapHidesGrammarCPU(t *testing.T) {
	tok, backend := testSetup(t)
	targets := jsonTargets(4)
	serialMet, _, err := Run(Config{Model: testModel(tok), Mode: Serial, Grammar: backend, Tok: tok},
		llmsim.NewRequests(targets, 139))
	if err != nil {
		t.Fatal(err)
	}
	overlapMet, _, err := Run(Config{Model: testModel(tok), Mode: Overlap, Grammar: backend, Tok: tok},
		llmsim.NewRequests(targets, 139))
	if err != nil {
		t.Fatal(err)
	}
	if overlapMet.Wall >= serialMet.Wall {
		t.Fatalf("overlap (%v) not faster than serial (%v)", overlapMet.Wall, serialMet.Wall)
	}
}

func TestJumpForwardReducesSteps(t *testing.T) {
	tok := tokenizer.BuildDefault(500)
	// A schema-like grammar with long forced runs.
	task := workload.SchemaTasks(1, 5)[0]
	g, err := compileSchema(task.Schema)
	if err != nil {
		t.Fatal(err)
	}
	p, err := pda.Compile(g, pda.AllOptimizations)
	if err != nil {
		t.Fatal(err)
	}
	cache := maskcache.Build(p, tok, maskcache.Options{ContextExpansion: true})
	backend := baselines.NewXGBackend(p, cache, tok, "")
	reqs := llmsim.NewRequests([]string{task.Instance}, 139)
	plain, outs, err := Run(Config{Model: testModel(tok), Mode: Overlap, Grammar: backend, Tok: tok}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if outs[0] != task.Instance {
		t.Fatalf("plain output mismatch: %q", outs[0])
	}
	jfMet, outs2, err := Run(Config{Model: testModel(tok), Mode: Overlap, Grammar: backend, Tok: tok, JumpForward: true},
		llmsim.NewRequests([]string{task.Instance}, 139))
	if err != nil {
		t.Fatal(err)
	}
	if outs2[0] != task.Instance {
		t.Fatalf("jump-forward output mismatch: %q vs %q", outs2[0], task.Instance)
	}
	if jfMet.JumpForwardTokens == 0 {
		t.Fatal("no jump-forward tokens on a schema task")
	}
	if jfMet.DecodeSteps >= plain.DecodeSteps {
		t.Fatalf("jump-forward did not reduce steps: %d vs %d", jfMet.DecodeSteps, plain.DecodeSteps)
	}
}

func TestBatchScalesGPU(t *testing.T) {
	tok, backend := testSetup(t)
	one, _, err := Run(Config{Model: testModel(tok), Mode: Overlap, Grammar: backend, Tok: tok},
		llmsim.NewRequests(jsonTargets(1), 10))
	if err != nil {
		t.Fatal(err)
	}
	many, _, err := Run(Config{Model: testModel(tok), Mode: Overlap, Grammar: backend, Tok: tok},
		llmsim.NewRequests(jsonTargets(8), 10))
	if err != nil {
		t.Fatal(err)
	}
	if many.GPUTime <= one.GPUTime {
		t.Fatal("batch GPU time did not grow")
	}
	if many.Requests != 8 || one.Requests != 1 {
		t.Fatal("request counts wrong")
	}
}

func TestNoiseCorruptsUnconstrainedOnly(t *testing.T) {
	// Sanity for the Table 4 pipeline: noisy targets fail validation,
	// clean targets pass.
	tok, backend := testSetup(t)
	_ = backend
	targets := jsonTargets(1)
	rngSeed := int64(1)
	noisy, corrupted := llmsim.MakeNoisy(targets[0], llmsim.NoiseOptions{ProseProb: 1.0}, newRng(rngSeed))
	if !corrupted {
		t.Fatal("ProseProb=1 did not corrupt")
	}
	if noisy == targets[0] {
		t.Fatal("noisy equals clean")
	}
	reqs := llmsim.NewRequests([]string{noisy}, 10)
	_, outs, err := Run(Config{Model: testModel(tok), Mode: Unconstrained, Tok: tok}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(outs[0], targets[0]) {
		t.Fatalf("noisy output lost payload: %q", outs[0])
	}
}

func TestTTFTIncludesGrammarInitSerially(t *testing.T) {
	tok, backend := testSetup(t)
	init := 50 * time.Millisecond
	reqs := llmsim.NewRequests(jsonTargets(1), 100)
	ser, _, err := Run(Config{Model: testModel(tok), Mode: Serial, Grammar: backend, Tok: tok, GrammarInitTime: init}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	ovl, _, err := Run(Config{Model: testModel(tok), Mode: Overlap, Grammar: backend, Tok: tok, GrammarInitTime: init},
		llmsim.NewRequests(jsonTargets(1), 100))
	if err != nil {
		t.Fatal(err)
	}
	if ser.TTFT <= ovl.TTFT {
		t.Fatalf("serial TTFT (%v) should exceed overlapped TTFT (%v)", ser.TTFT, ovl.TTFT)
	}
	if ser.TTFT < init {
		t.Fatalf("serial TTFT (%v) below grammar init (%v)", ser.TTFT, init)
	}
}
