package engine

import (
	"testing"
	"time"

	"xgrammar/internal/baselines"
	"xgrammar/internal/builtin"
	"xgrammar/internal/llmsim"
	"xgrammar/internal/maskcache"
	"xgrammar/internal/pda"
	"xgrammar/internal/serve"
	"xgrammar/internal/tokenizer"
	"xgrammar/internal/workload"
)

// specSetup builds a pooled JSON backend with a configurable rollback
// window and a staggered request stream over JSON documents.
func specSetup(t testing.TB, maxHistory, n int) (*tokenizer.Tokenizer, baselines.Backend, []*llmsim.Request) {
	t.Helper()
	tok := tokenizer.BuildDefault(500)
	p, err := pda.Compile(builtin.JSON(), pda.AllOptimizations)
	if err != nil {
		t.Fatal(err)
	}
	cache := maskcache.Build(p, tok, maskcache.Options{ContextExpansion: true})
	pool := serve.NewSessionPool(p, cache, tok, maxHistory)
	backend := baselines.NewPooledXGBackend(pool, "json")
	return tok, backend, llmsim.NewRequests(workload.JSONDocs(n, 42), 64)
}

func runMode(t *testing.T, tok *tokenizer.Tokenizer, backend baselines.Backend, reqs []*llmsim.Request, mode Mode, spec SpecOptions, acc float64, dseed int64, jf bool) (StreamMetrics, []string) {
	t.Helper()
	streams := make([]*StreamRequest, len(reqs))
	for i, r := range reqs {
		streams[i] = &StreamRequest{Req: r, Arrival: time.Duration(i) * time.Millisecond, Grammar: backend}
	}
	met, outs, err := RunStream(StreamConfig{
		Model:       specModel(tok, llmsim.H100Llama8B(), acc, dseed),
		Mode:        mode,
		Tok:         tok,
		MaxBatch:    4,
		MaxSteps:    100000,
		JumpForward: jf,
		Spec:        spec,
	}, streams)
	if err != nil {
		t.Fatalf("mode %v: %v", mode, err)
	}
	return met, outs
}

// TestSpeculativeByteIdenticalAndFewerSteps is the core acceptance
// criterion: speculative decoding produces byte-identical outputs to the
// non-speculative baseline while spending fewer decode steps, with a
// positive acceptance rate.
func TestSpeculativeByteIdenticalAndFewerSteps(t *testing.T) {
	tok, backend, reqs := specSetup(t, 0, 6)
	base, baseOuts := runMode(t, tok, backend, reqs, Overlap, SpecOptions{}, 0, 0, false)
	sp, spOuts := runMode(t, tok, backend, reqs, Speculative,
		SpecOptions{DraftTokens: 4}, 0.8, 7, false)

	for i := range baseOuts {
		if baseOuts[i] != spOuts[i] {
			t.Fatalf("output %d differs:\n base %q\n spec %q", i, baseOuts[i], spOuts[i])
		}
		if baseOuts[i] != reqs[i].Target {
			t.Fatalf("output %d does not match target", i)
		}
	}
	if sp.SpecProposed == 0 || sp.SpecAccepted == 0 {
		t.Fatalf("no speculative activity: proposed %d accepted %d", sp.SpecProposed, sp.SpecAccepted)
	}
	if rate := sp.AcceptanceRate(); rate <= 0 || rate > 1 {
		t.Fatalf("acceptance rate %v out of range", rate)
	}
	if sp.DecodeSteps >= base.DecodeSteps {
		t.Fatalf("speculative used %d decode steps, baseline %d — no saving", sp.DecodeSteps, base.DecodeSteps)
	}
	// Every accepted draft token is a saved step: steps + accepted must
	// cover the same token work as the baseline's steps.
	if sp.DecodeSteps+sp.StepsSaved() < base.DecodeSteps {
		t.Fatalf("accounting hole: %d spec steps + %d saved < %d baseline steps",
			sp.DecodeSteps, sp.StepsSaved(), base.DecodeSteps)
	}
	if sp.OutputTokens != base.OutputTokens {
		t.Fatalf("output tokens differ: %d vs %d", sp.OutputTokens, base.OutputTokens)
	}
}

// TestSpeculativePerfectDraftSavesMost pins the best case: with a perfect
// draft model every window is fully accepted, so decode steps shrink by
// roughly the window factor.
func TestSpeculativePerfectDraftSavesMost(t *testing.T) {
	tok, backend, reqs := specSetup(t, 0, 4)
	base, baseOuts := runMode(t, tok, backend, reqs, Overlap, SpecOptions{}, 0, 0, false)
	sp, spOuts := runMode(t, tok, backend, reqs, Speculative,
		SpecOptions{DraftTokens: 4}, 1.0, 0, false)
	for i := range baseOuts {
		if baseOuts[i] != spOuts[i] {
			t.Fatalf("output %d differs", i)
		}
	}
	if sp.SpecDrafted != sp.SpecAccepted {
		t.Fatalf("perfect draft rejected: drafted %d accepted %d", sp.SpecDrafted, sp.SpecAccepted)
	}
	// A full window commits k+1 tokens per round; require at least a 2x
	// step reduction (conservative: windows truncate at target ends).
	if sp.DecodeSteps*2 > base.DecodeSteps {
		t.Fatalf("perfect draft saved too little: %d vs %d steps", sp.DecodeSteps, base.DecodeSteps)
	}
}

// TestSpeculativeWindowOverflowFallsBack pins the rollback-window
// satellite end to end: sessions whose history cannot retract the draft
// window must decode non-speculatively — correct outputs, no speculative
// savings, fallbacks counted.
func TestSpeculativeWindowOverflowFallsBack(t *testing.T) {
	tok, backend, reqs := specSetup(t, 3, 4) // history 3 < window 8
	sp, outs := runMode(t, tok, backend, reqs, Speculative,
		SpecOptions{DraftTokens: 8}, 0.9, 0, false)
	for i := range outs {
		if outs[i] != reqs[i].Target {
			t.Fatalf("fallback output %d wrong:\n got %q\n want %q", i, outs[i], reqs[i].Target)
		}
	}
	if sp.SpecFallbacks == 0 {
		t.Fatal("no fallbacks counted despite window > rollback history")
	}
	if sp.SpecProposed != 0 || sp.SpecAccepted != 0 {
		t.Fatalf("speculative work happened despite overflow: proposed %d", sp.SpecProposed)
	}
}

// TestSpeculativeWithJumpForward checks the two accelerations compose:
// jump-forward insertion after each committed round, draft windows in
// between, outputs still exact.
func TestSpeculativeWithJumpForward(t *testing.T) {
	tok, backend, reqs := specSetup(t, 0, 4)
	sp, outs := runMode(t, tok, backend, reqs, Speculative,
		SpecOptions{DraftTokens: 3}, 0.7, 11, true)
	for i := range outs {
		if outs[i] != reqs[i].Target {
			t.Fatalf("output %d wrong with jump-forward", i)
		}
	}
	if sp.SpecAccepted == 0 {
		t.Fatal("no speculative acceptance with jump-forward enabled")
	}
}

// TestRunSpeculativeMode covers the fixed-batch entry point with Mode
// Speculative.
func TestRunSpeculativeMode(t *testing.T) {
	tok, backend, reqs := specSetup(t, 0, 3)
	met, outs, err := Run(Config{
		Model:    specModel(tok, llmsim.H100Llama8B(), 0.9, 0),
		Mode:     Speculative,
		Grammar:  backend,
		Tok:      tok,
		MaxSteps: 100000,
		Spec:     SpecOptions{DraftTokens: 4},
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range outs {
		if outs[i] != reqs[i].Target {
			t.Fatalf("output %d wrong", i)
		}
	}
	if met.DecodeSteps == 0 || met.OutputTokens == 0 {
		t.Fatal("no work recorded")
	}
}
