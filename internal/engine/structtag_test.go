package engine

import (
	"testing"
	"time"

	"xgrammar"
	"xgrammar/internal/llmsim"
	"xgrammar/internal/structtag"
)

// tagTestSetup compiles a two-tag structural-tag backend over the shared
// 500-token test tokenizer.
func tagTestSetup(t testing.TB) (*structtag.Backend, *xgrammar.TokenizerInfo) {
	t.Helper()
	info := xgrammar.DefaultTokenizer(500)
	comp := xgrammar.NewCompiler(info)
	ts, err := comp.CompileStructuralTags(xgrammar.StructuralTags{
		{
			Begin: "<tool>",
			Grammar: xgrammar.GrammarSpec{Kind: xgrammar.KindJSONSchema, Source: `{
				"type": "object",
				"properties": {"a": {"type": "integer", "minimum": 0, "maximum": 99}},
				"required": ["a"]
			}`},
			End: "</tool>",
		},
		{
			Begin: "<ask>",
			Grammar: xgrammar.GrammarSpec{Kind: xgrammar.KindJSONSchema, Source: `{
				"type": "object",
				"properties": {"q": {"type": "string", "maxLength": 8}},
				"required": ["q"]
			}`},
			End: "</ask>",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return structtag.NewBackend(ts.Dispatch(), "tags"), info
}

// tagTargets interleave free text with schema-valid tagged segments.
func tagTargets() []string {
	return []string{
		`checking the weather <tool>{"a": 12}</tool> back to prose`,
		`<ask>{"q": "books"}</ask> plain tail with <brackets> that are not triggers`,
		`two calls: <tool>{"a": 7}</tool> and <ask>{"q": "go"}</ask> done`,
	}
}

// TestStructTagRunMatchesTargets teacher-forces tag-laden targets through
// the continuous engine in every constrained mode: outputs must reproduce
// the targets byte-identically, including across segment boundaries where
// BPE tokens span the end tag.
func TestStructTagRunMatchesTargets(t *testing.T) {
	backend, info := tagTestSetup(t)
	targets := tagTargets()
	for _, jf := range []bool{false, true} {
		for _, mode := range []Mode{Serial, Overlap} {
			reqs := llmsim.NewRequests(targets, 50)
			met, outs, err := Run(Config{
				Model: testModel(info.Raw()), Mode: mode, Grammar: backend,
				Tok: info.Raw(), JumpForward: jf,
			}, reqs)
			if err != nil {
				t.Fatalf("mode %v jf %v: %v", mode, jf, err)
			}
			for i, o := range outs {
				if o != targets[i] {
					t.Fatalf("mode %v jf %v: output %d = %q, want %q", mode, jf, i, o, targets[i])
				}
			}
			if met.OutputTokens == 0 {
				t.Fatalf("mode %v jf %v: degenerate metrics %+v", mode, jf, met)
			}
			if jf && met.JumpForwardTokens == 0 {
				t.Fatal("no jump-forward insertion inside constrained segments")
			}
		}
	}
}

// TestStructTagSpeculativeByteIdentical runs the same tag-laden stream in
// Overlap and Speculative modes: outputs must be byte-identical (tag
// sessions fall back to plain decoding inside a speculative run, mixed
// batches still speculate on their plain-grammar sequences).
func TestStructTagSpeculativeByteIdentical(t *testing.T) {
	backend, info := tagTestSetup(t)
	targets := tagTargets()
	run := func(mode Mode) []string {
		reqs := make([]*StreamRequest, len(targets))
		for i, r := range llmsim.NewRequests(targets, 50) {
			reqs[i] = &StreamRequest{Req: r, Arrival: time.Duration(i) * 100 * time.Microsecond, Grammar: backend}
		}
		_, outs, err := RunStream(StreamConfig{
			Model: specModel(info.Raw(), testProfile(), 0.9, 3),
			Mode:  mode, Tok: info.Raw(), JumpForward: true,
			Spec: SpecOptions{DraftTokens: 4},
		}, reqs)
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		return outs
	}
	plain := run(Overlap)
	spec := run(Speculative)
	for i := range plain {
		if plain[i] != spec[i] {
			t.Fatalf("output %d differs between overlap and speculative:\n%q\n%q", i, plain[i], spec[i])
		}
		if plain[i] != targets[i] {
			t.Fatalf("output %d = %q, want %q", i, plain[i], targets[i])
		}
	}
}

// TestStructTagContinuousBatching staggers tag requests so they join and
// leave a running batch, with pooled dispatcher sessions recycled across
// arrivals.
func TestStructTagContinuousBatching(t *testing.T) {
	backend, info := tagTestSetup(t)
	base := tagTargets()
	var targets []string
	for i := 0; i < 3; i++ {
		targets = append(targets, base...)
	}
	reqs := make([]*StreamRequest, len(targets))
	for i, r := range llmsim.NewRequests(targets, 30) {
		reqs[i] = &StreamRequest{Req: r, Arrival: time.Duration(i) * 150 * time.Microsecond, Grammar: backend}
	}
	met, outs, err := RunStream(StreamConfig{
		Model: testModel(info.Raw()), Mode: Overlap, Tok: info.Raw(),
		MaxBatch: 4, JumpForward: true,
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range outs {
		if o != targets[i] {
			t.Fatalf("output %d = %q, want %q", i, o, targets[i])
		}
	}
	if met.Joins != len(targets) || met.Leaves != len(targets) {
		t.Fatalf("join/leave accounting: %+v", met)
	}
	if met.PeakBatch > 4 {
		t.Fatalf("batch bound violated: peak %d", met.PeakBatch)
	}
}
