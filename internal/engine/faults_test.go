package engine

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"xgrammar/internal/backend"
	"xgrammar/internal/baselines"
	"xgrammar/internal/llmsim"
	"xgrammar/internal/tokenizer"
)

// faultModel wraps a real model backend and swaps in a scripted faulty
// sequence for chosen requests — the engine must fail exactly those
// sequences and decode the rest of the batch to completion.
type faultModel struct {
	inner  backend.Backend
	fault  func(req backend.Request, seq backend.Sequence) backend.Sequence
	opened atomic.Int64
	closed atomic.Int64
}

func (m *faultModel) Name() string           { return "fault" }
func (m *faultModel) Timing() backend.Timing { return m.inner.Timing() }
func (m *faultModel) Close() error           { return m.inner.Close() }

func (m *faultModel) Open(req backend.Request) (backend.Sequence, error) {
	s, err := m.inner.Open(req)
	if err != nil {
		return nil, err
	}
	m.opened.Add(1)
	if f := m.fault(req, s); f != nil {
		s = f
	}
	return &closeCountingSeq{Sequence: s, closed: &m.closed}, nil
}

type closeCountingSeq struct {
	backend.Sequence
	closed *atomic.Int64
}

func (s *closeCountingSeq) Close() {
	s.closed.Add(1)
	s.Sequence.Close()
}

// Draft forwards the inner sequence's speculator hook when present.
func (s *closeCountingSeq) Draft(ctx context.Context, k int) (backend.Proposer, bool) {
	if sp, ok := s.Sequence.(backend.Speculator); ok {
		return sp.Draft(ctx, k)
	}
	return nil, false
}

// errAfterSeq emits n good tokens, then fails every Next.
type errAfterSeq struct {
	backend.Sequence
	n   int
	err error
}

func (s *errAfterSeq) Next(ctx context.Context, mask []uint64) (int32, error) {
	if s.n <= 0 {
		return 0, s.err
	}
	s.n--
	return s.Sequence.Next(ctx, mask)
}

// badTokenSeq emits n good tokens, then returns a fixed malformed id.
type badTokenSeq struct {
	backend.Sequence
	n  int
	id int32
}

func (s *badTokenSeq) Next(ctx context.Context, mask []uint64) (int32, error) {
	if s.n <= 0 {
		return s.id, nil
	}
	s.n--
	return s.Sequence.Next(ctx, mask)
}

// slowSeq blocks inside Next until the engine's context is canceled.
type slowSeq struct{ backend.Sequence }

func (s *slowSeq) Next(ctx context.Context, _ []uint64) (int32, error) {
	<-ctx.Done()
	return 0, ctx.Err()
}

// runFaulted decodes reqs against the pooled JSON grammar with the given
// faulty model and returns the metrics, outputs, and model.
func runFaulted(t *testing.T, mode Mode, spec SpecOptions, fm *faultModel, n int) (StreamMetrics, []string, []*llmsim.Request, error) {
	t.Helper()
	_, grammar, reqs := specSetup(t, 0, n)
	streams := make([]*StreamRequest, len(reqs))
	for i, r := range reqs {
		streams[i] = &StreamRequest{Req: r, Arrival: time.Duration(i) * 100 * time.Microsecond, Grammar: grammar}
	}
	tok := tokenizer.BuildDefault(500)
	met, outs, err := RunStream(StreamConfig{
		Model: fm, Mode: mode, Tok: tok, MaxBatch: 4, Spec: spec,
	}, streams)
	return met, outs, reqs, err
}

// TestFaultMidStreamError pins the error taxonomy: a model backend failing
// mid-stream abandons only its own sequence — partial output returned, batch
// unaffected, every model sequence closed, join/leave balanced.
func TestFaultMidStreamError(t *testing.T) {
	tok := tokenizer.BuildDefault(500)
	boom := errors.New("backend exploded")
	fm := &faultModel{
		inner: testModel(tok),
		fault: func(req backend.Request, seq backend.Sequence) backend.Sequence {
			if req.ID == 2 {
				return &errAfterSeq{Sequence: seq, n: 3, err: boom}
			}
			return nil
		},
	}
	met, outs, reqs, err := runFaulted(t, Overlap, SpecOptions{}, fm, 4)
	if err != nil {
		t.Fatalf("run must survive a per-sequence model fault: %v", err)
	}
	if met.ModelErrors != 1 {
		t.Fatalf("ModelErrors = %d, want 1", met.ModelErrors)
	}
	for i, o := range outs {
		if i == 2 {
			if o == reqs[i].Target || !strings.HasPrefix(reqs[i].Target, o) {
				t.Fatalf("failed sequence output %q is not a strict prefix of target", o)
			}
			continue
		}
		if o != reqs[i].Target {
			t.Fatalf("healthy sequence %d corrupted by neighbor fault: %q", i, o)
		}
	}
	if met.Joins != 4 || met.Leaves != 4 {
		t.Fatalf("join/leave imbalance after fault: %+v", met)
	}
	if got := fm.closed.Load(); got != fm.opened.Load() || got != 4 {
		t.Fatalf("model sequences closed %d of %d opened, want 4", got, fm.opened.Load())
	}
}

// TestFaultMalformedToken covers backends returning ids the engine must
// reject: out-of-vocabulary and grammar-masked-out tokens both fail the
// sequence, not the run.
func TestFaultMalformedToken(t *testing.T) {
	tok := tokenizer.BuildDefault(500)
	closeBrace := tok.Encode("}")[0] // disallowed at a JSON document start
	fm := &faultModel{
		inner: testModel(tok),
		fault: func(req backend.Request, seq backend.Sequence) backend.Sequence {
			switch req.ID {
			case 0:
				return &badTokenSeq{Sequence: seq, n: 0, id: int32(tok.VocabSize() + 5)}
			case 3:
				return &badTokenSeq{Sequence: seq, n: 0, id: closeBrace}
			}
			return nil
		},
	}
	met, outs, reqs, err := runFaulted(t, Overlap, SpecOptions{}, fm, 4)
	if err != nil {
		t.Fatalf("run must survive malformed backend tokens: %v", err)
	}
	if met.ModelErrors != 2 {
		t.Fatalf("ModelErrors = %d, want 2", met.ModelErrors)
	}
	for _, i := range []int{1, 2} {
		if outs[i] != reqs[i].Target {
			t.Fatalf("healthy sequence %d corrupted: %q", i, outs[i])
		}
	}
	if met.Joins != met.Leaves {
		t.Fatalf("join/leave imbalance: %+v", met)
	}
}

// TestFaultSlowBackendCancel pins context plumbing: a backend stuck in Next
// observes the run context's cancellation, the engine drains every sequence
// cleanly (sessions back to the pool, model sequences closed) and returns
// partial outputs with the context error.
func TestFaultSlowBackendCancel(t *testing.T) {
	tok := tokenizer.BuildDefault(500)
	fm := &faultModel{
		inner: testModel(tok),
		fault: func(req backend.Request, seq backend.Sequence) backend.Sequence {
			if req.ID == 0 {
				return &slowSeq{Sequence: seq}
			}
			return nil
		},
	}
	_, grammar, reqs := specSetup(t, 0, 3)
	streams := make([]*StreamRequest, len(reqs))
	for i, r := range reqs {
		streams[i] = &StreamRequest{Req: r, Grammar: grammar}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	met, outs, err := RunStream(StreamConfig{
		Model: fm, Mode: Overlap, Tok: tok, Ctx: ctx,
	}, streams)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if outs == nil {
		t.Fatal("canceled run must still return partial outputs")
	}
	if met.Joins != met.Leaves {
		t.Fatalf("canceled run leaked sequences: %+v", met)
	}
	if got := fm.closed.Load(); got != fm.opened.Load() {
		t.Fatalf("model sequences closed %d of %d opened", got, fm.opened.Load())
	}
	if met.ModelErrors == 0 {
		t.Fatal("stuck sequence not counted as model error")
	}
}

// TestFaultSpeculativeVerifyError injects a failure mid-verify: the
// confirmed prefix stays committed, the sequence leaves cleanly, and the
// rest of the speculative batch still matches its targets.
func TestFaultSpeculativeVerifyError(t *testing.T) {
	tok := tokenizer.BuildDefault(500)
	boom := errors.New("verify lost")
	fm := &faultModel{
		inner: specModel(tok, testProfile(), 0.9, 7),
		fault: func(req backend.Request, seq backend.Sequence) backend.Sequence {
			if req.ID == 2 {
				return &errAfterSeq{Sequence: seq, n: 6, err: boom}
			}
			return nil
		},
	}
	met, outs, reqs, err := runFaulted(t, Speculative, SpecOptions{DraftTokens: 4}, fm, 3)
	if err != nil {
		t.Fatalf("speculative run must survive a verify fault: %v", err)
	}
	if met.ModelErrors != 1 {
		t.Fatalf("ModelErrors = %d, want 1", met.ModelErrors)
	}
	for _, i := range []int{0, 1} {
		if outs[i] != reqs[i].Target {
			t.Fatalf("healthy speculative sequence %d corrupted: %q", i, outs[i])
		}
	}
	if !strings.HasPrefix(reqs[2].Target, outs[2]) {
		t.Fatalf("failed sequence output %q not a prefix of its target", outs[2])
	}
	if met.Joins != met.Leaves {
		t.Fatalf("join/leave imbalance: %+v", met)
	}
}

// TestFaultPoolReuseAfterFailure checks failed sequences return their pooled
// grammar sessions: a second wave over the same pool must reuse sessions.
func TestFaultPoolReuseAfterFailure(t *testing.T) {
	tok, grammar, reqs := specSetup(t, 0, 6)
	boom := errors.New("flaky backend")
	fm := &faultModel{
		inner: testModel(tok),
		fault: func(req backend.Request, seq backend.Sequence) backend.Sequence {
			if req.ID%2 == 0 {
				return &errAfterSeq{Sequence: seq, n: 2, err: boom}
			}
			return nil
		},
	}
	streams := make([]*StreamRequest, len(reqs))
	for i, r := range reqs {
		streams[i] = &StreamRequest{Req: r, Arrival: time.Duration(i) * time.Millisecond, Grammar: grammar}
	}
	met, _, err := RunStream(StreamConfig{
		Model: fm, Mode: Overlap, Tok: tok, MaxBatch: 2,
	}, streams)
	if err != nil {
		t.Fatal(err)
	}
	if met.ModelErrors != 3 {
		t.Fatalf("ModelErrors = %d, want 3", met.ModelErrors)
	}
	if st := grammar.(*baselines.PooledXGBackend).Pool().Stats(); st.Reused == 0 {
		t.Fatalf("failed sequences did not return sessions to the pool: %+v", st)
	}
}
