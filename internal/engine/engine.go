// Package engine is the serving engine co-designed with the grammar runtime
// (§3.5): continuous-batching decoding where sequences join and leave the
// running batch mid-decode, each step's wall time combines the model
// backend's modelled accelerator time (backend.Timing — the llmsim latency
// profile for simulation backends) with measured grammar CPU time — either
// serialized (mask generation on the critical path) or overlapped (the
// whole batch's masks filled through a persistent worker pool while the
// GPU step runs, synchronizing before sampling). Jump-forward decoding
// (Appendix B) inserts forced tokens without spending decode steps.
//
// The engine never names a model implementation: every sequence's tokens
// come from a backend.Sequence (teacher-forced simulation, an HTTP model
// server, ...), and the grammar side stays in baselines.Backend sessions.
package engine

import (
	"time"

	"xgrammar/internal/backend"
	"xgrammar/internal/baselines"
	"xgrammar/internal/tokenizer"
)

// Mode selects how grammar work is scheduled against the GPU.
type Mode int

// Scheduling modes.
const (
	// Unconstrained disables grammar checking entirely.
	Unconstrained Mode = iota
	// Serial puts mask generation on the critical path (vLLM/llama.cpp
	// style in the paper's comparison).
	Serial
	// Overlap hides mask generation behind the GPU decode step and
	// synchronizes before sampling (§3.5).
	Overlap
	// Speculative is Overlap plus draft-verify decoding: each round the
	// backend's draft hook proposes a token window, the grammar
	// speculatively accepts it (capturing per-position masks for the verify
	// pass), and the rejected suffix is retracted through the matcher's
	// rollback window — sequences advance by accepted+1 tokens per GPU step.
	Speculative
)

func (m Mode) String() string {
	switch m {
	case Unconstrained:
		return "unconstrained"
	case Serial:
		return "serial"
	case Speculative:
		return "speculative"
	default:
		return "overlap"
	}
}

// overlapped reports whether grammar work is hidden behind the GPU step
// (Overlap scheduling, which Speculative builds on).
func (m Mode) overlapped() bool { return m == Overlap || m == Speculative }

// Config describes one fixed-batch engine configuration (the Run entry
// point); RunStream takes the richer StreamConfig.
type Config struct {
	// Model is the model backend sequences decode against. Required.
	Model backend.Backend
	Mode  Mode
	// Grammar supplies grammar sessions; ignored when Mode==Unconstrained.
	Grammar baselines.Backend
	Tok     *tokenizer.Tokenizer
	// JumpForward enables forced-token insertion when the grammar session
	// supports it.
	JumpForward bool
	// GrammarInitTime is the measured preprocessing cost (mask cache
	// build); overlapped with prefill in Overlap mode (§3.5).
	GrammarInitTime time.Duration
	// MaxSteps guards against runaway generations.
	MaxSteps int
	// Spec configures draft-verify decoding when Mode is Speculative.
	Spec SpecOptions
}

// Metrics aggregates one run.
type Metrics struct {
	Requests          int
	OutputTokens      int
	DecodeSteps       int
	JumpForwardTokens int
	// TTFT is the mean time from request arrival to first token (prefill +
	// grammar init + first decode step, plus any queueing).
	TTFT time.Duration
	// TPOT is the mean, over requests, of decode latency per output token.
	TPOT time.Duration
	// MaskCPU is the total measured grammar CPU time.
	MaskCPU time.Duration
	// GPUTime is the total modelled GPU time (the backend's Timing).
	GPUTime time.Duration
	// Wall is the total modelled wall time.
	Wall time.Duration
}

// TokensPerSecond is the run's output-token throughput.
func (m Metrics) TokensPerSecond() float64 {
	if m.Wall <= 0 {
		return 0
	}
	return float64(m.OutputTokens) / m.Wall.Seconds()
}

// seqState is the per-sequence decoding state shared by the continuous
// scheduler.
type seqState struct {
	req       *backend.Request
	seq       backend.Sequence
	session   baselines.Session
	idx       int // position in the caller's request slice
	outTokens int
	done      bool
	failed    bool
	finishAt  time.Duration
	output    []byte
}

func (s *seqState) index() int { return s.idx }

// Run decodes all requests as one fixed batch: the continuous-batching
// scheduler with every request arriving at time zero and no batch bound.
func Run(cfg Config, reqs []*backend.Request) (Metrics, []string, error) {
	streams := make([]*StreamRequest, len(reqs))
	for i, r := range reqs {
		streams[i] = &StreamRequest{Req: r, GrammarInit: cfg.GrammarInitTime}
	}
	sm, outs, err := RunStream(StreamConfig{
		Model:       cfg.Model,
		Mode:        cfg.Mode,
		Grammar:     cfg.Grammar,
		Tok:         cfg.Tok,
		JumpForward: cfg.JumpForward,
		MaxSteps:    cfg.MaxSteps,
		Spec:        cfg.Spec,
	}, streams)
	return sm.Metrics, outs, err
}

// consume applies an emitted token to the sequence state.
func (s *seqState) consume(tok *tokenizer.Tokenizer, id int32) {
	if id == tokenizer.EosID {
		s.done = true
		return
	}
	b := tok.TokenBytes(id)
	s.output = append(s.output, b...)
	s.outTokens++
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
