// Package engine simulates an LLM serving engine co-designed with the
// grammar engine (§3.5): batched decoding where each step's wall time
// combines modelled GPU time (from a llmsim.Profile) with measured grammar
// CPU time, either serialized (mask generation on the critical path) or
// overlapped (mask generation hidden behind the GPU step, synchronizing
// before sampling). Jump-forward decoding (Appendix B) inserts forced
// tokens without spending decode steps.
package engine

import (
	"fmt"
	"time"

	"xgrammar/internal/baselines"
	"xgrammar/internal/bitset"
	"xgrammar/internal/llmsim"
	"xgrammar/internal/tokenizer"
)

// Mode selects how grammar work is scheduled against the GPU.
type Mode int

// Scheduling modes.
const (
	// Unconstrained disables grammar checking entirely.
	Unconstrained Mode = iota
	// Serial puts mask generation on the critical path (vLLM/llama.cpp
	// style in the paper's comparison).
	Serial
	// Overlap hides mask generation behind the GPU decode step and
	// synchronizes before sampling (§3.5).
	Overlap
)

func (m Mode) String() string {
	switch m {
	case Unconstrained:
		return "unconstrained"
	case Serial:
		return "serial"
	default:
		return "overlap"
	}
}

// Config describes one engine configuration.
type Config struct {
	Profile llmsim.Profile
	Mode    Mode
	// Backend supplies grammar sessions; ignored when Mode==Unconstrained.
	Backend baselines.Backend
	Tok     *tokenizer.Tokenizer
	// JumpForward enables forced-token insertion when the backend session
	// supports it.
	JumpForward bool
	// GrammarInitTime is the measured preprocessing cost (mask cache
	// build); overlapped with prefill in Overlap mode (§3.5).
	GrammarInitTime time.Duration
	// MaxSteps guards against runaway generations.
	MaxSteps int
}

// Metrics aggregates one batch run.
type Metrics struct {
	Requests          int
	OutputTokens      int
	DecodeSteps       int
	JumpForwardTokens int
	// TTFT is the mean time to first token (prefill + grammar init +
	// first decode step).
	TTFT time.Duration
	// TPOT is the mean, over requests, of decode latency per output token.
	TPOT time.Duration
	// MaskCPU is the total measured grammar CPU time.
	MaskCPU time.Duration
	// GPUTime is the total modelled GPU time.
	GPUTime time.Duration
	// Wall is the total modelled decode wall time.
	Wall time.Duration
}

type seqState struct {
	req       *llmsim.Request
	session   baselines.Session
	emitted   int
	outTokens int
	done      bool
	finishAt  time.Duration
	output    []byte
}

// Run decodes all requests as one static batch and returns metrics plus the
// generated text per request.
func Run(cfg Config, reqs []*llmsim.Request) (Metrics, []string, error) {
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = 8192
	}
	var met Metrics
	met.Requests = len(reqs)
	seqs := make([]*seqState, len(reqs))
	maxPrompt := 0
	for i, r := range reqs {
		s := &seqState{req: r}
		if cfg.Mode != Unconstrained {
			s.session = cfg.Backend.NewSession()
		}
		seqs[i] = s
		if r.PromptTokens > maxPrompt {
			maxPrompt = r.PromptTokens
		}
	}

	// Prefill phase. Grammar preprocessing overlaps with prefill in Overlap
	// mode (Figure 8); otherwise it precedes decoding.
	prefill := cfg.Profile.Prefill(maxPrompt)
	var clock time.Duration
	switch cfg.Mode {
	case Overlap:
		clock = maxDur(prefill, cfg.GrammarInitTime)
	case Serial:
		clock = prefill + cfg.GrammarInitTime
	default:
		clock = prefill
	}
	// TPOT measures decode latency per token, excluding prefill and grammar
	// preprocessing (which land in TTFT instead, as in the paper's TTFT
	// deltas of Figure 12).
	decodeStart := clock
	firstStepDone := false

	mask := bitset.New(cfg.Tok.VocabSize())
	live := len(seqs)
	for step := 0; live > 0 && step < cfg.MaxSteps; step++ {
		gpu := cfg.Profile.DecodeStep(live)
		var maskCPU time.Duration
		// Grammar phase: mask generation per live sequence (measured).
		type pending struct {
			s    *seqState
			next int32
		}
		var todo []pending
		for _, s := range seqs {
			if s.done {
				continue
			}
			next := s.nextToken(cfg.Tok)
			if cfg.Mode != Unconstrained {
				t0 := time.Now()
				s.session.FillMask(mask)
				maskCPU += time.Since(t0)
				if !mask.Get(int(next)) {
					return met, nil, fmt.Errorf("engine: target token %d (%q) masked out (output so far %q)",
						next, cfg.Tok.TokenBytes(next), s.output)
				}
			}
			todo = append(todo, pending{s: s, next: next})
		}
		// Wall-clock for the step (§3.5): overlapped engines hide grammar
		// CPU behind the GPU step and synchronize before sampling.
		var stepWall time.Duration
		if cfg.Mode == Overlap {
			stepWall = maxDur(gpu, maskCPU) + cfg.Profile.SamplePerStep
		} else {
			stepWall = gpu + maskCPU + cfg.Profile.SamplePerStep
		}
		clock += stepWall
		met.GPUTime += gpu
		met.MaskCPU += maskCPU
		met.DecodeSteps++
		if !firstStepDone {
			met.TTFT = clock
			firstStepDone = true
		}

		// Sampling + acceptance phase.
		for _, p := range todo {
			s := p.s
			if cfg.Mode != Unconstrained {
				if err := s.session.Accept(p.next); err != nil {
					return met, nil, fmt.Errorf("engine: %w", err)
				}
			}
			s.consume(cfg.Tok, p.next)
			if s.done {
				s.finishAt = clock
				live--
				continue
			}
			// Jump-forward decoding (Appendix B): measured CPU is charged
			// to the step (it runs on the grammar thread).
			if cfg.JumpForward && cfg.Mode != Unconstrained {
				if jf, ok := s.session.(baselines.JumpForwarder); ok {
					t0 := time.Now()
					forced := jf.JumpForward()
					if forced != "" && s.emitted+len(forced) <= len(s.req.Target) &&
						s.req.Target[s.emitted:s.emitted+len(forced)] == forced {
						if err := jf.AcceptString(forced); err != nil {
							return met, nil, fmt.Errorf("engine: jump-forward: %w", err)
						}
						s.output = append(s.output, forced...)
						s.emitted += len(forced)
						n := len(cfg.Tok.Encode(forced))
						s.outTokens += n
						met.JumpForwardTokens += n
					}
					elapsed := time.Since(t0)
					met.MaskCPU += elapsed
					clock += elapsed
				}
			}
		}
	}

	outs := make([]string, len(seqs))
	var tpotSum time.Duration
	finished := 0
	for i, s := range seqs {
		outs[i] = string(s.output)
		met.OutputTokens += s.outTokens
		if s.done && s.outTokens > 0 {
			tpotSum += (s.finishAt - decodeStart) / time.Duration(s.outTokens)
			finished++
		}
	}
	if finished > 0 {
		met.TPOT = tpotSum / time.Duration(finished)
	} else if met.DecodeSteps > 0 {
		// No request finished (step-capped run): fall back to wall time per
		// decode step, which is the same metric for fixed-length outputs.
		met.TPOT = (clock - decodeStart) / time.Duration(met.DecodeSteps)
	}
	met.Wall = clock
	return met, outs, nil
}

// nextToken returns the next token the teacher-forced model proposes: the
// first token of the remaining target, or EOS at the end.
func (s *seqState) nextToken(tok *tokenizer.Tokenizer) int32 {
	if s.emitted >= len(s.req.Target) {
		return tokenizer.EosID
	}
	ids := tok.Encode(s.req.Target[s.emitted:])
	return ids[0]
}

// consume applies an emitted token to the sequence state.
func (s *seqState) consume(tok *tokenizer.Tokenizer, id int32) {
	if id == tokenizer.EosID {
		s.done = true
		return
	}
	b := tok.TokenBytes(id)
	s.output = append(s.output, b...)
	s.emitted += len(b)
	s.outTokens++
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
