package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"xgrammar/internal/backend"
	"xgrammar/internal/baselines"
	"xgrammar/internal/bitset"
	"xgrammar/internal/maskcache"
	"xgrammar/internal/quantile"
	"xgrammar/internal/serve"
	"xgrammar/internal/spec"
	"xgrammar/internal/structtag"
	"xgrammar/internal/tokenizer"
)

// StreamRequest is one request in a continuous-batching run: it arrives at
// Arrival (simulated time), brings its own grammar backend (falling back to
// the engine-wide one), and charges GrammarInit when it is admitted — the
// compile/cache-resolve cost, hidden behind prefill in Overlap mode.
type StreamRequest struct {
	Req     *backend.Request
	Arrival time.Duration
	// Grammar supplies this request's grammar sessions; nil falls back to
	// StreamConfig.Grammar. When both are nil (or the mode is Unconstrained)
	// the sequence decodes without grammar constraints.
	Grammar baselines.Backend
	// GrammarInit is the grammar resolve cost charged at admission (zero for
	// a compiled-grammar cache hit).
	GrammarInit time.Duration
	// ForcedPrefix is a byte prefix the grammar session starts past — the
	// templated scaffold shared across requests. Warm-capable backends
	// (baselines.WarmBackend) join through the acquisition layer and restore
	// it from cached checkpoints; other backends replay it cold at
	// admission. Output is byte-identical either way.
	ForcedPrefix []byte
}

// StreamConfig configures a continuous-batching run.
type StreamConfig struct {
	// Model is the model backend every sequence decodes against. Required.
	Model backend.Backend
	Mode  Mode
	// Grammar is the default grammar backend for requests without their own.
	Grammar baselines.Backend
	Tok     *tokenizer.Tokenizer
	// MaxBatch bounds the number of sequences decoding concurrently; 0 is
	// unbounded. Arrived requests beyond the bound queue until a running
	// sequence finishes.
	MaxBatch int
	// JumpForward enables forced-token insertion for sessions supporting it.
	JumpForward bool
	// MaxSteps guards against runaway generations.
	MaxSteps int
	// Pool is the persistent worker pool used to fill a whole batch's masks
	// in Overlap mode; nil uses the process-wide shared pool. Serial mode
	// fills sequentially by definition (grammar work on the critical path).
	Pool *serve.WorkerPool
	// Spec configures draft-verify decoding when Mode is Speculative.
	Spec SpecOptions
	// Ctx cancels the run: in-flight sequences leave the batch cleanly
	// (sessions released, partial outputs returned) and RunStream returns
	// the context's error. Nil means no cancellation.
	Ctx context.Context
}

// SpecOptions parameterizes speculative draft-verify decoding (Mode
// Speculative). The draft model itself lives on the model backend (its
// Speculator hook; simllm.TeacherOptions configures the simulated one) —
// and because only verified tokens are ever committed, outputs are
// byte-identical to a non-speculative run of the same requests regardless
// of draft quality.
type SpecOptions struct {
	// DraftTokens is the draft window k per decode round (default 4).
	// Sequences whose rollback history cannot retract a full window fall
	// back to non-speculative decoding (counted in SpecFallbacks).
	DraftTokens int
}

func (o SpecOptions) draftTokens() int {
	if o.DraftTokens <= 0 {
		return 4
	}
	return o.DraftTokens
}

// StreamMetrics extends Metrics with continuous-batching observations.
type StreamMetrics struct {
	Metrics
	// PeakBatch is the largest number of concurrently decoding sequences.
	PeakBatch int
	// Joins and Leaves count sequences entering and exiting the running
	// batch mid-run.
	Joins, Leaves int
	// QueueWait is the mean time requests spent queued after arrival
	// (waiting for a batch slot).
	QueueWait time.Duration
	// FillWall is the total wall time of the per-step batch mask fills
	// (equal to MaskCPU when fills are sequential).
	FillWall time.Duration
	// FillP50 and FillP99 are percentiles of per-sequence mask fill latency.
	FillP50, FillP99 time.Duration
	// ModelWall is the real elapsed time spent inside the model backend
	// (Next/Draft calls). For simulation backends it is tokenization
	// overhead and stays off the modelled clock; for measured backends
	// (HTTP) it is the dominant real cost.
	ModelWall time.Duration
	// ModelErrors counts sequences abandoned because their model backend
	// failed mid-stream (the sequence leaves the batch cleanly and its
	// partial output is returned; other sequences are unaffected).
	ModelErrors int
	// SpecProposed and SpecDrafted count draft tokens offered by the draft
	// model and speculatively accepted by the grammar; SpecAccepted counts
	// those confirmed by the target model — each confirmed token advanced
	// its sequence without a sampling step of its own.
	SpecProposed, SpecDrafted, SpecAccepted int
	// SpecFallbacks counts per-sequence decode steps that fell back to
	// non-speculative decoding because the draft window exceeded the
	// session's rollback history.
	SpecFallbacks int
}

// AcceptanceRate is the fraction of proposed draft tokens the target model
// confirmed (0 when nothing was proposed).
func (m StreamMetrics) AcceptanceRate() float64 {
	if m.SpecProposed == 0 {
		return 0
	}
	return float64(m.SpecAccepted) / float64(m.SpecProposed)
}

// StepsSaved is the number of per-sequence decode steps speculative
// acceptance avoided: every confirmed draft token advanced its sequence
// without its own sampling step. Under continuous batching several
// sequences share one GPU round, so batch rounds saved is smaller —
// compare DecodeSteps against a non-speculative run for that.
func (m StreamMetrics) StepsSaved() int { return m.SpecAccepted }

// streamSeq is one running sequence.
type streamSeq struct {
	seqState
	sr        *StreamRequest
	mask      *bitset.Bitset
	startedAt time.Duration // decode start (admission charge complete)
	firstTok  bool
	fillDur   time.Duration
	next      int32
	nextErr   error
	// Speculative-mode scratch: the round's draft-verify result, whether
	// this round overflowed the rollback window (counted as a fallback),
	// and reused closures so the steady-state round allocates nothing per
	// step.
	specW         spec.Window
	specRes       spec.Result
	specErr       error
	specRan       bool
	specOverflow  bool
	specFill      func()
	specSample    spec.Sampler
	specSampleErr error
}

// specSession is the session surface the speculative path needs: the
// draft-verify sequencer plus the cached mask fill. serve.Session (the
// pooled backend) satisfies it.
type specSession interface {
	spec.Sequencer
	Fill() maskcache.FillStats
}

// runner holds the mutable state of one continuous-batching run.
type runner struct {
	cfg          StreamConfig
	ctx          context.Context
	timing       backend.Timing
	clock        time.Duration
	running      []*streamSeq
	finishedSeqs []*streamSeq
	maskFree     []*bitset.Bitset
	fillLats     []time.Duration
	met          StreamMetrics
	ttftSum      time.Duration
	ttftN        int
	waitSum      time.Duration
	// decodeWall accumulates step wall time (excluding admission charges)
	// for the step-capped TPOT fallback.
	decodeWall time.Duration
}

// RunStream decodes reqs with continuous batching (§3.5 co-design): arrived
// requests join the running batch as slots free up, finished sequences leave
// immediately, and each decode step combines modelled GPU time with measured
// grammar time — overlapped and batch-parallel in Overlap mode, serialized
// in Serial mode. Outputs are returned in the order of reqs.
func RunStream(cfg StreamConfig, reqs []*StreamRequest) (StreamMetrics, []string, error) {
	if cfg.Model == nil {
		return StreamMetrics{}, nil, errors.New("engine: StreamConfig.Model is required")
	}
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = 8192
	}
	r := &runner{cfg: cfg, ctx: cfg.Ctx, timing: cfg.Model.Timing()}
	if r.ctx == nil {
		r.ctx = context.Background()
	}
	r.met.Requests = len(reqs)

	// Admission order: arrival time, ties by request order.
	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return reqs[order[a]].Arrival < reqs[order[b]].Arrival
	})
	outputs := make([][]byte, len(reqs))
	nextPending := 0

	for r.met.DecodeSteps < cfg.MaxSteps && (len(r.running) > 0 || nextPending < len(order)) {
		if r.ctx.Err() != nil {
			break
		}
		// Idle engine: jump to the next arrival.
		if len(r.running) == 0 && nextPending < len(order) && reqs[order[nextPending]].Arrival > r.clock {
			r.clock = reqs[order[nextPending]].Arrival
		}
		// Admission: fill free slots with arrived requests.
		var admitted []*streamSeq
		for nextPending < len(order) &&
			(cfg.MaxBatch <= 0 || len(r.running) < cfg.MaxBatch) &&
			reqs[order[nextPending]].Arrival <= r.clock {
			sr := reqs[order[nextPending]]
			s, err := r.admit(sr, order[nextPending])
			if err != nil {
				return r.met, nil, err
			}
			admitted = append(admitted, s)
			nextPending++
		}
		if len(admitted) > 0 {
			r.chargeAdmission(admitted)
		}
		if len(r.running) > r.met.PeakBatch {
			r.met.PeakBatch = len(r.running)
		}

		if err := r.decodeStep(); err != nil {
			return r.met, nil, err
		}
		// Collect finished sequences (leave the batch, release sessions).
		for i := 0; i < len(r.running); {
			s := r.running[i]
			if !s.done {
				i++
				continue
			}
			outputs[s.index()] = s.output
			r.leave(i)
		}
	}
	// Step-capped or canceled: flush partial outputs and release every
	// still-running sequence cleanly (sessions back to their pools).
	for len(r.running) > 0 {
		s := r.running[0]
		s.finishAt = r.clock
		outputs[s.index()] = s.output
		r.leave(0)
	}

	outs := make([]string, len(reqs))
	var tpotSum time.Duration
	finished := 0
	for i := range reqs {
		outs[i] = string(outputs[i])
	}
	for _, s := range r.finishedSeqs {
		r.met.OutputTokens += s.outTokens
		if s.done && !s.failed && s.outTokens > 0 {
			tpotSum += (s.finishAt - s.startedAt) / time.Duration(s.outTokens)
			finished++
		}
	}
	if finished > 0 {
		r.met.TPOT = tpotSum / time.Duration(finished)
	} else if r.met.DecodeSteps > 0 {
		// No request finished (step-capped run): fall back to wall time per
		// decode step, which is the same metric for fixed-length outputs.
		r.met.TPOT = r.decodeWall / time.Duration(r.met.DecodeSteps)
	}
	if r.ttftN > 0 {
		r.met.TTFT = r.ttftSum / time.Duration(r.ttftN)
	}
	if r.met.Joins > 0 {
		r.met.QueueWait = r.waitSum / time.Duration(r.met.Joins)
	}
	fillQ := quantile.Durations(r.fillLats, 0.50, 0.99)
	r.met.FillP50, r.met.FillP99 = fillQ[0], fillQ[1]
	r.met.Wall = r.clock
	if err := r.ctx.Err(); err != nil {
		return r.met, outs, err
	}
	return r.met, outs, nil
}

// admit builds the running-sequence state for one request: the model
// sequence is opened on the backend, and the grammar session acquired —
// from the grammar backend's session pool in the pooled configuration. The
// model sees the request with ID rewritten to its run index, so
// deterministic simulation backends key their per-sequence randomness the
// same way however callers number their requests.
func (r *runner) admit(sr *StreamRequest, index int) (*streamSeq, error) {
	s := &streamSeq{sr: sr, firstTok: true}
	s.req = sr.Req
	s.idx = index
	rq := *sr.Req
	rq.ID = index
	seq, err := r.cfg.Model.Open(rq)
	if err != nil {
		return nil, fmt.Errorf("engine: open model sequence for %s: %w", sr.Req, err)
	}
	s.seq = seq
	grammar := sr.Grammar
	if grammar == nil {
		grammar = r.cfg.Grammar
	}
	if r.cfg.Mode != Unconstrained && grammar != nil {
		if len(sr.ForcedPrefix) > 0 {
			if wb, ok := grammar.(baselines.WarmBackend); ok {
				sess, _, err := wb.NewWarmSession(sr.ForcedPrefix)
				if err != nil {
					return nil, fmt.Errorf("engine: warm-start session for %s: %w", sr.Req, err)
				}
				s.session = sess
			} else {
				sess := grammar.NewSession()
				jf, ok := sess.(baselines.JumpForwarder)
				if !ok {
					return nil, fmt.Errorf("engine: grammar backend %s cannot accept a forced prefix", grammar.Name())
				}
				if err := jf.AcceptString(string(sr.ForcedPrefix)); err != nil {
					return nil, fmt.Errorf("engine: forced prefix for %s: %w", sr.Req, err)
				}
				s.session = sess
			}
		} else {
			s.session = grammar.NewSession()
		}
		if n := len(r.maskFree); n > 0 {
			s.mask = r.maskFree[n-1]
			r.maskFree = r.maskFree[:n-1]
		} else {
			s.mask = bitset.New(r.cfg.Tok.VocabSize())
		}
	}
	r.waitSum += r.clock - sr.Arrival
	r.met.Joins++
	r.running = append(r.running, s)
	return s, nil
}

// chargeAdmission advances the clock for a group of newly admitted
// sequences: prompt prefill plus grammar initialization, with the grammar
// work hidden behind prefill in Overlap mode (Figure 8) and serialized
// otherwise. Grammar resolves within the group overlap each other (cache
// singleflight), so the group charges the max, not the sum.
func (r *runner) chargeAdmission(admitted []*streamSeq) {
	maxPrompt := 0
	var maxInit time.Duration
	for _, s := range admitted {
		if s.req.PromptTokens > maxPrompt {
			maxPrompt = s.req.PromptTokens
		}
		if s.sr.GrammarInit > maxInit {
			maxInit = s.sr.GrammarInit
		}
	}
	prefill := r.timing.Prefill(maxPrompt)
	switch {
	case r.cfg.Mode == Unconstrained:
		r.clock += prefill
	case r.cfg.Mode.overlapped():
		r.clock += maxDur(prefill, maxInit)
	default: // Serial
		r.clock += prefill + maxInit
	}
	for _, s := range admitted {
		s.startedAt = r.clock
	}
}

// leave removes running[i] from the batch, recycling its mask buffer,
// closing its model sequence, and returning its grammar session to the pool
// when the backend supports it.
func (r *runner) leave(i int) {
	s := r.running[i]
	if s.seq != nil {
		s.seq.Close()
		s.seq = nil
	}
	if s.session != nil {
		if c, ok := s.session.(interface{ Close() }); ok {
			c.Close()
		}
		s.session = nil
	}
	if s.mask != nil {
		r.maskFree = append(r.maskFree, s.mask)
		s.mask = nil
	}
	r.running[i] = r.running[len(r.running)-1]
	r.running = r.running[:len(r.running)-1]
	r.met.Leaves++
	r.finishedSeqs = append(r.finishedSeqs, s)
}

// failSeq abandons a sequence whose model backend failed: it is marked done
// (the collect loop returns its partial output and releases its session)
// and counted in ModelErrors. The rest of the batch decodes on.
func (r *runner) failSeq(s *streamSeq, err error) {
	if s.done {
		return
	}
	s.done, s.failed = true, true
	s.nextErr = err
	s.finishAt = r.clock
	r.met.ModelErrors++
}

// checkToken validates a model-produced token id against the vocabulary and
// the sequence's grammar mask — a malformed backend (an HTTP model server
// returning out-of-range or disallowed ids) fails its own sequence, never
// the run.
func (r *runner) checkToken(s *streamSeq, id int32) error {
	if id != tokenizer.EosID && (id < 0 || int(id) >= r.cfg.Tok.VocabSize()) {
		return fmt.Errorf("engine: model backend returned out-of-range token %d (vocab %d)", id, r.cfg.Tok.VocabSize())
	}
	if s.session != nil && !s.mask.Get(int(id)) {
		return fmt.Errorf("engine: model backend returned masked-out token %d (%q)", id, r.cfg.Tok.TokenBytes(id))
	}
	return nil
}

// decodeStep runs one batched decode step over the running sequences.
func (r *runner) decodeStep() error {
	if r.cfg.Mode == Speculative {
		return r.decodeStepSpec()
	}
	live := len(r.running)
	if live == 0 {
		return nil
	}
	gpu := r.timing.DecodeStep(live)

	// Grammar phase: one mask per constrained sequence. Overlap mode fills
	// the whole batch through the persistent worker pool (work stealing
	// across sequences); Serial mode keeps grammar work on the critical path.
	var fills []*streamSeq
	for _, s := range r.running {
		if s.session != nil {
			fills = append(fills, s)
		}
	}
	var fillWall, maskCPU time.Duration
	if len(fills) > 0 {
		t0 := time.Now()
		if r.cfg.Mode == Overlap && len(fills) > 1 {
			pool := r.cfg.Pool
			if pool == nil {
				pool = serve.DefaultPool()
			}
			pool.Run(len(fills), func(i int) {
				s := fills[i]
				f0 := time.Now()
				s.session.FillMask(s.mask)
				s.fillDur = time.Since(f0)
			})
		} else {
			for _, s := range fills {
				f0 := time.Now()
				s.session.FillMask(s.mask)
				s.fillDur = time.Since(f0)
			}
		}
		fillWall = time.Since(t0)
		for _, s := range fills {
			maskCPU += s.fillDur
			r.fillLats = append(r.fillLats, s.fillDur)
		}
	}

	// Model phase: the backend picks each sequence's next token under its
	// mask. Untimed on the simulated clock (tokenization/sampling is the
	// model's work, charged through the timing profile); ModelWall records
	// the real elapsed time, which is the true cost for measured backends.
	m0 := time.Now()
	for _, s := range r.running {
		var mw []uint64
		if s.session != nil {
			mw = s.mask.Words()
		}
		id, err := s.seq.Next(r.ctx, mw)
		if err == nil {
			err = r.checkToken(s, id)
		}
		if err != nil {
			r.failSeq(s, err)
			continue
		}
		s.next = id
	}
	r.met.ModelWall += time.Since(m0)

	// Wall-clock for the step (§3.5): overlapped engines hide the batch
	// grammar fill behind the GPU step and synchronize before sampling.
	var stepWall time.Duration
	if r.cfg.Mode == Overlap {
		stepWall = maxDur(gpu, fillWall) + r.timing.SampleStep()
	} else {
		stepWall = gpu + fillWall + r.timing.SampleStep()
	}
	r.clock += stepWall
	r.decodeWall += stepWall
	r.met.GPUTime += gpu
	r.met.MaskCPU += maskCPU
	r.met.FillWall += fillWall
	r.met.DecodeSteps++

	// Sampling + acceptance phase.
	for _, s := range r.running {
		if s.failed {
			continue
		}
		if s.firstTok {
			s.firstTok = false
			r.ttftSum += r.clock - s.sr.Arrival
			r.ttftN++
		}
		if s.session != nil {
			if err := s.session.Accept(s.next); err != nil {
				return fmt.Errorf("engine: %w", err)
			}
		}
		s.consume(r.cfg.Tok, s.next)
		if s.done {
			s.finishAt = r.clock
			continue
		}
		if err := r.jumpForward(s); err != nil {
			return err
		}
	}
	return nil
}

// decodeStepSpec runs one speculative draft-verify round over the running
// sequences (Mode Speculative). Per sequence, the grammar phase runs
// spec.Step: the backend's draft hook proposes a token window, the session
// speculatively accepts it while capturing per-position masks (the fused
// pass the verify forward pass consumes), the backend delivers verdicts
// through Next against those masks, and the rejected suffix is retracted
// through the matcher's rollback window. Sequences advance by accepted+1
// tokens per round; the GPU charge covers the draft model plus the
// multi-position verify pass (Timing.SpecStep). Sequences without a
// rollback-capable session or a drafting backend — and steps whose window
// would exceed the rollback history — decode non-speculatively (the latter
// counted in SpecFallbacks).
func (r *runner) decodeStepSpec() error {
	live := len(r.running)
	if live == 0 {
		return nil
	}
	k := r.cfg.Spec.draftTokens()

	// Grammar phase, overlapped with the GPU step: every sequence's draft
	// walk (or plain mask fill) runs through the persistent worker pool.
	seqs := r.running
	t0 := time.Now()
	work := func(i int) {
		s := seqs[i]
		s.specRan, s.specErr, s.specOverflow = false, nil, false
		s.nextErr, s.specSampleErr = nil, nil
		ss, capable := s.session.(specSession)
		if _, isTag := s.session.(*structtag.Session); isTag {
			// Structural-tag sessions decode plainly under Speculative mode:
			// the teacher-forced draft/verdict walk is positional in the
			// target text, and a verdict token spanning a segment exit is
			// not representable in the captured in-tag masks. (The gateway's
			// sampler-driven speculation does speculate inside segments.)
			capable = false
		}
		var propose backend.Proposer
		if capable {
			sp, ok := s.seq.(backend.Speculator)
			if ok {
				// The draft walk runs before the timed grammar window:
				// drafting is the draft model's work, not grammar time.
				propose, ok = sp.Draft(r.ctx, k)
			}
			capable = ok
		}
		if capable {
			if s.specFill == nil {
				s.specFill = func() { ss.Fill() }
				s.specSample = func(pos int, mask []uint64) (int32, bool) {
					id, err := s.seq.Next(r.ctx, mask)
					if err != nil {
						s.specSampleErr = err
						return 0, false
					}
					return id, true
				}
			}
			f0 := time.Now()
			res, err := spec.Step(ss, s.specFill, spec.Proposer(propose), s.specSample,
				&s.specW, spec.Options{MaxDraft: k, EOS: tokenizer.EosID})
			s.fillDur = time.Since(f0)
			if err == nil {
				s.specRan, s.specRes = true, res
				return
			}
			if !errors.Is(err, spec.ErrWindowExceeded) {
				s.specErr = err
				return
			}
			// Window exceeds the rollback history: decode this step plainly.
			s.specOverflow = true
		}
		f0 := time.Now()
		if s.session != nil {
			s.session.FillMask(s.mask)
		}
		s.fillDur = time.Since(f0)
		var mw []uint64
		if s.session != nil {
			mw = s.mask.Words()
		}
		id, err := s.seq.Next(r.ctx, mw)
		if err != nil {
			s.nextErr = err
			return
		}
		s.next = id
	}
	if live > 1 {
		pool := r.cfg.Pool
		if pool == nil {
			pool = serve.DefaultPool()
		}
		pool.Run(live, work)
	} else {
		work(0)
	}
	fillWall := time.Since(t0)

	var maskCPU time.Duration
	maxWindow := 0
	for _, s := range seqs {
		if s.specErr != nil {
			return fmt.Errorf("engine: speculative: %w", s.specErr)
		}
		maskCPU += s.fillDur
		r.fillLats = append(r.fillLats, s.fillDur)
		if s.specRan && s.specRes.Proposed > maxWindow {
			maxWindow = s.specRes.Proposed
		}
	}

	// Wall clock: draft + verify GPU work, overlapped with the grammar
	// phase, synchronized before sampling (§3.5 extended to the window).
	gpu := r.timing.SpecStep(live, maxWindow)
	stepWall := maxDur(gpu, fillWall) + r.timing.SampleStep()
	r.clock += stepWall
	r.decodeWall += stepWall
	r.met.GPUTime += gpu
	r.met.MaskCPU += maskCPU
	r.met.FillWall += fillWall
	r.met.DecodeSteps++

	// Commit phase: apply verdicts to sequence state.
	for _, s := range r.running {
		if s.nextErr != nil {
			r.failSeq(s, s.nextErr)
			continue
		}
		if s.firstTok {
			s.firstTok = false
			r.ttftSum += r.clock - s.sr.Arrival
			r.ttftN++
		}
		if s.specRan {
			res := s.specRes
			r.met.SpecProposed += res.Proposed
			r.met.SpecDrafted += res.Drafted
			r.met.SpecAccepted += res.Accepted
			for i := 0; i < res.Accepted; i++ {
				s.consume(r.cfg.Tok, s.specW.DraftAt(i))
			}
			if res.HasBonus {
				s.consume(r.cfg.Tok, res.Bonus)
			}
			if s.specSampleErr != nil {
				// The backend failed mid-verify: the confirmed prefix above
				// is committed (grammar and model agree on it); the sequence
				// leaves with its partial output.
				r.failSeq(s, s.specSampleErr)
				continue
			}
		} else {
			if s.specOverflow {
				r.met.SpecFallbacks++
			}
			if err := r.checkToken(s, s.next); err != nil {
				r.failSeq(s, err)
				continue
			}
			if s.session != nil {
				if err := s.session.Accept(s.next); err != nil {
					return fmt.Errorf("engine: %w", err)
				}
			}
			s.consume(r.cfg.Tok, s.next)
		}
		if s.done {
			s.finishAt = r.clock
			continue
		}
		if err := r.jumpForward(s); err != nil {
			return err
		}
	}
	return nil
}

// jumpForward runs the jump-forward insertion (Appendix B) for one live
// sequence: the grammar's deterministic continuation is offered to the
// model backend (ObserveForced), and inserted only when the backend absorbs
// it — the teacher-forced backend checks it against its target, a sampler
// backend accepts it for free. Measured CPU is charged to the step (it runs
// on the grammar thread).
func (r *runner) jumpForward(s *streamSeq) error {
	if !r.cfg.JumpForward || s.session == nil {
		return nil
	}
	jf, ok := s.session.(baselines.JumpForwarder)
	if !ok {
		return nil
	}
	t0 := time.Now()
	forced := jf.JumpForward()
	if forced != "" && s.seq.ObserveForced(forced) {
		if err := jf.AcceptString(forced); err != nil {
			return fmt.Errorf("engine: jump-forward: %w", err)
		}
		s.output = append(s.output, forced...)
		n := len(r.cfg.Tok.Encode(forced))
		s.outTokens += n
		r.met.JumpForwardTokens += n
	}
	elapsed := time.Since(t0)
	r.met.MaskCPU += elapsed
	r.clock += elapsed
	r.decodeWall += elapsed
	return nil
}
