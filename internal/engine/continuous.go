package engine

import (
	"fmt"
	"sort"
	"time"

	"xgrammar/internal/baselines"
	"xgrammar/internal/bitset"
	"xgrammar/internal/llmsim"
	"xgrammar/internal/serve"
	"xgrammar/internal/tokenizer"
)

// StreamRequest is one request in a continuous-batching run: it arrives at
// Arrival (simulated time), brings its own grammar backend (falling back to
// the engine-wide one), and charges GrammarInit when it is admitted — the
// compile/cache-resolve cost, hidden behind prefill in Overlap mode.
type StreamRequest struct {
	Req     *llmsim.Request
	Arrival time.Duration
	// Backend supplies this request's grammar sessions; nil falls back to
	// StreamConfig.Backend. When both are nil (or the mode is Unconstrained)
	// the sequence decodes without grammar constraints.
	Backend baselines.Backend
	// GrammarInit is the grammar resolve cost charged at admission (zero for
	// a compiled-grammar cache hit).
	GrammarInit time.Duration
}

// StreamConfig configures a continuous-batching run.
type StreamConfig struct {
	Profile llmsim.Profile
	Mode    Mode
	// Backend is the default grammar backend for requests without their own.
	Backend baselines.Backend
	Tok     *tokenizer.Tokenizer
	// MaxBatch bounds the number of sequences decoding concurrently; 0 is
	// unbounded. Arrived requests beyond the bound queue until a running
	// sequence finishes.
	MaxBatch int
	// JumpForward enables forced-token insertion for sessions supporting it.
	JumpForward bool
	// MaxSteps guards against runaway generations.
	MaxSteps int
	// Pool is the persistent worker pool used to fill a whole batch's masks
	// in Overlap mode; nil uses the process-wide shared pool. Serial mode
	// fills sequentially by definition (grammar work on the critical path).
	Pool *serve.WorkerPool
}

// StreamMetrics extends Metrics with continuous-batching observations.
type StreamMetrics struct {
	Metrics
	// PeakBatch is the largest number of concurrently decoding sequences.
	PeakBatch int
	// Joins and Leaves count sequences entering and exiting the running
	// batch mid-run.
	Joins, Leaves int
	// QueueWait is the mean time requests spent queued after arrival
	// (waiting for a batch slot).
	QueueWait time.Duration
	// FillWall is the total wall time of the per-step batch mask fills
	// (equal to MaskCPU when fills are sequential).
	FillWall time.Duration
	// FillP50 and FillP99 are percentiles of per-sequence mask fill latency.
	FillP50, FillP99 time.Duration
}

// streamSeq is one running sequence.
type streamSeq struct {
	seqState
	sr        *StreamRequest
	mask      *bitset.Bitset
	startedAt time.Duration // decode start (admission charge complete)
	firstTok  bool
	fillDur   time.Duration
	next      int32
}

// runner holds the mutable state of one continuous-batching run.
type runner struct {
	cfg          StreamConfig
	clock        time.Duration
	running      []*streamSeq
	finishedSeqs []*streamSeq
	maskFree     []*bitset.Bitset
	fillLats     []time.Duration
	met          StreamMetrics
	ttftSum      time.Duration
	ttftN        int
	waitSum      time.Duration
	// decodeWall accumulates step wall time (excluding admission charges)
	// for the step-capped TPOT fallback.
	decodeWall time.Duration
}

// RunStream decodes reqs with continuous batching (§3.5 co-design): arrived
// requests join the running batch as slots free up, finished sequences leave
// immediately, and each decode step combines modelled GPU time with measured
// grammar time — overlapped and batch-parallel in Overlap mode, serialized
// in Serial mode. Outputs are returned in the order of reqs.
func RunStream(cfg StreamConfig, reqs []*StreamRequest) (StreamMetrics, []string, error) {
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = 8192
	}
	r := &runner{cfg: cfg}
	r.met.Requests = len(reqs)

	// Admission order: arrival time, ties by request order.
	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return reqs[order[a]].Arrival < reqs[order[b]].Arrival
	})
	outputs := make([][]byte, len(reqs))
	nextPending := 0

	for r.met.DecodeSteps < cfg.MaxSteps && (len(r.running) > 0 || nextPending < len(order)) {
		// Idle engine: jump to the next arrival.
		if len(r.running) == 0 && nextPending < len(order) && reqs[order[nextPending]].Arrival > r.clock {
			r.clock = reqs[order[nextPending]].Arrival
		}
		// Admission: fill free slots with arrived requests.
		var admitted []*streamSeq
		for nextPending < len(order) &&
			(cfg.MaxBatch <= 0 || len(r.running) < cfg.MaxBatch) &&
			reqs[order[nextPending]].Arrival <= r.clock {
			sr := reqs[order[nextPending]]
			s := r.admit(sr, order[nextPending])
			admitted = append(admitted, s)
			nextPending++
		}
		if len(admitted) > 0 {
			r.chargeAdmission(admitted)
		}
		if len(r.running) > r.met.PeakBatch {
			r.met.PeakBatch = len(r.running)
		}

		if err := r.decodeStep(); err != nil {
			return r.met, nil, err
		}
		// Collect finished sequences (leave the batch, release sessions).
		for i := 0; i < len(r.running); {
			s := r.running[i]
			if !s.done {
				i++
				continue
			}
			outputs[s.index()] = s.output
			r.leave(i)
		}
	}
	// Step-capped: flush partial outputs.
	for _, s := range r.running {
		outputs[s.index()] = s.output
	}

	outs := make([]string, len(reqs))
	var tpotSum time.Duration
	finished := 0
	for i := range reqs {
		outs[i] = string(outputs[i])
	}
	for _, s := range r.running {
		r.met.OutputTokens += s.outTokens
	}
	for _, s := range r.finishedSeqs {
		r.met.OutputTokens += s.outTokens
		if s.outTokens > 0 {
			tpotSum += (s.finishAt - s.startedAt) / time.Duration(s.outTokens)
			finished++
		}
	}
	if finished > 0 {
		r.met.TPOT = tpotSum / time.Duration(finished)
	} else if r.met.DecodeSteps > 0 {
		// No request finished (step-capped run): fall back to wall time per
		// decode step, which is the same metric for fixed-length outputs.
		r.met.TPOT = r.decodeWall / time.Duration(r.met.DecodeSteps)
	}
	if r.ttftN > 0 {
		r.met.TTFT = r.ttftSum / time.Duration(r.ttftN)
	}
	if r.met.Joins > 0 {
		r.met.QueueWait = r.waitSum / time.Duration(r.met.Joins)
	}
	r.met.FillP50 = percentile(r.fillLats, 0.50)
	r.met.FillP99 = percentile(r.fillLats, 0.99)
	r.met.Wall = r.clock
	return r.met, outs, nil
}

// admit builds the running-sequence state for one request (session acquired
// here — from the backend's session pool in the pooled configuration).
func (r *runner) admit(sr *StreamRequest, index int) *streamSeq {
	s := &streamSeq{sr: sr, firstTok: true}
	s.req = sr.Req
	s.idx = index
	backend := sr.Backend
	if backend == nil {
		backend = r.cfg.Backend
	}
	if r.cfg.Mode != Unconstrained && backend != nil {
		s.session = backend.NewSession()
		if n := len(r.maskFree); n > 0 {
			s.mask = r.maskFree[n-1]
			r.maskFree = r.maskFree[:n-1]
		} else {
			s.mask = bitset.New(r.cfg.Tok.VocabSize())
		}
	}
	r.waitSum += r.clock - sr.Arrival
	r.met.Joins++
	r.running = append(r.running, s)
	return s
}

// chargeAdmission advances the clock for a group of newly admitted
// sequences: prompt prefill plus grammar initialization, with the grammar
// work hidden behind prefill in Overlap mode (Figure 8) and serialized
// otherwise. Grammar resolves within the group overlap each other (cache
// singleflight), so the group charges the max, not the sum.
func (r *runner) chargeAdmission(admitted []*streamSeq) {
	maxPrompt := 0
	var maxInit time.Duration
	for _, s := range admitted {
		if s.req.PromptTokens > maxPrompt {
			maxPrompt = s.req.PromptTokens
		}
		if s.sr.GrammarInit > maxInit {
			maxInit = s.sr.GrammarInit
		}
	}
	prefill := r.cfg.Profile.Prefill(maxPrompt)
	switch {
	case r.cfg.Mode == Unconstrained:
		r.clock += prefill
	case r.cfg.Mode == Overlap:
		r.clock += maxDur(prefill, maxInit)
	default: // Serial
		r.clock += prefill + maxInit
	}
	for _, s := range admitted {
		s.startedAt = r.clock
	}
}

// leave removes running[i] from the batch, recycling its mask buffer and
// returning its session to the pool when the backend supports it.
func (r *runner) leave(i int) {
	s := r.running[i]
	if s.session != nil {
		if c, ok := s.session.(interface{ Close() }); ok {
			c.Close()
		}
		s.session = nil
	}
	if s.mask != nil {
		r.maskFree = append(r.maskFree, s.mask)
		s.mask = nil
	}
	r.running[i] = r.running[len(r.running)-1]
	r.running = r.running[:len(r.running)-1]
	r.met.Leaves++
	r.finishedSeqs = append(r.finishedSeqs, s)
}

// decodeStep runs one batched decode step over the running sequences.
func (r *runner) decodeStep() error {
	live := len(r.running)
	if live == 0 {
		return nil
	}
	gpu := r.cfg.Profile.DecodeStep(live)

	// Grammar phase: one mask per constrained sequence. Overlap mode fills
	// the whole batch through the persistent worker pool (work stealing
	// across sequences); Serial mode keeps grammar work on the critical path.
	var fills []*streamSeq
	for _, s := range r.running {
		s.next = s.nextToken(r.cfg.Tok)
		if s.session != nil {
			fills = append(fills, s)
		}
	}
	var fillWall, maskCPU time.Duration
	if len(fills) > 0 {
		t0 := time.Now()
		if r.cfg.Mode == Overlap && len(fills) > 1 {
			pool := r.cfg.Pool
			if pool == nil {
				pool = serve.DefaultPool()
			}
			pool.Run(len(fills), func(i int) {
				s := fills[i]
				f0 := time.Now()
				s.session.FillMask(s.mask)
				s.fillDur = time.Since(f0)
			})
		} else {
			for _, s := range fills {
				f0 := time.Now()
				s.session.FillMask(s.mask)
				s.fillDur = time.Since(f0)
			}
		}
		fillWall = time.Since(t0)
		for _, s := range fills {
			maskCPU += s.fillDur
			r.fillLats = append(r.fillLats, s.fillDur)
		}
		for _, s := range fills {
			if !s.mask.Get(int(s.next)) {
				return fmt.Errorf("engine: target token %d (%q) masked out (output so far %q)",
					s.next, r.cfg.Tok.TokenBytes(s.next), s.output)
			}
		}
	}

	// Wall-clock for the step (§3.5): overlapped engines hide the batch
	// grammar fill behind the GPU step and synchronize before sampling.
	var stepWall time.Duration
	if r.cfg.Mode == Overlap {
		stepWall = maxDur(gpu, fillWall) + r.cfg.Profile.SamplePerStep
	} else {
		stepWall = gpu + fillWall + r.cfg.Profile.SamplePerStep
	}
	r.clock += stepWall
	r.decodeWall += stepWall
	r.met.GPUTime += gpu
	r.met.MaskCPU += maskCPU
	r.met.FillWall += fillWall
	r.met.DecodeSteps++

	// Sampling + acceptance phase.
	for _, s := range r.running {
		if s.firstTok {
			s.firstTok = false
			r.ttftSum += r.clock - s.sr.Arrival
			r.ttftN++
		}
		if s.session != nil {
			if err := s.session.Accept(s.next); err != nil {
				return fmt.Errorf("engine: %w", err)
			}
		}
		s.consume(r.cfg.Tok, s.next)
		if s.done {
			s.finishAt = r.clock
			continue
		}
		// Jump-forward decoding (Appendix B): measured CPU is charged to the
		// step (it runs on the grammar thread).
		if r.cfg.JumpForward && s.session != nil {
			if jf, ok := s.session.(baselines.JumpForwarder); ok {
				t0 := time.Now()
				forced := jf.JumpForward()
				if forced != "" && s.emitted+len(forced) <= len(s.req.Target) &&
					s.req.Target[s.emitted:s.emitted+len(forced)] == forced {
					if err := jf.AcceptString(forced); err != nil {
						return fmt.Errorf("engine: jump-forward: %w", err)
					}
					s.output = append(s.output, forced...)
					s.emitted += len(forced)
					n := len(r.cfg.Tok.Encode(forced))
					s.outTokens += n
					r.met.JumpForwardTokens += n
				}
				elapsed := time.Since(t0)
				r.met.MaskCPU += elapsed
				r.clock += elapsed
				r.decodeWall += elapsed
			}
		}
	}
	return nil
}

// percentile returns the p-quantile of the (unsorted) latency sample.
func percentile(lats []time.Duration, p float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}
