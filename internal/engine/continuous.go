package engine

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"xgrammar/internal/baselines"
	"xgrammar/internal/bitset"
	"xgrammar/internal/llmsim"
	"xgrammar/internal/maskcache"
	"xgrammar/internal/quantile"
	"xgrammar/internal/serve"
	"xgrammar/internal/spec"
	"xgrammar/internal/structtag"
	"xgrammar/internal/tokenizer"
)

// StreamRequest is one request in a continuous-batching run: it arrives at
// Arrival (simulated time), brings its own grammar backend (falling back to
// the engine-wide one), and charges GrammarInit when it is admitted — the
// compile/cache-resolve cost, hidden behind prefill in Overlap mode.
type StreamRequest struct {
	Req     *llmsim.Request
	Arrival time.Duration
	// Backend supplies this request's grammar sessions; nil falls back to
	// StreamConfig.Backend. When both are nil (or the mode is Unconstrained)
	// the sequence decodes without grammar constraints.
	Backend baselines.Backend
	// GrammarInit is the grammar resolve cost charged at admission (zero for
	// a compiled-grammar cache hit).
	GrammarInit time.Duration
}

// StreamConfig configures a continuous-batching run.
type StreamConfig struct {
	Profile llmsim.Profile
	Mode    Mode
	// Backend is the default grammar backend for requests without their own.
	Backend baselines.Backend
	Tok     *tokenizer.Tokenizer
	// MaxBatch bounds the number of sequences decoding concurrently; 0 is
	// unbounded. Arrived requests beyond the bound queue until a running
	// sequence finishes.
	MaxBatch int
	// JumpForward enables forced-token insertion for sessions supporting it.
	JumpForward bool
	// MaxSteps guards against runaway generations.
	MaxSteps int
	// Pool is the persistent worker pool used to fill a whole batch's masks
	// in Overlap mode; nil uses the process-wide shared pool. Serial mode
	// fills sequentially by definition (grammar work on the critical path).
	Pool *serve.WorkerPool
	// Spec configures draft-verify decoding when Mode is Speculative.
	Spec SpecOptions
}

// SpecOptions parameterizes speculative draft-verify decoding (Mode
// Speculative): the window size and the simulated draft model's quality.
// Draft outcomes are a deterministic hash of (seed, sequence, position), so
// speculative runs are exactly reproducible — and because only verified
// tokens are ever committed, outputs are byte-identical to a
// non-speculative run of the same requests regardless of these settings.
type SpecOptions struct {
	// DraftTokens is the draft window k per decode round (default 4).
	// Sequences whose rollback history cannot retract a full window fall
	// back to non-speculative decoding (counted in SpecFallbacks).
	DraftTokens int
	// DraftAccuracy is the per-position probability that the simulated
	// draft model proposes the token the target model samples (default
	// 0.8). Lower accuracy lowers the acceptance rate, not correctness.
	DraftAccuracy float64
	// DraftSeed varies the deterministic draft-error pattern.
	DraftSeed int64
}

func (o SpecOptions) draftTokens() int {
	if o.DraftTokens <= 0 {
		return 4
	}
	return o.DraftTokens
}

func (o SpecOptions) accuracy() float64 {
	switch {
	case o.DraftAccuracy <= 0:
		return 0.8
	case o.DraftAccuracy > 1:
		return 1
	default:
		return o.DraftAccuracy
	}
}

// StreamMetrics extends Metrics with continuous-batching observations.
type StreamMetrics struct {
	Metrics
	// PeakBatch is the largest number of concurrently decoding sequences.
	PeakBatch int
	// Joins and Leaves count sequences entering and exiting the running
	// batch mid-run.
	Joins, Leaves int
	// QueueWait is the mean time requests spent queued after arrival
	// (waiting for a batch slot).
	QueueWait time.Duration
	// FillWall is the total wall time of the per-step batch mask fills
	// (equal to MaskCPU when fills are sequential).
	FillWall time.Duration
	// FillP50 and FillP99 are percentiles of per-sequence mask fill latency.
	FillP50, FillP99 time.Duration
	// SpecProposed and SpecDrafted count draft tokens offered by the draft
	// model and speculatively accepted by the grammar; SpecAccepted counts
	// those confirmed by the target model — each confirmed token advanced
	// its sequence without a sampling step of its own.
	SpecProposed, SpecDrafted, SpecAccepted int
	// SpecFallbacks counts per-sequence decode steps that fell back to
	// non-speculative decoding because the draft window exceeded the
	// session's rollback history.
	SpecFallbacks int
}

// AcceptanceRate is the fraction of proposed draft tokens the target model
// confirmed (0 when nothing was proposed).
func (m StreamMetrics) AcceptanceRate() float64 {
	if m.SpecProposed == 0 {
		return 0
	}
	return float64(m.SpecAccepted) / float64(m.SpecProposed)
}

// StepsSaved is the number of per-sequence decode steps speculative
// acceptance avoided: every confirmed draft token advanced its sequence
// without its own sampling step. Under continuous batching several
// sequences share one GPU round, so batch rounds saved is smaller —
// compare DecodeSteps against a non-speculative run for that.
func (m StreamMetrics) StepsSaved() int { return m.SpecAccepted }

// streamSeq is one running sequence.
type streamSeq struct {
	seqState
	sr        *StreamRequest
	mask      *bitset.Bitset
	startedAt time.Duration // decode start (admission charge complete)
	firstTok  bool
	fillDur   time.Duration
	next      int32
	// Speculative-mode scratch: the per-sequence draft window, the round's
	// draft-verify result, whether this round overflowed the rollback
	// window (counted as a fallback), and reused buffers/closures so the
	// steady-state round allocates nothing per step.
	specW        spec.Window
	specRes      spec.Result
	specErr      error
	specRan      bool
	specOverflow bool
	draftBuf     []int32
	verdictBuf   []int32
	specFill     func()
	specSample   spec.Sampler
}

// specSession is the session surface the speculative path needs: the
// draft-verify sequencer plus the cached mask fill. serve.Session (the
// pooled backend) satisfies it.
type specSession interface {
	spec.Sequencer
	Fill() maskcache.FillStats
}

// runner holds the mutable state of one continuous-batching run.
type runner struct {
	cfg          StreamConfig
	clock        time.Duration
	running      []*streamSeq
	finishedSeqs []*streamSeq
	maskFree     []*bitset.Bitset
	fillLats     []time.Duration
	met          StreamMetrics
	ttftSum      time.Duration
	ttftN        int
	waitSum      time.Duration
	// decodeWall accumulates step wall time (excluding admission charges)
	// for the step-capped TPOT fallback.
	decodeWall time.Duration
}

// RunStream decodes reqs with continuous batching (§3.5 co-design): arrived
// requests join the running batch as slots free up, finished sequences leave
// immediately, and each decode step combines modelled GPU time with measured
// grammar time — overlapped and batch-parallel in Overlap mode, serialized
// in Serial mode. Outputs are returned in the order of reqs.
func RunStream(cfg StreamConfig, reqs []*StreamRequest) (StreamMetrics, []string, error) {
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = 8192
	}
	r := &runner{cfg: cfg}
	r.met.Requests = len(reqs)

	// Admission order: arrival time, ties by request order.
	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return reqs[order[a]].Arrival < reqs[order[b]].Arrival
	})
	outputs := make([][]byte, len(reqs))
	nextPending := 0

	for r.met.DecodeSteps < cfg.MaxSteps && (len(r.running) > 0 || nextPending < len(order)) {
		// Idle engine: jump to the next arrival.
		if len(r.running) == 0 && nextPending < len(order) && reqs[order[nextPending]].Arrival > r.clock {
			r.clock = reqs[order[nextPending]].Arrival
		}
		// Admission: fill free slots with arrived requests.
		var admitted []*streamSeq
		for nextPending < len(order) &&
			(cfg.MaxBatch <= 0 || len(r.running) < cfg.MaxBatch) &&
			reqs[order[nextPending]].Arrival <= r.clock {
			sr := reqs[order[nextPending]]
			s := r.admit(sr, order[nextPending])
			admitted = append(admitted, s)
			nextPending++
		}
		if len(admitted) > 0 {
			r.chargeAdmission(admitted)
		}
		if len(r.running) > r.met.PeakBatch {
			r.met.PeakBatch = len(r.running)
		}

		if err := r.decodeStep(); err != nil {
			return r.met, nil, err
		}
		// Collect finished sequences (leave the batch, release sessions).
		for i := 0; i < len(r.running); {
			s := r.running[i]
			if !s.done {
				i++
				continue
			}
			outputs[s.index()] = s.output
			r.leave(i)
		}
	}
	// Step-capped: flush partial outputs.
	for _, s := range r.running {
		outputs[s.index()] = s.output
	}

	outs := make([]string, len(reqs))
	var tpotSum time.Duration
	finished := 0
	for i := range reqs {
		outs[i] = string(outputs[i])
	}
	for _, s := range r.running {
		r.met.OutputTokens += s.outTokens
	}
	for _, s := range r.finishedSeqs {
		r.met.OutputTokens += s.outTokens
		if s.outTokens > 0 {
			tpotSum += (s.finishAt - s.startedAt) / time.Duration(s.outTokens)
			finished++
		}
	}
	if finished > 0 {
		r.met.TPOT = tpotSum / time.Duration(finished)
	} else if r.met.DecodeSteps > 0 {
		// No request finished (step-capped run): fall back to wall time per
		// decode step, which is the same metric for fixed-length outputs.
		r.met.TPOT = r.decodeWall / time.Duration(r.met.DecodeSteps)
	}
	if r.ttftN > 0 {
		r.met.TTFT = r.ttftSum / time.Duration(r.ttftN)
	}
	if r.met.Joins > 0 {
		r.met.QueueWait = r.waitSum / time.Duration(r.met.Joins)
	}
	fillQ := quantile.Durations(r.fillLats, 0.50, 0.99)
	r.met.FillP50, r.met.FillP99 = fillQ[0], fillQ[1]
	r.met.Wall = r.clock
	return r.met, outs, nil
}

// admit builds the running-sequence state for one request (session acquired
// here — from the backend's session pool in the pooled configuration).
func (r *runner) admit(sr *StreamRequest, index int) *streamSeq {
	s := &streamSeq{sr: sr, firstTok: true}
	s.req = sr.Req
	s.idx = index
	backend := sr.Backend
	if backend == nil {
		backend = r.cfg.Backend
	}
	if r.cfg.Mode != Unconstrained && backend != nil {
		s.session = backend.NewSession()
		if n := len(r.maskFree); n > 0 {
			s.mask = r.maskFree[n-1]
			r.maskFree = r.maskFree[:n-1]
		} else {
			s.mask = bitset.New(r.cfg.Tok.VocabSize())
		}
	}
	r.waitSum += r.clock - sr.Arrival
	r.met.Joins++
	r.running = append(r.running, s)
	return s
}

// chargeAdmission advances the clock for a group of newly admitted
// sequences: prompt prefill plus grammar initialization, with the grammar
// work hidden behind prefill in Overlap mode (Figure 8) and serialized
// otherwise. Grammar resolves within the group overlap each other (cache
// singleflight), so the group charges the max, not the sum.
func (r *runner) chargeAdmission(admitted []*streamSeq) {
	maxPrompt := 0
	var maxInit time.Duration
	for _, s := range admitted {
		if s.req.PromptTokens > maxPrompt {
			maxPrompt = s.req.PromptTokens
		}
		if s.sr.GrammarInit > maxInit {
			maxInit = s.sr.GrammarInit
		}
	}
	prefill := r.cfg.Profile.Prefill(maxPrompt)
	switch {
	case r.cfg.Mode == Unconstrained:
		r.clock += prefill
	case r.cfg.Mode.overlapped():
		r.clock += maxDur(prefill, maxInit)
	default: // Serial
		r.clock += prefill + maxInit
	}
	for _, s := range admitted {
		s.startedAt = r.clock
	}
}

// leave removes running[i] from the batch, recycling its mask buffer and
// returning its session to the pool when the backend supports it.
func (r *runner) leave(i int) {
	s := r.running[i]
	if s.session != nil {
		if c, ok := s.session.(interface{ Close() }); ok {
			c.Close()
		}
		s.session = nil
	}
	if s.mask != nil {
		r.maskFree = append(r.maskFree, s.mask)
		s.mask = nil
	}
	r.running[i] = r.running[len(r.running)-1]
	r.running = r.running[:len(r.running)-1]
	r.met.Leaves++
	r.finishedSeqs = append(r.finishedSeqs, s)
}

// decodeStep runs one batched decode step over the running sequences.
func (r *runner) decodeStep() error {
	if r.cfg.Mode == Speculative {
		return r.decodeStepSpec()
	}
	live := len(r.running)
	if live == 0 {
		return nil
	}
	gpu := r.cfg.Profile.DecodeStep(live)

	// Grammar phase: one mask per constrained sequence. Overlap mode fills
	// the whole batch through the persistent worker pool (work stealing
	// across sequences); Serial mode keeps grammar work on the critical path.
	var fills []*streamSeq
	for _, s := range r.running {
		s.next = s.nextToken(r.cfg.Tok)
		if s.session != nil {
			fills = append(fills, s)
		}
	}
	var fillWall, maskCPU time.Duration
	if len(fills) > 0 {
		t0 := time.Now()
		if r.cfg.Mode == Overlap && len(fills) > 1 {
			pool := r.cfg.Pool
			if pool == nil {
				pool = serve.DefaultPool()
			}
			pool.Run(len(fills), func(i int) {
				s := fills[i]
				f0 := time.Now()
				s.session.FillMask(s.mask)
				s.fillDur = time.Since(f0)
			})
		} else {
			for _, s := range fills {
				f0 := time.Now()
				s.session.FillMask(s.mask)
				s.fillDur = time.Since(f0)
			}
		}
		fillWall = time.Since(t0)
		for _, s := range fills {
			maskCPU += s.fillDur
			r.fillLats = append(r.fillLats, s.fillDur)
		}
		for _, s := range fills {
			if !s.mask.Get(int(s.next)) {
				alt, ok := r.maskedPrefixToken(s)
				if !ok {
					return fmt.Errorf("engine: target token %d (%q) masked out (output so far %q)",
						s.next, r.cfg.Tok.TokenBytes(s.next), s.output)
				}
				s.next = alt
			}
		}
	}

	// Wall-clock for the step (§3.5): overlapped engines hide the batch
	// grammar fill behind the GPU step and synchronize before sampling.
	var stepWall time.Duration
	if r.cfg.Mode == Overlap {
		stepWall = maxDur(gpu, fillWall) + r.cfg.Profile.SamplePerStep
	} else {
		stepWall = gpu + fillWall + r.cfg.Profile.SamplePerStep
	}
	r.clock += stepWall
	r.decodeWall += stepWall
	r.met.GPUTime += gpu
	r.met.MaskCPU += maskCPU
	r.met.FillWall += fillWall
	r.met.DecodeSteps++

	// Sampling + acceptance phase.
	for _, s := range r.running {
		if s.firstTok {
			s.firstTok = false
			r.ttftSum += r.clock - s.sr.Arrival
			r.ttftN++
		}
		if s.session != nil {
			if err := s.session.Accept(s.next); err != nil {
				return fmt.Errorf("engine: %w", err)
			}
		}
		s.consume(r.cfg.Tok, s.next)
		if s.done {
			s.finishAt = r.clock
			continue
		}
		if err := r.jumpForward(s); err != nil {
			return err
		}
	}
	return nil
}

// decodeStepSpec runs one speculative draft-verify round over the running
// sequences (Mode Speculative). Per sequence, the grammar phase runs
// spec.Step: the draft model proposes a token window, the session
// speculatively accepts it while capturing per-position masks (the fused
// pass the verify forward pass consumes), the teacher-forced target model
// delivers verdicts, and the rejected suffix is retracted through the
// matcher's rollback window. Sequences advance by accepted+1 tokens per
// round; the GPU charge covers the draft model plus the multi-position
// verify pass (llmsim.Profile.SpecStep). Sequences without a
// rollback-capable session — and steps whose window would exceed the
// rollback history — decode non-speculatively (the latter counted in
// SpecFallbacks).
func (r *runner) decodeStepSpec() error {
	live := len(r.running)
	if live == 0 {
		return nil
	}
	k := r.cfg.Spec.draftTokens()

	// Grammar phase, overlapped with the GPU step: every sequence's draft
	// walk (or plain mask fill) runs through the persistent worker pool.
	seqs := r.running
	t0 := time.Now()
	work := func(i int) {
		s := seqs[i]
		s.specRan, s.specErr, s.specOverflow = false, nil, false
		ss, capable := s.session.(specSession)
		if _, isTag := s.session.(*structtag.Session); isTag {
			// Structural-tag sessions decode plainly under Speculative mode:
			// the teacher-forced draft/verdict walk is positional in the
			// target text, and a verdict token spanning a segment exit is
			// not representable in the captured in-tag masks. (The gateway's
			// sampler-driven speculation does speculate inside segments.)
			capable = false
		}
		if capable {
			// Draft and verdict tokens come from one untimed target walk:
			// tokenization is the simulated LLM's work, not grammar time,
			// so it must stay outside the fill-latency window (the plain
			// path's nextToken is likewise untimed).
			draft := r.specWindow(s, k)
			if s.specFill == nil {
				s.specFill = func() { ss.Fill() }
				s.specSample = func(pos int, _ []uint64) (int32, bool) {
					return s.verdictBuf[pos], true
				}
			}
			f0 := time.Now()
			res, err := spec.Step(ss, s.specFill, spec.SliceProposer(draft), s.specSample,
				&s.specW, spec.Options{MaxDraft: k, EOS: tokenizer.EosID})
			s.fillDur = time.Since(f0)
			if err == nil {
				s.specRan, s.specRes = true, res
				return
			}
			if !errors.Is(err, spec.ErrWindowExceeded) {
				s.specErr = err
				return
			}
			// Window exceeds the rollback history: decode this step plainly.
			s.specOverflow = true
		}
		s.next = s.nextToken(r.cfg.Tok)
		f0 := time.Now()
		if s.session != nil {
			s.session.FillMask(s.mask)
		}
		s.fillDur = time.Since(f0)
	}
	if live > 1 {
		pool := r.cfg.Pool
		if pool == nil {
			pool = serve.DefaultPool()
		}
		pool.Run(live, work)
	} else {
		work(0)
	}
	fillWall := time.Since(t0)

	var maskCPU time.Duration
	maxWindow := 0
	for _, s := range seqs {
		if s.specErr != nil {
			return fmt.Errorf("engine: speculative: %w", s.specErr)
		}
		maskCPU += s.fillDur
		r.fillLats = append(r.fillLats, s.fillDur)
		if s.specRan && s.specRes.Proposed > maxWindow {
			maxWindow = s.specRes.Proposed
		}
	}

	// Wall clock: draft + verify GPU work, overlapped with the grammar
	// phase, synchronized before sampling (§3.5 extended to the window).
	gpu := r.cfg.Profile.SpecStep(live, maxWindow)
	stepWall := maxDur(gpu, fillWall) + r.cfg.Profile.SamplePerStep
	r.clock += stepWall
	r.decodeWall += stepWall
	r.met.GPUTime += gpu
	r.met.MaskCPU += maskCPU
	r.met.FillWall += fillWall
	r.met.DecodeSteps++

	// Commit phase: apply verdicts to sequence state.
	for _, s := range r.running {
		if s.firstTok {
			s.firstTok = false
			r.ttftSum += r.clock - s.sr.Arrival
			r.ttftN++
		}
		if s.specRan {
			res := s.specRes
			r.met.SpecProposed += res.Proposed
			r.met.SpecDrafted += res.Drafted
			r.met.SpecAccepted += res.Accepted
			for i := 0; i < res.Accepted; i++ {
				s.consume(r.cfg.Tok, s.specW.DraftAt(i))
			}
			if res.HasBonus {
				s.consume(r.cfg.Tok, res.Bonus)
			}
		} else {
			if s.specOverflow {
				r.met.SpecFallbacks++
			}
			if s.session != nil {
				if !s.mask.Get(int(s.next)) {
					alt, ok := r.maskedPrefixToken(s)
					if !ok {
						return fmt.Errorf("engine: target token %d (%q) masked out (output so far %q)",
							s.next, r.cfg.Tok.TokenBytes(s.next), s.output)
					}
					s.next = alt
				}
				if err := s.session.Accept(s.next); err != nil {
					return fmt.Errorf("engine: %w", err)
				}
			}
			s.consume(r.cfg.Tok, s.next)
		}
		if s.done {
			s.finishAt = r.clock
			continue
		}
		if err := r.jumpForward(s); err != nil {
			return err
		}
	}
	return nil
}

// specWindow builds one round's draft window and verdict stream for a
// sequence in a single walk of the remaining target. s.verdictBuf[i]
// becomes the teacher-forced target token at window position i (EOS once
// the target is exhausted) — the verdicts the per-seq sampler serves to
// spec.Step. The returned draft is those tokens with deterministic
// per-position errors at rate 1-DraftAccuracy (a hash of seed, sequence,
// and absolute position, so runs are reproducible); corrupted positions
// propose a different token and the verify pass rejects them, which is
// what produces acceptance rates below one.
func (r *runner) specWindow(s *streamSeq, k int) []int32 {
	tok := r.cfg.Tok
	target := s.req.Target
	pos := s.emitted
	s.verdictBuf = s.verdictBuf[:0]
	draft := s.draftBuf[:0]
	for i := 0; i <= k; i++ {
		if pos >= len(target) {
			s.verdictBuf = append(s.verdictBuf, tokenizer.EosID)
			continue
		}
		id := tok.Encode(target[pos:])[0]
		pos += len(tok.TokenBytes(id))
		s.verdictBuf = append(s.verdictBuf, id)
		if i < k {
			d := id
			if !draftHit(r.cfg.Spec.DraftSeed, s.idx, s.outTokens+i, r.cfg.Spec.accuracy()) {
				d = corruptToken(id, tok.VocabSize())
			}
			draft = append(draft, d)
		}
	}
	s.draftBuf = draft
	return draft
}

// draftHit deterministically decides whether the simulated draft model gets
// a position right (SplitMix64-style hash of seed, sequence, position).
func draftHit(seed int64, seq, pos int, acc float64) bool {
	h := uint64(seed)*0x9E3779B97F4A7C15 ^ uint64(seq+1)*0xBF58476D1CE4E5B9 ^ uint64(pos+1)*0x94D049BB133111EB
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return float64(h>>11)/float64(1<<53) < acc
}

// corruptToken returns a regular token different from id — the draft
// model's wrong guess.
func corruptToken(id int32, vocab int) int32 {
	c := id + 1
	if int(c) >= vocab {
		c = tokenizer.NumSpecial
	}
	if c == id { // single-regular-token vocabulary; nothing else to propose
		return id
	}
	return c
}

// maskedPrefixToken finds an alternative next token when the teacher-forced
// first token of the remaining target is masked out: the longest token that
// is both a byte-prefix of the remaining target and allowed by the mask.
// This happens at structural-tag segment exits — the in-tag mask only
// admits tokens that stay inside the segment, so a BPE token spanning the
// end tag and trailing free text must be re-split at the boundary, exactly
// as a real constrained sampler would pick a shorter token there.
func (r *runner) maskedPrefixToken(s *streamSeq) (int32, bool) {
	rem := s.req.Target[s.emitted:]
	max := 32
	if len(rem) < max {
		max = len(rem)
	}
	for plen := max; plen >= 1; plen-- {
		id := r.cfg.Tok.Encode(rem[:plen])[0]
		if int(id) < s.mask.Len() && s.mask.Get(int(id)) {
			return id, true
		}
	}
	return 0, false
}

// jumpForward runs the teacher-checked jump-forward insertion (Appendix B)
// for one live sequence; measured CPU is charged to the step (it runs on
// the grammar thread).
func (r *runner) jumpForward(s *streamSeq) error {
	if !r.cfg.JumpForward || s.session == nil {
		return nil
	}
	jf, ok := s.session.(baselines.JumpForwarder)
	if !ok {
		return nil
	}
	t0 := time.Now()
	forced := jf.JumpForward()
	if forced != "" && s.emitted+len(forced) <= len(s.req.Target) &&
		s.req.Target[s.emitted:s.emitted+len(forced)] == forced {
		if err := jf.AcceptString(forced); err != nil {
			return fmt.Errorf("engine: jump-forward: %w", err)
		}
		s.output = append(s.output, forced...)
		s.emitted += len(forced)
		n := len(r.cfg.Tok.Encode(forced))
		s.outTokens += n
		r.met.JumpForwardTokens += n
	}
	elapsed := time.Since(t0)
	r.met.MaskCPU += elapsed
	r.clock += elapsed
	r.decodeWall += elapsed
	return nil
}
