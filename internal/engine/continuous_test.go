package engine

import (
	"testing"
	"time"

	"xgrammar/internal/baselines"
	"xgrammar/internal/builtin"
	"xgrammar/internal/llmsim"
	"xgrammar/internal/maskcache"
	"xgrammar/internal/pda"
	"xgrammar/internal/serve"
	"xgrammar/internal/tokenizer"
	"xgrammar/internal/workload"
)

// pooledSetup builds a pooled XGrammar backend over the builtin JSON grammar
// and a second (schema) backend, for mixed-grammar batches.
func pooledSetup(t testing.TB) (*tokenizer.Tokenizer, *baselines.PooledXGBackend, *baselines.PooledXGBackend, workload.SchemaTask) {
	t.Helper()
	tok := tokenizer.BuildDefault(500)
	jsonPDA, err := pda.Compile(builtin.JSON(), pda.AllOptimizations)
	if err != nil {
		t.Fatal(err)
	}
	jsonCache := maskcache.Build(jsonPDA, tok, maskcache.Options{ContextExpansion: true})
	jsonPool := serve.NewSessionPool(jsonPDA, jsonCache, tok, 0)

	task := workload.SchemaTasks(1, 5)[0]
	g, err := compileSchema(task.Schema)
	if err != nil {
		t.Fatal(err)
	}
	schemaPDA, err := pda.Compile(g, pda.AllOptimizations)
	if err != nil {
		t.Fatal(err)
	}
	schemaCache := maskcache.Build(schemaPDA, tok, maskcache.Options{ContextExpansion: true})
	schemaPool := serve.NewSessionPool(schemaPDA, schemaCache, tok, 0)

	return tok, baselines.NewPooledXGBackend(jsonPool, "json"),
		baselines.NewPooledXGBackend(schemaPool, "schema"), task
}

// streamReqs builds staggered-arrival stream requests alternating between
// the two grammars.
func streamReqs(tok *tokenizer.Tokenizer, jsonB, schemaB baselines.Backend, task workload.SchemaTask, n int, gap time.Duration) []*StreamRequest {
	jsonDocs := workload.JSONDocs(n, 99)
	reqs := make([]*StreamRequest, n)
	for i := 0; i < n; i++ {
		target := jsonDocs[i]
		backend := jsonB
		if i%2 == 1 {
			target = task.Instance
			backend = schemaB
		}
		reqs[i] = &StreamRequest{
			Req:     llmsim.NewRequests([]string{target}, 139)[0],
			Arrival: time.Duration(i) * gap,
			Grammar: backend,
		}
	}
	return reqs
}

// TestContinuousJoinLeave drives a mixed-grammar stream through a bounded
// batch: sequences must join and leave mid-run, the bound must hold, every
// output must match its target, and pooled sessions must be recycled across
// departures and admissions.
func TestContinuousJoinLeave(t *testing.T) {
	tok, jsonB, schemaB, task := pooledSetup(t)
	const n = 9
	reqs := streamReqs(tok, jsonB, schemaB, task, n, 2*time.Millisecond)
	met, outs, err := RunStream(StreamConfig{
		Model:    testModel(tok),
		Mode:     Overlap,
		Tok:      tok,
		MaxBatch: 3,
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range outs {
		if o != reqs[i].Req.Target {
			t.Fatalf("output %d = %q, want %q", i, o, reqs[i].Req.Target)
		}
	}
	if met.Joins != n || met.Leaves != n {
		t.Fatalf("joins/leaves = %d/%d, want %d/%d", met.Joins, met.Leaves, n, n)
	}
	if met.PeakBatch > 3 {
		t.Fatalf("peak batch %d exceeded MaxBatch 3", met.PeakBatch)
	}
	if met.PeakBatch < 2 {
		t.Fatalf("peak batch %d: no batching happened", met.PeakBatch)
	}
	if met.MaskCPU == 0 || met.FillWall == 0 {
		t.Fatalf("no grammar work measured: %+v", met)
	}
	if met.FillP99 < met.FillP50 || met.FillP50 <= 0 {
		t.Fatalf("fill percentiles inconsistent: p50=%v p99=%v", met.FillP50, met.FillP99)
	}
	// With 9 sequences through a 3-slot batch the pools must have recycled.
	jp := jsonB.Pool().Stats()
	sp := schemaB.Pool().Stats()
	if jp.Reused == 0 && sp.Reused == 0 {
		t.Fatalf("no session reuse across join/leave: json=%+v schema=%+v", jp, sp)
	}
}

// TestContinuousQueueing checks that a bounded batch queues arrived requests
// (positive queue wait) while an unbounded one admits them immediately.
func TestContinuousQueueing(t *testing.T) {
	tok, jsonB, schemaB, task := pooledSetup(t)
	reqs := streamReqs(tok, jsonB, schemaB, task, 8, 0)
	bounded, _, err := RunStream(StreamConfig{
		Model: testModel(tok), Mode: Overlap, Tok: tok, MaxBatch: 2,
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if bounded.QueueWait == 0 {
		t.Fatal("bounded batch reported zero queue wait")
	}
	if bounded.PeakBatch != 2 {
		t.Fatalf("peak batch %d, want 2", bounded.PeakBatch)
	}
	unbounded, _, err := RunStream(StreamConfig{
		Model: testModel(tok), Mode: Overlap, Tok: tok,
	}, streamReqs(tok, jsonB, schemaB, task, 8, 0))
	if err != nil {
		t.Fatal(err)
	}
	if unbounded.QueueWait != 0 {
		t.Fatalf("unbounded batch queued: %v", unbounded.QueueWait)
	}
	if unbounded.PeakBatch != 8 {
		t.Fatalf("unbounded peak batch %d, want 8", unbounded.PeakBatch)
	}
}

// TestContinuousOverlapBeatsSerial is the §3.5 claim on the continuous
// scheduler: hiding the batch fill behind the GPU step must reduce wall time
// against the same stream decoded serially.
func TestContinuousOverlapBeatsSerial(t *testing.T) {
	tok, jsonB, schemaB, task := pooledSetup(t)
	mk := func() []*StreamRequest {
		return streamReqs(tok, jsonB, schemaB, task, 6, time.Millisecond)
	}
	serial, _, err := RunStream(StreamConfig{
		Model: testModel(tok), Mode: Serial, Tok: tok, MaxBatch: 4,
	}, mk())
	if err != nil {
		t.Fatal(err)
	}
	overlap, _, err := RunStream(StreamConfig{
		Model: testModel(tok), Mode: Overlap, Tok: tok, MaxBatch: 4,
	}, mk())
	if err != nil {
		t.Fatal(err)
	}
	if overlap.Wall >= serial.Wall {
		t.Fatalf("overlap (%v) not faster than serial (%v)", overlap.Wall, serial.Wall)
	}
}

// TestContinuousMatchesFixedAtZeroArrivals pins the refactor invariant: Run
// (fixed batch) is exactly the continuous scheduler with all arrivals at
// zero and no batch bound.
func TestContinuousMatchesFixedAtZeroArrivals(t *testing.T) {
	tok, backend := testSetup(t)
	targets := jsonTargets(4)
	fixedMet, fixedOuts, err := Run(Config{Model: testModel(tok), Mode: Overlap, Grammar: backend, Tok: tok},
		llmsim.NewRequests(targets, 139))
	if err != nil {
		t.Fatal(err)
	}
	reqs := llmsim.NewRequests(targets, 139)
	streams := make([]*StreamRequest, len(reqs))
	for i, r := range reqs {
		streams[i] = &StreamRequest{Req: r}
	}
	streamMet, streamOuts, err := RunStream(StreamConfig{
		Model: testModel(tok), Mode: Overlap, Grammar: backend, Tok: tok,
	}, streams)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fixedOuts {
		if fixedOuts[i] != streamOuts[i] {
			t.Fatalf("output %d differs between Run and RunStream", i)
		}
	}
	if fixedMet.DecodeSteps != streamMet.DecodeSteps ||
		fixedMet.OutputTokens != streamMet.OutputTokens ||
		fixedMet.Requests != streamMet.Requests {
		t.Fatalf("deterministic metrics differ: fixed=%+v stream=%+v", fixedMet, streamMet.Metrics)
	}
	if streamMet.Joins != len(targets) || streamMet.PeakBatch != len(targets) {
		t.Fatalf("all-at-zero stream did not admit everything at once: %+v", streamMet)
	}
}

// fixedBatchReqs emulates the old fixed-batch engine on a staggered arrival
// stream: a static-batch server cannot start until its whole batch has
// arrived, so every request's effective arrival is the last one's.
func fixedBatchReqs(reqs []*StreamRequest) []*StreamRequest {
	var last time.Duration
	for _, r := range reqs {
		if r.Arrival > last {
			last = r.Arrival
		}
	}
	out := make([]*StreamRequest, len(reqs))
	for i, r := range reqs {
		c := *r
		c.Arrival = last
		out[i] = &c
	}
	return out
}

// TestContinuousAtLeastFixedThroughput is the acceptance claim: on a
// staggered arrival stream, the continuous scheduler in Overlap mode must at
// least match the old fixed-batch engine (which waits for the full batch
// before decoding).
func TestContinuousAtLeastFixedThroughput(t *testing.T) {
	tok, jsonB, schemaB, task := pooledSetup(t)
	arrivals := streamReqs(tok, jsonB, schemaB, task, 8, 2*time.Millisecond)
	fixed, _, err := RunStream(StreamConfig{Model: testModel(tok), Mode: Overlap, Tok: tok},
		fixedBatchReqs(arrivals))
	if err != nil {
		t.Fatal(err)
	}
	cont, _, err := RunStream(StreamConfig{Model: testModel(tok), Mode: Overlap, Tok: tok},
		streamReqs(tok, jsonB, schemaB, task, 8, 2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if cont.OutputTokens != fixed.OutputTokens {
		t.Fatalf("token counts differ: %d vs %d", cont.OutputTokens, fixed.OutputTokens)
	}
	if cont.Wall > fixed.Wall {
		t.Fatalf("continuous wall %v worse than fixed-batch wall %v", cont.Wall, fixed.Wall)
	}
	// The emulation shifts arrivals to the last one, so fixed.TTFT is
	// measured from the shifted arrival; add the mean shift back to compare
	// against the true arrival times the continuous run was measured from.
	var shift time.Duration
	for _, r := range arrivals {
		shift += arrivals[len(arrivals)-1].Arrival - r.Arrival
	}
	fixedTrueTTFT := fixed.TTFT + shift/time.Duration(len(arrivals))
	if cont.TTFT >= fixedTrueTTFT {
		t.Fatalf("continuous TTFT %v not better than fixed-batch TTFT %v", cont.TTFT, fixedTrueTTFT)
	}
}

// BenchmarkContinuousBatching measures stream throughput (tokens/s) for the
// continuous scheduler with joining/leaving sequences, against the old
// fixed-batch behavior (start after the last arrival) over the same work.
func BenchmarkContinuousBatching(b *testing.B) {
	tok, jsonB, schemaB, task := pooledSetup(b)
	model := testModel(tok)
	const n, gap = 8, time.Millisecond
	run := func(b *testing.B, mode Mode, maxBatch int, fixed bool) {
		for i := 0; i < b.N; i++ {
			reqs := streamReqs(tok, jsonB, schemaB, task, n, gap)
			if fixed {
				reqs = fixedBatchReqs(reqs)
			}
			met, _, err := RunStream(StreamConfig{Model: model, Mode: mode, Tok: tok, MaxBatch: maxBatch}, reqs)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(met.TokensPerSecond(), "tok/s")
		}
	}
	b.Run("fixed-overlap", func(b *testing.B) { run(b, Overlap, 0, true) })
	b.Run("continuous-overlap", func(b *testing.B) { run(b, Overlap, 0, false) })
	b.Run("continuous-serial", func(b *testing.B) { run(b, Serial, 0, false) })
}
