package engine

import (
	"math/rand"

	"xgrammar/internal/backend"
	"xgrammar/internal/backend/simllm"
	"xgrammar/internal/grammar"
	"xgrammar/internal/jsonschema"
	"xgrammar/internal/llmsim"
	"xgrammar/internal/tokenizer"
)

func compileSchema(schema []byte) (*grammar.Grammar, error) {
	return jsonschema.Compile(schema, jsonschema.Options{})
}

func newRng(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// testModel is the teacher-forced model backend over the fast test profile.
func testModel(tok *tokenizer.Tokenizer) backend.Backend {
	return simllm.NewTeacher(tok, testProfile(), simllm.TeacherOptions{})
}

// specModel is testModel with a configured simulated draft model.
func specModel(tok *tokenizer.Tokenizer, profile llmsim.Profile, acc float64, seed int64) backend.Backend {
	return simllm.NewTeacher(tok, profile, simllm.TeacherOptions{DraftAccuracy: acc, DraftSeed: seed})
}
