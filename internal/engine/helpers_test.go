package engine

import (
	"math/rand"

	"xgrammar/internal/grammar"
	"xgrammar/internal/jsonschema"
)

func compileSchema(schema []byte) (*grammar.Grammar, error) {
	return jsonschema.Compile(schema, jsonschema.Options{})
}

func newRng(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
