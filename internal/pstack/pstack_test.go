package pstack

import (
	"math/rand"
	"testing"
)

func TestPushPopBasics(t *testing.T) {
	tr := NewTree()
	s1 := tr.Push(Empty, 10)
	s2 := tr.Push(s1, 20)
	s3 := tr.Push(s2, 30)

	if tr.Top(s3) != 30 || tr.Top(s2) != 20 || tr.Top(s1) != 10 {
		t.Fatal("Top wrong")
	}
	if tr.Parent(s3) != s2 || tr.Parent(s2) != s1 || tr.Parent(s1) != Empty {
		t.Fatal("Parent wrong")
	}
	if tr.Depth(s3) != 3 || tr.Depth(Empty) != 0 {
		t.Fatal("Depth wrong")
	}
	vals := tr.Values(s3)
	if len(vals) != 3 || vals[0] != 10 || vals[1] != 20 || vals[2] != 30 {
		t.Fatalf("Values = %v", vals)
	}
}

func TestInterning(t *testing.T) {
	tr := NewTree()
	a := tr.Push(Empty, 7)
	b := tr.Push(Empty, 7)
	if a != b {
		t.Fatal("identical stacks got different ids")
	}
	c := tr.Push(a, 8)
	d := tr.Push(b, 8)
	if c != d {
		t.Fatal("identical two-level stacks got different ids")
	}
	e := tr.Push(a, 9)
	if e == c {
		t.Fatal("different stacks share an id")
	}
}

func TestBranchingShares(t *testing.T) {
	tr := NewTree()
	base := tr.Push(Empty, 1)
	l := tr.Push(base, 2)
	r := tr.Push(base, 3)
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (shared base)", tr.Len())
	}
	if tr.Parent(l) != base || tr.Parent(r) != base {
		t.Fatal("branches do not share base")
	}
}

func TestReleaseFrees(t *testing.T) {
	tr := NewTree()
	s1 := tr.Push(Empty, 1)
	s2 := tr.Push(s1, 2)
	s3 := tr.Push(s2, 3)
	// Release intermediate handles we don't own conceptually: s1, s2 each
	// have one external ref from Push plus child refs.
	tr.Release(s1)
	tr.Release(s2)
	if tr.Len() != 3 {
		t.Fatalf("Len = %d after releasing interior handles, want 3", tr.Len())
	}
	tr.Release(s3)
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after releasing leaf, want 0", tr.Len())
	}
}

func TestFreedSlotsReused(t *testing.T) {
	tr := NewTree()
	s := tr.Push(Empty, 1)
	tr.Release(s)
	if tr.Len() != 0 {
		t.Fatal("not freed")
	}
	s2 := tr.Push(Empty, 2)
	if tr.Cap() != 1 {
		t.Fatalf("Cap = %d, want slot reuse", tr.Cap())
	}
	if tr.Top(s2) != 2 {
		t.Fatal("reused slot corrupt")
	}
}

func TestRetainKeepsAlive(t *testing.T) {
	tr := NewTree()
	s := tr.Push(Empty, 1)
	tr.Retain(s)
	tr.Release(s)
	if tr.Len() != 1 {
		t.Fatal("retained node freed")
	}
	tr.Release(s)
	if tr.Len() != 0 {
		t.Fatal("node leaked")
	}
}

func TestInternAfterFree(t *testing.T) {
	tr := NewTree()
	s := tr.Push(Empty, 42)
	tr.Release(s)
	s2 := tr.Push(Empty, 42)
	if tr.Top(s2) != 42 || tr.Len() != 1 {
		t.Fatal("re-push after free broken")
	}
}

func TestOverReleasePanics(t *testing.T) {
	tr := NewTree()
	s := tr.Push(Empty, 1)
	tr.Release(s)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on over-release")
		}
	}()
	tr.Release(s)
}

func TestEmptyOps(t *testing.T) {
	tr := NewTree()
	tr.Retain(Empty)
	tr.Release(Empty)
	if tr.Depth(Empty) != 0 || len(tr.Values(Empty)) != 0 {
		t.Fatal("Empty misbehaves")
	}
}

func TestReset(t *testing.T) {
	tr := NewTree()
	tr.Push(Empty, 1)
	tr.Reset()
	if tr.Len() != 0 || tr.Cap() != 0 {
		t.Fatal("Reset incomplete")
	}
	s := tr.Push(Empty, 5)
	if tr.Top(s) != 5 {
		t.Fatal("push after reset broken")
	}
}

// Reference-model test: random pushes/releases mirrored against a simple
// slice-of-slices implementation.
func TestRandomizedAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tr := NewTree()
	type handle struct {
		id    int32
		model []int32
	}
	var handles []handle
	for step := 0; step < 3000; step++ {
		switch op := rng.Intn(3); {
		case op == 0 || len(handles) == 0: // push new from empty or existing
			var base handle
			if len(handles) > 0 && rng.Intn(2) == 0 {
				base = handles[rng.Intn(len(handles))]
			} else {
				base = handle{id: Empty}
			}
			v := int32(rng.Intn(20))
			id := tr.Push(base.id, v)
			model := append(append([]int32{}, base.model...), v)
			handles = append(handles, handle{id: id, model: model})
		case op == 1: // release one
			i := rng.Intn(len(handles))
			tr.Release(handles[i].id)
			handles[i] = handles[len(handles)-1]
			handles = handles[:len(handles)-1]
		default: // verify one
			h := handles[rng.Intn(len(handles))]
			got := tr.Values(h.id)
			if len(got) != len(h.model) {
				t.Fatalf("step %d: Values len %d, want %d", step, len(got), len(h.model))
			}
			for j := range got {
				if got[j] != h.model[j] {
					t.Fatalf("step %d: Values = %v, want %v", step, got, h.model)
				}
			}
		}
	}
	for _, h := range handles {
		tr.Release(h.id)
	}
	if tr.Len() != 0 {
		t.Fatalf("leak: %d live nodes after releasing all handles", tr.Len())
	}
}

func BenchmarkPushRelease(b *testing.B) {
	tr := NewTree()
	for i := 0; i < b.N; i++ {
		s := tr.Push(Empty, int32(i&7))
		s2 := tr.Push(s, int32(i&15))
		tr.Release(s)
		tr.Release(s2)
	}
}
