// Package pstack implements the persistent execution stack from §3.3 of the
// XGrammar paper. All matching stacks — the parallel stacks of the current
// step and retained stacks from previous steps — are stored as paths in a
// single tree. Pushing is O(1), branching a stack costs nothing (two stacks
// simply share a path prefix), and rolling back to an earlier step is a
// pointer swap.
//
// Stacks are identified by int32 ids; Empty denotes the empty stack. Nodes
// are interned: pushing the same value onto the same stack twice yields the
// same id, so stack equality is id equality and state deduplication in the
// matcher is a two-int comparison.
//
// Reference counting reclaims nodes once no external handle (and no child)
// refers to them. Callers own references returned by Push and must Release
// them (or hand ownership elsewhere) when done.
package pstack

import "fmt"

// Empty is the id of the empty stack.
const Empty int32 = -1

type node struct {
	parent int32
	val    int32
	refs   int32
	depth  int32
}

type internKey struct {
	parent int32
	val    int32
}

// Tree is a persistent stack arena. The zero value is ready to use.
type Tree struct {
	nodes  []node
	free   []int32
	intern map[internKey]int32
	live   int
}

// NewTree returns an empty tree.
func NewTree() *Tree {
	return &Tree{intern: make(map[internKey]int32)}
}

// Len returns the number of live nodes in the tree.
func (t *Tree) Len() int { return t.live }

// Cap returns the total number of allocated node slots (live + freed).
func (t *Tree) Cap() int { return len(t.nodes) }

// Push returns the stack formed by pushing val onto stack. The returned id
// carries a new reference owned by the caller. The stack argument is not
// consumed; its reference count is unchanged (the new node holds its own
// reference to the parent).
func (t *Tree) Push(stack int32, val int32) int32 {
	key := internKey{parent: stack, val: val}
	if id, ok := t.intern[key]; ok {
		t.nodes[id].refs++
		return id
	}
	depth := int32(1)
	if stack != Empty {
		t.nodes[stack].refs++ // child reference
		depth = t.nodes[stack].depth + 1
	}
	var id int32
	if n := len(t.free); n > 0 {
		id = t.free[n-1]
		t.free = t.free[:n-1]
		t.nodes[id] = node{parent: stack, val: val, refs: 1, depth: depth}
	} else {
		id = int32(len(t.nodes))
		t.nodes = append(t.nodes, node{parent: stack, val: val, refs: 1, depth: depth})
	}
	t.intern[key] = id
	t.live++
	return id
}

// Top returns the value on top of stack. It panics on the empty stack.
func (t *Tree) Top(stack int32) int32 {
	if stack == Empty {
		panic("pstack: Top of empty stack")
	}
	return t.nodes[stack].val
}

// Parent returns the stack below the top element. It panics on the empty
// stack. No reference counts change; the caller must Retain the result if it
// outlives the original reference.
func (t *Tree) Parent(stack int32) int32 {
	if stack == Empty {
		panic("pstack: Parent of empty stack")
	}
	return t.nodes[stack].parent
}

// Depth returns the number of elements in stack.
func (t *Tree) Depth(stack int32) int {
	if stack == Empty {
		return 0
	}
	return int(t.nodes[stack].depth)
}

// Retain adds a reference to stack. Retaining Empty is a no-op.
func (t *Tree) Retain(stack int32) {
	if stack != Empty {
		t.nodes[stack].refs++
	}
}

// Release drops a reference to stack, freeing nodes whose count reaches
// zero (cascading to parents). Releasing Empty is a no-op.
func (t *Tree) Release(stack int32) {
	for stack != Empty {
		n := &t.nodes[stack]
		n.refs--
		if n.refs > 0 {
			return
		}
		if n.refs < 0 {
			panic(fmt.Sprintf("pstack: over-release of node %d", stack))
		}
		delete(t.intern, internKey{parent: n.parent, val: n.val})
		t.free = append(t.free, stack)
		t.live--
		parent := n.parent
		stack = parent
	}
}

// Values returns the stack contents from bottom to top. For debugging and
// tests; allocates.
func (t *Tree) Values(stack int32) []int32 {
	d := t.Depth(stack)
	out := make([]int32, d)
	for i := d - 1; i >= 0; i-- {
		out[i] = t.nodes[stack].val
		stack = t.nodes[stack].parent
	}
	return out
}

// Reset discards all nodes. Outstanding ids become invalid.
func (t *Tree) Reset() {
	t.nodes = t.nodes[:0]
	t.free = t.free[:0]
	t.live = 0
	for k := range t.intern {
		delete(t.intern, k)
	}
}
