// Package maskcache implements the adaptive token mask cache (§3.1), the
// context-expansion filter (§3.2), the Algorithm 1 mask-merging procedure,
// and the prefix-sharing preprocessing pass built on the persistent
// execution stack (§3.3).
package maskcache

import "xgrammar/internal/matcher"

// prefixSim advances the PDA over a lexicographically sorted token stream,
// reusing the state sets of shared prefixes. levels[d] is the closed state
// set after consuming d bytes of the current token; overflowAt[d] records
// whether a branch completed the synthetic root frame at depth d (a
// context-dependent overflow, §3.1). The persistent stack tree makes
// rolling back to the shared prefix a slice truncation (§3.3).
//
// A prefixSim is reusable: init starts a new simulation reusing the buffers
// (and the executor's state-set freelist) left behind by the previous
// release, so steady-state mask generation allocates nothing.
type prefixSim struct {
	exec *matcher.Exec
	// levels[d] owns references for its states.
	levels     [][]matcher.State
	overflowAt []bool
	prev       []byte
	// CharsStepped counts bytes actually consumed (prefix sharing saves the
	// rest); CharsTotal counts the bytes that a naive scan would consume.
	CharsStepped int64
	CharsTotal   int64
	// ov is set by onPop, the pre-bound closure handed to Closure (bound once
	// per prefixSim so the per-byte step allocates no closure).
	ov    bool
	onPop func()
}

// init starts a simulation whose depth-0 set is the closure of root. The
// root set's references are adopted (the caller must not release them). Any
// previous simulation must have been released. Depth-0 overflows are
// ignored: the runtime pop-closure covers them.
func (s *prefixSim) init(exec *matcher.Exec, root []matcher.State) {
	s.exec = exec
	if s.onPop == nil {
		s.onPop = func() { s.ov = true }
	}
	s.CharsStepped = 0
	s.CharsTotal = 0
	s.prev = s.prev[:0]
	s.levels = append(s.levels[:0], exec.Closure(root, nil))
	s.overflowAt = append(s.overflowAt[:0], false)
}

// run consumes tok, sharing the common prefix with the previous token.
// It returns the depth reached (number of bytes consumed before dying, or
// len(tok)) and whether the automaton is still alive at that depth.
// Tokens must arrive in lexicographically sorted order for sharing to be
// effective; correctness does not depend on the order.
func (s *prefixSim) run(tok []byte) (depth int, alive bool) {
	cp := commonPrefix(s.prev, tok)
	if cp > len(s.levels)-1 {
		cp = len(s.levels) - 1
	}
	// Drop levels beyond the shared prefix.
	for d := len(s.levels) - 1; d > cp; d-- {
		s.exec.RecycleSet(s.levels[d])
		s.levels = s.levels[:d]
		s.overflowAt = s.overflowAt[:d]
	}
	s.prev = append(s.prev[:0], tok...)
	s.CharsTotal += int64(len(tok))

	for d := cp; d < len(tok); d++ {
		cur := s.levels[d]
		if len(cur) == 0 {
			return d, false
		}
		s.CharsStepped++
		stepped := s.exec.StepByte(cur, tok[d], s.exec.GetSet())
		s.ov = false
		closed := s.exec.Closure(stepped, s.onPop)
		s.levels = append(s.levels, closed)
		s.overflowAt = append(s.overflowAt, s.ov)
	}
	last := s.levels[len(tok)]
	return len(tok), len(last) > 0
}

// overflowDepths appends to dst every depth d in [1, upto] where a branch
// completed the root frame with bytes remaining.
func (s *prefixSim) overflowDepths(dst []int, upto int) []int {
	for d := 1; d <= upto && d < len(s.overflowAt); d++ {
		if s.overflowAt[d] {
			dst = append(dst, d)
		}
	}
	return dst
}

// release recycles all retained state sets; the prefixSim may be re-inited.
func (s *prefixSim) release() {
	for _, lv := range s.levels {
		s.exec.RecycleSet(lv)
	}
	s.levels = s.levels[:0]
	s.overflowAt = s.overflowAt[:0]
	s.prev = s.prev[:0]
}

func commonPrefix(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
