// Package maskcache implements the adaptive token mask cache (§3.1), the
// context-expansion filter (§3.2), the Algorithm 1 mask-merging procedure,
// and the prefix-sharing preprocessing pass built on the persistent
// execution stack (§3.3).
package maskcache

import "xgrammar/internal/matcher"

// prefixSim advances the PDA over a lexicographically sorted token stream,
// reusing the state sets of shared prefixes. levels[d] is the closed state
// set after consuming d bytes of the current token; overflowAt[d] records
// whether a branch completed the synthetic root frame at depth d (a
// context-dependent overflow, §3.1). The persistent stack tree makes
// rolling back to the shared prefix a slice truncation (§3.3).
type prefixSim struct {
	exec *matcher.Exec
	// levels[d] owns references for its states.
	levels     [][]matcher.State
	overflowAt []bool
	prev       []byte
	// CharsStepped counts bytes actually consumed (prefix sharing saves the
	// rest); CharsTotal counts the bytes that a naive scan would consume.
	CharsStepped int64
	CharsTotal   int64
}

// newPrefixSim starts a simulation whose depth-0 set is the closure of root.
// The root set's references are adopted (the caller must not release them).
func newPrefixSim(exec *matcher.Exec, root []matcher.State, trackOverflow bool) *prefixSim {
	s := &prefixSim{exec: exec}
	var onPop func()
	ov := false
	if trackOverflow {
		onPop = func() { ov = true }
	}
	closed := exec.Closure(root, onPop)
	_ = ov // depth-0 overflow is ignored: runtime pop-closure covers it
	s.levels = append(s.levels, closed)
	s.overflowAt = append(s.overflowAt, false)
	return s
}

// run consumes tok, sharing the common prefix with the previous token.
// It returns the depth reached (number of bytes consumed before dying, or
// len(tok)) and whether the automaton is still alive at that depth.
// Tokens must arrive in lexicographically sorted order for sharing to be
// effective; correctness does not depend on the order.
func (s *prefixSim) run(tok []byte) (depth int, alive bool) {
	cp := commonPrefix(s.prev, tok)
	if cp > len(s.levels)-1 {
		cp = len(s.levels) - 1
	}
	// Drop levels beyond the shared prefix.
	for d := len(s.levels) - 1; d > cp; d-- {
		s.exec.ReleaseSet(s.levels[d])
		s.levels = s.levels[:d]
		s.overflowAt = s.overflowAt[:d]
	}
	s.prev = append(s.prev[:0], tok...)
	s.CharsTotal += int64(len(tok))

	for d := cp; d < len(tok); d++ {
		cur := s.levels[d]
		if len(cur) == 0 {
			return d, false
		}
		s.CharsStepped++
		stepped := s.exec.StepByte(cur, tok[d], nil)
		ov := false
		closed := s.exec.Closure(stepped, func() { ov = true })
		s.levels = append(s.levels, closed)
		s.overflowAt = append(s.overflowAt, ov)
	}
	last := s.levels[len(tok)]
	return len(tok), len(last) > 0
}

// overflowDepths appends to dst every depth d in [1, upto] where a branch
// completed the root frame with bytes remaining.
func (s *prefixSim) overflowDepths(dst []int, upto int) []int {
	for d := 1; d <= upto && d < len(s.overflowAt); d++ {
		if s.overflowAt[d] {
			dst = append(dst, d)
		}
	}
	return dst
}

// release frees all retained state sets.
func (s *prefixSim) release() {
	for _, lv := range s.levels {
		s.exec.ReleaseSet(lv)
	}
	s.levels = nil
	s.overflowAt = nil
}

func commonPrefix(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
