package maskcache

import (
	"math/rand"
	"testing"

	"xgrammar/internal/bitset"
	"xgrammar/internal/ebnf"
	"xgrammar/internal/matcher"
	"xgrammar/internal/pda"
	"xgrammar/internal/tokenizer"
)

const jsonGrammar = `
root    ::= ws value ws
value   ::= object | array | string | number | "true" | "false" | "null"
object  ::= "{" ws ( member ( "," ws member )* )? "}"
member  ::= string ws ":" ws value ws
array   ::= "[" ws ( value ws ( "," ws value ws )* )? "]"
string  ::= "\"" char* "\""
char    ::= [^"\\\x00-\x1f] | "\\" escape
escape  ::= ["\\/bfnrt] | "u" hex hex hex hex
hex     ::= [0-9a-fA-F]
number  ::= "-"? int frac? exp?
int     ::= "0" | [1-9] [0-9]*
frac    ::= "." [0-9]+
exp     ::= [eE] [-+]? [0-9]+
ws      ::= [ \t\n\r]*
`

func buildAll(t testing.TB, src string, vocab int, copts Options, popts pda.Options) (*pda.PDA, *tokenizer.Tokenizer, *Cache) {
	t.Helper()
	g, err := ebnf.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := pda.Compile(g, popts)
	if err != nil {
		t.Fatal(err)
	}
	tok := tokenizer.BuildDefault(vocab)
	c := Build(p, tok, copts)
	return p, tok, c
}

// TestMaskMatchesFullScan is the load-bearing correctness test: on every
// decoding step of several JSON documents, the cached mask (with and without
// context expansion, with and without PDA optimizations) must exactly equal
// the ground-truth full-vocabulary scan.
func TestMaskMatchesFullScan(t *testing.T) {
	docs := []string{
		`{"name": "bob", "age": 42}`,
		`[1, 2.5, -3e+7, true, false, null]`,
		`{"nested": {"a": ["x", {"b": []}]}}`,
		`"string with \"escape\" and é"`,
	}
	configs := []struct {
		name  string
		copts Options
		popts pda.Options
	}{
		{"plain", Options{}, pda.Options{}},
		{"ctxexp", Options{ContextExpansion: true}, pda.Options{}},
		{"allopts", Options{ContextExpansion: true}, pda.AllOptimizations},
		{"inline-only", Options{}, pda.Options{RuleInlining: true}},
	}
	for _, cfg := range configs {
		p, tok, c := buildAll(t, jsonGrammar, 800, cfg.copts, cfg.popts)
		_ = p
		exec := matcher.NewExec(c.P)
		fc := NewFillContext(tok.VocabSize())
		got := bitset.New(tok.VocabSize())
		want := bitset.New(tok.VocabSize())
		for _, doc := range docs {
			m := matcher.New(exec, 0)
			for i := 0; i <= len(doc); i++ {
				canTerm := m.CanTerminate()
				c.FillMask(exec, m.States(), got, canTerm, fc)
				FullScanMask(exec, tok, m.States(), want, canTerm, true)
				if !got.Equal(want) {
					diff := 0
					for b := 0; b < tok.VocabSize() && diff < 5; b++ {
						if got.Get(b) != want.Get(b) {
							t.Errorf("cfg %s doc %q pos %d: token %d %q cache=%v scan=%v",
								cfg.name, doc, i, b, tok.TokenBytes(int32(b)), got.Get(b), want.Get(b))
							diff++
						}
					}
					t.Fatalf("cfg %s: mask mismatch at %q pos %d", cfg.name, doc, i)
				}
				if i < len(doc) {
					if !m.Advance([]byte{doc[i]}) {
						t.Fatalf("cfg %s: doc %q rejected at %d", cfg.name, doc, i)
					}
				}
			}
		}
	}
}

// TestFullScanSharedEqualsNaive checks that prefix-shared scanning is a pure
// optimization.
func TestFullScanSharedEqualsNaive(t *testing.T) {
	_, tok, c := buildAll(t, jsonGrammar, 500, Options{}, pda.AllOptimizations)
	exec := matcher.NewExec(c.P)
	m := matcher.New(exec, 0)
	m.Advance([]byte(`{"key`))
	a := bitset.New(tok.VocabSize())
	b := bitset.New(tok.VocabSize())
	FullScanMask(exec, tok, m.States(), a, m.CanTerminate(), true)
	FullScanMask(exec, tok, m.States(), b, m.CanTerminate(), false)
	if !a.Equal(b) {
		t.Fatal("shared and naive scans disagree")
	}
}

func TestMaskedTokensActuallyAdvance(t *testing.T) {
	// Property: every token allowed by the mask must be Advance-able, and a
	// sample of disallowed tokens must not be.
	_, tok, c := buildAll(t, jsonGrammar, 600, Options{ContextExpansion: true}, pda.AllOptimizations)
	exec := matcher.NewExec(c.P)
	fc := NewFillContext(tok.VocabSize())
	mask := bitset.New(tok.VocabSize())
	m := matcher.New(exec, 0)
	rng := rand.New(rand.NewSource(7))

	doc := `{"a": [1, "two"]}`
	for i := 0; i <= len(doc); i++ {
		c.FillMask(exec, m.States(), mask, m.CanTerminate(), fc)
		checked := 0
		for id := 0; id < tok.VocabSize() && checked < 40; id++ {
			if tok.IsSpecial(int32(id)) {
				continue
			}
			if rng.Intn(10) != 0 {
				continue
			}
			checked++
			can := m.CanAdvance(tok.TokenBytes(int32(id)))
			if mask.Get(id) != can {
				t.Fatalf("pos %d token %q: mask=%v CanAdvance=%v", i, tok.TokenBytes(int32(id)), mask.Get(id), can)
			}
		}
		if i < len(doc) {
			if !m.Advance([]byte{doc[i]}) {
				t.Fatalf("doc rejected at %d", i)
			}
		}
	}
}

func TestStopTokenOnlyAtTermination(t *testing.T) {
	_, tok, c := buildAll(t, jsonGrammar, 400, Options{ContextExpansion: true}, pda.AllOptimizations)
	exec := matcher.NewExec(c.P)
	fc := NewFillContext(tok.VocabSize())
	mask := bitset.New(tok.VocabSize())
	m := matcher.New(exec, 0)

	c.FillMask(exec, m.States(), mask, m.CanTerminate(), fc)
	if mask.Get(int(tokenizer.EosID)) {
		t.Fatal("EOS allowed before any input")
	}
	if !m.Advance([]byte(`[1]`)) {
		t.Fatal("advance failed")
	}
	c.FillMask(exec, m.States(), mask, m.CanTerminate(), fc)
	if !mask.Get(int(tokenizer.EosID)) {
		t.Fatal("EOS not allowed at complete document")
	}
	if mask.Get(int(tokenizer.PadID)) || mask.Get(int(tokenizer.BosID)) {
		t.Fatal("non-stop specials allowed")
	}
}

func TestContextExpansionReducesCtxTokens(t *testing.T) {
	_, _, plain := buildAll(t, jsonGrammar, 800, Options{}, pda.AllOptimizations)
	_, _, expanded := buildAll(t, jsonGrammar, 800, Options{ContextExpansion: true}, pda.AllOptimizations)
	ps, es := plain.Stats(), expanded.Stats()
	if es.CtxDependent >= ps.CtxDependent {
		t.Fatalf("context expansion did not reduce ctx tokens: %d -> %d", ps.CtxDependent, es.CtxDependent)
	}
	// The paper reports ~90% reduction for JSON; require at least half.
	if float64(es.CtxDependent) > 0.5*float64(ps.CtxDependent) {
		t.Errorf("weak reduction: %d -> %d", ps.CtxDependent, es.CtxDependent)
	}
}

func TestCtxTokensAreMinority(t *testing.T) {
	_, tok, c := buildAll(t, jsonGrammar, 800, Options{ContextExpansion: true}, pda.AllOptimizations)
	s := c.Stats()
	total := s.CIAccepted + s.CIRejected + s.CtxDependent
	if total == 0 {
		t.Fatal("no classifications")
	}
	frac := float64(s.CtxDependent) / float64(total)
	if frac > 0.05 {
		t.Fatalf("ctx-dependent fraction %.3f too high (paper: <1%%)", frac)
	}
	_ = tok
}

func TestAdaptiveStorageSavesMemory(t *testing.T) {
	// The paper's 0.2% figure is at a 128k vocabulary; the absolute saving
	// grows with vocabulary size, so at test scale we require a 2x saving.
	_, _, c := buildAll(t, jsonGrammar, 8000, Options{ContextExpansion: true}, pda.AllOptimizations)
	s := c.Stats()
	if s.StorageBytes*2 > s.FullBitsetBytes {
		t.Errorf("weak saving: %d vs %d", s.StorageBytes, s.FullBitsetBytes)
	}
}

func TestPrefixSharingSavesChars(t *testing.T) {
	_, _, c := buildAll(t, jsonGrammar, 800, Options{}, pda.AllOptimizations)
	s := c.Stats()
	if s.CharsStepped >= s.CharsTotal {
		t.Fatalf("prefix sharing saved nothing: %d vs %d", s.CharsStepped, s.CharsTotal)
	}
	if float64(s.CharsStepped) > 0.8*float64(s.CharsTotal) {
		t.Errorf("weak sharing: %d/%d", s.CharsStepped, s.CharsTotal)
	}
}

func TestStorageKindSelection(t *testing.T) {
	// makeNodeMask takes ownership of its slices, so each case builds fresh
	// inputs. vocab 320 -> 5 words -> listCap = 10 ids.
	vocab := 320
	manyIDs := func(lo, n int32) []int32 {
		out := make([]int32, 0, n)
		for i := int32(0); i < n; i++ {
			out = append(out, lo+i)
		}
		return out
	}
	// Mostly accepted: the reject-list is the sparse side.
	nm := makeNodeMask(manyIDs(0, 300), []int32{301, 302}, []int32{303}, vocab)
	if nm.Kind != RejectList {
		t.Fatalf("kind = %v, want reject-list", nm.Kind)
	}
	if nm.NumAccepted() != 300 {
		t.Fatalf("NumAccepted = %d, want 300", nm.NumAccepted())
	}
	// Mostly rejected: store the short accept-list.
	nm = makeNodeMask([]int32{1, 2}, manyIDs(3, 300), nil, vocab)
	if nm.Kind != AcceptList {
		t.Fatalf("kind = %v, want accept-list", nm.Kind)
	}
	// Balanced: both lists exceed listCap, the word mask wins
	// (vocab/8 = 40 bytes < 4*160).
	nm = makeNodeMask(manyIDs(0, 160), manyIDs(160, 160), nil, vocab)
	if nm.Kind != WordMask {
		t.Fatalf("kind = %v, want word-mask", nm.Kind)
	}
	if len(nm.Words) != 5 || nm.NumAccepted() != 160 {
		t.Fatalf("word-mask shape wrong: %d words, %d accepted", len(nm.Words), nm.NumAccepted())
	}
}

func TestCacheOnRecursiveGrammarSmall(t *testing.T) {
	// A grammar designed to stress pops: balanced parens.
	src := `root ::= "(" root ")" | "x"`
	_, tok, c := buildAll(t, src, 300, Options{ContextExpansion: true}, pda.AllOptimizations)
	exec := matcher.NewExec(c.P)
	fc := NewFillContext(tok.VocabSize())
	got := bitset.New(tok.VocabSize())
	want := bitset.New(tok.VocabSize())
	m := matcher.New(exec, 0)
	doc := "((x))"
	for i := 0; i <= len(doc); i++ {
		c.FillMask(exec, m.States(), got, m.CanTerminate(), fc)
		FullScanMask(exec, tok, m.States(), want, m.CanTerminate(), true)
		if !got.Equal(want) {
			t.Fatalf("mismatch at pos %d of %q", i, doc)
		}
		if i < len(doc) {
			if !m.Advance([]byte{doc[i]}) {
				t.Fatal("rejected")
			}
		}
	}
}
