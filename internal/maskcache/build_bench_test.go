// Cache-build benchmarks guard the compile-time vocabulary scan: the sharded
// build must stay at parity with a straight per-node scan, and finalizeNode
// must not churn allocations (shard buffers are recycled per worker).
package maskcache

import (
	"testing"

	"xgrammar/internal/ebnf"
	"xgrammar/internal/pda"
	"xgrammar/internal/tokenizer"
)

func BenchmarkCacheBuild2000(b *testing.B) {
	g, err := ebnf.Parse(jsonGrammar)
	if err != nil {
		b.Fatal(err)
	}
	p, err := pda.Compile(g, pda.AllOptimizations)
	if err != nil {
		b.Fatal(err)
	}
	tok := tokenizer.BuildDefault(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(p, tok, Options{ContextExpansion: true})
	}
}

func BenchmarkCacheBuildSerial2000(b *testing.B) {
	g, err := ebnf.Parse(jsonGrammar)
	if err != nil {
		b.Fatal(err)
	}
	p, err := pda.Compile(g, pda.AllOptimizations)
	if err != nil {
		b.Fatal(err)
	}
	tok := tokenizer.BuildDefault(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(p, tok, Options{ContextExpansion: true, Workers: 1})
	}
}
