package maskcache

import (
	"xgrammar/internal/bitset"
	"xgrammar/internal/matcher"
	"xgrammar/internal/tokenizer"
)

// FullScanMask computes the token mask by checking every vocabulary token
// against the PDA with the real stacks — the unoptimized baseline from the
// Table 3 ablation (and the approach of llama.cpp-style grammar engines).
//
// When sharePrefix is true the scan walks the vocabulary in lexicographic
// order reusing shared-prefix state sets (the §3.3 persistent-stack
// optimization); when false every token is checked from scratch.
func FullScanMask(exec *matcher.Exec, tok *tokenizer.Tokenizer, states []matcher.State, mask *bitset.Bitset, canTerminate bool, sharePrefix bool) {
	mask.ClearAll()
	if sharePrefix {
		var sim prefixSim
		sim.init(exec, exec.CloneSetInto(exec.GetSet(), states))
		for _, id := range tok.SortedRegularIDs() {
			if _, alive := sim.run(tok.TokenBytes(id)); alive {
				mask.Set(int(id))
			}
		}
		sim.release()
	} else {
		for _, id := range tok.SortedRegularIDs() {
			if exec.MatchBytes(states, tok.TokenBytes(id)) {
				mask.Set(int(id))
			}
		}
	}
	if canTerminate {
		for _, id := range tok.StopIDs() {
			mask.Set(int(id))
		}
	}
}
