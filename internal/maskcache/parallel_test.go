package maskcache

import (
	"reflect"
	"testing"

	"xgrammar/internal/builtin"
	"xgrammar/internal/pda"
	"xgrammar/internal/tokenizer"
)

// TestParallelBuildMatchesSerial is the determinism guarantee for the
// concurrent preprocessor: on the builtin JSON grammar, the parallel build
// must produce node masks and statistics identical to the serial build,
// with and without context expansion.
func TestParallelBuildMatchesSerial(t *testing.T) {
	p, err := pda.Compile(builtin.JSON(), pda.AllOptimizations)
	if err != nil {
		t.Fatal(err)
	}
	tok := tokenizer.BuildDefault(2000)
	for _, ctxExp := range []bool{false, true} {
		serial := Build(p, tok, Options{ContextExpansion: ctxExp, Workers: 1})
		for _, workers := range []int{2, 8, 64} {
			par := Build(p, tok, Options{ContextExpansion: ctxExp, Workers: workers})
			if !reflect.DeepEqual(serial.Nodes, par.Nodes) {
				for i := range serial.Nodes {
					if !reflect.DeepEqual(serial.Nodes[i], par.Nodes[i]) {
						t.Fatalf("ctxExp=%v workers=%d: node %d masks differ:\nserial %+v\npar    %+v",
							ctxExp, workers, i, serial.Nodes[i], par.Nodes[i])
					}
				}
				t.Fatalf("ctxExp=%v workers=%d: node masks differ", ctxExp, workers)
			}
			if serial.Stats() != par.Stats() {
				t.Fatalf("ctxExp=%v workers=%d: stats differ:\nserial %+v\npar    %+v",
					ctxExp, workers, serial.Stats(), par.Stats())
			}
		}
	}
}

// TestParallelBuildDefaultWorkers checks the GOMAXPROCS default path and that
// a worker count above the node count degrades gracefully.
func TestParallelBuildDefaultWorkers(t *testing.T) {
	p, err := pda.Compile(builtin.JSON(), pda.AllOptimizations)
	if err != nil {
		t.Fatal(err)
	}
	tok := tokenizer.BuildDefault(800)
	def := Build(p, tok, Options{ContextExpansion: true})
	serial := Build(p, tok, Options{ContextExpansion: true, Workers: 1})
	if !reflect.DeepEqual(def.Nodes, serial.Nodes) || def.Stats() != serial.Stats() {
		t.Fatal("default-worker build differs from serial build")
	}
}
