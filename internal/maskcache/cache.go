package maskcache

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"xgrammar/internal/bitset"
	"xgrammar/internal/fsa"
	"xgrammar/internal/matcher"
	"xgrammar/internal/pda"
	"xgrammar/internal/pstack"
	"xgrammar/internal/tokenizer"
)

// StorageKind is the adaptive storage format chosen for one node (§3.1).
type StorageKind uint8

const (
	// AcceptHeavy stores the rejected context-independent tokens.
	AcceptHeavy StorageKind = iota
	// RejectHeavy stores the accepted context-independent tokens.
	RejectHeavy
	// BitsetStore stores accepted context-independent tokens as a bitset.
	BitsetStore
)

func (k StorageKind) String() string {
	switch k {
	case AcceptHeavy:
		return "accept-heavy"
	case RejectHeavy:
		return "reject-heavy"
	default:
		return "bitset"
	}
}

// NodeMask is the cached classification for one PDA node as stack top.
type NodeMask struct {
	Kind StorageKind
	// Tokens holds the rejected (AcceptHeavy) or accepted (RejectHeavy)
	// context-independent token ids, sorted.
	Tokens []int32
	// Bits holds accepted context-independent tokens for BitsetStore.
	Bits []uint64
	// Ctx holds context-dependent token ids, sorted by id.
	Ctx []int32
	// counts for statistics
	numAccepted int
	numRejected int
}

// Options configures cache construction.
type Options struct {
	// ContextExpansion enables the §3.2 filter that reclassifies
	// context-dependent tokens as rejected using expanded-suffix automata.
	ContextExpansion bool
	// Workers bounds the preprocessing worker pool. Zero means
	// runtime.GOMAXPROCS(0); one forces the serial build. Every PDA node's
	// vocabulary scan is independent, so the cache (and its statistics) is
	// byte-identical for any worker count.
	Workers int
}

// Stats reports cache construction statistics (the §3.1–§3.3 numbers).
type Stats struct {
	Nodes           int
	VocabSize       int
	CIAccepted      int64
	CIRejected      int64
	CtxDependent    int64
	MaxCtxPerNode   int
	StorageBytes    int64 // adaptive storage cost
	FullBitsetBytes int64 // cost if every node stored a full bitset
	CharsStepped    int64 // bytes consumed with prefix sharing
	CharsTotal      int64 // bytes a naive per-token scan would consume
	KindCounts      [3]int
}

// Cache is the adaptive token mask cache: one NodeMask per PDA node.
type Cache struct {
	P     *pda.PDA
	Tok   *tokenizer.Tokenizer
	Vocab int
	Nodes []NodeMask
	stats Stats
}

// Build preprocesses the full vocabulary against every PDA node. Tokens are
// scanned in lexicographic order so the persistent-stack prefix sharing
// (§3.3) skips repeated prefixes. Nodes are classified independently, so the
// scan fans out across opts.Workers goroutines (each with a private executor
// and stack tree); only the statistics need a merge, and the result is
// byte-identical to the serial build.
func Build(p *pda.PDA, tok *tokenizer.Tokenizer, opts Options) *Cache {
	c := &Cache{P: p, Tok: tok, Vocab: tok.VocabSize(), Nodes: make([]NodeMask, len(p.Nodes))}
	c.stats.Nodes = len(p.Nodes)
	c.stats.VocabSize = c.Vocab

	// Expanded-suffix DFAs, one per rule (§3.2), shared read-only by all
	// workers.
	var ctxDFA []*fsa.DFA
	if opts.ContextExpansion {
		follow := p.FollowAutomata()
		ctxDFA = make([]*fsa.DFA, len(p.RuleStart))
		for r, ctx := range follow {
			d, err := fsa.Determinize(ctx)
			if err == nil {
				ctxDFA[r] = d
			}
		}
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(p.Nodes) {
		workers = len(p.Nodes)
	}

	if workers <= 1 {
		w := newBuildWorker(c, ctxDFA)
		for n := range p.Nodes {
			w.buildNode(n)
		}
		c.stats.mergeNodeStats(&w.stats)
	} else {
		var next atomic.Int64
		var mu sync.Mutex
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				w := newBuildWorker(c, ctxDFA)
				for {
					n := int(next.Add(1)) - 1
					if n >= len(p.Nodes) {
						break
					}
					w.buildNode(n)
				}
				mu.Lock()
				c.stats.mergeNodeStats(&w.stats)
				mu.Unlock()
			}()
		}
		wg.Wait()
	}

	for i := range c.Nodes {
		c.stats.StorageBytes += c.Nodes[i].storageBytes()
		c.stats.KindCounts[c.Nodes[i].Kind]++
	}
	c.stats.FullBitsetBytes = int64(len(p.Nodes)) * int64(bitset.WordsFor(c.Vocab)) * 8
	return c
}

// buildWorker classifies PDA nodes against the vocabulary. Each worker owns
// its executor (and therefore its persistent stack tree) plus scratch
// buffers; the shared Cache is written only at disjoint node indices.
type buildWorker struct {
	c      *Cache
	exec   *matcher.Exec
	sorted []int32
	ctxDFA []*fsa.DFA
	stats  Stats
	// scratch
	acc, rej, ctx []int32
	ovDepths      []int
	sim           prefixSim
}

func newBuildWorker(c *Cache, ctxDFA []*fsa.DFA) *buildWorker {
	return &buildWorker{c: c, exec: matcher.NewExec(c.P), sorted: c.Tok.SortedRegularIDs(), ctxDFA: ctxDFA}
}

// buildNode classifies every vocabulary token against node n as stack top
// and stores the resulting adaptive mask (§3.1).
func (w *buildWorker) buildNode(n int) {
	c := w.c
	if len(c.P.Nodes[n].Edges) == 0 {
		// Dead-end node: the runtime skips it (its pop-closure peers
		// carry the mask). Store an empty reject-heavy mask.
		c.Nodes[n] = NodeMask{Kind: RejectHeavy, numRejected: len(w.sorted)}
		w.stats.CIRejected += int64(len(w.sorted))
		return
	}
	acc, rej, ctx := w.acc[:0], w.rej[:0], w.ctx[:0]
	root := append(w.exec.GetSet(), matcher.State{Stack: pstack.Empty, Node: int32(n)})
	sim := &w.sim
	sim.init(w.exec, root)
	var dfa *fsa.DFA
	if w.ctxDFA != nil {
		dfa = w.ctxDFA[c.P.Nodes[n].Rule]
	}
	for _, id := range w.sorted {
		tb := c.Tok.TokenBytes(id)
		depth, alive := sim.run(tb)
		if alive {
			acc = append(acc, id)
			continue
		}
		w.ovDepths = sim.overflowDepths(w.ovDepths[:0], depth)
		isCtx := false
		for _, d := range w.ovDepths {
			if d == len(tb) {
				continue // exact completion: covered by pop-closure
			}
			suffix := tb[d:]
			if dfa == nil {
				isCtx = true
				break
			}
			res := dfa.MatchPrefix(suffix)
			if res.Alive || res.SawAccept {
				isCtx = true
				break
			}
		}
		if isCtx {
			ctx = append(ctx, id)
		} else {
			rej = append(rej, id)
		}
	}
	sim.release()
	w.stats.CharsStepped += sim.CharsStepped
	w.stats.CharsTotal += sim.CharsTotal
	c.Nodes[n] = makeNodeMask(acc, rej, ctx, c.Vocab)
	w.stats.CIAccepted += int64(len(acc))
	w.stats.CIRejected += int64(len(rej))
	w.stats.CtxDependent += int64(len(ctx))
	if len(ctx) > w.stats.MaxCtxPerNode {
		w.stats.MaxCtxPerNode = len(ctx)
	}
	w.acc, w.rej, w.ctx = acc, rej, ctx
}

// mergeNodeStats folds one worker's per-node counters into s. Sums and maxes
// commute, so the merged totals are independent of worker scheduling.
func (s *Stats) mergeNodeStats(o *Stats) {
	s.CIAccepted += o.CIAccepted
	s.CIRejected += o.CIRejected
	s.CtxDependent += o.CtxDependent
	s.CharsStepped += o.CharsStepped
	s.CharsTotal += o.CharsTotal
	if o.MaxCtxPerNode > s.MaxCtxPerNode {
		s.MaxCtxPerNode = o.MaxCtxPerNode
	}
}

// makeNodeMask selects the cheapest storage format (§3.1 adaptive storage).
func makeNodeMask(acc, rej, ctx []int32, vocab int) NodeMask {
	nm := NodeMask{numAccepted: len(acc), numRejected: len(rej)}
	nm.Ctx = append([]int32(nil), ctx...)
	sortIDs(nm.Ctx)

	costAccept := 4 * (len(rej) + len(ctx))
	costReject := 4 * (len(acc) + len(ctx))
	costBitset := bitset.WordsFor(vocab)*8 + 4*len(ctx)
	switch {
	case costAccept <= costReject && costAccept <= costBitset:
		nm.Kind = AcceptHeavy
		nm.Tokens = append([]int32(nil), rej...)
		sortIDs(nm.Tokens)
	case costReject <= costBitset:
		nm.Kind = RejectHeavy
		nm.Tokens = append([]int32(nil), acc...)
		sortIDs(nm.Tokens)
	default:
		nm.Kind = BitsetStore
		b := bitset.New(vocab)
		b.SetList(acc)
		nm.Bits = b.Words()
	}
	return nm
}

func sortIDs(ids []int32) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

func (nm *NodeMask) storageBytes() int64 {
	n := int64(4 * len(nm.Tokens))
	n += int64(8 * len(nm.Bits))
	n += int64(4 * len(nm.Ctx))
	return n
}

// Stats returns construction statistics.
func (c *Cache) Stats() Stats { return c.stats }

// FromParts reconstructs a cache from serialized components (the node masks
// and the recorded build statistics).
func FromParts(p *pda.PDA, tok *tokenizer.Tokenizer, nodes []NodeMask, stats Stats) *Cache {
	return &Cache{P: p, Tok: tok, Vocab: tok.VocabSize(), Nodes: nodes, stats: stats}
}

// WireMask is the serializable form of a NodeMask (gob needs exported
// fields only; the private counters are carried in the aggregate Stats).
type WireMask struct {
	Kind   StorageKind
	Tokens []int32
	Bits   []uint64
	Ctx    []int32
}

// ToWire converts node masks for serialization.
func (c *Cache) ToWire() []WireMask {
	out := make([]WireMask, len(c.Nodes))
	for i, nm := range c.Nodes {
		out[i] = WireMask{Kind: nm.Kind, Tokens: nm.Tokens, Bits: nm.Bits, Ctx: nm.Ctx}
	}
	return out
}

// FromWire converts serialized masks back.
func FromWire(ws []WireMask) []NodeMask {
	out := make([]NodeMask, len(ws))
	for i, w := range ws {
		out[i] = NodeMask{Kind: w.Kind, Tokens: w.Tokens, Bits: w.Bits, Ctx: w.Ctx}
	}
	return out
}
