package maskcache

import (
	"sort"

	"xgrammar/internal/bitset"
	"xgrammar/internal/fsa"
	"xgrammar/internal/matcher"
	"xgrammar/internal/pda"
	"xgrammar/internal/pstack"
	"xgrammar/internal/tokenizer"
)

// StorageKind is the adaptive storage format chosen for one node (§3.1).
type StorageKind uint8

const (
	// AcceptHeavy stores the rejected context-independent tokens.
	AcceptHeavy StorageKind = iota
	// RejectHeavy stores the accepted context-independent tokens.
	RejectHeavy
	// BitsetStore stores accepted context-independent tokens as a bitset.
	BitsetStore
)

func (k StorageKind) String() string {
	switch k {
	case AcceptHeavy:
		return "accept-heavy"
	case RejectHeavy:
		return "reject-heavy"
	default:
		return "bitset"
	}
}

// NodeMask is the cached classification for one PDA node as stack top.
type NodeMask struct {
	Kind StorageKind
	// Tokens holds the rejected (AcceptHeavy) or accepted (RejectHeavy)
	// context-independent token ids, sorted.
	Tokens []int32
	// Bits holds accepted context-independent tokens for BitsetStore.
	Bits []uint64
	// Ctx holds context-dependent token ids, sorted by id.
	Ctx []int32
	// counts for statistics
	numAccepted int
	numRejected int
}

// Options configures cache construction.
type Options struct {
	// ContextExpansion enables the §3.2 filter that reclassifies
	// context-dependent tokens as rejected using expanded-suffix automata.
	ContextExpansion bool
}

// Stats reports cache construction statistics (the §3.1–§3.3 numbers).
type Stats struct {
	Nodes           int
	VocabSize       int
	CIAccepted      int64
	CIRejected      int64
	CtxDependent    int64
	MaxCtxPerNode   int
	StorageBytes    int64 // adaptive storage cost
	FullBitsetBytes int64 // cost if every node stored a full bitset
	CharsStepped    int64 // bytes consumed with prefix sharing
	CharsTotal      int64 // bytes a naive per-token scan would consume
	KindCounts      [3]int
}

// Cache is the adaptive token mask cache: one NodeMask per PDA node.
type Cache struct {
	P     *pda.PDA
	Tok   *tokenizer.Tokenizer
	Vocab int
	Nodes []NodeMask
	stats Stats
}

// Build preprocesses the full vocabulary against every PDA node. Tokens are
// scanned in lexicographic order so the persistent-stack prefix sharing
// (§3.3) skips repeated prefixes.
func Build(p *pda.PDA, tok *tokenizer.Tokenizer, opts Options) *Cache {
	c := &Cache{P: p, Tok: tok, Vocab: tok.VocabSize(), Nodes: make([]NodeMask, len(p.Nodes))}
	c.stats.Nodes = len(p.Nodes)
	c.stats.VocabSize = c.Vocab

	// Expanded-suffix DFAs, one per rule (§3.2), built lazily.
	var ctxDFA []*fsa.DFA
	if opts.ContextExpansion {
		follow := p.FollowAutomata()
		ctxDFA = make([]*fsa.DFA, len(p.RuleStart))
		for r, ctx := range follow {
			d, err := fsa.Determinize(ctx)
			if err == nil {
				ctxDFA[r] = d
			}
		}
	}

	sorted := tok.SortedRegularIDs()
	exec := matcher.NewExec(p)
	var acc, rej, ctx []int32
	var ovDepths []int
	for n := range p.Nodes {
		if len(p.Nodes[n].Edges) == 0 {
			// Dead-end node: the runtime skips it (its pop-closure peers
			// carry the mask). Store an empty reject-heavy mask.
			c.Nodes[n] = NodeMask{Kind: RejectHeavy, numRejected: len(sorted)}
			c.stats.CIRejected += int64(len(sorted))
			continue
		}
		acc, rej, ctx = acc[:0], rej[:0], ctx[:0]
		root := []matcher.State{{Stack: pstack.Empty, Node: int32(n)}}
		sim := newPrefixSim(exec, root, true)
		var dfa *fsa.DFA
		if ctxDFA != nil {
			dfa = ctxDFA[p.Nodes[n].Rule]
		}
		for _, id := range sorted {
			tb := tok.TokenBytes(id)
			depth, alive := sim.run(tb)
			if alive {
				acc = append(acc, id)
				continue
			}
			ovDepths = sim.overflowDepths(ovDepths[:0], depth)
			isCtx := false
			for _, d := range ovDepths {
				if d == len(tb) {
					continue // exact completion: covered by pop-closure
				}
				suffix := tb[d:]
				if dfa == nil {
					isCtx = true
					break
				}
				res := dfa.MatchPrefix(suffix)
				if res.Alive || res.SawAccept {
					isCtx = true
					break
				}
			}
			if isCtx {
				ctx = append(ctx, id)
			} else {
				rej = append(rej, id)
			}
		}
		sim.release()
		c.stats.CharsStepped += sim.CharsStepped
		c.stats.CharsTotal += sim.CharsTotal
		c.Nodes[n] = makeNodeMask(acc, rej, ctx, c.Vocab)
		c.stats.CIAccepted += int64(len(acc))
		c.stats.CIRejected += int64(len(rej))
		c.stats.CtxDependent += int64(len(ctx))
		if len(ctx) > c.stats.MaxCtxPerNode {
			c.stats.MaxCtxPerNode = len(ctx)
		}
	}
	for i := range c.Nodes {
		c.stats.StorageBytes += c.Nodes[i].storageBytes()
		c.stats.KindCounts[c.Nodes[i].Kind]++
	}
	c.stats.FullBitsetBytes = int64(len(p.Nodes)) * int64(bitset.WordsFor(c.Vocab)) * 8
	return c
}

// makeNodeMask selects the cheapest storage format (§3.1 adaptive storage).
func makeNodeMask(acc, rej, ctx []int32, vocab int) NodeMask {
	nm := NodeMask{numAccepted: len(acc), numRejected: len(rej)}
	nm.Ctx = append([]int32(nil), ctx...)
	sortIDs(nm.Ctx)

	costAccept := 4 * (len(rej) + len(ctx))
	costReject := 4 * (len(acc) + len(ctx))
	costBitset := bitset.WordsFor(vocab)*8 + 4*len(ctx)
	switch {
	case costAccept <= costReject && costAccept <= costBitset:
		nm.Kind = AcceptHeavy
		nm.Tokens = append([]int32(nil), rej...)
		sortIDs(nm.Tokens)
	case costReject <= costBitset:
		nm.Kind = RejectHeavy
		nm.Tokens = append([]int32(nil), acc...)
		sortIDs(nm.Tokens)
	default:
		nm.Kind = BitsetStore
		b := bitset.New(vocab)
		b.SetList(acc)
		nm.Bits = b.Words()
	}
	return nm
}

func sortIDs(ids []int32) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

func (nm *NodeMask) storageBytes() int64 {
	n := int64(4 * len(nm.Tokens))
	n += int64(8 * len(nm.Bits))
	n += int64(4 * len(nm.Ctx))
	return n
}

// Stats returns construction statistics.
func (c *Cache) Stats() Stats { return c.stats }

// FromParts reconstructs a cache from serialized components (the node masks
// and the recorded build statistics).
func FromParts(p *pda.PDA, tok *tokenizer.Tokenizer, nodes []NodeMask, stats Stats) *Cache {
	return &Cache{P: p, Tok: tok, Vocab: tok.VocabSize(), Nodes: nodes, stats: stats}
}

// WireMask is the serializable form of a NodeMask (gob needs exported
// fields only; the private counters are carried in the aggregate Stats).
type WireMask struct {
	Kind   StorageKind
	Tokens []int32
	Bits   []uint64
	Ctx    []int32
}

// ToWire converts node masks for serialization.
func (c *Cache) ToWire() []WireMask {
	out := make([]WireMask, len(c.Nodes))
	for i, nm := range c.Nodes {
		out[i] = WireMask{Kind: nm.Kind, Tokens: nm.Tokens, Bits: nm.Bits, Ctx: nm.Ctx}
	}
	return out
}

// FromWire converts serialized masks back.
func FromWire(ws []WireMask) []NodeMask {
	out := make([]NodeMask, len(ws))
	for i, w := range ws {
		out[i] = NodeMask{Kind: w.Kind, Tokens: w.Tokens, Bits: w.Bits, Ctx: w.Ctx}
	}
	return out
}
