package maskcache

import (
	"math/bits"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"xgrammar/internal/bitset"
	"xgrammar/internal/fsa"
	"xgrammar/internal/matcher"
	"xgrammar/internal/pda"
	"xgrammar/internal/pstack"
	"xgrammar/internal/tokenizer"
)

// StorageKind is the adaptive storage format chosen for one node (§3.1),
// selected at compile time by the popcount of the node's context-independent
// accept set.
type StorageKind uint8

const (
	// AcceptList is the sparse representation: few tokens are accepted, so
	// the node stores the sorted accepted ids.
	AcceptList StorageKind = iota
	// RejectList is the dense representation: most tokens are accepted, so
	// the node stores the sorted rejected ids.
	RejectList
	// WordMask is the mid-density representation: both lists would be larger
	// than a bitmask, so the node stores the accepted set as []uint64 words.
	WordMask
)

func (k StorageKind) String() string {
	switch k {
	case AcceptList:
		return "accept-list"
	case RejectList:
		return "reject-list"
	default:
		return "word-mask"
	}
}

// NodeMask is the cached classification for one PDA node as stack top.
type NodeMask struct {
	Kind StorageKind
	// Tokens holds the accepted (AcceptList) or rejected (RejectList)
	// context-independent token ids, sorted ascending.
	Tokens []int32
	// Words holds the accepted context-independent tokens as a word bitmask
	// for WordMask nodes.
	Words []uint64
	// Ctx holds context-dependent token ids, sorted by id.
	Ctx []int32
	// canonical is the materialized context-independent accept mask (special
	// tokens clear), used by the fused fill to OR (or memcpy) whole words
	// instead of branching per token. For WordMask nodes it aliases Words;
	// for RejectList nodes it is materialized within the canonical budget;
	// nil means the fill falls back to the list form.
	canonical []uint64
	// counts for statistics
	numAccepted int
	numRejected int
}

// DefaultCanonicalBudget bounds the extra memory spent materializing
// canonical word masks for dense (RejectList) nodes. The adaptive lists
// remain the stored representation; canonicals are a bounded runtime cache.
const DefaultCanonicalBudget = 4 << 20

// Options configures cache construction.
type Options struct {
	// ContextExpansion enables the §3.2 filter that reclassifies
	// context-dependent tokens as rejected using expanded-suffix automata.
	ContextExpansion bool
	// Workers bounds the preprocessing worker pool. Zero means
	// runtime.GOMAXPROCS(0); one forces the serial build. The vocabulary scan
	// is sharded by token-trie subtree, and shard boundaries depend only on
	// the vocabulary, so the cache (and its statistics) is byte-identical for
	// any worker count.
	Workers int
	// CanonicalBudget bounds the bytes spent on materialized canonical word
	// masks (0 means DefaultCanonicalBudget, negative disables them).
	CanonicalBudget int64
}

// Stats reports cache construction statistics (the §3.1–§3.3 numbers).
type Stats struct {
	Nodes           int
	VocabSize       int
	CIAccepted      int64
	CIRejected      int64
	CtxDependent    int64
	MaxCtxPerNode   int
	StorageBytes    int64 // adaptive storage cost
	FullBitsetBytes int64 // cost if every node stored a full bitset
	CanonicalBytes  int64 // extra bytes spent on materialized canonical masks
	CharsStepped    int64 // bytes consumed with prefix sharing
	CharsTotal      int64 // bytes a naive per-token scan would consume
	// KindCounts counts nodes per StorageKind, indexed by AcceptList,
	// RejectList, WordMask.
	KindCounts [3]int
}

// Cache is the adaptive token mask cache: one NodeMask per PDA node.
type Cache struct {
	P     *pda.PDA
	Tok   *tokenizer.Tokenizer
	Vocab int
	Nodes []NodeMask
	// allWords is the full regular vocabulary as a word mask (every
	// non-special token set) — the identity the dense merge subtracts
	// reject-lists from.
	allWords []uint64
	stats    Stats
}

// vocabShard is a contiguous range [Lo, Hi) of the lexicographically sorted
// vocabulary. Boundaries are aligned to token-trie subtree edges so prefix
// sharing inside a shard is unharmed (tokens on opposite sides of a root
// boundary share no prefix to begin with).
type vocabShard struct{ Lo, Hi int }

// defaultMaxShards bounds the shard count. It is fixed (not derived from the
// worker count) so the shard structure — and therefore every per-shard
// statistic — is identical no matter how many workers run the build.
const defaultMaxShards = 64

// shardVocab splits the sorted vocabulary into at most maxShards contiguous
// shards, cutting at the shallowest token-trie boundary inside each target
// window: a cut where adjacent tokens share no prefix loses no prefix
// sharing at all, and a cut at depth d loses at most d shared bytes.
func shardVocab(tok *tokenizer.Tokenizer, maxShards int) []vocabShard {
	sorted := tok.SortedRegularIDs()
	total := len(sorted)
	if total == 0 {
		return nil
	}
	target := (total + maxShards - 1) / maxShards
	// Every shard pays one root closure and restarts prefix sharing, so tiny
	// shards cost more in overhead than they buy in parallelism; small
	// vocabularies get few (or single) shards.
	if target < 1024 {
		target = 1024
	}
	var out []vocabShard
	lo := 0
	for lo < total {
		if total-lo <= target*3/2 {
			out = append(out, vocabShard{lo, total})
			break
		}
		hi := lo + target
		maxHi := lo + target*2
		if maxHi > total {
			maxHi = total
		}
		cut, cutDepth := maxHi, 1<<30
		for i := hi; i < maxHi; i++ {
			d := commonPrefix(tok.TokenBytes(sorted[i-1]), tok.TokenBytes(sorted[i]))
			if d < cutDepth {
				cut, cutDepth = i, d
			}
			if d == 0 {
				break // a trie-root boundary: the perfect cut
			}
		}
		out = append(out, vocabShard{lo, cut})
		lo = cut
	}
	return out
}

// shardResult holds one (node, shard) scan's classification, in the shard's
// byte-lexicographic order.
type shardResult struct {
	acc, rej, ctx []int32
}

// Build preprocesses the full vocabulary against every PDA node. The scan is
// sharded two ways: across nodes, and — within a node — across token-trie
// subtrees of the sorted vocabulary, so even a grammar with few states keeps
// every worker busy. Shard results concatenate in shard order and land
// directly in the node's adaptive representation; shard boundaries are
// worker-independent, so the result (and its statistics) is byte-identical
// for any worker count.
func Build(p *pda.PDA, tok *tokenizer.Tokenizer, opts Options) *Cache {
	c := &Cache{P: p, Tok: tok, Vocab: tok.VocabSize(), Nodes: make([]NodeMask, len(p.Nodes))}
	c.stats.Nodes = len(p.Nodes)
	c.stats.VocabSize = c.Vocab
	c.buildAllWords()

	// Expanded-suffix DFAs, one per rule (§3.2), shared read-only by all
	// workers.
	var ctxDFA []*fsa.DFA
	if opts.ContextExpansion {
		follow := p.FollowAutomata()
		ctxDFA = make([]*fsa.DFA, len(p.RuleStart))
		for r, ctx := range follow {
			d, err := fsa.Determinize(ctx)
			if err == nil {
				ctxDFA[r] = d
			}
		}
	}

	// Dead-end nodes are finalized without a scan; the rest become
	// node-major × shard-minor tasks.
	sorted := tok.SortedRegularIDs()
	var scanNodes []int32
	for n := range p.Nodes {
		if len(p.Nodes[n].Edges) == 0 {
			// Dead-end node: the runtime skips it (its pop-closure peers
			// carry the mask). Store an empty sparse mask.
			c.Nodes[n] = NodeMask{Kind: AcceptList, numRejected: len(sorted)}
			c.stats.CIRejected += int64(len(sorted))
			continue
		}
		scanNodes = append(scanNodes, int32(n))
	}

	shards := shardVocab(tok, defaultMaxShards)
	nsh := len(shards)
	numTasks := len(scanNodes) * nsh
	if numTasks > 0 {
		results := make([]shardResult, numTasks)
		remaining := make([]atomic.Int32, len(scanNodes))
		for i := range remaining {
			remaining[i].Store(int32(nsh))
		}

		workers := opts.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > numTasks {
			workers = numTasks
		}

		run := func(w *buildWorker) {
			for {
				t := int(w.next.Add(1)) - 1
				if t >= numTasks {
					return
				}
				ni, si := t/nsh, t%nsh
				if len(w.free) > 0 {
					results[t] = w.free[len(w.free)-1]
					w.free = w.free[:len(w.free)-1]
				}
				w.scanShard(int(scanNodes[ni]), shards[si], &results[t])
				if remaining[ni].Add(-1) == 0 {
					w.finalizeNode(int(scanNodes[ni]), results[ni*nsh:(ni+1)*nsh])
				}
			}
		}

		var next atomic.Int64
		if workers <= 1 {
			w := newBuildWorker(c, ctxDFA, &next)
			run(w)
			c.stats.mergeNodeStats(&w.stats)
		} else {
			var mu sync.Mutex
			var wg sync.WaitGroup
			for i := 0; i < workers; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					w := newBuildWorker(c, ctxDFA, &next)
					run(w)
					mu.Lock()
					c.stats.mergeNodeStats(&w.stats)
					mu.Unlock()
				}()
			}
			wg.Wait()
		}
	}

	for i := range c.Nodes {
		c.stats.StorageBytes += c.Nodes[i].storageBytes()
		c.stats.KindCounts[c.Nodes[i].Kind]++
	}
	c.stats.FullBitsetBytes = int64(len(p.Nodes)) * int64(bitset.WordsFor(c.Vocab)) * 8
	c.materializeCanonical(opts.CanonicalBudget)
	return c
}

// buildAllWords materializes the all-regular-tokens mask.
func (c *Cache) buildAllWords() {
	b := bitset.New(c.Vocab)
	b.SetAll()
	for _, id := range c.Tok.SpecialIDs() {
		b.Clear(int(id))
	}
	c.allWords = b.Words()
}

// materializeCanonical gives every node a word-level canonical accept mask
// where it pays: WordMask nodes alias their stored words for free; dense
// RejectList nodes get one materialized (identity minus the reject and ctx
// lists) while the byte budget lasts, turning their share of the fused merge
// into a single OR (or, alone, a memcpy). Sparse AcceptList nodes stay as
// lists — clearing the mask and setting a short list already runs at word
// speed. Deterministic: nodes are visited in index order.
func (c *Cache) materializeCanonical(budget int64) {
	if budget == 0 {
		budget = DefaultCanonicalBudget
	}
	cost := int64(bitset.WordsFor(c.Vocab)) * 8
	for i := range c.Nodes {
		nm := &c.Nodes[i]
		switch nm.Kind {
		case WordMask:
			nm.canonical = nm.Words
		case RejectList:
			if budget < cost || len(c.P.Nodes[i].Edges) == 0 {
				continue
			}
			b := bitset.New(c.Vocab)
			b.CopyWordsCount(c.allWords)
			b.ClearList(nm.Tokens)
			b.ClearList(nm.Ctx)
			nm.canonical = b.Words()
			budget -= cost
			c.stats.CanonicalBytes += cost
		}
	}
}

// buildWorker scans (node, shard) tasks. Each worker owns its executor (and
// therefore its persistent stack tree) plus scratch buffers; the shared
// Cache is written only at disjoint node indices.
type buildWorker struct {
	c      *Cache
	exec   *matcher.Exec
	sorted []int32
	ctxDFA []*fsa.DFA
	stats  Stats
	next   *atomic.Int64
	// scratch
	ovDepths []int
	sim      prefixSim
	// free recycles shard scan buffers: finalizeNode returns the node's
	// buffers here once their contents are folded into the stored mask, and
	// the run loop hands them back out for upcoming tasks. Ownership is
	// race-free — a finalizing worker acquires the buffers through the
	// node's remaining-counter decrement.
	free []shardResult
}

func newBuildWorker(c *Cache, ctxDFA []*fsa.DFA, next *atomic.Int64) *buildWorker {
	return &buildWorker{c: c, exec: matcher.NewExec(c.P), sorted: c.Tok.SortedRegularIDs(), ctxDFA: ctxDFA, next: next}
}

// scanShard classifies the shard's tokens against node n as stack top,
// appending to res in byte-lexicographic order.
func (w *buildWorker) scanShard(n int, sh vocabShard, res *shardResult) {
	c := w.c
	root := append(w.exec.GetSet(), matcher.State{Stack: pstack.Empty, Node: int32(n)})
	sim := &w.sim
	sim.init(w.exec, root)
	var dfa *fsa.DFA
	if w.ctxDFA != nil {
		dfa = w.ctxDFA[c.P.Nodes[n].Rule]
	}
	for _, id := range w.sorted[sh.Lo:sh.Hi] {
		tb := c.Tok.TokenBytes(id)
		depth, alive := sim.run(tb)
		if alive {
			res.acc = append(res.acc, id)
			continue
		}
		w.ovDepths = sim.overflowDepths(w.ovDepths[:0], depth)
		isCtx := false
		for _, d := range w.ovDepths {
			if d == len(tb) {
				continue // exact completion: covered by pop-closure
			}
			suffix := tb[d:]
			if dfa == nil {
				isCtx = true
				break
			}
			r := dfa.MatchPrefix(suffix)
			if r.Alive || r.SawAccept {
				isCtx = true
				break
			}
		}
		if isCtx {
			res.ctx = append(res.ctx, id)
		} else {
			res.rej = append(res.rej, id)
		}
	}
	sim.release()
	w.stats.CharsStepped += sim.CharsStepped
	w.stats.CharsTotal += sim.CharsTotal
}

// finalizeNode folds the node's shard results straight into the selected
// adaptive representation. Only the stored list is concatenated and sorted —
// the discarded side contributes nothing but its length to kind selection,
// and on dense grammars it runs to the whole vocabulary. Runs once per node,
// on whichever worker finished the node's last shard; that worker then owns
// the shard buffers and recycles them through its freelist.
func (w *buildWorker) finalizeNode(n int, parts []shardResult) {
	var na, nr, nc int
	for i := range parts {
		na += len(parts[i].acc)
		nr += len(parts[i].rej)
		nc += len(parts[i].ctx)
	}
	nm := NodeMask{Kind: selectKind(na, nr, w.c.Vocab), numAccepted: na, numRejected: nr}
	if nc > 0 {
		ctx := make([]int32, 0, nc)
		for i := range parts {
			ctx = append(ctx, parts[i].ctx...)
		}
		slices.Sort(ctx)
		nm.Ctx = ctx
	}
	switch nm.Kind {
	case AcceptList:
		if na > 0 {
			tokens := make([]int32, 0, na)
			for i := range parts {
				tokens = append(tokens, parts[i].acc...)
			}
			slices.Sort(tokens)
			nm.Tokens = tokens
		}
	case RejectList:
		if nr > 0 {
			tokens := make([]int32, 0, nr)
			for i := range parts {
				tokens = append(tokens, parts[i].rej...)
			}
			slices.Sort(tokens)
			nm.Tokens = tokens
		}
	default:
		b := bitset.New(w.c.Vocab)
		for i := range parts {
			b.SetList(parts[i].acc)
		}
		nm.Words = b.Words()
	}
	w.c.Nodes[n] = nm
	for i := range parts {
		w.free = append(w.free, shardResult{acc: parts[i].acc[:0], rej: parts[i].rej[:0], ctx: parts[i].ctx[:0]})
		parts[i] = shardResult{}
	}
	w.stats.CIAccepted += int64(na)
	w.stats.CIRejected += int64(nr)
	w.stats.CtxDependent += int64(nc)
	if nc > w.stats.MaxCtxPerNode {
		w.stats.MaxCtxPerNode = nc
	}
}

// mergeNodeStats folds one worker's per-node counters into s. Sums and maxes
// commute, so the merged totals are independent of worker scheduling.
func (s *Stats) mergeNodeStats(o *Stats) {
	s.CIAccepted += o.CIAccepted
	s.CIRejected += o.CIRejected
	s.CtxDependent += o.CtxDependent
	s.CharsStepped += o.CharsStepped
	s.CharsTotal += o.CharsTotal
	if o.MaxCtxPerNode > s.MaxCtxPerNode {
		s.MaxCtxPerNode = o.MaxCtxPerNode
	}
}

// selectKind picks the storage format by popcount (§3.1 adaptive storage):
// a sorted id list costs 4 bytes per token, a word bitmask costs
// WordsFor(vocab)*8 bytes regardless, so lists win below listCap ids.
func selectKind(numAcc, numRej, vocab int) StorageKind {
	listCap := 2 * bitset.WordsFor(vocab)
	switch {
	case numAcc <= numRej && numAcc <= listCap:
		return AcceptList
	case numRej <= listCap:
		return RejectList
	default:
		return WordMask
	}
}

// makeNodeMask builds a node mask from flat accept/reject/ctx id lists. The
// input slices are taken over; only the one list that is actually stored
// gets sorted by id (sorting the discarded side would dominate build time
// on dense grammars, where the accept list runs to the whole vocabulary).
func makeNodeMask(acc, rej, ctx []int32, vocab int) NodeMask {
	slices.Sort(ctx)
	nm := NodeMask{numAccepted: len(acc), numRejected: len(rej), Ctx: ctx}

	switch nm.Kind = selectKind(len(acc), len(rej), vocab); nm.Kind {
	case AcceptList:
		slices.Sort(acc)
		nm.Tokens = acc
	case RejectList:
		slices.Sort(rej)
		nm.Tokens = rej
	default:
		b := bitset.New(vocab)
		b.SetList(acc)
		nm.Words = b.Words()
	}
	return nm
}

func (nm *NodeMask) storageBytes() int64 {
	n := int64(4 * len(nm.Tokens))
	n += int64(8 * len(nm.Words))
	n += int64(4 * len(nm.Ctx))
	return n
}

// NumAccepted returns the size of the node's context-independent accept set.
func (nm *NodeMask) NumAccepted() int { return nm.numAccepted }

// Stats returns construction statistics.
func (c *Cache) Stats() Stats { return c.stats }

// FromParts reconstructs a cache from serialized components (the node masks
// and the recorded build statistics), rebuilding the derived runtime state:
// the identity mask, per-node counters, and the canonical word masks.
func FromParts(p *pda.PDA, tok *tokenizer.Tokenizer, nodes []NodeMask, stats Stats) *Cache {
	c := &Cache{P: p, Tok: tok, Vocab: tok.VocabSize(), Nodes: nodes, stats: stats}
	c.buildAllWords()
	regular := len(tok.SortedRegularIDs())
	for i := range c.Nodes {
		nm := &c.Nodes[i]
		switch nm.Kind {
		case AcceptList:
			nm.numAccepted = len(nm.Tokens)
		case RejectList:
			nm.numAccepted = regular - len(nm.Tokens) - len(nm.Ctx)
		case WordMask:
			nm.numAccepted = 0
			for _, w := range nm.Words {
				nm.numAccepted += bits.OnesCount64(w)
			}
		}
		nm.numRejected = regular - nm.numAccepted - len(nm.Ctx)
	}
	c.stats.CanonicalBytes = 0
	c.materializeCanonical(0)
	return c
}

// WireMask is the serializable form of a NodeMask (gob needs exported
// fields only; the private counters are carried in the aggregate Stats).
// The Bits field name is kept from the previous wire version so version-2
// blobs decode into the same struct; it carries Words for WordMask nodes.
type WireMask struct {
	Kind   StorageKind
	Tokens []int32
	Bits   []uint64
	Ctx    []int32
	// AcceptCount is the popcount of the node's context-independent accept
	// set — redundant with the lists, carried so the loader can verify the
	// storage kind and token lists agree (a flipped Kind silently inverts
	// mask semantics; bounds checks alone cannot catch it).
	AcceptCount int32
}

// ToWire converts node masks for serialization.
func (c *Cache) ToWire() []WireMask {
	out := make([]WireMask, len(c.Nodes))
	for i, nm := range c.Nodes {
		out[i] = WireMask{Kind: nm.Kind, Tokens: nm.Tokens, Bits: nm.Words, Ctx: nm.Ctx, AcceptCount: int32(nm.numAccepted)}
	}
	return out
}

// FromWire converts serialized masks back. The caller (FromParts) rebuilds
// the derived counters and canonical masks.
func FromWire(ws []WireMask) []NodeMask {
	out := make([]NodeMask, len(ws))
	for i, w := range ws {
		out[i] = NodeMask{Kind: w.Kind, Tokens: w.Tokens, Words: w.Bits, Ctx: w.Ctx}
	}
	return out
}
