package maskcache

import (
	"slices"

	"xgrammar/internal/bitset"
	"xgrammar/internal/matcher"
)

// FillContext holds reusable scratch buffers for mask generation; one per
// concurrent decoding sequence. Every buffer (including the prefix-sharing
// simulator for context-dependent tokens) is reused across steps, so
// steady-state mask generation performs no heap allocations.
type FillContext struct {
	nodes    []int32
	ctxIDs   []int32
	ctxTmp   []int32 // union scratch for the per-node ctx lists
	byteRank []int32 // token id -> lexicographic rank, built lazily
	// Dense-merge scratch: reject-list nodes without a canonical mask, and
	// double-buffered except-list intersection.
	rejNodes   []int32
	excA, excB []int32
	excU       []int32
	sim        prefixSim
}

// FillStats describes one mask-generation step.
type FillStats struct {
	States      int
	UniqueNodes int
	CtxChecked  int
	CtxAccepted int
	// Accepted is the popcount of the finished mask, maintained by the fused
	// merge as it goes (no final re-scan).
	Accepted int
	// FastPath is true when the merge was skipped entirely and a canonical
	// precomputed mask was copied word-for-word.
	FastPath bool
}

// NewFillContext returns a scratch context for a vocabulary of the given size.
func NewFillContext(vocab int) *FillContext {
	_ = vocab
	return &FillContext{}
}

// FillMask computes the complete token mask for the current (closed) state
// set. The context-independent phase is a fused word-level merge: the final
// mask is the union of each unique node's CI accept set, built with whole-word
// OR/AndNot/popcount ops — a node with a canonical precomputed mask
// contributes one OR pass (and a lone such node is a straight memcpy), sparse
// accept-lists contribute a counted SetList, and dense reject-lists are
// intersected and subtracted from the full-vocabulary identity in a single
// pass. Context-dependent tokens are then resolved by executing the PDA with
// the real stacks (prefix-shared, §3.3) and can only turn bits on: a token
// CI-accepted by any node is necessarily alive under the full state set, so
// no contribution is ever retracted. Special tokens never enter the identity
// mask, so they need no final clearing; stop tokens are set iff canTerminate.
//
//xg:hotpath
func (c *Cache) FillMask(exec *matcher.Exec, states []matcher.State, mask *bitset.Bitset, canTerminate bool, fc *FillContext) FillStats {
	st := FillStats{States: len(states)}
	// Unique stack-top nodes that can consume input.
	fc.nodes = fc.nodes[:0]
	for _, s := range states {
		if len(c.P.Nodes[s.Node].Edges) == 0 {
			continue
		}
		dup := false
		for _, n := range fc.nodes {
			if n == s.Node {
				dup = true
				break
			}
		}
		if !dup {
			fc.nodes = append(fc.nodes, s.Node)
		}
	}
	st.UniqueNodes = len(fc.nodes)

	// Context-independent phase. The running count invariant: word-level ops
	// over the whole mask return the absolute popcount (assign), list ops
	// return the newly-set delta (add) — correct under any interleaving
	// because the mask starts cleared.
	count := 0
	if len(fc.nodes) == 1 && c.Nodes[fc.nodes[0]].canonical != nil {
		count = mask.CopyWordsCount(c.Nodes[fc.nodes[0]].canonical)
		st.FastPath = true
	} else {
		mask.ClearAll()
		fc.rejNodes = fc.rejNodes[:0]
		for _, n := range fc.nodes {
			nm := &c.Nodes[n]
			switch {
			case nm.canonical != nil:
				count = mask.OrWordsCount(nm.canonical)
			case nm.Kind == AcceptList:
				count += mask.SetListCount(nm.Tokens)
			default:
				fc.rejNodes = append(fc.rejNodes, n)
			}
		}
		if len(fc.rejNodes) > 0 {
			// Union over dense nodes of (ALL \ E_i) = ALL \ ∩E_i where
			// E_i = Rejected_i ∪ Ctx_i: intersect the except-lists, then one
			// fused pass over the identity words.
			nm0 := &c.Nodes[fc.rejNodes[0]]
			a := bitset.UnionSorted(fc.excA[:0], nm0.Tokens, nm0.Ctx)
			b := fc.excB[:0]
			for _, n := range fc.rejNodes[1:] {
				nm := &c.Nodes[n]
				fc.excU = bitset.UnionSorted(fc.excU[:0], nm.Tokens, nm.Ctx)
				b = bitset.IntersectSorted(b[:0], a, fc.excU)
				a, b = b, a
			}
			count = mask.OrExceptList(c.allWords, a)
			fc.excA, fc.excB = a, b
		}
	}

	// Context-dependent phase: union the per-node ctx lists, then resolve
	// each token against the real stacks. Set-only — see the invariant above.
	fc.ctxIDs = fc.ctxIDs[:0]
	for _, n := range fc.nodes {
		fc.ctxTmp = append(fc.ctxTmp[:0], fc.ctxIDs...)
		fc.ctxIDs = bitset.UnionSorted(fc.ctxIDs[:0], fc.ctxTmp, c.Nodes[n].Ctx)
	}
	if len(fc.ctxIDs) > 0 {
		c.sortByBytes(fc.ctxIDs, fc)
		sim := &fc.sim
		sim.init(exec, exec.CloneSetInto(exec.GetSet(), states))
		for _, id := range fc.ctxIDs {
			_, alive := sim.run(c.Tok.TokenBytes(id))
			st.CtxChecked++
			if alive {
				st.CtxAccepted++
				if !mask.Get(int(id)) {
					mask.Set(int(id))
					count++
				}
			}
		}
		sim.release()
	}

	// Stop tokens (special tokens are never set by the merge: the identity
	// mask, canonical masks, and all stored lists exclude them).
	if canTerminate {
		for _, id := range c.Tok.StopIDs() {
			if !mask.Get(int(id)) {
				mask.Set(int(id))
				count++
			}
		}
	}
	st.Accepted = count
	return st
}

// sortByBytes orders token ids by the lexicographic rank of their bytes, the
// order that maximizes prefix sharing during resolution. slices.SortFunc on
// the id slice with a rank lookup is allocation-free.
func (c *Cache) sortByBytes(ids []int32, fc *FillContext) {
	if fc.byteRank == nil {
		fc.byteRank = make([]int32, c.Vocab)
		for rank, id := range c.Tok.SortedRegularIDs() {
			fc.byteRank[id] = int32(rank)
		}
	}
	rank := fc.byteRank
	slices.SortFunc(ids, func(a, b int32) int { return int(rank[a]) - int(rank[b]) })
}
