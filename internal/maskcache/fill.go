package maskcache

import (
	"sort"

	"xgrammar/internal/bitset"
	"xgrammar/internal/matcher"
)

// FillContext holds reusable scratch buffers for mask generation; one per
// concurrent decoding sequence. Every buffer (including the prefix-sharing
// simulator for context-dependent tokens) is reused across steps, so
// steady-state mask generation performs no heap allocations.
type FillContext struct {
	tmp      *bitset.Bitset
	nodes    []int32
	ctxIDs   []int32
	ctxTmp   []int32 // union scratch for the per-node ctx lists
	byteRank []int32 // token id -> lexicographic rank, built lazily
	// Algorithm 1 scratch (double-buffered partial sets).
	rejA, rejB []int32
	accA, accB []int32
	mrg, diff  []int32
	sorter     rankSorter
	sim        prefixSim
}

// FillStats describes one mask-generation step.
type FillStats struct {
	States      int
	UniqueNodes int
	CtxChecked  int
	CtxAccepted int
	UsedBitset  bool // true when the bitset merge path was taken
}

// NewFillContext returns a scratch context for a vocabulary of the given size.
func NewFillContext(vocab int) *FillContext {
	return &FillContext{tmp: bitset.New(vocab)}
}

// FillMask computes the complete token mask for the current (closed) state
// set: context-independent tokens come from the per-node cache, merged with
// Algorithm 1; context-dependent tokens are resolved by executing the PDA
// with the real stacks (prefix-shared, §3.3). Special tokens are always
// masked out except stop tokens, which are allowed iff canTerminate.
func (c *Cache) FillMask(exec *matcher.Exec, states []matcher.State, mask *bitset.Bitset, canTerminate bool, fc *FillContext) FillStats {
	st := FillStats{States: len(states)}
	// Unique stack-top nodes that can consume input.
	fc.nodes = fc.nodes[:0]
	for _, s := range states {
		if len(c.P.Nodes[s.Node].Edges) == 0 {
			continue
		}
		dup := false
		for _, n := range fc.nodes {
			if n == s.Node {
				dup = true
				break
			}
		}
		if !dup {
			fc.nodes = append(fc.nodes, s.Node)
		}
	}
	st.UniqueNodes = len(fc.nodes)

	// Context-independent phase.
	hasBitset := false
	for _, n := range fc.nodes {
		if c.Nodes[n].Kind == BitsetStore {
			hasBitset = true
			break
		}
	}
	if hasBitset {
		st.UsedBitset = true
		c.mergeBitset(fc.nodes, mask, fc)
	} else {
		c.mergeAlgorithm1(fc.nodes, mask, fc)
	}

	// Context-dependent phase: union the per-node ctx lists, then resolve
	// each token against the real stacks.
	fc.ctxIDs = fc.ctxIDs[:0]
	for _, n := range fc.nodes {
		fc.ctxTmp = append(fc.ctxTmp[:0], fc.ctxIDs...)
		fc.ctxIDs = bitset.UnionSorted(fc.ctxIDs[:0], fc.ctxTmp, c.Nodes[n].Ctx)
	}
	if len(fc.ctxIDs) > 0 {
		c.sortByBytes(fc.ctxIDs, fc)
		sim := &fc.sim
		sim.init(exec, exec.CloneSetInto(exec.GetSet(), states))
		for _, id := range fc.ctxIDs {
			_, alive := sim.run(c.Tok.TokenBytes(id))
			st.CtxChecked++
			if alive {
				mask.Set(int(id))
				st.CtxAccepted++
			} else {
				mask.Clear(int(id))
			}
		}
		sim.release()
	}

	// Special and stop tokens.
	for _, id := range c.Tok.SpecialIDs() {
		mask.Clear(int(id))
	}
	if canTerminate {
		for _, id := range c.Tok.StopIDs() {
			mask.Set(int(id))
		}
	}
	return st
}

// mergeAlgorithm1 implements Algorithm 1 from the paper over sorted id
// lists: accept-heavy masks intersect their rejected lists into PartialRej;
// reject-heavy masks union their accepted lists into PartialAcc; the final
// rejected set is PartialRej \ PartialAcc. Context-dependent tokens are
// treated as rejected here and resolved afterwards. All intermediates live
// in FillContext scratch (double-buffered, swap instead of copy).
func (c *Cache) mergeAlgorithm1(nodes []int32, mask *bitset.Bitset, fc *FillContext) {
	rej, rejNext := fc.rejA[:0], fc.rejB[:0]
	rejIsAll := true // PartialRej starts as the full vocabulary
	acc, accNext := fc.accA[:0], fc.accB[:0]
	mrg := fc.mrg[:0]

	for _, n := range nodes {
		nm := &c.Nodes[n]
		switch nm.Kind {
		case AcceptHeavy:
			// Rej' = Tokens ∪ Ctx.
			mrg = bitset.UnionSorted(mrg[:0], nm.Tokens, nm.Ctx)
			if rejIsAll {
				rej = append(rej[:0], mrg...)
				rejIsAll = false
			} else {
				rejNext = bitset.IntersectSorted(rejNext[:0], rej, mrg)
				rej, rejNext = rejNext, rej
			}
		case RejectHeavy:
			accNext = bitset.UnionSorted(accNext[:0], acc, nm.Tokens)
			acc, accNext = accNext, acc
		}
	}

	if rejIsAll {
		// No accept-heavy mask: everything outside PartialAcc is rejected.
		mask.ClearAll()
		mask.SetList(acc)
	} else {
		mask.SetAll()
		fc.diff = bitset.DiffSorted(fc.diff[:0], rej, acc)
		mask.ClearList(fc.diff)
		// Tokens accepted by a reject-heavy node must stay set even if another
		// node rejected them (union over parallel stacks).
		mask.SetList(acc)
	}
	// Hand the (possibly swapped) buffers back so their capacity is kept.
	fc.rejA, fc.rejB, fc.accA, fc.accB, fc.mrg = rej, rejNext, acc, accNext, mrg
}

// mergeBitset is the fallback merge when a node uses bitset storage.
func (c *Cache) mergeBitset(nodes []int32, mask *bitset.Bitset, fc *FillContext) {
	mask.ClearAll()
	for _, n := range nodes {
		nm := &c.Nodes[n]
		switch nm.Kind {
		case AcceptHeavy:
			fc.tmp.SetAll()
			fc.tmp.ClearList(nm.Tokens)
			fc.tmp.ClearList(nm.Ctx)
			// Specials were never classified; clear them from the "all" base.
			for _, id := range c.Tok.SpecialIDs() {
				fc.tmp.Clear(int(id))
			}
			mask.Or(fc.tmp)
		case RejectHeavy:
			mask.SetList(nm.Tokens)
		case BitsetStore:
			mask.Or(bitset.FromWords(nm.Bits, c.Vocab))
		}
	}
}

// rankSorter orders token ids by a precomputed rank; a pointer to it
// converts to sort.Interface without allocating.
type rankSorter struct {
	ids  []int32
	rank []int32
}

func (r *rankSorter) Len() int           { return len(r.ids) }
func (r *rankSorter) Less(i, j int) bool { return r.rank[r.ids[i]] < r.rank[r.ids[j]] }
func (r *rankSorter) Swap(i, j int)      { r.ids[i], r.ids[j] = r.ids[j], r.ids[i] }

// sortByBytes orders token ids by the lexicographic rank of their bytes, the
// order that maximizes prefix sharing during resolution.
func (c *Cache) sortByBytes(ids []int32, fc *FillContext) {
	if fc.byteRank == nil {
		fc.byteRank = make([]int32, c.Vocab)
		for rank, id := range c.Tok.SortedRegularIDs() {
			fc.byteRank[id] = int32(rank)
		}
	}
	fc.sorter.ids, fc.sorter.rank = ids, fc.byteRank
	sort.Sort(&fc.sorter)
	fc.sorter.ids = nil
}
