package maskcache

import (
	"math/rand"
	"slices"
	"testing"

	"xgrammar/internal/bitset"
	"xgrammar/internal/matcher"
	"xgrammar/internal/pda"
	"xgrammar/internal/tokenizer"
)

// fabricateCache builds a Cache over synthetic per-node accept sets, skipping
// grammar compilation entirely: each node's context-independent accept set is
// given directly, routed through the real makeNodeMask selection and the real
// canonical materialization, so the fused merge runs over genuine
// AcceptList/RejectList/WordMask nodes (with and without canonical masks).
func fabricateCache(tok *tokenizer.Tokenizer, acceptSets [][]int32, canonicalBudget int64) *Cache {
	nodes := make([]pda.Node, len(acceptSets))
	for i := range nodes {
		nodes[i] = pda.Node{Edges: []pda.Edge{{}}}
	}
	c := &Cache{
		P:     &pda.PDA{Nodes: nodes},
		Tok:   tok,
		Vocab: tok.VocabSize(),
		Nodes: make([]NodeMask, len(acceptSets)),
	}
	c.buildAllWords()
	// SortedRegularIDs is byte-lexicographic; DiffSorted needs id order.
	byID := append([]int32(nil), tok.SortedRegularIDs()...)
	slices.Sort(byID)
	for i, acc := range acceptSets {
		accByID := append([]int32(nil), acc...)
		slices.Sort(accByID)
		rej := bitset.DiffSorted(nil, byID, accByID)
		c.Nodes[i] = makeNodeMask(accByID, rej, nil, c.Vocab)
	}
	c.materializeCanonical(canonicalBudget)
	return c
}

// FuzzFillMerge drives the fused word-level merge over fabricated node sets
// of every density and cross-checks the mask (and its fused popcount) against
// the naive reference: the union of the per-node accept sets. Context
// resolution is exercised by the full-scan grammar tests; this fuzz isolates
// the representation dispatch and the running-count invariant.
func FuzzFillMerge(f *testing.F) {
	f.Add(int64(1), uint8(1), false)
	f.Add(int64(2), uint8(3), true)
	f.Add(int64(99), uint8(4), false)
	tok := tokenizer.BuildDefault(300)
	sorted := tok.SortedRegularIDs()

	f.Fuzz(func(t *testing.T, seed int64, numNodes uint8, canonical bool) {
		n := int(numNodes%4) + 1
		rng := rand.New(rand.NewSource(seed))
		sets := make([][]int32, n)
		densities := []float64{0.01, 0.3, 0.6, 0.99}
		for i := range sets {
			p := densities[rng.Intn(len(densities))]
			for _, id := range sorted {
				if rng.Float64() < p {
					sets[i] = append(sets[i], id)
				}
			}
		}
		var budget int64 = -1
		if canonical {
			budget = DefaultCanonicalBudget
		}
		c := fabricateCache(tok, sets, budget)

		// Reference: union of the accept sets over the regular vocabulary.
		want := bitset.New(c.Vocab)
		for _, s := range sets {
			want.SetList(s)
		}

		// Duplicate states so the unique-node dedupe is exercised too.
		var states []matcher.State
		for i := 0; i < n; i++ {
			states = append(states, matcher.State{Node: int32(i)})
			if rng.Intn(2) == 0 {
				states = append(states, matcher.State{Node: int32(i)})
			}
		}
		got := bitset.New(c.Vocab)
		fc := NewFillContext(c.Vocab)
		st := c.FillMask(nil, states, got, false, fc)

		if !got.Equal(want) {
			t.Fatalf("fused merge mask differs from union reference (%d nodes, canonical=%v)", n, canonical)
		}
		if st.Accepted != want.Count() {
			t.Fatalf("fused Accepted = %d, reference popcount = %d", st.Accepted, want.Count())
		}
		if st.UniqueNodes != n {
			t.Fatalf("UniqueNodes = %d, want %d", st.UniqueNodes, n)
		}
	})
}

// TestFillFastPathSingleCanonical checks that a lone node with a canonical
// mask takes the memcpy fast path and that the result is still exact.
func TestFillFastPathSingleCanonical(t *testing.T) {
	tok := tokenizer.BuildDefault(300)
	sorted := tok.SortedRegularIDs()
	// Dense set -> RejectList with a materialized canonical mask.
	dense := append([]int32(nil), sorted[:len(sorted)-3]...)
	c := fabricateCache(tok, [][]int32{dense}, DefaultCanonicalBudget)
	if c.Nodes[0].Kind != RejectList || c.Nodes[0].canonical == nil {
		t.Fatalf("fabricated node: kind %v canonical=%v, want reject-list with canonical", c.Nodes[0].Kind, c.Nodes[0].canonical != nil)
	}

	got := bitset.New(c.Vocab)
	// Pre-dirty the mask: the fast path overwrites, it must not OR.
	got.SetAll()
	fc := NewFillContext(c.Vocab)
	st := c.FillMask(nil, []matcher.State{{Node: 0}}, got, false, fc)
	if !st.FastPath {
		t.Fatal("single canonical node did not take the fast path")
	}
	want := bitset.New(c.Vocab)
	want.SetList(dense)
	if !got.Equal(want) || st.Accepted != len(dense) {
		t.Fatalf("fast path mask wrong: accepted %d, want %d", st.Accepted, len(dense))
	}

	// With canonicals disabled the same cache must produce the same mask via
	// the except-list path.
	c2 := fabricateCache(tok, [][]int32{dense}, -1)
	got2 := bitset.New(c.Vocab)
	st2 := c2.FillMask(nil, []matcher.State{{Node: 0}}, got2, false, fc)
	if st2.FastPath {
		t.Fatal("fast path taken without a canonical mask")
	}
	if !got2.Equal(want) || st2.Accepted != len(dense) {
		t.Fatal("except-list path disagrees with canonical fast path")
	}
}

// TestSortByBytesZeroAllocs pins the slices.SortFunc-based byte-rank sort at
// zero allocations per call once the rank table is built.
func TestSortByBytesZeroAllocs(t *testing.T) {
	tok := tokenizer.BuildDefault(500)
	c := &Cache{Tok: tok, Vocab: tok.VocabSize()}
	fc := NewFillContext(c.Vocab)
	ids := append([]int32(nil), tok.SortedRegularIDs()...)
	shuffled := append([]int32(nil), ids...)
	rand.New(rand.NewSource(5)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	c.sortByBytes(ids, fc) // warm: builds the lazy rank table

	allocs := testing.AllocsPerRun(50, func() {
		copy(ids, shuffled)
		c.sortByBytes(ids, fc)
	})
	if allocs != 0 {
		t.Fatalf("sortByBytes allocates %.1f times per call, want 0", allocs)
	}
}

// BenchmarkSortByBytes measures the hot ctx-ordering sort; the companion test
// above asserts it stays allocation-free.
func BenchmarkSortByBytes(b *testing.B) {
	tok := tokenizer.BuildDefault(2000)
	c := &Cache{Tok: tok, Vocab: tok.VocabSize()}
	fc := NewFillContext(c.Vocab)
	ids := append([]int32(nil), tok.SortedRegularIDs()...)
	shuffled := append([]int32(nil), ids...)
	rand.New(rand.NewSource(5)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	c.sortByBytes(ids, fc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(ids, shuffled)
		c.sortByBytes(ids, fc)
	}
}
