package tokenizer

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// Special token ids. They precede the 256 byte tokens in the vocabulary.
const (
	PadID int32 = 0
	BosID int32 = 1
	EosID int32 = 2
	// NumSpecial is the number of special tokens.
	NumSpecial = 3
)

var specialNames = [NumSpecial]string{"<pad>", "<s>", "</s>"}

// Tokenizer is a byte-level BPE tokenizer with byte fallback.
type Tokenizer struct {
	tokens [][]byte
	merges map[pair]mergeInfo
	byteID [256]int32

	// sortedRegular holds non-special token ids ordered lexicographically by
	// token bytes — the order the mask-cache preprocessor consumes (§3.3).
	sortedRegular []int32

	fpOnce sync.Once
	fp     uint64

	mu    sync.Mutex
	cache map[string][]int32
}

// newBase returns a tokenizer with only special and byte tokens.
func newBase() *Tokenizer {
	t := &Tokenizer{
		merges: map[pair]mergeInfo{},
		cache:  map[string][]int32{},
	}
	for _, name := range specialNames {
		t.tokens = append(t.tokens, []byte(name))
	}
	for b := 0; b < 256; b++ {
		t.byteID[b] = int32(len(t.tokens))
		t.tokens = append(t.tokens, []byte{byte(b)})
	}
	return t
}

// finish precomputes derived tables after training.
func (t *Tokenizer) finish() {
	t.sortedRegular = t.sortedRegular[:0]
	for id := int32(NumSpecial); id < int32(len(t.tokens)); id++ {
		t.sortedRegular = append(t.sortedRegular, id)
	}
	sort.Slice(t.sortedRegular, func(i, j int) bool {
		return bytes.Compare(t.tokens[t.sortedRegular[i]], t.tokens[t.sortedRegular[j]]) < 0
	})
}

// VocabSize returns the number of tokens including specials.
func (t *Tokenizer) VocabSize() int { return len(t.tokens) }

// TokenBytes returns the byte string of token id.
func (t *Tokenizer) TokenBytes(id int32) []byte { return t.tokens[id] }

// IsSpecial reports whether id is a control token (pad/bos/eos).
func (t *Tokenizer) IsSpecial(id int32) bool { return id < NumSpecial }

// StopIDs returns the stop-token ids (just EOS here).
func (t *Tokenizer) StopIDs() []int32 { return []int32{EosID} }

// SpecialIDs returns all control-token ids.
func (t *Tokenizer) SpecialIDs() []int32 { return []int32{PadID, BosID, EosID} }

// SortedRegularIDs returns non-special token ids in lexicographic byte
// order. Callers must not modify the slice.
func (t *Tokenizer) SortedRegularIDs() []int32 { return t.sortedRegular }

// Fingerprint returns a stable FNV-1a hash over the full vocabulary: the
// token count and the length-prefixed bytes of every token in id order. Two
// tokenizers share a fingerprint iff they map ids to identical byte strings,
// so it detects vocabulary mismatches that a size check cannot (same size,
// different merges). Safe for concurrent use.
func (t *Tokenizer) Fingerprint() uint64 {
	t.fpOnce.Do(func() {
		h := fnv.New64a()
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(len(t.tokens)))
		h.Write(buf[:])
		for _, tb := range t.tokens {
			binary.LittleEndian.PutUint64(buf[:], uint64(len(tb)))
			h.Write(buf[:])
			h.Write(tb)
		}
		t.fp = h.Sum64()
	})
	return t.fp
}

// NumMerges returns the number of learned merges.
func (t *Tokenizer) NumMerges() int { return len(t.merges) }

func (t *Tokenizer) mergedBytes(p pair) []byte {
	a, b := t.tokens[p.a], t.tokens[p.b]
	out := make([]byte, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

// Encode tokenizes text. Any byte sequence is encodable via byte fallback.
func (t *Tokenizer) Encode(text string) []int32 {
	var out []int32
	pretokenize(text, func(w string) {
		out = append(out, t.encodeWord(w)...)
	})
	return out
}

func (t *Tokenizer) encodeWord(w string) []int32 {
	t.mu.Lock()
	if ids, ok := t.cache[w]; ok {
		t.mu.Unlock()
		return ids
	}
	t.mu.Unlock()

	seq := make([]int32, len(w))
	for i := 0; i < len(w); i++ {
		seq[i] = t.byteID[w[i]]
	}
	// Standard BPE encoding: repeatedly apply the lowest-rank merge.
	for len(seq) > 1 {
		bestRank := int32(-1)
		bestAt := -1
		var bestID int32
		for i := 0; i+1 < len(seq); i++ {
			if mi, ok := t.merges[pair{seq[i], seq[i+1]}]; ok {
				if bestRank < 0 || mi.rank < bestRank {
					bestRank = mi.rank
					bestAt = i
					bestID = mi.id
				}
			}
		}
		if bestAt < 0 {
			break
		}
		seq[bestAt] = bestID
		seq = append(seq[:bestAt+1], seq[bestAt+2:]...)
	}
	t.mu.Lock()
	t.cache[w] = seq
	t.mu.Unlock()
	return seq
}

// Decode reconstructs the byte string for ids. Special tokens decode to
// nothing.
func (t *Tokenizer) Decode(ids []int32) []byte {
	var out []byte
	for _, id := range ids {
		if t.IsSpecial(id) {
			continue
		}
		out = append(out, t.tokens[id]...)
	}
	return out
}

// Stats summarizes vocabulary shape for the experiment reports.
type Stats struct {
	VocabSize   int
	Merges      int
	MaxTokenLen int
	AvgTokenLen float64
	MultiByte   int // tokens longer than one byte
}

// ComputeStats returns vocabulary statistics over regular tokens.
func (t *Tokenizer) ComputeStats() Stats {
	s := Stats{VocabSize: len(t.tokens), Merges: len(t.merges)}
	total := 0
	n := 0
	for id := int32(NumSpecial); id < int32(len(t.tokens)); id++ {
		l := len(t.tokens[id])
		total += l
		n++
		if l > s.MaxTokenLen {
			s.MaxTokenLen = l
		}
		if l > 1 {
			s.MultiByte++
		}
	}
	if n > 0 {
		s.AvgTokenLen = float64(total) / float64(n)
	}
	return s
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("vocab=%d merges=%d maxLen=%d avgLen=%.2f multiByte=%d",
		s.VocabSize, s.Merges, s.MaxTokenLen, s.AvgTokenLen, s.MultiByte)
}
