// Package tokenizer implements a from-scratch byte-level BPE tokenizer: the
// substrate standing in for Llama-3.1's tokenizer in the paper's evaluation.
// All 256 bytes are in the base vocabulary (byte fallback), so any byte
// string is encodable; merges are learned from a deterministic corpus with
// the standard pair-frequency algorithm. What the grammar engine cares about
// is faithfully reproduced: tokens are multi-byte strings with heavy-tailed
// lengths that cross grammar-element boundaries (e.g. `":`, `},` or `true`).
package tokenizer

import (
	"bytes"
	"container/heap"
	"sort"
)

type pair struct{ a, b int32 }

type mergeInfo struct {
	rank int32
	id   int32
}

// maxTokenBytes caps merged token length, as production BPE vocabs do.
const maxTokenBytes = 16

// minPairFreq is the minimum frequency for a merge to be created.
const minPairFreq = 2

// heapEntry is a lazily-invalidated candidate merge.
type heapEntry struct {
	count int64
	pr    pair
	bytes []byte // merged bytes, for deterministic tie-breaking
}

type mergeHeap []heapEntry

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if h[i].count != h[j].count {
		return h[i].count > h[j].count
	}
	if c := bytes.Compare(h[i].bytes, h[j].bytes); c != 0 {
		return c < 0
	}
	if h[i].pr.a != h[j].pr.a {
		return h[i].pr.a < h[j].pr.a
	}
	return h[i].pr.b < h[j].pr.b
}
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(heapEntry)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

type trainWord struct {
	seq  []int32
	freq int64
}

// Train learns a BPE vocabulary of the given size from the corpus text.
// Training is deterministic. The vocabulary layout is: special tokens
// (pad, bos, eos), then the 256 byte tokens, then merges in rank order.
func Train(corpusText string, vocabSize int) *Tokenizer {
	t := newBase()
	if vocabSize < len(t.tokens) {
		vocabSize = len(t.tokens)
	}

	// Pretokenize the corpus into weighted words.
	freqs := map[string]int64{}
	pretokenize(corpusText, func(w string) { freqs[w]++ })
	words := make([]trainWord, 0, len(freqs))
	keys := make([]string, 0, len(freqs))
	for w := range freqs {
		keys = append(keys, w)
	}
	sort.Strings(keys) // deterministic word order
	for _, w := range keys {
		seq := make([]int32, len(w))
		for i := 0; i < len(w); i++ {
			seq[i] = t.byteID[w[i]]
		}
		words = append(words, trainWord{seq: seq, freq: freqs[w]})
	}

	// Pair statistics with an inverted index.
	pairCount := map[pair]int64{}
	pairWords := map[pair]map[int32]bool{}
	addPair := func(p pair, wi int32, n int64) {
		pairCount[p] += n
		if n > 0 {
			ws, ok := pairWords[p]
			if !ok {
				ws = map[int32]bool{}
				pairWords[p] = ws
			}
			ws[wi] = true
		}
	}
	for wi, w := range words {
		for i := 0; i+1 < len(w.seq); i++ {
			addPair(pair{w.seq[i], w.seq[i+1]}, int32(wi), w.freq)
		}
	}

	h := &mergeHeap{}
	for p, c := range pairCount {
		*h = append(*h, heapEntry{count: c, pr: p, bytes: t.mergedBytes(p)})
	}
	heap.Init(h)

	var scratchOld, scratchNew []pair
	for len(t.tokens) < vocabSize && h.Len() > 0 {
		top := heap.Pop(h).(heapEntry)
		cur := pairCount[top.pr]
		if cur != top.count {
			if cur >= minPairFreq {
				heap.Push(h, heapEntry{count: cur, pr: top.pr, bytes: top.bytes})
			}
			continue // stale entry
		}
		if cur < minPairFreq {
			break
		}
		if len(top.bytes) > maxTokenBytes {
			// Token too long: remove from consideration.
			delete(pairCount, top.pr)
			delete(pairWords, top.pr)
			continue
		}
		// Commit the merge.
		newID := int32(len(t.tokens))
		t.tokens = append(t.tokens, top.bytes)
		t.merges[top.pr] = mergeInfo{rank: int32(len(t.merges)), id: newID}

		affected := pairWords[top.pr]
		delete(pairCount, top.pr)
		delete(pairWords, top.pr)
		touched := map[pair]bool{}
		wis := make([]int32, 0, len(affected))
		for wi := range affected {
			wis = append(wis, wi)
		}
		sort.Slice(wis, func(i, j int) bool { return wis[i] < wis[j] })
		for _, wi := range wis {
			w := &words[wi]
			scratchOld = wordPairs(scratchOld[:0], w.seq)
			w.seq = applyMergeSeq(w.seq, top.pr, newID)
			scratchNew = wordPairs(scratchNew[:0], w.seq)
			for _, p := range scratchOld {
				pairCount[p] -= w.freq
				touched[p] = true
			}
			for _, p := range scratchNew {
				addPair(p, wi, w.freq)
				touched[p] = true
			}
		}
		for p := range touched {
			if p == top.pr {
				continue
			}
			if c := pairCount[p]; c >= minPairFreq {
				heap.Push(h, heapEntry{count: c, pr: p, bytes: t.mergedBytes(p)})
			} else if c <= 0 {
				delete(pairCount, p)
				delete(pairWords, p)
			}
		}
	}
	t.finish()
	return t
}

func wordPairs(dst []pair, seq []int32) []pair {
	for i := 0; i+1 < len(seq); i++ {
		dst = append(dst, pair{seq[i], seq[i+1]})
	}
	return dst
}

// applyMergeSeq replaces occurrences of p in seq with id, in place.
func applyMergeSeq(seq []int32, p pair, id int32) []int32 {
	w := 0
	for r := 0; r < len(seq); {
		if r+1 < len(seq) && seq[r] == p.a && seq[r+1] == p.b {
			seq[w] = id
			r += 2
		} else {
			seq[w] = seq[r]
			r++
		}
		w++
	}
	return seq[:w]
}

// pretokenize splits text into BPE words GPT-2 style: an optional single
// leading space attaches to a following run of letters, digits, or
// punctuation; remaining whitespace forms its own runs.
func pretokenize(text string, emit func(string)) {
	n := len(text)
	i := 0
	class := func(b byte) int {
		switch {
		case b == ' ':
			return 0
		case b == '\t' || b == '\n' || b == '\r':
			return 1
		case b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= 0x80:
			return 2 // letters; high bytes grouped with letters (UTF-8 text)
		case b >= '0' && b <= '9':
			return 3
		default:
			return 4 // punctuation and other ASCII
		}
	}
	for i < n {
		start := i
		b := text[i]
		if b == ' ' && i+1 < n && class(text[i+1]) >= 2 {
			// A leading space joins the next run.
			i++
			b = text[i]
		}
		c := class(b)
		i++
		for i < n && class(text[i]) == c {
			i++
		}
		emit(text[start:i])
	}
}
