package tokenizer

import (
	"bytes"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"xgrammar/internal/corpus"
)

func small(t *testing.T) *Tokenizer {
	t.Helper()
	return Train(corpus.Default(1<<16), 600)
}

func TestBaseVocabulary(t *testing.T) {
	tk := newBase()
	tk.finish()
	if tk.VocabSize() != NumSpecial+256 {
		t.Fatalf("base vocab = %d", tk.VocabSize())
	}
	for b := 0; b < 256; b++ {
		id := tk.byteID[b]
		got := tk.TokenBytes(id)
		if len(got) != 1 || got[0] != byte(b) {
			t.Fatalf("byte token %d wrong: %v", b, got)
		}
	}
}

func TestTrainGrowsVocab(t *testing.T) {
	tk := small(t)
	if tk.VocabSize() != 600 {
		t.Fatalf("vocab = %d, want 600", tk.VocabSize())
	}
	st := tk.ComputeStats()
	if st.MultiByte < 200 {
		t.Fatalf("too few multi-byte tokens: %+v", st)
	}
	if st.MaxTokenLen > maxTokenBytes {
		t.Fatalf("token longer than cap: %+v", st)
	}
	if st.AvgTokenLen <= 1.0 {
		t.Fatalf("avg length degenerate: %+v", st)
	}
}

func TestTrainDeterministic(t *testing.T) {
	c := corpus.Default(1 << 15)
	a := Train(c, 500)
	b := Train(c, 500)
	if a.VocabSize() != b.VocabSize() {
		t.Fatal("vocab sizes differ")
	}
	for i := 0; i < a.VocabSize(); i++ {
		if !bytes.Equal(a.TokenBytes(int32(i)), b.TokenBytes(int32(i))) {
			t.Fatalf("token %d differs: %q vs %q", i, a.TokenBytes(int32(i)), b.TokenBytes(int32(i)))
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tk := small(t)
	cases := []string{
		"hello world",
		`{"name": "bob", "age": 42}`,
		"for i in range(10):",
		"",
		"émoji: 😀 日本語",
		"\x00\x01\xff binary bytes",
		strings.Repeat("a", 100),
	}
	for _, s := range cases {
		ids := tk.Encode(s)
		got := string(tk.Decode(ids))
		if got != s {
			t.Errorf("round trip failed: %q -> %q", s, got)
		}
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	tk := small(t)
	f := func(b []byte) bool {
		s := string(b)
		return string(tk.Decode(tk.Encode(s))) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeUsesMerges(t *testing.T) {
	tk := small(t)
	// A common word should encode to far fewer tokens than its byte length.
	ids := tk.Encode("the value of the string")
	if len(ids) >= len("the value of the string") {
		t.Fatalf("no compression: %d tokens for %d bytes", len(ids), len("the value of the string"))
	}
}

func TestTokensCrossJSONBoundaries(t *testing.T) {
	// The grammar-relevant property: some learned tokens span multiple JSON
	// grammar elements (like `":` or `, "`).
	tk := Train(corpus.Default(1<<18), 2000)
	cross := 0
	for id := int32(NumSpecial); id < int32(tk.VocabSize()); id++ {
		b := tk.TokenBytes(id)
		if len(b) >= 2 && bytes.ContainsAny(b, `{}[],:"`) {
			cross++
		}
	}
	if cross < 20 {
		t.Fatalf("only %d boundary-crossing tokens; vocabulary unrealistic", cross)
	}
}

func TestSortedRegularIDs(t *testing.T) {
	tk := small(t)
	ids := tk.SortedRegularIDs()
	if len(ids) != tk.VocabSize()-NumSpecial {
		t.Fatalf("sorted len = %d", len(ids))
	}
	if !sort.SliceIsSorted(ids, func(i, j int) bool {
		return bytes.Compare(tk.TokenBytes(ids[i]), tk.TokenBytes(ids[j])) < 0
	}) {
		t.Fatal("not sorted by bytes")
	}
	for _, id := range ids {
		if tk.IsSpecial(id) {
			t.Fatal("special token in regular list")
		}
	}
}

func TestSpecialHandling(t *testing.T) {
	tk := small(t)
	if !tk.IsSpecial(PadID) || !tk.IsSpecial(EosID) || tk.IsSpecial(NumSpecial) {
		t.Fatal("IsSpecial wrong")
	}
	if got := tk.StopIDs(); len(got) != 1 || got[0] != EosID {
		t.Fatalf("StopIDs = %v", got)
	}
	if out := tk.Decode([]int32{BosID, tk.byteID['h'], EosID}); string(out) != "h" {
		t.Fatalf("Decode with specials = %q", out)
	}
}

func TestPretokenizeShapes(t *testing.T) {
	var words []string
	pretokenize(`He said: "count 123 items".`+"\n\n", func(w string) { words = append(words, w) })
	joined := strings.Join(words, "|")
	// Leading spaces must attach to the following run.
	for _, want := range []string{" said", " 123", " items"} {
		found := false
		for _, w := range words {
			if w == want {
				found = true
			}
		}
		if !found {
			t.Errorf("word %q missing in %q", want, joined)
		}
	}
	if got := strings.Join(words, ""); got != `He said: "count 123 items".`+"\n\n" {
		t.Fatalf("pretokenize lost bytes: %q", got)
	}
}

func TestEncodeWordCacheConsistent(t *testing.T) {
	tk := small(t)
	a := tk.Encode("hello hello hello")
	b := tk.Encode("hello hello hello")
	if len(a) != len(b) {
		t.Fatal("cache changed encoding")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("cache changed encoding")
		}
	}
}

func TestBuildDefaultCached(t *testing.T) {
	a := BuildDefault(400)
	b := BuildDefault(400)
	if a != b {
		t.Fatal("BuildDefault not cached")
	}
	if a.VocabSize() != 400 {
		t.Fatalf("vocab = %d", a.VocabSize())
	}
}

func BenchmarkEncode(b *testing.B) {
	tk := BuildDefault(4000)
	text := corpus.Default(1 << 12)
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tk.Encode(text)
	}
}

func BenchmarkTrain8k(b *testing.B) {
	c := corpus.Default(1 << 18)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Train(c, 8192)
	}
}
