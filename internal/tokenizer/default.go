package tokenizer

import (
	"sync"

	"xgrammar/internal/corpus"
)

var (
	defaultMu    sync.Mutex
	defaultCache = map[int]*Tokenizer{}
)

// BuildDefault trains (once per size, cached) a tokenizer of the given
// vocabulary size on the standard synthetic corpus. The corpus scales with
// the vocabulary so large vocabularies have enough pair diversity.
func BuildDefault(vocabSize int) *Tokenizer {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if t, ok := defaultCache[vocabSize]; ok {
		return t
	}
	corpusBytes := vocabSize * 192
	if corpusBytes < 1<<16 {
		corpusBytes = 1 << 16
	}
	if corpusBytes > 8<<20 {
		corpusBytes = 8 << 20
	}
	t := Train(corpus.Default(corpusBytes), vocabSize)
	defaultCache[vocabSize] = t
	return t
}
