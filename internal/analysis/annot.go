package analysis

import (
	"go/ast"
	"strings"
)

// Source annotation markers. They are written as full-line comments in the
// doc block of the declaration they apply to:
//
//	//xg:hotpath
//	func (s *Session) Step(id int32) (StepResult, error) { ... }
//
//	//xg:nilsafe
//	type Trace struct { ... }
const (
	// HotPathMarker marks a function whose body must stay allocation-free
	// and wall-clock-free (hotpathalloc, noclock).
	HotPathMarker = "xg:hotpath"
	// NilSafeMarker marks a type whose exported pointer-receiver methods
	// must guard the receiver against nil before any field access (nilrecv).
	NilSafeMarker = "xg:nilsafe"

	allowPrefix = "xg:allow"
)

// HasMarker reports whether the doc comment group contains the marker as a
// full-line directive (`//xg:hotpath`, leading space tolerated).
func HasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == marker {
			return true
		}
	}
	return false
}

// HotPathFuncs returns the package's functions annotated //xg:hotpath.
func HotPathFuncs(pkg *Package) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && HasMarker(fn.Doc, HotPathMarker) {
				out = append(out, fn)
			}
		}
	}
	return out
}

// NilSafeTypes returns the names of the package's types annotated
// //xg:nilsafe. The marker is honored on either the type spec's own doc or
// the enclosing `type (...)` declaration doc.
func NilSafeTypes(pkg *Package) map[string]bool {
	out := map[string]bool{}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			declMarked := HasMarker(gd.Doc, NilSafeMarker)
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if declMarked || HasMarker(ts.Doc, NilSafeMarker) {
					out[ts.Name.Name] = true
				}
			}
		}
	}
	return out
}

// allowedLines maps a file's line numbers to the analyzer names a justified
// //xg:allow comment suppresses there. A comment suppresses findings on its
// own line (trailing comment) and on the line below (comment-above style).
// The justification after the colon is mandatory: `//xg:allow name` alone
// does not suppress anything.
func allowedLines(pkg *Package, f *ast.File) map[int][]string {
	var out map[int][]string
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, allowPrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
			name, reason, ok := strings.Cut(rest, ":")
			if !ok || strings.TrimSpace(reason) == "" {
				continue
			}
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if out == nil {
				out = map[int][]string{}
			}
			line := pkg.Fset.Position(c.Pos()).Line
			out[line] = append(out[line], name)
			out[line+1] = append(out[line+1], name)
		}
	}
	return out
}
