package hotpathalloc_test

import (
	"testing"

	"xgrammar/internal/analysis/analysistest"
	"xgrammar/internal/analysis/hotpathalloc"
)

func TestHotPathAlloc(t *testing.T) {
	analysistest.Run(t, hotpathalloc.Analyzer, "a")
}
