// Package hotpathalloc flags allocating constructs inside functions
// annotated //xg:hotpath. The serving runtime's contract is that the fused
// decode step — serve.Session.Step, maskcache.FillMask, the bitset fused
// ops, the structtag dispatcher, the matcher inner loop — performs no heap
// allocations in steady state; this analyzer turns that benchmark-verified
// property into a compile-time check.
//
// Flagged inside a hot-path function body:
//
//   - make and new
//   - composite literals with pointer, slice, or map allocation semantics
//     (&T{...}, []T{...}, map[K]V{...}); plain struct literals are value
//     semantics and stay on the stack, so they are allowed
//   - append without reuse evidence: allowed only as x = append(x, ...) or
//     when appending to an explicitly emptied buffer (append(buf[:0], ...))
//   - function literals (closure capture) and go statements
//   - calls into package fmt
//   - implicit conversion of a concrete value to an interface parameter,
//     and explicit conversions to interface types
//   - non-constant string concatenation and string<->[]byte/[]rune
//     conversions
//   - method values (bound-method closures)
//
// The check is intentionally shallow: it inspects only the annotated
// function's own body. Callees are covered by annotating them too. A
// deliberate, justified exception is suppressed with
// //xg:allow hotpathalloc: <reason>.
package hotpathalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"xgrammar/internal/analysis"
)

// Analyzer is the hotpathalloc analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc:  "flag allocating constructs in //xg:hotpath functions",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, fn := range analysis.HotPathFuncs(pass.Pkg) {
		if fn.Body == nil {
			continue
		}
		(&checker{pass: pass, fn: fn}).check()
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
	fn   *ast.FuncDecl
	// sanctioned holds append calls proven to reuse their destination and
	// composite literals already reported behind a &.
	sanctioned map[ast.Node]bool
}

func (c *checker) check() {
	c.sanctioned = map[ast.Node]bool{}
	info := c.pass.Pkg.Info

	// First pass: mark reuse-idiom appends (x = append(x, ...)) and method
	// values that are immediately called (m.Foo() is a call, not a closure).
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltin(info, call.Fun, "append") || len(call.Args) == 0 {
					continue
				}
				if i < len(n.Lhs) && len(n.Lhs) == len(n.Rhs) &&
					types.ExprString(n.Lhs[i]) == types.ExprString(call.Args[0]) {
					c.sanctioned[call] = true
				}
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				c.sanctioned[sel] = true // direct call, not a method value
			}
		}
		return true
	})

	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			c.call(n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if lit, ok := n.X.(*ast.CompositeLit); ok {
					c.sanctioned[lit] = true
					c.pass.Reportf(n.Pos(), "&%s composite literal allocates in hot-path %s",
						typeLabel(info, lit), c.fn.Name.Name)
				}
			}
		case *ast.CompositeLit:
			if c.sanctioned[n] {
				return true
			}
			switch info.Types[n].Type.Underlying().(type) {
			case *types.Slice, *types.Map:
				c.pass.Reportf(n.Pos(), "%s composite literal allocates in hot-path %s",
					typeLabel(info, n), c.fn.Name.Name)
			}
		case *ast.FuncLit:
			c.pass.Reportf(n.Pos(), "function literal captures and allocates in hot-path %s", c.fn.Name.Name)
			return false
		case *ast.GoStmt:
			c.pass.Reportf(n.Pos(), "go statement allocates a goroutine in hot-path %s", c.fn.Name.Name)
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv := info.Types[n]; tv.Value == nil && tv.Type != nil && isString(tv.Type) {
					c.pass.Reportf(n.Pos(), "string concatenation allocates in hot-path %s", c.fn.Name.Name)
				}
			}
		case *ast.SelectorExpr:
			if c.sanctioned[n] {
				return true
			}
			if sel, ok := info.Selections[n]; ok && sel.Kind() == types.MethodVal {
				c.pass.Reportf(n.Pos(), "method value %s allocates a bound closure in hot-path %s",
					types.ExprString(n), c.fn.Name.Name)
			}
		}
		return true
	})
}

func (c *checker) call(call *ast.CallExpr) {
	info := c.pass.Pkg.Info
	name := c.fn.Name.Name

	// Builtins.
	switch {
	case isBuiltin(info, call.Fun, "make"):
		c.pass.Reportf(call.Pos(), "make allocates in hot-path %s", name)
		return
	case isBuiltin(info, call.Fun, "new"):
		c.pass.Reportf(call.Pos(), "new allocates in hot-path %s", name)
		return
	case isBuiltin(info, call.Fun, "append"):
		if !c.sanctioned[call] && !emptiesDst(call) {
			c.pass.Reportf(call.Pos(), "append without reuse evidence in hot-path %s (want x = append(x, ...) or append(buf[:0], ...))", name)
		}
		return
	}

	// Type conversions: to interface, and string<->[]byte/[]rune.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		src := info.Types[call.Args[0]].Type
		switch {
		case types.IsInterface(dst) && src != nil && !types.IsInterface(src) && !isUntypedNil(info, call.Args[0]):
			c.pass.Reportf(call.Pos(), "conversion to interface %s allocates in hot-path %s", dst, name)
		case allocatingStringConv(dst, src):
			c.pass.Reportf(call.Pos(), "%s(%s) conversion allocates in hot-path %s", dst, src, name)
		}
		return
	}

	// fmt calls.
	if callee := calleeFunc(info, call); callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
		c.pass.Reportf(call.Pos(), "fmt.%s allocates in hot-path %s", callee.Name(), name)
		return
	}

	// Implicit interface conversions at call boundaries.
	sig, ok := info.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type() // passing the slice through
			} else {
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := info.Types[arg].Type
		if at == nil || types.IsInterface(at) || isUntypedNil(info, arg) {
			continue
		}
		c.pass.Reportf(arg.Pos(), "argument %s implicitly converts %s to interface %s in hot-path %s",
			types.ExprString(arg), at, pt, name)
	}
}

// emptiesDst reports whether append's first argument is an explicitly
// emptied buffer (a [:0]-style reslice), the steady-state reuse idiom.
func emptiesDst(call *ast.CallExpr) bool {
	se, ok := call.Args[0].(*ast.SliceExpr)
	if !ok || se.High == nil {
		return false
	}
	lit, ok := se.High.(*ast.BasicLit)
	return ok && lit.Value == "0"
}

func isBuiltin(info *types.Info, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isUntypedNil(info *types.Info, e ast.Expr) bool {
	t := info.Types[e]
	return t.IsNil()
}

func allocatingStringConv(dst, src types.Type) bool {
	if src == nil {
		return false
	}
	return (isString(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isString(src))
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func typeLabel(info *types.Info, lit *ast.CompositeLit) string {
	if t := info.Types[lit].Type; t != nil {
		return t.String()
	}
	return "composite"
}
