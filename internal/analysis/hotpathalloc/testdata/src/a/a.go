// Package a is golden data for the hotpathalloc analyzer: every allocating
// construct the analyzer knows, each in an //xg:hotpath function, plus the
// sanctioned reuse idioms and an //xg:allow suppression.
package a

import "fmt"

// Sink keeps flagged values alive so the package typechecks.
var Sink any

// T is a plain struct: its value literal has stack semantics and is allowed
// on the hot path; &T{} is not.
type T struct{ N int }

// Grow is a method used both as a direct call (allowed) and a method value
// (flagged).
func (t *T) Grow() {}

func helper() {}

func takesAny(v any) { Sink = v }

//xg:hotpath
func Hot(buf []int, t *T, bs []byte, s string) []int {
	x := make([]int, 4) // want `make allocates in hot-path Hot`
	_ = x
	y := new(T) // want `new allocates in hot-path Hot`
	_ = y
	buf = append(buf, 1)     // reuse idiom: allowed
	buf = append(buf[:0], 2) // emptied destination: allowed
	other := append(buf, 3)  // want `append without reuse evidence in hot-path Hot`
	_ = other
	Sink = &T{N: 1}      // want `&a\.T composite literal allocates in hot-path Hot`
	Sink = []int{1}      // want `\[\]int composite literal allocates in hot-path Hot`
	Sink = map[int]int{} // want `map\[int\]int composite literal allocates in hot-path Hot`
	v := T{N: 2}         // value struct literal: allowed
	_ = v
	fmt.Sprintln(s) // want `fmt\.Sprintln allocates in hot-path Hot`
	takesAny(42)    // want `argument 42 implicitly converts int to interface any in hot-path Hot`
	Sink = any(s)   // want `conversion to interface any allocates in hot-path Hot`
	cat := s + s    // want `string concatenation allocates in hot-path Hot`
	_ = cat
	b2 := []byte(s) // want `\[\]byte\(string\) conversion allocates in hot-path Hot`
	_ = b2
	s2 := string(bs) // want `string\(\[\]byte\) conversion allocates in hot-path Hot`
	_ = s2
	g := t.Grow // want `method value t\.Grow allocates a bound closure in hot-path Hot`
	_ = g
	t.Grow()       // direct method call: allowed
	f := func() {} // want `function literal captures and allocates in hot-path Hot`
	_ = f
	go helper() // want `go statement allocates a goroutine in hot-path Hot`
	return buf
}

// HotWarm pins suppression behavior: a justified //xg:allow on the line
// silences the finding, so there is no want expectation here.
//
//xg:hotpath
func HotWarm() {
	warm := make([]int, 8) //xg:allow hotpathalloc: one-time warmup allocation, not steady state
	Sink = warm
}

// Cold is not annotated: the same constructs are not flagged.
func Cold() {
	Sink = make([]int, 4)
	Sink = &T{N: 3}
}
