package analysis

import (
	"fmt"
	"sort"
)

// Run applies the analyzers to every package in the module, filters findings
// suppressed by justified //xg:allow comments, and returns the rest sorted
// by position. Analyzer errors abort the run.
func Run(mod *Module, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range mod.Pkgs {
		allows := map[string]map[int][]string{} // filename -> line -> analyzer names
		for _, f := range pkg.Files {
			if m := allowedLines(pkg, f); m != nil {
				allows[pkg.Fset.Position(f.Pos()).Filename] = m
			}
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Pkg:      pkg,
				Module:   mod,
				report: func(d Diagnostic) {
					if suppressed(allows, d) {
						return
					}
					diags = append(diags, d)
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

func suppressed(allows map[string]map[int][]string, d Diagnostic) bool {
	lines, ok := allows[d.Pos.Filename]
	if !ok {
		return false
	}
	for _, name := range lines[d.Pos.Line] {
		if name == d.Analyzer {
			return true
		}
	}
	return false
}
