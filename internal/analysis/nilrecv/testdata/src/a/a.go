// Package a is golden data for the nilrecv analyzer: exported pointer-
// receiver methods on an //xg:nilsafe type must nil-check the receiver
// before any other use, mirroring the obs.Trace contract where a nil trace
// means "tracing disabled" and every method must no-op.
package a

// V is the nil-safe type under test.
//
//xg:nilsafe
type V struct{ n int }

// Good guards first.
func (v *V) Good() int {
	if v == nil {
		return 0
	}
	return v.n
}

// GoodDisjunct may carry extra disjuncts in the guard.
func (v *V) GoodDisjunct(k int) int {
	if v == nil || k < 0 {
		return 0
	}
	return v.n + k
}

// GoodPanic may exit by panicking.
func (v *V) GoodPanic() int {
	if v == nil {
		panic("nil V")
	}
	return v.n
}

// GoodNoRecv never mentions the receiver and passes trivially.
func (v *V) GoodNoRecv() int { return 42 }

// Bad touches a field before the guard.
func (v *V) Bad() int {
	n := v.n // want `method Bad on nil-safe \*V uses receiver v before a nil check`
	if v == nil {
		return 0
	}
	return n
}

// BadNoGuard never guards at all.
func (v *V) BadNoGuard() int {
	return v.n // want `method BadNoGuard on nil-safe \*V uses receiver v before a nil check`
}

// BadLateGuard guards inside a later statement, which the strict first-use
// rule rejects.
func (v *V) BadLateGuard() int {
	x := 0
	for i := 0; i < v.n; i++ { // want `method BadLateGuard on nil-safe \*V uses receiver v before a nil check`
		x += i
	}
	return x
}

// Allowed pins suppression: the justified //xg:allow silences the finding.
func (v *V) Allowed() int {
	return v.n //xg:allow nilrecv: callers are generated code that always passes a non-nil V
}

// helper is unexported: internal helpers are shielded by the exported
// surface and not checked.
func (v *V) helper() int { return v.n }

// Val has a value receiver: a nil pointer cannot reach it.
func (v V) Val() int { return v.n }

// U is not annotated; its methods are unchecked.
type U struct{ n int }

// Bad on *U is fine: U is not //xg:nilsafe.
func (u *U) Bad() int { return u.n }
