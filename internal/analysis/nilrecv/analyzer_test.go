package nilrecv_test

import (
	"testing"

	"xgrammar/internal/analysis/analysistest"
	"xgrammar/internal/analysis/nilrecv"
)

func TestNilRecv(t *testing.T) {
	analysistest.Run(t, nilrecv.Analyzer, "a")
}
